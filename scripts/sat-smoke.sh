#!/usr/bin/env bash
# SAT equivalence smoke: `ctrlgen equiv --engine both` must certify the
# PCtrl partial evaluation (flexible netlist specialized at the AIG level
# vs the generator's partially evaluated design) in both protocol modes,
# and a seeded microcode mutation must be refuted by both engines with the
# same normalized witness. Any sim/SAT verdict disagreement exits nonzero
# inside ctrlgen itself. Leaves sat-trace.json in the repo root so CI can
# upload the solver's Obs spans/metrics as an artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build bin/ctrlgen.exe
exe=./_build/default/bin/ctrlgen.exe

out=$(mktemp) && err=$(mktemp)
trap 'rm -f "$out" "$err"' EXIT

# Certification: both modes, both engines, proof required.
for mode in cached uncached; do
  "$exe" equiv --mode "$mode" --engine both --expect equivalent \
    > "$out" 2> "$err"
  grep -q '^sat: proved' "$out"
  echo "sat-smoke: $mode certified"
done

# Negative control: seed 8 flips a dispatch-table bit that manifests
# within a few cycles, so a small BMC bound suffices. Both engines must
# refute, and their normalized witnesses must be the same line.
"$exe" equiv --mode cached --engine both --mutate 8 --frames 6 \
  --expect counterexample --metrics --trace sat-trace.json \
  > "$out" 2> "$err"
sim_witness=$(sed -n 's/^sim: counterexample: //p' "$out")
sat_witness=$(sed -n 's/^sat: counterexample: //p' "$out")
if [ -z "$sim_witness" ] || [ "$sim_witness" != "$sat_witness" ]; then
  echo "error: engines disagree on the mutation witness" >&2
  cat "$out" >&2
  exit 1
fi
echo "sat-smoke: mutation refuted by both engines ($sat_witness)"

# Solver effort must be visible in the observability outputs.
grep -q 'sat\.solver\.' "$err"
grep -q '"traceEvents"' sat-trace.json
echo "sat-smoke OK"
