#!/usr/bin/env bash
# Formatting gate for CI (also runnable locally): enforce the whitespace
# invariants a formatter would, across all tracked OCaml/dune/doc sources.
#   - no tab characters in OCaml sources or dune files
#   - no trailing whitespace
#   - every file ends with a final newline
set -u

fail=0

files=$(git ls-files -- '*.ml' '*.mli' '*.md' '*.sh' '*.yml' 'dune-project' \
  '*/dune' 'dune' ':!:*.data')

for f in $files; do
  [ -f "$f" ] || continue
  case "$f" in
    *.ml | *.mli | dune | */dune | dune-project)
      if grep -nP '\t' "$f" >/dev/null; then
        echo "error: tab character in $f:" >&2
        grep -nP '\t' "$f" | head -3 >&2
        fail=1
      fi
      ;;
  esac
  if grep -nE ' +$' "$f" >/dev/null; then
    echo "error: trailing whitespace in $f:" >&2
    grep -nE ' +$' "$f" | head -3 >&2
    fail=1
  fi
  if [ -s "$f" ] && [ -n "$(tail -c 1 "$f")" ]; then
    echo "error: no final newline in $f" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "formatting gate failed; fix the issues above" >&2
  exit 1
fi
echo "formatting gate passed ($(echo "$files" | wc -w) files checked)"
