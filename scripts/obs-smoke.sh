#!/usr/bin/env bash
# Observability smoke: the same sweep with and without --trace/--metrics
# must print byte-identical stdout, and the emitted Chrome trace must be
# valid enough to carry pass spans and the metrics snapshot. Leaves
# trace.json in the repo root for CI to upload as an artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build bench/main.exe
exe=./_build/default/bench/main.exe

plain=$(mktemp) && traced=$(mktemp) && err=$(mktemp)
trap 'rm -f "$plain" "$traced" "$err"' EXIT

# --no-cache so the traced run actually executes the synthesis passes
# rather than replaying engine cache hits.
"$exe" quick -j 2 --no-cache > "$plain" 2>/dev/null
"$exe" quick -j 2 --no-cache --trace trace.json --metrics > "$traced" 2> "$err"

if ! diff -u "$plain" "$traced"; then
  echo "error: stdout changed when observability was enabled" >&2
  exit 1
fi

grep -q '"traceEvents"' trace.json
grep -q '"flow.compile"' trace.json
grep -q '"metrics"' trace.json
grep -q 'engine\.pool\.jobs' "$err"
grep -q 'synth\.flow\.' "$err"
echo "observability smoke OK: stdout identical, trace.json valid"
