#!/usr/bin/env bash
# Regenerate the golden fixtures under test/golden/ (Verilog pretty-printer,
# VCD writer, and DIMACS CNF outputs). Run after an intentional emitter
# change, then review the diff like any other source change.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p test/golden
dune build test/test_io.exe test/test_sat.exe
GOLDEN_REGEN="$(pwd)/test/golden" ./_build/default/test/test_io.exe test golden
GOLDEN_REGEN="$(pwd)/test/golden" ./_build/default/test/test_sat.exe test dimacs
echo "regenerated:"
ls -1 test/golden | sed 's/^/  test\/golden\//'
