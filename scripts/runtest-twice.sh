#!/usr/bin/env bash
# Determinism gate: two forced runs of the full test suite must produce
# identical output after stripping the few legitimately run-varying
# strings (wall-clock timings, Alcotest run IDs, QCheck seeds). Catches
# both flaky tests and tests that leak run-dependent state into output.
set -euo pipefail
cd "$(dirname "$0")/.."

normalize() {
  sed -E \
    -e 's/[0-9]+\.[0-9]+s/<time>/g' \
    -e "s/run has ID \`[A-Z0-9]+'/run has ID <id>/g" \
    -e 's/qcheck random seed: [0-9]+/qcheck random seed: <seed>/g'
}

out1=$(mktemp) && out2=$(mktemp)
trap 'rm -f "$out1" "$out2"' EXIT

dune runtest --force 2>&1 | normalize > "$out1"
dune runtest --force 2>&1 | normalize > "$out2"

if ! diff -u "$out1" "$out2"; then
  echo "error: dune runtest output differs between two forced runs" >&2
  exit 1
fi
echo "runtest output stable across two forced runs"
