#!/usr/bin/env bash
# Crash-resilience smoke test for `ctrlgen fault`.
#
# Runs a tiny seeded fault campaign to completion, then runs the same
# campaign again with a journal and `--crash-after` so the process kills
# itself mid-run (exit 3), resumes it with `--resume` on the same journal,
# and requires the resumed stdout to be byte-identical to the
# uninterrupted run. Exercises: JSONL checkpoint journal, torn-run
# recovery, and deterministic site ordering under `-j 4`.
set -euo pipefail
cd "$(dirname "$0")/.."

CTRLGEN=${CTRLGEN:-_build/default/bin/ctrlgen.exe}
if [ ! -x "$CTRLGEN" ]; then
  echo "fault-resume-smoke: building $CTRLGEN" >&2
  dune build bin/ctrlgen.exe
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

ARGS=(fault --model tables --seed 3 --sites 12 --cycles 24 -j 4)

echo "fault-resume-smoke: reference run" >&2
"$CTRLGEN" "${ARGS[@]}" > "$workdir/reference.out"

echo "fault-resume-smoke: interrupted run (--crash-after 5)" >&2
rc=0
"$CTRLGEN" "${ARGS[@]}" --journal "$workdir/journal.jsonl" --crash-after 5 \
  > "$workdir/crashed.out" || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "fault-resume-smoke: expected exit 3 from --crash-after, got $rc" >&2
  exit 1
fi
lines=$(wc -l < "$workdir/journal.jsonl")
if [ "$lines" -lt 1 ] || [ "$lines" -ge 12 ]; then
  echo "fault-resume-smoke: journal has $lines lines, expected a partial run" >&2
  exit 1
fi

echo "fault-resume-smoke: resumed run ($lines sites journaled)" >&2
"$CTRLGEN" "${ARGS[@]}" --journal "$workdir/journal.jsonl" \
  --resume "$workdir/journal.jsonl" > "$workdir/resumed.out"

if ! cmp -s "$workdir/reference.out" "$workdir/resumed.out"; then
  echo "fault-resume-smoke: resumed stdout differs from uninterrupted run:" >&2
  diff "$workdir/reference.out" "$workdir/resumed.out" >&2 || true
  exit 1
fi

echo "fault-resume-smoke: OK (resumed output byte-identical)" >&2
