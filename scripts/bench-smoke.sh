#!/usr/bin/env bash
# Simulation-kernel smoke: run the scalar-vs-packed microbench on a tiny
# repetition budget, assert the packed/scalar agreement check passed, and
# leave BENCH_sim.json in the repo root for CI to upload as an artifact.
# The microbench itself exits non-zero if any lane disagrees with the
# scalar oracle, so this script is primarily a freshness + sanity gate on
# the emitted baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build bench/main.exe
exe=./_build/default/bench/main.exe

rm -f BENCH_sim.json
out=$(mktemp)
trap 'rm -f "$out"' EXIT

"$exe" microbench --sim-reps 2 > "$out" 2>/dev/null
cat "$out"

[ -f BENCH_sim.json ] || { echo "error: BENCH_sim.json not written" >&2; exit 1; }
grep -q '"agreement":"ok"' BENCH_sim.json || {
  echo "error: packed/scalar agreement not ok in BENCH_sim.json" >&2
  exit 1
}
if grep -q 'FAIL' "$out"; then
  echo "error: microbench reported a failure" >&2
  exit 1
fi
# The baseline must carry a throughput number for every benched design.
for design in pctrl fig5-table-256x8 fig6-fsm16; do
  grep -q "\"design\":\"$design\"" BENCH_sim.json || {
    echo "error: $design missing from BENCH_sim.json" >&2
    exit 1
  }
done
echo "bench smoke OK: agreement ok, BENCH_sim.json written"
