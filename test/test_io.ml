(* Interchange formats: VCD waveforms and AIGER netlists. *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let count_lines_with text needle =
  String.split_on_char '\n' text
  |> List.filter (fun l -> contains l needle)
  |> List.length

(* ------------------------------------------------------------------ vcd *)

let counter () =
  let b = Rtl.Builder.create "ctr" in
  let en = Rtl.Builder.input b "en" 1 in
  let q = Rtl.Builder.reg_declare b "q" ~width:3 in
  Rtl.Builder.reg_connect b ~enable:en "q"
    (Rtl.Expr.add q (Rtl.Expr.of_int ~width:3 1));
  Rtl.Builder.output b "count" q;
  Rtl.Builder.finish b

let test_vcd_structure () =
  let d = counter () in
  let stim =
    List.init 6 (fun _ -> [ ("en", Bitvec.ones 1) ])
  in
  let vcd = Rtl.Vcd.of_run d ~stimulus:stim ~watch:[ "en"; "q" ] in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true (contains vcd fragment))
    [ "$timescale"; "$var wire 1"; "$var wire 3"; "$enddefinitions"; "#0";
      "#50" ];
  (* clk toggles twice per cycle. *)
  Alcotest.(check int) "rising edges" 6 (count_lines_with vcd "1!");
  (* q changes every cycle (counting), en only once. *)
  Alcotest.(check bool) "q changes most cycles" true
    (count_lines_with vcd "b" >= 5)

let test_vcd_change_only () =
  let d = counter () in
  let stim = List.init 8 (fun _ -> [ ("en", Bitvec.zero 1) ]) in
  let vcd = Rtl.Vcd.of_run d ~stimulus:stim ~watch:[ "q" ] in
  (* Held counter: exactly one value line for q. *)
  Alcotest.(check int) "single q record" 1 (count_lines_with vcd "b000")

let test_vcd_unknown_signal () =
  let d = counter () in
  match Rtl.Vcd.of_run d ~stimulus:[] ~watch:[ "ghost" ] with
  | _ -> Alcotest.fail "unknown signal accepted"
  | exception Invalid_argument _ -> ()

(* --------------------------------------------------------------- golden *)

(* Byte-exact fixtures for the text emitters (Verilog pretty-printer and
   VCD writer); the mechanism lives in the shared [Golden] module. *)

let check_golden = Golden.check

let golden_fsm () =
  let fsm =
    Workload.Rand_fsm.generate ~seed:11 ~num_inputs:2 ~num_outputs:3
      ~num_states:5
  in
  Core.Fsm_ir.to_flexible_rtl fsm

let test_golden_verilog_counter () =
  check_golden "counter.v" (Rtl.Verilog.emit (counter ()))

let test_golden_verilog_fsm () =
  check_golden "fsm.v" (Rtl.Verilog.emit (golden_fsm ()))

let test_golden_vcd_counter () =
  let stim =
    List.map
      (fun en -> [ ("en", Bitvec.of_int ~width:1 en) ])
      [ 1; 1; 0; 1; 0; 1 ]
  in
  let vcd = Rtl.Vcd.of_run (counter ()) ~stimulus:stim ~watch:[ "en"; "q" ] in
  check_golden "counter.vcd" vcd

(* ---------------------------------------------------------------- aiger *)

let roundtrip_equivalent g =
  let text = Synth.Aiger.write g in
  let g' = Synth.Aiger.read text in
  match Synth.Equiv.aig_vs_aig ~seed:7 ~cycles:32 ~runs:3 g g' with
  | None -> true
  | Some m ->
    QCheck.Test.fail_reportf "roundtrip mismatch on %s at cycle %d"
      m.Synth.Equiv.output m.Synth.Equiv.cycle

let test_aiger_roundtrip_fsm () =
  let fsm =
    Workload.Rand_fsm.generate ~seed:3 ~num_inputs:2 ~num_outputs:4 ~num_states:6
  in
  let d =
    Synth.Partial_eval.bind_tables
      (Core.Fsm_ir.to_flexible_rtl fsm)
      (Core.Fsm_ir.config_bindings fsm)
  in
  let g = (Synth.Lower.run d).Synth.Lower.aig in
  Alcotest.(check bool) "equivalent" true (roundtrip_equivalent g);
  (* Names survive. *)
  let g' = Synth.Aiger.read (Synth.Aiger.write g) in
  Alcotest.(check (list string)) "input names"
    (List.map (Aig.pi_name g) (Aig.pis g))
    (List.map (Aig.pi_name g') (Aig.pis g'))

let prop_aiger_roundtrip =
  let arb =
    QCheck.make ~print:(Printf.sprintf "seed=%d") QCheck.Gen.(0 -- 2000)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"aiger roundtrip preserves behaviour" arb
       (fun seed ->
         let d = Workload.Rand_design.generate ~seed in
         roundtrip_equivalent (Synth.Lower.run d).Synth.Lower.aig))

let test_aiger_errors () =
  let bad text =
    match Synth.Aiger.read text with
    | _ -> Alcotest.failf "accepted %S" text
    | exception Synth.Aiger.Parse_error _ -> ()
  in
  bad "not an aiger file";
  bad "aag 1 1 0 0 0\n";
  (* undefined variable used by the output *)
  bad "aag 2 1 0 1 0\n2\n6\n";
  (* redefinition *)
  bad "aag 1 1 0 0 1\n2\n2 0 0\n"

let test_aiger_header_counts () =
  let g = Aig.create () in
  let a = Aig.pi g "a" and b = Aig.pi g "b" in
  Aig.po g "x" (Aig.and_ g a (Aig.not_ b));
  let text = Synth.Aiger.write g in
  Alcotest.(check bool) "header" true (contains text "aag 3 2 0 1 1")

(* ----------------------------------------------------------------- sexp *)

let test_sexp_roundtrip_fixed () =
  let fsm =
    Workload.Rand_fsm.generate ~seed:4 ~num_inputs:2 ~num_outputs:4 ~num_states:5
  in
  let d = Core.Fsm_ir.to_flexible_rtl ~annotate:true fsm in
  let d' = Rtl.Serialize.read (Rtl.Serialize.write d) in
  Alcotest.(check string) "name" d.Rtl.Design.name d'.Rtl.Design.name;
  Alcotest.(check int) "annots survive"
    (List.length d.Rtl.Design.annots)
    (List.length d'.Rtl.Design.annots);
  Alcotest.(check int) "config bits"
    (Rtl.Design.config_bit_count d)
    (Rtl.Design.config_bit_count d')

let prop_sexp_roundtrip =
  let arb =
    QCheck.make ~print:(Printf.sprintf "seed=%d") QCheck.Gen.(0 -- 2000)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"sexp roundtrip preserves behaviour" arb
       (fun seed ->
         let d = Workload.Rand_design.generate ~seed in
         let d' = Rtl.Serialize.read (Rtl.Serialize.write d) in
         let g = (Synth.Lower.run d).Synth.Lower.aig in
         let g' = (Synth.Lower.run d').Synth.Lower.aig in
         match Synth.Equiv.aig_vs_aig ~seed ~cycles:24 ~runs:2 g g' with
         | None -> true
         | Some m ->
           QCheck.Test.fail_reportf "mismatch on %s" m.Synth.Equiv.output))

let test_sexp_errors () =
  let bad text =
    match Rtl.Serialize.read text with
    | _ -> Alcotest.failf "accepted %S" text
    | exception Rtl.Serialize.Parse_error _ -> ()
  in
  bad "(not a design)";
  bad "(design (name x))";
  bad "(design (name x) (inputs) (nets) (regs) (tables) (outputs) (annots";
  bad "(design (name x) (inputs (a zero)) (nets) (regs) (tables) (outputs) (annots))"

let () =
  Alcotest.run "io"
    [
      ( "vcd",
        [
          Alcotest.test_case "structure" `Quick test_vcd_structure;
          Alcotest.test_case "change-only encoding" `Quick test_vcd_change_only;
          Alcotest.test_case "unknown signal" `Quick test_vcd_unknown_signal;
        ] );
      ( "golden",
        [
          Alcotest.test_case "verilog counter" `Quick test_golden_verilog_counter;
          Alcotest.test_case "verilog fsm" `Quick test_golden_verilog_fsm;
          Alcotest.test_case "vcd counter" `Quick test_golden_vcd_counter;
        ] );
      ( "aiger",
        [
          Alcotest.test_case "fsm roundtrip" `Quick test_aiger_roundtrip_fsm;
          prop_aiger_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_aiger_errors;
          Alcotest.test_case "header counts" `Quick test_aiger_header_counts;
        ] );
      ( "sexp",
        [
          Alcotest.test_case "roundtrip" `Quick test_sexp_roundtrip_fixed;
          prop_sexp_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_sexp_errors;
        ] );
    ]
