(* Minimal property-testing harness: seeded generation, a fixed iteration
   budget, and greedy shrinking. Unlike the QCheck tests elsewhere in this
   suite, every case is a pure function of a printed integer seed, so any
   failure reproduces in one command:

     FUZZ_SEED=<seed> dune exec test/<binary>.exe

   FUZZ_ITERS=<n> overrides every iteration budget (soak or quick runs);
   FUZZ_SEED=<s> runs exactly one iteration on that seed. No dependencies
   beyond Alcotest (reporting) and Workload.Rng (generation). *)

type 'a t = {
  gen : Workload.Rng.t -> 'a;
  shrink : 'a -> 'a list;
  show : 'a -> string;
}

let make ?(shrink = fun _ -> []) ~show gen = { gen; shrink; show }

let fixed_seed = Option.bind (Sys.getenv_opt "FUZZ_SEED") int_of_string_opt

let budget default =
  match fixed_seed with
  | Some _ -> 1
  | None ->
    (match Option.bind (Sys.getenv_opt "FUZZ_ITERS") int_of_string_opt with
     | Some n when n > 0 -> n
     | _ -> default)

(* ------------------------------------------------------------ generators *)

let int bound =
  {
    gen = (fun rng -> Workload.Rng.int rng bound);
    (* Toward zero: 0 first (most interesting), then halving. *)
    shrink =
      (fun n ->
        if n = 0 then []
        else if n = 1 then [ 0 ]
        else [ 0; n / 2; n - 1 ]);
    show = string_of_int;
  }

let pair a b =
  {
    gen = (fun rng -> (a.gen rng, b.gen rng));
    shrink =
      (fun (x, y) ->
        List.map (fun x' -> (x', y)) (a.shrink x)
        @ List.map (fun y' -> (x, y')) (b.shrink y));
    show = (fun (x, y) -> Printf.sprintf "(%s, %s)" (a.show x) (b.show y));
  }

let triple a b c =
  {
    gen = (fun rng -> (a.gen rng, b.gen rng, c.gen rng));
    shrink =
      (fun (x, y, z) ->
        List.map (fun x' -> (x', y, z)) (a.shrink x)
        @ List.map (fun y' -> (x, y', z)) (b.shrink y)
        @ List.map (fun z' -> (x, y, z')) (c.shrink z));
    show =
      (fun (x, y, z) ->
        Printf.sprintf "(%s, %s, %s)" (a.show x) (b.show y) (c.show z));
  }

let quad a b c d =
  {
    gen = (fun rng -> (a.gen rng, b.gen rng, c.gen rng, d.gen rng));
    shrink =
      (fun (x, y, z, w) ->
        List.map (fun x' -> (x', y, z, w)) (a.shrink x)
        @ List.map (fun y' -> (x, y', z, w)) (b.shrink y)
        @ List.map (fun z' -> (x, y, z', w)) (c.shrink z)
        @ List.map (fun w' -> (x, y, z, w')) (d.shrink w));
    show =
      (fun (x, y, z, w) ->
        Printf.sprintf "(%s, %s, %s, %s)" (a.show x) (b.show y) (c.show z)
          (d.show w));
  }

let map ~f ~show ?(shrink = fun _ -> []) inner =
  {
    gen = (fun rng -> f (inner.gen rng));
    shrink;
    show;
  }

(* ----------------------------------------------------------------- check *)

let holds prop x = match prop x with b -> b | exception _ -> false

let explain prop x =
  match prop x with
  | true -> "returned true after shrinking (flaky property?)"
  | false -> "returned false"
  | exception e -> "raised " ^ Printexc.to_string e

(* Greedy descent: take the first failing shrink candidate, repeat.
   Bounded so a cyclic shrinker cannot hang the suite. *)
let minimize p prop x0 =
  let rec go fuel x =
    if fuel = 0 then x
    else
      match List.find_opt (fun y -> not (holds prop y)) (p.shrink x) with
      | Some y -> go (fuel - 1) y
      | None -> x
  in
  go 1000 x0

let check ?(iters = 200) ?(seed = 0) ~name p prop =
  let iters = budget iters in
  for i = 0 to iters - 1 do
    let case_seed =
      match fixed_seed with Some s -> s | None -> seed + i
    in
    let x = p.gen (Workload.Rng.make case_seed) in
    if not (holds prop x) then begin
      let min_x = minimize p prop x in
      Alcotest.failf
        "%s falsified\n\
        \  seed: %d (iteration %d/%d)\n\
        \  counterexample: %s\n\
        \  shrunk to: %s (%s)\n\
        \  reproduce: FUZZ_SEED=%d dune exec <this test binary>"
        name case_seed i iters (p.show x) (p.show min_x)
        (explain prop min_x) case_seed
    end
  done

let test ?iters ?seed name p prop =
  Alcotest.test_case name `Quick (fun () -> check ?iters ?seed ~name p prop)
