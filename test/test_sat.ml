(* SAT layer: CDCL solver unit regressions, brute-force differential on
   random small CNFs, DIMACS round-trip + golden fixtures, Tseitin encoding
   checked against AIG evaluation, and the equivalence-engine differential
   suite (sim vs SAT must never disagree; every SAT counterexample must
   replay to a concrete scalar-sim mismatch). *)

let lit_value s sl =
  let v = Sat.Solver.model_value s (abs sl) in
  if sl < 0 then not v else v

(* ---------------------------------------------------------------- units *)

let test_trivial_sat () =
  let s = Sat.Solver.create () in
  let x = Sat.Solver.new_var s in
  let y = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ x; y ];
  Sat.Solver.add_clause s [ -x; y ];
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  Alcotest.(check bool) "y forced" true (Sat.Solver.model_value s y)

let test_trivial_unsat () =
  let s = Sat.Solver.create () in
  let x = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ x ];
  Sat.Solver.add_clause s [ -x ];
  Alcotest.(check bool) "unsat" true (Sat.Solver.solve s = Sat.Solver.Unsat);
  Alcotest.(check bool) "not ok" false (Sat.Solver.ok s)

let test_empty_clause () =
  let s = Sat.Solver.create () in
  let _ = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [];
  Alcotest.(check bool) "not ok" false (Sat.Solver.ok s);
  Alcotest.(check bool) "unsat" true (Sat.Solver.solve s = Sat.Solver.Unsat)

let test_duplicate_and_tautology () =
  let s = Sat.Solver.create () in
  let x = Sat.Solver.new_var s in
  let y = Sat.Solver.new_var s in
  (* Tautology must be dropped, not corrupt the database. *)
  Sat.Solver.add_clause s [ x; -x ];
  (* Duplicates must merge: [y; y] is the unit clause y. *)
  Sat.Solver.add_clause s [ y; y ];
  Sat.Solver.add_clause s [ -x ];
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  Alcotest.(check bool) "y" true (Sat.Solver.model_value s y);
  Alcotest.(check bool) "x" false (Sat.Solver.model_value s x)

let test_unit_propagation_level0 () =
  (* A unit chain resolvable entirely at decision level 0: x, x->y, y->z,
     then a clause false under the forced assignment flips to unsat with no
     search (decisions stays 0). *)
  let s = Sat.Solver.create () in
  let x = Sat.Solver.new_var s in
  let y = Sat.Solver.new_var s in
  let z = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ x ];
  Sat.Solver.add_clause s [ -x; y ];
  Sat.Solver.add_clause s [ -y; z ];
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  Alcotest.(check bool) "z forced" true (Sat.Solver.model_value s z);
  let d0 = (Sat.Solver.stats s).decisions in
  Alcotest.(check int) "no decisions needed" 0 d0;
  Sat.Solver.add_clause s [ -z ];
  Alcotest.(check bool) "now unsat" true (Sat.Solver.solve s = Sat.Solver.Unsat)

let test_assumptions_incremental () =
  let s = Sat.Solver.create () in
  let x = Sat.Solver.new_var s in
  let y = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ -x; y ];
  (* Conflicting assumptions make this call unsat... *)
  Alcotest.(check bool) "assumed unsat" true
    (Sat.Solver.solve ~assumptions:[ x; -y ] s = Sat.Solver.Unsat);
  (* ...but must not poison the database for later calls. *)
  Alcotest.(check bool) "still sat" true
    (Sat.Solver.solve ~assumptions:[ x ] s = Sat.Solver.Sat);
  Alcotest.(check bool) "y under x" true (Sat.Solver.model_value s y);
  Alcotest.(check bool) "free sat" true (Sat.Solver.solve s = Sat.Solver.Sat)

let test_pigeonhole () =
  (* 4 pigeons, 3 holes: small but forces real conflict analysis. *)
  let s = Sat.Solver.create () in
  let v = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Sat.Solver.new_var s)) in
  for p = 0 to 3 do
    Sat.Solver.add_clause s (Array.to_list v.(p))
  done;
  for h = 0 to 2 do
    for p = 0 to 3 do
      for q = p + 1 to 3 do
        Sat.Solver.add_clause s [ -v.(p).(h); -v.(q).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php(4,3) unsat" true
    (Sat.Solver.solve s = Sat.Solver.Unsat);
  Alcotest.(check bool) "had conflicts" true
    ((Sat.Solver.stats s).conflicts > 0)

(* ------------------------------------------------- brute-force differential *)

let brute_force nvars clauses =
  let sat = ref false in
  let n = 1 lsl nvars in
  let i = ref 0 in
  while (not !sat) && !i < n do
    let value v = !i land (1 lsl (v - 1)) <> 0 in
    let clause_ok c = List.exists (fun l -> value (abs l) = (l > 0)) c in
    if List.for_all clause_ok clauses then sat := true;
    incr i
  done;
  !sat

let gen_cnf rng =
  let nvars = 1 + Workload.Rng.int rng 10 in
  let nclauses = 1 + Workload.Rng.int rng 42 in
  let clauses =
    List.init nclauses (fun _ ->
        let len = 1 + Workload.Rng.int rng 4 in
        List.init len (fun _ ->
            let v = 1 + Workload.Rng.int rng nvars in
            if Workload.Rng.bool rng then v else -v))
  in
  (nvars, clauses)

let cnf_prop =
  Prop.make ~show:(fun (n, cs) -> Sat.Dimacs.print { nvars = n; clauses = cs })
    ~shrink:(fun (n, cs) ->
      (* Drop one clause at a time. *)
      List.mapi (fun i _ -> (n, List.filteri (fun j _ -> j <> i) cs)) cs)
    gen_cnf

let solver_of_cnf nvars clauses =
  let s = Sat.Solver.create () in
  for _ = 1 to nvars do
    ignore (Sat.Solver.new_var s)
  done;
  List.iter (Sat.Solver.add_clause s) clauses;
  s

let prop_cdcl_vs_brute =
  Prop.test ~iters:300 ~seed:1000 "cdcl agrees with brute force" cnf_prop
    (fun (nvars, clauses) ->
      let s = solver_of_cnf nvars clauses in
      match Sat.Solver.solve s with
      | Sat.Solver.Unsat -> not (brute_force nvars clauses)
      | Sat.Solver.Sat ->
        (* Model must actually satisfy every clause. *)
        List.for_all (List.exists (lit_value s)) clauses)

let prop_incremental_assumptions =
  (* Solving under assumptions must equal solving a copy with the
     assumptions added as unit clauses, and must leave the database
     reusable (same verdict as a fresh solve afterwards). *)
  Prop.test ~iters:150 ~seed:2000 "assumptions = unit clauses" cnf_prop
    (fun (nvars, clauses) ->
      let rng = Workload.Rng.make (Hashtbl.hash (nvars, clauses)) in
      let assumptions =
        List.init
          (1 + Workload.Rng.int rng 3)
          (fun _ ->
            let v = 1 + Workload.Rng.int rng nvars in
            if Workload.Rng.bool rng then v else -v)
      in
      let s = solver_of_cnf nvars clauses in
      let incremental = Sat.Solver.solve ~assumptions s in
      let monolithic =
        let s' = solver_of_cnf nvars clauses in
        List.iter (fun a -> Sat.Solver.add_clause s' [ a ]) assumptions;
        Sat.Solver.solve s'
      in
      let after = Sat.Solver.solve s in
      let fresh = Sat.Solver.solve (solver_of_cnf nvars clauses) in
      incremental = monolithic && after = fresh)

(* --------------------------------------------------------------- dimacs *)

let test_dimacs_roundtrip_fixed () =
  let t = { Sat.Dimacs.nvars = 4; clauses = [ [ 1; -2 ]; [ 3; 4; -1 ]; [] ] } in
  let t' = Sat.Dimacs.parse (Sat.Dimacs.print t) in
  Alcotest.(check bool) "roundtrip" true (t = t')

let prop_dimacs_roundtrip =
  Prop.test ~iters:200 ~seed:3000 "dimacs print/parse roundtrip" cnf_prop
    (fun (nvars, clauses) ->
      let t = { Sat.Dimacs.nvars; clauses } in
      Sat.Dimacs.parse (Sat.Dimacs.print t) = t)

let test_dimacs_parse_errors () =
  let expect_error text =
    match Sat.Dimacs.parse text with
    | _ -> Alcotest.failf "accepted malformed input %S" text
    | exception Sat.Dimacs.Parse_error _ -> ()
  in
  List.iter expect_error
    [
      "";                                (* missing header *)
      "p cnf 2\n1 0\n";                  (* short header *)
      "1 0\np cnf 2 1\n";                (* clause before header *)
      "p cnf 2 1\n3 0\n";                (* var out of range *)
      "p cnf 2 1\n1 -2\n";               (* unterminated clause *)
      "p cnf 2 2\n1 0\n";                (* clause count mismatch *)
      "p cnf 2 1\n1 x 0\n";              (* bad literal *)
      "p cnf 1 1\np cnf 1 1\n1 0\n";     (* duplicate header *)
    ]

let test_dimacs_parse_features () =
  let t =
    Sat.Dimacs.parse
      "c a comment\np cnf 3 2\nc another\n1 -2\n3 0\n-1 2 -3 0\n"
  in
  Alcotest.(check int) "nvars" 3 t.Sat.Dimacs.nvars;
  Alcotest.(check bool) "clauses (spanning lines)" true
    (t.Sat.Dimacs.clauses = [ [ 1; -2; 3 ]; [ -1; 2; -3 ] ])

let test_dimacs_load () =
  let t =
    { Sat.Dimacs.nvars = 3; clauses = [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ] }
  in
  let s = Sat.Solver.create () in
  Sat.Dimacs.load s t;
  Alcotest.(check int) "nvars" 3 (Sat.Solver.nvars s);
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat);
  Alcotest.(check bool) "chain forced" true (Sat.Solver.model_value s 3);
  (* Loading into a used solver is an error (variable numbering would skew). *)
  match Sat.Dimacs.load s t with
  | _ -> Alcotest.fail "load into non-fresh solver accepted"
  | exception Invalid_argument _ -> ()

let test_golden_dimacs_hand () =
  let t =
    {
      Sat.Dimacs.nvars = 5;
      clauses = [ [ 1; -2 ]; [ 2; 3; -4 ]; [ -1; 4; 5 ]; [ -5 ]; [ 1; 2; 3 ] ];
    }
  in
  Golden.check "hand.cnf" (Sat.Dimacs.print t)

let test_golden_dimacs_rand () =
  (* Canonical printer output for a seeded random CNF: pins both the
     generator and the printer. *)
  let nvars, clauses = gen_cnf (Workload.Rng.make 42) in
  Golden.check "rand.cnf" (Sat.Dimacs.print { Sat.Dimacs.nvars; clauses })

(* -------------------------------------------------------------- tseitin *)

(* Random combinational AIG: a handful of PIs, then a pile of random
   and/or/xor/mux gates over existing literals, one PO per final gate. *)
let gen_aig rng =
  let g = Aig.create () in
  let npis = 1 + Workload.Rng.int rng 5 in
  let lits =
    ref (List.init npis (fun i -> Aig.pi g (Printf.sprintf "i%d" i)))
  in
  let pick () =
    let l = Workload.Rng.pick rng !lits in
    if Workload.Rng.bool rng then Aig.not_ l else l
  in
  let ngates = 1 + Workload.Rng.int rng 30 in
  for _ = 1 to ngates do
    let l =
      match Workload.Rng.int rng 4 with
      | 0 -> Aig.and_ g (pick ()) (pick ())
      | 1 -> Aig.or_ g (pick ()) (pick ())
      | 2 -> Aig.xor_ g (pick ()) (pick ())
      | _ -> Aig.mux_ g (pick ()) (pick ()) (pick ())
    in
    lits := l :: !lits
  done;
  Aig.po g "f" (List.hd !lits);
  Aig.po g "g" (pick ());
  g

let aig_prop =
  Prop.make ~show:(fun (seed, _) -> Printf.sprintf "aig seed %d" seed)
    (fun rng ->
      let seed = Workload.Rng.int rng 1_000_000 in
      (seed, gen_aig (Workload.Rng.make seed)))

let prop_tseitin_matches_eval =
  Prop.test ~iters:200 ~seed:4000 "tseitin encoding matches Aig.eval_all"
    aig_prop
    (fun (seed, g) ->
      let s = Sat.Solver.create () in
      let cnf = Sat.Cnf.create s g in
      let out_lits = List.map (fun (_, l) -> Sat.Cnf.lit cnf l) (Aig.pos g) in
      let rng = Workload.Rng.make (seed + 1) in
      let ok = ref true in
      for _ = 1 to 8 do
        let values = Hashtbl.create 8 in
        let assumptions =
          List.map
            (fun n ->
              let b = Workload.Rng.bool rng in
              Hashtbl.replace values n b;
              let v = Sat.Cnf.lit cnf (Aig.lit_of_node n false) in
              if b then v else -v)
            (Aig.pis g)
        in
        let eval =
          Aig.eval_all g
            ~pi:(fun n -> Hashtbl.find values n)
            ~latch:(fun _ -> false)
        in
        (* Inputs pinned: must be Sat, and every PO's model value must
           match scalar evaluation. *)
        (match Sat.Solver.solve ~assumptions s with
         | Sat.Solver.Unsat -> ok := false
         | Sat.Solver.Sat ->
           List.iteri
             (fun i (_, l) ->
               if lit_value s (List.nth out_lits i) <> eval l then ok := false)
             (Aig.pos g));
        (* Additionally pinning one PO to the wrong value must be Unsat. *)
        let name, l0 = List.hd (Aig.pos g) in
        ignore name;
        let wrong =
          let sl = Sat.Cnf.lit cnf l0 in
          if eval l0 then -sl else sl
        in
        if Sat.Solver.solve ~assumptions:(wrong :: assumptions) s
           <> Sat.Solver.Unsat
        then ok := false
      done;
      !ok)

let test_tseitin_const () =
  (* Constant outputs (structural hashing folds them to the const node)
     must encode to forced literals. *)
  let g = Aig.create () in
  let a = Aig.pi g "a" in
  Aig.po g "zero" (Aig.and_ g a (Aig.not_ a));
  Aig.po g "one" (Aig.or_ g a (Aig.not_ a));
  let s = Sat.Solver.create () in
  let cnf = Sat.Cnf.create s g in
  let zero = Sat.Cnf.lit cnf (snd (List.nth (Aig.pos g) 0)) in
  let one = Sat.Cnf.lit cnf (snd (List.nth (Aig.pos g) 1)) in
  Alcotest.(check bool) "zero unsat as true" true
    (Sat.Solver.solve ~assumptions:[ zero ] s = Sat.Solver.Unsat);
  Alcotest.(check bool) "one unsat as false" true
    (Sat.Solver.solve ~assumptions:[ -one ] s = Sat.Solver.Unsat);
  Alcotest.(check bool) "consistent" true (Sat.Solver.solve s = Sat.Solver.Sat)

(* -------------------------------------------------- equivalence engines *)

let lib = Cells.Library.vt90

(* Copy [g] into a fresh graph node by node (no structural-hash surprises:
   the copy has the same interface and behaviour), optionally perturbing
   it. [`Invert_po]/[`Xor_po_pi] are disequivalent by construction on any
   design with at least one output (respectively one input);
   [`Flip_init] may or may not be observable. *)
let copy_perturbed ~perturb ~seed g =
  let rng = Workload.Rng.make (seed lxor 0x5eed) in
  let flip_latch =
    match perturb with
    | `Flip_init when Aig.num_latches g > 0 ->
      List.nth (Aig.latches g) (Workload.Rng.int rng (Aig.num_latches g))
    | _ -> -1
  in
  let ng = Aig.create () in
  let map = Hashtbl.create 64 in
  Hashtbl.replace map 0 Aig.false_;
  let xl l =
    let m = Hashtbl.find map (Aig.node_of_lit l) in
    if Aig.is_complemented l then Aig.not_ m else m
  in
  for n = 0 to Aig.num_nodes g - 1 do
    match Aig.kind g n with
    | Aig.Const -> ()
    | Aig.Pi -> Hashtbl.replace map n (Aig.pi ng (Aig.pi_name g n))
    | Aig.Latch ->
      let name, init, reset, is_config = Aig.latch_info g n in
      let init = if n = flip_latch then not init else init in
      Hashtbl.replace map n (Aig.latch ng name ~init ~reset ~is_config)
    | Aig.And ->
      let f0, f1 = Aig.fanins g n in
      Hashtbl.replace map n (Aig.and_ ng (xl f0) (xl f1))
  done;
  List.iter
    (fun n -> Aig.set_next ng (Hashtbl.find map n) (xl (Aig.latch_next g n)))
    (Aig.latches g);
  let npos = List.length (Aig.pos g) in
  let hit = if npos = 0 then -1 else Workload.Rng.int rng npos in
  List.iteri
    (fun i (name, l) ->
      let l = xl l in
      let l =
        if i <> hit then l
        else
          match perturb with
          | `Invert_po -> Aig.not_ l
          | `Xor_po_pi ->
            (match Aig.pis ng with
             | [] -> Aig.not_ l
             | p :: _ -> Aig.xor_ ng l (Aig.lit_of_node p false))
          | `None | `Flip_init -> l
      in
      Aig.po ng name l)
    (Aig.pos g);
  ng

(* The differential satellite: on seeded random designs, the simulation
   engine and the complete SAT engine must never disagree on a
   DISEQUIVALENT verdict, and perturbations that are disequivalent by
   construction must be refuted by the SAT engine. Witness soundness is
   enforced inside [check_sat] itself: every SAT model is replayed through
   the scalar simulator and a non-reproducing model raises [Failure],
   which this harness counts as a falsification. *)
let prop_engines_agree =
  let p = Prop.pair (Prop.int 1_000_000) (Prop.int 4) in
  Prop.test ~iters:200 ~seed:5000 "sim/SAT engines agree on random designs" p
    (fun (dseed, kind) ->
      let d = Workload.Rand_design.generate ~seed:dseed in
      let a = (Synth.Lower.run d).Synth.Lower.aig in
      let perturb =
        match kind with
        | 0 -> `None
        | 1 -> `Invert_po
        | 2 -> `Xor_po_pi
        | _ -> `Flip_init
      in
      let b = copy_perturbed ~perturb ~seed:dseed a in
      let sim = Synth.Equiv.check ~cycles:32 ~runs:3 ~seed:dseed a b in
      let sat = Synth.Equiv.check_sat ~frames:8 a b in
      (match sim with
       | Synth.Equiv.Proved -> failwith "simulation engine claimed a proof"
       | _ -> ());
      match (sim, sat) with
      | Synth.Equiv.Refuted _, Synth.Equiv.Proved ->
        failwith "DISAGREEMENT: sim refuted what SAT proved"
      | _ ->
        (match (perturb, sat) with
         | (`Invert_po | `Xor_po_pi), Synth.Equiv.Refuted _ -> true
         | (`Invert_po | `Xor_po_pi), _ ->
           (* Disequivalent by construction (an output is inverted /
              xor-ed with an input): only a latch-free, output-free or
              input-free degenerate design escapes. *)
           Aig.num_pos a = 0
           || (perturb = `Xor_po_pi && Aig.num_pis a = 0)
         | (`None | `Flip_init), _ -> true))

(* The optimizing flow must never be refuted by the complete engine. *)
let prop_flow_never_refuted =
  Prop.test ~iters:60 ~seed:6000 "SAT engine vs optimizing flow"
    (Prop.int 1_000_000) (fun dseed ->
      let d = Workload.Rand_design.generate ~seed:dseed in
      let low = (Synth.Lower.run d).Synth.Lower.aig in
      let opt = (Synth.Flow.compile lib d).Synth.Flow.aig in
      match Synth.Equiv.check_sat ~frames:6 low opt with
      | Synth.Equiv.Refuted c ->
        failwith ("flow refuted: " ^ Synth.Equiv.mismatch_to_string c.first)
      | Synth.Equiv.Proved | Synth.Equiv.Undecided _ -> true)

(* SAT-validated sweep: behaviour preserved, latch count never grows. *)
let prop_sweep_sat_preserves =
  Prop.test ~iters:80 ~seed:7000 "sweep ~sat:true preserves behaviour"
    (Prop.int 1_000_000) (fun dseed ->
      let d = Workload.Rand_design.generate ~seed:dseed in
      let g = (Synth.Lower.run d).Synth.Lower.aig in
      let g' = Synth.Sweep.run ~sat:true g in
      (match Synth.Equiv.aig_vs_aig ~cycles:32 ~runs:3 ~seed:dseed g g' with
       | Some m ->
         failwith ("sweep broke: " ^ Synth.Equiv.mismatch_to_string m)
       | None -> ());
      (match Synth.Equiv.check_sat ~frames:6 g g' with
       | Synth.Equiv.Refuted c ->
         failwith ("sweep refuted: " ^ Synth.Equiv.mismatch_to_string c.first)
       | _ -> ());
      Aig.num_latches g' <= Aig.num_latches g)

(* The BDD+SAT hybrid must agree with the pure-BDD product machine. *)
let prop_seq_check_sat_agrees =
  Prop.test ~iters:60 ~seed:8000 "Seq_check.run_sat vs Seq_check.run"
    (Prop.int 1_000_000) (fun dseed ->
      let d = Workload.Rand_design.generate ~seed:dseed in
      let low = (Synth.Lower.run d).Synth.Lower.aig in
      let swept = Synth.Sweep.run low in
      let r1 = Synth.Seq_check.run ~max_vars:40 low swept in
      let r2 = Synth.Seq_check.run_sat ~max_vars:40 ~frames:8 low swept in
      match (r1, r2) with
      | Synth.Seq_check.Counterexample o, _ ->
        failwith ("BDD product machine refuted the sweep on " ^ o)
      | _, Synth.Seq_check.Counterexample w ->
        failwith ("run_sat refuted the sweep: " ^ w)
      | _ -> true)

(* ------------------------------------------- directed engine regressions *)

let test_check_sat_comb_refute () =
  let mk op =
    let g = Aig.create () in
    let a = Aig.pi g "a" in
    let b = Aig.pi g "b" in
    Aig.po g "f" (op g a b);
    g
  in
  match Synth.Equiv.check_sat (mk Aig.and_) (mk Aig.or_) with
  | Synth.Equiv.Refuted c ->
    Alcotest.(check int) "cycle" 0 c.first.Synth.Equiv.cycle;
    Alcotest.(check string) "output" "f" c.first.Synth.Equiv.output
  | Synth.Equiv.Proved -> Alcotest.fail "proved and/or equal"
  | Synth.Equiv.Undecided s -> Alcotest.fail ("undecided: " ^ s)

let test_check_sat_induction_proof () =
  (* Same latch profile, structurally different but logically equal output
     cones: the register-correspondence induction must close without BMC. *)
  let mk distributed =
    let g = Aig.create () in
    let a = Aig.pi g "a" in
    let b = Aig.pi g "b" in
    let c = Aig.pi g "c" in
    let q = Aig.latch g "q" ~init:false ~reset:Rtl.Design.No_reset ~is_config:false in
    Aig.set_next g q a;
    let f =
      if distributed then Aig.or_ g (Aig.and_ g q b) (Aig.and_ g q c)
      else Aig.and_ g q (Aig.or_ g b c)
    in
    Aig.po g "f" f;
    g
  in
  match Synth.Equiv.check_sat (mk false) (mk true) with
  | Synth.Equiv.Proved -> ()
  | Synth.Equiv.Refuted c ->
    Alcotest.fail ("refuted: " ^ Synth.Equiv.mismatch_to_string c.first)
  | Synth.Equiv.Undecided s -> Alcotest.fail ("undecided: " ^ s)

(* A one-cycle delay implemented with oppositely-named, oppositely-phased
   latches: the latch profiles differ so the engine must go through BMC. *)
let bmc_pair ~inverted =
  let ga =
    let g = Aig.create () in
    let a = Aig.pi g "a" in
    let q = Aig.latch g "q" ~init:false ~reset:Rtl.Design.No_reset ~is_config:false in
    Aig.set_next g q a;
    Aig.po g "f" q;
    g
  in
  let gb =
    let g = Aig.create () in
    let a = Aig.pi g "a" in
    let p = Aig.latch g "p" ~init:true ~reset:Rtl.Design.No_reset ~is_config:false in
    (* [inverted]: store [not a], output [not p] — equivalent to [ga].
       Otherwise store [a] behind init [true], output [not p] — differs
       from cycle 1 on. *)
    Aig.set_next g p (if inverted then Aig.not_ a else a);
    Aig.po g "f" (Aig.not_ p);
    g
  in
  (ga, gb)

let test_check_sat_bmc_refute () =
  let ga, gb = bmc_pair ~inverted:false in
  match Synth.Equiv.check_sat ~frames:4 ga gb with
  | Synth.Equiv.Refuted c ->
    Alcotest.(check int) "cycle" 1 c.first.Synth.Equiv.cycle;
    Alcotest.(check string) "output" "f" c.first.Synth.Equiv.output
  | Synth.Equiv.Proved -> Alcotest.fail "proved inequivalent pair"
  | Synth.Equiv.Undecided s -> Alcotest.fail ("undecided: " ^ s)

let test_check_sat_bmc_bound () =
  (* Equivalent but with disjoint latch names: BMC can only bound, and the
     verdict must say so rather than claim a proof. *)
  let ga, gb = bmc_pair ~inverted:true in
  match Synth.Equiv.check_sat ~frames:4 ga gb with
  | Synth.Equiv.Undecided s ->
    Alcotest.(check bool) "mentions BMC" true
      (String.length s >= 3 && String.sub s 0 3 = "BMC")
  | Synth.Equiv.Proved -> Alcotest.fail "BMC cannot prove"
  | Synth.Equiv.Refuted c ->
    Alcotest.fail ("refuted: " ^ Synth.Equiv.mismatch_to_string c.first)

let test_seq_check_sat_proof () =
  (* The same renamed pair BMC could only bound: the BDD reach set closes
     it into a complete proof. *)
  let ga, gb = bmc_pair ~inverted:true in
  match Synth.Seq_check.run_sat ~frames:4 ga gb with
  | Synth.Seq_check.Equivalent -> ()
  | Synth.Seq_check.Counterexample w -> Alcotest.fail ("refuted: " ^ w)
  | Synth.Seq_check.Gave_up s -> Alcotest.fail ("gave up: " ^ s)

let test_seq_check_sat_cex () =
  let ga, gb = bmc_pair ~inverted:false in
  match Synth.Seq_check.run_sat ~frames:4 ga gb with
  | Synth.Seq_check.Counterexample w ->
    Alcotest.(check string) "normalized witness"
      "cycle 1, output f: false vs true" w
  | Synth.Seq_check.Equivalent -> Alcotest.fail "proved inequivalent pair"
  | Synth.Seq_check.Gave_up s -> Alcotest.fail ("gave up: " ^ s)

(* ------------------------------------------------- SAT-validated sweep *)

let test_sweep_sat_strengthens () =
  (* Two latches with logically equal but structurally different
     next-state functions: invisible to the syntactic merge, proved equal
     by the class induction. *)
  let g = Aig.create () in
  let a = Aig.pi g "a" in
  let b = Aig.pi g "b" in
  let c = Aig.pi g "c" in
  let p = Aig.latch g "p" ~init:false ~reset:Rtl.Design.No_reset ~is_config:false in
  let q = Aig.latch g "q" ~init:false ~reset:Rtl.Design.No_reset ~is_config:false in
  Aig.set_next g p (Aig.and_ g a (Aig.or_ g b c));
  Aig.set_next g q (Aig.or_ g (Aig.and_ g a b) (Aig.and_ g a c));
  Aig.po g "p" p;
  Aig.po g "q" q;
  let syn = Synth.Sweep.run ~sat:false g in
  let sat = Synth.Sweep.run ~sat:true g in
  Alcotest.(check int) "syntactic keeps both" 2 (Aig.num_latches syn);
  Alcotest.(check int) "sat merges" 1 (Aig.num_latches sat);
  (match Synth.Equiv.aig_vs_aig ~cycles:32 ~runs:3 ~seed:1 g sat with
   | None -> ()
   | Some m ->
     Alcotest.fail ("merge broke: " ^ Synth.Equiv.mismatch_to_string m));
  match Synth.Equiv.check_sat g sat with
  | Synth.Equiv.Refuted c ->
    Alcotest.fail ("merge refuted: " ^ Synth.Equiv.mismatch_to_string c.first)
  | Synth.Equiv.Proved | Synth.Equiv.Undecided _ -> ()

let test_sweep_sat_const () =
  (* A latch fed by a logically-but-not-structurally false cone: only the
     constant induction sees through it. *)
  let g = Aig.create () in
  let a = Aig.pi g "a" in
  let b = Aig.pi g "b" in
  let q = Aig.latch g "q" ~init:false ~reset:Rtl.Design.No_reset ~is_config:false in
  let r = Aig.latch g "r" ~init:false ~reset:Rtl.Design.No_reset ~is_config:false in
  Aig.set_next g q (Aig.and_ g (Aig.and_ g a b) (Aig.not_ a));
  Aig.set_next g r a;
  Aig.po g "f" (Aig.xor_ g q r);
  let syn = Synth.Sweep.run ~sat:false g in
  let sat = Synth.Sweep.run ~sat:true g in
  Alcotest.(check int) "syntactic keeps both" 2 (Aig.num_latches syn);
  Alcotest.(check int) "sat folds the dead latch" 1 (Aig.num_latches sat);
  match Synth.Equiv.aig_vs_aig ~cycles:32 ~runs:3 ~seed:1 g sat with
  | None -> ()
  | Some m ->
    Alcotest.fail ("fold broke: " ^ Synth.Equiv.mismatch_to_string m)

(* -------------------------------------------------- PCtrl certification *)

let pctrl_sides () =
  let bindings = Pctrl.Controller.bindings Pctrl.Controller.Cached in
  let flex =
    (Synth.Lower.run (Pctrl.Controller.full_design ())).Synth.Lower.aig
  in
  let a = Synth.Partial_eval.bind_aig_tables flex bindings in
  let b =
    (Synth.Lower.run
       (Pctrl.Controller.auto_design Pctrl.Controller.Cached))
      .Synth.Lower.aig
  in
  (flex, bindings, a, b)

let test_pctrl_certified () =
  let _, _, a, b = pctrl_sides () in
  match Synth.Equiv.check_sat a b with
  | Synth.Equiv.Proved -> ()
  | Synth.Equiv.Refuted c ->
    Alcotest.fail ("refuted: " ^ Synth.Equiv.mismatch_to_string c.first)
  | Synth.Equiv.Undecided s -> Alcotest.fail ("undecided: " ^ s)

let test_pctrl_mutation_refuted () =
  (* Seed 8 flips a dispatch-table bit whose effect surfaces within a few
     cycles (seen first by simulation, then certified here): the SAT
     engine must refute with a concrete replayed witness. *)
  let flex, bindings, _, b = pctrl_sides () in
  let rng = Workload.Rng.make 8 in
  let i = Workload.Rng.int rng (List.length bindings) in
  let _, contents = List.nth bindings i in
  let e = Workload.Rng.int rng (Array.length contents) in
  let bit = Workload.Rng.int rng (Bitvec.width contents.(e)) in
  let contents' = Array.copy contents in
  contents'.(e) <-
    Bitvec.set contents.(e) bit (not (Bitvec.get contents.(e) bit));
  let bindings' =
    List.mapi
      (fun j (n, c) -> if j = i then (n, contents') else (n, c))
      bindings
  in
  let a' = Synth.Partial_eval.bind_aig_tables flex bindings' in
  match Synth.Equiv.check_sat ~frames:6 a' b with
  | Synth.Equiv.Refuted c ->
    Alcotest.(check bool) "within the BMC bound" true
      (c.first.Synth.Equiv.cycle < 6);
    Alcotest.(check bool) "tape ends at the mismatch" true
      (Array.length c.tape = c.first.Synth.Equiv.cycle + 1)
  | Synth.Equiv.Proved -> Alcotest.fail "proved a mutated design"
  | Synth.Equiv.Undecided s -> Alcotest.fail ("undecided: " ^ s)

(* ----------------------------------------------------------------- main *)

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "duplicate + tautology" `Quick
            test_duplicate_and_tautology;
          Alcotest.test_case "level-0 unit propagation" `Quick
            test_unit_propagation_level0;
          Alcotest.test_case "assumptions incremental" `Quick
            test_assumptions_incremental;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole;
          prop_cdcl_vs_brute;
          prop_incremental_assumptions;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip fixed" `Quick test_dimacs_roundtrip_fixed;
          prop_dimacs_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_dimacs_parse_errors;
          Alcotest.test_case "parse features" `Quick test_dimacs_parse_features;
          Alcotest.test_case "load into solver" `Quick test_dimacs_load;
          Alcotest.test_case "golden hand.cnf" `Quick test_golden_dimacs_hand;
          Alcotest.test_case "golden rand.cnf" `Quick test_golden_dimacs_rand;
        ] );
      ( "tseitin",
        [
          prop_tseitin_matches_eval;
          Alcotest.test_case "constant folding" `Quick test_tseitin_const;
        ] );
      ( "equiv",
        [
          prop_engines_agree;
          prop_flow_never_refuted;
          prop_sweep_sat_preserves;
          prop_seq_check_sat_agrees;
          Alcotest.test_case "combinational refutation" `Quick
            test_check_sat_comb_refute;
          Alcotest.test_case "induction proof" `Quick
            test_check_sat_induction_proof;
          Alcotest.test_case "BMC refutation" `Quick test_check_sat_bmc_refute;
          Alcotest.test_case "BMC bound is not a proof" `Quick
            test_check_sat_bmc_bound;
          Alcotest.test_case "run_sat completes renamed proof" `Quick
            test_seq_check_sat_proof;
          Alcotest.test_case "run_sat concrete witness" `Quick
            test_seq_check_sat_cex;
          Alcotest.test_case "sweep sat merges hidden duplicates" `Quick
            test_sweep_sat_strengthens;
          Alcotest.test_case "sweep sat folds hidden constants" `Quick
            test_sweep_sat_const;
          Alcotest.test_case "pctrl partial evaluation certified" `Quick
            test_pctrl_certified;
          Alcotest.test_case "pctrl mutation refuted" `Quick
            test_pctrl_mutation_refuted;
        ] );
    ]
