(* The fault-injection subsystem: site enumeration, golden-vs-faulty
   classification (masked / mismatch / hang), campaign determinism across
   worker counts, and crash-resilient journal resume. *)

let lib = Cells.Library.vt90

let small_fsm seed =
  Workload.Rand_fsm.generate ~seed ~num_inputs:2 ~num_outputs:4 ~num_states:5

(* A flexible FSM with its tables bound as simulation config — the richest
   fault surface: config tables plus state/config registers. *)
let flexible_spec ?(cycles = 12) seed =
  let fsm = small_fsm seed in
  let design = Core.Fsm_ir.to_flexible_rtl ~annotate:false fsm in
  let config = Core.Fsm_ir.config_bindings fsm in
  let rng = Workload.Rng.make (seed + 100) in
  let stimulus =
    List.init cycles (fun _ -> [ ("in", Workload.Rng.bitvec rng ~width:2) ])
  in
  Fault.Sim.spec ~config ~stimulus ~watch:[ "out" ] design

(* ------------------------------------------------------- classification *)

let test_control_all_masked () =
  let spec = flexible_spec 1 in
  let report =
    Fault.Campaign.run ~seed:0 ~sites:0 ~model:Fault.Campaign.Control spec
  in
  Alcotest.(check int) "one control site" 1 report.Fault.Campaign.injected;
  Alcotest.(check int) "100% masked" 1 report.Fault.Campaign.masked;
  Alcotest.(check int) "no failures" 0 report.Fault.Campaign.failed

let test_table_flip_visible () =
  let spec = flexible_spec 1 in
  let report =
    Fault.Campaign.run ~seed:0 ~sites:0 ~model:Fault.Campaign.Tables spec
  in
  let config_bits =
    List.fold_left
      (fun acc (_, c) ->
        Array.fold_left (fun a v -> a + Bitvec.width v) acc c)
      0 spec.Fault.Sim.config
  in
  Alcotest.(check int) "population = bound config bits" config_bits
    report.Fault.Campaign.population;
  Alcotest.(check int) "exhaustive" config_bits report.Fault.Campaign.injected;
  Alcotest.(check bool) "at least one flip visible at the outputs" true
    (report.Fault.Campaign.mismatches >= 1);
  Alcotest.(check bool) "but not every flip (reachability masks)" true
    (report.Fault.Campaign.masked >= 1);
  Alcotest.(check int) "every site classified"
    report.Fault.Campaign.injected
    (report.Fault.Campaign.masked + report.Fault.Campaign.mismatches
     + report.Fault.Campaign.hangs);
  Alcotest.(check int) "no job failures" 0 report.Fault.Campaign.failed

let test_reg_upset_hang () =
  (* A 1-bit self-holding register drives [done]; upsetting it at cycle 0
     clears it forever, so the faulty run never completes: a hang, not a
     mismatch. *)
  let b = Rtl.Builder.create "hangy" in
  let q = Rtl.Builder.reg_declare b ~init:(Bitvec.ones 1) "alive" ~width:1 in
  Rtl.Builder.reg_connect b "alive" q;
  Rtl.Builder.output b "done" q;
  let design = Rtl.Builder.finish b in
  let stimulus = List.init 4 (fun _ -> []) in
  let spec = Fault.Sim.spec ~done_signal:"done" ~stimulus ~watch:[] design in
  let golden = Fault.Sim.golden spec in
  Alcotest.(check bool) "golden completes" true golden.Fault.Sim.done_seen;
  match
    Fault.Sim.run_site spec golden
      (Fault.Site.Reg_bit { reg = "alive"; bit = 0; cycle = 0 })
  with
  | Fault.Sim.Hang _ -> ()
  | o ->
    Alcotest.failf "expected hang, got %s" (Fault.Sim.outcome_to_string o)

let test_outcome_codec () =
  List.iter
    (fun o ->
      match Fault.Sim.outcome_of_string (Fault.Sim.outcome_to_string o) with
      | Ok o' when o = o' -> ()
      | Ok o' ->
        Alcotest.failf "codec mangled %s into %s"
          (Fault.Sim.outcome_to_string o)
          (Fault.Sim.outcome_to_string o')
      | Error m -> Alcotest.failf "codec rejected its own encoding: %s" m)
    [
      Fault.Sim.Masked;
      Fault.Sim.Mismatch { cycle = 3; signal = "out 2" };
      Fault.Sim.Hang "done never asserted within 24 cycles";
    ]

(* ---------------------------------------------------------- determinism *)

let test_campaign_deterministic () =
  let spec = flexible_spec 2 in
  let run jobs =
    Fault.Campaign.run ~jobs ~seed:7 ~sites:20 ~model:Fault.Campaign.All spec
  in
  let a = run 1 in
  Alcotest.(check bool) "same seed, same report" true (a = run 1);
  Alcotest.(check bool) "independent of worker count" true (a = run 3);
  let sites (r : Fault.Campaign.report) =
    List.map (fun row -> row.Fault.Campaign.site) r.Fault.Campaign.rows
  in
  let b = Fault.Campaign.run ~seed:8 ~sites:20 ~model:Fault.Campaign.All spec in
  Alcotest.(check bool) "different seed, different sample" true
    (sites a <> sites b);
  (* The control site survives sampling under the All model. *)
  Alcotest.(check bool) "control site retained" true
    (List.mem Fault.Site.No_fault (sites a))

let test_campaign_resume_identical () =
  let spec = flexible_spec 3 in
  let path = Filename.temp_file "fault" ".jsonl" in
  Sys.remove path;
  let model = Fault.Campaign.Tables in
  let fresh = Fault.Campaign.run ~seed:5 ~sites:16 ~model spec in
  let j = Engine.Journal.open_append path in
  let journaled = Fault.Campaign.run ~journal:j ~seed:5 ~sites:16 ~model spec in
  Engine.Journal.close j;
  Alcotest.(check bool) "journaling does not change the report" true
    (fresh = journaled);
  let entries = Engine.Journal.load path in
  Alcotest.(check int) "every site journaled" 16 (List.length entries);
  (* Resume from a partial journal, as if the first run was killed. *)
  let partial = List.filteri (fun i _ -> i < 7) entries in
  let resumed =
    Fault.Campaign.run ~resume:partial ~seed:5 ~sites:16 ~model spec
  in
  Alcotest.(check bool) "resumed report = fresh report" true (fresh = resumed);
  let render r =
    Fault.Campaign.to_table r ^ Fault.Campaign.summary_line r
  in
  Alcotest.(check string) "rendered output byte-identical" (render fresh)
    (render resumed);
  Sys.remove path

(* ------------------------------------------------------------- netlist *)

let test_stuck_at_netlist () =
  let fsm = small_fsm 4 in
  let design =
    Synth.Partial_eval.bind_tables
      (Core.Fsm_ir.to_flexible_rtl fsm)
      (Core.Fsm_ir.config_bindings fsm)
  in
  let aig = (Synth.Flow.compile lib design).Synth.Flow.aig in
  let aspec = { Fault.Sim.aig; cycles = 16; seed = 11 } in
  let golden = Fault.Sim.aig_golden aspec in
  (match Fault.Sim.aig_run_site aspec golden Fault.Site.No_fault with
   | Fault.Sim.Masked -> ()
   | o ->
     Alcotest.failf "no-fault netlist run should mask, got %s"
       (Fault.Sim.outcome_to_string o));
  let sites = Fault.Site.stuck_sites aig in
  Alcotest.(check bool) "both polarities for every AND" true
    (List.length sites = 2 * Aig.num_ands aig && sites <> []);
  let outcomes = List.map (Fault.Sim.aig_run_site aspec golden) sites in
  let visible =
    List.length
      (List.filter (function Fault.Sim.Mismatch _ -> true | _ -> false) outcomes)
  in
  Alcotest.(check bool) "some stuck faults reach an output" true (visible > 0);
  Alcotest.(check bool) "some stuck faults are masked" true
    (visible < List.length sites)

(* A bound random FSM lowered to a netlist — the stuck-at fault surface
   for the packed-vs-scalar identity checks (no full synthesis flow, so
   the property iterates cheaply). *)
let lowered_aig seed =
  let fsm = small_fsm seed in
  let design =
    Synth.Partial_eval.bind_tables
      (Core.Fsm_ir.to_flexible_rtl fsm)
      (Core.Fsm_ir.config_bindings fsm)
  in
  (Synth.Lower.run design).Synth.Lower.aig

let prop_packed_sites_identical =
  Prop.test ~iters:20 "packed site classification = scalar"
    (Prop.int 100_000)
    (fun seed ->
      let aig = lowered_aig seed in
      let aspec = { Fault.Sim.aig; cycles = 12; seed = seed + 1 } in
      let golden = Fault.Sim.aig_golden aspec in
      (* Keep several packed chunks' worth so the chunking seam at
         [Aig.Compiled.lanes] is exercised. *)
      let sites =
        List.filteri (fun i _ -> i < 150) (Fault.Site.stuck_sites aig)
      in
      let scalar =
        List.map (fun s -> (s, Fault.Sim.aig_run_site aspec golden s)) sites
      in
      Fault.Sim.aig_run_sites_packed aspec golden sites = scalar)

let test_campaign_packed_identical () =
  let aig = lowered_aig 6 in
  let aspec = { Fault.Sim.aig; cycles = 12; seed = 21 } in
  let spec = flexible_spec 6 in
  let run packed =
    Fault.Campaign.run ~packed ~aig:aspec ~seed:9 ~sites:80
      ~model:Fault.Campaign.Stuck spec
  in
  let p = run true and s = run false in
  Alcotest.(check bool) "sites classified" true (p.Fault.Campaign.injected > 0);
  Alcotest.(check bool) "reports identical" true (p = s);
  let render r = Fault.Campaign.to_table r ^ Fault.Campaign.summary_line r in
  Alcotest.(check string) "rendered output byte-identical" (render s) (render p)

let test_campaign_packed_resume () =
  let aig = lowered_aig 7 in
  let aspec = { Fault.Sim.aig; cycles = 12; seed = 33 } in
  let spec = flexible_spec 7 in
  let model = Fault.Campaign.Stuck in
  let path = Filename.temp_file "fault-packed" ".jsonl" in
  Sys.remove path;
  let fresh = Fault.Campaign.run ~aig:aspec ~seed:3 ~sites:70 ~model spec in
  let j = Engine.Journal.open_append path in
  let journaled =
    Fault.Campaign.run ~journal:j ~aig:aspec ~seed:3 ~sites:70 ~model spec
  in
  Engine.Journal.close j;
  Alcotest.(check bool) "journaling does not change the report" true
    (fresh = journaled);
  let entries = Engine.Journal.load path in
  let partial = List.filteri (fun i _ -> i < 31) entries in
  let resumed =
    Fault.Campaign.run ~resume:partial ~aig:aspec ~seed:3 ~sites:70 ~model spec
  in
  Alcotest.(check bool) "packed resume = fresh report" true (fresh = resumed);
  Sys.remove path

(* ----------------------------------------------------------------- vcd *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_vcd_of_first_mismatch () =
  let spec = flexible_spec 1 in
  let report =
    Fault.Campaign.run ~seed:0 ~sites:0 ~model:Fault.Campaign.Tables spec
  in
  match Fault.Campaign.first_mismatch report with
  | None -> Alcotest.fail "exhaustive table campaign found no mismatch"
  | Some site ->
    let vcd = Fault.Sim.vcd_site spec site in
    Alcotest.(check bool) "declares the watched signal" true
      (contains vcd "out");
    Alcotest.(check bool) "well-formed header" true
      (contains vcd "$enddefinitions")

let () =
  Alcotest.run "fault"
    [
      ( "classify",
        [
          Alcotest.test_case "control campaign 100% masked" `Quick
            test_control_all_masked;
          Alcotest.test_case "table bit flip visible" `Quick
            test_table_flip_visible;
          Alcotest.test_case "register upset hang" `Quick test_reg_upset_hang;
          Alcotest.test_case "outcome codec round-trip" `Quick
            test_outcome_codec;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic across seeds and jobs" `Quick
            test_campaign_deterministic;
          Alcotest.test_case "journal resume identical" `Quick
            test_campaign_resume_identical;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "stuck-at on the mapped AIG" `Quick
            test_stuck_at_netlist;
          prop_packed_sites_identical;
          Alcotest.test_case "campaign packed = scalar" `Quick
            test_campaign_packed_identical;
          Alcotest.test_case "campaign packed resume identical" `Quick
            test_campaign_packed_resume;
        ] );
      ( "vcd", [ Alcotest.test_case "first mismatch trace" `Quick
                   test_vcd_of_first_mismatch ] );
    ]
