(* The synthesis job engine: fingerprint identity, summary/disk-cache
   round-trips, worker-pool semantics, and end-to-end determinism of a
   figure sweep across worker counts and cache temperatures. *)

let lib = Cells.Library.vt90

let fsm_design seed =
  let fsm =
    Workload.Rand_fsm.generate ~seed ~num_inputs:2 ~num_outputs:4
      ~num_states:5
  in
  Synth.Partial_eval.bind_tables
    (Core.Fsm_ir.to_flexible_rtl ~annotate:true fsm)
    (Core.Fsm_ir.config_bindings fsm)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "engine-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (* Cache.create makes the directory itself. *)
    d

(* ---------------------------------------------------------- fingerprint *)

let test_fingerprint_stable () =
  (* Rebuilding the identical design from scratch yields the same key. *)
  let key d = Engine.Fingerprint.job ~lib ~options:Synth.Flow.default d in
  Alcotest.(check string)
    "same design, same options, same lib"
    (key (fsm_design 3)) (key (fsm_design 3))

let test_fingerprint_sensitivity () =
  let d = fsm_design 3 in
  let base = Engine.Fingerprint.job ~lib ~options:Synth.Flow.default d in
  let distinct what key =
    if key = base then Alcotest.failf "%s did not change the fingerprint" what
  in
  distinct "different design"
    (Engine.Fingerprint.job ~lib ~options:Synth.Flow.default (fsm_design 4));
  let o = Synth.Flow.default in
  let variants =
    [ ("collapse_cap", { o with Synth.Flow.collapse_cap = 13 });
      ("espresso_iters", { o with Synth.Flow.espresso_iters = 4 });
      ("honor_tool_annots", { o with Synth.Flow.honor_tool_annots = false });
      ("honor_generator_annots",
       { o with Synth.Flow.honor_generator_annots = true });
      ("annot_width_cap", { o with Synth.Flow.annot_width_cap = 31 });
      ("retime", { o with Synth.Flow.retime = true });
      ("stateprop", { o with Synth.Flow.stateprop = false });
      ("self_check", { o with Synth.Flow.self_check = true }) ]
  in
  List.iter
    (fun (what, options) ->
      distinct ("option " ^ what) (Engine.Fingerprint.job ~lib ~options d))
    variants;
  (* A resized cell re-keys the whole library. *)
  let tweaked =
    match lib.Cells.Library.cells with
    | c :: rest ->
      { lib with
        Cells.Library.cells =
          { c with Cells.Cell.area = c.Cells.Cell.area +. 0.25 } :: rest }
    | [] -> assert false
  in
  distinct "library cell area"
    (Engine.Fingerprint.job ~lib:tweaked ~options:Synth.Flow.default d)

(* -------------------------------------------------------------- summary *)

let compile_summary d =
  Engine.Summary.of_flow ~wall_s:0.015625
    (Synth.Flow.compile lib d)

let test_summary_roundtrip () =
  let s = compile_summary (fsm_design 7) in
  match Engine.Summary.of_string (Engine.Summary.to_string s) with
  | Error m -> Alcotest.failf "summary did not parse back: %s" m
  | Ok s' ->
    (* Bit-exact round-trip, floats included: polymorphic equality. *)
    if s <> s' then
      Alcotest.failf "summary round-trip not identical:@.%s@.vs@.%s"
        (Engine.Summary.to_string s) (Engine.Summary.to_string s')

let test_summary_rejects_garbage () =
  (match Engine.Summary.of_string "not a summary" with
   | Ok _ -> Alcotest.fail "parsed garbage"
   | Error _ -> ());
  match Engine.Summary.of_string "ctrlgen-summary v1\ncomb_area nope\n" with
  | Ok _ -> Alcotest.fail "parsed bad float"
  | Error _ -> ()

(* ----------------------------------------------------------- disk cache *)

let test_cache_disk_roundtrip () =
  let dir = fresh_dir () in
  let s = compile_summary (fsm_design 11) in
  let c1 = Engine.Cache.create ~dir () in
  Engine.Cache.store c1 "somekey" s;
  (* A different cache instance over the same directory sees the entry. *)
  let c2 = Engine.Cache.create ~dir () in
  (match Engine.Cache.find c2 "somekey" with
   | Some (s', `Disk) when s' = s -> ()
   | Some (_, `Disk) -> Alcotest.fail "disk entry differs from stored summary"
   | Some (_, `Memory) -> Alcotest.fail "expected a disk hit"
   | None -> Alcotest.fail "entry not found on disk");
  (* Second lookup is served from memory. *)
  (match Engine.Cache.find c2 "somekey" with
   | Some (_, `Memory) -> ()
   | _ -> Alcotest.fail "expected a memory hit");
  let stats = Engine.Cache.stats c2 in
  Alcotest.(check int) "disk hits" 1 stats.Engine.Cache.disk_hits;
  Alcotest.(check int) "mem hits" 1 stats.Engine.Cache.mem_hits;
  (* A corrupt entry is a miss, not a crash. *)
  Out_channel.with_open_text
    (Filename.concat dir "badkey.summary")
    (fun oc -> Out_channel.output_string oc "garbage");
  (match Engine.Cache.find c2 "badkey" with
   | None -> ()
   | Some _ -> Alcotest.fail "corrupt entry should miss")

(* ----------------------------------------------------------------- pool *)

let test_pool_isolation_and_order () =
  let f x = if x mod 4 = 0 then failwith (Printf.sprintf "boom %d" x) else x * x in
  let results = Engine.Pool.map ~jobs:3 f [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  List.iteri
    (fun i r ->
      let x = i + 1 in
      match r with
      | Ok y -> Alcotest.(check int) (Printf.sprintf "slot %d" x) (x * x) y
      | Error (Engine.Pool.Exn { exn; _ }) ->
        if x mod 4 <> 0 then Alcotest.failf "unexpected error at %d: %s" x exn
      | Error e ->
        Alcotest.failf "unexpected error kind at %d: %s" x
          (Engine.Pool.error_message e))
    results;
  Alcotest.(check int) "result count" 9 (List.length results)

let test_pool_timeout () =
  let f x =
    if x = 1 then Unix.sleepf 0.05;
    x
  in
  let check_results results =
    (match List.nth results 0 with
     | Error (Engine.Pool.Timeout _) -> ()
     | Ok _ -> Alcotest.fail "slow job should have timed out"
     | Error e ->
       Alcotest.failf "expected timeout, got %s" (Engine.Pool.error_message e));
    match List.nth results 1 with
    | Ok 2 -> ()
    | _ -> Alcotest.fail "fast job should succeed"
  in
  (* Same semantics inline and on domains. *)
  check_results (Engine.Pool.map ~jobs:1 ~timeout_s:0.01 f [ 1; 2 ]);
  check_results (Engine.Pool.map ~jobs:2 ~timeout_s:0.01 f [ 1; 2 ])

let test_pool_cancel () =
  let pool = Engine.Pool.create ~jobs:1 () in
  let slow = Engine.Pool.submit pool (fun () -> Unix.sleepf 0.05; 1) in
  let queued = Engine.Pool.submit pool (fun () -> 2) in
  Engine.Pool.cancel queued;
  (match Engine.Pool.await queued with
   | Error Engine.Pool.Cancelled -> ()
   | Ok _ -> Alcotest.fail "cancelled job ran anyway"
   | Error e ->
     Alcotest.failf "expected cancelled, got %s" (Engine.Pool.error_message e));
  (match Engine.Pool.await slow with
   | Ok 1 -> ()
   | _ -> Alcotest.fail "running job should finish normally");
  Engine.Pool.shutdown pool

let test_pool_timeout_no_wedge () =
  (* A thunk that outlives its deadline keeps its worker busy until it
     returns (cooperative cancellation), but the pool recovers: the next
     job runs normally on the same worker. *)
  let pool = Engine.Pool.create ~jobs:1 () in
  let slow =
    Engine.Pool.submit pool ~timeout_s:0.01 (fun () ->
        Unix.sleepf 0.08;
        1)
  in
  (match Engine.Pool.await slow with
   | Error (Engine.Pool.Timeout _) -> ()
   | Ok _ -> Alcotest.fail "slow job should time out"
   | Error e ->
     Alcotest.failf "expected timeout, got %s" (Engine.Pool.error_message e));
  let next = Engine.Pool.submit pool (fun () -> 2) in
  (match Engine.Pool.await next with
   | Ok 2 -> ()
   | _ -> Alcotest.fail "pool wedged after a timed-out job");
  Engine.Pool.shutdown pool

(* ----------------------------------------------------------- quarantine *)

let test_cache_quarantine () =
  let dir = fresh_dir () in
  let s = compile_summary (fsm_design 17) in
  let c1 = Engine.Cache.create ~dir () in
  Engine.Cache.store c1 "goodkey" s;
  Out_channel.with_open_text
    (Filename.concat dir "rotkey.summary")
    (fun oc -> Out_channel.output_string oc "not a summary at all");
  let c2 = Engine.Cache.create ~dir () in
  (match Engine.Cache.find c2 "rotkey" with
   | None -> ()
   | Some _ -> Alcotest.fail "corrupt entry should miss");
  Alcotest.(check int) "quarantined count" 1
    (Engine.Cache.stats c2).Engine.Cache.quarantined;
  Alcotest.(check bool) "entry moved aside" true
    (Sys.file_exists (Filename.concat dir "rotkey.corrupt"));
  Alcotest.(check bool) "original gone" false
    (Sys.file_exists (Filename.concat dir "rotkey.summary"));
  (match Engine.Cache.find c2 "goodkey" with
   | Some (s', `Disk) when s' = s -> ()
   | _ -> Alcotest.fail "good entry lost after quarantine")

(* -------------------------------------------------------------- journal *)

let test_journal_roundtrip () =
  let path = Filename.temp_file "journal" ".jsonl" in
  let j = Engine.Journal.open_append path in
  Engine.Journal.append j ~key:"a" ~value:(Ok "masked");
  Engine.Journal.append j ~key:"b\"x\\y" ~value:(Ok "mismatch 3 out\twith tab");
  Engine.Journal.append j ~key:"c" ~value:(Error "boom: \"quoted\"");
  Engine.Journal.close j;
  (match Engine.Journal.load path with
   | [ a; b; c ] ->
     Alcotest.(check string) "key a" "a" a.Engine.Journal.key;
     (match a.Engine.Journal.value with
      | Ok "masked" -> ()
      | _ -> Alcotest.fail "value a");
     Alcotest.(check string) "escaped key" "b\"x\\y" b.Engine.Journal.key;
     (match b.Engine.Journal.value with
      | Ok "mismatch 3 out\twith tab" -> ()
      | _ -> Alcotest.fail "escaped value");
     (match c.Engine.Journal.value with
      | Error "boom: \"quoted\"" -> ()
      | _ -> Alcotest.fail "error entry")
   | l -> Alcotest.failf "expected 3 entries, got %d" (List.length l));
  (* A torn tail record (kill mid-write) is skipped; prior entries load. *)
  Out_channel.with_open_gen
    [ Open_append; Open_text ]
    0o644 path
    (fun oc -> Out_channel.output_string oc "{\"k\":\"d\",\"v\":\"tru");
  Alcotest.(check int) "torn tail skipped" 3
    (List.length (Engine.Journal.load path));
  Sys.remove path

(* ---------------------------------------------------------------- batch *)

let batch_codec =
  {
    Engine.Batch.encode = string_of_int;
    decode =
      (fun s ->
        match int_of_string_opt s with
        | Some i -> Ok i
        | None -> Error "not an int");
  }

let test_batch_error_rows_and_retry () =
  (* A deterministic failure settles as an Error row; the batch finishes. *)
  let f x = if x = 3 then failwith "boom" else x * 10 in
  (match Engine.Batch.run ~key:string_of_int ~codec:batch_codec f [ 1; 2; 3; 4 ] with
   | [ Ok 10; Ok 20; Error _; Ok 40 ] -> ()
   | _ -> Alcotest.fail "unexpected batch results");
  (* A flaky item heals within the retry budget. *)
  let attempts = ref 0 in
  let flaky x =
    if x = 1 then begin
      incr attempts;
      if !attempts < 3 then failwith "flaky"
    end;
    x
  in
  (match
     Engine.Batch.run ~retries:3 ~backoff_s:0.001 ~key:string_of_int
       ~codec:batch_codec flaky [ 1; 2 ]
   with
   | [ Ok 1; Ok 2 ] -> ()
   | _ -> Alcotest.fail "retry did not heal the flaky job");
  Alcotest.(check int) "took three attempts" 3 !attempts

let test_batch_journal_resume () =
  let path = Filename.temp_file "batch" ".jsonl" in
  Sys.remove path;
  let calls = ref 0 in
  let f x =
    incr calls;
    x * x
  in
  let j = Engine.Journal.open_append path in
  let first =
    Engine.Batch.run ~journal:j ~key:string_of_int ~codec:batch_codec f
      [ 1; 2; 3; 4; 5 ]
  in
  Engine.Journal.close j;
  Alcotest.(check int) "computed every item" 5 !calls;
  (* Resume: journaled results are decoded, never recomputed; new items
     still run. *)
  let resume = Engine.Journal.load path in
  Alcotest.(check int) "everything journaled" 5 (List.length resume);
  let again =
    Engine.Batch.run ~resume ~key:string_of_int ~codec:batch_codec f
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Alcotest.(check int) "only the new item ran" 6 !calls;
  (match again with
   | [ Ok 1; Ok 4; Ok 9; Ok 16; Ok 25; Ok 36 ] -> ()
   | _ -> Alcotest.fail "resumed results differ");
  ignore first;
  Sys.remove path

(* --------------------------------------------------------------- engine *)

let test_engine_coalesces_and_isolates () =
  let e = Engine.create ~jobs:1 lib in
  let d = fsm_design 13 in
  let outcomes = Engine.run e [ Engine.job d; Engine.job d; Engine.job d ] in
  (match outcomes with
   | [ Ok a; Ok b; Ok c ] when a = b && b = c -> ()
   | _ -> Alcotest.fail "identical jobs should share one result");
  let s = Engine.stats e in
  Alcotest.(check int) "executed once" 1 s.Engine.executed;
  Alcotest.(check int) "coalesced twice" 2 s.Engine.mem_hits;
  (* A malformed design (nets referencing inputs that are gone) crashes its
     own job during lowering and nothing else. *)
  let bad_design = { d with Rtl.Design.inputs = [] } in
  let outcomes = Engine.run e [ Engine.job bad_design; Engine.job d ] in
  (match outcomes with
   | [ Error (Engine.Pool.Exn _); Ok _ ] -> ()
   | [ Error e1; _ ] ->
     Alcotest.failf "expected Exn error, got %s"
       (Engine.Pool.error_message e1)
   | _ -> Alcotest.fail "crashing job must not poison its batch")

(* fig5's quick grid, one seed: the determinism workhorse. *)
let fig5_rows () =
  Experiments.Fig5.run ~seeds:[ 0 ] ~grid:Experiments.Fig5.quick_grid ()

let check_rows_equal what (a : Experiments.Fig5.row list) b =
  (* Bit-identical areas: polymorphic equality on the float-carrying rows. *)
  if a <> b then Alcotest.failf "%s: fig5 rows differ" what

let test_determinism_parallel () =
  Engine.set_default (Engine.create ~jobs:1 lib);
  let seq = fig5_rows () in
  Engine.set_default (Engine.create ~jobs:4 lib);
  let par = fig5_rows () in
  check_rows_equal "sequential vs -j 4" seq par;
  let s = Engine.stats (Engine.default ()) in
  Alcotest.(check int) "parallel run missed everything"
    s.Engine.submitted s.Engine.executed;
  (* Same engine again: everything is a cache hit and nothing recompiles. *)
  let warm = fig5_rows () in
  check_rows_equal "cold vs warm (memory)" seq warm;
  let s' = Engine.stats (Engine.default ()) in
  Alcotest.(check int) "warm run executed nothing"
    s.Engine.executed s'.Engine.executed;
  if s'.Engine.mem_hits <= s.Engine.mem_hits then
    Alcotest.fail "warm run reported no cache hits"

let test_engine_retry_counts () =
  let e = Engine.create ~jobs:1 ~retries:1 ~backoff_s:0.001 lib in
  let d = fsm_design 13 in
  let bad = { d with Rtl.Design.inputs = [] } in
  (match Engine.run e [ Engine.job bad ] with
   | [ Error _ ] -> ()
   | _ -> Alcotest.fail "deterministically bad job should still fail");
  Alcotest.(check int) "one retry recorded" 1 (Engine.stats e).Engine.retried

let test_sweep_degrades_gracefully () =
  (* An engine whose every job times out: the sweep still yields a full
     row list of error cells and records each failure, instead of
     aborting on the first one. *)
  Engine.set_default (Engine.create ~jobs:1 ~timeout_s:1e-6 lib);
  let before = List.length (Experiments.Exp_common.failures ()) in
  let res =
    Experiments.Exp_common.areas_result
      [ Engine.job (fsm_design 19); Engine.job (fsm_design 23) ]
  in
  (match res with
   | [ Error _; Error _ ] -> ()
   | _ -> Alcotest.fail "expected every job to time out");
  Alcotest.(check int) "failures recorded"
    (before + 2)
    (List.length (Experiments.Exp_common.failures ()));
  Alcotest.(check string) "failed cell renders FAIL" "FAIL"
    (Experiments.Exp_common.fmt_area_result (Error "x"));
  Alcotest.(check string) "failed ratio renders dash" "-"
    (Experiments.Exp_common.fmt_ratio_result (Error "x") (Ok 1.0));
  Engine.set_default (Engine.create ~jobs:1 lib)

let test_determinism_disk_cache () =
  let dir = fresh_dir () in
  Engine.set_default (Engine.create ~jobs:1 ~cache_dir:dir lib);
  let cold = fig5_rows () in
  (* Fresh process-equivalent: new engine, same directory. *)
  Engine.set_default (Engine.create ~jobs:1 ~cache_dir:dir lib);
  let warm = fig5_rows () in
  check_rows_equal "cold vs warm (disk)" cold warm;
  let s = Engine.stats (Engine.default ()) in
  Alcotest.(check int) "warm disk run executed nothing" 0 s.Engine.executed;
  if s.Engine.disk_hits = 0 then Alcotest.fail "no disk hits on warm run";
  (* Restore a clean default for any later test. *)
  Engine.set_default (Engine.create ~jobs:1 lib)

let () =
  Alcotest.run "engine"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "stable across rebuilds" `Quick
            test_fingerprint_stable;
          Alcotest.test_case "sensitive to every input" `Quick
            test_fingerprint_sensitivity;
        ] );
      ( "summary",
        [
          Alcotest.test_case "text round-trip" `Quick test_summary_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_summary_rejects_garbage;
        ] );
      ( "cache",
        [
          Alcotest.test_case "disk round-trip" `Quick test_cache_disk_roundtrip;
          Alcotest.test_case "corrupt entry quarantined" `Quick
            test_cache_quarantine;
        ] );
      ( "pool",
        [
          Alcotest.test_case "exception isolation, order" `Quick
            test_pool_isolation_and_order;
          Alcotest.test_case "timeout" `Quick test_pool_timeout;
          Alcotest.test_case "cancellation" `Quick test_pool_cancel;
          Alcotest.test_case "timeout does not wedge the pool" `Quick
            test_pool_timeout_no_wedge;
        ] );
      ( "journal",
        [ Alcotest.test_case "round-trip, torn tail" `Quick
            test_journal_roundtrip ] );
      ( "batch",
        [
          Alcotest.test_case "error rows and retry" `Quick
            test_batch_error_rows_and_retry;
          Alcotest.test_case "journal resume" `Quick test_batch_journal_resume;
        ] );
      ( "engine",
        [
          Alcotest.test_case "coalescing and isolation" `Quick
            test_engine_coalesces_and_isolates;
          Alcotest.test_case "retry counter" `Quick test_engine_retry_counts;
          Alcotest.test_case "sweep degrades gracefully" `Quick
            test_sweep_degrades_gracefully;
          Alcotest.test_case "fig5 sequential = -j 4 = warm" `Quick
            test_determinism_parallel;
          Alcotest.test_case "fig5 cold = warm disk cache" `Quick
            test_determinism_disk_cache;
        ] );
    ]
