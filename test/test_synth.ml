let lib = Cells.Library.vt90

let check_equiv name a b =
  match Synth.Equiv.aig_vs_aig ~seed:5 a b with
  | None -> ()
  | Some m ->
    Alcotest.failf "%s: mismatch at cycle %d on %s" name m.Synth.Equiv.cycle
      m.Synth.Equiv.output

(* --------------------------------------------------------------- lowering *)

let test_lower_matches_eval () =
  (* Random small designs exercising all word-level operators. *)
  let check_one seed =
    let rng = Random.State.make [| seed |] in
    let b = Rtl.Builder.create "rand" in
    let x = Rtl.Builder.input b "x" 5 in
    let y = Rtl.Builder.input b "y" 5 in
    let q =
      Rtl.Builder.reg b "q" ~reset:Rtl.Design.Sync_reset
        ~d:(Rtl.Expr.add x y)
    in
    let pick2 =
      [
        Rtl.Expr.and_ x y; Rtl.Expr.or_ x y; Rtl.Expr.xor x y;
        Rtl.Expr.add x y; Rtl.Expr.sub x y; Rtl.Expr.not_ x; q;
        Rtl.Expr.mux (Rtl.Expr.bit y 0) x q;
      ]
    in
    let e = List.nth pick2 (Random.State.int rng (List.length pick2)) in
    Rtl.Builder.output b "o1" e;
    Rtl.Builder.output b "o2"
      (Rtl.Expr.concat
         [ Rtl.Expr.eq x y; Rtl.Expr.ult x y; Rtl.Expr.red_xor x;
           Rtl.Expr.red_and y; Rtl.Expr.red_or x ]);
    Rtl.Builder.output b "o3" (Rtl.Expr.slice (Rtl.Expr.concat [ x; y ]) ~hi:7 ~lo:2);
    let d = Rtl.Builder.finish b in
    let low = Synth.Lower.run d in
    match Synth.Equiv.rtl_vs_aig ~seed d low.Synth.Lower.aig with
    | None -> ()
    | Some m ->
      Alcotest.failf "seed %d: RTL/AIG mismatch at cycle %d on %s" seed
        m.Synth.Equiv.cycle m.Synth.Equiv.output
  in
  List.iter check_one [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_lower_rom_folds () =
  (* A constant table lowers to pure logic: no latches at all. *)
  let tt = Workload.Rand_table.generate ~seed:1 ~depth:16 ~width:4 in
  let low = Synth.Lower.run (Core.Truth_table.to_rom_rtl tt) in
  Alcotest.(check int) "no latches" 0 (Aig.num_latches low.Synth.Lower.aig)

let test_lower_config_latches () =
  let tt = Workload.Rand_table.generate ~seed:1 ~depth:16 ~width:4 in
  let low = Synth.Lower.run (Core.Truth_table.to_flexible_rtl tt) in
  Alcotest.(check int) "one latch per config bit" 64
    (Aig.num_latches low.Synth.Lower.aig)

(* --------------------------------------------------------------- collapse *)

let test_collapse_preserves () =
  let fsm =
    Workload.Rand_fsm.generate ~seed:13 ~num_inputs:3 ~num_outputs:6 ~num_states:7
  in
  let d =
    Synth.Partial_eval.bind_tables
      (Core.Fsm_ir.to_flexible_rtl fsm)
      (Core.Fsm_ir.config_bindings fsm)
  in
  let g = (Synth.Lower.run d).Synth.Lower.aig in
  let g' = Synth.Collapse.run ~annots:[] g in
  check_equiv "collapse" g g'

let test_collapse_with_constraints () =
  (* out = (y == 3) with y annotated to {0,1}: must fold to constant 0. *)
  let b = Rtl.Builder.create "con" in
  let x = Rtl.Builder.input b "x" 1 in
  let y =
    Rtl.Builder.reg b "y" ~reset:Rtl.Design.Sync_reset
      ~d:(Rtl.Expr.zero_extend x 2)
  in
  Rtl.Builder.output b "hit" (Rtl.Expr.eq_const y 3);
  Rtl.Builder.annotate b
    (Rtl.Annot.value_set "y" [ Bitvec.zero 2; Bitvec.of_int ~width:2 1 ]);
  let d = Rtl.Builder.finish b in
  let low = Synth.Lower.run d in
  let annots = Synth.Annots.extract low in
  Alcotest.(check int) "annotation extracted" 1 (List.length annots);
  let g' = Synth.Collapse.run ~annots low.Synth.Lower.aig in
  let g' = Synth.Sweep.run g' in
  Alcotest.(check int) "logic folded away" 0 (Aig.num_ands g')

(* ------------------------------------------------------------------ sweep *)

let test_sweep_constant_latch () =
  let b = Rtl.Builder.create "cl" in
  let x = Rtl.Builder.input b "x" 1 in
  (* r holds a constant equal to its init: removable. *)
  let _r =
    Rtl.Builder.reg b "r" ~reset:Rtl.Design.Sync_reset ~d:(Rtl.Expr.of_int ~width:1 0)
  in
  let r = Rtl.Expr.signal (Rtl.Signal.make "r" 1) in
  Rtl.Builder.output b "o" (Rtl.Expr.or_ x r);
  let d = Rtl.Builder.finish b in
  let g = (Synth.Lower.run d).Synth.Lower.aig in
  let g' = Synth.Sweep.run g in
  Alcotest.(check int) "latch removed" 0 (Aig.num_latches g');
  check_equiv "const latch" g g'

let test_sweep_merges_duplicates () =
  let b = Rtl.Builder.create "dup" in
  let x = Rtl.Builder.input b "x" 1 in
  let r1 = Rtl.Builder.reg b "r1" ~d:x in
  let r2 = Rtl.Builder.reg b "r2" ~d:x in
  Rtl.Builder.output b "o" (Rtl.Expr.xor r1 r2);
  let d = Rtl.Builder.finish b in
  let g = (Synth.Lower.run d).Synth.Lower.aig in
  let g' = Synth.Sweep.run g in
  (* identical latches merge, then xor r r = 0 and the last latch dangles *)
  Alcotest.(check int) "all latches gone" 0 (Aig.num_latches g');
  check_equiv "merge" g g'

let test_sweep_keeps_config () =
  let tt = Workload.Rand_table.generate ~seed:3 ~depth:8 ~width:2 in
  let g = (Synth.Lower.run (Core.Truth_table.to_flexible_rtl tt)).Synth.Lower.aig in
  let g' = Synth.Sweep.run g in
  Alcotest.(check int) "config latches survive" 16 (Aig.num_latches g')

(* ---------------------------------------------------------------- simsig *)

let test_simsig_latch_filter () =
  (* A toggling latch leaves its init under simulation and must be
     disqualified as a constant candidate; a self-holding latch never
     moves and stays one. Complemented literals hash to distinct
     signatures. *)
  let g = Aig.create () in
  let x = Aig.pi g "x" in
  let t =
    Aig.latch g "t" ~init:false ~reset:Rtl.Design.Sync_reset ~is_config:false
  in
  Aig.set_next g t (Aig.not_ t);
  let h =
    Aig.latch g "h" ~init:true ~reset:Rtl.Design.Sync_reset ~is_config:false
  in
  Aig.set_next g h h;
  Aig.po g "o" (Aig.and_ g (Aig.and_ g t h) x);
  let sigs = Synth.Simsig.compute g in
  Alcotest.(check bool) "toggler disqualified" false
    (Synth.Simsig.latch_may_be_const sigs (Aig.node_of_lit t));
  Alcotest.(check bool) "self-holder stays candidate" true
    (Synth.Simsig.latch_may_be_const sigs (Aig.node_of_lit h));
  Alcotest.(check bool) "complement changes the signature" true
    (Synth.Simsig.lit_signature sigs x
     <> Synth.Simsig.lit_signature sigs (Aig.not_ x));
  Alcotest.(check bool) "classes partition is non-trivial" true
    (List.length (Synth.Simsig.classes sigs) > 1)

let test_sweep_simfilter_two_latches () =
  (* Two latches puts Sweep.run on the signature-filtered path: the
     self-holding constant still folds, the toggler survives. *)
  let g = Aig.create () in
  let x = Aig.pi g "x" in
  let c =
    Aig.latch g "c" ~init:false ~reset:Rtl.Design.Sync_reset ~is_config:false
  in
  Aig.set_next g c c;
  let t =
    Aig.latch g "t" ~init:false ~reset:Rtl.Design.Sync_reset ~is_config:false
  in
  Aig.set_next g t (Aig.not_ t);
  Aig.po g "o" (Aig.or_ g (Aig.or_ g x c) t);
  let g' = Synth.Sweep.run g in
  Alcotest.(check int) "constant folds, toggler survives" 1
    (Aig.num_latches g');
  check_equiv "simfilter" g g'

(* ----------------------------------------------------------------- retime *)

let test_retime_preserves () =
  let b = Rtl.Builder.create "rt" in
  let x = Rtl.Builder.input b "x" 4 in
  let r = Rtl.Builder.reg b "r" ~reset:Rtl.Design.No_reset ~d:x in
  Rtl.Builder.output b "allset" (Rtl.Expr.red_and r);
  let d = Rtl.Builder.finish b in
  let g = (Synth.Lower.run d).Synth.Lower.aig in
  let g' = Synth.Retime.run g in
  check_equiv "retime" g g';
  (* The four 1-bit latches merge forward into one latch of the AND. *)
  Alcotest.(check int) "forward-merged" 1 (Aig.num_latches g')

let test_retime_refuses_reset () =
  let b = Rtl.Builder.create "rt2" in
  let x = Rtl.Builder.input b "x" 4 in
  let r = Rtl.Builder.reg b "r" ~reset:Rtl.Design.Sync_reset ~d:x in
  Rtl.Builder.output b "allset" (Rtl.Expr.red_and r);
  let d = Rtl.Builder.finish b in
  let g = (Synth.Lower.run d).Synth.Lower.aig in
  let g' = Synth.Retime.run g in
  Alcotest.(check int) "latches unchanged" 4 (Aig.num_latches g')

(* -------------------------------------------------------------- stateprop *)

let onehot_generic n =
  Experiments.Onehot_design.generic ~n
    ~style:(Experiments.Onehot_design.Flop Rtl.Design.Sync_reset)

let test_stateprop_folds_onehot () =
  let d = onehot_generic 16 in
  let low = Synth.Lower.run d in
  let annots =
    Synth.Annots.honored ~tool:true ~generator:true ~width_cap:32
      (Synth.Annots.extract low)
  in
  Alcotest.(check int) "one annotation" 1 (List.length annots);
  let g' = Synth.Stateprop.run ~annots low.Synth.Lower.aig in
  check_equiv "stateprop" low.Synth.Lower.aig g';
  (* After the full annotated flow, the generic design reaches the direct
     design's area — the detector and mux are gone. *)
  let options = { Synth.Flow.default with honor_generator_annots = true } in
  let direct =
    Experiments.Onehot_design.direct ~n:16
      ~style:(Experiments.Onehot_design.Flop Rtl.Design.Sync_reset)
  in
  let a_generic = Synth.Flow.area (Synth.Flow.compile ~options lib d) in
  let a_direct = Synth.Flow.area (Synth.Flow.compile ~options lib direct) in
  Alcotest.(check (float 0.01)) "generic reaches ideal" a_direct a_generic

let test_stateprop_width_cap () =
  let d = onehot_generic 64 in
  let low = Synth.Lower.run d in
  let annots =
    Synth.Annots.honored ~tool:true ~generator:true ~width_cap:32
      (Synth.Annots.extract low)
  in
  Alcotest.(check int) "annotation filtered by cap" 0 (List.length annots)

(* ------------------------------------------------------------------- map *)

let test_map_cells () =
  let g = Aig.create () in
  let a = Aig.pi g "a" and b = Aig.pi g "b" and s = Aig.pi g "s" in
  Aig.po g "xor" (Aig.xor_ g a b);
  Aig.po g "mux" (Aig.mux_ g s a b);
  let r = Synth.Map.run lib g in
  let count name = Option.value ~default:0 (List.assoc_opt name r.Synth.Map.cell_counts) in
  Alcotest.(check int) "one XOR cell" 1 (count "XOR2" + count "XNOR2");
  Alcotest.(check int) "one MUX cell" 1 (count "MUX2");
  Alcotest.(check bool) "positive delay" true (r.Synth.Map.critical_delay > 0.0)

let test_map_flop_kinds () =
  let b = Rtl.Builder.create "fk" in
  let x = Rtl.Builder.input b "x" 1 in
  let r1 = Rtl.Builder.reg b "r1" ~reset:Rtl.Design.No_reset ~d:x in
  let r2 = Rtl.Builder.reg b "r2" ~reset:Rtl.Design.Sync_reset ~d:r1 in
  let r3 = Rtl.Builder.reg b "r3" ~reset:Rtl.Design.Async_reset ~d:r2 in
  Rtl.Builder.output b "o" r3;
  let d = Rtl.Builder.finish b in
  let r = Synth.Map.run lib (Synth.Lower.run d).Synth.Lower.aig in
  let count name = Option.value ~default:0 (List.assoc_opt name r.Synth.Map.cell_counts) in
  Alcotest.(check int) "DFF" 1 (count "DFF");
  Alcotest.(check int) "SDFF" 1 (count "SDFF");
  Alcotest.(check int) "ADFF" 1 (count "ADFF");
  Alcotest.(check int) "flops" 3 r.Synth.Map.num_flops;
  Alcotest.(check bool) "seq area" true (r.Synth.Map.seq_area > 60.0)

let test_map_inverter_sharing () =
  (* Two consumers of ~a must share one inverter. *)
  let g = Aig.create () in
  let a = Aig.pi g "a" and b = Aig.pi g "b" and c = Aig.pi g "c" in
  Aig.po g "o1" (Aig.and_ g (Aig.not_ a) b);
  Aig.po g "o2" (Aig.and_ g (Aig.not_ a) c);
  let r = Synth.Map.run lib g in
  let count name = Option.value ~default:0 (List.assoc_opt name r.Synth.Map.cell_counts) in
  Alcotest.(check int) "one shared INV" 1 (count "INV")

(* ------------------------------------------------------------------ reach *)

let test_reach_matches_ir () =
  let fsm =
    Workload.Rand_fsm.generate ~seed:2 ~num_inputs:2 ~num_outputs:3 ~num_states:6
  in
  let d =
    Synth.Partial_eval.bind_tables
      (Core.Fsm_ir.to_flexible_rtl fsm)
      (Core.Fsm_ir.config_bindings fsm)
  in
  let g = (Synth.Lower.run d).Synth.Lower.aig in
  match Synth.Reach.latch_group g ~prefix:"state" with
  | None -> Alcotest.fail "state group not found"
  | Some group ->
    (match Synth.Reach.reachable_values g ~group with
     | None -> Alcotest.fail "reachability gave up"
     | Some values ->
       let got = List.sort compare (List.map Bitvec.to_int values) in
       let expected = Core.Fsm_ir.reachable fsm in
       Alcotest.(check (list int)) "BDD reach = IR reach" expected got)

(* ------------------------------------------------------------------ flow *)

let test_flow_self_check_and_idempotence () =
  let fsm =
    Workload.Rand_fsm.generate ~seed:4 ~num_inputs:2 ~num_outputs:4 ~num_states:9
  in
  let d =
    Synth.Partial_eval.bind_tables
      (Core.Fsm_ir.to_flexible_rtl ~annotate:true fsm)
      (Core.Fsm_ir.config_bindings fsm)
  in
  let options =
    { Synth.Flow.default with self_check = true; honor_generator_annots = true }
  in
  let r1 = Synth.Flow.compile ~options lib d in
  let r2 = Synth.Flow.compile ~options lib d in
  Alcotest.(check (float 0.001)) "deterministic"
    (Synth.Flow.area r1) (Synth.Flow.area r2)

let () =
  Alcotest.run "synth"
    [
      ( "lower",
        [
          Alcotest.test_case "matches RTL eval" `Quick test_lower_matches_eval;
          Alcotest.test_case "rom folds to logic" `Quick test_lower_rom_folds;
          Alcotest.test_case "config becomes latches" `Quick test_lower_config_latches;
        ] );
      ( "collapse",
        [
          Alcotest.test_case "preserves behaviour" `Quick test_collapse_preserves;
          Alcotest.test_case "exploits value-set DCs" `Quick test_collapse_with_constraints;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "constant latch" `Quick test_sweep_constant_latch;
          Alcotest.test_case "duplicate latches" `Quick test_sweep_merges_duplicates;
          Alcotest.test_case "config exempt" `Quick test_sweep_keeps_config;
          Alcotest.test_case "signature-filtered fixpoint" `Quick
            test_sweep_simfilter_two_latches;
        ] );
      ( "simsig",
        [
          Alcotest.test_case "latch constancy filter" `Quick
            test_simsig_latch_filter;
        ] );
      ( "retime",
        [
          Alcotest.test_case "preserves and merges" `Quick test_retime_preserves;
          Alcotest.test_case "refuses reset flops" `Quick test_retime_refuses_reset;
        ] );
      ( "stateprop",
        [
          Alcotest.test_case "folds one-hot consumer" `Quick test_stateprop_folds_onehot;
          Alcotest.test_case "width cap" `Quick test_stateprop_width_cap;
        ] );
      ( "map",
        [
          Alcotest.test_case "xor and mux cells" `Quick test_map_cells;
          Alcotest.test_case "flop kinds" `Quick test_map_flop_kinds;
          Alcotest.test_case "inverter sharing" `Quick test_map_inverter_sharing;
        ] );
      ("reach", [ Alcotest.test_case "matches IR reachability" `Quick test_reach_matches_ir ]);
      ( "flow",
        [
          Alcotest.test_case "self-check and determinism" `Quick
            test_flow_self_check_and_idempotence;
        ] );
    ]
