(* Byte-exact fixtures for text emitters. Tests run with cwd
   [_build/default/test], where dune copies [golden/*] (declared as deps in
   test/dune). Setting GOLDEN_REGEN to the absolute path of the source
   golden directory rewrites the fixtures instead of diffing —
   [scripts/regen-golden.sh] does exactly that. *)

let regen_dir = Sys.getenv_opt "GOLDEN_REGEN"

let first_diff_line expected actual =
  let e = String.split_on_char '\n' expected
  and a = String.split_on_char '\n' actual in
  let rec go n = function
    | e :: es, a :: as_ when String.equal e a -> go (n + 1) (es, as_)
    | e :: _, a :: _ -> Printf.sprintf "line %d:\n  golden: %s\n  actual: %s" n e a
    | e :: _, [] -> Printf.sprintf "line %d:\n  golden: %s\n  actual: <eof>" n e
    | [], a :: _ -> Printf.sprintf "line %d:\n  golden: <eof>\n  actual: %s" n a
    | [], [] -> "identical?"
  in
  go 1 (e, a)

let check name actual =
  match regen_dir with
  | Some dir ->
    Out_channel.with_open_text (Filename.concat dir name) (fun oc ->
        output_string oc actual)
  | None ->
    let path = Filename.concat "golden" name in
    let expected =
      try In_channel.with_open_text path In_channel.input_all
      with Sys_error _ ->
        Alcotest.failf
          "missing golden file test/%s — generate it with: bash scripts/regen-golden.sh"
          path
    in
    if not (String.equal expected actual) then begin
      Out_channel.with_open_text (name ^ ".actual") (fun oc ->
          output_string oc actual);
      Alcotest.failf
        "golden mismatch for test/%s (first difference at %s)\n\
        \  actual output kept in _build/default/test/%s.actual\n\
        \  if the change is intended: bash scripts/regen-golden.sh" path
        (first_diff_line expected actual)
        name
    end
