let lib = Cells.Library.vt90

(* -------------------------------------------------------------- golden *)

let test_encode_roundtrip () =
  List.iter
    (fun i ->
      Alcotest.(check bool) "roundtrip" true
        (Ucpu.Isa.decode (Ucpu.Isa.encode i) = i))
    [ Ucpu.Isa.Ldi 7; Ucpu.Isa.Lda 31; Ucpu.Isa.Sta 0; Ucpu.Isa.Add 12;
      Ucpu.Isa.Sub 1; Ucpu.Isa.Jmp 30; Ucpu.Isa.Jnz 15; Ucpu.Isa.Hlt ];
  (match Ucpu.Isa.encode (Ucpu.Isa.Lda 32) with
   | _ -> Alcotest.fail "operand 32 accepted"
   | exception Invalid_argument _ -> ())

let test_interp_basics () =
  let program =
    Ucpu.Isa.assemble
      [ Ucpu.Isa.Ldi 5; Ucpu.Isa.Sta 3; Ucpu.Isa.Ldi 2; Ucpu.Isa.Add 3;
        Ucpu.Isa.Hlt ]
  in
  let final = Ucpu.Isa.run ~program () in
  Alcotest.(check int) "acc" 7 final.Ucpu.Isa.acc;
  Alcotest.(check int) "mem3" 5 final.Ucpu.Isa.mem.(3);
  Alcotest.(check bool) "halted" true final.Ucpu.Isa.halted

let test_interp_branches () =
  (* Count down from 3 with JNZ. *)
  let program =
    Ucpu.Isa.assemble
      [ Ucpu.Isa.Ldi 1; Ucpu.Isa.Sta 0;     (* one = 1 *)
        Ucpu.Isa.Ldi 3;                      (* acc = 3 *)
        Ucpu.Isa.Sub 0; Ucpu.Isa.Jnz 3;      (* loop at 3 *)
        Ucpu.Isa.Hlt ]
  in
  let final = Ucpu.Isa.run ~program () in
  Alcotest.(check int) "acc" 0 final.Ucpu.Isa.acc;
  Alcotest.(check bool) "halted" true final.Ucpu.Isa.halted

let fib n =
  let rec go a b k = if k = 0 then a else go b ((a + b) land 255) (k - 1) in
  go 0 1 n

let test_fib_golden () =
  List.iter
    (fun n ->
      let final = Ucpu.Isa.run ~program:(Ucpu.Isa.fib_program n) () in
      Alcotest.(check int) (Printf.sprintf "fib %d" n) (fib n) final.Ucpu.Isa.acc)
    [ 1; 2; 3; 7; 10; 13 ]

(* ------------------------------------------------------------ hardware *)

let rtl_matches_golden program =
  (* Bound the golden run so that, at the documented 2-3 cycles per
     instruction, the worst case still fits under the RTL cycle cap below —
     otherwise a long-but-halting random program times out on the RTL side
     and is misreported as a mismatch. *)
  let golden = Ucpu.Isa.run ~max_steps:1200 ~program () in
  QCheck.assume golden.Ucpu.Isa.halted;
  let d = Ucpu.Machine.specialized ~program () in
  let max_cycles = 4000 in
  let st, cycles = Ucpu.Machine.run_rtl ~max_cycles d in
  if cycles >= max_cycles then
    QCheck.Test.fail_reportf "RTL machine did not halt within %d cycles"
      max_cycles;
  let acc = Bitvec.to_int (Rtl.Eval.peek st "acc") in
  if acc <> golden.Ucpu.Isa.acc then
    QCheck.Test.fail_reportf "acc %d vs golden %d (in %d cycles)" acc
      golden.Ucpu.Isa.acc cycles;
  List.for_all
    (fun i ->
      let got = Bitvec.to_int (Rtl.Eval.peek st (Printf.sprintf "m%d" i)) in
      got = golden.Ucpu.Isa.mem.(i)
      || QCheck.Test.fail_reportf "m%d: %d vs golden %d" i got
           golden.Ucpu.Isa.mem.(i))
    (List.init 32 Fun.id)

let test_fib_rtl () =
  Alcotest.(check bool) "fib 10 matches" true
    (rtl_matches_golden (Ucpu.Isa.fib_program 10))

let test_cycle_count () =
  (* 2-3 clocks per instruction. *)
  let program = Ucpu.Isa.fib_program 5 in
  let _, cycles = Ucpu.Machine.run_rtl (Ucpu.Machine.specialized ~program ()) in
  let steps =
    let rec count st n =
      if st.Ucpu.Isa.halted then n
      else count (Ucpu.Isa.interp_step ~program st) (n + 1)
    in
    count Ucpu.Isa.initial 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d cycles for %d instructions" cycles steps)
    true
    (cycles >= 2 * steps && cycles <= (3 * steps) + 6)

let test_flexible_equals_specialized () =
  let program = Ucpu.Isa.fib_program 6 in
  let full = Ucpu.Machine.full ~program in
  let st_full, _ =
    Ucpu.Machine.run_rtl ~config:(Ucpu.Machine.control_bindings ()) full
  in
  let st_spec, _ = Ucpu.Machine.run_rtl (Ucpu.Machine.specialized ~program ()) in
  Alcotest.(check int) "same acc"
    (Bitvec.to_int (Rtl.Eval.peek st_spec "acc"))
    (Bitvec.to_int (Rtl.Eval.peek st_full "acc"))

let test_microcode_patch () =
  (* The patched control store turns SUB into AND: same hardware, new ISA.
     Check against a patched golden model. *)
  let program =
    Ucpu.Isa.assemble
      [ Ucpu.Isa.Ldi 12; Ucpu.Isa.Sta 1; Ucpu.Isa.Ldi 10; Ucpu.Isa.Sub 1;
        Ucpu.Isa.Hlt ]
  in
  let d = Ucpu.Machine.specialized ~patched:true ~program () in
  let st, _ = Ucpu.Machine.run_rtl d in
  Alcotest.(check int) "10 AND 12" (10 land 12)
    (Bitvec.to_int (Rtl.Eval.peek st "acc"));
  let unpatched, _ = Ucpu.Machine.run_rtl (Ucpu.Machine.specialized ~program ()) in
  Alcotest.(check int) "10 - 12 without patch" ((10 - 12) land 255)
    (Bitvec.to_int (Rtl.Eval.peek unpatched "acc"))

let test_specialization_saves_area () =
  let program = Ucpu.Isa.fib_program 8 in
  let area d = Synth.Map.total (Synth.Flow.compile lib d).Synth.Flow.report in
  let a_full = area (Ucpu.Machine.full ~program) in
  let a_spec = area (Ucpu.Machine.specialized ~program ()) in
  Alcotest.(check bool)
    (Printf.sprintf "specialized %.0f < full %.0f" a_spec a_full)
    true (a_spec < a_full)

let test_control_annotations_sound () =
  let program = Ucpu.Isa.fib_program 4 in
  (* The µCPU sequencer has combinational field outputs, so only the µPC
     annotation applies (field-register annotations need the registered
     variant). *)
  let upc_annot =
    List.find
      (fun (a : Rtl.Annot.t) -> a.target = "upc")
      (Core.Generator.program_manual_annotations Ucpu.Control.program)
  in
  let d =
    Rtl.Design.add_annots
      (Ucpu.Machine.specialized ~program ())
      [ { upc_annot with target = "seq_upc" } ]
  in
  let low = Synth.Lower.run d in
  List.iter
    (fun (a : Synth.Annots.t) ->
      match Synth.Annot_check.inductive low.Synth.Lower.aig a with
      | Synth.Annot_check.Refuted reason ->
        Alcotest.failf "annotation %s refuted: %s" a.Synth.Annots.base reason
      | Synth.Annot_check.Proved | Synth.Annot_check.Unproved _ -> ())
    (Synth.Annots.extract low);
  (* And honouring them preserves behaviour. *)
  let result =
    Synth.Flow.compile
      ~options:
        { Synth.Flow.default with honor_generator_annots = true;
          self_check = true }
      lib d
  in
  ignore result

(* Random-program fuzzing against the golden model. *)
let arb_program =
  let open QCheck.Gen in
  let instr =
    frequency
      [
        (3, map (fun a -> Ucpu.Isa.Ldi a) (0 -- 31));
        (2, map (fun a -> Ucpu.Isa.Lda a) (0 -- 31));
        (3, map (fun a -> Ucpu.Isa.Sta a) (0 -- 31));
        (2, map (fun a -> Ucpu.Isa.Add a) (0 -- 31));
        (2, map (fun a -> Ucpu.Isa.Sub a) (0 -- 31));
        (1, map (fun a -> Ucpu.Isa.Jnz a) (0 -- 31));
      ]
  in
  let gen =
    let* body = list_size (5 -- 24) instr in
    return (Ucpu.Isa.assemble (body @ [ Ucpu.Isa.Hlt ]))
  in
  QCheck.make
    ~print:(fun p ->
      String.concat "; "
        (Array.to_list (Array.map (fun w -> Bitvec.to_string w) p)))
    gen

let prop_random_programs =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"random programs match the golden model"
       arb_program rtl_matches_golden)

let () =
  Alcotest.run "ucpu"
    [
      ( "golden model",
        [
          Alcotest.test_case "encode roundtrip" `Quick test_encode_roundtrip;
          Alcotest.test_case "arithmetic" `Quick test_interp_basics;
          Alcotest.test_case "branches" `Quick test_interp_branches;
          Alcotest.test_case "fibonacci" `Quick test_fib_golden;
        ] );
      ( "hardware",
        [
          Alcotest.test_case "fib on rtl" `Quick test_fib_rtl;
          Alcotest.test_case "cycles per instruction" `Quick test_cycle_count;
          Alcotest.test_case "flexible = specialized" `Quick
            test_flexible_equals_specialized;
          Alcotest.test_case "microcode patch" `Quick test_microcode_patch;
          Alcotest.test_case "specialization saves area" `Quick
            test_specialization_saves_area;
          Alcotest.test_case "control annotations sound" `Quick
            test_control_annotations_sound;
          prop_random_programs;
        ] );
    ]
