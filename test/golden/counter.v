module ctr (
  input logic clk,
  input logic rst,
  input logic en,
  output logic [2:0] count
);
  logic [2:0] q;
  always_ff @(posedge clk)
    if (rst) q <= 3'b000;
    else if (en) q <= q + 3'b001;
  assign count = q;
endmodule
