module fsm_m2_n3_s5_11 (
  input logic clk,
  input logic rst,
  input logic [1:0] in,
  output logic [2:0] out
);
  // CONFIGURATION MEMORY fsm_m2_n3_s5_11_ns_mem: 32 x 3 bits (programmable; write port elided)
  logic [2:0] fsm_m2_n3_s5_11_ns_mem [0:31];
  // CONFIGURATION MEMORY fsm_m2_n3_s5_11_out_mem: 32 x 3 bits (programmable; write port elided)
  logic [2:0] fsm_m2_n3_s5_11_out_mem [0:31];
  logic [2:0] state;
  always_ff @(posedge clk)
    if (rst) state <= 3'b000;
    else state <= fsm_m2_n3_s5_11_ns_mem[{state, in}];
  assign out = fsm_m2_n3_s5_11_out_mem[{state, in}];
endmodule
