(* Flow fuzzing: every pass must preserve the sequential behaviour of every
   randomly generated design. A failure prints a one-command repro line.

   Environment knobs:
     FUZZ_ITERS=<n>  override every property's iteration count (soak runs
                     or quick smokes); defaults below are unchanged.
     FUZZ_SEED=<s>   run each property exactly once on that seed. *)

let lib = Cells.Library.vt90

let fuzz_iters = Option.bind (Sys.getenv_opt "FUZZ_ITERS") int_of_string_opt

let fuzz_seed = Option.bind (Sys.getenv_opt "FUZZ_SEED") int_of_string_opt

let arb_seed =
  let gen =
    match fuzz_seed with
    | Some s -> QCheck.Gen.return s
    | None -> QCheck.Gen.(0 -- 5000)
  in
  QCheck.make ~print:(Printf.sprintf "seed=%d") gen

let prop ?(count = 150) name f =
  let count =
    match (fuzz_seed, fuzz_iters) with
    | Some _, _ -> 1
    | None, Some n when n > 0 -> n
    | None, _ -> count
  in
  let repro seed =
    Printf.eprintf
      "property %S failed on seed %d\n\
      \  reproduce: FUZZ_SEED=%d dune exec test/test_fuzz.exe\n\
       %!"
      name seed seed
  in
  let wrapped seed =
    let ok =
      try f seed
      with e ->
        repro seed;
        raise e
    in
    if not ok then repro seed;
    ok
  in
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb_seed wrapped)

let no_mismatch = function
  | None -> true
  | Some (m : Synth.Equiv.mismatch) ->
    QCheck.Test.fail_reportf "mismatch at cycle %d on %s" m.cycle m.output

let lower_matches seed =
  let d = Workload.Rand_design.generate ~seed in
  let low = Synth.Lower.run d in
  no_mismatch (Synth.Equiv.rtl_vs_aig ~cycles:32 ~runs:3 ~seed d low.Synth.Lower.aig)

let flow_preserves seed =
  let d = Workload.Rand_design.generate ~seed in
  let low = Synth.Lower.run d in
  let opt = (Synth.Flow.compile lib d).Synth.Flow.aig in
  no_mismatch
    (Synth.Equiv.aig_vs_aig ~cycles:32 ~runs:3 ~seed low.Synth.Lower.aig opt)

let retime_preserves seed =
  let d = Workload.Rand_design.generate ~seed in
  let g = (Synth.Lower.run d).Synth.Lower.aig in
  no_mismatch (Synth.Equiv.aig_vs_aig ~cycles:32 ~runs:3 ~seed g (Synth.Retime.run g))

let flow_never_grows_flops seed =
  let d = Workload.Rand_design.generate ~seed in
  let low = Synth.Lower.run d in
  let opt = (Synth.Flow.compile lib d).Synth.Flow.aig in
  Aig.num_latches opt <= Aig.num_latches low.Synth.Lower.aig

let seq_check_agrees seed =
  (* Exact equivalence on the small designs it can handle; it must never
     report a counterexample for the flow's output. *)
  let d = Workload.Rand_design.generate ~seed in
  let low = Synth.Lower.run d in
  let opt = (Synth.Flow.compile lib d).Synth.Flow.aig in
  match Synth.Seq_check.run ~max_vars:40 low.Synth.Lower.aig opt with
  | Synth.Seq_check.Equivalent | Synth.Seq_check.Gave_up _ -> true
  | Synth.Seq_check.Counterexample o ->
    QCheck.Test.fail_reportf "seq_check counterexample on %s" o

let mapper_is_functional seed =
  (* Gate-level netlist vs AIG, both on the raw lowered graph (irregular
     structure) and on the optimized one. *)
  let d = Workload.Rand_design.generate ~seed in
  let low = (Synth.Lower.run d).Synth.Lower.aig in
  let opt = (Synth.Flow.compile lib d).Synth.Flow.aig in
  let check g =
    match Synth.Map.selfcheck ~samples:16 lib g with
    | Ok () -> true
    | Error m -> QCheck.Test.fail_reportf "%s" m
  in
  check low && check opt
  &&
  match Synth.Map.selfcheck ~samples:16 ~complex_cells:false lib opt with
  | Ok () -> true
  | Error m -> QCheck.Test.fail_reportf "simple cells: %s" m

let verilog_emits seed =
  let d = Workload.Rand_design.generate ~seed in
  String.length (Rtl.Verilog.emit d) > 0

let netlist_counts_match seed =
  (* The structural writer instantiates exactly the cells the area report
     charged for. *)
  let d = Workload.Rand_design.generate ~seed in
  let g = (Synth.Flow.compile lib d).Synth.Flow.aig in
  let r = Synth.Map.run lib g in
  let nc = Synth.Netlist.instance_counts lib g in
  if nc = r.Synth.Map.cell_counts then true
  else
    QCheck.Test.fail_reportf "report %s vs netlist %s"
      (String.concat ","
         (List.map (fun (c, k) -> Printf.sprintf "%s:%d" c k) r.Synth.Map.cell_counts))
      (String.concat ","
         (List.map (fun (c, k) -> Printf.sprintf "%s:%d" c k) nc))

let () =
  Alcotest.run "fuzz"
    [
      ( "random designs",
        [
          prop "lowering matches the interpreter" lower_matches;
          prop "full flow preserves behaviour" flow_preserves;
          prop "retiming preserves behaviour" ~count:80 retime_preserves;
          prop "flow never adds flops" ~count:80 flow_never_grows_flops;
          prop "exact equivalence (when in reach)" ~count:60 seq_check_agrees;
          prop "mapped netlist is functional" ~count:60 mapper_is_functional;
          prop "verilog writer total" ~count:60 verilog_emits;
          prop "netlist counts match report" ~count:60 netlist_counts_match;
        ] );
    ]
