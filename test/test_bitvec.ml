let bv = Alcotest.testable Bitvec.pp Bitvec.equal

let check_bv = Alcotest.check bv

let test_construction () =
  check_bv "zero" (Bitvec.of_int ~width:4 0) (Bitvec.zero 4);
  check_bv "ones" (Bitvec.of_int ~width:4 15) (Bitvec.ones 4);
  check_bv "of_bits lsb-first" (Bitvec.of_int ~width:4 0b0011)
    (Bitvec.of_bits [ true; true; false; false ]);
  check_bv "of_binary_string msb-first" (Bitvec.of_int ~width:4 0b1010)
    (Bitvec.of_binary_string "1010");
  check_bv "underscores ignored" (Bitvec.of_binary_string "1010")
    (Bitvec.of_binary_string "10_10");
  check_bv "one_hot" (Bitvec.of_int ~width:5 4) (Bitvec.one_hot ~width:5 2);
  Alcotest.check_raises "negative width"
    (Invalid_argument "Bitvec.zero: negative width") (fun () ->
      ignore (Bitvec.zero (-1)));
  Alcotest.check_raises "bad binary"
    (Invalid_argument "Bitvec.of_binary_string: bad character") (fun () ->
      ignore (Bitvec.of_binary_string "10x1"))

let test_observation () =
  let v = Bitvec.of_binary_string "10110" in
  Alcotest.(check int) "to_int" 0b10110 (Bitvec.to_int v);
  Alcotest.(check int) "width" 5 (Bitvec.width v);
  Alcotest.(check bool) "get 1" true (Bitvec.get v 1);
  Alcotest.(check bool) "get 3" false (Bitvec.get v 3);
  Alcotest.(check int) "popcount" 3 (Bitvec.popcount v);
  Alcotest.(check string) "to_binary_string" "10110" (Bitvec.to_binary_string v);
  Alcotest.(check bool) "reduce_or" true (Bitvec.reduce_or v);
  Alcotest.(check bool) "reduce_and" false (Bitvec.reduce_and v);
  Alcotest.(check bool) "reduce_and ones" true (Bitvec.reduce_and (Bitvec.ones 7));
  Alcotest.(check bool) "reduce_xor" true (Bitvec.reduce_xor v)

let test_wide () =
  (* Crosses the 32-bit limb boundary. *)
  let v = Bitvec.set (Bitvec.zero 100) 77 true in
  Alcotest.(check bool) "bit 77" true (Bitvec.get v 77);
  Alcotest.(check int) "popcount" 1 (Bitvec.popcount v);
  let w = Bitvec.shift_left v 10 in
  Alcotest.(check bool) "shifted" true (Bitvec.get w 87);
  let u = Bitvec.shift_right w 87 in
  Alcotest.(check int) "back to bit 0" 1 (Bitvec.to_int (Bitvec.resize u 60));
  let sum = Bitvec.add (Bitvec.ones 100) (Bitvec.of_int ~width:100 1) in
  Alcotest.(check bool) "wraparound" true (Bitvec.is_zero sum)

let test_structure () =
  let a = Bitvec.of_binary_string "101" in
  let b = Bitvec.of_binary_string "0011" in
  check_bv "concat msb-first" (Bitvec.of_binary_string "1010011")
    (Bitvec.concat [ a; b ]);
  check_bv "slice" (Bitvec.of_binary_string "01")
    (Bitvec.slice (Bitvec.of_binary_string "0011") ~hi:2 ~lo:1);
  check_bv "resize grow" (Bitvec.of_binary_string "000101") (Bitvec.resize a 6);
  check_bv "resize shrink" (Bitvec.of_binary_string "01") (Bitvec.resize a 2)

let test_compare () =
  let a = Bitvec.of_int ~width:8 5 and b = Bitvec.of_int ~width:8 200 in
  Alcotest.(check bool) "ult" true (Bitvec.ult a b);
  Alcotest.(check bool) "not ult" false (Bitvec.ult b a);
  Alcotest.(check bool) "not ult self" false (Bitvec.ult a a);
  Alcotest.(check bool) "compare_value" true (Bitvec.compare_value a b < 0);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Bitvec.compare_value: width mismatch") (fun () ->
      ignore (Bitvec.compare_value a (Bitvec.zero 4)))

let test_all_values () =
  let vs = List.of_seq (Bitvec.all_values 3) in
  Alcotest.(check int) "count" 8 (List.length vs);
  Alcotest.(check (list int)) "ascending" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.map Bitvec.to_int vs)

(* Property tests. *)

let arb_pair_same_width =
  QCheck.make
    ~print:(fun (a, b) -> Bitvec.to_string a ^ ", " ^ Bitvec.to_string b)
    QCheck.Gen.(
      let* w = 1 -- 80 in
      let bits = list_repeat w bool in
      let* a = bits and* b = bits in
      return (Bitvec.of_bits a, Bitvec.of_bits b))

let prop name f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name arb_pair_same_width f)

let props =
  [
    prop "add commutes" (fun (a, b) ->
        Bitvec.equal (Bitvec.add a b) (Bitvec.add b a));
    prop "sub inverts add" (fun (a, b) ->
        Bitvec.equal (Bitvec.sub (Bitvec.add a b) b) a);
    prop "de morgan" (fun (a, b) ->
        Bitvec.equal
          (Bitvec.lognot (Bitvec.logand a b))
          (Bitvec.logor (Bitvec.lognot a) (Bitvec.lognot b)));
    prop "xor self is zero" (fun (a, _) -> Bitvec.is_zero (Bitvec.logxor a a));
    prop "roundtrip binary string" (fun (a, _) ->
        Bitvec.equal a (Bitvec.of_binary_string (Bitvec.to_binary_string a)));
    prop "concat slice roundtrip" (fun (a, b) ->
        let c = Bitvec.concat [ a; b ] in
        Bitvec.equal b (Bitvec.slice c ~hi:(Bitvec.width b - 1) ~lo:0)
        && Bitvec.equal a
             (Bitvec.slice c ~hi:(Bitvec.width c - 1) ~lo:(Bitvec.width b)));
    prop "popcount of and bounded" (fun (a, b) ->
        Bitvec.popcount (Bitvec.logand a b)
        <= min (Bitvec.popcount a) (Bitvec.popcount b));
    prop "ult is strict" (fun (a, b) -> not (Bitvec.ult a b && Bitvec.ult b a));
    prop "succ adds one" (fun (a, _) ->
        Bitvec.equal (Bitvec.succ a)
          (Bitvec.add a (Bitvec.of_int ~width:(Bitvec.width a) 1)));
  ]

(* Model-based properties (Prop harness, seeded: failures print a FUZZ_SEED
   repro command). Widths stay ≤ 29 bits so plain OCaml integers are an
   exact model of the unsigned modular semantics (and value generation
   stays within Random's 2^30 bound). *)

let mask w = (1 lsl w) - 1

let show_model (w, a, b) = Printf.sprintf "w=%d a=%d b=%d" w a b

let arb_model =
  Prop.make ~show:show_model
    ~shrink:(fun (w, a, b) ->
      (if a > 0 then [ (w, 0, b); (w, a / 2, b) ] else [])
      @ (if b > 0 then [ (w, a, 0); (w, a, b / 2) ] else [])
      @ if w > 1 then [ (w - 1, a land mask (w - 1), b land mask (w - 1)) ]
        else [])
    (fun rng ->
      let w = 1 + Workload.Rng.int rng 29 in
      (w, Workload.Rng.int rng (1 lsl w), Workload.Rng.int rng (1 lsl w)))

(* (width, value, hi, lo) with 0 <= lo <= hi < width. *)
let arb_slice =
  Prop.make
    ~show:(fun (w, v, hi, lo) ->
      Printf.sprintf "w=%d v=%d hi=%d lo=%d" w v hi lo)
    (fun rng ->
      let w = 1 + Workload.Rng.int rng 29 in
      let v = Workload.Rng.int rng (1 lsl w) in
      let lo = Workload.Rng.int rng w in
      let hi = lo + Workload.Rng.int rng (w - lo) in
      (w, v, hi, lo))

let rec int_popcount n = if n = 0 then 0 else (n land 1) + int_popcount (n lsr 1)

let binop_model name op model =
  Prop.test name arb_model (fun (w, a, b) ->
      Bitvec.to_int (op (Bitvec.of_int ~width:w a) (Bitvec.of_int ~width:w b))
      = model a b land mask w)

let model_props =
  [
    binop_model "add matches int model" Bitvec.add ( + );
    binop_model "sub matches int model" Bitvec.sub (fun a b ->
        a - b + (1 lsl 30));
    binop_model "logand matches int model" Bitvec.logand ( land );
    binop_model "logor matches int model" Bitvec.logor ( lor );
    binop_model "logxor matches int model" Bitvec.logxor ( lxor );
    Prop.test "lognot matches int model" arb_model (fun (w, a, _) ->
        Bitvec.to_int (Bitvec.lognot (Bitvec.of_int ~width:w a))
        = lnot a land mask w);
    Prop.test "ult matches int order" arb_model (fun (w, a, b) ->
        Bitvec.ult (Bitvec.of_int ~width:w a) (Bitvec.of_int ~width:w b)
        = (a < b));
    Prop.test "popcount matches int model" arb_model (fun (w, a, _) ->
        Bitvec.popcount (Bitvec.of_int ~width:w a) = int_popcount a);
    Prop.test "shifts match int model" arb_model (fun (w, a, b) ->
        let s = b mod w in
        let v = Bitvec.of_int ~width:w a in
        Bitvec.to_int (Bitvec.shift_left v s) = (a lsl s) land mask w
        && Bitvec.to_int (Bitvec.shift_right v s) = a lsr s);
    Prop.test "concat matches int model" arb_model (fun (w, a, b) ->
        let c =
          Bitvec.concat [ Bitvec.of_int ~width:w a; Bitvec.of_int ~width:w b ]
        in
        Bitvec.width c = 2 * w && Bitvec.to_int c = (a lsl w) lor b);
    Prop.test "slice matches int model" arb_slice (fun (w, v, hi, lo) ->
        Bitvec.to_int (Bitvec.slice (Bitvec.of_int ~width:w v) ~hi ~lo)
        = (v lsr lo) land mask (hi - lo + 1));
    Prop.test "resize matches int model" arb_model (fun (w, a, b) ->
        let w' = 1 + (b mod 30) in
        Bitvec.to_int (Bitvec.resize (Bitvec.of_int ~width:w a) w')
        = a land mask w');
  ]

let () =
  Alcotest.run "bitvec"
    [
      ( "unit",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "observation" `Quick test_observation;
          Alcotest.test_case "wide vectors" `Quick test_wide;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "comparison" `Quick test_compare;
          Alcotest.test_case "all_values" `Quick test_all_values;
        ] );
      ("properties", props);
      ("integer model", model_props);
    ]
