let lit = Alcotest.testable (Fmt.of_to_string (fun (l : Aig.lit) -> string_of_int (l :> int)))
    (fun a b -> a = b)

let test_strash_rules () =
  let g = Aig.create () in
  let a = Aig.pi g "a" and b = Aig.pi g "b" in
  Alcotest.check lit "and(x,0)=0" Aig.false_ (Aig.and_ g a Aig.false_);
  Alcotest.check lit "and(x,1)=x" a (Aig.and_ g a Aig.true_);
  Alcotest.check lit "and(x,x)=x" a (Aig.and_ g a a);
  Alcotest.check lit "and(x,~x)=0" Aig.false_ (Aig.and_ g a (Aig.not_ a));
  let n1 = Aig.and_ g a b in
  let n2 = Aig.and_ g b a in
  Alcotest.check lit "commutative sharing" n1 n2;
  Alcotest.(check int) "single node" 1 (Aig.num_ands g)

let test_gates_semantics () =
  let g = Aig.create () in
  let a = Aig.pi g "a" and b = Aig.pi g "b" and c = Aig.pi g "c" in
  let xor_ab = Aig.xor_ g a b in
  let mux = Aig.mux_ g a b c in
  let or_ab = Aig.or_ g a b in
  let cases = [ (false, false); (false, true); (true, false); (true, true) ] in
  List.iter
    (fun (va, vb) ->
      List.iter
        (fun vc ->
          let pi n =
            match Aig.pi_name g n with
            | "a" -> va
            | "b" -> vb
            | "c" -> vc
            | _ -> assert false
          in
          let read = Aig.eval_all g ~pi ~latch:(fun _ -> false) in
          Alcotest.(check bool) "xor" (va <> vb) (read xor_ab);
          Alcotest.(check bool) "or" (va || vb) (read or_ab);
          Alcotest.(check bool) "mux" (if va then vb else vc) (read mux))
        [ false; true ])
    cases

let test_and_list_balanced () =
  let g = Aig.create () in
  let pis = List.init 16 (fun i -> Aig.pi g (Printf.sprintf "x%d" i)) in
  let all = Aig.and_list g pis in
  let levels = Aig.levels g in
  Alcotest.(check int) "log depth" 4 (levels (Aig.node_of_lit all));
  Alcotest.check lit "empty list is true" Aig.true_ (Aig.and_list g []);
  Alcotest.check lit "or of none is false" Aig.false_ (Aig.or_list g [])

let test_latches () =
  let g = Aig.create () in
  let q = Aig.latch g "q" ~init:false ~reset:Rtl.Design.Sync_reset ~is_config:false in
  let d = Aig.not_ q in
  Aig.set_next g q d;
  Alcotest.(check int) "latch count" 1 (Aig.num_latches g);
  Alcotest.check lit "next" d (Aig.latch_next g (Aig.node_of_lit q));
  let name, init, reset, is_config = Aig.latch_info g (Aig.node_of_lit q) in
  Alcotest.(check string) "name" "q" name;
  Alcotest.(check bool) "init" false init;
  Alcotest.(check bool) "reset kind" true (reset = Rtl.Design.Sync_reset);
  Alcotest.(check bool) "not config" false is_config;
  Alcotest.(check bool) "find_latch" true (Aig.find_latch g "q" = Some (Aig.node_of_lit q))

let test_cone () =
  let g = Aig.create () in
  let a = Aig.pi g "a" and b = Aig.pi g "b" and c = Aig.pi g "c" in
  let ab = Aig.and_ g a b in
  let abc = Aig.and_ g ab c in
  let leaves, nodes = Aig.cone g [ abc ] in
  Alcotest.(check int) "3 leaves" 3 (List.length leaves);
  Alcotest.(check int) "2 internal" 2 (List.length nodes);
  (* Topological: ab before abc. *)
  Alcotest.(check (list int)) "topo order"
    [ Aig.node_of_lit ab; Aig.node_of_lit abc ]
    nodes

let test_fanout () =
  let g = Aig.create () in
  let a = Aig.pi g "a" and b = Aig.pi g "b" in
  let ab = Aig.and_ g a b in
  let x = Aig.and_ g ab (Aig.not_ a) in
  Aig.po g "x" x;
  Aig.po g "ab" ab;
  let fo = Aig.fanout_counts g in
  Alcotest.(check int) "a used twice" 2 fo.(Aig.node_of_lit a);
  Alcotest.(check int) "ab used twice" 2 fo.(Aig.node_of_lit ab)

(* ------------------------------------------------------ compiled kernel *)

let test_compiled_ctz () =
  for i = 0 to Aig.Compiled.lanes - 1 do
    Alcotest.(check int) "single bit" i (Aig.Compiled.ctz (1 lsl i));
    if i > 0 then
      (* Lower bits win over higher garbage. *)
      Alcotest.(check int) "lowest of two" (i - 1)
        (Aig.Compiled.ctz ((1 lsl i) lor (1 lsl (i - 1))))
  done;
  Alcotest.(check int) "all lanes" 0 (Aig.Compiled.ctz Aig.Compiled.all_lanes);
  Alcotest.check_raises "zero word rejected"
    (Invalid_argument "Compiled.ctz: zero word") (fun () ->
      ignore (Aig.Compiled.ctz 0))

let test_compiled_toggle () =
  (* A toggling latch through the sequential stepper: every lane carries
     the same stream, so PO words are all-zeros / all-ones alternating. *)
  let g = Aig.create () in
  let q =
    Aig.latch g "q" ~init:false ~reset:Rtl.Design.Sync_reset ~is_config:false
  in
  Aig.set_next g q (Aig.not_ q);
  Aig.po g "q" q;
  let c = Aig.Compiled.compile g in
  Alcotest.(check int) "one latch" 1 (Aig.Compiled.num_latches c);
  let s = Aig.Compiled.sim c in
  for cycle = 0 to 5 do
    Aig.Compiled.step s;
    let expect = if cycle land 1 = 0 then 0 else Aig.Compiled.all_lanes in
    Alcotest.(check int)
      (Printf.sprintf "cycle %d" cycle)
      expect (Aig.Compiled.po s 0)
  done;
  Alcotest.(check int) "steps counted" 6 (Aig.Compiled.steps s);
  Aig.Compiled.reset s;
  Aig.Compiled.step s;
  Alcotest.(check int) "reset restarts at init" 0 (Aig.Compiled.po s 0)

let test_compiled_force () =
  let g = Aig.create () in
  let a = Aig.pi g "a" and b = Aig.pi g "b" in
  let ab = Aig.and_ g a b in
  Aig.po g "y" ab;
  let c = Aig.Compiled.compile g in
  let s = Aig.Compiled.sim c in
  (* a=1, b=0 everywhere: y computes 0; lane 0 forced to 1, lane 1 forced
     (redundantly) to 0, every other lane sees the computed value. *)
  Aig.Compiled.add_force s ~node:(Aig.node_of_lit ab) ~set:0b01 ~clear:0b10;
  Aig.Compiled.set_pi s 0 Aig.Compiled.all_lanes;
  Aig.Compiled.set_pi s 1 0;
  Aig.Compiled.step s;
  Alcotest.(check int) "forced lanes only" 0b01 (Aig.Compiled.po s 0);
  Aig.Compiled.clear_forces s;
  Aig.Compiled.set_pi s 1 Aig.Compiled.all_lanes;
  Aig.Compiled.step s;
  Alcotest.(check int) "forces cleared" Aig.Compiled.all_lanes
    (Aig.Compiled.po s 0)

(* Packed random word: [lanes] fresh bits, 30 at a time. *)
let random_word st =
  let rec go acc k =
    if k >= Aig.Compiled.lanes then acc
    else go (acc lor (Random.State.bits st lsl k)) (k + 30)
  in
  go 0 0

(* The tentpole oracle: packed simulation of a randomly generated lowered
   design agrees with the scalar [Aig.eval_all] interpreter on every lane
   of every PO word of every cycle. *)
let prop_packed_matches_eval_all =
  Prop.test ~iters:40 "packed sim = eval_all on every lane"
    (Prop.int 100_000)
    (fun seed ->
      let d = Workload.Rand_design.generate ~seed in
      let g = (Synth.Lower.run d).Synth.Lower.aig in
      let c = Aig.Compiled.compile g in
      let st = Random.State.make [| 0xfeed; seed |] in
      let cycles = 8 in
      let npis = Aig.Compiled.num_pis c in
      let npos = Aig.Compiled.num_pos c in
      let tape =
        Array.init cycles (fun _ ->
            Array.init npis (fun _ -> random_word st))
      in
      let s = Aig.Compiled.sim c in
      let packed =
        Array.init cycles (fun cyc ->
            Array.iteri (fun i w -> Aig.Compiled.set_pi s i w) tape.(cyc);
            Aig.Compiled.step s;
            Array.init npos (Aig.Compiled.po s))
      in
      let pis = Array.of_list (Aig.pis g) in
      let pslot = Hashtbl.create 16 in
      Array.iteri (fun i n -> Hashtbl.replace pslot n i) pis;
      let latches = Aig.latches g in
      let pos = Array.of_list (Aig.pos g) in
      let ok = ref true in
      for lane = 0 to Aig.Compiled.lanes - 1 do
        let state = Hashtbl.create 16 in
        List.iter
          (fun n ->
            let _, init, _, _ = Aig.latch_info g n in
            Hashtbl.replace state n init)
          latches;
        for cyc = 0 to cycles - 1 do
          let pi n = tape.(cyc).(Hashtbl.find pslot n) lsr lane land 1 = 1 in
          let read = Aig.eval_all g ~pi ~latch:(Hashtbl.find state) in
          Array.iteri
            (fun k (_, l) ->
              if packed.(cyc).(k) lsr lane land 1 = 1 <> read l then
                ok := false)
            pos;
          let next =
            List.map (fun n -> (n, read (Aig.latch_next g n))) latches
          in
          List.iter (fun (n, v) -> Hashtbl.replace state n v) next
        done
      done;
      !ok)

let prop_strash_never_duplicates =
  (* Random construction: building the same expression twice yields the
     same literal, and the node count does not grow. *)
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10_000) in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"rebuilding is free" arb (fun seed ->
         let rng = Random.State.make [| seed |] in
         let g = Aig.create () in
         let pis = Array.init 4 (fun i -> Aig.pi g (Printf.sprintf "x%d" i)) in
         let rec build depth =
           if depth = 0 then begin
             let l = pis.(Random.State.int rng 4) in
             if Random.State.bool rng then Aig.not_ l else l
           end
           else begin
             let a = build (depth - 1) and b = build (depth - 1) in
             match Random.State.int rng 3 with
             | 0 -> Aig.and_ g a b
             | 1 -> Aig.or_ g a b
             | _ -> Aig.xor_ g a b
           end
         in
         let rng_copy = Random.State.copy rng in
         let l1 = build 4 in
         let count1 = Aig.num_ands g in
         (* Replay the same random choices. *)
         let rec build2 rng depth =
           if depth = 0 then begin
             let l = pis.(Random.State.int rng 4) in
             if Random.State.bool rng then Aig.not_ l else l
           end
           else begin
             let a = build2 rng (depth - 1) and b = build2 rng (depth - 1) in
             match Random.State.int rng 3 with
             | 0 -> Aig.and_ g a b
             | 1 -> Aig.or_ g a b
             | _ -> Aig.xor_ g a b
           end
         in
         let l2 = build2 rng_copy 4 in
         l1 = l2 && Aig.num_ands g = count1))

let () =
  Alcotest.run "aig"
    [
      ( "unit",
        [
          Alcotest.test_case "strash rules" `Quick test_strash_rules;
          Alcotest.test_case "gate semantics" `Quick test_gates_semantics;
          Alcotest.test_case "balanced reduction" `Quick test_and_list_balanced;
          Alcotest.test_case "latches" `Quick test_latches;
          Alcotest.test_case "cones" `Quick test_cone;
          Alcotest.test_case "fanout counts" `Quick test_fanout;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "ctz" `Quick test_compiled_ctz;
          Alcotest.test_case "sequential toggle" `Quick test_compiled_toggle;
          Alcotest.test_case "per-lane forces" `Quick test_compiled_force;
          prop_packed_matches_eval_all;
        ] );
      ("properties", [ prop_strash_never_duplicates ]);
    ]
