(* BDD semantics are checked against a brute-force evaluator over random
   boolean expression trees. *)

type expr =
  | Var of int
  | Const of bool
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr
  | Ite of expr * expr * expr

let rec eval_expr env = function
  | Var i -> env i
  | Const b -> b
  | Not a -> not (eval_expr env a)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Or (a, b) -> eval_expr env a || eval_expr env b
  | Xor (a, b) -> eval_expr env a <> eval_expr env b
  | Ite (c, a, b) -> if eval_expr env c then eval_expr env a else eval_expr env b

let rec to_bdd m = function
  | Var i -> Bdd.var m i
  | Const true -> Bdd.one m
  | Const false -> Bdd.zero m
  | Not a -> Bdd.not_ (to_bdd m a)
  | And (a, b) -> Bdd.and_ (to_bdd m a) (to_bdd m b)
  | Or (a, b) -> Bdd.or_ (to_bdd m a) (to_bdd m b)
  | Xor (a, b) -> Bdd.xor (to_bdd m a) (to_bdd m b)
  | Ite (c, a, b) -> Bdd.ite (to_bdd m c) (to_bdd m a) (to_bdd m b)

let nvars = 6

let gen_expr =
  QCheck.Gen.(
    sized @@ fix (fun self size ->
        if size <= 1 then
          oneof [ map (fun i -> Var i) (0 -- (nvars - 1)); map (fun b -> Const b) bool ]
        else
          let sub = self (size / 2) in
          oneof
            [
              map (fun a -> Not a) sub;
              map2 (fun a b -> And (a, b)) sub sub;
              map2 (fun a b -> Or (a, b)) sub sub;
              map2 (fun a b -> Xor (a, b)) sub sub;
              map3 (fun c a b -> Ite (c, a, b)) sub sub sub;
            ]))

let rec print_expr = function
  | Var i -> Printf.sprintf "x%d" i
  | Const b -> string_of_bool b
  | Not a -> "~" ^ print_expr a
  | And (a, b) -> Printf.sprintf "(%s & %s)" (print_expr a) (print_expr b)
  | Or (a, b) -> Printf.sprintf "(%s | %s)" (print_expr a) (print_expr b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (print_expr a) (print_expr b)
  | Ite (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (print_expr c) (print_expr a) (print_expr b)

let arb_expr = QCheck.make ~print:print_expr gen_expr

let all_envs f =
  Seq.for_all
    (fun v -> f (fun i -> Bitvec.get v i))
    (Bitvec.all_values nvars)

let prop name f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:200 ~name arb_expr f)

let props =
  [
    prop "bdd matches evaluator" (fun e ->
        let m = Bdd.make_man () in
        let b = to_bdd m e in
        all_envs (fun env -> Bdd.eval b env = eval_expr env e));
    prop "double negation" (fun e ->
        let m = Bdd.make_man () in
        let b = to_bdd m e in
        Bdd.equal b (Bdd.not_ (Bdd.not_ b)));
    prop "hash-consing canonicity" (fun e ->
        (* Build twice (in different shapes) and compare physically. *)
        let m = Bdd.make_man () in
        let b1 = to_bdd m e in
        let b2 = Bdd.not_ (to_bdd m (Not e)) in
        Bdd.equal b1 b2 && Bdd.uid b1 = Bdd.uid b2);
    prop "cofactor shannon" (fun e ->
        let m = Bdd.make_man () in
        let b = to_bdd m e in
        let v = Bdd.var m 0 in
        let expanded =
          Bdd.or_
            (Bdd.and_ v (Bdd.cofactor b 0 true))
            (Bdd.and_ (Bdd.not_ v) (Bdd.cofactor b 0 false))
        in
        Bdd.equal b expanded);
    prop "exists = or of cofactors" (fun e ->
        let m = Bdd.make_man () in
        let b = to_bdd m e in
        Bdd.equal (Bdd.exists [ 1 ] b)
          (Bdd.or_ (Bdd.cofactor b 1 true) (Bdd.cofactor b 1 false)));
    prop "forall = and of cofactors" (fun e ->
        let m = Bdd.make_man () in
        let b = to_bdd m e in
        Bdd.equal (Bdd.forall [ 1 ] b)
          (Bdd.and_ (Bdd.cofactor b 1 true) (Bdd.cofactor b 1 false)));
    prop "sat_count matches enumeration" (fun e ->
        let m = Bdd.make_man () in
        let b = to_bdd m e in
        let count =
          Seq.fold_left
            (fun acc v -> if Bdd.eval b (Bitvec.get v) then acc + 1 else acc)
            0 (Bitvec.all_values nvars)
        in
        int_of_float (Bdd.sat_count b ~nvars) = count);
    prop "constrain agrees on care set" (fun e ->
        let m = Bdd.make_man () in
        let b = to_bdd m e in
        let c = Bdd.or_ (Bdd.var m 0) (Bdd.var m 1) in
        let r = Bdd.constrain b c in
        all_envs (fun env ->
            (not (Bdd.eval c env)) || Bdd.eval r env = Bdd.eval b env));
    prop "constrain canonical for equal-on-care" (fun e ->
        let m = Bdd.make_man () in
        let b = to_bdd m e in
        let c = Bdd.var m 2 in
        (* b and (b restricted-to-c arbitrary elsewhere): modify b off-care. *)
        let b' = Bdd.ite (Bdd.not_ c) (Bdd.var m 3) b in
        let b'' = Bdd.ite c b (Bdd.var m 4) in
        Bdd.equal (Bdd.constrain b' c) (Bdd.constrain b'' c));
  ]

(* Truth-table oracle (Prop harness, seeded). A 16-bit integer is the
   complete truth table of a 4-variable function (bit [v] gives the value on
   assignment [v]); boolean operations on BDDs must agree with bitwise
   operations on tables, for every table. *)

let tt_nvars = 4

let tt_mask = 0xffff

let bdd_of_tt m tt =
  Bdd.of_fun m ~nvars:tt_nvars (fun v -> (tt lsr Bitvec.to_int v) land 1 = 1)

let tt_of_bdd b =
  Seq.fold_left
    (fun acc v ->
      if Bdd.eval b (Bitvec.get v) then acc lor (1 lsl Bitvec.to_int v) else acc)
    0
    (Bitvec.all_values tt_nvars)

let arb_tt = Prop.int (tt_mask + 1)

let tt_binop name op table_op =
  Prop.test name (Prop.pair arb_tt arb_tt) (fun (x, y) ->
      let m = Bdd.make_man () in
      tt_of_bdd (op (bdd_of_tt m x) (bdd_of_tt m y)) = table_op x y land tt_mask)

let tt_props =
  [
    Prop.test "of_fun/eval table roundtrip" arb_tt (fun tt ->
        let m = Bdd.make_man () in
        tt_of_bdd (bdd_of_tt m tt) = tt);
    tt_binop "and matches table" Bdd.and_ ( land );
    tt_binop "or matches table" Bdd.or_ ( lor );
    tt_binop "xor matches table" Bdd.xor ( lxor );
    tt_binop "imp matches table" Bdd.imp (fun x y -> lnot x lor y);
    tt_binop "iff matches table" Bdd.iff (fun x y -> lnot (x lxor y));
    Prop.test "not matches table" arb_tt (fun tt ->
        let m = Bdd.make_man () in
        tt_of_bdd (Bdd.not_ (bdd_of_tt m tt)) = lnot tt land tt_mask);
    Prop.test "ite matches table" (Prop.triple arb_tt arb_tt arb_tt)
      (fun (c, a, b) ->
        let m = Bdd.make_man () in
        tt_of_bdd (Bdd.ite (bdd_of_tt m c) (bdd_of_tt m a) (bdd_of_tt m b))
        = (c land a) lor (lnot c land b) land tt_mask);
    Prop.test "equal iff same table" (Prop.pair arb_tt arb_tt) (fun (x, y) ->
        let m = Bdd.make_man () in
        Bdd.equal (bdd_of_tt m x) (bdd_of_tt m y) = (x = y));
    Prop.test "sat_count is table popcount" arb_tt (fun tt ->
        let m = Bdd.make_man () in
        let rec pop n = if n = 0 then 0 else (n land 1) + pop (n lsr 1) in
        int_of_float (Bdd.sat_count (bdd_of_tt m tt) ~nvars:tt_nvars) = pop tt);
  ]

let test_basics () =
  let m = Bdd.make_man () in
  Alcotest.(check bool) "zero is zero" true (Bdd.is_zero (Bdd.zero m));
  Alcotest.(check bool) "one is one" true (Bdd.is_one (Bdd.one m));
  Alcotest.(check bool) "var not const" false (Bdd.is_const (Bdd.var m 0));
  Alcotest.(check int) "top_var" 3 (Bdd.top_var (Bdd.var m 3));
  let f = Bdd.and_ (Bdd.var m 0) (Bdd.nvar m 2) in
  Alcotest.(check (list int)) "support" [ 0; 2 ] (Bdd.support f)

let test_minterms () =
  let m = Bdd.make_man () in
  let vs = [ Bitvec.of_int ~width:3 1; Bitvec.of_int ~width:3 6 ] in
  let f = Bdd.of_minterms m ~nvars:3 vs in
  let back = List.of_seq (Bdd.sat_seq f ~nvars:3) in
  Alcotest.(check (list int)) "roundtrip" [ 1; 6 ] (List.map Bitvec.to_int back)

let test_rename () =
  let m = Bdd.make_man () in
  let f = Bdd.and_ (Bdd.var m 0) (Bdd.var m 1) in
  let g = Bdd.rename f (fun v -> v + 5) in
  Alcotest.(check (list int)) "renamed support" [ 5; 6 ] (Bdd.support g);
  let h = Bdd.and_ (Bdd.var m 5) (Bdd.var m 6) in
  Alcotest.(check bool) "same function" true (Bdd.equal g h)

let test_manager_isolation () =
  let m1 = Bdd.make_man () and m2 = Bdd.make_man () in
  Alcotest.check_raises "cross-manager rejected"
    (Invalid_argument "Bdd: manager mismatch") (fun () ->
      ignore (Bdd.and_ (Bdd.var m1 0) (Bdd.var m2 0)))

let () =
  Alcotest.run "bdd"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "minterms roundtrip" `Quick test_minterms;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "manager isolation" `Quick test_manager_isolation;
        ] );
      ("properties", props);
      ("truth tables", tt_props);
    ]
