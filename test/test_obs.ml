(* Observability layer: span/metric semantics, the JSON parser they are
   validated through, and the headline contract — turning tracing and
   metrics on must not change a single byte of experiment stdout. *)

let with_obs f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ----------------------------------------------------------------- json *)

let rec json_equal a b =
  let open Report.Json in
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | List x, List y ->
    List.length x = List.length y && List.for_all2 json_equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (k, v) (k', v') -> String.equal k k' && json_equal v v')
         x y
  | _ -> false

let test_json_roundtrip () =
  let open Report.Json in
  let doc =
    Obj
      [
        ("null", Null);
        ("bools", List [ Bool true; Bool false ]);
        ("ints", List [ Int 0; Int 42; Int (-7); Int max_int ]);
        ("floats", List [ Float 1.5; Float (-0.25); Float 3.14159 ]);
        ("strings", List [ String ""; String "a\"b\\c\n\t"; String "µs/π" ]);
        ("nested", Obj [ ("empty_list", List []); ("empty_obj", Obj []) ]);
      ]
  in
  match of_string (to_string doc) with
  | Ok doc' -> Alcotest.(check bool) "roundtrip" true (json_equal doc doc')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_forms () =
  let open Report.Json in
  let ok s expect =
    match of_string s with
    | Ok v -> Alcotest.(check bool) ("parse " ^ s) true (json_equal expect v)
    | Error e -> Alcotest.failf "rejected %s: %s" s e
  in
  ok {| { "a" : [ 1 , 2.5 , null , true , "x\u0041" ] } |}
    (Obj [ ("a", List [ Int 1; Float 2.5; Null; Bool true; String "xA" ]) ]);
  ok "-12" (Int (-12));
  ok "1e3" (Float 1000.);
  ok "\"\\u00b5s\"" (String "µs")

let test_json_errors () =
  let bad s =
    match Report.Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error e ->
      Alcotest.(check bool) ("position in error for " ^ s) true
        (String.length e > 0)
  in
  List.iter bad
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "12 34"; "\"unterminated"; "'x'";
      "{\"a\" 1}"; "[1 2]"; "nan" ]

(* ---------------------------------------------------------------- spans *)

let test_span_nesting () =
  with_obs @@ fun () ->
  Obs.Span.with_span "outer" (fun () ->
      Obs.Span.with_span "inner" (fun () -> ());
      Obs.Span.with_span "inner2" (fun () -> ()));
  let spans = Obs.Span.completed () in
  let find name = List.find (fun s -> s.Obs.Span.name = name) spans in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let outer = find "outer" and inner = find "inner" and inner2 = find "inner2" in
  Alcotest.(check int) "outer depth" 0 outer.Obs.Span.depth;
  Alcotest.(check int) "inner depth" 1 inner.Obs.Span.depth;
  Alcotest.(check int) "inner2 depth" 1 inner2.Obs.Span.depth;
  (* Children close before the parent, and lie inside its interval. *)
  let ends (s : Obs.Span.finished) = s.start_us +. s.dur_us in
  Alcotest.(check bool) "inner within outer" true
    (inner.Obs.Span.start_us >= outer.Obs.Span.start_us
     && ends inner <= ends outer +. 1e-6);
  Alcotest.(check bool) "completion order" true
    (ends inner <= ends inner2 +. 1e-6);
  List.iter
    (fun (s : Obs.Span.finished) ->
      Alcotest.(check bool) (s.name ^ " dur >= 0") true (s.dur_us >= 0.))
    spans

let test_span_args () =
  with_obs @@ fun () ->
  Obs.Span.with_span ~args:[ ("k", Obs.Span.Int 1) ] "s" (fun () ->
      Obs.Span.add_args [ ("late", Obs.Span.Bool true) ]);
  match Obs.Span.completed () with
  | [ s ] ->
    Alcotest.(check bool) "initial arg" true
      (List.mem_assoc "k" s.Obs.Span.args);
    Alcotest.(check bool) "late arg" true
      (List.mem_assoc "late" s.Obs.Span.args);
    (* Initial args come before late ones. *)
    Alcotest.(check string) "order" "k" (fst (List.hd s.Obs.Span.args))
  | spans -> Alcotest.failf "expected one span, got %d" (List.length spans)

let test_span_on_raise () =
  with_obs @@ fun () ->
  (try Obs.Span.with_span "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (Obs.Span.completed ()))

let test_disabled_noop () =
  Obs.reset ();
  Obs.set_enabled false;
  let ran = ref false in
  Obs.Span.with_span "ghost" (fun () -> ran := true);
  Alcotest.(check bool) "thunk ran" true !ran;
  Alcotest.(check int) "no span" 0 (List.length (Obs.Span.completed ()));
  let c = Obs.Metrics.counter "test.disabled.counter" in
  Obs.Metrics.incr c;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c)

(* -------------------------------------------------------------- metrics *)

let test_metric_kinds () =
  with_obs @@ fun () ->
  let c = Obs.Metrics.counter "test.kinds.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Obs.Metrics.counter_value c);
  let g = Obs.Metrics.gauge "test.kinds.gauge" in
  Obs.Metrics.set g 2.0;
  Obs.Metrics.set_max g 1.0;
  Obs.Metrics.set_max g 7.5;
  let h = Obs.Metrics.histogram "test.kinds.hist_s" in
  List.iter (Obs.Metrics.observe h) [ 3.0; 1.0; 2.0 ];
  let snap = Obs.Metrics.snapshot () in
  (match List.assoc "test.kinds.gauge" snap with
   | Obs.Metrics.Gauge_v v -> Alcotest.(check (float 1e-9)) "high-water" 7.5 v
   | _ -> Alcotest.fail "gauge kind");
  (match List.assoc "test.kinds.hist_s" snap with
   | Obs.Metrics.Hist_v { count; sum; min_v; max_v } ->
     Alcotest.(check int) "hist count" 3 count;
     Alcotest.(check (float 1e-9)) "hist sum" 6.0 sum;
     Alcotest.(check (float 1e-9)) "hist min" 1.0 min_v;
     Alcotest.(check (float 1e-9)) "hist max" 3.0 max_v
   | _ -> Alcotest.fail "hist kind");
  (* Same name, different kind: rejected. *)
  (match Obs.Metrics.gauge "test.kinds.counter" with
   | _ -> Alcotest.fail "kind mismatch accepted"
   | exception Invalid_argument _ -> ());
  (* Reset zeroes in place; existing handles keep working. *)
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset counter" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Alcotest.(check int) "handle survives reset" 1 (Obs.Metrics.counter_value c)

(* ---------------------------------------------------------- flow spans *)

let test_flow_spans () =
  with_obs @@ fun () ->
  let d = Workload.Rand_design.generate ~seed:5 in
  ignore (Synth.Flow.compile Cells.Library.vt90 d);
  let spans = Obs.Span.completed () in
  let named n = List.filter (fun s -> s.Obs.Span.name = n) spans in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (named n <> []))
    [ "flow.compile"; "flow.lower"; "flow.sweep"; "flow.collapse"; "flow.map" ];
  Alcotest.(check int) "three sweep iterations" 3 (List.length (named "flow.sweep"));
  let compile = List.hd (named "flow.compile") in
  Alcotest.(check bool) "compile has design arg" true
    (List.mem_assoc "design" compile.Obs.Span.args);
  let ends (s : Obs.Span.finished) = s.start_us +. s.dur_us in
  List.iter
    (fun (s : Obs.Span.finished) ->
      Alcotest.(check bool) (s.name ^ " dur >= 0") true (s.dur_us >= 0.);
      if s.name <> "flow.compile" && s.tid = compile.Obs.Span.tid then begin
        Alcotest.(check bool) (s.name ^ " nested in compile") true
          (s.depth > compile.Obs.Span.depth
           && s.start_us >= compile.Obs.Span.start_us -. 1e-6
           && ends s <= ends compile +. 1e-6)
      end)
    spans;
  (* Pass spans carry before/after graph statistics. *)
  let sweep = List.hd (named "flow.sweep") in
  List.iter
    (fun k ->
      Alcotest.(check bool) ("sweep arg " ^ k) true
        (List.mem_assoc k sweep.Obs.Span.args))
    [ "iter"; "in_ands"; "out_ands"; "delta_ands"; "in_level"; "out_level" ];
  (* Metrics populated alongside the spans. *)
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check bool) "compile counter" true
    (match List.assoc_opt "synth.flow.compiles" snap with
     | Some (Obs.Metrics.Counter_v n) -> n >= 1
     | _ -> false)

(* ---------------------------------------------------- fig5 determinism *)

let capture_fig5 () =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  let saved = !Experiments.Exp_common.out in
  Experiments.Exp_common.out := fmt;
  Fun.protect ~finally:(fun () -> Experiments.Exp_common.out := saved)
    (fun () ->
      let rows =
        Experiments.Fig5.run ~seeds:[ 0 ] ~grid:[ (8, 4); (16, 4); (32, 4) ] ()
      in
      Experiments.Fig5.print rows;
      Format.pp_print_flush fmt ();
      Buffer.contents buf)

let json_mem k = function
  | Report.Json.Obj fields -> List.mem_assoc k fields
  | _ -> false

let json_field k = function
  | Report.Json.Obj fields -> List.assoc_opt k fields
  | _ -> None

let test_fig5_determinism () =
  (* Traced run first: the process-wide engine caches compile results, so a
     second identical sweep would skip Synth.Flow and record no pass spans. *)
  let observed, trace_path =
    with_obs @@ fun () ->
    let out = capture_fig5 () in
    let path = Filename.temp_file "obs_fig5" ".json" in
    Obs.Trace.write path;
    (out, path)
  in
  (* Same sweep with observability off (cache-served, same bytes). *)
  let plain = capture_fig5 () in
  Alcotest.(check string) "stdout byte-identical with observability on" plain
    observed;
  let text = In_channel.with_open_text trace_path In_channel.input_all in
  Sys.remove trace_path;
  let doc =
    match Report.Json.of_string text with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "trace is not valid JSON: %s" e
  in
  let events =
    match json_field "traceEvents" doc with
    | Some (Report.Json.List evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  Alcotest.(check bool) "events present" true (events <> []);
  let names =
    List.filter_map
      (fun e ->
        match json_field "name" e with
        | Some (Report.Json.String n) -> Some n
        | _ -> None)
    events
  in
  Alcotest.(check bool) "flow.compile span in trace" true
    (List.mem "flow.compile" names);
  Alcotest.(check bool) "flow pass spans in trace" true
    (List.mem "flow.sweep" names && List.mem "flow.collapse" names);
  List.iter
    (fun e ->
      match json_field "dur" e with
      | Some (Report.Json.Float d) ->
        Alcotest.(check bool) "dur >= 0" true (d >= 0.)
      | Some (Report.Json.Int d) ->
        Alcotest.(check bool) "dur >= 0" true (d >= 0)
      | _ -> Alcotest.fail "event without dur")
    events;
  (* The folded-in metrics snapshot carries engine activity. *)
  let metrics =
    match json_field "metrics" doc with
    | Some m -> m
    | None -> Alcotest.fail "metrics missing from trace"
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " in trace metrics") true (json_mem k metrics))
    [
      "engine.pool.jobs"; "engine.cache.misses"; "engine.cache.stores";
      "synth.flow.compiles"; "synth.flow.sweep.ands_removed";
    ]

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "forms" `Quick test_json_forms;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "args" `Quick test_span_args;
          Alcotest.test_case "recorded on raise" `Quick test_span_on_raise;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
        ] );
      ("metrics", [ Alcotest.test_case "kinds" `Quick test_metric_kinds ]);
      ("flow", [ Alcotest.test_case "pass spans" `Quick test_flow_spans ]);
      ( "determinism",
        [
          Alcotest.test_case "fig5 stdout identical under tracing" `Quick
            test_fig5_determinism;
        ] );
    ]
