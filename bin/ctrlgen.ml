(* ctrlgen — command-line front end to the controller-generator library.

   Subcommands:
     synth       generate a random controller and synthesize it
     asm         assemble a microprogram and report on it
     design      load a serialized design; synthesize / emit verilog,
                 gate-level netlist or AIGER; optionally with a user cell
                 library (Liberty-lite)
     pctrl       build and synthesize the protocol-controller case study
     equiv       certify flexible vs partially-evaluated PCtrl equivalence
                 (simulation and/or complete SAT engine)
     fault       run a fault-injection campaign on the PCtrl case study
     experiment  regenerate a paper figure or ablation *)

open Cmdliner

let lib = Cells.Library.vt90

let print_report prefix (report : Synth.Map.report) =
  Format.printf "%s: %a@." prefix Synth.Map.pp_report report

let flow_options ~annotate ~retime =
  { Synth.Flow.default with honor_generator_annots = annotate; retime }

(* ----------------------------------------------------------- job engine *)

(* Shared flags configuring the process-wide synthesis engine. The term
   configures a default engine over [lib] and evaluates to an [engine_cli]:
   [reconfigure] rebuilds the default engine with the same flags but a
   different cell library (the design subcommand's --liberty), and
   [report_stats] prints the statistics table to stderr when --engine-stats
   was given. *)
type engine_cli = {
  reconfigure : Cells.Library.t -> unit;
  report_stats : unit -> unit;
  sim_jobs : int;  (** resolved -j value for simulation batches *)
  timeout_s : float option;
  retries : int;
  cache_dir : string option;
      (** --cache-dir unless --no-cache; the equiv subcommand keeps its
          verdict cache here next to the engine's result cache *)
}

let engine_term =
  let jobs =
    let nonneg =
      Arg.conv
        ( (fun s ->
            match int_of_string_opt s with
            | Some n when n >= 0 -> Ok n
            | _ -> Error (`Msg "expected a non-negative integer")),
          Format.pp_print_int )
    in
    Arg.(value & opt nonneg 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Run synthesis jobs on $(docv) worker domains (0 = one \
                   per available core).")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persist synthesis results under $(docv) and reuse them \
                   across invocations.")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ] ~doc:"Disable synthesis result caching.")
  in
  let timeout_s =
    let pos_float =
      Arg.conv
        ( (fun s ->
            match float_of_string_opt s with
            | Some f when f > 0.0 -> Ok f
            | _ -> Error (`Msg "expected a positive number of seconds")),
          Format.pp_print_float )
    in
    Arg.(value & opt (some pos_float) None
         & info [ "timeout-s" ] ~docv:"S"
             ~doc:"Abandon any job still running $(docv) seconds after \
                   submission (the result settles as a timeout error; see \
                   the pool docs for the cooperative-cancellation caveat).")
  in
  let retries =
    let nonneg =
      Arg.conv
        ( (fun s ->
            match int_of_string_opt s with
            | Some n when n >= 0 -> Ok n
            | _ -> Error (`Msg "expected a non-negative integer")),
          Format.pp_print_int )
    in
    Arg.(value & opt nonneg 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Re-run failed jobs up to $(docv) extra times with \
                   bounded exponential backoff.")
  in
  let stats =
    Arg.(value & flag
         & info [ "engine-stats" ]
             ~doc:"Print job-engine statistics (hits, misses, retries, \
                   quarantined cache entries, wall vs cpu time) to stderr \
                   after the run.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"PATH"
             ~doc:"Write a Chrome trace (chrome://tracing JSON, one span \
                   per synthesis pass / campaign) to $(docv) on exit. \
                   Never touches stdout.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the process metrics table (pass deltas, pool \
                   queueing, cache traffic, simulated cycles) to stderr \
                   after the run.")
  in
  let setup jobs cache_dir no_cache timeout_s retries stats trace metrics =
    (* Observability on when either sink was requested; the at_exit hook
       writes the trace even on nonzero-exit paths. *)
    if metrics || trace <> None then Obs.set_enabled true;
    Option.iter Obs.Trace.install_at_exit trace;
    let reconfigure l =
      match Engine.create ~jobs ?cache_dir ~no_cache ?timeout_s ~retries l with
      | e -> Engine.set_default e
      | exception Invalid_argument msg ->
        Printf.eprintf "ctrlgen: %s\n" msg;
        exit 2
    in
    reconfigure lib;
    {
      reconfigure;
      report_stats =
        (fun () ->
          if stats then
            prerr_string
              (Engine.stats_table (Engine.stats (Engine.default ())));
          if metrics then prerr_string (Obs.Metrics.to_table ()));
      sim_jobs = (if jobs = 0 then Domain.recommended_domain_count () else jobs);
      timeout_s;
      retries;
      cache_dir = (if no_cache then None else cache_dir);
    }
  in
  Term.(const setup $ jobs $ cache_dir $ no_cache $ timeout_s $ retries $ stats
        $ trace $ metrics)

let engine_report ?options d =
  Engine.report_exn (Engine.default ()) (Engine.job ?options d)

(* ------------------------------------------------------------------ synth *)

let synth_kind =
  let doc = "Controller kind: $(b,table) or $(b,fsm)." in
  Arg.(value & opt (enum [ ("table", `Table); ("fsm", `Fsm) ]) `Fsm
       & info [ "kind" ] ~doc)

let style_arg =
  let doc =
    "Implementation style: $(b,flexible) (configuration memories), \
     $(b,bound) (partially evaluated) or $(b,direct)."
  in
  Arg.(value
       & opt (enum [ ("flexible", `Flexible); ("bound", `Bound); ("direct", `Direct) ])
           `Bound
       & info [ "style" ] ~doc)

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random seed.")

let synth_cmd =
  let run eng kind style seed depth width inputs outputs states
      annotate retime dump_verilog dump_netlist =
    let design =
      match kind with
      | `Table ->
        let tt = Workload.Rand_table.generate ~seed ~depth ~width in
        (match style with
         | `Flexible -> Core.Truth_table.to_flexible_rtl tt
         | `Bound ->
           Synth.Partial_eval.bind_tables
             (Core.Truth_table.to_flexible_rtl tt)
             [ Core.Truth_table.config_binding tt ]
         | `Direct -> Core.Truth_table.to_sop_rtl tt)
      | `Fsm ->
        let fsm =
          Workload.Rand_fsm.generate ~seed ~num_inputs:inputs
            ~num_outputs:outputs ~num_states:states
        in
        (match style with
         | `Flexible -> Core.Fsm_ir.to_flexible_rtl ~annotate fsm
         | `Bound ->
           Synth.Partial_eval.bind_tables
             (Core.Fsm_ir.to_flexible_rtl ~annotate fsm)
             (Core.Fsm_ir.config_bindings fsm)
         | `Direct -> Core.Fsm_ir.to_direct_rtl fsm)
    in
    Format.printf "%s@." (Rtl.Design.stats design);
    if dump_verilog then print_string (Rtl.Verilog.emit design);
    let options = flow_options ~annotate ~retime in
    if dump_netlist then begin
      (* The netlist needs the full AIG, which the engine's summaries
         deliberately don't keep — compile directly. *)
      let result = Synth.Flow.compile ~options lib design in
      Format.printf "optimized: %s@." (Aig.stats result.Synth.Flow.aig);
      print_report "mapped" result.Synth.Flow.report;
      print_string
        (Synth.Netlist.emit lib ~name:design.Rtl.Design.name
           result.Synth.Flow.aig)
    end
    else begin
      let outcome =
        Engine.run_one (Engine.default ()) (Engine.job ~options design)
      in
      match outcome with
      | Ok s ->
        Format.printf "optimized: aig: %d latches, %d ANDs@."
          s.Engine.Summary.aig_latches s.Engine.Summary.aig_ands;
        print_report "mapped" s.Engine.Summary.report
      | Error e ->
        Format.eprintf "synthesis failed: %s@." (Engine.Pool.error_message e);
        exit 1
    end;
    eng.report_stats ()
  in
  let depth = Arg.(value & opt int 64 & info [ "depth" ] ~doc:"Table depth.") in
  let width = Arg.(value & opt int 8 & info [ "width" ] ~doc:"Table width.") in
  let inputs = Arg.(value & opt int 2 & info [ "inputs" ] ~doc:"FSM input bits.") in
  let outputs = Arg.(value & opt int 8 & info [ "outputs" ] ~doc:"FSM output bits.") in
  let states = Arg.(value & opt int 8 & info [ "states" ] ~doc:"FSM state count.") in
  let annotate =
    Arg.(value & flag
         & info [ "annotate" ] ~doc:"Emit and honour generator annotations.")
  in
  let retime = Arg.(value & flag & info [ "retime" ] ~doc:"Enable retiming.") in
  let verilog =
    Arg.(value & flag & info [ "verilog" ] ~doc:"Dump the design as Verilog.")
  in
  let netlist =
    Arg.(value & flag
         & info [ "netlist" ] ~doc:"Dump the mapped gate-level netlist.")
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Generate a random controller and synthesize it.")
    Term.(const run $ engine_term $ synth_kind $ style_arg $ seed_arg $ depth
          $ width $ inputs $ outputs $ states $ annotate $ retime $ verilog
          $ netlist)

(* -------------------------------------------------------------------- asm *)

let asm_cmd =
  let run eng file dump_verilog storage do_synth =
    let source = In_channel.with_open_text file In_channel.input_all in
    match Core.Microasm.parse source with
    | exception Core.Microasm.Parse_error (line, msg) ->
      Format.eprintf "%s:%d: %s@." file line msg;
      exit 1
    | p ->
      Format.printf "program %s: %d instructions, %d-bit words, entry %d@."
        p.Core.Microcode.pname
        (Core.Microcode.depth p)
        (Core.Microcode.word_width p)
        p.Core.Microcode.entry;
      Format.printf "reachable addresses: %s@."
        (String.concat ", "
           (List.map string_of_int (Core.Microcode.reachable_addrs p)));
      List.iter
        (fun (f : Core.Microcode.field) ->
          Format.printf "field %s values: %s@." f.fname
            (String.concat ", "
               (List.map string_of_int
                  (Core.Microcode.field_value_set p f.fname))))
        p.Core.Microcode.format;
      let storage = if storage = "config" then `Config else `Rom in
      let design = Core.Microcode.to_rtl ~storage p in
      if dump_verilog then print_string (Rtl.Verilog.emit design);
      if do_synth then begin
        let design =
          match storage with
          | `Rom -> design
          | `Config ->
            Synth.Partial_eval.bind_tables design (Core.Microcode.config_bindings p)
        in
        print_report "mapped" (engine_report design)
      end;
      eng.report_stats ()
  in
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Microassembly source file.")
  in
  let verilog = Arg.(value & flag & info [ "verilog" ] ~doc:"Dump Verilog.") in
  let storage =
    Arg.(value & opt string "rom" & info [ "storage" ] ~doc:"rom or config.")
  in
  let do_synth = Arg.(value & flag & info [ "synth" ] ~doc:"Also synthesize.") in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble a microprogram and report on it.")
    Term.(const run $ engine_term $ file $ verilog $ storage $ do_synth)

(* ------------------------------------------------------------------ pctrl *)

let pctrl_cmd =
  let run eng =
    let full = Pctrl.Controller.full_design () in
    Format.printf "%s@." (Rtl.Design.stats full);
    print_report "full" (engine_report full);
    List.iter
      (fun (name, mode) ->
        print_report
          (Printf.sprintf "auto %s" name)
          (engine_report (Pctrl.Controller.auto_design mode));
        print_report
          (Printf.sprintf "manual %s" name)
          (engine_report
             ~options:{ Synth.Flow.default with honor_generator_annots = true }
             (Pctrl.Controller.manual_design mode)))
      [ ("cached", Pctrl.Controller.Cached);
        ("uncached", Pctrl.Controller.Uncached) ];
    eng.report_stats ()
  in
  Cmd.v
    (Cmd.info "pctrl" ~doc:"Synthesize the PCtrl case study at every level.")
    Term.(const run $ engine_term)

(* ----------------------------------------------------------------- design *)

let design_cmd =
  let run eng file liberty dump_verilog dump_netlist aiger_out do_synth =
    let lib =
      match liberty with
      | None -> lib
      | Some path ->
        let l = Cells.Liberty.of_file path in
        (match Cells.Liberty.check_mappable l with
         | Ok () -> l
         | Error msg ->
           Format.eprintf "%s: %s@." path msg;
           exit 1)
    in
    match Rtl.Serialize.of_file file with
    | exception Rtl.Serialize.Parse_error msg ->
      Format.eprintf "%s: %s@." file msg;
      exit 1
    | design ->
      Format.printf "%s@." (Rtl.Design.stats design);
      if dump_verilog then print_string (Rtl.Verilog.emit design);
      if dump_netlist || aiger_out <> None then begin
        (* Netlist/AIGER dumps need the optimized AIG itself, which cached
           summaries don't carry — compile directly. *)
        let result = Synth.Flow.compile lib design in
        print_report "mapped" result.Synth.Flow.report;
        if dump_netlist then
          print_string
            (Synth.Netlist.emit lib ~name:design.Rtl.Design.name
               result.Synth.Flow.aig);
        Option.iter
          (fun path -> Synth.Aiger.to_file path result.Synth.Flow.aig)
          aiger_out
      end
      else if do_synth then begin
        (* [lib] may be a user Liberty library; rebuild the default engine
           around it (fingerprints include the library, so a shared cache
           directory never leaks results across libraries). *)
        eng.reconfigure lib;
        print_report "mapped" (engine_report design)
      end;
      eng.report_stats ()
  in
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Design file (S-expression form).")
  in
  let liberty =
    Arg.(value & opt (some file) None
         & info [ "liberty" ] ~doc:"Cell library file (Liberty-lite dialect).")
  in
  let verilog = Arg.(value & flag & info [ "verilog" ] ~doc:"Dump Verilog.") in
  let netlist =
    Arg.(value & flag & info [ "netlist" ] ~doc:"Dump the mapped netlist.")
  in
  let aiger =
    Arg.(value & opt (some string) None
         & info [ "aiger" ] ~doc:"Write the optimized AIG in AIGER format.")
  in
  let do_synth = Arg.(value & flag & info [ "synth" ] ~doc:"Synthesize.") in
  Cmd.v
    (Cmd.info "design" ~doc:"Load a serialized design and process it.")
    Term.(const run $ engine_term $ file $ liberty $ verilog $ netlist
          $ aiger $ do_synth)

(* ------------------------------------------------------------------ equiv *)

(* Flip one random bit of one random configuration-table entry. Returns the
   perturbed bindings and a description of the flipped site, so a seeded
   mutation is reproducible and reportable. *)
let mutate_bindings ~seed bindings =
  let rng = Workload.Rng.make seed in
  let i = Workload.Rng.int rng (List.length bindings) in
  let tname, contents = List.nth bindings i in
  let e = Workload.Rng.int rng (Array.length contents) in
  let b = Workload.Rng.int rng (Bitvec.width contents.(e)) in
  let contents' = Array.copy contents in
  contents'.(e) <- Bitvec.set contents.(e) b (not (Bitvec.get contents.(e) b));
  ( List.mapi
      (fun j (n, c) -> if j = i then (n, contents') else (n, c))
      bindings,
    Printf.sprintf "%s entry %d bit %d" tname e b )

(* A per-engine outcome reduced to what the consistency/expectation checks
   and the verdict cache need: the normalized witness string, not the
   tape. *)
type equiv_outcome = Eq_proved | Eq_refuted of string | Eq_undecided of string

let equiv_outcome_line = function
  | Eq_proved -> "proved"
  | Eq_refuted m -> "counterexample: " ^ m
  | Eq_undecided s -> "undecided: " ^ s

(* Definitive verdicts (proved/refuted) are cached under --cache-dir keyed
   by a digest of both netlists in AIGER form plus the engine parameters;
   undecided verdicts depend only on budgets and are always recomputed. *)
let equiv_cached eng ~key run =
  match eng.cache_dir with
  | None -> (run (), false)
  | Some dir ->
    let file = Filename.concat dir ("equiv-" ^ key ^ ".verdict") in
    (match In_channel.with_open_text file In_channel.input_all with
     | "proved" -> (Eq_proved, true)
     | s when String.length s > 8 && String.sub s 0 8 = "refuted\t" ->
       (Eq_refuted (String.sub s 8 (String.length s - 8)), true)
     | _ | (exception Sys_error _) ->
       let v = run () in
       let payload =
         match v with
         | Eq_proved -> Some "proved"
         | Eq_refuted m -> Some ("refuted\t" ^ m)
         | Eq_undecided _ -> None
       in
       Option.iter
         (fun p ->
           try
             if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
             Out_channel.with_open_text file (fun oc -> output_string oc p)
           with Sys_error _ -> ())
         payload;
       (v, false))

let equiv_cmd =
  let run eng mode engine frames opt mutate expect =
    let mode_name =
      match mode with
      | Pctrl.Controller.Cached -> "cached"
      | Pctrl.Controller.Uncached -> "uncached"
    in
    let bindings = Pctrl.Controller.bindings mode in
    let bindings, mutation =
      match mutate with
      | None -> (bindings, None)
      | Some seed ->
        let bindings', site = mutate_bindings ~seed bindings in
        (bindings', Some (site, seed))
    in
    (* Side A: the flexible controller specialized *after* lowering — the
       mode's configuration bits substituted for the config latches of the
       flexible AIG. Side B: the same specialization done *before*
       lowering by RTL partial evaluation (with --opt, additionally run
       through the full optimizing flow). Equivalence certifies that
       partial evaluation (and optionally the optimizer) preserved the
       programmed behaviour. *)
    let a =
      Synth.Partial_eval.bind_aig_tables
        (Synth.Lower.run (Pctrl.Controller.full_design ())).Synth.Lower.aig
        bindings
    in
    let b =
      let auto = Pctrl.Controller.auto_design mode in
      if opt then (Synth.Flow.compile lib auto).Synth.Flow.aig
      else (Synth.Lower.run auto).Synth.Lower.aig
    in
    Format.printf "equiv: pctrl %s, flexible(bound at AIG level) vs %s@."
      mode_name
      (if opt then "partially evaluated + optimized" else "partially evaluated");
    Option.iter
      (fun (site, seed) ->
        Format.printf "mutation: seed %d flips %s@." seed site)
      mutation;
    let key engine_name =
      Digest.to_hex
        (Digest.string
           (String.concat "\x00"
              [ Synth.Aiger.write a; Synth.Aiger.write b;
                string_of_int frames; engine_name ]))
    in
    let print_outcome name (v, cached) =
      Format.printf "%s: %s%s@." name (equiv_outcome_line v)
        (if cached then " (cached)" else "");
      v
    in
    let run_sim () =
      equiv_cached eng ~key:(key "sim") (fun () ->
          match Synth.Equiv.check ~seed:0 a b with
          | Synth.Equiv.Proved -> Eq_proved
          | Synth.Equiv.Refuted c ->
            Eq_refuted (Synth.Equiv.mismatch_to_string c.Synth.Equiv.first)
          | Synth.Equiv.Undecided s -> Eq_undecided s)
      |> print_outcome "sim"
    in
    let run_sat () =
      equiv_cached eng ~key:(key "sat") (fun () ->
          let on_stats (s : Sat.Solver.stats) =
            Printf.eprintf
              "sat: %d solve(s), %d conflicts, %d decisions, %d \
               propagations, %.3fs\n%!"
              s.Sat.Solver.solves s.Sat.Solver.conflicts
              s.Sat.Solver.decisions s.Sat.Solver.propagations
              s.Sat.Solver.solve_s
          in
          match Synth.Equiv.check_sat ~frames ~on_stats a b with
          | Synth.Equiv.Proved -> Eq_proved
          | Synth.Equiv.Refuted c ->
            Eq_refuted (Synth.Equiv.mismatch_to_string c.Synth.Equiv.first)
          | Synth.Equiv.Undecided s -> Eq_undecided s
          | exception Failure msg ->
            (* Replay of a SAT model through the scalar simulator failed:
               an encoder soundness bug, never an input property. *)
            Format.printf "sat: SOUNDNESS FAILURE: %s@." msg;
            eng.report_stats ();
            exit 1)
      |> print_outcome "sat"
    in
    let verdicts =
      match engine with
      | `Sim -> [ run_sim () ]
      | `Sat -> [ run_sat () ]
      | `Both ->
        let s = run_sim () in
        [ s; run_sat () ]
    in
    eng.report_stats ();
    let refuted = List.exists (function Eq_refuted _ -> true | _ -> false) verdicts in
    let proved = List.exists (function Eq_proved -> true | _ -> false) verdicts in
    if refuted && proved then begin
      Format.printf
        "DISAGREEMENT: one engine proved equivalence, another found a \
         counterexample@.";
      exit 1
    end;
    (match expect with
     | None -> ()
     | Some `Equivalent ->
       if refuted then begin
         Format.printf "expectation failed: expected equivalent, got a \
                        counterexample@.";
         exit 2
       end
     | Some `Counterexample ->
       if not refuted then begin
         Format.printf "expectation failed: expected a counterexample, none \
                        found@.";
         exit 2
       end)
  in
  let mode_arg =
    Arg.(value
         & opt
             (enum
                [ ("cached", Pctrl.Controller.Cached);
                  ("uncached", Pctrl.Controller.Uncached) ])
             Pctrl.Controller.Cached
         & info [ "mode" ] ~doc:"PCtrl protocol mode.")
  in
  let engine_arg =
    Arg.(value
         & opt (enum [ ("sim", `Sim); ("sat", `Sat); ("both", `Both) ]) `Both
         & info [ "engine" ]
             ~doc:"Checking engine: $(b,sim) (random simulation, falsifier \
                   only), $(b,sat) (complete: register-correspondence \
                   induction with BMC fallback) or $(b,both).")
  in
  let frames_arg =
    Arg.(value & opt int 16
         & info [ "frames" ] ~docv:"N"
             ~doc:"BMC depth when the SAT engine cannot close an induction.")
  in
  let opt_arg =
    Arg.(value & flag
         & info [ "opt" ]
             ~doc:"Compare against the fully optimized AIG instead of the \
                   lowered one. Optimization does not preserve latch names, \
                   so the SAT engine degrades to bounded model checking.")
  in
  let mutate_arg =
    Arg.(value & opt (some int) None
         & info [ "mutate" ] ~docv:"SEED"
             ~doc:"Flip one seeded-random microcode bit on the flexible \
                   side before binding (negative-control injection; the \
                   flipped table/entry/bit is printed).")
  in
  let expect_arg =
    Arg.(value
         & opt
             (some
                (enum
                   [ ("equivalent", `Equivalent);
                     ("counterexample", `Counterexample) ]))
             None
         & info [ "expect" ]
             ~doc:"Fail (exit 2) unless the outcome matches: \
                   $(b,equivalent) = no engine refutes, \
                   $(b,counterexample) = some engine refutes.")
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:"Certify flexible-vs-partially-evaluated PCtrl equivalence.")
    Term.(const run $ engine_term $ mode_arg $ engine_arg $ frames_arg
          $ opt_arg $ mutate_arg $ expect_arg)

(* ------------------------------------------------------------------ fault *)

let fault_cmd =
  let run eng impl mode model seed sites cycles journal_path resume_path
      crash_after vcd_path scalar_sim =
    let impl =
      match impl with
      | `Flexible -> Experiments.Fault_cmp.Flexible
      | `Bound -> Experiments.Fault_cmp.Bound
    in
    let spec = Experiments.Fault_cmp.spec_of ~cycles ~mode impl in
    (* The stuck-at population lives on the synthesized netlist; other
       models never need the compile. *)
    let aig =
      match model with
      | Fault.Campaign.Stuck | Fault.Campaign.All ->
        let result = Synth.Flow.compile lib spec.Fault.Sim.design in
        Some { Fault.Sim.aig = result.Synth.Flow.aig; cycles; seed }
      | Fault.Campaign.Control | Fault.Campaign.Tables | Fault.Campaign.Regs ->
        None
    in
    let journal = Option.map Engine.Journal.open_append journal_path in
    let resume =
      match resume_path with
      | None -> []
      | Some path ->
        let entries = Engine.Journal.load path in
        Printf.eprintf "resuming: %d journaled site(s) from %s\n%!"
          (List.length entries) path;
        entries
    in
    let on_checkpoint =
      Option.map
        (fun k n ->
          if n >= k then begin
            Printf.eprintf "crash-after: exiting after %d journaled site(s)\n%!"
              n;
            exit 3
          end)
        crash_after
    in
    let report =
      Fault.Campaign.run ~jobs:eng.sim_jobs ?timeout_s:eng.timeout_s
        ~retries:eng.retries ?journal ~resume ?on_checkpoint ?aig
        ~packed:(not scalar_sim) ~seed ~sites ~model spec
    in
    Option.iter Engine.Journal.close journal;
    Fault.Campaign.print stdout report;
    Option.iter
      (fun path ->
        match Fault.Campaign.first_mismatch report with
        | None -> prerr_endline "ctrlgen: no mismatching site; VCD not written"
        | Some (Fault.Site.Stuck_at _ as site) ->
          Printf.eprintf
            "ctrlgen: first mismatch %s is a netlist fault; no RTL trace\n"
            (Fault.Site.key site)
        | Some site ->
          Out_channel.with_open_text path (fun oc ->
              output_string oc (Fault.Sim.vcd_site spec site));
          Printf.eprintf "ctrlgen: wrote %s (site %s)\n" path
            (Fault.Site.key site))
      vcd_path;
    eng.report_stats ();
    if report.Fault.Campaign.failed > 0 then exit 1
  in
  let impl_arg =
    Arg.(value
         & opt (enum [ ("flexible", `Flexible); ("bound", `Bound) ]) `Flexible
         & info [ "impl" ]
             ~doc:"Implementation under test: $(b,flexible) (configuration \
                   memories bound at run time) or $(b,bound) (partially \
                   evaluated).")
  in
  let mode_arg =
    Arg.(value
         & opt
             (enum
                [ ("cached", Pctrl.Controller.Cached);
                  ("uncached", Pctrl.Controller.Uncached) ])
             Pctrl.Controller.Cached
         & info [ "mode" ] ~doc:"PCtrl protocol mode.")
  in
  let model_arg =
    Arg.(value
         & opt
             (enum
                [ ("all", Fault.Campaign.All);
                  ("control", Fault.Campaign.Control);
                  ("tables", Fault.Campaign.Tables);
                  ("regs", Fault.Campaign.Regs);
                  ("stuck", Fault.Campaign.Stuck) ])
             Fault.Campaign.All
         & info [ "model" ]
             ~doc:"Fault model: $(b,control) (no fault — self-test), \
                   $(b,tables) (config-memory SEU), $(b,regs) (register \
                   upsets), $(b,stuck) (netlist stuck-at) or $(b,all).")
  in
  let sites_arg =
    Arg.(value & opt int 64
         & info [ "sites" ] ~docv:"N"
             ~doc:"Sample at most $(docv) fault sites (0 = exhaustive).")
  in
  let cycles_arg =
    Arg.(value & opt int 40
         & info [ "cycles" ] ~docv:"N" ~doc:"Stimulus length in cycles.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"PATH"
             ~doc:"Append each classified site to the JSONL checkpoint \
                   journal at $(docv).")
  in
  let resume_arg =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"PATH"
             ~doc:"Skip sites already journaled in $(docv); combined with \
                   $(b,--journal) on the same path this makes the campaign \
                   restartable after a kill, with byte-identical output.")
  in
  let crash_after_arg =
    Arg.(value & opt (some int) None
         & info [ "crash-after" ] ~docv:"K"
             ~doc:"Testing hook: exit(3) once $(docv) sites have been \
                   journaled this run.")
  in
  let vcd_arg =
    Arg.(value & opt (some string) None
         & info [ "vcd" ] ~docv:"PATH"
             ~doc:"Write the faulty trace of the first mismatching RTL site \
                   to $(docv) as VCD.")
  in
  let scalar_sim_arg =
    Arg.(value & flag
         & info [ "scalar-sim" ]
             ~doc:"Classify stuck-at sites one per simulation pass instead \
                   of bit-parallel (debugging aid; the report is \
                   byte-identical either way, just slower).")
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:"Run a fault-injection campaign on the PCtrl case study.")
    Term.(const run $ engine_term $ impl_arg $ mode_arg $ model_arg $ seed_arg
          $ sites_arg $ cycles_arg $ journal_arg $ resume_arg
          $ crash_after_arg $ vcd_arg $ scalar_sim_arg)

(* ------------------------------------------------------------- experiment *)

let experiment_cmd =
  let run eng name =
    (match name with
    | "fig5" -> Experiments.Fig5.print (Experiments.Fig5.run ())
    | "fig6" -> Experiments.Fig6.print (Experiments.Fig6.run ())
    | "fig8" -> Experiments.Fig8.print (Experiments.Fig8.run ())
    | "fig9" -> Experiments.Fig9.print (Experiments.Fig9.run ())
    | "fault" ->
      Experiments.Fault_cmp.print
        (Experiments.Fault_cmp.run ~jobs:eng.sim_jobs ?timeout_s:eng.timeout_s
           ())
    | "ablate-cone" -> Experiments.Ablation.cone_cap ()
    | "ablate-twolevel" -> Experiments.Ablation.twolevel ()
    | "ablate-cap" -> Experiments.Ablation.annot_cap ()
    | other ->
      Format.eprintf "unknown experiment %s@." other;
      exit 2);
    eng.report_stats ();
    (match Experiments.Exp_common.failures () with
    | [] -> ()
    | failures ->
      Format.eprintf "%d synthesis job(s) failed:@." (List.length failures);
      List.iter (fun m -> Format.eprintf "  %s@." m) failures;
      exit 1)
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"NAME"
             ~doc:"fig5, fig6, fig8, fig9, fault, ablate-cone, \
                   ablate-twolevel or ablate-cap.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a paper figure or ablation.")
    Term.(const run $ engine_term $ name_arg)

let () =
  let info =
    Cmd.info "ctrlgen" ~version:"1.0.0"
      ~doc:"Controller intermediate representations for chip generators."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ synth_cmd; asm_cmd; design_cmd; pctrl_cmd; equiv_cmd; fault_cmd;
            experiment_cmd ]))
