(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (Figs. 5, 6, 8, 9), the ablations documented in DESIGN.md, and
   Bechamel micro-benchmarks of the synthesis passes.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe fig5       -- one figure
     dune exec bench/main.exe fault      -- fault-vulnerability comparison
     dune exec bench/main.exe quick      -- subsampled smoke run
     dune exec bench/main.exe perf       -- Bechamel pass benchmarks only

   Engine flags (combine with any command):
     -j N             run synthesis jobs on N worker domains (0 = auto)
     --timeout-s S    per-job timeout, measured from submission
     --retries N      re-run failed jobs up to N times (exp. backoff)
     --cache-dir DIR  persist synthesis results across runs
     --no-cache       disable result caching entirely
     --json PATH      also write figure rows + engine stats as JSON
     --trace PATH     write a Chrome trace (one span per synthesis pass)
     --metrics        print the process metrics table to stderr

   Figure tables go to stdout; engine statistics, metrics and traces go to
   stderr or to their own files, so stdout is byte-identical across -j
   values, cache temperatures and observability settings. A sweep with
   failed compiles still prints every figure (failed cells render as FAIL)
   and exits 1 after listing the failures on stderr. *)

module Json = Report.Json

(* ------------------------------------------------- figure rows as JSON *)

(* A failed compile renders as null (JSON has no better spelling); the
   message lands in the top-level "failures" array instead. *)
let area_json = function Ok a -> Json.Float a | Error _ -> Json.Null

let fig5_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.Fig5.row) ->
         Json.Obj
           [ ("depth", Json.Int r.depth); ("width", Json.Int r.width);
             ("seed", Json.Int r.seed);
             ("table_area", area_json r.table_area);
             ("sop_area", area_json r.sop_area) ])
       rows)

let fig6_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.Fig6.row) ->
         Json.Obj
           [ ("m", Json.Int r.m); ("n", Json.Int r.n); ("s", Json.Int r.s);
             ("seed", Json.Int r.seed);
             ("direct_area", area_json r.direct_area);
             ("regular_area", area_json r.regular_area);
             ("annotated_area", area_json r.annotated_area) ])
       rows)

let fig8_json rows =
  Json.List
    (List.map
       (fun (r : Experiments.Fig8.row) ->
         Json.Obj
           [ ("n", Json.Int r.n); ("flop", Json.String r.style_name);
             ("variant",
              Json.String (Experiments.Fig8.variant_name r.variant));
             ("generic_area", area_json r.generic_area);
             ("direct_area", area_json r.direct_area) ])
       rows)

let fig9_json rows =
  let mode_name = function
    | Pctrl.Controller.Cached -> "cached"
    | Pctrl.Controller.Uncached -> "uncached"
  in
  let level_name = function
    | Experiments.Fig9.Full -> "full"
    | Experiments.Fig9.Auto -> "auto"
    | Experiments.Fig9.Manual -> "manual"
  in
  Json.List
    (List.map
       (fun (r : Experiments.Fig9.row) ->
         Json.Obj
           [ ("config", Json.String (mode_name r.mode));
             ("level", Json.String (level_name r.level));
             ("comb_area", Json.Float r.comb);
             ("seq_area", Json.Float r.seq);
             ("power", Json.Float r.power) ])
       rows)

(* ------------------------------------------------------------ commands *)

(* Each command returns its (figure name, rows-as-JSON) contributions. *)

let fig5 () =
  let rows = Experiments.Fig5.run () in
  Experiments.Fig5.print rows;
  [ ("fig5", fig5_json rows) ]

let fig6 () =
  let rows = Experiments.Fig6.run () in
  Experiments.Fig6.print rows;
  [ ("fig6", fig6_json rows) ]

let fig8 () =
  let rows = Experiments.Fig8.run () in
  Experiments.Fig8.print rows;
  [ ("fig8", fig8_json rows) ]

let fig9 () =
  let rows = Experiments.Fig9.run () in
  Experiments.Fig9.print rows;
  [ ("fig9", fig9_json rows) ]

let fault ~sim_jobs ?timeout_s ?(sites = 48) () =
  let rows = Experiments.Fault_cmp.run ~sites ~jobs:sim_jobs ?timeout_s () in
  Experiments.Fault_cmp.print rows;
  [ ("fault", Experiments.Fault_cmp.to_json rows) ]

let quick () =
  let r5 =
    Experiments.Fig5.run ~seeds:[ 0 ] ~grid:Experiments.Fig5.quick_grid ()
  in
  Experiments.Fig5.print r5;
  let r6 =
    Experiments.Fig6.run ~seeds:[ 0 ] ~grid:Experiments.Fig6.quick_grid ()
  in
  Experiments.Fig6.print r6;
  let r8 = Experiments.Fig8.run ~widths:[ 2; 8; 32; 64 ] () in
  Experiments.Fig8.print r8;
  let r9 = Experiments.Fig9.run () in
  Experiments.Fig9.print r9;
  let fault_rows = Experiments.Fault_cmp.run ~sites:8 () in
  Experiments.Fault_cmp.print fault_rows;
  [ ("fig5", fig5_json r5); ("fig6", fig6_json r6); ("fig8", fig8_json r8);
    ("fig9", fig9_json r9);
    ("fault", Experiments.Fault_cmp.to_json fault_rows) ]

let ablations () =
  Experiments.Ablation.cone_cap ();
  Experiments.Ablation.twolevel ();
  Experiments.Ablation.annot_cap ();
  Experiments.Ablation.encodings ();
  Experiments.Ablation.library_richness ();
  Experiments.Ablation.microcode_style ();
  []

(* One Bechamel test per synthesis stage, all in one executable. *)
let perf () =
  let open Bechamel in
  let tt = Workload.Rand_table.generate ~seed:0 ~depth:256 ~width:8 in
  let bound =
    Synth.Partial_eval.bind_tables
      (Core.Truth_table.to_flexible_rtl tt)
      [ Core.Truth_table.config_binding tt ]
  in
  let fsm =
    Workload.Rand_fsm.generate ~seed:0 ~num_inputs:2 ~num_outputs:8
      ~num_states:16
  in
  let fsm_design =
    Synth.Partial_eval.bind_tables
      (Core.Fsm_ir.to_flexible_rtl ~annotate:true fsm)
      (Core.Fsm_ir.config_bindings fsm)
  in
  let lowered_fsm = (Synth.Lower.run fsm_design).Synth.Lower.aig in
  let tf =
    let rng = Workload.Rng.make 99 in
    Twolevel.Truthfn.of_fun ~nvars:10 (fun _ ->
        if Workload.Rng.int rng 2 = 0 then Twolevel.Truthfn.On
        else Twolevel.Truthfn.Off)
  in
  let lib = Cells.Library.vt90 in
  let pipe_lowered =
    Synth.Lower.run
      (Synth.Partial_eval.bind_tables
         (Core.Fsm_ir.to_flexible_rtl Pctrl.Datapipe.fsm)
         (Core.Fsm_ir.config_bindings Pctrl.Datapipe.fsm))
  in
  let stage name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"passes"
      [
        stage "lower-256x8-table" (fun () -> Synth.Lower.run bound);
        stage "espresso-10var" (fun () -> Twolevel.Espresso.minimize tf);
        stage "collapse-fsm16" (fun () -> Synth.Collapse.run ~annots:[] lowered_fsm);
        stage "sweep-fsm16" (fun () -> Synth.Sweep.run lowered_fsm);
        stage "map-fsm16" (fun () -> Synth.Map.run lib lowered_fsm);
        stage "flow-fsm16" (fun () -> Synth.Flow.compile lib fsm_design);
        stage "bdd-reach-pipe" (fun () ->
            match
              Synth.Reach.latch_group pipe_lowered.Synth.Lower.aig
                ~prefix:"state"
            with
            | Some group ->
              ignore
                (Synth.Reach.reachable_values pipe_lowered.Synth.Lower.aig
                   ~group)
            | None -> ());
      ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "== Bechamel: synthesis pass timings (monotonic clock) ==";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if ns > 1_000_000.0 then
        Printf.printf "%-32s %10.3f ms/run\n" name (ns /. 1e6)
      else Printf.printf "%-32s %10.1f ns/run\n" name ns)
    (List.sort Stdlib.compare !rows);
  print_newline ();
  []

(* ------------------------------------------------- simulation microbench *)

(* Scalar-vs-packed AIG simulation throughput, written to BENCH_sim.json so
   the perf trajectory of the compiled kernel has a tracked baseline. The
   scalar side is the pre-kernel interpreter shape — `Aig.eval_all` plus
   hashtable latch state, one pattern per pass — and doubles as the oracle
   for the packed/scalar agreement smoke. *)

let sim_random_word st =
  let rec go acc k =
    if k >= Aig.Compiled.lanes then acc
    else go (acc lor (Random.State.bits st lsl k)) (k + 30)
  in
  go 0 0

(* One scalar sequential run: [cycles] patterns, one per pass. Returns a
   checksum so the work cannot be dead-code eliminated. *)
let sim_scalar_run g ~cycles ~seed =
  let st = Random.State.make [| 0x5ca1; seed |] in
  let pis = Aig.pis g in
  let latches = Aig.latches g in
  let pos = Aig.pos g in
  let state = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let _, init, _, _ = Aig.latch_info g n in
      Hashtbl.replace state n init)
    latches;
  let acc = ref 0 in
  for _ = 1 to cycles do
    let piv = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace piv n (Random.State.bool st)) pis;
    let read =
      Aig.eval_all g ~pi:(Hashtbl.find piv) ~latch:(Hashtbl.find state)
    in
    List.iter (fun (_, l) -> if read l then incr acc) pos;
    let next = List.map (fun n -> (n, read (Aig.latch_next g n))) latches in
    List.iter (fun (n, v) -> Hashtbl.replace state n v) next
  done;
  !acc

(* One packed run: [cycles * lanes] patterns per pass of the compiled
   kernel. *)
let sim_packed_run c ~cycles ~seed =
  let st = Random.State.make [| 0x9acc; seed |] in
  let s = Aig.Compiled.sim c in
  let npis = Aig.Compiled.num_pis c in
  let npos = Aig.Compiled.num_pos c in
  let acc = ref 0 in
  for _ = 1 to cycles do
    for i = 0 to npis - 1 do
      Aig.Compiled.set_pi s i (sim_random_word st)
    done;
    Aig.Compiled.step s;
    for k = 0 to npos - 1 do
      acc := !acc lxor Aig.Compiled.po s k
    done
  done;
  !acc

(* Drive the packed kernel and the scalar oracle on the same tape and
   compare every PO bit on a spread of lanes. *)
let sim_agreement g c =
  let cycles = 16 in
  let st = Random.State.make [| 0xa9ee |] in
  let npis = Aig.Compiled.num_pis c in
  let npos = Aig.Compiled.num_pos c in
  let tape =
    Array.init cycles (fun _ -> Array.init npis (fun _ -> sim_random_word st))
  in
  let s = Aig.Compiled.sim c in
  let packed = Array.make cycles [||] in
  for cyc = 0 to cycles - 1 do
    Array.iteri (fun i w -> Aig.Compiled.set_pi s i w) tape.(cyc);
    Aig.Compiled.step s;
    packed.(cyc) <- Array.init npos (Aig.Compiled.po s)
  done;
  let pis = Array.of_list (Aig.pis g) in
  let latches = Aig.latches g in
  let pos = Array.of_list (Aig.pos g) in
  let pslot = Hashtbl.create 16 in
  Array.iteri (fun i n -> Hashtbl.replace pslot n i) pis;
  let ok = ref true in
  List.iter
    (fun lane ->
      let state = Hashtbl.create 16 in
      List.iter
        (fun n ->
          let _, init, _, _ = Aig.latch_info g n in
          Hashtbl.replace state n init)
        latches;
      for cyc = 0 to cycles - 1 do
        let pi n = tape.(cyc).(Hashtbl.find pslot n) lsr lane land 1 = 1 in
        let read = Aig.eval_all g ~pi ~latch:(Hashtbl.find state) in
        Array.iteri
          (fun k (_, l) ->
            let expect = read l in
            let got = packed.(cyc).(k) lsr lane land 1 = 1 in
            if got <> expect then ok := false)
          pos;
        let next =
          List.map (fun n -> (n, read (Aig.latch_next g n))) latches
        in
        List.iter (fun (n, v) -> Hashtbl.replace state n v) next
      done)
    [ 0; 7; Aig.Compiled.lanes - 1 ];
  !ok

let microbench ?(reps = 5) () =
  let pctrl =
    (Synth.Lower.run (Pctrl.Controller.auto_design Pctrl.Controller.Cached))
      .Synth.Lower.aig
  in
  let tt = Workload.Rand_table.generate ~seed:0 ~depth:256 ~width:8 in
  let table =
    (Synth.Lower.run
       (Synth.Partial_eval.bind_tables
          (Core.Truth_table.to_flexible_rtl tt)
          [ Core.Truth_table.config_binding tt ]))
      .Synth.Lower.aig
  in
  let fsm =
    Workload.Rand_fsm.generate ~seed:0 ~num_inputs:2 ~num_outputs:8
      ~num_states:16
  in
  let fsm_aig =
    (Synth.Lower.run
       (Synth.Partial_eval.bind_tables
          (Core.Fsm_ir.to_flexible_rtl ~annotate:true fsm)
          (Core.Fsm_ir.config_bindings fsm)))
      .Synth.Lower.aig
  in
  let designs =
    [ ("pctrl", pctrl); ("fig5-table-256x8", table); ("fig6-fsm16", fsm_aig) ]
  in
  let cycles = 1024 in
  (* Best-of-[reps] wall time: robust against scheduler noise without
     needing long runs, so the CI smoke stays cheap. *)
  let best f =
    let t = ref infinity in
    for _ = 1 to max 1 reps do
      let t0 = Obs.now_us () in
      ignore (Sys.opaque_identity (f ()));
      t := Float.min !t (Obs.now_us () -. t0)
    done;
    !t /. 1e6
  in
  print_endline "== Simulation microbench: scalar vs packed (patterns/s) ==";
  Printf.printf "lanes per word: %d, cycles per run: %d, reps: %d\n"
    Aig.Compiled.lanes cycles reps;
  let all_ok = ref true in
  let rows =
    List.map
      (fun (name, g) ->
        let c = Aig.Compiled.compile g in
        let ok = sim_agreement g c in
        if not ok then all_ok := false;
        ignore (sim_scalar_run g ~cycles:32 ~seed:1);
        ignore (sim_packed_run c ~cycles:32 ~seed:1);
        let t_scalar = best (fun () -> sim_scalar_run g ~cycles ~seed:2) in
        let t_packed = best (fun () -> sim_packed_run c ~cycles ~seed:2) in
        let scalar_pps = float_of_int cycles /. t_scalar in
        let packed_pps =
          float_of_int (cycles * Aig.Compiled.lanes) /. t_packed
        in
        let speedup = packed_pps /. scalar_pps in
        Printf.printf
          "%-18s ands %6d  scalar %12.0f/s  packed %12.0f/s  speedup %7.1fx  \
           agreement %s\n"
          name (Aig.Compiled.num_ands c) scalar_pps packed_pps speedup
          (if ok then "ok" else "FAIL");
        Json.Obj
          [ ("design", Json.String name);
            ("ands", Json.Int (Aig.Compiled.num_ands c));
            ("latches", Json.Int (Aig.Compiled.num_latches c));
            ("cycles", Json.Int cycles);
            ("scalar_patterns_per_s", Json.Float scalar_pps);
            ("packed_patterns_per_s", Json.Float packed_pps);
            ("speedup", Json.Float speedup);
            ("agreement", Json.String (if ok then "ok" else "FAIL")) ])
      designs
  in
  print_newline ();
  let doc =
    Json.Obj
      [ ("lanes", Json.Int Aig.Compiled.lanes);
        ("reps", Json.Int reps);
        ("agreement", Json.String (if !all_ok then "ok" else "FAIL"));
        ("designs", Json.List rows) ]
  in
  (try
     Out_channel.with_open_text "BENCH_sim.json" (fun oc ->
         Json.to_channel oc doc)
   with Sys_error msg ->
     Printf.eprintf "error: cannot write BENCH_sim.json: %s\n" msg);
  if not !all_ok then begin
    prerr_endline "microbench: packed/scalar agreement FAILED";
    exit 1
  end;
  [ ("microbench", doc) ]

(* ------------------------------------------------ equivalence benchmark *)

(* SAT certification of the PCtrl partial evaluation, timed: the flexible
   netlist specialized at the AIG level against the generator's partially
   evaluated design, per protocol mode, plus one seeded negative control
   (a microcode bit flip that must be refuted with a concrete witness).
   Solver effort lands in the JSON so the proof cost is tracked alongside
   the synthesis figures. *)
let equivbench () =
  print_endline
    "== SAT equivalence certification: PCtrl partial evaluation ==";
  let flex =
    (Synth.Lower.run (Pctrl.Controller.full_design ())).Synth.Lower.aig
  in
  let one name ~frames ~mutate mode =
    let bindings = Pctrl.Controller.bindings mode in
    let bindings =
      match mutate with
      | None -> bindings
      | Some seed ->
        let rng = Workload.Rng.make seed in
        let i = Workload.Rng.int rng (List.length bindings) in
        let _, contents = List.nth bindings i in
        let e = Workload.Rng.int rng (Array.length contents) in
        let b = Workload.Rng.int rng (Bitvec.width contents.(e)) in
        let contents' = Array.copy contents in
        contents'.(e) <-
          Bitvec.set contents.(e) b (not (Bitvec.get contents.(e) b));
        List.mapi
          (fun j (n, c) -> if j = i then (n, contents') else (n, c))
          bindings
    in
    let a = Synth.Partial_eval.bind_aig_tables flex bindings in
    let b =
      (Synth.Lower.run (Pctrl.Controller.auto_design mode)).Synth.Lower.aig
    in
    let stats = ref None in
    let t0 = Obs.now_us () in
    let verdict =
      Synth.Equiv.check_sat ~frames ~on_stats:(fun s -> stats := Some s) a b
    in
    let wall_s = (Obs.now_us () -. t0) /. 1e6 in
    let verdict_name, witness =
      match verdict with
      | Synth.Equiv.Proved -> ("proved", None)
      | Synth.Equiv.Refuted c ->
        ("refuted", Some (Synth.Equiv.mismatch_to_string c.Synth.Equiv.first))
      | Synth.Equiv.Undecided s -> ("undecided", Some s)
    in
    let solves, conflicts, propagations =
      match !stats with
      | None -> (0, 0, 0)
      | Some s ->
        (s.Sat.Solver.solves, s.Sat.Solver.conflicts,
         s.Sat.Solver.propagations)
    in
    Printf.printf
      "%-24s %-9s %8.3fs  %4d solve(s) %6d conflicts %9d propagations%s\n"
      name verdict_name wall_s solves conflicts propagations
      (match witness with None -> "" | Some w -> "  [" ^ w ^ "]");
    Json.Obj
      [ ("case", Json.String name);
        ("verdict", Json.String verdict_name);
        ("wall_s", Json.Float wall_s);
        ("solves", Json.Int solves);
        ("conflicts", Json.Int conflicts);
        ("propagations", Json.Int propagations);
        ("witness",
         match witness with None -> Json.Null | Some w -> Json.String w) ]
  in
  let cached = one "cached" ~frames:16 ~mutate:None Pctrl.Controller.Cached in
  let uncached =
    one "uncached" ~frames:16 ~mutate:None Pctrl.Controller.Uncached
  in
  (* Seed 8 flips a dispatch-table bit that manifests within a few cycles,
     so the refutation is cheap; deeper frames only matter for mutations of
     unreachable entries, which this control avoids. *)
  let mutation =
    one "cached+mutation" ~frames:6 ~mutate:(Some 8) Pctrl.Controller.Cached
  in
  let rows = [ cached; uncached; mutation ] in
  print_newline ();
  [ ("equivbench", Json.List rows) ]

let all ~sim_jobs ?timeout_s ?sim_reps () =
  let figs =
    List.concat
      [ fig5 (); fig6 (); fig8 (); fig9 ();
        fault ~sim_jobs ?timeout_s (); ablations (); equivbench (); perf ();
        microbench ?reps:sim_reps () ]
  in
  figs

(* --------------------------------------------------------- entry point *)

let engine_stats_json (s : Engine.stats) =
  Json.Obj
    [ ("submitted", Json.Int s.Engine.submitted);
      ("executed", Json.Int s.Engine.executed);
      ("failed", Json.Int s.Engine.failed);
      ("retried", Json.Int s.Engine.retried);
      ("mem_hits", Json.Int s.Engine.mem_hits);
      ("disk_hits", Json.Int s.Engine.disk_hits);
      ("quarantined", Json.Int s.Engine.quarantined);
      ("wall_s", Json.Float s.Engine.wall_s);
      ("cpu_s", Json.Float s.Engine.cpu_s) ]

let usage () =
  prerr_endline
    "usage: main.exe \
     [all|quick|fig5|fig6|fig8|fig9|fault|ablations|ablate-cone|ablate-twolevel|ablate-cap|ablate-encodings|ablate-library|ablate-ucode|equivbench|perf|microbench]\n\
     \       [-j N] [--timeout-s S] [--retries N] [--cache-dir DIR] \
     [--no-cache] [--json PATH] [--trace PATH] [--metrics] [--sim-reps N]";
  exit 2

let () =
  let commands = ref [] in
  let jobs = ref 1 in
  let timeout_s = ref None in
  let retries = ref 0 in
  let cache_dir = ref None in
  let no_cache = ref false in
  let json_path = ref None in
  let trace_path = ref None in
  let metrics = ref false in
  let sim_reps = ref None in
  let rec parse = function
    | [] -> ()
    | ("-j" | "--jobs") :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 0 -> jobs := n
       | _ -> usage ());
      parse rest
    | [ "-j" ] | [ "--jobs" ] -> usage ()
    | "--timeout-s" :: s :: rest ->
      (match float_of_string_opt s with
       | Some s when s > 0.0 -> timeout_s := Some s
       | _ -> usage ());
      parse rest
    | [ "--timeout-s" ] -> usage ()
    | "--retries" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 0 -> retries := n
       | _ -> usage ());
      parse rest
    | [ "--retries" ] -> usage ()
    | "--cache-dir" :: dir :: rest ->
      cache_dir := Some dir;
      parse rest
    | [ "--cache-dir" ] -> usage ()
    | "--no-cache" :: rest ->
      no_cache := true;
      parse rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | [ "--json" ] -> usage ()
    | "--trace" :: path :: rest ->
      trace_path := Some path;
      parse rest
    | [ "--trace" ] -> usage ()
    | "--metrics" :: rest ->
      metrics := true;
      parse rest
    | "--sim-reps" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> sim_reps := Some n
       | _ -> usage ());
      parse rest
    | [ "--sim-reps" ] -> usage ()
    | cmd :: rest ->
      commands := !commands @ [ cmd ];
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Observability on when either sink was requested. The at_exit hook
     makes the trace survive the failed-sweep exit-1 path. *)
  if !metrics || !trace_path <> None then Obs.set_enabled true;
  Option.iter Obs.Trace.install_at_exit !trace_path;
  (match
     Engine.create ~jobs:!jobs ?cache_dir:!cache_dir ~no_cache:!no_cache
       ?timeout_s:!timeout_s ~retries:!retries Cells.Library.vt90
   with
  | e -> Engine.set_default e
  | exception Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 2);
  let sim_jobs =
    if !jobs = 0 then Domain.recommended_domain_count () else !jobs
  in
  let command = match !commands with [] -> "all" | c :: _ -> c in
  (match !commands with [] | [ _ ] -> () | _ -> usage ());
  let figures =
    match command with
    | "all" -> all ~sim_jobs ?timeout_s:!timeout_s ?sim_reps:!sim_reps ()
    | "fig5" -> fig5 ()
    | "fig6" -> fig6 ()
    | "fig8" -> fig8 ()
    | "fig9" -> fig9 ()
    | "fault" -> fault ~sim_jobs ?timeout_s:!timeout_s ()
    | "quick" -> quick ()
    | "perf" -> perf ()
    | "microbench" -> microbench ?reps:!sim_reps ()
    | "equivbench" -> equivbench ()
    | "ablate-cone" -> Experiments.Ablation.cone_cap (); []
    | "ablate-twolevel" -> Experiments.Ablation.twolevel (); []
    | "ablate-cap" -> Experiments.Ablation.annot_cap (); []
    | "ablate-encodings" -> Experiments.Ablation.encodings (); []
    | "ablate-library" -> Experiments.Ablation.library_richness (); []
    | "ablate-ucode" -> Experiments.Ablation.microcode_style (); []
    | "ablations" -> ablations ()
    | _ -> usage ()
  in
  let stats = Engine.stats (Engine.default ()) in
  prerr_string (Engine.stats_table stats);
  if !metrics then prerr_string (Obs.Metrics.to_table ());
  let failures = Experiments.Exp_common.failures () in
  Option.iter
    (fun path ->
      let doc =
        Json.Obj
          [ ("command", Json.String command);
            ("figures", Json.Obj figures);
            ("failures",
             Json.List (List.map (fun m -> Json.String m) failures));
            ("engine", engine_stats_json stats);
            ("metrics",
             if Obs.enabled () then Obs.Metrics.to_json () else Json.Null) ]
      in
      try Out_channel.with_open_text path (fun oc -> Json.to_channel oc doc)
      with Sys_error msg ->
        Printf.eprintf "error: cannot write JSON output: %s\n" msg;
        exit 2)
    !json_path;
  if failures <> [] then begin
    Printf.eprintf "%d synthesis job(s) failed:\n" (List.length failures);
    List.iter (fun m -> Printf.eprintf "  %s\n" m) failures;
    exit 1
  end
