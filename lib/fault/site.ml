type t =
  | No_fault
  | Table_bit of { table : string; entry : int; bit : int }
  | Reg_bit of { reg : string; bit : int; cycle : int }
  | Stuck_at of { node : int; value : bool }

let key = function
  | No_fault -> "none"
  | Table_bit { table; entry; bit } ->
    Printf.sprintf "table:%s:%d:%d" table entry bit
  | Reg_bit { reg; bit; cycle } -> Printf.sprintf "reg:%s:%d@%d" reg bit cycle
  | Stuck_at { node; value } ->
    Printf.sprintf "stuck:%d:%d" node (if value then 1 else 0)

let describe = function
  | No_fault -> "no fault (control)"
  | Table_bit { table; entry; bit } ->
    Printf.sprintf "bit flip in table %s, entry %d, bit %d" table entry bit
  | Reg_bit { reg; bit; cycle } ->
    Printf.sprintf "upset of register %s bit %d at cycle %d" reg bit cycle
  | Stuck_at { node; value } ->
    Printf.sprintf "netlist node %d stuck at %d" node (if value then 1 else 0)

let table_sites (d : Rtl.Design.t) ~config =
  (* Only configuration memories count: their bits live in real storage
     after fabrication. ROM tables are folded into fixed logic by synthesis
     and have no per-bit state to upset. *)
  List.concat_map
    (fun (t : Rtl.Design.table) ->
      match t.storage with
      | Rtl.Design.Rom _ -> []
      | Rtl.Design.Config ->
        (match List.assoc_opt t.tname config with
         | None -> []
         | Some contents ->
           List.concat
             (List.init (Array.length contents) (fun entry ->
                  List.init t.twidth (fun bit ->
                      Table_bit { table = t.tname; entry; bit })))))
    d.Rtl.Design.tables

let reg_sites (d : Rtl.Design.t) ~cycles ~rng =
  List.concat_map
    (fun (r : Rtl.Design.reg) ->
      let name = r.q.Rtl.Signal.name in
      List.init r.q.Rtl.Signal.width (fun bit ->
          let cycle = if cycles <= 1 then 0 else Workload.Rng.int rng cycles in
          Reg_bit { reg = name; bit; cycle }))
    d.Rtl.Design.regs

let stuck_sites aig =
  List.concat_map
    (fun node ->
      match Aig.kind aig node with
      | Aig.And ->
        [ Stuck_at { node; value = false }; Stuck_at { node; value = true } ]
      | Aig.Const | Aig.Pi | Aig.Latch -> [])
    (List.init (Aig.num_nodes aig) Fun.id)

let sample rng ~count sites =
  if count <= 0 || count >= List.length sites then sites
  else Workload.Rng.subset rng ~size:count sites
