(** Golden-vs-faulty simulation and outcome classification.

    Every injected site is classified against a fault-free ("golden") run
    of the same stimulus:
    - {!Masked}: every watched signal matched the golden trace on every
      cycle — the fault had no architecturally visible effect.
    - {!Mismatch}: the first cycle and signal where the faulty trace
      diverged.
    - {!Hang}: the golden run asserted the [done_signal] but the faulty
      run never did, even when clocked for [hang_factor] times the
      stimulus length with inputs held — or the faulty simulation raised.

    RTL faults ({!Site.Table_bit}, {!Site.Reg_bit}) simulate through
    {!Rtl.Eval}; netlist stuck-at faults simulate on the {!Aig} through
    the {!Aig.Compiled} bit-parallel kernel — scalar per-site runs force
    the stuck node across all lanes, while {!aig_run_sites_packed}
    classifies up to {!Aig.Compiled.lanes} sites per simulation pass with
    per-lane force masks. Both paths are pure functions of (spec, site),
    safe to run concurrently from {!Engine} pool workers. *)

type outcome =
  | Masked
  | Mismatch of { cycle : int; signal : string }
  | Hang of string

val outcome_class : outcome -> string
(** ["masked"] / ["mismatch"] / ["hang"]. *)

val outcome_detail : outcome -> string

val outcome_to_string : outcome -> string
(** Stable single-line encoding, the {!Engine.Journal} payload. *)

val outcome_of_string : string -> (outcome, string) result
(** Inverse of {!outcome_to_string}. *)

(** {1 RTL fault simulation} *)

type spec = {
  design : Rtl.Design.t;
  config : (string * Bitvec.t array) list;
  stimulus : (string * Bitvec.t) list list;
      (** per-cycle input bindings, as for {!Rtl.Eval.run} *)
  watch : string list;  (** signals compared against the golden trace *)
  done_signal : string option;
  hang_factor : int;
}

val spec :
  ?config:(string * Bitvec.t array) list ->
  ?done_signal:string ->
  ?hang_factor:int ->
  stimulus:(string * Bitvec.t) list list ->
  watch:string list ->
  Rtl.Design.t ->
  spec
(** [hang_factor] defaults to 2. [done_signal], when given, is appended to
    [watch] if absent so delayed completion reads as a mismatch. *)

type golden = { samples : Bitvec.t list list; done_seen : bool }

val golden : spec -> golden
(** The fault-free reference trace; compute once per campaign and share. *)

val run_site : spec -> golden -> Site.t -> outcome
(** Simulate one fault site and classify it. Table faults are applied
    persistently to a copy of the bound contents ({!Rtl.Design.Config}
    binding or ROM storage); register faults flip the bit at the start of
    their injection cycle via {!Rtl.Eval.poke_reg}. The spec's own
    bindings are never mutated. A raising simulation classifies as
    {!Hang}. @raise Invalid_argument on {!Site.Stuck_at} — netlist faults
    go through {!aig_run_site}. *)

val trace_site : spec -> Site.t -> Bitvec.t list list
(** The faulty watch-signal trace over the stimulus window (no hang
    extension) — one row per cycle, one column per [watch] signal. *)

val vcd_site : spec -> Site.t -> string
(** {!trace_site} rendered as a VCD document via {!Rtl.Vcd.of_samples}. *)

(** {1 Netlist (AIG) stuck-at simulation} *)

type aig_spec = { aig : Aig.t; cycles : int; seed : int }
(** Stimulus for the netlist path is [cycles] rows of random primary-input
    values drawn deterministically from [seed] — identical for golden and
    faulty runs. Latches start at their declared init values. *)

type aig_golden = (string * bool) list array
(** Per-cycle primary-output values of the fault-free run. *)

val aig_golden : aig_spec -> aig_golden

val aig_run_site : aig_spec -> aig_golden -> Site.t -> outcome
(** Simulate with the stuck node forced to its stuck value (fanout sees
    the forced value; the fault is persistent) and compare primary
    outputs. @raise Invalid_argument on RTL-state sites. *)

val aig_run_sites_packed :
  aig_spec -> aig_golden -> Site.t list -> (Site.t * outcome) list
(** Classify a batch of stuck-at sites bit-parallel: sites are chunked
    {!Aig.Compiled.lanes} at a time, lane [i] of a chunk simulates site
    [i] via per-lane force masks, and each lane is compared against the
    replicated golden trace after every cycle (with early exit once all
    lanes have diverged). Classifications are byte-identical to mapping
    {!aig_run_site} over the list — the packed pass preserves the
    first-cycle, first-output mismatch attribution, and any packed-pass
    failure falls back to the scalar path for that chunk. Input order is
    preserved in the result. @raise Invalid_argument on RTL-state sites. *)
