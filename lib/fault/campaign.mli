(** Fault-injection campaigns: enumerate (or sample) fault sites, run each
    golden-vs-faulty simulation as an {!Engine.Batch} job, and aggregate a
    classification report.

    Determinism: for a fixed (seed, model, sites) the site list, the
    per-site outcomes, and the rendered report are identical across [jobs]
    counts and across kill-and-resume — campaigns are safe to diff byte
    for byte. *)

type model =
  | Control  (** the single {!Site.No_fault} site — simulator self-test *)
  | Tables  (** SEU in configuration-table storage *)
  | Regs  (** transient register-bit upsets *)
  | Stuck  (** netlist stuck-at faults (needs [~aig]) *)
  | All

val model_name : model -> string

val model_of_string : string -> (model, string) result

type row = { site : Site.t; result : (Sim.outcome, string) result }
(** [Error] carries a rendered job-failure message (crash/timeout), not a
    fault classification. *)

type report = {
  model : model;
  seed : int;
  population : int;  (** sites enumerated before sampling *)
  injected : int;  (** sites actually simulated *)
  masked : int;
  mismatches : int;
  hangs : int;
  failed : int;  (** jobs that errored rather than classified *)
  rows : row list;  (** in site order *)
}

val outcome_codec : Sim.outcome Engine.Batch.codec

val run :
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?journal:Engine.Journal.t ->
  ?resume:Engine.Journal.entry list ->
  ?on_checkpoint:(int -> unit) ->
  ?aig:Sim.aig_spec ->
  ?packed:bool ->
  seed:int ->
  sites:int ->
  model:model ->
  Sim.spec ->
  report
(** [sites <= 0] runs the exhaustive population; otherwise a seeded sample
    of that many sites (model [All] always retains the control site).
    [jobs]/[timeout_s]/[retries]/[backoff_s]/[journal]/[resume]/
    [on_checkpoint] are passed to {!Engine.Batch.run}. Model [Stuck]
    without [~aig] has an empty population.

    [packed] (default [true]) classifies stuck-at sites bit-parallel via
    {!Sim.aig_run_sites_packed} in a pre-pass — {!Aig.Compiled.lanes}
    sites per simulation — before the job pool starts; pool workers then
    answer stuck-at sites from the precomputed table. Classifications,
    the journal, and the rendered report are byte-identical to
    [~packed:false] (the packed pass preserves scalar mismatch
    attribution, and any packed failure falls back to scalar per site).
    Sites already settled by [resume] are never re-simulated, packed or
    not. *)

val first_mismatch : report -> Site.t option
(** The first site classified as a mismatch — the one worth a VCD dump. *)

val to_table : report -> string

val summary_line : report -> string

val print : out_channel -> report -> unit
(** Header line, site table, summary line — a pure function of the report,
    which is what the kill-and-resume byte-identity test diffs. *)

val to_json : report -> Report.Json.t
