type model = Control | Tables | Regs | Stuck | All

let model_name = function
  | Control -> "control"
  | Tables -> "tables"
  | Regs -> "regs"
  | Stuck -> "stuck"
  | All -> "all"

let model_of_string = function
  | "control" -> Ok Control
  | "tables" -> Ok Tables
  | "regs" -> Ok Regs
  | "stuck" -> Ok Stuck
  | "all" -> Ok All
  | s -> Error (Printf.sprintf "unknown fault model %S" s)

type row = { site : Site.t; result : (Sim.outcome, string) result }

type report = {
  model : model;
  seed : int;
  population : int;
  injected : int;
  masked : int;
  mismatches : int;
  hangs : int;
  failed : int;
  rows : row list;
}

let outcome_codec =
  {
    Engine.Batch.encode = Sim.outcome_to_string;
    decode = Sim.outcome_of_string;
  }

(* Enumerate the full site population for [model], then (for [sites > 0])
   sample it down. Everything downstream of [seed] is deterministic: the
   register injection cycles and the sample draw use independent
   [Rng.split] streams consumed in a fixed order. *)
let enumerate ?aig ~seed ~sites ~model (spec : Sim.spec) =
  let rng = Workload.Rng.make seed in
  let cycles = List.length spec.stimulus in
  let cat = function
    | Control -> [ Site.No_fault ]
    | Tables -> Site.table_sites spec.design ~config:spec.config
    | Regs ->
      Site.reg_sites spec.design ~cycles ~rng:(Workload.Rng.split rng "regs")
    | Stuck ->
      (match aig with
       | None -> []
       | Some (a : Sim.aig_spec) -> Site.stuck_sites a.aig)
    | All -> assert false
  in
  let population =
    match model with
    | All -> cat Control @ cat Tables @ cat Regs @ cat Stuck
    | m -> cat m
  in
  let srng = Workload.Rng.split rng "sample" in
  let sampled =
    if sites <= 0 then population
    else
      match model with
      | All ->
        (* The control site always survives sampling: it anchors the
           campaign's self-test (a healthy simulator masks it). *)
        let rest = List.filter (fun s -> s <> Site.No_fault) population in
        let rest =
          if sites - 1 <= 0 then []
          else Site.sample srng ~count:(sites - 1) rest
        in
        Site.No_fault :: rest
      | _ -> Site.sample srng ~count:sites population
  in
  (population, sampled)

let run ?(jobs = 1) ?timeout_s ?(retries = 0) ?(backoff_s = 0.05) ?journal
    ?(resume = []) ?on_checkpoint ?aig ?(packed = true) ~seed ~sites ~model
    (spec : Sim.spec) =
  Obs.Span.with_span
    ~args:
      [
        ("model", Obs.Span.Str (model_name model));
        ("seed", Obs.Span.Int seed);
      ]
    "fault.campaign"
  @@ fun () ->
  let t_start = Obs.now_us () in
  let population, injected = enumerate ?aig ~seed ~sites ~model spec in
  let needs_rtl =
    List.exists (function Site.Stuck_at _ -> false | _ -> true) injected
  in
  let needs_aig =
    List.exists (function Site.Stuck_at _ -> true | _ -> false) injected
  in
  (* Goldens are computed once, before the pool forks, and shared read-only
     with every worker. *)
  let g = if needs_rtl then Some (Sim.golden spec) else None in
  let ag =
    match (needs_aig, aig) with
    | true, Some a -> Some (Sim.aig_golden a)
    | _ -> None
  in
  (* Packed pre-pass: classify every fresh stuck-at site up front,
     {!Aig.Compiled.lanes} sites per simulation pass, before the pool
     forks — workers then answer those sites from a read-only table.
     Sites already settled in the resume journal are excluded (the batch
     layer never re-runs them), so resumed campaigns do not pay for
     packed passes over work they are about to skip. *)
  let packed_results : (string, Sim.outcome) Hashtbl.t = Hashtbl.create 64 in
  (match (packed, aig, ag) with
   | true, Some a, Some golden ->
     let resumed = Hashtbl.create (List.length resume) in
     List.iter
       (fun (e : Engine.Journal.entry) -> Hashtbl.replace resumed e.key ())
       resume;
     let fresh_stuck =
       List.filter
         (function
           | Site.Stuck_at _ as site -> not (Hashtbl.mem resumed (Site.key site))
           | _ -> false)
         injected
     in
     List.iter
       (fun (site, outcome) ->
         Hashtbl.replace packed_results (Site.key site) outcome)
       (Sim.aig_run_sites_packed a golden fresh_stuck)
   | _ -> ());
  let run_one site =
    match site with
    | Site.Stuck_at _ ->
      (match Hashtbl.find_opt packed_results (Site.key site) with
       | Some outcome -> outcome
       | None ->
         (match (aig, ag) with
          | Some a, Some golden -> Sim.aig_run_site a golden site
          | _ -> invalid_arg "Fault.Campaign.run: stuck-at sites need ~aig"))
    | _ -> Sim.run_site spec (Option.get g) site
  in
  let results =
    Engine.Batch.run ~jobs ?timeout_s ~retries ~backoff_s ?journal ~resume
      ?on_checkpoint ~key:Site.key ~codec:outcome_codec run_one injected
  in
  let rows = List.map2 (fun site result -> { site; result }) injected results in
  let count p = List.length (List.filter p rows) in
  let report =
    {
      model;
      seed;
      population = List.length population;
      injected = List.length injected;
      masked = count (fun r -> r.result = Ok Sim.Masked);
      mismatches =
        count (fun r ->
            match r.result with Ok (Sim.Mismatch _) -> true | _ -> false);
      hangs =
        count (fun r ->
            match r.result with Ok (Sim.Hang _) -> true | _ -> false);
      failed =
        count (fun r -> match r.result with Error _ -> true | _ -> false);
      rows;
    }
  in
  if Obs.enabled () then begin
    let c name by = Obs.Metrics.incr ~by (Obs.Metrics.counter name) in
    c "fault.sites" report.injected;
    c "fault.masked" report.masked;
    c "fault.mismatches" report.mismatches;
    c "fault.hangs" report.hangs;
    c "fault.failed" report.failed;
    (* Throughput counts injected sites (= packed lanes), not packed
       passes: a pass that classifies 63 lanes contributes 63. *)
    c "fault.campaign.packed_sites" (Hashtbl.length packed_results);
    let dt_s = (Obs.now_us () -. t_start) /. 1e6 in
    if dt_s > 0.0 then
      Obs.Metrics.set
        (Obs.Metrics.gauge "fault.campaign.sites_per_s")
        (float_of_int report.injected /. dt_s);
    Obs.Span.add_args
      [
        ("sites", Obs.Span.Int report.injected);
        ("masked", Obs.Span.Int report.masked);
        ("mismatches", Obs.Span.Int report.mismatches);
        ("hangs", Obs.Span.Int report.hangs);
        ("failed", Obs.Span.Int report.failed);
      ]
  end;
  report

let first_mismatch report =
  List.find_map
    (fun r ->
      match r.result with Ok (Sim.Mismatch _) -> Some r.site | _ -> None)
    report.rows

let to_table report =
  let rows =
    List.map
      (fun r ->
        match r.result with
        | Ok o -> [ Site.key r.site; Sim.outcome_class o; Sim.outcome_detail o ]
        | Error e -> [ Site.key r.site; "FAILED"; e ])
      report.rows
  in
  Report.Table.render
    ~align:[ Report.Table.Left; Report.Table.Left; Report.Table.Left ]
    ~header:[ "site"; "outcome"; "detail" ]
    rows

let summary_line report =
  Printf.sprintf
    "summary: sites %d/%d  masked %d  mismatch %d  hang %d  failed %d"
    report.injected report.population report.masked report.mismatches
    report.hangs report.failed

let print oc report =
  Printf.fprintf oc "fault campaign: model=%s seed=%d\n" (model_name report.model)
    report.seed;
  output_string oc (to_table report);
  output_string oc (summary_line report);
  output_char oc '\n'

let to_json report =
  let open Report.Json in
  Obj
    [
      ("model", String (model_name report.model));
      ("seed", Int report.seed);
      ("population", Int report.population);
      ("injected", Int report.injected);
      ("masked", Int report.masked);
      ("mismatch", Int report.mismatches);
      ("hang", Int report.hangs);
      ("failed", Int report.failed);
      ( "rows",
        List
          (List.map
             (fun r ->
               Obj
                 (("site", String (Site.key r.site))
                  ::
                  (match r.result with
                   | Ok o ->
                     [
                       ("outcome", String (Sim.outcome_class o));
                       ("detail", String (Sim.outcome_detail o));
                     ]
                   | Error e ->
                     [ ("outcome", String "failed"); ("detail", String e) ])))
             report.rows) );
    ]
