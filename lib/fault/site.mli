(** Fault sites: where a fault model perturbs a design.

    Three models, matching what the paper's controllers put at risk:
    - {!Table_bit}: a single-bit upset in a configuration memory — the
      FSM-table / microcode storage a flexible controller keeps writable
      after fabrication. Persistent for the whole run (the bit stays
      flipped until reprogrammed).
    - {!Reg_bit}: a single-event upset of one register bit at one clock
      cycle — transient state corruption; the register logic may overwrite
      it on the next edge.
    - {!Stuck_at}: a gate output stuck at 0/1 in the synthesized netlist
      (AIG node) — the classic manufacturing-defect model.

    {!No_fault} is the control: a campaign of [No_fault] sites must
    classify 100% masked, which is the fault simulator's self-test. *)

type t =
  | No_fault
  | Table_bit of { table : string; entry : int; bit : int }
  | Reg_bit of { reg : string; bit : int; cycle : int }
  | Stuck_at of { node : int; value : bool }

val key : t -> string
(** Stable, unique identifier — the journal/checkpoint key
    (e.g. ["table:pc.ucode:3:7"], ["reg:state:2@14"], ["stuck:41:1"]). *)

val describe : t -> string

val table_sites :
  Rtl.Design.t -> config:(string * Bitvec.t array) list -> t list
(** One site per bit of every [Config] table bound in [config]. ROM tables
    contribute nothing: after synthesis their contents are fixed logic, not
    storage — which is exactly the flexibility/vulnerability trade the
    fault campaign measures. *)

val reg_sites : Rtl.Design.t -> cycles:int -> rng:Workload.Rng.t -> t list
(** One site per bit of every register (configuration registers included),
    each with an injection cycle drawn uniformly from [[0, cycles)] via
    [rng] — exhaustive in space, sampled in time. *)

val stuck_sites : Aig.t -> t list
(** Both polarities for every AND node of the netlist. *)

val sample : Workload.Rng.t -> count:int -> t list -> t list
(** [count] distinct sites ([count <= 0] or [>= length] keeps all). *)
