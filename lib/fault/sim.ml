type outcome =
  | Masked
  | Mismatch of { cycle : int; signal : string }
  | Hang of string

let outcome_class = function
  | Masked -> "masked"
  | Mismatch _ -> "mismatch"
  | Hang _ -> "hang"

let outcome_detail = function
  | Masked -> ""
  | Mismatch { cycle; signal } -> Printf.sprintf "cycle %d, %s" cycle signal
  | Hang reason -> reason

let outcome_to_string = function
  | Masked -> "masked"
  | Mismatch { cycle; signal } -> Printf.sprintf "mismatch %d %s" cycle signal
  | Hang reason -> "hang " ^ reason

let outcome_of_string s =
  if s = "masked" then Ok Masked
  else if String.length s > 5 && String.sub s 0 5 = "hang " then
    Ok (Hang (String.sub s 5 (String.length s - 5)))
  else
    match String.split_on_char ' ' s with
    | "mismatch" :: cycle :: signal ->
      (match int_of_string_opt cycle with
       | Some cycle when signal <> [] ->
         Ok (Mismatch { cycle; signal = String.concat " " signal })
       | _ -> Error ("bad mismatch outcome: " ^ s))
    | _ -> Error ("unknown outcome: " ^ s)

(* ------------------------------------------------------- RTL fault sim *)

type spec = {
  design : Rtl.Design.t;
  config : (string * Bitvec.t array) list;
  stimulus : (string * Bitvec.t) list list;
  watch : string list;
  done_signal : string option;
  hang_factor : int;
}

let spec ?(config = []) ?done_signal ?(hang_factor = 2) ~stimulus ~watch
    design =
  (* The hang detector compares [done_signal] cycle by cycle too: a fault
     that merely delays completion shows up as a mismatch, not a hang. *)
  let watch =
    match done_signal with
    | Some s when not (List.mem s watch) -> watch @ [ s ]
    | _ -> watch
  in
  { design; config; stimulus; watch; done_signal; hang_factor }

type golden = { samples : Bitvec.t list list; done_seen : bool }

let flip v bit = Bitvec.set v bit (not (Bitvec.get v bit))

(* Produce the (design, config) pair with a persistent storage fault baked
   in. Register upsets are transient and injected during the run instead.
   Fresh arrays are allocated before flipping: the spec's bindings are
   shared across concurrent campaign jobs and must never be mutated. *)
let materialize spec site =
  match site with
  | Site.Table_bit { table; entry; bit } ->
    (match (Rtl.Design.find_table spec.design table).Rtl.Design.storage with
     | Rtl.Design.Config ->
       let config =
         List.map
           (fun (n, contents) ->
             if n = table then begin
               let c = Array.copy contents in
               c.(entry) <- flip c.(entry) bit;
               (n, c)
             end
             else (n, contents))
           spec.config
       in
       (spec.design, config)
     | Rtl.Design.Rom contents ->
       let c = Array.copy contents in
       c.(entry) <- flip c.(entry) bit;
       (Rtl.Design.with_rom_contents spec.design table c, spec.config))
  | Site.No_fault | Site.Reg_bit _ -> (spec.design, spec.config)
  | Site.Stuck_at _ ->
    invalid_arg "Fault.Sim: stuck-at faults simulate on the netlist (aig_*)"

let run_traced spec site ~extend =
  let design, config = materialize spec site in
  let st = Rtl.Eval.create ~config design in
  Rtl.Eval.reset st;
  let done_seen = ref false in
  let check_done () =
    Option.iter
      (fun s ->
        if Bitvec.reduce_or (Rtl.Eval.peek st s) then done_seen := true)
      spec.done_signal
  in
  let inject cycle =
    match site with
    | Site.Reg_bit { reg; bit; cycle = c } when c = cycle ->
      Rtl.Eval.poke_reg st reg (flip (Rtl.Eval.peek_reg st reg) bit)
    | _ -> ()
  in
  let samples =
    List.mapi
      (fun cycle alist ->
        inject cycle;
        List.iter (fun (n, v) -> Rtl.Eval.set_input st n v) alist;
        let row = List.map (Rtl.Eval.peek st) spec.watch in
        check_done ();
        Rtl.Eval.step st;
        row)
      spec.stimulus
  in
  (* Hang budget: keep clocking with inputs held at their final values, up
     to [hang_factor] times the stimulus length, watching for [done]. *)
  let base = List.length spec.stimulus in
  if extend && Option.is_some spec.done_signal && not !done_seen then begin
    let budget = max 0 ((spec.hang_factor - 1) * base) in
    (try
       for cycle = base to base + budget - 1 do
         inject cycle;
         check_done ();
         if not !done_seen then Rtl.Eval.step st
       done
     with _ -> ())
  end;
  (samples, !done_seen)

let golden spec =
  let samples, done_seen = run_traced spec Site.No_fault ~extend:false in
  { samples; done_seen }

let compare_samples spec ~golden ~faulty =
  let rec rows cycle gs fs =
    match (gs, fs) with
    | [], [] -> Masked
    | grow :: gs, frow :: fs ->
      let rec cells ws gvs fvs =
        match (ws, gvs, fvs) with
        | [], [], [] -> None
        | w :: ws, gv :: gvs, fv :: fvs ->
          if Bitvec.equal gv fv then cells ws gvs fvs else Some w
        | _ -> assert false
      in
      (match cells spec.watch grow frow with
       | Some signal -> Mismatch { cycle; signal }
       | None -> rows (cycle + 1) gs fs)
    | _ -> assert false
  in
  rows 0 golden faulty

let run_site spec (g : golden) site =
  match run_traced spec site ~extend:true with
  | exception e -> Hang ("simulation raised: " ^ Printexc.to_string e)
  | faulty, done_seen ->
    if Option.is_some spec.done_signal && g.done_seen && not done_seen then
      Hang
        (Printf.sprintf "%s never asserted within %d cycles"
           (Option.get spec.done_signal)
           (spec.hang_factor * List.length spec.stimulus))
    else compare_samples spec ~golden:g.samples ~faulty

let trace_site spec site = fst (run_traced spec site ~extend:false)

let vcd_site spec site =
  let signals =
    List.map
      (fun w ->
        match Rtl.Vcd.signal_width spec.design w with
        | Some width -> (w, width)
        | None -> invalid_arg ("Fault.Sim.vcd_site: unknown signal " ^ w))
      spec.watch
  in
  Rtl.Vcd.of_samples ~name:spec.design.Rtl.Design.name ~signals
    (trace_site spec site)

(* ----------------------------------------------------- netlist (AIG) sim *)

type aig_spec = { aig : Aig.t; cycles : int; seed : int }

type aig_golden = (string * bool) list array

let aig_stimulus spec =
  (* One row of PI values per cycle, deterministic in [seed] and generated
     identically for golden and faulty runs. *)
  let rng = Workload.Rng.make spec.seed in
  let num_pis = Aig.num_pis spec.aig in
  let stim = Array.make spec.cycles [||] in
  for c = 0 to spec.cycles - 1 do
    stim.(c) <- Array.init num_pis (fun _ -> true) ;
    for i = 0 to num_pis - 1 do
      stim.(c).(i) <- Workload.Rng.bool rng
    done
  done;
  stim

(* Register a stuck-at force for one lane of a packed pass. RTL-state
   sites cannot be expressed as a netlist force and raise. *)
let add_site_force s lane site =
  match site with
  | Site.Stuck_at { node; value } ->
    if value then Aig.Compiled.add_force s ~node ~set:(1 lsl lane) ~clear:0
    else Aig.Compiled.add_force s ~node ~set:0 ~clear:(1 lsl lane)
  | Site.No_fault -> ()
  | Site.Table_bit _ | Site.Reg_bit _ ->
    invalid_arg "Fault.Sim: RTL-state faults simulate on the RTL (run_site)"

let aig_run spec ~force =
  let c = Aig.Compiled.compile spec.aig in
  let s = Aig.Compiled.sim c in
  (match force with
   | Some (node, value) ->
     if value then
       Aig.Compiled.add_force s ~node ~set:Aig.Compiled.all_lanes ~clear:0
     else Aig.Compiled.add_force s ~node ~set:0 ~clear:Aig.Compiled.all_lanes
   | None -> ());
  let stim = aig_stimulus spec in
  let npis = Aig.Compiled.num_pis c in
  let npos = Aig.Compiled.num_pos c in
  let po_names = Array.init npos (Aig.Compiled.po_name c) in
  let out = Array.make spec.cycles [] in
  Aig.Compiled.with_metrics ~active_lanes:1 s (fun () ->
      for cycle = 0 to spec.cycles - 1 do
        let piv = stim.(cycle) in
        for i = 0 to npis - 1 do
          Aig.Compiled.set_pi s i (Aig.Compiled.replicate piv.(i))
        done;
        Aig.Compiled.step s;
        out.(cycle) <-
          List.init npos (fun k ->
              (po_names.(k), Aig.Compiled.po s k land 1 = 1))
      done);
  out

let aig_golden spec = aig_run spec ~force:None

let aig_run_site spec (g : aig_golden) site =
  let force =
    match site with
    | Site.Stuck_at { node; value } -> Some (node, value)
    | Site.No_fault -> None
    | Site.Table_bit _ | Site.Reg_bit _ ->
      invalid_arg "Fault.Sim: RTL-state faults simulate on the RTL (run_site)"
  in
  match aig_run spec ~force with
  | exception e -> Hang ("simulation raised: " ^ Printexc.to_string e)
  | faulty ->
    let rec rows cycle =
      if cycle >= spec.cycles then Masked
      else
        let rec cells gs fs =
          match (gs, fs) with
          | [], [] -> None
          | (name, gv) :: gs, (_, fv) :: fs ->
            if gv = (fv : bool) then cells gs fs else Some name
          | _ -> assert false
        in
        match cells g.(cycle) faulty.(cycle) with
        | Some signal -> Mismatch { cycle; signal }
        | None -> rows (cycle + 1)
    in
    rows 0

let rec take_chunk k acc = function
  | rest when k = 0 -> (List.rev acc, rest)
  | [] -> (List.rev acc, [])
  | x :: rest -> take_chunk (k - 1) (x :: acc) rest

let aig_run_sites_packed spec (g : aig_golden) sites =
  let scalar chunk =
    List.map (fun site -> (site, aig_run_site spec g site)) chunk
  in
  match Aig.Compiled.compile spec.aig with
  | exception _ ->
    (* Uncompilable netlist: the scalar path reports the same failure
       per site (as Hang), keeping classifications identical. *)
    scalar sites
  | c ->
    let stim = aig_stimulus spec in
    let npis = Aig.Compiled.num_pis c in
    let npos = Aig.Compiled.num_pos c in
    let po_names = Array.init npos (Aig.Compiled.po_name c) in
    (* Golden PO words, replicated across lanes once per call. *)
    let golden_words =
      Array.map
        (fun row ->
          Array.of_list
            (List.map (fun (_, v) -> Aig.Compiled.replicate v) row))
        g
    in
    let s = Aig.Compiled.sim c in
    (* One packed pass: lane [i] carries site [i] of the chunk via its
       force masks; every undecided lane is compared against the golden
       word after each cycle. Scan order (cycles outer, POs in
       declaration order inner, first divergence wins) matches
       [aig_run_site] exactly, so classifications are byte-identical. *)
    let run_chunk chunk =
      let site_arr = Array.of_list chunk in
      let nsites = Array.length site_arr in
      Aig.Compiled.clear_forces s;
      Aig.Compiled.reset s;
      Array.iteri (fun lane site -> add_site_force s lane site) site_arr;
      let outcomes = Array.make nsites Masked in
      let undecided =
        ref
          (if nsites >= Aig.Compiled.lanes then Aig.Compiled.all_lanes
           else (1 lsl nsites) - 1)
      in
      Aig.Compiled.with_metrics ~active_lanes:nsites s (fun () ->
          let cycle = ref 0 in
          while !undecided <> 0 && !cycle < spec.cycles do
            let piv = stim.(!cycle) in
            for i = 0 to npis - 1 do
              Aig.Compiled.set_pi s i (Aig.Compiled.replicate piv.(i))
            done;
            Aig.Compiled.step s;
            let gw = golden_words.(!cycle) in
            for k = 0 to npos - 1 do
              let diff =
                ref ((Aig.Compiled.po s k lxor gw.(k)) land !undecided)
              in
              while !diff <> 0 do
                let lane = Aig.Compiled.ctz !diff in
                outcomes.(lane) <-
                  Mismatch { cycle = !cycle; signal = po_names.(k) };
                undecided := !undecided land lnot (1 lsl lane);
                diff := !diff land (!diff - 1)
              done
            done;
            incr cycle
          done);
      List.mapi (fun lane site -> (site, outcomes.(lane))) chunk
    in
    let rec go acc = function
      | [] -> List.concat (List.rev acc)
      | rest ->
        let chunk, rest = take_chunk Aig.Compiled.lanes [] rest in
        let r =
          (* Any packed failure falls back to the scalar path for the
             whole chunk, which classifies (or raises) per site exactly
             as a non-packed campaign would. *)
          try run_chunk chunk with _ -> scalar chunk
        in
        go (r :: acc) rest
    in
    go [] sites
