module Span = Span
module Metrics = Metrics
module Trace = Trace

let set_enabled = Ctl.set_enabled

let enabled = Ctl.on

let now_us = Ctl.now_us

let reset () =
  Span.reset ();
  Metrics.reset ()
