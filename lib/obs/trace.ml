(* Chrome trace-event serialization (the chrome://tracing / Perfetto JSON
   format). Every completed span becomes one "X" (complete) event; domains
   render as separate threads of one process. *)

let json_of_value = function
  | Span.Int i -> Report.Json.Int i
  | Span.Float f -> Report.Json.Float f
  | Span.Str s -> Report.Json.String s
  | Span.Bool b -> Report.Json.Bool b

let event (f : Span.finished) =
  let open Report.Json in
  let base =
    [
      ("name", String f.name);
      ("cat", String "obs");
      ("ph", String "X");
      ("ts", Float f.start_us);
      ("dur", Float f.dur_us);
      ("pid", Int 1);
      ("tid", Int f.tid);
    ]
  in
  let args =
    match f.args with
    | [] -> []
    | args ->
      [ ("args", Obj (List.map (fun (k, v) -> (k, json_of_value v)) args)) ]
  in
  Obj (base @ args)

let to_json () =
  let open Report.Json in
  let events = List.map event (Span.completed ()) in
  let fields = [ ("traceEvents", List events) ] in
  let fields =
    match Span.dropped_count () with
    | 0 -> fields
    | d -> fields @ [ ("droppedSpans", Int d) ]
  in
  (* Extra top-level keys are legal in the object trace format (viewers
     ignore them); carrying the metrics snapshot makes one file enough to
     diagnose a run. *)
  Obj
    (fields
     @ [ ("metrics", Metrics.to_json ()); ("displayTimeUnit", String "ms") ])

(* Atomic publish: temp file in the destination directory, then rename, so
   a crash mid-write never leaves a torn trace behind. *)
let write path =
  let doc = to_json () in
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".trace" ".tmp" in
  (try
     Out_channel.with_open_text tmp (fun oc -> Report.Json.to_channel oc doc);
     Sys.rename tmp path
   with Sys_error _ as e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let install_at_exit path = at_exit (fun () -> try write path with Sys_error _ -> ())
