(** Process-wide observability switch and time anchor (internal). *)

val on : unit -> bool
(** True when observability is enabled; checked first by every record
    operation so the disabled path costs one atomic load. *)

val set_enabled : bool -> unit

val now_us : unit -> float
(** Microseconds since the process-wide anchor (library load time). *)
