(** Chrome trace-event output for completed spans.

    Serializes every {!Span.finished} as a complete ("X") event in the
    [chrome://tracing] / Perfetto JSON format: timestamps and durations in
    microseconds, one thread lane per OCaml domain. Load the file with
    [chrome://tracing] or [ui.perfetto.dev]. *)

val to_json : unit -> Report.Json.t
(** [{"traceEvents": [...], "metrics": {...}, "displayTimeUnit": "ms"}]:
    spans plus the current {!Metrics} snapshot (viewers ignore the extra
    key); a [droppedSpans] count appears when the span cap truncated the
    trace. *)

val write : string -> unit
(** Atomic write (temp file + rename in the destination directory).
    @raise Sys_error when the destination is not writable. *)

val install_at_exit : string -> unit
(** Register an [at_exit] hook writing the trace — survives [exit 1] paths
    such as failed sweeps. Write failures at exit are silently dropped. *)
