(* Process-wide observability switch and time anchor.

   Off by default: every record operation in Span/Metrics checks [on ()]
   first and returns immediately, so uninstrumented runs pay one atomic
   load per call site and allocate nothing. The anchor [t0] is captured at
   module initialization; all span timestamps are reported relative to it
   (Chrome's trace viewer expects small microsecond offsets, not epochs). *)

let enabled = Atomic.make false

let on () = Atomic.get enabled

let set_enabled b = Atomic.set enabled b

let t0 = Unix.gettimeofday ()

let now_us () = (Unix.gettimeofday () -. t0) *. 1e6
