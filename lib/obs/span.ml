type value = Int of int | Float of float | Str of string | Bool of bool

type finished = {
  name : string;
  start_us : float;
  dur_us : float;
  depth : int;
  tid : int;
  args : (string * value) list;
}

(* An open span lives on its domain's stack until the thunk returns. *)
type open_span = {
  o_name : string;
  o_start : float;
  o_depth : int;
  mutable o_args : (string * value) list;
}

(* Each domain keeps its own stack, so spans opened by pool workers nest
   within that worker's spans only — no cross-domain locking on the hot
   open/close path. Completed spans from every domain funnel into one
   mutex-protected list. *)
let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let finished_mutex = Mutex.create ()

let finished : finished list ref = ref []

let count = ref 0

(* Spans are a diagnostic aid; an unbounded accumulator must not turn a
   long campaign into an OOM. Past the cap new spans are dropped (counted
   nowhere — the trace is truncated, which the emit notes via [dropped]). *)
let cap = 1_000_000

let dropped = ref 0

let record f =
  Mutex.lock finished_mutex;
  if !count >= cap then incr dropped
  else begin
    finished := f :: !finished;
    incr count
  end;
  Mutex.unlock finished_mutex

let with_span ?(args = []) name f =
  if not (Ctl.on ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let sp =
      {
        o_name = name;
        o_start = Ctl.now_us ();
        o_depth = List.length !stack;
        (* Kept newest-first; reversed once at close. *)
        o_args = List.rev args;
      }
    in
    stack := sp :: !stack;
    let close () =
      (match !stack with
       | top :: rest when top == sp -> stack := rest
       | _ ->
         (* A child span escaped its parent's dynamic extent; drop down to
            (and including) this span so the stack stays consistent. *)
         let rec pop = function
           | top :: rest when top != sp -> pop rest
           | _ :: rest -> rest
           | [] -> []
         in
         stack := pop !stack);
      record
        {
          name = sp.o_name;
          start_us = sp.o_start;
          dur_us = Ctl.now_us () -. sp.o_start;
          depth = sp.o_depth;
          tid = (Domain.self () :> int);
          args = List.rev sp.o_args;
        }
    in
    Fun.protect ~finally:close f
  end

let add_args args =
  if Ctl.on () then begin
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | sp :: _ -> sp.o_args <- List.rev_append args sp.o_args
  end

let completed () =
  Mutex.lock finished_mutex;
  let spans = List.rev !finished in
  Mutex.unlock finished_mutex;
  spans

let dropped_count () =
  Mutex.lock finished_mutex;
  let d = !dropped in
  Mutex.unlock finished_mutex;
  d

let reset () =
  Mutex.lock finished_mutex;
  finished := [];
  count := 0;
  dropped := 0;
  Mutex.unlock finished_mutex
