(* Process-wide metrics registry.

   Counters are [Atomic.t int] (lock-free, safe from any domain); gauges
   and histograms share the registry mutex per update — they are orders of
   magnitude rarer than counter bumps. Registration is get-or-create by
   name, so instrumented modules can hold a handle created at module
   initialization and [reset] zeroes values in place without invalidating
   those handles. *)

type counter = int Atomic.t

type gauge = { mutable g_value : float; mutable g_set : bool }

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric = Counter of counter | Gauge of gauge | Hist of hist

let mutex = Mutex.create ()

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let get_or_create name make cast describe =
  Mutex.lock mutex;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
      let m = make () in
      Hashtbl.add registry name m;
      m
  in
  Mutex.unlock mutex;
  match cast m with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %s is already registered as a %s" name
         describe)

let counter name =
  get_or_create name
    (fun () -> Counter (Atomic.make 0))
    (function Counter c -> Some c | _ -> None)
    "non-counter"

let gauge name =
  get_or_create name
    (fun () -> Gauge { g_value = 0.0; g_set = false })
    (function Gauge g -> Some g | _ -> None)
    "non-gauge"

let histogram name =
  get_or_create name
    (fun () -> Hist { h_count = 0; h_sum = 0.0; h_min = 0.0; h_max = 0.0 })
    (function Hist h -> Some h | _ -> None)
    "non-histogram"

let incr ?(by = 1) c = if Ctl.on () then ignore (Atomic.fetch_and_add c by)

let counter_value c = Atomic.get c

let set g v =
  if Ctl.on () then begin
    Mutex.lock mutex;
    g.g_value <- v;
    g.g_set <- true;
    Mutex.unlock mutex
  end

let set_max g v =
  if Ctl.on () then begin
    Mutex.lock mutex;
    if (not g.g_set) || v > g.g_value then g.g_value <- v;
    g.g_set <- true;
    Mutex.unlock mutex
  end

let observe h v =
  if Ctl.on () then begin
    Mutex.lock mutex;
    if h.h_count = 0 then begin
      h.h_min <- v;
      h.h_max <- v
    end
    else begin
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
    end;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    Mutex.unlock mutex
  end

type snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Hist_v of { count : int; sum : float; min_v : float; max_v : float }

let snapshot () =
  Mutex.lock mutex;
  let entries =
    Hashtbl.fold
      (fun name m acc ->
        let s =
          match m with
          | Counter c -> Counter_v (Atomic.get c)
          | Gauge g -> Gauge_v g.g_value
          | Hist h ->
            Hist_v
              { count = h.h_count; sum = h.h_sum; min_v = h.h_min;
                max_v = h.h_max }
        in
        (name, s) :: acc)
      registry []
  in
  Mutex.unlock mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let reset () =
  Mutex.lock mutex;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c 0
      | Gauge g ->
        g.g_value <- 0.0;
        g.g_set <- false
      | Hist h ->
        h.h_count <- 0;
        h.h_sum <- 0.0;
        h.h_min <- 0.0;
        h.h_max <- 0.0)
    registry;
  Mutex.unlock mutex

(* Rendering: zero-valued metrics are kept — a counter stuck at 0 (e.g.
   cache.quarantined) is information, and a fixed row set keeps diffs of
   two runs alignable. *)

let fmt_f v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let to_table () =
  let rows =
    List.map
      (fun (name, s) ->
        match s with
        | Counter_v v -> [ name; "counter"; string_of_int v; ""; ""; "" ]
        | Gauge_v v -> [ name; "gauge"; fmt_f v; ""; ""; "" ]
        | Hist_v { count; sum; min_v; max_v } ->
          let mean = if count = 0 then 0.0 else sum /. float_of_int count in
          [ name; "hist"; string_of_int count; fmt_f mean; fmt_f min_v;
            fmt_f max_v ])
      (snapshot ())
  in
  Report.Table.render
    ~align:
      [ Report.Table.Left; Report.Table.Left; Report.Table.Right;
        Report.Table.Right; Report.Table.Right; Report.Table.Right ]
    ~header:[ "metric"; "kind"; "count/value"; "mean"; "min"; "max" ]
    rows

let to_json () =
  let open Report.Json in
  Obj
    (List.map
       (fun (name, s) ->
         let v =
           match s with
           | Counter_v v ->
             Obj [ ("kind", String "counter"); ("value", Int v) ]
           | Gauge_v v -> Obj [ ("kind", String "gauge"); ("value", Float v) ]
           | Hist_v { count; sum; min_v; max_v } ->
             Obj
               [ ("kind", String "histogram"); ("count", Int count);
                 ("sum", Float sum); ("min", Float min_v);
                 ("max", Float max_v) ]
         in
         (name, v))
       (snapshot ()))
