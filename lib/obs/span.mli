(** Nestable timed spans with structured attributes.

    A span covers the dynamic extent of a thunk: [with_span name f] opens
    the span, runs [f], and records the completed span (wall-clock start
    and duration, nesting depth, owning domain, attributes) even when [f]
    raises. Spans nest per domain — each OCaml 5 domain keeps its own open
    stack — so pool workers trace independently and the combined timeline
    renders one lane per domain in Chrome's [chrome://tracing] viewer (see
    {!Trace}).

    When observability is disabled (the default, see {!Obs.set_enabled}),
    [with_span] is a tail call to its thunk and records nothing. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type finished = {
  name : string;
  start_us : float;  (** µs since the process anchor *)
  dur_us : float;
  depth : int;       (** nesting depth within the owning domain, 0 = root *)
  tid : int;         (** owning domain id *)
  args : (string * value) list;
}

val with_span : ?args:(string * value) list -> string -> (unit -> 'a) -> 'a

val add_args : (string * value) list -> unit
(** Attach attributes to the innermost open span of the calling domain
    (useful when a value is only known mid-span). No-op with no open span
    or with observability disabled. *)

val completed : unit -> finished list
(** All completed spans, in completion order. *)

val dropped_count : unit -> int
(** Spans discarded after the in-memory cap (1M) was reached. *)

val reset : unit -> unit
(** Forget completed spans (open spans are unaffected). *)
