(** Pass-level observability: tracing spans + process metrics.

    One switch ({!set_enabled}) turns the whole subsystem on; while off
    (the default) every record operation returns after a single atomic
    load, so instrumented hot paths cost nothing measurable and programs
    behave identically — instrumentation may only write to stderr or to
    explicitly requested files, never stdout.

    {!Span} times nested regions (synthesis passes, campaigns), {!Metrics}
    counts process-wide events (cache hits, queue depths, simulated
    cycles), {!Trace} serializes completed spans to Chrome trace JSON.
    All three are safe to use from any OCaml 5 domain. *)

module Span = Span
module Metrics = Metrics
module Trace = Trace

val set_enabled : bool -> unit

val enabled : unit -> bool

val now_us : unit -> float
(** Microseconds since the process-wide anchor — the span clock, exposed
    so instrumented code can derive rates without a Unix dependency. *)

val reset : unit -> unit
(** Clear completed spans and zero all metrics (registrations survive). *)
