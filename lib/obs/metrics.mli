(** Process-wide counters, gauges and histograms.

    Handles are get-or-create by name, so instrumented modules create them
    once at initialization and bump them from any domain: counters are
    atomic, gauges and histograms take the registry mutex per update. All
    record operations are no-ops while observability is disabled (see
    {!Obs.set_enabled}); {!reset} zeroes values in place without
    invalidating existing handles.

    Naming scheme (see DESIGN.md §10): dot-separated
    [<subsystem>.<object>.<quantity>], with seconds suffixed [_s] —
    e.g. [engine.pool.wait_s], [synth.flow.collapse.nodes_removed]. *)

type counter
type gauge
type hist

val counter : string -> counter
(** @raise Invalid_argument if the name is registered as another kind. *)

val gauge : string -> gauge
val histogram : string -> hist

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Keep the maximum of the recorded values (high-water mark). *)

val observe : hist -> float -> unit

type snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Hist_v of { count : int; sum : float; min_v : float; max_v : float }

val snapshot : unit -> (string * snapshot) list
(** All registered metrics, sorted by name. *)

val reset : unit -> unit

val to_table : unit -> string
(** Fixed-width table of the snapshot ({!Report.Table} format). *)

val to_json : unit -> Report.Json.t
(** Object keyed by metric name; each value carries its kind. *)
