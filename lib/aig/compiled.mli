(** Bit-parallel compiled AIG simulation kernel.

    {!compile} translates a {!Graph.t} once into a flat, topologically
    ordered int-array netlist: the And schedule (fanin literals as plain
    ints), latch next/init, and PI/PO index maps are all resolved at
    compile time, so the per-cycle evaluation path touches nothing but
    int arrays — no [Hashtbl], no lists, no closures.

    Evaluation is 64-way bit-parallel in spirit and [Sys.int_size]-way in
    fact (63 independent pattern lanes per OCaml [int] word on 64-bit
    hosts): bit [k] of every node word is the value of that node under
    pattern lane [k]. One {!step} therefore simulates {!lanes} independent
    stimulus vectors for the cost of one scalar pass of word operations.

    Fault-campaign support: {!add_force} attaches per-lane set/clear masks
    to a node; during evaluation the node's computed word [v] becomes
    [(v lor set) land (lnot clear)], so lane [i] can force node [n_i]
    stuck-at-1 (or 0) while every other lane sees the fault-free value —
    64 fault sites per packed pass. The unforced evaluation loop carries
    no masking overhead.

    The kernel is deterministic and allocation-free per cycle; separate
    {!sim} instances share the compiled netlist and may run concurrently
    on different domains. *)

type t
(** A compiled netlist. Immutable; cheap to share across simulators. *)

val lanes : int
(** Pattern lanes per word = [Sys.int_size] (63 on 64-bit hosts). *)

val all_lanes : int
(** Word with every lane bit set ([-1]). *)

val replicate : bool -> int
(** [replicate b] — [b] broadcast to every lane. *)

val ctz : int -> int
(** Index of the least-significant set bit — recovers the lowest
    mismatching lane from an XOR word. Undefined on [0]. *)

val compile : Graph.t -> t
(** One-shot compilation. Every latch must have its next-state set
    ({!Graph.set_next}); raises [Invalid_argument] otherwise. *)

val source : t -> Graph.t

val num_pis : t -> int
val num_latches : t -> int
val num_pos : t -> int
val num_ands : t -> int

val pi_index : t -> string -> int option
(** Slot of a primary input by name, in {!Graph.pis} order. *)

val pi_name : t -> int -> string
val po_name : t -> int -> string
(** PO slot [k] corresponds to the [k]-th entry of {!Graph.pos}. *)

(** {1 Packed sequential simulation} *)

type sim
(** Mutable simulator state: packed node values, latch words, PO words
    and force masks. One sim per concurrent simulation stream. *)

val sim : t -> sim
(** Fresh simulator, already reset (latches at their init words). *)

val reset : sim -> unit
(** Latches back to init (each init bit replicated across lanes). Force
    masks and pending PI words are left untouched. *)

val add_force : sim -> node:int -> set:int -> clear:int -> unit
(** OR the given lane masks into node's force words: lanes in [set] read
    1, lanes in [clear] read 0, other lanes see the computed value.
    Multiple calls accumulate (so one pass can force 63 distinct sites). *)

val clear_forces : sim -> unit

val set_pi : sim -> int -> int -> unit
(** [set_pi s slot word] — packed stimulus for PI [slot] for the next
    {!step}. Values persist across steps until overwritten. *)

val step : sim -> unit
(** One clock edge: evaluate the And schedule over the current PI words
    and latch state, capture packed PO words, then advance every latch to
    its next-state word. *)

val po : sim -> int -> int
(** Packed word of PO slot [k] as of the last {!step}. *)

val latch_word : sim -> int -> int
(** Current state word of latch slot [j] (post-{!step}). *)

val node_value : sim -> int -> int
(** Packed value of an arbitrary node as of the last {!step} — the probe
    the signature pass reads. *)

val lit_word : sim -> Graph.lit -> int

val steps : sim -> int
(** Cumulative {!step} count (for metrics). *)

(** {1 Observability} *)

val with_metrics : ?active_lanes:int -> sim -> (unit -> 'a) -> 'a
(** Run a simulation loop under an [aig.sim] {!Obs.Span}, then account the
    steps it performed to the kernel metrics: [aig.sim.patterns] (lanes x
    cycles simulated), [aig.sim.words_evaluated] (And-gate words), and the
    [aig.sim.ns_per_pattern_cycle] gauge. [active_lanes] (default
    {!lanes}) scales the pattern count when a pass uses fewer lanes. Free
    when observability is disabled. *)
