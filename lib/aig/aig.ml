(* The library's face: the graph API at the top level (so existing
   [Aig.and_]/[Aig.pis] call sites are untouched) plus the compiled
   bit-parallel simulation kernel as [Aig.Compiled]. *)

include Graph
module Compiled = Compiled
