type lit = int

type kind = Const | Pi | Latch | And

type latch_record = {
  lname : string;
  init : bool;
  reset : Rtl.Design.reset_kind;
  is_config : bool;
  mutable next : lit option;
}

type t = {
  mutable kinds : kind array;
  mutable fan0 : lit array;
  mutable fan1 : lit array;
  mutable names : string array;  (* PI names; "" otherwise *)
  mutable latch_recs : latch_record option array;
  mutable n : int;
  strash : (int * int, int) Hashtbl.t;
  mutable pi_list : int list;      (* reversed *)
  mutable latch_list : int list;   (* reversed *)
  mutable po_list : (string * lit) list;  (* reversed *)
  by_pi_name : (string, int) Hashtbl.t;
  by_latch_name : (string, int) Hashtbl.t;
  (* Counts tracked incrementally and forward views memoized: these are
     read inside per-cycle simulation loops, where List.length/List.rev
     per call would dominate. Memos are invalidated on insertion. *)
  mutable n_pis : int;
  mutable n_latches : int;
  mutable n_pos : int;
  mutable n_ands : int;
  mutable pis_memo : int list option;
  mutable latches_memo : int list option;
  mutable pos_memo : (string * lit) list option;
}

let false_ : lit = 0
let true_ : lit = 1
let not_ l = l lxor 1
let is_complemented l = l land 1 = 1
let node_of_lit l = l lsr 1
let lit_of_node n c = (n lsl 1) lor (if c then 1 else 0)
let lit_of_int i = i

let create () =
  let cap = 64 in
  {
    kinds = Array.make cap Const;
    fan0 = Array.make cap 0;
    fan1 = Array.make cap 0;
    names = Array.make cap "";
    latch_recs = Array.make cap None;
    n = 1;  (* node 0 is the constant *)
    strash = Hashtbl.create 1024;
    pi_list = [];
    latch_list = [];
    po_list = [];
    by_pi_name = Hashtbl.create 64;
    by_latch_name = Hashtbl.create 64;
    n_pis = 0;
    n_latches = 0;
    n_pos = 0;
    n_ands = 0;
    pis_memo = None;
    latches_memo = None;
    pos_memo = None;
  }

let grow t =
  let cap = Array.length t.kinds in
  if t.n >= cap then begin
    let cap' = cap * 2 in
    let extend a fill = Array.append a (Array.make cap fill) in
    t.kinds <- extend t.kinds Const;
    t.fan0 <- extend t.fan0 0;
    t.fan1 <- extend t.fan1 0;
    t.names <- extend t.names "";
    t.latch_recs <- extend t.latch_recs None;
    ignore cap'
  end

let new_node t k =
  grow t;
  let id = t.n in
  t.kinds.(id) <- k;
  t.n <- t.n + 1;
  id

let pi t name =
  let id = new_node t Pi in
  t.names.(id) <- name;
  t.pi_list <- id :: t.pi_list;
  t.n_pis <- t.n_pis + 1;
  t.pis_memo <- None;
  if Hashtbl.mem t.by_pi_name name then
    invalid_arg ("Aig.pi: duplicate input name " ^ name);
  Hashtbl.add t.by_pi_name name id;
  lit_of_node id false

let latch t name ~init ~reset ~is_config =
  let id = new_node t Latch in
  t.latch_recs.(id) <-
    Some { lname = name; init; reset; is_config; next = None };
  t.latch_list <- id :: t.latch_list;
  t.n_latches <- t.n_latches + 1;
  t.latches_memo <- None;
  if Hashtbl.mem t.by_latch_name name then
    invalid_arg ("Aig.latch: duplicate latch name " ^ name);
  Hashtbl.add t.by_latch_name name id;
  lit_of_node id false

let set_next t q d =
  if is_complemented q then invalid_arg "Aig.set_next: complemented latch literal";
  let id = node_of_lit q in
  match t.latch_recs.(id) with
  | None -> invalid_arg "Aig.set_next: not a latch"
  | Some r -> r.next <- Some d

let and_ t a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = false_ then false_
  else if a = true_ then b
  else if a = b then a
  else if a = not_ b then false_
  else begin
    match Hashtbl.find_opt t.strash (a, b) with
    | Some id -> lit_of_node id false
    | None ->
      let id = new_node t And in
      t.fan0.(id) <- a;
      t.fan1.(id) <- b;
      t.n_ands <- t.n_ands + 1;
      Hashtbl.add t.strash (a, b) id;
      lit_of_node id false
  end

let or_ t a b = not_ (and_ t (not_ a) (not_ b))

let xor_ t a b =
  (* a ^ b = ~(~(a & ~b) & ~(~a & b)) *)
  or_ t (and_ t a (not_ b)) (and_ t (not_ a) b)

let mux_ t sel a b = or_ t (and_ t sel a) (and_ t (not_ sel) b)

let and_list t ls =
  (* Balanced reduction keeps levels logarithmic. *)
  let rec reduce = function
    | [] -> true_
    | [ x ] -> x
    | xs ->
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | x :: y :: rest -> and_ t x y :: pair rest
      in
      reduce (pair xs)
  in
  reduce ls

let or_list t ls = not_ (and_list t (List.map not_ ls))

let po t name l =
  t.po_list <- (name, l) :: t.po_list;
  t.n_pos <- t.n_pos + 1;
  t.pos_memo <- None

let kind t id =
  if id < 0 || id >= t.n then invalid_arg "Aig.kind: bad node";
  t.kinds.(id)

let num_nodes t = t.n
let num_ands t = t.n_ands
let num_pis t = t.n_pis
let num_pos t = t.n_pos
let num_latches t = t.n_latches

let fanins t id =
  if kind t id <> And then invalid_arg "Aig.fanins: not an And node";
  (t.fan0.(id), t.fan1.(id))

let pi_name t id =
  if kind t id <> Pi then invalid_arg "Aig.pi_name: not a PI";
  t.names.(id)

let latch_record t id =
  match t.latch_recs.(id) with
  | Some r -> r
  | None -> invalid_arg "Aig: not a latch"

let latch_info t id =
  let r = latch_record t id in
  (r.lname, r.init, r.reset, r.is_config)

let latch_next t id =
  match (latch_record t id).next with
  | Some d -> d
  | None -> invalid_arg "Aig.latch_next: next-state never set"

let pis t =
  match t.pis_memo with
  | Some l -> l
  | None ->
    let l = List.rev t.pi_list in
    t.pis_memo <- Some l;
    l

let latches t =
  match t.latches_memo with
  | Some l -> l
  | None ->
    let l = List.rev t.latch_list in
    t.latches_memo <- Some l;
    l

let pos t =
  match t.pos_memo with
  | Some l -> l
  | None ->
    let l = List.rev t.po_list in
    t.pos_memo <- Some l;
    l

let find_pi t name = Hashtbl.find_opt t.by_pi_name name
let find_latch t name = Hashtbl.find_opt t.by_latch_name name

let eval_all t ~pi ~latch =
  let values = Array.make t.n false in
  for id = 1 to t.n - 1 do
    match t.kinds.(id) with
    | Const -> ()
    | Pi -> values.(id) <- pi id
    | Latch -> values.(id) <- latch id
    | And ->
      let v l =
        let x = values.(node_of_lit l) in
        if is_complemented l then not x else x
      in
      values.(id) <- v t.fan0.(id) && v t.fan1.(id)
  done;
  fun l ->
    let x = values.(node_of_lit l) in
    if is_complemented l then not x else x

let eval t ~pi ~latch l = eval_all t ~pi ~latch l

let cone t roots =
  let visited = Hashtbl.create 64 in
  let leaves = ref [] in
  let internal = ref [] in
  let rec visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      match t.kinds.(id) with
      | Const -> ()
      | Pi | Latch -> leaves := id :: !leaves
      | And ->
        visit (node_of_lit t.fan0.(id));
        visit (node_of_lit t.fan1.(id));
        internal := id :: !internal
    end
  in
  List.iter (fun l -> visit (node_of_lit l)) roots;
  (List.rev !leaves, List.rev !internal)

let levels t =
  let lv = Array.make t.n 0 in
  for id = 1 to t.n - 1 do
    match t.kinds.(id) with
    | Const | Pi | Latch -> lv.(id) <- 0
    | And ->
      lv.(id) <-
        1 + max lv.(node_of_lit t.fan0.(id)) lv.(node_of_lit t.fan1.(id))
  done;
  fun id -> lv.(id)

let fanout_counts t =
  let fo = Array.make t.n 0 in
  let bump l = fo.(node_of_lit l) <- fo.(node_of_lit l) + 1 in
  for id = 1 to t.n - 1 do
    if t.kinds.(id) = And then begin
      bump t.fan0.(id);
      bump t.fan1.(id)
    end
  done;
  List.iter (fun id ->
      match (latch_record t id).next with
      | Some d -> bump d
      | None -> ())
    (latches t);
  List.iter (fun (_, l) -> bump l) (pos t);
  fo

let stats t =
  let lv = levels t in
  let depth =
    List.fold_left
      (fun acc (_, l) -> max acc (lv (node_of_lit l)))
      0 (pos t)
  in
  let depth =
    List.fold_left
      (fun acc id ->
        match (latch_record t id).next with
        | Some d -> max acc (lv (node_of_lit d))
        | None -> acc)
      depth (latches t)
  in
  Printf.sprintf "aig: %d PIs, %d latches, %d ANDs, %d POs, depth %d"
    t.n_pis (num_latches t) (num_ands t) t.n_pos depth
