let lanes = Sys.int_size

let all_lanes = -1

let replicate b = if b then all_lanes else 0

let ctz w =
  if w = 0 then invalid_arg "Compiled.ctz: zero word";
  let n = ref 0 and w = ref w in
  if !w land 0xFFFFFFFF = 0 then begin n := !n + 32; w := !w lsr 32 end;
  if !w land 0xFFFF = 0 then begin n := !n + 16; w := !w lsr 16 end;
  if !w land 0xFF = 0 then begin n := !n + 8; w := !w lsr 8 end;
  if !w land 0xF = 0 then begin n := !n + 4; w := !w lsr 4 end;
  if !w land 0x3 = 0 then begin n := !n + 2; w := !w lsr 2 end;
  if !w land 0x1 = 0 then n := !n + 1;
  !n

type t = {
  graph : Graph.t;
  n : int;
  sched : int array;       (* And node ids, ascending = topological *)
  fan0 : int array;        (* fanin literals, indexed like [sched] *)
  fan1 : int array;
  pi_nodes : int array;
  pi_names : string array;
  pi_slot : (string, int) Hashtbl.t;
  latch_nodes : int array;
  latch_init : int array;  (* init bit replicated across lanes *)
  latch_next : int array;  (* next-state literals *)
  po_names : string array;
  po_lits : int array;
}

let compile g =
  let n = Graph.num_nodes g in
  let pi_nodes = Array.of_list (Graph.pis g) in
  let pi_names = Array.map (Graph.pi_name g) pi_nodes in
  let pi_slot = Hashtbl.create (Array.length pi_nodes) in
  Array.iteri (fun i name -> Hashtbl.replace pi_slot name i) pi_names;
  let latch_nodes = Array.of_list (Graph.latches g) in
  let latch_init =
    Array.map
      (fun id ->
        let _, init, _, _ = Graph.latch_info g id in
        replicate init)
      latch_nodes
  in
  let latch_next =
    Array.map (fun id -> (Graph.latch_next g id :> int)) latch_nodes
  in
  let pos = Array.of_list (Graph.pos g) in
  let po_names = Array.map fst pos in
  let po_lits = Array.map (fun (_, l) -> ((l : Graph.lit) :> int)) pos in
  let n_ands = Graph.num_ands g in
  let sched = Array.make (max n_ands 1) 0 in
  let fan0 = Array.make (max n_ands 1) 0 in
  let fan1 = Array.make (max n_ands 1) 0 in
  let k = ref 0 in
  for id = 1 to n - 1 do
    if Graph.kind g id = Graph.And then begin
      let f0, f1 = Graph.fanins g id in
      sched.(!k) <- id;
      fan0.(!k) <- (f0 :> int);
      fan1.(!k) <- (f1 :> int);
      incr k
    end
  done;
  assert (!k = n_ands);
  {
    graph = g;
    n;
    sched = Array.sub sched 0 n_ands;
    fan0 = Array.sub fan0 0 n_ands;
    fan1 = Array.sub fan1 0 n_ands;
    pi_nodes;
    pi_names;
    pi_slot;
    latch_nodes;
    latch_init;
    latch_next;
    po_names;
    po_lits;
  }

let source c = c.graph
let num_pis c = Array.length c.pi_nodes
let num_latches c = Array.length c.latch_nodes
let num_pos c = Array.length c.po_lits
let num_ands c = Array.length c.sched
let pi_index c name = Hashtbl.find_opt c.pi_slot name
let pi_name c i = c.pi_names.(i)
let po_name c k = c.po_names.(k)

type sim = {
  c : t;
  values : int array;      (* one packed word per node; node 0 = const 0 *)
  state : int array;       (* per latch slot *)
  next_buf : int array;
  po_words : int array;
  force_set : int array;   (* per node *)
  force_clear : int array;
  mutable forced : bool;
  mutable nsteps : int;
}

let reset s = Array.blit s.c.latch_init 0 s.state 0 (Array.length s.state)

let sim c =
  let s =
    {
      c;
      values = Array.make c.n 0;
      state = Array.make (Array.length c.latch_nodes) 0;
      next_buf = Array.make (Array.length c.latch_nodes) 0;
      po_words = Array.make (Array.length c.po_lits) 0;
      force_set = Array.make c.n 0;
      force_clear = Array.make c.n 0;
      forced = false;
      nsteps = 0;
    }
  in
  reset s;
  s

let add_force s ~node ~set ~clear =
  if node < 0 || node >= s.c.n then invalid_arg "Compiled.add_force: bad node";
  s.force_set.(node) <- s.force_set.(node) lor set;
  s.force_clear.(node) <- s.force_clear.(node) lor clear;
  s.forced <- true

let clear_forces s =
  if s.forced then begin
    Array.fill s.force_set 0 s.c.n 0;
    Array.fill s.force_clear 0 s.c.n 0;
    s.forced <- false
  end

let set_pi s slot w = s.values.(s.c.pi_nodes.(slot)) <- w

let[@inline] word values l =
  let w = Array.unsafe_get values (l lsr 1) in
  if l land 1 = 1 then lnot w else w

let step s =
  let c = s.c in
  let values = s.values in
  (* Load latch state words into their node slots. *)
  let nl = Array.length c.latch_nodes in
  for j = 0 to nl - 1 do
    values.(c.latch_nodes.(j)) <- s.state.(j)
  done;
  (* Evaluate the And schedule. The unforced loop is the hot path: two
     loads, two conditional complements, one AND, one store per node. *)
  let n_ands = Array.length c.sched in
  if not s.forced then
    for i = 0 to n_ands - 1 do
      let a = word values (Array.unsafe_get c.fan0 i) in
      let b = word values (Array.unsafe_get c.fan1 i) in
      Array.unsafe_set values (Array.unsafe_get c.sched i) (a land b)
    done
  else begin
    (* Forced variant: PI and latch loads honour the masks too, so a
       force on any node kind behaves uniformly. *)
    let apply id v =
      (v lor s.force_set.(id)) land lnot s.force_clear.(id)
    in
    for j = 0 to nl - 1 do
      let id = c.latch_nodes.(j) in
      values.(id) <- apply id values.(id)
    done;
    let np = Array.length c.pi_nodes in
    for i = 0 to np - 1 do
      let id = c.pi_nodes.(i) in
      values.(id) <- apply id values.(id)
    done;
    for i = 0 to n_ands - 1 do
      let id = Array.unsafe_get c.sched i in
      let a = word values (Array.unsafe_get c.fan0 i) in
      let b = word values (Array.unsafe_get c.fan1 i) in
      Array.unsafe_set values id (apply id (a land b))
    done
  end;
  (* Capture POs, then advance latches (via a buffer: a latch's next-state
     literal may read another latch's current value). *)
  for k = 0 to Array.length c.po_lits - 1 do
    s.po_words.(k) <- word values c.po_lits.(k)
  done;
  for j = 0 to nl - 1 do
    s.next_buf.(j) <- word values c.latch_next.(j)
  done;
  Array.blit s.next_buf 0 s.state 0 nl;
  s.nsteps <- s.nsteps + 1

let po s k = s.po_words.(k)
let latch_word s j = s.state.(j)
let node_value s id = s.values.(id)
let lit_word s l = word s.values ((l : Graph.lit) :> int)
let steps s = s.nsteps

let with_metrics ?(active_lanes = lanes) s f =
  if not (Obs.enabled ()) then f ()
  else
    Obs.Span.with_span
      ~args:
        [
          ("ands", Obs.Span.Int (num_ands s.c));
          ("lanes", Obs.Span.Int active_lanes);
        ]
      "aig.sim"
    @@ fun () ->
    let t0 = Obs.now_us () in
    let steps0 = s.nsteps in
    Fun.protect f ~finally:(fun () ->
        let dt_us = Obs.now_us () -. t0 in
        let cycles = s.nsteps - steps0 in
        let patterns = cycles * active_lanes in
        Obs.Metrics.incr ~by:patterns (Obs.Metrics.counter "aig.sim.patterns");
        Obs.Metrics.incr
          ~by:(cycles * num_ands s.c)
          (Obs.Metrics.counter "aig.sim.words_evaluated");
        if patterns > 0 then
          Obs.Metrics.set
            (Obs.Metrics.gauge "aig.sim.ns_per_pattern_cycle")
            (dt_us *. 1e3 /. float_of_int patterns);
        Obs.Span.add_args [ ("cycles", Obs.Span.Int cycles) ])
