(** And-Inverter Graphs with structural hashing.

    The synthesis tool's bit-level netlist. Nodes are: the constant false
    (node 0), primary inputs, latches (sequential elements, with reset style
    and configuration-bit marking carried over from the RTL), and two-input
    AND gates. Edges are literals — a node index with an optional complement
    bit — so inversion is free.

    Structural hashing plus the local simplification rules
    [and(x, 0) = 0], [and(x, 1) = x], [and(x, x) = x], [and(x, ~x) = 0]
    make AIG construction perform the paper's *constant propagation and
    folding* on the fly: binding a configuration table to constants and
    re-lowering collapses its read logic with no further passes. *)

type t

type lit = private int
(** [2 * node + complement]. *)

val lit_of_int : int -> lit
(** Unsafe escape hatch for serialization; prefer the constructors. *)

val create : unit -> t

(** {1 Literals} *)

val false_ : lit
val true_ : lit
val not_ : lit -> lit
val is_complemented : lit -> bool
val node_of_lit : lit -> int
val lit_of_node : int -> bool -> lit
(** [lit_of_node n c] — literal for node [n], complemented if [c]. *)

(** {1 Construction} *)

val pi : t -> string -> lit
(** New primary input. *)

val latch :
  t -> string -> init:bool -> reset:Rtl.Design.reset_kind -> is_config:bool -> lit
(** New latch; its next-state function must be set with {!set_next} before
    the AIG is used sequentially. *)

val set_next : t -> lit -> lit -> unit
(** [set_next t q d] — [q] must be an uncomplemented latch literal. *)

val and_ : t -> lit -> lit -> lit
val or_ : t -> lit -> lit -> lit
val xor_ : t -> lit -> lit -> lit
val mux_ : t -> lit -> lit -> lit -> lit
(** [mux_ t sel a b] = if sel then a else b. *)

val and_list : t -> lit list -> lit
val or_list : t -> lit list -> lit

val po : t -> string -> lit -> unit
(** Declare a primary output. Multiple POs may share a name prefix; names
    are kept in declaration order. *)

(** {1 Observation} *)

type kind = Const | Pi | Latch | And

val kind : t -> int -> kind
val num_nodes : t -> int
val num_ands : t -> int
val num_pis : t -> int
val num_pos : t -> int
val num_latches : t -> int
(** Counts are tracked incrementally (O(1)); {!pis}/{!latches}/{!pos}
    below are memoized forward views — all safe inside per-cycle loops. *)

val fanins : t -> int -> lit * lit
(** @raise Invalid_argument unless the node is an [And]. *)

val pi_name : t -> int -> string
val latch_info : t -> int -> string * bool * Rtl.Design.reset_kind * bool
(** name, init, reset kind, is_config. *)

val latch_next : t -> int -> lit
(** @raise Invalid_argument if never set. *)

val pis : t -> int list
val latches : t -> int list
val pos : t -> (string * lit) list

val find_pi : t -> string -> int option
val find_latch : t -> string -> int option

(** {1 Evaluation} *)

val eval : t -> pi:(int -> bool) -> latch:(int -> bool) -> lit -> bool
(** Combinational evaluation of one literal given values for PI and latch
    nodes (memoized internally per call). *)

val eval_all : t -> pi:(int -> bool) -> latch:(int -> bool) -> (lit -> bool)
(** Evaluate the whole graph once; the returned function reads any literal
    in O(1). *)

(** {1 Structure} *)

val cone : t -> lit list -> int list * int list
(** [cone t roots] = (leaves, internal nodes in topological order): the
    transitive combinational fan-in, where leaves are PIs and latches. *)

val levels : t -> (int -> int)
(** Combinational level of each node (PIs/latches at level 0). *)

val fanout_counts : t -> int array
(** Number of combinational consumers of each node (latch next-state
    functions and POs count as consumers of their literal's node). *)

val stats : t -> string
