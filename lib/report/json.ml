type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then None
  else begin
    let s = Printf.sprintf "%.15g" f in
    Some (if float_of_string s = f then s else Printf.sprintf "%.17g" f)
  end

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    (match float_repr f with
     | Some s -> Buffer.add_string b s
     | None -> Buffer.add_string b "null")
  | String s -> escape b s
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        emit b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape b k;
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

let to_channel oc v =
  output_string oc (to_string v);
  output_char oc '\n'

(* ----------------------------------------------------------------- parse *)

exception Parse of string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let error fmt =
    Printf.ksprintf (fun msg -> raise (Parse (Printf.sprintf "at %d: %s" !pos msg))) fmt
  in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error "expected %C, found %C" c c'
    | None -> error "expected %C, found end of input" c
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else error "invalid literal"
  in
  let utf8_of_code b code =
    (* Only the BMP can appear in a \uXXXX escape (surrogate pairs are not
       recombined — each half encodes separately, matching the emitter's
       byte-preserving behaviour for control characters). *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
        (if !pos >= n then error "unterminated escape";
         let e = text.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
           if !pos + 4 > n then error "truncated \\u escape";
           let hex = String.sub text !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code -> utf8_of_code b code
            | None -> error "bad \\u escape %S" hex)
         | c -> error "bad escape \\%C" c);
        go ()
      | c when Char.code c < 0x20 -> error "raw control character in string"
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9') ->
        advance ();
        go ()
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
        is_float := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    let s = String.sub text start (!pos - start) in
    if !is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error "bad number %S" s
    else begin
      match int_of_string_opt s with
      | Some i -> Int i
      | None ->
        (match float_of_string_opt s with
         | Some f -> Float f (* out of int range *)
         | None -> error "bad number %S" s)
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            go ()
          | Some ']' -> advance ()
          | _ -> error "expected ',' or ']'"
        in
        go ();
        List (Stdlib.List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          (k, parse_value ())
        in
        let fields = ref [ field () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields := field () :: !fields;
            go ()
          | Some '}' -> advance ()
          | _ -> error "expected ',' or '}'"
        in
        go ();
        Obj (Stdlib.List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg
