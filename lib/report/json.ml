type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then None
  else begin
    let s = Printf.sprintf "%.15g" f in
    Some (if float_of_string s = f then s else Printf.sprintf "%.17g" f)
  end

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    (match float_repr f with
     | Some s -> Buffer.add_string b s
     | None -> Buffer.add_string b "null")
  | String s -> escape b s
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        emit b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape b k;
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

let to_channel oc v =
  output_string oc (to_string v);
  output_char oc '\n'
