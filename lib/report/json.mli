(** Minimal JSON emission for machine-readable benchmark output.

    Emission only — the harness writes results, nothing here reads them.
    Floats render with the shortest decimal form that round-trips
    ([%.15g], widened to [%.17g] when needed); NaN and infinities, which
    JSON cannot express, render as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line form. *)

val to_channel : out_channel -> t -> unit
(** [to_string] plus a trailing newline. *)
