(** Minimal JSON for machine-readable benchmark output.

    Floats render with the shortest decimal form that round-trips
    ([%.15g], widened to [%.17g] when needed); NaN and infinities, which
    JSON cannot express, render as [null]. {!of_string} is the inverse,
    added so tests (and downstream tools) can validate the harness's own
    emissions — trace files, [--json] dumps — without new dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line form. *)

val to_channel : out_channel -> t -> unit
(** [to_string] plus a trailing newline. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (standard JSON; numbers without [.]/[e] parse
    as [Int], others as [Float]). [Error] carries a position-annotated
    message. *)
