(** What the engine remembers about a finished synthesis job.

    Deliberately *not* the full {!Synth.Flow.result}: netlists are large and
    cheap to regenerate when actually needed, while sweeps only consume the
    mapped report and coarse AIG statistics. The summary is small enough to
    persist for every job ever run.

    [to_string]/[of_string] give a stable line-oriented text form whose
    floats are hexadecimal ([%h]), so a summary read back from disk is
    bit-identical to the one written — warm-cache runs reproduce cold-run
    figures exactly. *)

type t = {
  report : Synth.Map.report;
  aig_ands : int;     (** AND nodes of the optimized AIG *)
  aig_latches : int;  (** latches of the optimized AIG *)
  wall_s : float;     (** wall-clock seconds the compile took when it ran *)
}

val of_flow : wall_s:float -> Synth.Flow.result -> t

val area : t -> float
(** Total mapped area, µm². *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Inverse of [to_string]; [Error] describes the first malformed line. *)
