module Fingerprint = Fingerprint
module Summary = Summary
module Pool = Pool
module Cache = Cache
module Journal = Journal
module Batch = Batch

type job = {
  jname : string;
  design : Rtl.Design.t;
  options : Synth.Flow.options;
}

let job ?(options = Synth.Flow.default) design =
  { jname = design.Rtl.Design.name; design; options }

type outcome = (Summary.t, Pool.error) result

type stats = {
  submitted : int;
  executed : int;
  failed : int;
  retried : int;
  mem_hits : int;
  disk_hits : int;
  quarantined : int;
  wall_s : float;
  cpu_s : float;
}

type t = {
  lib : Cells.Library.t;
  jobs : int;
  timeout_s : float option;
  retries : int;
  backoff_s : float;
  cache : Cache.t option;
  mutable submitted : int;
  mutable executed : int;
  mutable failed : int;
  mutable retried : int;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable wall_s : float;
  mutable cpu_s : float;
}

let create ?(jobs = 1) ?cache_dir ?(no_cache = false) ?timeout_s
    ?(retries = 0) ?(backoff_s = 0.05) lib =
  let jobs = if jobs = 0 then Domain.recommended_domain_count () else jobs in
  if jobs < 1 then invalid_arg "Engine.create: jobs must be >= 0";
  if retries < 0 then invalid_arg "Engine.create: retries must be >= 0";
  let cache = if no_cache then None else Some (Cache.create ?dir:cache_dir ()) in
  { lib; jobs; timeout_s; retries; backoff_s; cache; submitted = 0;
    executed = 0; failed = 0; retried = 0; mem_hits = 0; disk_hits = 0;
    wall_s = 0.0; cpu_s = 0.0 }

let library t = t.lib

let now () = Unix.gettimeofday ()

(* Each batch entry resolves to a cached summary or to an index into the
   list of distinct jobs actually executed. *)
type plan = Cached of Summary.t | Computed of int

let run t jobs =
  let t0 = now () in
  t.submitted <- t.submitted + List.length jobs;
  let planned = Hashtbl.create 16 in
  let to_run = ref [] and n_run = ref 0 in
  let plan =
    List.map
      (fun j ->
        let key = Fingerprint.job ~lib:t.lib ~options:j.options j.design in
        match Hashtbl.find_opt planned key with
        | Some p ->
          (* Duplicate within the batch: share the cached entry or the
             single execution — either way it is a hit. *)
          t.mem_hits <- t.mem_hits + 1;
          p
        | None ->
          let p =
            match Option.bind t.cache (fun c -> Cache.find c key) with
            | Some (s, `Memory) ->
              t.mem_hits <- t.mem_hits + 1;
              Cached s
            | Some (s, `Disk) ->
              t.disk_hits <- t.disk_hits + 1;
              Cached s
            | None ->
              to_run := (key, j) :: !to_run;
              incr n_run;
              Computed (!n_run - 1)
          in
          Hashtbl.add planned key p;
          p)
      jobs
  in
  let distinct = Array.of_list (List.rev !to_run) in
  let compile (_key, j) =
    let jt0 = now () in
    let r = Synth.Flow.compile ~options:j.options t.lib j.design in
    Summary.of_flow ~wall_s:(now () -. jt0) r
  in
  let results =
    Pool.map ~jobs:t.jobs ?timeout_s:t.timeout_s compile
      (Array.to_list distinct)
    |> Array.of_list
  in
  (* Transient-failure absorption: re-run failed jobs up to [retries] times
     with exponential backoff. Compiles are deterministic, so this only
     helps against environmental failures (resource exhaustion, timeouts on
     a loaded machine) — which is exactly the point. *)
  let attempt = ref 0 in
  let has_failures () =
    Array.exists (function Error _ -> true | Ok _ -> false) results
  in
  while !attempt < t.retries && has_failures () do
    Unix.sleepf (t.backoff_s *. (2.0 ** float_of_int !attempt));
    let failed_idx = ref [] in
    Array.iteri
      (fun i -> function Error _ -> failed_idx := i :: !failed_idx | Ok _ -> ())
      results;
    let failed_idx = List.rev !failed_idx in
    t.retried <- t.retried + List.length failed_idx;
    let rerun =
      Pool.map ~jobs:t.jobs ?timeout_s:t.timeout_s compile
        (List.map (fun i -> distinct.(i)) failed_idx)
    in
    List.iter2 (fun i r -> results.(i) <- r) failed_idx rerun;
    incr attempt
  done;
  t.executed <- t.executed + Array.length results;
  Array.iteri
    (fun i result ->
      let key, _ = distinct.(i) in
      match result with
      | Ok s ->
        t.cpu_s <- t.cpu_s +. s.Summary.wall_s;
        Option.iter (fun c -> Cache.store c key s) t.cache
      | Error _ -> t.failed <- t.failed + 1)
    results;
  t.wall_s <- t.wall_s +. (now () -. t0);
  List.map
    (function Cached s -> Ok s | Computed i -> results.(i))
    plan

let run_one t j = List.hd (run t [ j ])

let report_exn t j =
  match run_one t j with
  | Ok s -> s.Summary.report
  | Error e ->
    failwith
      (Printf.sprintf "synthesis job %s failed: %s" j.jname
         (Pool.error_message e))

let stats t =
  let quarantined =
    match t.cache with
    | Some c -> (Cache.stats c).Cache.quarantined
    | None -> 0
  in
  { submitted = t.submitted; executed = t.executed; failed = t.failed;
    retried = t.retried; mem_hits = t.mem_hits; disk_hits = t.disk_hits;
    quarantined; wall_s = t.wall_s; cpu_s = t.cpu_s }

let reset_stats t =
  t.submitted <- 0;
  t.executed <- 0;
  t.failed <- 0;
  t.retried <- 0;
  t.mem_hits <- 0;
  t.disk_hits <- 0;
  t.wall_s <- 0.0;
  t.cpu_s <- 0.0

let stats_table (s : stats) =
  let f = Printf.sprintf "%.3f" in
  Report.Table.render
    ~align:[ Report.Table.Left; Report.Table.Right ]
    ~header:[ "engine"; "value" ]
    [
      [ "jobs submitted"; string_of_int s.submitted ];
      [ "cache hits (memory)"; string_of_int s.mem_hits ];
      [ "cache hits (disk)"; string_of_int s.disk_hits ];
      [ "cache entries quarantined"; string_of_int s.quarantined ];
      [ "jobs executed"; string_of_int s.executed ];
      [ "jobs failed"; string_of_int s.failed ];
      [ "jobs retried"; string_of_int s.retried ];
      [ "wall time (s)"; f s.wall_s ];
      [ "cpu time (s)"; f s.cpu_s ];
      [ "parallel speedup";
        (if s.wall_s > 0.0 then Printf.sprintf "%.2fx" (s.cpu_s /. s.wall_s)
         else "-") ];
    ]

let the_default = ref None

let set_default t = the_default := Some t

let default () =
  match !the_default with
  | Some t -> t
  | None ->
    let t = create ~jobs:1 Cells.Library.vt90 in
    set_default t;
    t
