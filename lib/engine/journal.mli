(** Append-only JSONL checkpoint journal.

    One record per line: [{"k":"<key>","v":"<payload>"}] for a completed
    item, [{"k":"<key>","e":"<message>"}] for one that settled in error.
    Writers flush after every record, so a killed campaign's journal is a
    valid prefix; a line truncated mid-write is skipped on load. Payload
    encoding/decoding belongs to the caller ({!Batch} takes a codec) —
    the journal stores opaque strings. *)

type entry = { key : string; value : (string, string) result }

type t
(** An open journal writer (append mode). *)

val open_append : string -> t
(** Open (creating if needed) for appending. *)

val append : t -> key:string -> value:(string, string) result -> unit
(** Write one record and flush.
    @raise Invalid_argument after {!close}. *)

val close : t -> unit
(** Idempotent. *)

val load : string -> entry list
(** All well-formed records, in file order; [[]] if the file does not
    exist. Malformed lines (e.g. a truncated tail from a mid-write kill)
    are skipped, not errors. *)
