(** Content-addressed result cache: an in-memory table, optionally backed by
    an on-disk directory.

    Disk entries are one file per key ([<dir>/<key>.summary], the
    {!Summary.to_string} form) written atomically: the bytes go to a unique
    temp file in the same directory which is then [rename]d into place, so
    concurrent processes sharing a cache directory see either nothing or a
    complete entry. Disk failures (unwritable directory, corrupt entry) are
    soft: the cache degrades to memory-only rather than failing the run.

    A corrupt entry is {e quarantined}: renamed to [<key>.corrupt] so it is
    not silently re-read (and missed) on every future lookup, and counted in
    {!stats}. The next store for that key repopulates it normally. *)

type t

val create : ?dir:string -> unit -> t
(** [dir], when given, is created (recursively) on first use and read
    through: a key missing in memory is looked up on disk, and stores are
    written through to disk. Raises [Invalid_argument] if [dir] exists but
    is not a directory. *)

type stats = {
  mem_hits : int;
  disk_hits : int;  (** found on disk (also counted once into memory) *)
  misses : int;
  stores : int;
  quarantined : int;  (** corrupt disk entries renamed to [<key>.corrupt] *)
}

val find : t -> string -> (Summary.t * [ `Memory | `Disk ]) option

val store : t -> string -> Summary.t -> unit

val stats : t -> stats
