(** Parallel synthesis job engine with content-addressed result caching.

    A {e job} is one [Synth.Flow.compile] of a design under a given option
    record and cell library. The engine:

    - fingerprints each job ({!Fingerprint}) and serves repeats from a
      result cache ({!Cache}) — in-memory always, on-disk when configured —
      so sweeps never recompute an identical (design, options, library)
      triple, within a run or across runs;
    - coalesces duplicate jobs inside one batch (each distinct key compiles
      once, every requester shares the result);
    - executes cache misses on a {!Pool} of worker domains with a bounded
      queue, per-job timeout, and exception isolation: a crashing or
      timed-out job yields an [Error] outcome for itself only.

    Determinism: [Synth.Flow.compile] is a pure function of the job inputs,
    so outcomes are independent of worker count, scheduling order, and
    cache temperature — [run] returns outcomes in request order, and a
    [-j 8] warm-cache run is bit-identical to a [-j 1] cold one. *)

module Fingerprint = Fingerprint
module Summary = Summary
module Pool = Pool
module Cache = Cache
module Journal = Journal
module Batch = Batch

type job = {
  jname : string;  (** label for error messages and reports *)
  design : Rtl.Design.t;
  options : Synth.Flow.options;
}

val job : ?options:Synth.Flow.options -> Rtl.Design.t -> job
(** Job named after the design; [options] defaults to {!Synth.Flow.default}. *)

type outcome = (Summary.t, Pool.error) result

type stats = {
  submitted : int;  (** jobs requested through [run]/[run_one] *)
  executed : int;   (** jobs that actually compiled *)
  failed : int;     (** executed jobs that settled in [Error] after retries *)
  retried : int;    (** re-executions triggered by the retry policy *)
  mem_hits : int;   (** served from memory, incl. batch coalescing *)
  disk_hits : int;  (** served from the on-disk cache *)
  quarantined : int; (** corrupt disk entries renamed aside ({!Cache}) *)
  wall_s : float;   (** wall-clock spent inside [run] *)
  cpu_s : float;    (** summed per-job compile time across workers *)
}

type t

val create :
  ?jobs:int ->
  ?cache_dir:string ->
  ?no_cache:bool ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  Cells.Library.t ->
  t
(** [jobs]: worker domains for cache-miss execution; [1] (default) compiles
    on the calling domain, [0] means [Domain.recommended_domain_count ()].
    [no_cache] disables result caching entirely ([cache_dir] is then
    ignored). [timeout_s] bounds each job from submission. [retries]
    (default 0) re-runs failed jobs that many extra times, sleeping
    [backoff_s * 2^wave] (default 0.05 s) before each wave — transient
    failures heal, deterministic ones still settle as [Error]. *)

val library : t -> Cells.Library.t

val run : t -> job list -> outcome list
(** Outcomes in request order. Never raises on job failure. *)

val run_one : t -> job -> outcome

val report_exn : t -> job -> Synth.Map.report
(** [run_one] unwrapped: raises [Failure] with the job name on [Error]. *)

val stats : t -> stats

val reset_stats : t -> unit
(** Zeroes the engine's counters (the cache contents are kept). *)

val stats_table : stats -> string
(** Two-column rendering via {!Report.Table}. *)

(** {2 Process-wide default engine}

    CLI front-ends configure one engine per process; library code
    ({!Exp_common} and friends) reaches it here. *)

val set_default : t -> unit

val default : unit -> t
(** The configured engine, or a lazily created sequential one with an
    in-memory cache over {!Cells.Library.vt90}. *)
