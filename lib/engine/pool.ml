type error =
  | Exn of { exn : string; backtrace : string }
  | Timeout of float
  | Cancelled

let error_message = function
  | Exn { exn; _ } -> exn
  | Timeout s -> Printf.sprintf "timed out after %.3fs" s
  | Cancelled -> "cancelled"

let now () = Unix.gettimeofday ()

(* Pool observability (no-ops while Obs is disabled): job counts, queue
   high-water mark, queueing delay vs execution time, and per-worker busy
   time (one observation per worker at pool shutdown). *)
let m_jobs = Obs.Metrics.counter "engine.pool.jobs"
let m_queue_depth = Obs.Metrics.gauge "engine.pool.queue_depth_max"
let m_wait = Obs.Metrics.histogram "engine.pool.wait_s"
let m_run = Obs.Metrics.histogram "engine.pool.run_s"
let m_busy = Obs.Metrics.histogram "engine.pool.worker_busy_s"

type 'a state =
  | Queued of (unit -> 'a)
  | Running
  | Settled of ('a, error) result

type 'a promise = {
  p_mutex : Mutex.t;
  p_settled : Condition.t;
  submitted_at : float;
  deadline : float option;
  mutable cancelled : bool;
  mutable state : 'a state;
}

type 'a t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : 'a promise Queue.t;
  cap : int;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let settle p r =
  Mutex.lock p.p_mutex;
  (match p.state with
   | Settled _ -> ()  (* cancel raced with completion; first settle wins *)
   | Queued _ | Running ->
     p.state <- Settled r;
     Condition.broadcast p.p_settled);
  Mutex.unlock p.p_mutex

(* Claim a dequeued promise for execution. Returns the thunk to run, or
   settles the promise right away when it is cancelled or already past its
   deadline. *)
let claim p =
  Mutex.lock p.p_mutex;
  let action =
    match p.state with
    | Settled _ -> `Skip
    | Running -> `Skip  (* impossible: each promise is queued once *)
    | Queued thunk ->
      if p.cancelled then begin
        p.state <- Settled (Error Cancelled);
        Condition.broadcast p.p_settled;
        `Skip
      end
      else begin
        match p.deadline with
        | Some d when now () > d ->
          p.state <- Settled (Error (Timeout (now () -. p.submitted_at)));
          Condition.broadcast p.p_settled;
          `Skip
        | _ ->
          p.state <- Running;
          `Run thunk
      end
  in
  Mutex.unlock p.p_mutex;
  action

let run_claimed p thunk =
  let result =
    match thunk () with
    | v -> Ok v
    | exception e ->
      let backtrace = Printexc.get_backtrace () in
      Error (Exn { exn = Printexc.to_string e; backtrace })
  in
  let result =
    if p.cancelled then Error Cancelled
    else
      match (result, p.deadline) with
      | Ok _, Some d when now () > d ->
        Error (Timeout (now () -. p.submitted_at))
      | r, _ -> r
  in
  settle p result

let worker t () =
  let busy = ref 0.0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.not_empty t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closed: exit *)
    else begin
      let p = Queue.pop t.queue in
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      (match claim p with
       | `Run thunk when Obs.enabled () ->
         Obs.Metrics.observe m_wait (now () -. p.submitted_at);
         let t0 = now () in
         run_claimed p thunk;
         let dt = now () -. t0 in
         busy := !busy +. dt;
         Obs.Metrics.observe m_run dt
       | `Run thunk -> run_claimed p thunk
       | `Skip -> ());
      loop ()
    end
  in
  loop ();
  if Obs.enabled () then Obs.Metrics.observe m_busy !busy

let create ?queue_cap ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let cap = Option.value queue_cap ~default:(max 64 (4 * jobs)) in
  if cap < 1 then invalid_arg "Pool.create: queue_cap must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      queue = Queue.create ();
      cap;
      closed = false;
      workers = [];
    }
  in
  t.workers <- List.init jobs (fun _ -> Domain.spawn (worker t));
  t

let submit t ?timeout_s thunk =
  let submitted_at = now () in
  let p =
    {
      p_mutex = Mutex.create ();
      p_settled = Condition.create ();
      submitted_at;
      deadline = Option.map (fun s -> submitted_at +. s) timeout_s;
      cancelled = false;
      state = Queued thunk;
    }
  in
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  while Queue.length t.queue >= t.cap && not t.closed do
    Condition.wait t.not_full t.mutex
  done;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push p t.queue;
  let depth = Queue.length t.queue in
  Condition.signal t.not_empty;
  Mutex.unlock t.mutex;
  Obs.Metrics.incr m_jobs;
  Obs.Metrics.set_max m_queue_depth (float_of_int depth);
  p

let cancel p =
  Mutex.lock p.p_mutex;
  p.cancelled <- true;
  (match p.state with
   | Queued _ ->
     p.state <- Settled (Error Cancelled);
     Condition.broadcast p.p_settled
   | Running | Settled _ -> ());
  Mutex.unlock p.p_mutex

let await p =
  Mutex.lock p.p_mutex;
  let rec wait () =
    match p.state with
    | Settled r -> r
    | Queued _ | Running ->
      Condition.wait p.p_settled p.p_mutex;
      wait ()
  in
  let r = wait () in
  Mutex.unlock p.p_mutex;
  r

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.closed <- true;
  t.workers <- [];
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

(* Inline execution with the same isolation/timeout semantics as a worker,
   for the sequential path. *)
let run_inline ?timeout_s thunk =
  Obs.Metrics.incr m_jobs;
  let t0 = now () in
  let result =
    match thunk () with
    | v -> Ok v
    | exception e ->
      let backtrace = Printexc.get_backtrace () in
      Error (Exn { exn = Printexc.to_string e; backtrace })
  in
  if Obs.enabled () then Obs.Metrics.observe m_run (now () -. t0);
  match (result, timeout_s) with
  | Ok _, Some s when now () -. t0 > s -> Error (Timeout (now () -. t0))
  | r, _ -> r

let map ?(jobs = 1) ?queue_cap ?timeout_s f xs =
  if jobs <= 1 then List.map (fun x -> run_inline ?timeout_s (fun () -> f x)) xs
  else begin
    let t = create ?queue_cap ~jobs:(min jobs (List.length xs |> max 1)) () in
    (* submit blocks while the queue is at capacity; workers drain it, so
       submission always makes progress. *)
    let promises = List.map (fun x -> submit t ?timeout_s (fun () -> f x)) xs in
    let results = List.map await promises in
    shutdown t;
    results
  end
