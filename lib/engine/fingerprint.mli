(** Content-addressed job identity.

    A synthesis job is fully determined by the design (serialized via
    {!Rtl.Serialize}), the flow options, and the cell library. The
    fingerprint is an MD5 over canonical textual forms of all three, so any
    change to any input — a different net, a flipped option, a resized cell
    — yields a new key, while re-building the same design from scratch
    yields the same one.

    The canonical forms spell out every record field explicitly; adding a
    field to {!Synth.Flow.options} or {!Cells.Cell.t} is a compile error
    here until the fingerprint learns about it, which is exactly the
    safety property a persistent cache needs. *)

val options : Synth.Flow.options -> string
(** Canonical text of a flow-option record. *)

val library : Cells.Library.t -> string
(** Canonical text of a cell library (name, every cell's function, area and
    delay — bit-exact floats). *)

val job :
  lib:Cells.Library.t -> options:Synth.Flow.options -> Rtl.Design.t -> string
(** Hex MD5 key for (design, options, library). *)
