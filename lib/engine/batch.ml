type 'b codec = {
  encode : 'b -> string;
  decode : string -> ('b, string) result;
}

let retry_failures ~jobs ?timeout_s ~retries ~backoff_s f xs results =
  (* [xs] and [results] are aligned; rerun the failed slots up to [retries]
     times, sleeping [backoff_s * 2^attempt] before each wave. *)
  let rec go attempt results =
    let any_failed =
      List.exists (function Error _ -> true | Ok _ -> false) results
    in
    if (not any_failed) || attempt >= retries then results
    else begin
      Unix.sleepf (backoff_s *. (2.0 ** float_of_int attempt));
      let to_retry =
        List.concat
          (List.map2
             (fun x r -> match r with Error _ -> [ x ] | Ok _ -> [])
             xs results)
      in
      let retried = ref (Pool.map ~jobs ?timeout_s f to_retry) in
      let results =
        List.map
          (function
            | Ok _ as r -> r
            | Error _ ->
              (match !retried with
               | r :: rest ->
                 retried := rest;
                 r
               | [] -> assert false))
          results
      in
      go (attempt + 1) results
    end
  in
  go 0 results

let run ?(jobs = 1) ?timeout_s ?(retries = 0) ?(backoff_s = 0.05) ?journal
    ?(resume = []) ?chunk ?on_checkpoint ~key ~codec f items =
  let chunk_size =
    match chunk with Some c -> max 1 c | None -> max 1 (4 * max 1 jobs)
  in
  let resumed : (string, (string, string) result) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (e : Journal.entry) ->
      if not (Hashtbl.mem resumed e.key) then Hashtbl.add resumed e.key e.value)
    resume;
  (* Plan every item up front: resumed items decode from the journal, the
     rest run. A resumed payload that no longer decodes (foreign or corrupt
     journal) is recomputed rather than trusted. *)
  let plan =
    List.map
      (fun x ->
        let k = key x in
        match Hashtbl.find_opt resumed k with
        | Some (Ok enc) ->
          (match codec.decode enc with
           | Ok b -> `Done (k, Ok b)
           | Error _ -> `Todo (k, x))
        | Some (Error e) -> `Done (k, Error e)
        | None -> `Todo (k, x))
      items
  in
  let todo =
    List.filter_map (function `Todo kx -> Some kx | `Done _ -> None) plan
  in
  let computed : (string, ('b, string) result) Hashtbl.t = Hashtbl.create 64 in
  let journaled = ref 0 in
  let rec chunks = function
    | [] -> ()
    | rest ->
      let rec take n acc = function
        | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let batch, rest = take chunk_size [] rest in
      let raw = Pool.map ~jobs ?timeout_s (fun (_k, x) -> f x) batch in
      let raw =
        retry_failures ~jobs ?timeout_s ~retries ~backoff_s
          (fun (_k, x) -> f x)
          batch raw
      in
      List.iter2
        (fun (k, _x) r ->
          let r =
            match r with
            | Ok b -> Ok b
            | Error e -> Error (Pool.error_message e)
          in
          Hashtbl.replace computed k r;
          Option.iter
            (fun j ->
              Journal.append j ~key:k
                ~value:
                  (match r with
                   | Ok b -> Ok (codec.encode b)
                   | Error e -> Error e))
            journal;
          incr journaled;
          Option.iter (fun cb -> cb !journaled) on_checkpoint)
        batch raw;
      chunks rest
  in
  chunks todo;
  List.map
    (function
      | `Done (_k, r) -> r
      | `Todo (k, _x) -> Hashtbl.find computed k)
    plan
