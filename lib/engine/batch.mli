(** Crash-resilient batch execution: {!Pool} scheduling plus per-item retry
    with bounded exponential backoff, and an append-only {!Journal}
    checkpoint so a killed batch restarts where it left off.

    Unlike {!Engine.run} this is generic — items are anything with a stable
    string key and a string codec for results. Fault campaigns
    ([lib/fault]) are the main client.

    Determinism: results come back in item order regardless of [jobs], and
    an item resumed from a journal yields the decoded payload of the
    original run — so a resumed batch's output equals the uninterrupted
    one, byte for byte, as long as [f] itself is a pure function of the
    item. *)

type 'b codec = {
  encode : 'b -> string;
  decode : string -> ('b, string) result;
}

val run :
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?journal:Journal.t ->
  ?resume:Journal.entry list ->
  ?chunk:int ->
  ?on_checkpoint:(int -> unit) ->
  key:('a -> string) ->
  codec:'b codec ->
  ('a -> 'b) ->
  'a list ->
  ('b, string) result list
(** [run ~key ~codec f items] — results in item order; a failed item is an
    [Error] carrying its rendered {!Pool.error} message, never an
    exception.

    - [jobs]/[timeout_s]: {!Pool.map} scheduling of each chunk.
    - [retries]/[backoff_s]: each failing item is re-run up to [retries]
      times; wave [n] sleeps [backoff_s * 2^n] first (defaults 0 / 0.05 s).
    - [journal]: every settled item is appended (encoded via [codec]) and
      flushed, in item order, chunk by chunk.
    - [resume]: entries from {!Journal.load}; items whose key appears are
      not re-run — [Ok] payloads decode through [codec] (a payload that
      fails to decode is recomputed), [Error] entries are preserved as
      error results. Resumed items are not re-journaled.
    - [chunk]: items scheduled per pool wave (default [4 * jobs]); bounds
      how much completed work a kill can lose to the in-flight wave.
    - [on_checkpoint]: called after each newly journaled item with the
      count of items journaled by this run — the hook crash-injection
      tests use to die at a deterministic point. *)
