type entry = { key : string; value : (string, string) result }

type t = { oc : out_channel; mutable closed : bool }

let open_append path =
  { oc = Out_channel.open_gen [ Open_append; Open_creat; Open_text ] 0o644 path;
    closed = false }

let append t ~key ~value =
  if t.closed then invalid_arg "Journal.append: journal is closed";
  let fields =
    match value with
    | Ok v -> [ ("k", Report.Json.String key); ("v", Report.Json.String v) ]
    | Error e -> [ ("k", Report.Json.String key); ("e", Report.Json.String e) ]
  in
  Out_channel.output_string t.oc (Report.Json.to_string (Report.Json.Obj fields));
  Out_channel.output_char t.oc '\n';
  (* Each record is durable on its own: a kill between appends loses at most
     the in-flight line, which [load] then discards as malformed. *)
  Out_channel.flush t.oc

let close t =
  if not t.closed then begin
    t.closed <- true;
    Out_channel.close t.oc
  end

(* ------------------------------------------------- reading journals back *)

(* Minimal parser for the only shape [append] writes: a flat JSON object
   whose values are strings. Anything else on a line (including a line
   truncated by a mid-write crash) is rejected and skipped by [load]. *)

exception Bad of string

let parse_string s pos =
  let n = String.length s in
  if pos >= n || s.[pos] <> '"' then raise (Bad "expected string");
  let b = Buffer.create 16 in
  let rec go i =
    if i >= n then raise (Bad "unterminated string")
    else
      match s.[i] with
      | '"' -> (Buffer.contents b, i + 1)
      | '\\' ->
        if i + 1 >= n then raise (Bad "dangling escape")
        else begin
          (match s.[i + 1] with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 'r' -> Buffer.add_char b '\r'
           | 't' -> Buffer.add_char b '\t'
           | 'u' ->
             if i + 5 >= n then raise (Bad "short \\u escape");
             let code =
               try int_of_string ("0x" ^ String.sub s (i + 2) 4)
               with Failure _ -> raise (Bad "bad \\u escape")
             in
             (* The writer only emits \u for control bytes < 0x20. *)
             if code > 0xff then raise (Bad "non-byte \\u escape")
             else Buffer.add_char b (Char.chr code)
           | c -> raise (Bad (Printf.sprintf "unknown escape \\%c" c)));
          go (i + if s.[i + 1] = 'u' then 6 else 2)
        end
      | c -> Buffer.add_char b c; go (i + 1)
  in
  go (pos + 1)

let parse_line line =
  let n = String.length line in
  let expect pos c =
    if pos >= n || line.[pos] <> c then
      raise (Bad (Printf.sprintf "expected %c" c));
    pos + 1
  in
  let pos = expect 0 '{' in
  let rec fields pos acc =
    let k, pos = parse_string line pos in
    let pos = expect pos ':' in
    let v, pos = parse_string line pos in
    let acc = (k, v) :: acc in
    if pos < n && line.[pos] = ',' then fields (pos + 1) acc
    else (List.rev acc, expect pos '}')
  in
  let kvs, pos = fields pos [] in
  if pos <> n then raise (Bad "trailing bytes");
  match (List.assoc_opt "k" kvs, List.assoc_opt "v" kvs, List.assoc_opt "e" kvs) with
  | Some key, Some v, None -> { key; value = Ok v }
  | Some key, None, Some e -> { key; value = Error e }
  | _ -> raise (Bad "not a journal record")

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let lines = In_channel.with_open_text path In_channel.input_lines in
    List.filter_map
      (fun line ->
        if String.trim line = "" then None
        else match parse_line line with
          | entry -> Some entry
          | exception Bad _ -> None)
      lines
  end
