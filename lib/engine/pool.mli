(** Fixed-size pool of OCaml 5 domains draining a bounded job queue.

    Every job runs under exception isolation: a crashing job yields
    [Error (Exn _)] for its own promise and nothing else — the pool and the
    other jobs keep going. Timeouts are measured from submission (queueing
    delay counts) and are enforced cooperatively: a job whose deadline has
    passed before a worker picks it up never runs; a job already running is
    not interrupted, but its result is discarded and reported as
    [Error (Timeout _)]. [cancel] likewise drops queued jobs and marks
    running ones so their result is discarded on completion.

    Consequence of cooperative enforcement: a timed-out (or cancelled)
    thunk that is already running {e keeps running on its worker domain
    until it completes} — OCaml domains cannot be killed safely. Its
    promise settles as [Error (Timeout _)] only when the thunk returns
    (so [await] on it blocks that long), and the worker is occupied until
    then; a pool whose every worker is stuck in a long thunk makes no
    progress on queued jobs in the meantime, though it recovers as soon as
    the thunks finish. Size [timeout_s] and job granularity accordingly. *)

type error =
  | Exn of { exn : string; backtrace : string }
      (** the job raised; both strings are for reporting only *)
  | Timeout of float  (** seconds the job had been alive at the deadline *)
  | Cancelled

val error_message : error -> string

type 'a promise

type 'a t
(** A pool whose jobs all produce values of one type. *)

val create : ?queue_cap:int -> jobs:int -> unit -> 'a t
(** [jobs] worker domains ([>= 1]); [queue_cap] bounds the number of queued,
    not-yet-running jobs (default [max 64 (4 * jobs)]).
    @raise Invalid_argument on [jobs < 1] or [queue_cap < 1]. *)

val submit : 'a t -> ?timeout_s:float -> (unit -> 'a) -> 'a promise
(** Blocks while the queue is full.
    @raise Invalid_argument after {!shutdown}. *)

val cancel : 'a promise -> unit

val await : 'a promise -> ('a, error) result
(** Blocks until the job settles. Idempotent. *)

val shutdown : 'a t -> unit
(** Lets queued jobs drain, then joins the workers. Idempotent. *)

val map :
  ?jobs:int ->
  ?queue_cap:int ->
  ?timeout_s:float ->
  ('a -> 'b) ->
  'a list ->
  ('b, error) result list
(** Convenience: run [f] over the list on a transient pool, results in input
    order. [jobs <= 1] (the default) runs inline on the calling domain —
    same isolation and timeout semantics, no domains spawned. *)
