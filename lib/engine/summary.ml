type t = {
  report : Synth.Map.report;
  aig_ands : int;
  aig_latches : int;
  wall_s : float;
}

let of_flow ~wall_s (r : Synth.Flow.result) =
  {
    report = r.Synth.Flow.report;
    aig_ands = Aig.num_ands r.Synth.Flow.aig;
    aig_latches = Aig.num_latches r.Synth.Flow.aig;
    wall_s;
  }

let area t = Synth.Map.total t.report

let magic = "ctrlgen-summary v1"

let to_string t =
  let {
    Synth.Map.comb_area;
    seq_area;
    cell_counts;
    critical_delay;
    num_flops;
    config_bits;
  } =
    t.report
  in
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s" magic;
  line "comb_area %h" comb_area;
  line "seq_area %h" seq_area;
  line "critical_delay %h" critical_delay;
  line "num_flops %d" num_flops;
  line "config_bits %d" config_bits;
  line "aig_ands %d" t.aig_ands;
  line "aig_latches %d" t.aig_latches;
  line "wall_s %h" t.wall_s;
  List.iter (fun (cname, n) -> line "cell %s %d" cname n) cell_counts;
  Buffer.contents b

let of_string text =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  match lines with
  | m :: rest when m = magic ->
    let fields = Hashtbl.create 8 in
    let cells = ref [] in
    let rec scan = function
      | [] -> Ok ()
      | l :: tl ->
        (match String.split_on_char ' ' l with
         | [ "cell"; cname; n ] ->
           (match int_of_string_opt n with
            | Some n ->
              cells := (cname, n) :: !cells;
              scan tl
            | None -> err "bad cell count in %S" l)
         | [ key; v ] ->
           Hashtbl.replace fields key v;
           scan tl
         | _ -> err "malformed line %S" l)
    in
    let float_field key k =
      match Hashtbl.find_opt fields key with
      | None -> err "missing field %s" key
      | Some v ->
        (match float_of_string_opt v with
         | Some f -> k f
         | None -> err "bad float for %s: %S" key v)
    in
    let int_field key k =
      match Hashtbl.find_opt fields key with
      | None -> err "missing field %s" key
      | Some v ->
        (match int_of_string_opt v with
         | Some i -> k i
         | None -> err "bad int for %s: %S" key v)
    in
    (match scan rest with
     | Error _ as e -> e
     | Ok () ->
       float_field "comb_area" @@ fun comb_area ->
       float_field "seq_area" @@ fun seq_area ->
       float_field "critical_delay" @@ fun critical_delay ->
       int_field "num_flops" @@ fun num_flops ->
       int_field "config_bits" @@ fun config_bits ->
       int_field "aig_ands" @@ fun aig_ands ->
       int_field "aig_latches" @@ fun aig_latches ->
       float_field "wall_s" @@ fun wall_s ->
       Ok
         {
           report =
             {
               Synth.Map.comb_area;
               seq_area;
               cell_counts = List.rev !cells;
               critical_delay;
               num_flops;
               config_bits;
             };
           aig_ands;
           aig_latches;
           wall_s;
         })
  | _ -> err "missing %S header" magic
