type stats = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  stores : int;
  quarantined : int;
}

type t = {
  table : (string, Summary.t) Hashtbl.t;
  dir : string option;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable quarantined : int;
}

(* Process-wide cache metrics, aggregated across cache instances (each
   instance additionally keeps its own [stats] for the engine table). *)
let m_mem_hits = Obs.Metrics.counter "engine.cache.mem_hits"
let m_disk_hits = Obs.Metrics.counter "engine.cache.disk_hits"
let m_misses = Obs.Metrics.counter "engine.cache.misses"
let m_stores = Obs.Metrics.counter "engine.cache.stores"
let m_quarantined = Obs.Metrics.counter "engine.cache.quarantined"

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir () =
  Option.iter
    (fun d ->
      mkdir_p d;
      (* A cache dir that exists but is not a directory would otherwise
         degrade to silent store failures and a permanently cold cache. *)
      if not (Sys.is_directory d) then
        invalid_arg
          (Printf.sprintf "Engine.Cache.create: %s is not a directory" d))
    dir;
  { table = Hashtbl.create 64; dir; mem_hits = 0; disk_hits = 0;
    misses = 0; stores = 0; quarantined = 0 }

let entry_path dir key = Filename.concat dir (key ^ ".summary")

let quarantine_path dir key = Filename.concat dir (key ^ ".corrupt")

(* A corrupt entry left in place would be re-read (and missed) on every
   lookup forever; renaming it aside keeps the evidence for post-mortems
   while letting the next store repopulate the key. *)
let quarantine t dir key =
  (try Sys.rename (entry_path dir key) (quarantine_path dir key)
   with Sys_error _ -> ());
  t.quarantined <- t.quarantined + 1;
  Obs.Metrics.incr m_quarantined

let disk_find t dir key =
  let path = entry_path dir key in
  if not (Sys.file_exists path) then None
  else
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error _ -> None (* unreadable, not corrupt: plain miss *)
    | text ->
      (match Summary.of_string text with
       | Ok s -> Some s
       | Error _ ->
         quarantine t dir key;
         None)

let disk_store dir key summary =
  (* Atomic publish: unique temp file in the same directory, then rename. *)
  match
    Filename.temp_file ~temp_dir:dir ("." ^ key) ".tmp"
  with
  | exception Sys_error _ -> ()
  | tmp ->
    (try
       Out_channel.with_open_text tmp (fun oc ->
           Out_channel.output_string oc (Summary.to_string summary));
       Sys.rename tmp (entry_path dir key)
     with Sys_error _ -> (try Sys.remove tmp with Sys_error _ -> ()))

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some s ->
    t.mem_hits <- t.mem_hits + 1;
    Obs.Metrics.incr m_mem_hits;
    Some (s, `Memory)
  | None ->
    (match Option.bind t.dir (fun dir -> disk_find t dir key) with
     | Some s ->
       Hashtbl.replace t.table key s;
       t.disk_hits <- t.disk_hits + 1;
       Obs.Metrics.incr m_disk_hits;
       Some (s, `Disk)
     | None ->
       t.misses <- t.misses + 1;
       Obs.Metrics.incr m_misses;
       None)

let store t key summary =
  Hashtbl.replace t.table key summary;
  t.stores <- t.stores + 1;
  Obs.Metrics.incr m_stores;
  Option.iter (fun dir -> disk_store dir key summary) t.dir

let stats t =
  { mem_hits = t.mem_hits; disk_hits = t.disk_hits; misses = t.misses;
    stores = t.stores; quarantined = t.quarantined }
