let options (o : Synth.Flow.options) =
  (* Exhaustive destructuring: a new option field fails to compile here
     until it is added to the canonical form (warning 9 is fatal). *)
  let {
    Synth.Flow.collapse_cap;
    espresso_iters;
    honor_tool_annots;
    honor_generator_annots;
    annot_width_cap;
    retime;
    stateprop;
    sweep_sat;
    self_check;
  } =
    o
  in
  Printf.sprintf
    "(flow-options (collapse_cap %d) (espresso_iters %d) \
     (honor_tool_annots %b) (honor_generator_annots %b) \
     (annot_width_cap %d) (retime %b) (stateprop %b) (sweep_sat %b) \
     (self_check %b))"
    collapse_cap espresso_iters honor_tool_annots honor_generator_annots
    annot_width_cap retime stateprop sweep_sat self_check

let cell (c : Cells.Cell.t) =
  let { Cells.Cell.cname; func; area; delay } = c in
  let func =
    match func with
    | Cells.Cell.Comb { arity; table } ->
      Printf.sprintf "(comb %d %d)" arity table
    | Cells.Cell.Flop reset ->
      let r =
        match reset with
        | Rtl.Design.No_reset -> "none"
        | Rtl.Design.Sync_reset -> "sync"
        | Rtl.Design.Async_reset -> "async"
      in
      Printf.sprintf "(flop %s)" r
  in
  (* %h renders floats bit-exactly, so area/delay tweaks always re-key. *)
  Printf.sprintf "(cell %s %s %h %h)" cname func area delay

let library (l : Cells.Library.t) =
  Printf.sprintf "(library %s %s)" l.Cells.Library.lib_name
    (String.concat " " (List.map cell l.Cells.Library.cells))

let job ~lib ~options:o design =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          [ Rtl.Serialize.write design; options o; library lib ]))
