(* Hash-consed ROBDDs. Every node carries the manager's stamp so cross-manager
   operations can be rejected early. Reduction invariants: [lo != hi] for every
   internal node, and each (var, lo, hi) triple exists at most once, so
   pointer equality is semantic equality. *)

type node =
  | Leaf of bool
  | Node of { id : int; var : int; lo : node; hi : node }

type man = {
  stamp : int;
  unique : (int * int * int, node) Hashtbl.t;
  ite_cache : (int * int * int, node) Hashtbl.t;
  mutable next_id : int;
}

type t = { man : man; node : node }

(* Atomic: managers are created from synthesis jobs running on multiple
   domains, and duplicate stamps would defeat the cross-manager check. *)
let next_stamp = Atomic.make 0

let make_man () =
  { stamp = Atomic.fetch_and_add next_stamp 1 + 1;
    unique = Hashtbl.create 1024;
    ite_cache = Hashtbl.create 1024;
    next_id = 2 }

let node_count m = Hashtbl.length m.unique

let node_id = function
  | Leaf false -> 0
  | Leaf true -> 1
  | Node { id; _ } -> id

let node_var = function
  | Leaf _ -> max_int
  | Node { var; _ } -> var

let mk m var lo hi =
  if lo == hi then lo
  else begin
    let key = (var, node_id lo, node_id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      let n = Node { id = m.next_id; var; lo; hi } in
      m.next_id <- m.next_id + 1;
      Hashtbl.add m.unique key n;
      n
  end

let zero m = { man = m; node = Leaf false }
let one m = { man = m; node = Leaf true }

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative variable";
  { man = m; node = mk m i (Leaf false) (Leaf true) }

let nvar m i =
  if i < 0 then invalid_arg "Bdd.nvar: negative variable";
  { man = m; node = mk m i (Leaf true) (Leaf false) }

let same_man a b =
  if a.man.stamp <> b.man.stamp then invalid_arg "Bdd: manager mismatch"

(* Cofactors of [n] with respect to variable [v], where [v <= node_var n]. *)
let branch v n =
  match n with
  | Leaf _ -> (n, n)
  | Node { var; lo; hi; _ } -> if var = v then (lo, hi) else (n, n)

let rec ite_node m f g h =
  match f with
  | Leaf true -> g
  | Leaf false -> h
  | Node _ ->
    if g == h then g
    else if g == Leaf true && h == Leaf false then f
    else begin
      let key = (node_id f, node_id g, node_id h) in
      match Hashtbl.find_opt m.ite_cache key with
      | Some r -> r
      | None ->
        let v = min (node_var f) (min (node_var g) (node_var h)) in
        let f0, f1 = branch v f and g0, g1 = branch v g and h0, h1 = branch v h in
        let r = mk m v (ite_node m f0 g0 h0) (ite_node m f1 g1 h1) in
        Hashtbl.add m.ite_cache key r;
        r
    end

let ite f g h =
  same_man f g; same_man f h;
  { man = f.man; node = ite_node f.man f.node g.node h.node }

let not_ f = { man = f.man; node = ite_node f.man f.node (Leaf false) (Leaf true) }
let and_ f g = same_man f g; { man = f.man; node = ite_node f.man f.node g.node (Leaf false) }
let or_ f g = same_man f g; { man = f.man; node = ite_node f.man f.node (Leaf true) g.node }
let xor f g = same_man f g; { man = f.man; node = ite_node f.man f.node (not_ g).node g.node }
let imp f g = same_man f g; { man = f.man; node = ite_node f.man f.node g.node (Leaf true) }
let iff f g = not_ (xor f g)

let equal f g = same_man f g; f.node == g.node

let uid f = node_id f.node
let is_zero f = f.node == Leaf false
let is_one f = f.node == Leaf true
let is_const f = is_zero f || is_one f

let top_var f =
  match f.node with
  | Leaf _ -> invalid_arg "Bdd.top_var: constant"
  | Node { var; _ } -> var

let rec cofactor_node m n v b =
  match n with
  | Leaf _ -> n
  | Node { var; lo; hi; _ } ->
    if var > v then n
    else if var = v then (if b then hi else lo)
    else mk m var (cofactor_node m lo v b) (cofactor_node m hi v b)

let cofactor f v b = { man = f.man; node = cofactor_node f.man f.node v b }

let rec constrain_node m f c =
  match c with
  | Leaf true -> f
  | Leaf false -> invalid_arg "Bdd.constrain: zero constraint"
  | Node _ ->
    match f with
    | Leaf _ -> f
    | Node _ ->
      let v = min (node_var f) (node_var c) in
      let f0, f1 = branch v f and c0, c1 = branch v c in
      if c0 == Leaf false then constrain_node m f1 c1
      else if c1 == Leaf false then constrain_node m f0 c0
      else mk m v (constrain_node m f0 c0) (constrain_node m f1 c1)

let constrain f c =
  same_man f c;
  { man = f.man; node = constrain_node f.man f.node c.node }

let quantify combine vars f =
  let m = f.man in
  let sorted = List.sort_uniq Stdlib.compare vars in
  let tbl = Hashtbl.create 64 in
  let rec go n =
    match n with
    | Leaf _ -> n
    | Node { id; var; lo; hi; _ } ->
      match Hashtbl.find_opt tbl id with
      | Some r -> r
      | None ->
        let r =
          if List.mem var sorted then combine (go lo) (go hi)
          else mk m var (go lo) (go hi)
        in
        Hashtbl.add tbl id r;
        r
  in
  { man = m; node = go f.node }

let exists vars f =
  quantify (fun a b -> ite_node f.man a (Leaf true) b) vars f

let forall vars f =
  quantify (fun a b -> ite_node f.man a b (Leaf false)) vars f

let support f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go = function
    | Leaf _ -> ()
    | Node { id; var; lo; hi; _ } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        Hashtbl.replace vars var ();
        go lo; go hi
      end
  in
  go f.node;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort Stdlib.compare

let rename f map =
  let m = f.man in
  let tbl = Hashtbl.create 64 in
  let rec go n =
    match n with
    | Leaf _ -> n
    | Node { id; var; lo; hi; _ } ->
      match Hashtbl.find_opt tbl id with
      | Some r -> r
      | None ->
        let var' = map var in
        if var' < 0 then invalid_arg "Bdd.rename: negative variable";
        let lo' = go lo and hi' = go hi in
        (* Monotonicity keeps var' above the renamed children tops. *)
        if node_var lo' <= var' || node_var hi' <= var' then
          invalid_arg "Bdd.rename: mapping not order-preserving";
        let r = mk m var' lo' hi' in
        Hashtbl.add tbl id r;
        r
  in
  { man = m; node = go f.node }

let eval f assignment =
  let rec go = function
    | Leaf b -> b
    | Node { var; lo; hi; _ } -> go (if assignment var then hi else lo)
  in
  go f.node

let any_sat f =
  let rec go acc = function
    | Leaf true -> List.rev acc
    | Leaf false -> raise Not_found
    | Node { var; lo; hi; _ } ->
      if hi == Leaf false then go ((var, false) :: acc) lo
      else go ((var, true) :: acc) hi
  in
  go [] f.node

let sat_count f ~nvars =
  let tbl = Hashtbl.create 64 in
  (* count n = assignments of variables >= node_var n satisfying n,
     normalized as if node_var n were the next variable. *)
  let rec count n =
    match n with
    | Leaf false -> 0.0
    | Leaf true -> 1.0
    | Node { id; var; lo; hi; _ } ->
      if var >= nvars then invalid_arg "Bdd.sat_count: support exceeds nvars";
      match Hashtbl.find_opt tbl id with
      | Some c -> c
      | None ->
        let below sub =
          let gap = node_var sub - var - 1 in
          let gap = if node_var sub = max_int then nvars - var - 1 else gap in
          count sub *. (2.0 ** float_of_int gap)
        in
        let c = below lo +. below hi in
        Hashtbl.add tbl id c;
        c
  in
  match f.node with
  | Leaf false -> 0.0
  | Leaf true -> 2.0 ** float_of_int nvars
  | Node { var; _ } -> count f.node *. (2.0 ** float_of_int var)

let sat_seq f ~nvars =
  let all = Seq.filter (fun v -> eval f (Bitvec.get v)) (Bitvec.all_values nvars) in
  all

let of_minterms m ~nvars vs =
  let minterm v =
    if Bitvec.width v <> nvars then invalid_arg "Bdd.of_minterms: width mismatch";
    Bitvec.fold_bits
      (fun i b acc -> and_ acc (if b then var m i else nvar m i))
      v (one m)
  in
  List.fold_left (fun acc v -> or_ acc (minterm v)) (zero m) vs

let of_fun m ~nvars f =
  if nvars > 20 then invalid_arg "Bdd.of_fun: nvars too large";
  Seq.fold_left
    (fun acc v ->
      if f v then or_ acc (of_minterms m ~nvars [ v ]) else acc)
    (zero m) (Bitvec.all_values nvars)

let size f =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Leaf _ -> ()
    | Node { id; lo; hi; _ } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        go lo; go hi
      end
  in
  go f.node;
  Hashtbl.length seen
