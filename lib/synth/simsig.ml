type t = {
  node_sig : int array;
  latch_changed : int array;  (* per latch slot: OR of (state XOR init) *)
  latch_slot : (int, int) Hashtbl.t;
}

let fnv_fold h w = (h * 0x100_0193) lxor (w land max_int)

let random_word st =
  (* Sys.int_size independent random bits, 30 at a time. *)
  let rec go acc k =
    if k >= Aig.Compiled.lanes then acc
    else go (acc lor (Random.State.bits st lsl k)) (k + 30)
  in
  go 0 0

let compute ?(rounds = 2) ?(cycles = 12) ?(seed = 0x51b5) g =
  let c = Aig.Compiled.compile g in
  let s = Aig.Compiled.sim c in
  let n = Aig.num_nodes g in
  let node_sig = Array.make n 0 in
  let nl = Aig.Compiled.num_latches c in
  let latch_changed = Array.make nl 0 in
  let latch_slot = Hashtbl.create (max nl 1) in
  List.iteri (fun j id -> Hashtbl.replace latch_slot id j) (Aig.latches g);
  let inits = Array.init nl (fun j -> Aig.Compiled.latch_word s j) in
  Aig.Compiled.with_metrics s @@ fun () ->
  for round = 0 to rounds - 1 do
    Aig.Compiled.reset s;
    let st = Random.State.make [| 0x516; seed; round |] in
    for _cycle = 0 to cycles - 1 do
      for i = 0 to Aig.Compiled.num_pis c - 1 do
        Aig.Compiled.set_pi s i (random_word st)
      done;
      Aig.Compiled.step s;
      for id = 0 to n - 1 do
        node_sig.(id) <- fnv_fold node_sig.(id) (Aig.Compiled.node_value s id)
      done;
      for j = 0 to nl - 1 do
        latch_changed.(j) <-
          latch_changed.(j) lor (Aig.Compiled.latch_word s j lxor inits.(j))
      done
    done
  done;
  { node_sig; latch_changed; latch_slot }

let node_signature t id = t.node_sig.(id)

let lit_signature t l =
  (* Complement folded in so [x] and [not x] stay distinguishable while
     identical literals share a signature. *)
  let base = t.node_sig.(Aig.node_of_lit l) in
  if Aig.is_complemented l then lnot base else base

let latch_may_be_const t id =
  match Hashtbl.find_opt t.latch_slot id with
  | None -> invalid_arg "Simsig.latch_may_be_const: not a latch"
  | Some j -> t.latch_changed.(j) = 0

let classes t =
  let by_sig = Hashtbl.create 256 in
  let order = ref [] in
  Array.iteri
    (fun id sg ->
      match Hashtbl.find_opt by_sig sg with
      | Some l -> l := id :: !l
      | None ->
        Hashtbl.replace by_sig sg (ref [ id ]);
        order := sg :: !order)
    t.node_sig;
  List.rev_map (fun sg -> List.rev !(Hashtbl.find by_sig sg)) !order
