type result =
  | Equivalent
  | Counterexample of string
  | Gave_up of string

exception Overflow

let check_interfaces who ga gb =
  let pi_names g = List.sort compare (List.map (Aig.pi_name g) (Aig.pis g)) in
  let po_names g = List.sort compare (List.map fst (Aig.pos g)) in
  if pi_names ga <> pi_names gb then
    invalid_arg ("Seq_check." ^ who ^ ": input interfaces differ");
  if po_names ga <> po_names gb then
    invalid_arg ("Seq_check." ^ who ^ ": output interfaces differ")

(* Shared product-machine BDD environment: variables 0..k-1 are the current
   joint state (ga's latches then gb's), k..2k-1 the next state, 2k+ the
   inputs (shared by name). *)
type env = {
  man : Bdd.man;
  k : int;
  lit_a : Aig.lit -> Bdd.t;
  lit_b : Aig.lit -> Bdd.t;
  transition : Bdd.t;
  init : Bdd.t;
  input_var : (string, int) Hashtbl.t;
  num_inputs : int;
}

let build_env ~max_vars ~max_bdd ga gb =
  let latches_a = Aig.latches ga and latches_b = Aig.latches gb in
  let k = List.length latches_a + List.length latches_b in
  let man = Bdd.make_man () in
  let input_var = Hashtbl.create 16 in
  let next_input = ref (2 * k) in
  let var_of_input name =
    match Hashtbl.find_opt input_var name with
    | Some v -> v
    | None ->
      if !next_input >= max_vars then raise Overflow;
      let v = !next_input in
      incr next_input;
      Hashtbl.replace input_var name v;
      v
  in
  (* Per-graph node BDDs over (state vars, input vars). *)
  let graph_env g latches offset =
    let state_var = Hashtbl.create 16 in
    List.iteri (fun i n -> Hashtbl.replace state_var n (offset + i)) latches;
    let cache = Hashtbl.create 256 in
    let rec lit_bdd l =
      let b = node_bdd (Aig.node_of_lit l) in
      if Aig.is_complemented l then Bdd.not_ b else b
    and node_bdd n =
      match Hashtbl.find_opt cache n with
      | Some b -> b
      | None ->
        let b =
          match Aig.kind g n with
          | Aig.Const -> Bdd.zero man
          | Aig.Pi -> Bdd.var man (var_of_input (Aig.pi_name g n))
          | Aig.Latch -> Bdd.var man (Hashtbl.find state_var n)
          | Aig.And ->
            let f0, f1 = Aig.fanins g n in
            let b = Bdd.and_ (lit_bdd f0) (lit_bdd f1) in
            if Bdd.size b > max_bdd then raise Overflow;
            b
        in
        Hashtbl.replace cache n b;
        b
    in
    lit_bdd
  in
  let lit_a = graph_env ga latches_a 0 in
  let lit_b = graph_env gb latches_b (List.length latches_a) in
  let all_latches =
    List.map (fun n -> (ga, lit_a, n)) latches_a
    @ List.map (fun n -> (gb, lit_b, n)) latches_b
  in
  let transition =
    List.fold_left
      (fun (i, acc) (g, lit, n) ->
        let f = lit (Aig.latch_next g n) in
        (i + 1, Bdd.and_ acc (Bdd.iff (Bdd.var man (k + i)) f)))
      (0, Bdd.one man) all_latches
    |> snd
  in
  if Bdd.size transition > max_bdd then raise Overflow;
  let init =
    List.fold_left
      (fun (i, acc) (g, _, n) ->
        let _, iv, _, _ = Aig.latch_info g n in
        (i + 1, Bdd.and_ acc (if iv then Bdd.var man i else Bdd.nvar man i)))
      (0, Bdd.one man) all_latches
    |> snd
  in
  {
    man;
    k;
    lit_a;
    lit_b;
    transition;
    init;
    input_var;
    num_inputs = !next_input - (2 * k);
  }

let image env r =
  let quantified =
    List.init env.k Fun.id
    @ List.init env.num_inputs (fun j -> (2 * env.k) + j)
  in
  let conj = Bdd.and_ env.transition r in
  Bdd.rename (Bdd.exists quantified conj) (fun v -> v - env.k)

let run ?(max_vars = 64) ?(max_bdd = 200_000) ?(max_iters = 10_000) ga gb =
  check_interfaces "run" ga gb;
  let k = Aig.num_latches ga + Aig.num_latches gb in
  if 2 * k >= max_vars then Gave_up "too many latches"
  else
    match
      let env = build_env ~max_vars ~max_bdd ga gb in
      let miters =
        List.map
          (fun (name, la) ->
            let lb = List.assoc name (Aig.pos gb) in
            (name, Bdd.xor (env.lit_a la) (env.lit_b lb)))
          (Aig.pos ga)
      in
      let rec fixpoint i r =
        if i > max_iters then raise Overflow;
        match
          List.find_opt (fun (_, m) -> not (Bdd.is_zero (Bdd.and_ r m))) miters
        with
        | Some (name, _) -> Counterexample name
        | None ->
          let r' = Bdd.or_ r (image env r) in
          if Bdd.equal r r' then Equivalent else fixpoint (i + 1) r'
      in
      fixpoint 0 env.init
    with
    | r -> r
    | exception Overflow -> Gave_up "BDD effort cap exceeded"

(* ------------------------------------------------------------ SAT-backed *)

(* [run_sat] keeps the BDDs for what they are good at — the reachable state
   set, computed once as a fixpoint — and hands the per-output obligations
   to the CDCL solver: both netlists are copied into one structurally
   hashed miter whose latch states are free pseudo-inputs constrained by
   the reach set R (encoded back into AIG muxes node-by-node, memoized on
   BDD uid). Since R is the exact reachable set, an UNSAT sweep is a
   complete proof and any SAT witness is a genuinely reachable
   disagreement; the concrete trace is then recovered by bounded model
   checking whose depth is covered by the fixpoint's iteration count.
   When the reach computation blows the BDD caps, the SAT engine's plain
   BMC ({!Equiv.check_sat}) takes over — refutation stays exact, proofs
   become bounded. *)

let run_sat ?(frames = 16) ?(max_vars = 64) ?(max_bdd = 200_000)
    ?(max_iters = 10_000) ?on_stats ga gb =
  check_interfaces "run_sat" ga gb;
  let fallback reason =
    match Equiv.check_sat ~frames ?on_stats ga gb with
    | Equiv.Proved -> Equivalent
    | Equiv.Refuted c -> Counterexample (Equiv.mismatch_to_string c.first)
    | Equiv.Undecided s -> Gave_up (reason ^ "; " ^ s)
  in
  let k = Aig.num_latches ga + Aig.num_latches gb in
  if 2 * k >= max_vars then fallback "too many latches for the BDD invariant"
  else
    match
      let env = build_env ~max_vars ~max_bdd ga gb in
      (* Reach fixpoint, no miter checks: R and the diameter bound. *)
      let rec fixpoint i r =
        if i > max_iters then raise Overflow;
        let r' = Bdd.or_ r (image env r) in
        if Bdd.equal r r' then (r, i) else fixpoint (i + 1) r'
      in
      let reach, diameter = fixpoint 0 env.init in
      (* Miter AIG over shared pseudo-inputs: "state#i" for joint state
         variable i, real input names for the PIs. *)
      let u = Aig.create () in
      let leaf = Hashtbl.create 64 in
      let pseudo name =
        match Hashtbl.find_opt leaf name with
        | Some l -> l
        | None ->
          let l = Aig.pi u name in
          Hashtbl.replace leaf name l;
          l
      in
      let state_lit i = pseudo (Printf.sprintf "state#%d" i) in
      let copy g offset =
        let latch_idx = Hashtbl.create 16 in
        List.iteri
          (fun i n -> Hashtbl.replace latch_idx n (offset + i))
          (Aig.latches g);
        let map = Hashtbl.create (Aig.num_nodes g) in
        let xl l =
          let m = Hashtbl.find map (Aig.node_of_lit l) in
          if Aig.is_complemented l then Aig.not_ m else m
        in
        for n = 0 to Aig.num_nodes g - 1 do
          match Aig.kind g n with
          | Aig.Const -> Hashtbl.replace map n Aig.false_
          | Aig.Pi -> Hashtbl.replace map n (pseudo (Aig.pi_name g n))
          | Aig.Latch ->
            Hashtbl.replace map n (state_lit (Hashtbl.find latch_idx n))
          | Aig.And ->
            let f0, f1 = Aig.fanins g n in
            Hashtbl.replace map n (Aig.and_ u (xl f0) (xl f1))
        done;
        List.map (fun (name, l) -> (name, xl l)) (Aig.pos g)
      in
      let pos_a = copy ga 0 and pos_b = copy gb (Aig.num_latches ga) in
      (* Reach set R as an AIG: one mux per BDD node, memoized on uid. *)
      let inv_input = Hashtbl.create 16 in
      Hashtbl.iter (fun name v -> Hashtbl.replace inv_input v name) env.input_var;
      let bdd_cache = Hashtbl.create 256 in
      let rec of_bdd b =
        if Bdd.is_zero b then Aig.false_
        else if Bdd.is_one b then Aig.true_
        else
          match Hashtbl.find_opt bdd_cache (Bdd.uid b) with
          | Some l -> l
          | None ->
            let v = Bdd.top_var b in
            let hi = of_bdd (Bdd.cofactor b v true) in
            let lo = of_bdd (Bdd.cofactor b v false) in
            let sel =
              if v < env.k then state_lit v
              else pseudo (Hashtbl.find inv_input v)
            in
            let l = Aig.mux_ u sel hi lo in
            Hashtbl.replace bdd_cache (Bdd.uid b) l;
            l
      in
      let s = Sat.Solver.create () in
      let cnf = Sat.Cnf.create s u in
      Sat.Cnf.constrain cnf (of_bdd reach) true;
      let miter_of name la =
        let lb = List.assoc name pos_b in
        Aig.xor_ u la lb
      in
      let failed = ref None in
      List.iter
        (fun (name, la) ->
          if !failed = None then begin
            let x = miter_of name la in
            if x = Aig.false_ then ()
            else
              match Sat.Solver.solve ~assumptions:[ Sat.Cnf.lit cnf x ] s with
              | Sat.Solver.Unsat -> ()
              | Sat.Solver.Sat -> failed := Some name
          end)
        pos_a;
      (match on_stats with
       | Some f -> f (Sat.Solver.stats s)
       | None -> ());
      (match !failed with
       | None -> Equivalent
       | Some name ->
         (* Genuinely disequivalent (R is exact). A concrete trace exists
            within the reach diameter; recover it with BMC when that bound
            is sane. *)
         if diameter + 1 > 256 then
           Counterexample
             (Printf.sprintf "output %s differs on a reachable state" name)
         else begin
           match Equiv.check_sat ~frames:(diameter + 1) ?on_stats ga gb with
           | Equiv.Refuted c -> Counterexample (Equiv.mismatch_to_string c.first)
           | Equiv.Proved | Equiv.Undecided _ ->
             Counterexample
               (Printf.sprintf "output %s differs on a reachable state" name)
         end)
    with
    | r -> r
    | exception Overflow -> fallback "BDD effort cap exceeded"
