(* SAT-validated strengthening (enabled by [run ~sat:true]): simulation
   signatures propose, the solver disposes.

   - Constant latches: every non-config latch the signatures still allow as
     constant is checked by simultaneous induction, greatest-fixpoint
     style — assume ALL candidates hold their init value (unit constraints
     on their state variables), then ask the solver for a state/input where
     some candidate's next-state leaves init. Satisfiable candidates are
     dropped and the induction re-runs (a fresh solver, since unit clauses
     cannot be retracted) until it is closed; the survivors are genuinely
     constant on every reachable trajectory.

   - Duplicate latches: non-constant latches grouped by (state signature,
     init, reset) are candidate-equal classes. Assuming all class
     equalities (and the proven constants), each member must provably track
     its representative's next-state; members with a satisfiable
     disagreement leave the class and the induction re-runs. This catches
     latches whose next-state functions are logically equal but
     structurally different — invisible to the syntactic merge below.

   Both inductions only strengthen the syntactic passes: their verdicts
   seed [run_once]'s fixpoint and merge maps, and anything not proven is
   left exactly as the syntactic pass would leave it. *)
let sat_analysis g sigs =
  let latches =
    List.filter
      (fun n ->
        let _, _, _, is_config = Aig.latch_info g n in
        not is_config)
      (Aig.latches g)
  in
  let state_lit n = Aig.lit_of_node n false in
  (* Constant-latch induction. *)
  let cands =
    ref
      (List.filter_map
         (fun n ->
           let _, init, _, _ = Aig.latch_info g n in
           if Simsig.latch_may_be_const sigs n then Some (n, init) else None)
         latches)
  in
  let stable = ref false in
  while (not !stable) && !cands <> [] do
    let s = Sat.Solver.create () in
    let cnf = Sat.Cnf.create s g in
    List.iter
      (fun (n, init) -> Sat.Cnf.constrain cnf (state_lit n) init)
      !cands;
    let keep, drop =
      List.partition
        (fun (n, init) ->
          let sl = Sat.Cnf.lit cnf (Aig.latch_next g n) in
          Sat.Solver.solve ~assumptions:[ (if init then -sl else sl) ] s
          = Sat.Solver.Unsat)
        !cands
    in
    if drop = [] then stable := true else cands := keep
  done;
  let sat_known = Hashtbl.create 16 in
  List.iter (fun (n, init) -> Hashtbl.replace sat_known n init) !cands;
  (* Duplicate-latch class induction. *)
  let grouped = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if not (Hashtbl.mem sat_known n) then begin
        let _, init, reset, _ = Aig.latch_info g n in
        let key = (Simsig.node_signature sigs n, init, reset) in
        let prev = try Hashtbl.find grouped key with Not_found -> [] in
        Hashtbl.replace grouped key (n :: prev)
      end)
    latches;
  let classes =
    Hashtbl.fold
      (fun _ ns acc ->
        match List.rev ns with
        | rep :: (_ :: _ as members) -> (rep, ref members) :: acc
        | _ -> acc)
      grouped []
  in
  let stable = ref (classes = []) in
  while not !stable do
    let s = Sat.Solver.create () in
    let cnf = Sat.Cnf.create s g in
    Hashtbl.iter
      (fun n init -> Sat.Cnf.constrain cnf (state_lit n) init)
      sat_known;
    List.iter
      (fun (rep, members) ->
        let lr = Sat.Cnf.lit cnf (state_lit rep) in
        List.iter
          (fun m ->
            let lm = Sat.Cnf.lit cnf (state_lit m) in
            Sat.Solver.add_clause s [ -lr; lm ];
            Sat.Solver.add_clause s [ lr; -lm ])
          !members)
      classes;
    stable := true;
    List.iter
      (fun (rep, members) ->
        let keep, drop =
          List.partition
            (fun m ->
              let sa = Sat.Cnf.lit cnf (Aig.latch_next g rep) in
              let sb = Sat.Cnf.lit cnf (Aig.latch_next g m) in
              let x = Sat.Solver.new_var s in
              (* x -> (next(rep) xor next(m)) *)
              Sat.Solver.add_clause s [ -x; sa; sb ];
              Sat.Solver.add_clause s [ -x; -sa; -sb ];
              Sat.Solver.solve ~assumptions:[ x ] s = Sat.Solver.Unsat)
            !members
        in
        if drop <> [] then stable := false;
        members := keep)
      classes
  done;
  let sat_rep = Hashtbl.create 16 in
  List.iter
    (fun (rep, members) ->
      List.iter (fun m -> Hashtbl.replace sat_rep m rep) !members)
    classes;
  (sat_known, sat_rep)

let run_once ?sigs ?sat_known ?sat_rep g =
  (* Simulation-guided candidate filter: a latch observed leaving its
     init value under packed random simulation can never satisfy the
     constant criterion below (which implies the latch holds init on
     every reachable trajectory), so the fixpoint skips it outright.
     Everything the filter keeps is still verified exactly — signatures
     only refute, never prove. *)
  let may_be_const =
    match sigs with
    | Some s -> fun n -> Simsig.latch_may_be_const s n
    | None -> fun _ -> true
  in
  (* Fixpoint: which (non-config) latches are provably constant? Seeded
     with any SAT-proven constants, which the syntactic pass then
     propagates. *)
  let known : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  (match sat_known with
   | Some t -> Hashtbl.iter (fun n v -> Hashtbl.replace known n v) t
   | None -> ());
  let rec const_of_lit memo l =
    let n = Aig.node_of_lit l in
    let v =
      match Aig.kind g n with
      | Aig.Const -> Some false
      | Aig.Pi -> None
      | Aig.Latch -> Hashtbl.find_opt known n
      | Aig.And ->
        (match Hashtbl.find_opt memo n with
         | Some v -> v
         | None ->
           let f0, f1 = Aig.fanins g n in
           let a = const_of_lit memo f0 and b = const_of_lit memo f1 in
           let v =
             match a, b with
             | Some false, _ | _, Some false -> Some false
             | Some true, Some true -> Some true
             | Some true, None | None, Some true | None, None -> None
           in
           Hashtbl.replace memo n v;
           v)
    in
    match v with
    | Some v -> Some (if Aig.is_complemented l then not v else v)
    | None -> None
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let memo = Hashtbl.create 256 in
    List.iter
      (fun n ->
        let _, init, _, is_config = Aig.latch_info g n in
        if (not is_config) && may_be_const n && not (Hashtbl.mem known n)
        then begin
          let d = Aig.latch_next g n in
          let folds =
            if d = Aig.lit_of_node n false then true (* self-hold *)
            else
              match const_of_lit memo d with
              | Some v -> v = init
              | None -> false
          in
          if folds then begin
            Hashtbl.replace known n init;
            changed := true
          end
        end)
      (Aig.latches g)
  done;
  (* Merge duplicate latches (same next literal, init, reset). Seeded with
     SAT-proven equal pairs; a latch already represented by the solver's
     verdict is skipped here so it cannot become a syntactic class
     representative (chains stay representative-terminated and [resolve]
     walks them). *)
  let representative : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (match sat_rep with
   | Some t -> Hashtbl.iter (fun m r -> Hashtbl.replace representative m r) t
   | None -> ());
  let by_signature = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let _, init, reset, is_config = Aig.latch_info g n in
      if
        (not is_config)
        && (not (Hashtbl.mem known n))
        && not (Hashtbl.mem representative n)
      then begin
        let signature = (Aig.latch_next g n, init, reset) in
        match Hashtbl.find_opt by_signature signature with
        | Some rep -> Hashtbl.replace representative n rep
        | None -> Hashtbl.replace by_signature signature n
      end)
    (Aig.latches g);
  (* Which latches are live (reachable from the POs)? *)
  let live = Hashtbl.create 16 in
  let rec resolve n =
    match Hashtbl.find_opt representative n with
    | Some r -> resolve r
    | None -> n
  in
  let frontier = ref [] in
  let mark_roots roots =
    let leaves, _ = Aig.cone g roots in
    List.iter
      (fun n ->
        if Aig.kind g n = Aig.Latch && not (Hashtbl.mem known n) then begin
          let n = resolve n in
          if not (Hashtbl.mem live n) then begin
            Hashtbl.replace live n ();
            frontier := n :: !frontier
          end
        end)
      leaves
  in
  mark_roots (List.map snd (Aig.pos g));
  let rec drain () =
    match !frontier with
    | [] -> ()
    | n :: rest ->
      frontier := rest;
      mark_roots [ Aig.latch_next g n ];
      drain ()
  in
  drain ();
  (* Rebuild. *)
  let ng = Aig.create () in
  let node_map : (int, Aig.lit) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.replace node_map 0 Aig.false_;
  List.iter
    (fun n -> Hashtbl.replace node_map n (Aig.pi ng (Aig.pi_name g n)))
    (Aig.pis g);
  List.iter
    (fun n ->
      if Hashtbl.mem live n && not (Hashtbl.mem representative n) then begin
        let name, init, reset, is_config = Aig.latch_info g n in
        Hashtbl.replace node_map n (Aig.latch ng name ~init ~reset ~is_config)
      end)
    (Aig.latches g);
  let rec copy_lit l =
    let n = Aig.node_of_lit l in
    let nl = copy_node n in
    if Aig.is_complemented l then Aig.not_ nl else nl
  and copy_node n =
    match Hashtbl.find_opt node_map n with
    | Some l -> l
    | None ->
      let l =
        match Aig.kind g n with
        | Aig.Const -> Aig.false_
        | Aig.Pi -> assert false
        | Aig.Latch ->
          (match Hashtbl.find_opt known n with
           | Some v -> if v then Aig.true_ else Aig.false_
           | None ->
             let rep = resolve n in
             if rep <> n then copy_node rep
             else
               (* A dead latch referenced nowhere live; give it a node anyway
                  to keep copying total. *)
               let name, init, reset, is_config = Aig.latch_info g n in
               Aig.latch ng name ~init ~reset ~is_config)
        | Aig.And ->
          let f0, f1 = Aig.fanins g n in
          Aig.and_ ng (copy_lit f0) (copy_lit f1)
      in
      Hashtbl.replace node_map n l;
      l
  in
  List.iter (fun (name, l) -> Aig.po ng name (copy_lit l)) (Aig.pos g);
  List.iter
    (fun n ->
      if Hashtbl.mem live n && not (Hashtbl.mem representative n) then begin
        let q' = Hashtbl.find node_map n in
        Aig.set_next ng q' (copy_lit (Aig.latch_next g n))
      end)
    (Aig.latches g);
  ng

(* Merging can expose new constants and dangling latches; iterate until the
   graph stops shrinking. *)
let run ?(sat = false) g =
  let rec go i g =
    if i > 8 then g
    else begin
      (* A couple of packed random-simulation rounds cost O(cycles * n)
         word ops and typically disqualify most latches from the
         fixpoint; skipped for latch-free graphs (nothing to filter) and
         when compilation is impossible (e.g. a next-state never set —
         the fixpoint itself would raise on those anyway). *)
      let sigs =
        if Aig.num_latches g < 2 then None
        else match Simsig.compute g with
          | s -> Some s
          | exception Invalid_argument _ -> None
      in
      let sat_known, sat_rep =
        match (sat, sigs) with
        | true, Some s ->
          let k, r = sat_analysis g s in
          (Some k, Some r)
        | _ -> (None, None)
      in
      let g' = run_once ?sigs ?sat_known ?sat_rep g in
      if Aig.num_latches g' = Aig.num_latches g && Aig.num_ands g' = Aig.num_ands g
      then g'
      else go (i + 1) g'
    end
  in
  go 0 g
