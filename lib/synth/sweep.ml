let run_once ?sigs g =
  (* Simulation-guided candidate filter: a latch observed leaving its
     init value under packed random simulation can never satisfy the
     constant criterion below (which implies the latch holds init on
     every reachable trajectory), so the fixpoint skips it outright.
     Everything the filter keeps is still verified exactly — signatures
     only refute, never prove. *)
  let may_be_const =
    match sigs with
    | Some s -> fun n -> Simsig.latch_may_be_const s n
    | None -> fun _ -> true
  in
  (* Fixpoint: which (non-config) latches are provably constant? *)
  let known : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  let rec const_of_lit memo l =
    let n = Aig.node_of_lit l in
    let v =
      match Aig.kind g n with
      | Aig.Const -> Some false
      | Aig.Pi -> None
      | Aig.Latch -> Hashtbl.find_opt known n
      | Aig.And ->
        (match Hashtbl.find_opt memo n with
         | Some v -> v
         | None ->
           let f0, f1 = Aig.fanins g n in
           let a = const_of_lit memo f0 and b = const_of_lit memo f1 in
           let v =
             match a, b with
             | Some false, _ | _, Some false -> Some false
             | Some true, Some true -> Some true
             | Some true, None | None, Some true | None, None -> None
           in
           Hashtbl.replace memo n v;
           v)
    in
    match v with
    | Some v -> Some (if Aig.is_complemented l then not v else v)
    | None -> None
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let memo = Hashtbl.create 256 in
    List.iter
      (fun n ->
        let _, init, _, is_config = Aig.latch_info g n in
        if (not is_config) && may_be_const n && not (Hashtbl.mem known n)
        then begin
          let d = Aig.latch_next g n in
          let folds =
            if d = Aig.lit_of_node n false then true (* self-hold *)
            else
              match const_of_lit memo d with
              | Some v -> v = init
              | None -> false
          in
          if folds then begin
            Hashtbl.replace known n init;
            changed := true
          end
        end)
      (Aig.latches g)
  done;
  (* Merge duplicate latches (same next literal, init, reset). *)
  let representative : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let by_signature = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let _, init, reset, is_config = Aig.latch_info g n in
      if (not is_config) && not (Hashtbl.mem known n) then begin
        let signature = (Aig.latch_next g n, init, reset) in
        match Hashtbl.find_opt by_signature signature with
        | Some rep -> Hashtbl.replace representative n rep
        | None -> Hashtbl.replace by_signature signature n
      end)
    (Aig.latches g);
  (* Which latches are live (reachable from the POs)? *)
  let live = Hashtbl.create 16 in
  let resolve n =
    match Hashtbl.find_opt representative n with Some r -> r | None -> n
  in
  let frontier = ref [] in
  let mark_roots roots =
    let leaves, _ = Aig.cone g roots in
    List.iter
      (fun n ->
        if Aig.kind g n = Aig.Latch && not (Hashtbl.mem known n) then begin
          let n = resolve n in
          if not (Hashtbl.mem live n) then begin
            Hashtbl.replace live n ();
            frontier := n :: !frontier
          end
        end)
      leaves
  in
  mark_roots (List.map snd (Aig.pos g));
  let rec drain () =
    match !frontier with
    | [] -> ()
    | n :: rest ->
      frontier := rest;
      mark_roots [ Aig.latch_next g n ];
      drain ()
  in
  drain ();
  (* Rebuild. *)
  let ng = Aig.create () in
  let node_map : (int, Aig.lit) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.replace node_map 0 Aig.false_;
  List.iter
    (fun n -> Hashtbl.replace node_map n (Aig.pi ng (Aig.pi_name g n)))
    (Aig.pis g);
  List.iter
    (fun n ->
      if Hashtbl.mem live n && not (Hashtbl.mem representative n) then begin
        let name, init, reset, is_config = Aig.latch_info g n in
        Hashtbl.replace node_map n (Aig.latch ng name ~init ~reset ~is_config)
      end)
    (Aig.latches g);
  let rec copy_lit l =
    let n = Aig.node_of_lit l in
    let nl = copy_node n in
    if Aig.is_complemented l then Aig.not_ nl else nl
  and copy_node n =
    match Hashtbl.find_opt node_map n with
    | Some l -> l
    | None ->
      let l =
        match Aig.kind g n with
        | Aig.Const -> Aig.false_
        | Aig.Pi -> assert false
        | Aig.Latch ->
          (match Hashtbl.find_opt known n with
           | Some v -> if v then Aig.true_ else Aig.false_
           | None ->
             let rep = resolve n in
             if rep <> n then copy_node rep
             else
               (* A dead latch referenced nowhere live; give it a node anyway
                  to keep copying total. *)
               let name, init, reset, is_config = Aig.latch_info g n in
               Aig.latch ng name ~init ~reset ~is_config)
        | Aig.And ->
          let f0, f1 = Aig.fanins g n in
          Aig.and_ ng (copy_lit f0) (copy_lit f1)
      in
      Hashtbl.replace node_map n l;
      l
  in
  List.iter (fun (name, l) -> Aig.po ng name (copy_lit l)) (Aig.pos g);
  List.iter
    (fun n ->
      if Hashtbl.mem live n && not (Hashtbl.mem representative n) then begin
        let q' = Hashtbl.find node_map n in
        Aig.set_next ng q' (copy_lit (Aig.latch_next g n))
      end)
    (Aig.latches g);
  ng

(* Merging can expose new constants and dangling latches; iterate until the
   graph stops shrinking. *)
let run g =
  let rec go i g =
    if i > 8 then g
    else begin
      (* A couple of packed random-simulation rounds cost O(cycles * n)
         word ops and typically disqualify most latches from the
         fixpoint; skipped for latch-free graphs (nothing to filter) and
         when compilation is impossible (e.g. a next-state never set —
         the fixpoint itself would raise on those anyway). *)
      let sigs =
        if Aig.num_latches g < 2 then None
        else match Simsig.compute g with
          | s -> Some s
          | exception Invalid_argument _ -> None
      in
      let g' = run_once ?sigs g in
      if Aig.num_latches g' = Aig.num_latches g && Aig.num_ands g' = Aig.num_ands g
      then g'
      else go (i + 1) g'
    end
  in
  go 0 g
