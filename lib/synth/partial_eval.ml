let bind_tables d bindings =
  List.fold_left
    (fun d (name, contents) -> Rtl.Design.with_rom_contents d name contents)
    d bindings

let bind_input (d : Rtl.Design.t) name value =
  let port =
    match List.find_opt (fun (s : Rtl.Signal.t) -> s.name = name) d.inputs with
    | Some s -> s
    | None -> raise Not_found
  in
  if Bitvec.width value <> port.width then
    invalid_arg "Partial_eval.bind_input: width mismatch";
  let subst e =
    Rtl.Expr.map_leaves
      ~signal:(fun s ->
        if s.Rtl.Signal.name = name then Rtl.Expr.const value
        else Rtl.Expr.signal s)
      ~table:(fun t addr width -> Rtl.Expr.table_read ~table:t ~width ~addr)
      e
  in
  {
    d with
    inputs = List.filter (fun (s : Rtl.Signal.t) -> s.name <> name) d.inputs;
    nets = List.map (fun (s, e) -> (s, subst e)) d.nets;
    outputs = List.map (fun (s, e) -> (s, subst e)) d.outputs;
    regs =
      List.map
        (fun (r : Rtl.Design.reg) ->
          { r with d = subst r.d; enable = Option.map subst r.enable })
        d.regs;
    annots = List.filter (fun (a : Rtl.Annot.t) -> a.target <> name) d.annots;
  }

let bind_aig_tables g bindings =
  (* Configuration latch names follow Lower's scheme: "<table>[entry][bit]". *)
  let bound = Hashtbl.create 64 in
  List.iter
    (fun (tname, contents) ->
      Array.iteri
        (fun e v ->
          for b = 0 to Bitvec.width v - 1 do
            Hashtbl.replace bound
              (Printf.sprintf "%s[%d][%d]" tname e b)
              (Bitvec.get v b)
          done)
        contents)
    bindings;
  let matched = Hashtbl.create 64 in
  let u = Aig.create () in
  let map = Hashtbl.create (Aig.num_nodes g) in
  let xl l =
    let m = Hashtbl.find map (Aig.node_of_lit l) in
    if Aig.is_complemented l then Aig.not_ m else m
  in
  let kept = ref [] in
  (* Node index order is topological (fanins precede uses), so one pass
     rebuilds the graph; structural hashing folds the constants through the
     config-read mux trees as they are re-made. *)
  for n = 0 to Aig.num_nodes g - 1 do
    match Aig.kind g n with
    | Aig.Const -> Hashtbl.replace map n Aig.false_
    | Aig.Pi -> Hashtbl.replace map n (Aig.pi u (Aig.pi_name g n))
    | Aig.Latch ->
      let name, init, reset, is_config = Aig.latch_info g n in
      (match if is_config then Hashtbl.find_opt bound name else None with
       | Some b ->
         Hashtbl.replace matched name ();
         Hashtbl.replace map n (if b then Aig.true_ else Aig.false_)
       | None ->
         Hashtbl.replace map n (Aig.latch u name ~init ~reset ~is_config);
         kept := n :: !kept)
    | Aig.And ->
      let f0, f1 = Aig.fanins g n in
      Hashtbl.replace map n (Aig.and_ u (xl f0) (xl f1))
  done;
  if Hashtbl.length matched <> Hashtbl.length bound then
    Hashtbl.iter
      (fun name _ ->
        if not (Hashtbl.mem matched name) then
          invalid_arg
            ("Partial_eval.bind_aig_tables: no config latch named " ^ name))
      bound;
  List.iter
    (fun n -> Aig.set_next u (Hashtbl.find map n) (xl (Aig.latch_next g n)))
    (List.rev !kept);
  List.iter (fun (name, l) -> Aig.po u name (xl l)) (Aig.pos g);
  u

let specialize ?(inputs = []) ?(tables = []) d =
  let d = bind_tables d tables in
  let d = List.fold_left (fun d (n, v) -> bind_input d n v) d inputs in
  Rtl.Design.validate d;
  d
