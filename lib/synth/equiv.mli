(** Equivalence checking: random simulation (fast falsifier) and a complete
    SAT engine.

    The simulation side drives two sequential netlists from their initial
    states with the same random input streams and compares outputs cycle by
    cycle — an integration-level safety net, not a proof. The SAT side
    ({!check_sat}) is complete on combinational netlists and on sequential
    pairs whose latches correspond by name (register-correspondence
    induction), with bounded model checking as the fallback. Both engines
    normalize their witnesses the same way — the first differing output in
    sorted name order, replayed through the scalar simulator — so a sim
    counterexample and a SAT counterexample for the same bug print
    identically. *)

type mismatch = {
  cycle : int;
  output : string;
  got : bool;
  expected : bool;
}

val mismatch_to_string : mismatch -> string
(** ["cycle %d, output %s: %b vs %b"] — the normalized one-line witness
    format shared by every engine and consumer. *)

type cex = {
  tape : (string * bool) list array;
  (** Per-cycle input assignment (PI name, value), cycle 0 first, ending at
      the mismatch cycle. Replaying it through both netlists reproduces
      [first]. *)
  first : mismatch;  (** First divergence in sorted output-name order. *)
}

type verdict =
  | Proved  (** Equivalence certified (UNSAT miter) — SAT engine only. *)
  | Refuted of cex  (** Concrete counterexample, replayed and confirmed. *)
  | Undecided of string
      (** The engine exhausted its budget (simulation runs, BMC depth)
          without a verdict; the string says which budget. *)

val check : ?cycles:int -> ?runs:int -> seed:int -> Aig.t -> Aig.t -> verdict
(** Simulation engine: {!aig_vs_aig} with the stimulus tape retained.
    Never returns [Proved].
    @raise Invalid_argument if the interfaces differ. *)

val check_sat :
  ?frames:int ->
  ?on_stats:(Sat.Solver.stats -> unit) ->
  Aig.t ->
  Aig.t ->
  verdict
(** Complete SAT engine. Both graphs are Tseitin-encoded into one
    incremental solver with primary inputs shared by name; each proof
    obligation (one aligned output pair, or one matched latch's next-state
    function) is an assumption-gated XOR solved over the shared CNF.

    - No latches on either side: combinational equivalence, complete —
      returns [Proved] or [Refuted].
    - Same latch names and initial values on both sides:
      register-correspondence induction (latch states become shared free
      pseudo-inputs). All obligations UNSAT is a complete sequential proof.
      A satisfiable obligation may be an unreachable-state artifact, so the
      engine falls back to BMC instead of refuting.
    - Otherwise: bounded model checking — both netlists unrolled [frames]
      cycles (default 16) into a fresh structurally-hashed miter, solved
      incrementally frame by frame. SAT yields [Refuted]; exhausting the
      bound yields [Undecided].

    Every SAT model is replayed through the scalar simulator before being
    reported, so [Refuted] always carries a concrete, confirmed witness
    ([Failure] is raised if replay disagrees — an encoder soundness bug).
    [on_stats] receives the aggregated solver statistics for the call.
    @raise Invalid_argument if the interfaces differ. *)

val aig_vs_aig :
  ?cycles:int -> ?runs:int -> seed:int -> Aig.t -> Aig.t -> mismatch option
(** Both graphs must have the same PI and PO names (latch sets may differ).
    Each of the [runs] passes drives {!Aig.Compiled.lanes} independent
    random stimulus streams bit-parallel through both compiled netlists
    (so the default 8 runs cover ~500 streams for the former cost of 8);
    on divergence the mismatching lane is recovered from the XOR word and
    replayed as a single scalar vector, so the reported counterexample
    (cycle, output) is exact. Returns the first mismatch found, [None] if
    all runs agree.
    @raise Invalid_argument if the interfaces differ. *)

val rtl_vs_aig :
  ?cycles:int ->
  ?runs:int ->
  ?config:(string * Bitvec.t array) list ->
  seed:int ->
  Rtl.Design.t ->
  Aig.t ->
  mismatch option
(** Compare the RTL interpreter against a lowered/optimized AIG. [config]
    binds configuration tables on the RTL side; on the AIG side the same
    contents must already be reflected (bound designs) — flexible designs
    with unbound configuration latches can only be compared with all-zero
    config. *)
