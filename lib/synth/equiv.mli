(** Simulation-based equivalence checking.

    Used by tests and the flow's self-check: two sequential netlists are
    driven from their initial states with the same random input streams and
    their outputs compared cycle by cycle. This is a falsifier, not a proof;
    the optimization passes are also covered by exact per-pass arguments
    (BDD canonicity, cover agreement), so random simulation is the
    integration-level safety net. *)

type mismatch = {
  cycle : int;
  output : string;
  got : bool;
  expected : bool;
}

val aig_vs_aig :
  ?cycles:int -> ?runs:int -> seed:int -> Aig.t -> Aig.t -> mismatch option
(** Both graphs must have the same PI and PO names (latch sets may differ).
    Each of the [runs] passes drives {!Aig.Compiled.lanes} independent
    random stimulus streams bit-parallel through both compiled netlists
    (so the default 8 runs cover ~500 streams for the former cost of 8);
    on divergence the mismatching lane is recovered from the XOR word and
    replayed as a single scalar vector, so the reported counterexample
    (cycle, output) is exact. Returns the first mismatch found, [None] if
    all runs agree.
    @raise Invalid_argument if the interfaces differ. *)

val rtl_vs_aig :
  ?cycles:int ->
  ?runs:int ->
  ?config:(string * Bitvec.t array) list ->
  seed:int ->
  Rtl.Design.t ->
  Aig.t ->
  mismatch option
(** Compare the RTL interpreter against a lowered/optimized AIG. [config]
    binds configuration tables on the RTL side; on the AIG side the same
    contents must already be reflected (bound designs) — flexible designs
    with unbound configuration latches can only be compared with all-zero
    config. *)
