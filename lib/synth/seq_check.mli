(** Exact sequential equivalence by product-machine reachability.

    Builds one BDD transition relation over the union of both netlists'
    latches (inputs shared by name), computes the reachable state set from
    the joint initial state, and checks that no reachable state/input
    combination distinguishes any primary output. Unlike
    {!Equiv.aig_vs_aig} this is a proof, not a falsifier — but only for
    designs small enough for the BDD caps, which is exactly the size of the
    unit-test designs it guards. *)

type result =
  | Equivalent
  | Counterexample of string  (** name of a distinguishing output *)
  | Gave_up of string

val run : ?max_vars:int -> ?max_bdd:int -> ?max_iters:int -> Aig.t -> Aig.t -> result
(** Both graphs must have the same PI and PO names.
    @raise Invalid_argument if the interfaces differ. *)

val run_sat :
  ?frames:int ->
  ?max_vars:int ->
  ?max_bdd:int ->
  ?max_iters:int ->
  ?on_stats:(Sat.Solver.stats -> unit) ->
  Aig.t ->
  Aig.t ->
  result
(** BDD + SAT hybrid. The BDD side computes only the reachable state set R
    (one fixpoint, no per-output miters); the per-output obligations go to
    the CDCL solver over a shared structurally-hashed miter whose latch
    states are free pseudo-inputs constrained to R. R is exact, so UNSAT
    everywhere is a complete proof and any witness is a reachable
    disagreement — its concrete trace is recovered by bounded model
    checking within the fixpoint's iteration count (the diameter), and
    [Counterexample] then carries the normalized
    {!Equiv.mismatch_to_string} witness instead of just an output name.
    If R blows the BDD caps ([max_vars]/[max_bdd]/[max_iters]), plain SAT
    BMC over [frames] cycles (default 16) takes over: refutations stay
    exact, proofs become [Gave_up] bounds. [on_stats] receives solver
    statistics (possibly once per internal engine run).
    @raise Invalid_argument if the interfaces differ. *)
