let bits_per_limb = 62

(* Parallel window simulation: each cone node gets one bit per leaf
   assignment, packed into int limbs. *)
let window_sim g (leaves : int array) (nodes : int list) =
  let k = Array.length leaves in
  let npat = 1 lsl k in
  let nlimbs = (npat + bits_per_limb - 1) / bits_per_limb in
  let values : (int, int array) Hashtbl.t = Hashtbl.create 256 in
  let leaf_pattern j =
    let arr = Array.make nlimbs 0 in
    for i = 0 to npat - 1 do
      if i lsr j land 1 = 1 then begin
        let limb = i / bits_per_limb and bit = i mod bits_per_limb in
        arr.(limb) <- arr.(limb) lor (1 lsl bit)
      end
    done;
    arr
  in
  Array.iteri (fun j n -> Hashtbl.replace values n (leaf_pattern j)) leaves;
  let value_of_lit l =
    let n = Aig.node_of_lit l in
    let arr =
      if n = 0 then Array.make nlimbs 0 else Hashtbl.find values n
    in
    if Aig.is_complemented l then Array.map lnot arr else arr
  in
  List.iter
    (fun n ->
      let f0, f1 = Aig.fanins g n in
      let a = value_of_lit f0 and b = value_of_lit f1 in
      Hashtbl.replace values n (Array.init nlimbs (fun i -> a.(i) land b.(i))))
    nodes;
  fun l ->
    let arr = value_of_lit l in
    fun i ->
      arr.(i / bits_per_limb) lsr (i mod bits_per_limb) land 1 = 1

(* Don't-care predicate from annotations fully contained in the leaf set:
   an assignment is DC when some annotated vector takes a disallowed value. *)
let constraint_dc (annots : Annots.t list) (leaves : int array) =
  let position = Hashtbl.create 16 in
  Array.iteri (fun j n -> Hashtbl.replace position n j) leaves;
  let applicable =
    List.filter_map
      (fun (a : Annots.t) ->
        if Annots.width a > 30 then None
        else begin
          let pos =
            Array.map (fun n -> Hashtbl.find_opt position n) a.Annots.nodes
          in
          if Array.for_all Option.is_some pos then
            Some (Array.map Option.get pos, Annots.member_table a)
          else None
        end)
      annots
  in
  if applicable = [] then fun _ -> false
  else
    fun assignment ->
      List.exists
        (fun (pos, members) ->
          let v = ref 0 in
          Array.iteri
            (fun j p -> if assignment lsr p land 1 = 1 then v := !v lor (1 lsl j))
            pos;
          not (Hashtbl.mem members !v))
        applicable

(* Shannon (mux-tree) decomposition candidate, with structural sharing of
   identical cofactors — the multi-level restructuring a real synthesis tool
   performs, and the reason direct two-level RTL converges to the same area
   as a folded table read. The function is the completely-specified one the
   espresso cover picked (DCs resolved by the cover), as a dense bit string:
   byte [m] of [resolved] is the value on assignment [m].

   Sub-functions are identified by their dense value strings; the length
   determines the variable window (vars 0 .. log2 len - 1), so the bytes
   alone are a sound memo key within one group build. *)

let is_const_bytes b =
  let c = Bytes.get b 0 in
  let n = Bytes.length b in
  let rec go i = i >= n || (Bytes.get b i = c && go (i + 1)) in
  go 1

let log2 n =
  let rec lg n acc = if n <= 1 then acc else lg (n lsr 1) (acc + 1) in
  lg n 0

(* A block of length 2^j covers variables 0..j-1; its top split is on
   variable j-1. [memo] is shared across the roots of a support group. *)
let tree_build ng memo leaf_lit resolved =
  let rec build b =
    if is_const_bytes b then
      if Bytes.get b 0 = '\001' then Aig.true_ else Aig.false_
    else
      match Hashtbl.find_opt memo b with
      | Some l -> l
      | None ->
        let half = Bytes.length b / 2 in
        let f0 = Bytes.sub b 0 half and f1 = Bytes.sub b half half in
        let l =
          if Bytes.equal f0 f1 then build f0
          else
            Aig.mux_ ng (leaf_lit (log2 (Bytes.length b) - 1)) (build f1) (build f0)
        in
        Hashtbl.replace memo b l;
        l
  in
  build resolved

let sop_build ng leaf_lit (cover : Twolevel.Cover.t) =
  let cube_lit (c : Twolevel.Cube.t) =
    let lits =
      List.filter_map
        (fun j ->
          if Twolevel.Cube.has_literal c j then
            Some
              (if Twolevel.Cube.literal_value c j then leaf_lit j
               else Aig.not_ (leaf_lit j))
          else None)
        (List.init cover.Twolevel.Cover.nvars Fun.id)
    in
    Aig.and_list ng lits
  in
  Aig.or_list ng (List.map cube_lit cover.Twolevel.Cover.cubes)

(* Exclusive (MFFC-approximate) size of a node set: members all of whose
   fanout stays inside the set, plus the root nodes themselves. *)
let exclusive_count g fanout root_nodes nodes =
  let uses = Hashtbl.create 64 in
  let bump l =
    let n = Aig.node_of_lit l in
    Hashtbl.replace uses n (1 + Option.value ~default:0 (Hashtbl.find_opt uses n))
  in
  List.iter
    (fun n ->
      let f0, f1 = Aig.fanins g n in
      bump f0; bump f1)
    nodes;
  List.fold_left
    (fun acc n ->
      if List.mem n root_nodes then acc + 1
      else begin
        let used_here = Option.value ~default:0 (Hashtbl.find_opt uses n) in
        if fanout.(n) <= used_here then acc + 1 else acc
      end)
    0 nodes

let run ?(cap = 14) ?(espresso_iters = 3) ~annots g =
  let ng = Aig.create () in
  let node_map : (int, Aig.lit) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.replace node_map 0 Aig.false_;
  List.iter
    (fun n -> Hashtbl.replace node_map n (Aig.pi ng (Aig.pi_name g n)))
    (Aig.pis g);
  List.iter
    (fun n ->
      let name, init, reset, is_config = Aig.latch_info g n in
      Hashtbl.replace node_map n (Aig.latch ng name ~init ~reset ~is_config))
    (Aig.latches g);
  let rec copy_node n =
    match Hashtbl.find_opt node_map n with
    | Some l -> l
    | None ->
      let f0, f1 = Aig.fanins g n in
      let l = Aig.and_ ng (copy_lit f0) (copy_lit f1) in
      Hashtbl.replace node_map n l;
      l
  and copy_lit l =
    let nl = copy_node (Aig.node_of_lit l) in
    if Aig.is_complemented l then Aig.not_ nl else nl
  in
  let root_map : (Aig.lit, Aig.lit) Hashtbl.t = Hashtbl.create 64 in
  let fanout = Aig.fanout_counts g in
  let leaf_lit leaves j =
    match Hashtbl.find_opt node_map leaves.(j) with
    | Some l -> l
    | None -> assert false
  in
  (* Gather all combinational roots (in processing order). *)
  let all_roots =
    List.map snd (Aig.pos g)
    @ List.map (fun n -> Aig.latch_next g n) (Aig.latches g)
  in
  let root_nodes =
    List.sort_uniq Stdlib.compare (List.map Aig.node_of_lit all_roots)
    |> List.filter (fun n -> Aig.kind g n = Aig.And)
  in
  (* Group collapsible roots by their (canonically ordered) leaf set so the
     rebuild decision accounts for logic shared between the outputs of one
     block — per-root decisions would keep structures whose sharing is an
     illusion once each consumer is considered alone. *)
  let root_cones = Hashtbl.create 64 in
  List.iter
    (fun rn ->
      let leaves, nodes = Aig.cone g [ Aig.lit_of_node rn false ] in
      let leaves = Array.of_list (List.sort Stdlib.compare leaves) in
      Hashtbl.replace root_cones rn (leaves, nodes))
    root_nodes;
  let groups : (int list, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let group_order = ref [] in
  List.iter
    (fun rn ->
      let leaves, _ = Hashtbl.find root_cones rn in
      let k = Array.length leaves in
      if k > 0 && k <= cap then begin
        let key = Array.to_list leaves in
        match Hashtbl.find_opt groups key with
        | Some l -> l := rn :: !l
        | None ->
          Hashtbl.replace groups key (ref [ rn ]);
          group_order := key :: !group_order
      end)
    root_nodes;
  (* Decide and rebuild each group. *)
  let process_group key =
    let members = List.rev !(Hashtbl.find groups key) in
    let leaves = Array.of_list key in
    let k = Array.length leaves in
    let union_nodes =
      List.sort_uniq Stdlib.compare
        (List.concat_map (fun rn -> snd (Hashtbl.find root_cones rn)) members)
    in
    let read =
      window_sim g leaves union_nodes
    in
    let dc = constraint_dc annots leaves in
    (* Roots of one group frequently compute identical functions (table
       outputs wired to several consumers). The packed window simulation
       gives each root an exact signature — its dense value string — so
       espresso and the candidate completions run once per distinct
       function instead of once per root. Memoization is transparent:
       identical signatures mean identical truth functions, and the
       analysis is deterministic in the truth function. *)
    let an_memo : (Bytes.t, Twolevel.Cover.t * Bytes.t * Bytes.t) Hashtbl.t =
      Hashtbl.create 8
    in
    let analyze rn =
      let read_root = read (Aig.lit_of_node rn false) in
      let signature =
        Bytes.init (1 lsl k) (fun m ->
            if dc m then '\002' else if read_root m then '\001' else '\000')
      in
      match Hashtbl.find_opt an_memo signature with
      | Some (cover, resolved, resolved0) -> (rn, cover, resolved, resolved0)
      | None ->
        let tf =
          Twolevel.Truthfn.of_fun ~nvars:k (fun m ->
              if dc m then Twolevel.Truthfn.Dc
              else if read_root m then Twolevel.Truthfn.On
              else Twolevel.Truthfn.Off)
        in
        let cover = Twolevel.Espresso.minimize ~max_iters:espresso_iters tf in
        let resolved =
          Bytes.init (1 lsl k) (fun m ->
              if Twolevel.Cover.eval cover m then '\001' else '\000')
        in
        (* Alternative completion: don't-cares to zero. It often shares
           better across the group's outputs (the table's own zero-fill). *)
        let resolved0 =
          Bytes.init (1 lsl k) (fun m ->
              if Twolevel.Truthfn.get tf m = Twolevel.Truthfn.On then '\001'
              else '\000')
        in
        Hashtbl.replace an_memo signature (cover, resolved, resolved0);
        (rn, cover, resolved, resolved0)
    in
    let analyzed = List.map analyze members in
    (* Exact candidate costs: build each candidate into a private scratch
       graph (with the window variables as inputs) and count strash-shared
       nodes — estimates systematically mis-predict sharing. *)
    let scratch_cost build_all =
      let sg = Aig.create () in
      let pis =
        Array.init (Array.length leaves) (fun j ->
            Aig.pi sg (Printf.sprintf "w%d" j))
      in
      build_all sg (fun j -> pis.(j));
      Aig.num_ands sg
    in
    let total_sop =
      scratch_cost (fun sg leaf ->
          List.iter
            (fun (_, cover, _, _) -> ignore (sop_build sg leaf cover))
            analyzed)
    in
    let tree_total pick =
      scratch_cost (fun sg leaf ->
          let memo = Hashtbl.create 64 in
          List.iter
            (fun a -> ignore (tree_build sg memo leaf (pick a)))
            analyzed)
    in
    let total_tree = tree_total (fun (_, _, resolved, _) -> resolved) in
    let total_tree0 = tree_total (fun (_, _, _, resolved0) -> resolved0) in
    let cost_old = exclusive_count g fanout members union_nodes in
    let best = min total_sop (min total_tree total_tree0) in
    if best < cost_old then begin
      if best = total_sop then
        List.iter
          (fun (rn, cover, _, _) ->
            Hashtbl.replace root_map (Aig.lit_of_node rn false)
              (sop_build ng (leaf_lit leaves) cover))
          analyzed
      else begin
        let pick =
          if best = total_tree then fun (_, _, resolved, _) -> resolved
          else fun (_, _, _, resolved0) -> resolved0
        in
        let memo = Hashtbl.create 64 in
        List.iter
          (fun a ->
            let rn, _, _, _ = a in
            Hashtbl.replace root_map (Aig.lit_of_node rn false)
              (tree_build ng memo (leaf_lit leaves) (pick a)))
          analyzed
      end
    end
  in
  List.iter process_group (List.rev !group_order);
  let resolve_root r =
    let rn = Aig.node_of_lit r in
    match Hashtbl.find_opt root_map (Aig.lit_of_node rn false) with
    | Some l -> if Aig.is_complemented r then Aig.not_ l else l
    | None -> copy_lit r
  in
  List.iter (fun (name, l) -> Aig.po ng name (resolve_root l)) (Aig.pos g);
  List.iter
    (fun n ->
      let d = Aig.latch_next g n in
      let q' = Hashtbl.find node_map n in
      Aig.set_next ng q' (resolve_root d))
    (Aig.latches g);
  ng
