(** Design-level partial evaluation.

    The "Auto" step of the paper: once the generator knows the microcode
    (table contents) and the mode pins, the flexible design specializes —
    configuration memories become ROMs and mode inputs become constants.
    Downstream, lowering + collapse fold everything away; no separate
    optimizer is needed, which is the paper's thesis. *)

val bind_tables : Rtl.Design.t -> (string * Bitvec.t array) list -> Rtl.Design.t
(** Replace the storage of the named (typically [Config]) tables.
    @raise Invalid_argument on geometry mismatch, [Not_found] on unknown
    table. *)

val bind_input : Rtl.Design.t -> string -> Bitvec.t -> Rtl.Design.t
(** Substitute a constant for an input port everywhere and remove the port.
    Annotations on the port are dropped.
    @raise Not_found if no such input, [Invalid_argument] on width
    mismatch. *)

val bind_aig_tables : Aig.t -> (string * Bitvec.t array) list -> Aig.t
(** AIG-level specialization: rebuild the graph with every configuration
    latch of the named tables (Lower's ["<table>[entry][bit]"] naming)
    replaced by its constant; structural hashing folds the table-read mux
    trees on the fly. The result has only functional latches, so it can be
    checked against a lowered pre-bound design by register-correspondence
    induction ({!Equiv.check_sat}) — the paper's specialization claim as a
    provable statement.
    @raise Invalid_argument if a bound bit has no matching config latch. *)

val specialize :
  ?inputs:(string * Bitvec.t) list ->
  ?tables:(string * Bitvec.t array) list ->
  Rtl.Design.t ->
  Rtl.Design.t
(** Apply both binding kinds and revalidate. *)
