(** Packed random-simulation signatures (ABC-style candidate filtering).

    A few rounds of {!Aig.Compiled} bit-parallel simulation from the
    initial state give every node a signature — a hash of its packed
    value words across all simulated cycles — and every latch a
    changed-bits word. Signatures partition nodes into candidate
    equivalence classes: nodes with different signatures are proven
    inequivalent by a witnessed input sequence, so the expensive exact
    passes (the sweep constant-latch fixpoint, BDD reachability) need
    only examine signature-equal survivors.

    The filter is one-sided by construction: simulation can only
    {e refute} equivalence/constancy, never prove it, so consumers treat
    a matching signature as "candidate" and re-verify exactly. *)

type t

val compute : ?rounds:int -> ?cycles:int -> ?seed:int -> Aig.t -> t
(** [rounds] independent random stimulus streams (default 2) of [cycles]
    packed cycles each (default 12) — every cycle drives all
    {!Aig.Compiled.lanes} lanes with fresh random values, so the default
    covers [2 * 12 * 63] scalar patterns. Requires every latch's
    next-state to be set. Deterministic in [seed]. *)

val node_signature : t -> int -> int
(** Hash of the node's packed value stream. Equal signatures = candidate
    equivalent; different signatures = proven inequivalent (under the
    simulated reachable states). *)

val lit_signature : t -> Aig.lit -> int
(** As {!node_signature} with the complement bit folded in. *)

val latch_may_be_const : t -> int -> bool
(** [false] means the latch was observed leaving its init value in some
    lane/cycle — it can never satisfy the sweep's constant criterion, so
    the fixpoint may skip it. [true] keeps it as a candidate.
    @raise Invalid_argument if the node is not a latch. *)

val classes : t -> int list list
(** All nodes partitioned by signature, in first-seen order. *)
