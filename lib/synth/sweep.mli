(** Sequential cleanup.

    - Latches whose next-state is the constant equal to their init value (or
      that hold themselves) are replaced by constants — this is how
      partially-evaluated control registers disappear.
    - Latches with identical (next, init, reset) merge.
    - Logic and latches unreachable from the primary outputs are dropped.

    With [~sat:true] the syntactic criteria are strengthened by
    SAT-validated induction: simulation signatures ({!Simsig}) propose
    constant and duplicate-latch candidates, and the CDCL solver disposes —
    candidates are kept only when a simultaneous induction closes
    (all-candidates-at-init for constants, class-equality preservation for
    duplicates). This merges latches whose next-state functions are
    logically but not structurally equal, which the syntactic pass cannot
    see. Everything SAT proves is seeded into the syntactic pass; nothing
    unproven changes behaviour, so [run ~sat:false] output is bit-identical
    to the previous sweep.

    Configuration latches ([is_config]) are exempt from constant folding and
    merging: their contents are runtime-programmable (the write port is
    outside the modelled scope), so the "hold" next-state function does not
    mean they are constant. *)

val run : ?sat:bool -> Aig.t -> Aig.t
(** [sat] defaults to [false]. *)
