type mismatch = {
  cycle : int;
  output : string;
  got : bool;
  expected : bool;
}

let lanes = Aig.Compiled.lanes

(* One packed random word per draw: [lanes] independent bits, 30 at a
   time from the stdlib generator. *)
let random_word st =
  let rec go acc k =
    if k >= lanes then acc
    else go (acc lor (Random.State.bits st lsl k)) (k + 30)
  in
  go 0 0

(* One sequential run of an AIG through the compiled kernel: feed
   per-cycle input bits by PI name, return the PO name row (declaration
   order) plus one bool array per cycle. *)
let aig_run g ~cycles ~input =
  let c = Aig.Compiled.compile g in
  let s = Aig.Compiled.sim c in
  let npis = Aig.Compiled.num_pis c in
  let npos = Aig.Compiled.num_pos c in
  let names = Array.init npos (Aig.Compiled.po_name c) in
  let rows = ref [] in
  for cycle = 0 to cycles - 1 do
    for i = 0 to npis - 1 do
      Aig.Compiled.set_pi s i
        (Aig.Compiled.replicate (input cycle (Aig.Compiled.pi_name c i)))
    done;
    Aig.Compiled.step s;
    rows := Array.init npos (fun k -> Aig.Compiled.po s k land 1 = 1) :: !rows
  done;
  (names, List.rev !rows)

let interface_names g =
  ( List.sort Stdlib.compare (List.map (Aig.pi_name g) (Aig.pis g)),
    List.sort Stdlib.compare (List.map fst (Aig.pos g)) )

(* Positions sorted by (name, position): aligns the k-th occurrence of
   every output name across the two sides in O(n log n) once, instead of
   a List.assoc scan per output per cycle. *)
let sorted_perm names =
  let perm = Array.init (Array.length names) Fun.id in
  Array.sort
    (fun i j ->
      match String.compare names.(i) names.(j) with
      | 0 -> compare i j
      | c -> c)
    perm;
  perm

let find_mismatch (names_a, rows_a) (names_b, rows_b) =
  let pa = sorted_perm names_a and pb = sorted_perm names_b in
  let k = Array.length pa in
  let rec scan cycle = function
    | [], [] -> None
    | (row_a : bool array) :: rest_a, row_b :: rest_b ->
      let rec cols j =
        if j >= k then scan (cycle + 1) (rest_a, rest_b)
        else begin
          let va = row_a.(pa.(j)) and vb = row_b.(pb.(j)) in
          if va <> vb then
            Some { cycle; output = names_a.(pa.(j)); got = va; expected = vb }
          else cols (j + 1)
        end
      in
      cols 0
    | _, _ -> assert false
  in
  scan 0 (rows_a, rows_b)

let aig_vs_aig ?(cycles = 64) ?(runs = 8) ~seed a b =
  let pi_a, po_a = interface_names a and pi_b, po_b = interface_names b in
  if pi_a <> pi_b then invalid_arg "Equiv.aig_vs_aig: input interfaces differ";
  if po_a <> po_b then invalid_arg "Equiv.aig_vs_aig: output interfaces differ";
  let ca = Aig.Compiled.compile a and cb = Aig.Compiled.compile b in
  let sa = Aig.Compiled.sim ca and sb = Aig.Compiled.sim cb in
  (* Shared stimulus order: sorted PI names, resolved to slots once. *)
  let pi_names = Array.of_list pi_a in
  let slot c name =
    match Aig.Compiled.pi_index c name with
    | Some i -> i
    | None -> assert false
  in
  let slots_a = Array.map (slot ca) pi_names in
  let slots_b = Array.map (slot cb) pi_names in
  (* Output alignment: sorted (name, position) on each side. *)
  let po_names_a = Array.init (Aig.Compiled.num_pos ca) (Aig.Compiled.po_name ca) in
  let po_names_b = Array.init (Aig.Compiled.num_pos cb) (Aig.Compiled.po_name cb) in
  let pa = sorted_perm po_names_a and pb = sorted_perm po_names_b in
  let npo = Array.length pa in
  (* Packed pass for one run: 63 independent stimulus streams. Returns
     the first (cycle, output slot, lane) where any lane diverges. *)
  let packed_pass i =
    let st = Random.State.make [| seed; i |] in
    Aig.Compiled.reset sa;
    Aig.Compiled.reset sb;
    let found = ref None in
    let cycle = ref 0 in
    while !found = None && !cycle < cycles do
      for p = 0 to Array.length pi_names - 1 do
        let w = random_word st in
        Aig.Compiled.set_pi sa slots_a.(p) w;
        Aig.Compiled.set_pi sb slots_b.(p) w
      done;
      Aig.Compiled.step sa;
      Aig.Compiled.step sb;
      let j = ref 0 in
      while !found = None && !j < npo do
        let diff =
          Aig.Compiled.po sa pa.(!j) lxor Aig.Compiled.po sb pb.(!j)
        in
        if diff <> 0 then
          found := Some (!cycle, !j, Aig.Compiled.ctz diff);
        incr j
      done;
      incr cycle
    done;
    !found
  in
  (* Exact single-vector replay of one lane: regenerate the packed tape,
     extract the lane's bit per (cycle, PI), and re-simulate both graphs
     on that scalar stream — the reported counterexample is exact. *)
  let replay i lane =
    let st = Random.State.make [| seed; i |] in
    let tape = Hashtbl.create 256 in
    for cycle = 0 to cycles - 1 do
      Array.iter
        (fun name ->
          Hashtbl.replace tape (cycle, name)
            (random_word st lsr lane land 1 = 1))
        pi_names
    done;
    let input cycle name = Hashtbl.find tape (cycle, name) in
    find_mismatch (aig_run a ~cycles ~input) (aig_run b ~cycles ~input)
  in
  let rec run_i i =
    if i >= runs then None
    else
      match packed_pass i with
      | None -> run_i (i + 1)
      | Some (cycle, j, lane) ->
        (match replay i lane with
         | Some m -> Some m
         | None ->
           (* Replay and packed kernel disagree — report the packed
              evidence rather than mask it. *)
           let got = Aig.Compiled.po sa pa.(j) lsr lane land 1 = 1 in
           Some { cycle; output = po_names_a.(pa.(j)); got; expected = not got })
  in
  run_i 0

let rtl_vs_aig ?(cycles = 64) ?(runs = 8) ?(config = []) ~seed
    (d : Rtl.Design.t) g =
  let rec run_i i =
    if i >= runs then None
    else begin
      let rng = Random.State.make [| seed; i; 77 |] in
      let st = Rtl.Eval.create ~config d in
      (* Pre-draw the whole input tape so both sides see the same bits. *)
      let tape =
        Array.init cycles (fun _ ->
            List.map
              (fun (s : Rtl.Signal.t) ->
                ( s.name,
                  Bitvec.of_bits
                    (List.init s.width (fun _ -> Random.State.bool rng)) ))
              d.inputs)
      in
      let input cycle name =
        (* name is "sig[i]" *)
        let base, idx =
          match String.index_opt name '[' with
          | Some k ->
            ( String.sub name 0 k,
              int_of_string (String.sub name (k + 1) (String.length name - k - 2)) )
          | None -> (name, 0)
        in
        Bitvec.get (List.assoc base tape.(cycle)) idx
      in
      let aig_names, aig_rows = aig_run g ~cycles ~input in
      let aig_pos = Hashtbl.create (Array.length aig_names) in
      Array.iteri (fun k name -> Hashtbl.replace aig_pos name k) aig_names;
      let rec cycle_loop cycle aig_rows =
        match aig_rows with
        | [] -> None
        | (row : bool array) :: rest ->
          List.iter
            (fun (name, v) -> Rtl.Eval.set_input st name v)
            tape.(cycle);
          let bad =
            List.fold_left
              (fun acc ((s : Rtl.Signal.t), _) ->
                match acc with
                | Some _ -> acc
                | None ->
                  let v = Rtl.Eval.peek st s.name in
                  let rec check i =
                    if i >= s.width then None
                    else begin
                      let expected = Bitvec.get v i in
                      let name = Printf.sprintf "%s[%d]" s.name i in
                      let got = row.(Hashtbl.find aig_pos name) in
                      if got <> expected then
                        Some { cycle; output = name; got; expected }
                      else check (i + 1)
                    end
                  in
                  check 0)
              None d.outputs
          in
          (match bad with
           | Some m -> Some m
           | None ->
             Rtl.Eval.step st;
             cycle_loop (cycle + 1) rest)
      in
      match cycle_loop 0 aig_rows with
      | Some m -> Some m
      | None -> run_i (i + 1)
    end
  in
  run_i 0
