type mismatch = {
  cycle : int;
  output : string;
  got : bool;
  expected : bool;
}

let mismatch_to_string m =
  Printf.sprintf "cycle %d, output %s: %b vs %b" m.cycle m.output m.got
    m.expected

type cex = {
  tape : (string * bool) list array;
  first : mismatch;
}

type verdict = Proved | Refuted of cex | Undecided of string

let lanes = Aig.Compiled.lanes

(* One packed random word per draw: [lanes] independent bits, 30 at a
   time from the stdlib generator. *)
let random_word st =
  let rec go acc k =
    if k >= lanes then acc
    else go (acc lor (Random.State.bits st lsl k)) (k + 30)
  in
  go 0 0

(* One sequential run of an AIG through the compiled kernel: feed
   per-cycle input bits by PI name, return the PO name row (declaration
   order) plus one bool array per cycle. *)
let aig_run g ~cycles ~input =
  let c = Aig.Compiled.compile g in
  let s = Aig.Compiled.sim c in
  let npis = Aig.Compiled.num_pis c in
  let npos = Aig.Compiled.num_pos c in
  let names = Array.init npos (Aig.Compiled.po_name c) in
  let rows = ref [] in
  for cycle = 0 to cycles - 1 do
    for i = 0 to npis - 1 do
      Aig.Compiled.set_pi s i
        (Aig.Compiled.replicate (input cycle (Aig.Compiled.pi_name c i)))
    done;
    Aig.Compiled.step s;
    rows := Array.init npos (fun k -> Aig.Compiled.po s k land 1 = 1) :: !rows
  done;
  (names, List.rev !rows)

let interface_names g =
  ( List.sort Stdlib.compare (List.map (Aig.pi_name g) (Aig.pis g)),
    List.sort Stdlib.compare (List.map fst (Aig.pos g)) )

(* Positions sorted by (name, position): aligns the k-th occurrence of
   every output name across the two sides in O(n log n) once, instead of
   a List.assoc scan per output per cycle. *)
let sorted_perm names =
  let perm = Array.init (Array.length names) Fun.id in
  Array.sort
    (fun i j ->
      match String.compare names.(i) names.(j) with
      | 0 -> compare i j
      | c -> c)
    perm;
  perm

let find_mismatch (names_a, rows_a) (names_b, rows_b) =
  let pa = sorted_perm names_a and pb = sorted_perm names_b in
  let k = Array.length pa in
  let rec scan cycle = function
    | [], [] -> None
    | (row_a : bool array) :: rest_a, row_b :: rest_b ->
      let rec cols j =
        if j >= k then scan (cycle + 1) (rest_a, rest_b)
        else begin
          let va = row_a.(pa.(j)) and vb = row_b.(pb.(j)) in
          if va <> vb then
            Some { cycle; output = names_a.(pa.(j)); got = va; expected = vb }
          else cols (j + 1)
        end
      in
      cols 0
    | _, _ -> assert false
  in
  scan 0 (rows_a, rows_b)

let sim_search ~cycles ~runs ~seed a b =
  let pi_a, po_a = interface_names a and pi_b, po_b = interface_names b in
  if pi_a <> pi_b then invalid_arg "Equiv.aig_vs_aig: input interfaces differ";
  if po_a <> po_b then invalid_arg "Equiv.aig_vs_aig: output interfaces differ";
  let ca = Aig.Compiled.compile a and cb = Aig.Compiled.compile b in
  let sa = Aig.Compiled.sim ca and sb = Aig.Compiled.sim cb in
  (* Shared stimulus order: sorted PI names, resolved to slots once. *)
  let pi_names = Array.of_list pi_a in
  let slot c name =
    match Aig.Compiled.pi_index c name with
    | Some i -> i
    | None -> assert false
  in
  let slots_a = Array.map (slot ca) pi_names in
  let slots_b = Array.map (slot cb) pi_names in
  (* Output alignment: sorted (name, position) on each side. *)
  let po_names_a = Array.init (Aig.Compiled.num_pos ca) (Aig.Compiled.po_name ca) in
  let po_names_b = Array.init (Aig.Compiled.num_pos cb) (Aig.Compiled.po_name cb) in
  let pa = sorted_perm po_names_a and pb = sorted_perm po_names_b in
  let npo = Array.length pa in
  (* Packed pass for one run: 63 independent stimulus streams. Returns
     the first (cycle, output slot, lane) where any lane diverges. *)
  let packed_pass i =
    let st = Random.State.make [| seed; i |] in
    Aig.Compiled.reset sa;
    Aig.Compiled.reset sb;
    let found = ref None in
    let cycle = ref 0 in
    while !found = None && !cycle < cycles do
      for p = 0 to Array.length pi_names - 1 do
        let w = random_word st in
        Aig.Compiled.set_pi sa slots_a.(p) w;
        Aig.Compiled.set_pi sb slots_b.(p) w
      done;
      Aig.Compiled.step sa;
      Aig.Compiled.step sb;
      let j = ref 0 in
      while !found = None && !j < npo do
        let diff =
          Aig.Compiled.po sa pa.(!j) lxor Aig.Compiled.po sb pb.(!j)
        in
        if diff <> 0 then
          found := Some (!cycle, !j, Aig.Compiled.ctz diff);
        incr j
      done;
      incr cycle
    done;
    !found
  in
  (* Exact single-vector replay of one lane: regenerate the packed tape,
     extract the lane's bit per (cycle, PI), and re-simulate both graphs
     on that scalar stream — the reported counterexample is exact. *)
  let replay i lane =
    let st = Random.State.make [| seed; i |] in
    let tbl = Hashtbl.create 256 in
    for cycle = 0 to cycles - 1 do
      Array.iter
        (fun name ->
          Hashtbl.replace tbl (cycle, name)
            (random_word st lsr lane land 1 = 1))
        pi_names
    done;
    let tape =
      Array.init cycles (fun c ->
          Array.to_list
            (Array.map (fun name -> (name, Hashtbl.find tbl (c, name))) pi_names))
    in
    let input cycle name = Hashtbl.find tbl (cycle, name) in
    (find_mismatch (aig_run a ~cycles ~input) (aig_run b ~cycles ~input), tape)
  in
  let trim tape m = Array.sub tape 0 (m.cycle + 1) in
  let rec run_i i =
    if i >= runs then None
    else
      match packed_pass i with
      | None -> run_i (i + 1)
      | Some (cycle, j, lane) ->
        (match replay i lane with
         | Some m, tape -> Some (m, trim tape m)
         | None, tape ->
           (* Replay and packed kernel disagree — report the packed
              evidence rather than mask it. *)
           let got = Aig.Compiled.po sa pa.(j) lsr lane land 1 = 1 in
           let m =
             { cycle; output = po_names_a.(pa.(j)); got; expected = not got }
           in
           Some (m, trim tape m))
  in
  run_i 0

let aig_vs_aig ?(cycles = 64) ?(runs = 8) ~seed a b =
  Option.map fst (sim_search ~cycles ~runs ~seed a b)

let check ?(cycles = 64) ?(runs = 8) ~seed a b =
  match sim_search ~cycles ~runs ~seed a b with
  | Some (first, tape) -> Refuted { tape; first }
  | None ->
    Undecided
      (Printf.sprintf
         "simulation: no mismatch in %d runs x %d lanes x %d cycles (not a proof)"
         runs lanes cycles)

(* ------------------------------------------------------------ SAT engine *)

let zero_stats : Sat.Solver.stats =
  {
    solves = 0;
    decisions = 0;
    conflicts = 0;
    propagations = 0;
    learned = 0;
    learned_lits = 0;
    restarts = 0;
    max_vars = 0;
    solve_s = 0.;
  }

let add_stats (x : Sat.Solver.stats) (y : Sat.Solver.stats) : Sat.Solver.stats =
  {
    solves = x.solves + y.solves;
    decisions = x.decisions + y.decisions;
    conflicts = x.conflicts + y.conflicts;
    propagations = x.propagations + y.propagations;
    learned = x.learned + y.learned;
    learned_lits = x.learned_lits + y.learned_lits;
    restarts = x.restarts + y.restarts;
    max_vars = max x.max_vars y.max_vars;
    solve_s = x.solve_s +. y.solve_s;
  }

(* Aligned (name, a-side, b-side) pairs — the k-th occurrence of every name
   on each side, the same normalization the simulators use. *)
let align_pairs pos_a pos_b =
  let names_a = Array.of_list (List.map fst pos_a)
  and names_b = Array.of_list (List.map fst pos_b) in
  let lits_a = Array.of_list (List.map snd pos_a)
  and lits_b = Array.of_list (List.map snd pos_b) in
  let pa = sorted_perm names_a and pb = sorted_perm names_b in
  List.init (Array.length pa) (fun k ->
      (names_a.(pa.(k)), lits_a.(pa.(k)), lits_b.(pb.(k))))

(* Replay an input tape through both scalar simulators. A SAT witness that
   fails to replay means the CNF encoding is unsound — reported loudly, not
   masked; [Refuted] always carries a concrete simulation mismatch. *)
let replay_tape a b (tape : (string * bool) list array) =
  let cycles = Array.length tape in
  let input c name = List.assoc name tape.(c) in
  match find_mismatch (aig_run a ~cycles ~input) (aig_run b ~cycles ~input) with
  | Some m -> { tape = Array.sub tape 0 (m.cycle + 1); first = m }
  | None ->
    failwith
      "Equiv.check_sat: SAT counterexample failed to replay through the \
       scalar simulator (encoder soundness bug)"

let latch_profile g =
  List.map
    (fun n ->
      let name, init, _, _ = Aig.latch_info g n in
      (name, init))
    (Aig.latches g)
  |> List.sort compare

let unique_names profile =
  let names = List.map fst profile in
  List.length (List.sort_uniq String.compare names) = List.length names

let check_sat ?(frames = 16) ?on_stats a b =
  let pi_a, po_a = interface_names a and pi_b, po_b = interface_names b in
  if pi_a <> pi_b then invalid_arg "Equiv.check_sat: input interfaces differ";
  if po_a <> po_b then invalid_arg "Equiv.check_sat: output interfaces differ";
  let solvers = ref [] in
  let new_solver () =
    let s = Sat.Solver.create () in
    solvers := s :: !solvers;
    s
  in
  let finish v =
    (match on_stats with
     | None -> ()
     | Some f ->
       f
         (List.fold_left
            (fun acc s -> add_stats acc (Sat.Solver.stats s))
            zero_stats !solvers));
    v
  in
  (* Shared machinery for combinational CEC and register-correspondence
     induction: both graphs are rebuilt into ONE structurally-hashed miter
     AIG whose primary inputs (and, for induction, latch states as free
     pseudo-inputs) are shared by name. Cones that are structurally equal
     fold their XOR obligation to constant false and cost no solver work at
     all — only genuinely different logic reaches CDCL, one assumption per
     obligation over a single incremental CNF. *)
  let try_induction ~sequential () =
    let u = Aig.create () in
    let leaf = Hashtbl.create 64 in
    let pseudo name =
      match Hashtbl.find_opt leaf name with
      | Some l -> l
      | None ->
        let l = Aig.pi u name in
        Hashtbl.replace leaf name l;
        l
    in
    let copy g =
      let map = Hashtbl.create (Aig.num_nodes g) in
      let xl l =
        let m = Hashtbl.find map (Aig.node_of_lit l) in
        if Aig.is_complemented l then Aig.not_ m else m
      in
      (* Node index order is topological (fanins precede uses). *)
      for n = 0 to Aig.num_nodes g - 1 do
        match Aig.kind g n with
        | Aig.Const -> Hashtbl.replace map n Aig.false_
        | Aig.Pi -> Hashtbl.replace map n (pseudo (Aig.pi_name g n))
        | Aig.Latch ->
          let name, _, _, _ = Aig.latch_info g n in
          (* The "latch:" prefix keeps state pseudo-inputs from colliding
             with a real PI of the same name. *)
          Hashtbl.replace map n (pseudo ("latch:" ^ name))
        | Aig.And ->
          let f0, f1 = Aig.fanins g n in
          Hashtbl.replace map n (Aig.and_ u (xl f0) (xl f1))
      done;
      ( List.map (fun (name, l) -> (name, xl l)) (Aig.pos g),
        List.map
          (fun n ->
            let name, _, _, _ = Aig.latch_info g n in
            (name, xl (Aig.latch_next g n)))
          (Aig.latches g) )
    in
    let pos_a, next_a = copy a in
    let pos_b, next_b = copy b in
    let obligations =
      List.map
        (fun (name, la, lb) -> ("output " ^ name, la, lb))
        (align_pairs pos_a pos_b)
      @
      if sequential then
        List.map
          (fun (name, la, lb) -> ("next-state of latch " ^ name, la, lb))
          (align_pairs next_a next_b)
      else []
    in
    let s = new_solver () in
    let cnf = Sat.Cnf.create s u in
    let failed = ref None in
    List.iter
      (fun (tag, la, lb) ->
        if !failed = None then begin
          let x = Aig.xor_ u la lb in
          if x = Aig.false_ then () (* structurally identical: free UNSAT *)
          else
            match Sat.Solver.solve ~assumptions:[ Sat.Cnf.lit cnf x ] s with
            | Sat.Solver.Unsat -> ()
            | Sat.Solver.Sat -> failed := Some tag
        end)
      obligations;
    match !failed with
    | None -> `Proved
    | Some tag when sequential ->
      (* The witness state may be unreachable; induction is inconclusive,
         not a refutation. *)
      `Inconclusive tag
    | Some _ ->
      (* Combinational: the model's PI values are a real counterexample. *)
      let tape =
        [|
          List.map
            (fun name ->
              let v =
                match Hashtbl.find_opt leaf name with
                | None -> false (* input never referenced by either side *)
                | Some l ->
                  (match Sat.Cnf.var_of_node cnf (Aig.node_of_lit l) with
                   | None -> false
                   | Some v -> Sat.Solver.model_value s v)
              in
              (name, v))
            pi_a;
        |]
      in
      `Refuted (replay_tape a b tape)
  in
  (* Bounded model checking: unroll both netlists frame by frame into one
     fresh structurally-hashed miter AIG (frame-f inputs shared by name,
     initial states folded as constants), encode incrementally, and ask
     per frame whether any aligned output pair can differ. *)
  let bmc () =
    let s = new_solver () in
    let u = Aig.create () in
    let cnf = Sat.Cnf.create s u in
    let upis = Hashtbl.create 64 in
    let upi f name =
      match Hashtbl.find_opt upis (f, name) with
      | Some l -> l
      | None ->
        let l = Aig.pi u (Printf.sprintf "%s@%d" name f) in
        Hashtbl.replace upis (f, name) l;
        l
    in
    let mk g =
      let state = Hashtbl.create 16 in
      List.iter
        (fun n ->
          let _, init, _, _ = Aig.latch_info g n in
          Hashtbl.replace state n (if init then Aig.true_ else Aig.false_))
        (Aig.latches g);
      fun f ->
        let tbl = Hashtbl.create 256 in
        let xl l =
          let m = Hashtbl.find tbl (Aig.node_of_lit l) in
          if Aig.is_complemented l then Aig.not_ m else m
        in
        (* Node index order is topological (fanins precede uses). *)
        for n = 0 to Aig.num_nodes g - 1 do
          match Aig.kind g n with
          | Aig.Const -> Hashtbl.replace tbl n Aig.false_
          | Aig.Pi -> Hashtbl.replace tbl n (upi f (Aig.pi_name g n))
          | Aig.Latch -> Hashtbl.replace tbl n (Hashtbl.find state n)
          | Aig.And ->
            let f0, f1 = Aig.fanins g n in
            Hashtbl.replace tbl n (Aig.and_ u (xl f0) (xl f1))
        done;
        let nexts =
          List.map (fun n -> (n, xl (Aig.latch_next g n))) (Aig.latches g)
        in
        let pos = List.map (fun (name, l) -> (name, xl l)) (Aig.pos g) in
        List.iter (fun (n, l) -> Hashtbl.replace state n l) nexts;
        pos
    in
    let step_a = mk a and step_b = mk b in
    let rec frame f =
      if f >= frames then
        Undecided
          (Printf.sprintf
             "BMC: no counterexample within %d frames (not a proof)" frames)
      else begin
        let goal =
          Aig.or_list u
            (List.map
               (fun (_, la, lb) -> Aig.xor_ u la lb)
               (align_pairs (step_a f) (step_b f)))
        in
        match Sat.Solver.solve ~assumptions:[ Sat.Cnf.lit cnf goal ] s with
        | Sat.Solver.Unsat -> frame (f + 1)
        | Sat.Solver.Sat ->
          let tape =
            Array.init (f + 1) (fun c ->
                List.map
                  (fun name ->
                    let v =
                      match Aig.find_pi u (Printf.sprintf "%s@%d" name c) with
                      | None -> false (* input never referenced *)
                      | Some n ->
                        (match Sat.Cnf.var_of_node cnf n with
                         | None -> false
                         | Some v -> Sat.Solver.model_value s v)
                    in
                    (name, v))
                  pi_a)
          in
          Refuted (replay_tape a b tape)
      end
    in
    frame 0
  in
  if Aig.num_latches a = 0 && Aig.num_latches b = 0 then
    match try_induction ~sequential:false () with
    | `Proved -> finish Proved
    | `Refuted cex -> finish (Refuted cex)
    | `Inconclusive _ -> assert false
  else begin
    let la = latch_profile a and lb = latch_profile b in
    if la = lb && unique_names la then
      match try_induction ~sequential:true () with
      | `Proved -> finish Proved
      | `Inconclusive _ -> finish (bmc ())
      | `Refuted _ -> assert false
    else finish (bmc ())
  end

let rtl_vs_aig ?(cycles = 64) ?(runs = 8) ?(config = []) ~seed
    (d : Rtl.Design.t) g =
  let rec run_i i =
    if i >= runs then None
    else begin
      let rng = Random.State.make [| seed; i; 77 |] in
      let st = Rtl.Eval.create ~config d in
      (* Pre-draw the whole input tape so both sides see the same bits. *)
      let tape =
        Array.init cycles (fun _ ->
            List.map
              (fun (s : Rtl.Signal.t) ->
                ( s.name,
                  Bitvec.of_bits
                    (List.init s.width (fun _ -> Random.State.bool rng)) ))
              d.inputs)
      in
      let input cycle name =
        (* name is "sig[i]" *)
        let base, idx =
          match String.index_opt name '[' with
          | Some k ->
            ( String.sub name 0 k,
              int_of_string (String.sub name (k + 1) (String.length name - k - 2)) )
          | None -> (name, 0)
        in
        Bitvec.get (List.assoc base tape.(cycle)) idx
      in
      let aig_names, aig_rows = aig_run g ~cycles ~input in
      let aig_pos = Hashtbl.create (Array.length aig_names) in
      Array.iteri (fun k name -> Hashtbl.replace aig_pos name k) aig_names;
      let rec cycle_loop cycle aig_rows =
        match aig_rows with
        | [] -> None
        | (row : bool array) :: rest ->
          List.iter
            (fun (name, v) -> Rtl.Eval.set_input st name v)
            tape.(cycle);
          let bad =
            List.fold_left
              (fun acc ((s : Rtl.Signal.t), _) ->
                match acc with
                | Some _ -> acc
                | None ->
                  let v = Rtl.Eval.peek st s.name in
                  let rec check i =
                    if i >= s.width then None
                    else begin
                      let expected = Bitvec.get v i in
                      let name = Printf.sprintf "%s[%d]" s.name i in
                      let got = row.(Hashtbl.find aig_pos name) in
                      if got <> expected then
                        Some { cycle; output = name; got; expected }
                      else check (i + 1)
                    end
                  in
                  check 0)
              None d.outputs
          in
          (match bad with
           | Some m -> Some m
           | None ->
             Rtl.Eval.step st;
             cycle_loop (cycle + 1) rest)
      in
      match cycle_loop 0 aig_rows with
      | Some m -> Some m
      | None -> run_i (i + 1)
    end
  in
  run_i 0
