type options = {
  collapse_cap : int;
  espresso_iters : int;
  honor_tool_annots : bool;
  honor_generator_annots : bool;
  annot_width_cap : int;
  retime : bool;
  stateprop : bool;
  sweep_sat : bool;
  self_check : bool;
}

let default =
  {
    collapse_cap = 14;
    espresso_iters = 3;
    honor_tool_annots = true;
    honor_generator_annots = false;
    annot_width_cap = 32;
    retime = false;
    stateprop = true;
    sweep_sat = false;
    self_check = false;
  }

type result = {
  lowered : Lower.t;
  aig : Aig.t;
  report : Map.report;
}

exception Self_check_failed of Equiv.mismatch

let area r = Map.total r.report

(* --------------------------------------------------------------- tracing *)

(* Every pass boundary is a span carrying the AIG size before and after,
   so a trace alone answers "which pass spent the time and which removed
   the nodes" per pass and per iteration; the same deltas accumulate into
   process counters for the --metrics table. All of it is skipped (single
   atomic load) when observability is off. *)

let max_level g =
  let lv = Aig.levels g in
  let m = ref 0 in
  for i = 0 to Aig.num_nodes g - 1 do
    m := max !m (lv i)
  done;
  !m

let graph_args tag g =
  [
    (tag ^ "_ands", Obs.Span.Int (Aig.num_ands g));
    (tag ^ "_latches", Obs.Span.Int (Aig.num_latches g));
    (tag ^ "_level", Obs.Span.Int (max_level g));
  ]

let traced_pass name ~iter f g =
  if not (Obs.enabled ()) then f g
  else
    Obs.Span.with_span
      ~args:(("iter", Obs.Span.Int iter) :: graph_args "in" g)
      ("flow." ^ name)
      (fun () ->
        let t0 = Obs.now_us () in
        let g' = f g in
        let dt_s = (Obs.now_us () -. t0) /. 1e6 in
        Obs.Span.add_args
          (graph_args "out" g'
           @ [
               ("delta_ands", Obs.Span.Int (Aig.num_ands g' - Aig.num_ands g));
               ( "delta_latches",
                 Obs.Span.Int (Aig.num_latches g' - Aig.num_latches g) );
             ]);
        Obs.Metrics.incr
          ~by:(Aig.num_ands g - Aig.num_ands g')
          (Obs.Metrics.counter ("synth.flow." ^ name ^ ".ands_removed"));
        Obs.Metrics.incr
          ~by:(Aig.num_latches g - Aig.num_latches g')
          (Obs.Metrics.counter ("synth.flow." ^ name ^ ".latches_removed"));
        Obs.Metrics.observe
          (Obs.Metrics.histogram ("synth.flow." ^ name ^ "_s"))
          dt_s;
        g')

(* ---------------------------------------------------------------- flow *)

let compile ?(options = default) lib design =
  Obs.Span.with_span
    ~args:[ ("design", Obs.Span.Str design.Rtl.Design.name) ]
    "flow.compile"
  @@ fun () ->
  Obs.Metrics.incr (Obs.Metrics.counter "synth.flow.compiles");
  let lowered =
    Obs.Span.with_span "flow.lower" (fun () ->
        let l = Lower.run design in
        if Obs.enabled () then Obs.Span.add_args (graph_args "out" l.Lower.aig);
        l)
  in
  let honored =
    Annots.honored
      ~tool:options.honor_tool_annots
      ~generator:options.honor_generator_annots
      ~width_cap:options.annot_width_cap
      (Annots.extract lowered)
  in
  let relocate g = List.filter_map (Annots.relocate g) honored in
  let sweep g = Sweep.run ~sat:options.sweep_sat g in
  let g = traced_pass "sweep" ~iter:1 sweep lowered.Lower.aig in
  let g = if options.retime then traced_pass "retime" ~iter:1 Retime.run g else g in
  let g =
    if options.stateprop && honored <> [] then
      traced_pass "stateprop" ~iter:1
        (fun g -> Stateprop.run ~annots:(relocate g) g)
        g
    else g
  in
  let collapse iter g =
    traced_pass "collapse" ~iter
      (fun g ->
        Collapse.run ~cap:options.collapse_cap
          ~espresso_iters:options.espresso_iters ~annots:(relocate g) g)
      g
  in
  let g = traced_pass "sweep" ~iter:2 sweep (collapse 1 g) in
  let g = traced_pass "sweep" ~iter:3 sweep (collapse 2 g) in
  if options.self_check then
    Obs.Span.with_span "flow.self_check" (fun () ->
        match Equiv.aig_vs_aig ~seed:4242 lowered.Lower.aig g with
        | Some m -> raise (Self_check_failed m)
        | None -> ());
  let report =
    Obs.Span.with_span "flow.map" ~args:(if Obs.enabled () then graph_args "in" g else [])
      (fun () ->
        let r = Map.run lib g in
        if Obs.enabled () then
          Obs.Span.add_args [ ("area", Obs.Span.Float (Map.total r)) ];
        r)
  in
  { lowered; aig = g; report }
