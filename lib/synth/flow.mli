(** Canned synthesis flows (the "tool" the experiments drive).

    A flow lowers a design and runs:
    sweep → [retime] → [state propagation] → collapse → sweep → collapse →
    sweep → map.

    The option record exposes exactly the knobs the paper's experiments
    turn:
    - [honor_tool_annots]: whether FSM-style annotations the tool could
      infer from coding style are used (Design Compiler's automatic FSM
      detection on case-statement RTL). Default on.
    - [honor_generator_annots]: whether generator-supplied annotations
      (the manual [set_fsm_state_vector] / state annotation of the paper)
      are used. Default off — turning it on is the "State annotated"
      series of Figs. 6 and 8.
    - [annot_width_cap]: annotations on vectors wider than this are ignored
      (the paper's n ≤ 32 cliff).
    - [retime]: forward retiming before optimization (Fig. 8's "Retimed").
    - [sweep_sat]: SAT-validated sweep — simulation signatures propose
      constant/duplicate latches, CDCL induction disposes ({!Sweep.run}).
      Default off; off is bit-identical to the historical flow.
    - [self_check]: after optimizing, random-simulate the result against
      the freshly lowered netlist and raise on any mismatch. *)

type options = {
  collapse_cap : int;
  espresso_iters : int;
  honor_tool_annots : bool;
  honor_generator_annots : bool;
  annot_width_cap : int;
  retime : bool;
  stateprop : bool;
  sweep_sat : bool;
  self_check : bool;
}

val default : options
(** [{ collapse_cap = 14; espresso_iters = 3; honor_tool_annots = true;
      honor_generator_annots = false; annot_width_cap = 32; retime = false;
      stateprop = true; sweep_sat = false; self_check = false }] *)

type result = {
  lowered : Lower.t;  (** pre-optimization netlist *)
  aig : Aig.t;        (** optimized netlist *)
  report : Map.report;
}

exception Self_check_failed of Equiv.mismatch

val compile : ?options:options -> Cells.Library.t -> Rtl.Design.t -> result

val area : result -> float
(** Total mapped area, µm². *)
