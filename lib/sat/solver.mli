(** Conflict-driven clause learning SAT solver.

    A dependency-free MiniSat-style core: two-watched-literal unit
    propagation, first-UIP conflict analysis with clause learning,
    VSIDS-style variable activities with phase saving, and Luby restarts.
    Variables are positive integers allocated by {!new_var}; literals use
    the DIMACS convention ([+v] / [-v]).

    The solver is incremental in the assumption style: clauses accumulate
    across {!solve} calls (learned clauses are kept, so related queries get
    cheaper), and each call may pin a set of assumption literals that hold
    for that call only. This is how the equivalence checker discharges one
    miter output (or one BMC frame) at a time over a single shared CNF.

    Every completed {!solve} accounts its work to the [sat.solver.*]
    {!Obs.Metrics} counters (conflicts, decisions, propagations, learned
    clauses) and the [sat.solver.solve_s] histogram, so solver effort shows
    up in traces and metric tables alongside the synthesis passes. *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; the first call returns 1. *)

val nvars : t -> int

val ok : t -> bool
(** [false] once the clause database is unsatisfiable at level 0 (an empty
    clause was added or derived); {!solve} then returns [Unsat] without
    search. *)

val add_clause : t -> int list -> unit
(** Add a clause over existing variables. Duplicate literals are merged, a
    tautological clause (contains both [v] and [-v]) is dropped, literals
    already false at level 0 are removed, and the empty clause makes the
    solver permanently {!ok}[ = false].
    @raise Invalid_argument on literal 0 or a variable never allocated. *)

type result = Sat | Unsat

val solve : ?assumptions:int list -> t -> result
(** Decide the clause database under the given assumption literals.
    [Unsat] means no model satisfies clauses + assumptions (learned clauses
    never depend on assumptions, so the database stays reusable).
    @raise Invalid_argument on an assumption over an unallocated var. *)

val model_value : t -> int -> bool
(** Value of a variable in the last [Sat] model.
    @raise Invalid_argument if the last {!solve} did not return [Sat]. *)

type stats = {
  solves : int;
  decisions : int;
  conflicts : int;
  propagations : int;  (** literals enqueued by unit propagation *)
  learned : int;  (** learned clauses recorded *)
  learned_lits : int;
  restarts : int;
  max_vars : int;
  solve_s : float;  (** cumulative wall time inside {!solve} *)
}

val stats : t -> stats
