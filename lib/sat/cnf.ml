type t = {
  solver : Solver.t;
  graph : Aig.t;
  vars : (int, int) Hashtbl.t;  (* AIG node -> solver variable *)
}

let create solver graph = { solver; graph; vars = Hashtbl.create 256 }

let solver t = t.solver

let var_of_node t n = Hashtbl.find_opt t.vars n

(* Encode the cone of [root] iteratively (AIG depth can exceed the OCaml
   stack on unrolled netlists). A node is popped only once both fanins are
   encoded; the work stack never holds a node twice thanks to the
   [vars] membership check at push time being re-done at pop time. *)
let rec encode_node t root =
  let stack = ref [ root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | n :: rest ->
      if Hashtbl.mem t.vars n then stack := rest
      else begin
        match Aig.kind t.graph n with
        | Aig.Const ->
          (* node 0: a variable unit-forced to false *)
          let v = Solver.new_var t.solver in
          Hashtbl.replace t.vars n v;
          Solver.add_clause t.solver [ -v ];
          stack := rest
        | Aig.Pi | Aig.Latch ->
          Hashtbl.replace t.vars n (Solver.new_var t.solver);
          stack := rest
        | Aig.And ->
          let f0, f1 = Aig.fanins t.graph n in
          let n0 = Aig.node_of_lit f0 and n1 = Aig.node_of_lit f1 in
          let p0 = Hashtbl.mem t.vars n0 and p1 = Hashtbl.mem t.vars n1 in
          if p0 && p1 then begin
            let v = Solver.new_var t.solver in
            Hashtbl.replace t.vars n v;
            let l0 = lit_of t f0 and l1 = lit_of t f1 in
            (* v <-> l0 /\ l1 *)
            Solver.add_clause t.solver [ -v; l0 ];
            Solver.add_clause t.solver [ -v; l1 ];
            Solver.add_clause t.solver [ v; -l0; -l1 ];
            stack := rest
          end
          else begin
            let todo = if p0 then [] else [ n0 ] in
            let todo = if p1 then todo else n1 :: todo in
            stack := todo @ !stack
          end
      end
  done;
  Hashtbl.find t.vars root

and lit_of t l =
  let v = Hashtbl.find t.vars (Aig.node_of_lit l) in
  if Aig.is_complemented l then -v else v

let lit t l =
  let v = encode_node t (Aig.node_of_lit l) in
  if Aig.is_complemented l then -v else v

let constrain t l b =
  let sl = lit t l in
  Solver.add_clause t.solver [ (if b then sl else -sl) ]
