(** Tseitin CNF encoding of {!Aig} combinational logic.

    Maps AIG nodes to solver variables on demand: requesting the solver
    literal of an AIG literal encodes exactly the transitive fan-in cone of
    that literal (one variable and three clauses per AND gate), memoized,
    so repeated queries over a growing graph — the incremental BMC
    unrolling — only ever pay for new nodes. The AIG's structural hashing
    has already performed constant folding and sharing; what remains of a
    constant node is a single unit-forced variable, which the solver's
    level-0 propagation then specializes the clause database against. *)

type t

val create : Solver.t -> Aig.t -> t
(** The graph may keep growing after [create]; new nodes are encoded when
    first requested. *)

val lit : t -> Aig.lit -> int
(** Solver literal for an AIG literal, encoding its cone on demand. *)

val constrain : t -> Aig.lit -> bool -> unit
(** Unit clause pinning an AIG literal's value (e.g. a configuration latch
    bound to its microcode bit). *)

val var_of_node : t -> int -> int option
(** The solver variable already allocated for an AIG node, if its cone was
    encoded — the model-extraction read path ([None] means the node was
    irrelevant to every query, hence unconstrained). *)

val solver : t -> Solver.t
