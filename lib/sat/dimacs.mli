(** DIMACS CNF interchange.

    The de-facto text format of the SAT world: writing it makes every CNF
    this repository builds (Tseitin-encoded miters, BMC unrollings)
    consumable by external solvers, and reading it lets standard benchmark
    files run through {!Solver}. The printer is canonical — one clause per
    line, literals in the stored order, a single [p cnf] header — so its
    output is usable as a golden-file fixture. *)

type t = {
  nvars : int;
  clauses : int list list;
}

exception Parse_error of int * string
(** Line number and message. *)

val parse : string -> t
(** Accepts comment lines ([c ...]), a [p cnf V C] header, and
    whitespace-separated clauses terminated by [0] (clauses may span
    lines). The declared clause count is checked.
    @raise Parse_error on malformed input. *)

val print : t -> string

val of_file : string -> t
val to_file : string -> t -> unit

val load : Solver.t -> t -> unit
(** Allocate [nvars] fresh solver variables (the solver must be fresh:
    variable [i] of the file maps to solver variable [i]) and add every
    clause. @raise Invalid_argument if the solver already has variables. *)
