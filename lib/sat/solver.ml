(* MiniSat-style CDCL. Internal literal encoding: variable v (1-based)
   yields literals 2v (positive) and 2v+1 (negative); [l lxor 1] negates.
   All per-variable and per-literal state lives in flat arrays grown
   geometrically by [new_var], so propagation touches no boxed data. *)

type ivec = { mutable a : int array; mutable n : int }

let ivec () = { a = Array.make 4 0; n = 0 }

let ipush v x =
  if v.n = Array.length v.a then begin
    let a = Array.make (2 * v.n) 0 in
    Array.blit v.a 0 a 0 v.n;
    v.a <- a
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

type stats = {
  solves : int;
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;
  learned_lits : int;
  restarts : int;
  max_vars : int;
  solve_s : float;
}

type t = {
  (* clause arena: learned and problem clauses share it; indices are
     stable because nothing is ever deleted. *)
  mutable clauses : int array array;
  mutable n_clauses : int;
  (* per-variable state, indexed 1..nvars *)
  mutable value : int array;  (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array;  (* clause index, -1 for decisions *)
  mutable activity : float array;
  mutable polarity : bool array;  (* saved phase *)
  mutable seen : bool array;
  mutable hpos : int array;  (* position in [heap], -1 if absent *)
  (* per-literal state, indexed by internal literal *)
  mutable watches : ivec array;
  (* trail *)
  mutable trail : int array;
  mutable trail_n : int;
  trail_lim : ivec;
  mutable qhead : int;
  (* decision heap (max-activity) *)
  heap : ivec;
  mutable var_inc : float;
  mutable nvars : int;
  mutable ok : bool;
  mutable model : bool array;
  mutable have_model : bool;
  (* statistics *)
  mutable st_solves : int;
  mutable st_decisions : int;
  mutable st_conflicts : int;
  mutable st_propagations : int;
  mutable st_learned : int;
  mutable st_learned_lits : int;
  mutable st_restarts : int;
  mutable st_solve_s : float;
}

let create () =
  {
    clauses = Array.make 16 [||];
    n_clauses = 0;
    value = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    activity = Array.make 8 0.0;
    polarity = Array.make 8 false;
    seen = Array.make 8 false;
    hpos = Array.make 8 (-1);
    watches = Array.init 16 (fun _ -> ivec ());
    trail = Array.make 8 0;
    trail_n = 0;
    trail_lim = ivec ();
    qhead = 0;
    heap = ivec ();
    var_inc = 1.0;
    nvars = 0;
    ok = true;
    model = [||];
    have_model = false;
    st_solves = 0;
    st_decisions = 0;
    st_conflicts = 0;
    st_propagations = 0;
    st_learned = 0;
    st_learned_lits = 0;
    st_restarts = 0;
    st_solve_s = 0.0;
  }

let nvars s = s.nvars
let ok s = s.ok

(* ------------------------------------------------------- decision heap *)

let heap_lt s u v = s.activity.(u) > s.activity.(v)

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt s s.heap.a.(i) s.heap.a.(p) then begin
      let x = s.heap.a.(i) in
      s.heap.a.(i) <- s.heap.a.(p);
      s.heap.a.(p) <- x;
      s.hpos.(s.heap.a.(i)) <- i;
      s.hpos.(s.heap.a.(p)) <- p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap.n && heap_lt s s.heap.a.(l) s.heap.a.(!best) then best := l;
  if r < s.heap.n && heap_lt s s.heap.a.(r) s.heap.a.(!best) then best := r;
  if !best <> i then begin
    let x = s.heap.a.(i) in
    s.heap.a.(i) <- s.heap.a.(!best);
    s.heap.a.(!best) <- x;
    s.hpos.(s.heap.a.(i)) <- i;
    s.hpos.(s.heap.a.(!best)) <- !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.hpos.(v) < 0 then begin
    ipush s.heap v;
    s.hpos.(v) <- s.heap.n - 1;
    heap_up s (s.heap.n - 1)
  end

let heap_pop s =
  let top = s.heap.a.(0) in
  s.heap.n <- s.heap.n - 1;
  s.hpos.(top) <- -1;
  if s.heap.n > 0 then begin
    s.heap.a.(0) <- s.heap.a.(s.heap.n);
    s.hpos.(s.heap.a.(0)) <- 0;
    heap_down s 0
  end;
  top

(* ----------------------------------------------------------- variables *)

let grow_vars s want =
  let cap = Array.length s.value in
  if want >= cap then begin
    let ncap = max (2 * cap) (want + 1) in
    let gi a d =
      let b = Array.make ncap d in
      Array.blit a 0 b 0 cap;
      b
    in
    s.value <- gi s.value (-1);
    s.level <- gi s.level 0;
    s.reason <- gi s.reason (-1);
    s.polarity <- gi s.polarity false;
    s.seen <- gi s.seen false;
    s.hpos <- gi s.hpos (-1);
    let act = Array.make ncap 0.0 in
    Array.blit s.activity 0 act 0 cap;
    s.activity <- act;
    let nw = Array.init (2 * ncap) (fun _ -> ivec ()) in
    Array.blit s.watches 0 nw 0 (Array.length s.watches);
    s.watches <- nw;
    let tr = Array.make ncap 0 in
    Array.blit s.trail 0 tr 0 s.trail_n;
    s.trail <- tr
  end

let new_var s =
  let v = s.nvars + 1 in
  grow_vars s v;
  s.nvars <- v;
  heap_insert s v;
  v

let ilit l =
  if l > 0 then 2 * l
  else if l < 0 then (2 * -l) + 1
  else invalid_arg "Sat.Solver: literal 0"

let check_lit s l =
  let v = abs l in
  if v = 0 || v > s.nvars then
    invalid_arg (Printf.sprintf "Sat.Solver: unknown literal %d" l)

(* value of an internal literal: -1 / 0 / 1 *)
let lit_value s l =
  let v = s.value.(l lsr 1) in
  if v < 0 then -1 else v lxor (l land 1)

let decision_level s = s.trail_lim.n

let enqueue s l reason =
  let v = l lsr 1 in
  s.value.(v) <- (l land 1) lxor 1;
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.trail.(s.trail_n) <- l;
  s.trail_n <- s.trail_n + 1

(* --------------------------------------------------------- propagation *)

(* Returns the index of a conflicting clause, or -1. *)
let propagate s =
  let confl = ref (-1) in
  while !confl < 0 && s.qhead < s.trail_n do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    let false_lit = p lxor 1 in
    let ws = s.watches.(false_lit) in
    let i = ref 0 and j = ref 0 in
    while !i < ws.n do
      let ci = ws.a.(!i) in
      incr i;
      let lits = s.clauses.(ci) in
      (* make the false literal lits.(1) *)
      if lits.(0) = false_lit then begin
        lits.(0) <- lits.(1);
        lits.(1) <- false_lit
      end;
      if lit_value s lits.(0) = 1 then begin
        (* satisfied; keep the watch *)
        ws.a.(!j) <- ci;
        incr j
      end
      else begin
        (* look for a non-false literal to watch instead *)
        let len = Array.length lits in
        let k = ref 2 in
        while !k < len && lit_value s lits.(!k) = 0 do
          incr k
        done;
        if !k < len then begin
          lits.(1) <- lits.(!k);
          lits.(!k) <- false_lit;
          ipush s.watches.(lits.(1)) ci
        end
        else begin
          (* unit or conflicting; watch stays *)
          ws.a.(!j) <- ci;
          incr j;
          if lit_value s lits.(0) = 0 then begin
            confl := ci;
            (* copy the remaining watches back and stop *)
            while !i < ws.n do
              ws.a.(!j) <- ws.a.(!i);
              incr j;
              incr i
            done;
            s.qhead <- s.trail_n
          end
          else begin
            s.st_propagations <- s.st_propagations + 1;
            enqueue s lits.(0) ci
          end
        end
      end
    done;
    ws.n <- !j
  done;
  !confl

(* ------------------------------------------------------------ activity *)

let var_rescale s =
  for v = 1 to s.nvars do
    s.activity.(v) <- s.activity.(v) *. 1e-100
  done;
  s.var_inc <- s.var_inc *. 1e-100

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then var_rescale s;
  if s.hpos.(v) >= 0 then heap_up s s.hpos.(v)

let var_decay s = s.var_inc <- s.var_inc /. 0.95

(* --------------------------------------------------------- backtracking *)

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = s.trail_lim.a.(lvl) in
    for c = s.trail_n - 1 downto bound do
      let v = s.trail.(c) lsr 1 in
      s.polarity.(v) <- s.value.(v) = 1;
      s.value.(v) <- -1;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    s.trail_n <- bound;
    s.qhead <- bound;
    s.trail_lim.n <- lvl
  end

(* ----------------------------------------------------------- analysis *)

(* First-UIP learning. Returns the learned clause (asserting literal
   first, a literal of the backjump level second) and the backjump
   level. *)
let analyze s confl =
  let learnt = ivec () in
  ipush learnt 0 (* slot for the asserting literal *);
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let index = ref (s.trail_n - 1) in
  let continue = ref true in
  while !continue do
    let lits = s.clauses.(!confl) in
    let start = if !p < 0 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = q lsr 1 in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= decision_level s then incr counter
        else ipush learnt q
      end
    done;
    (* next literal to resolve on *)
    while not s.seen.(s.trail.(!index) lsr 1) do
      decr index
    done;
    p := s.trail.(!index);
    decr index;
    s.seen.(!p lsr 1) <- false;
    decr counter;
    if !counter <= 0 then continue := false
    else confl := s.reason.(!p lsr 1)
  done;
  learnt.a.(0) <- !p lxor 1;
  (* backjump level = max level among the other literals; put one such
     literal at index 1 so it is watched. *)
  let btlevel = ref 0 in
  for k = 1 to learnt.n - 1 do
    let lv = s.level.(learnt.a.(k) lsr 1) in
    if lv > !btlevel then begin
      btlevel := lv;
      let x = learnt.a.(1) in
      learnt.a.(1) <- learnt.a.(k);
      learnt.a.(k) <- x
    end
  done;
  (* clear seen flags of the learnt literals *)
  for k = 0 to learnt.n - 1 do
    s.seen.(learnt.a.(k) lsr 1) <- false
  done;
  (Array.sub learnt.a 0 learnt.n, !btlevel)

(* ------------------------------------------------------------- clauses *)

let attach s lits =
  if s.n_clauses = Array.length s.clauses then begin
    let a = Array.make (2 * s.n_clauses) [||] in
    Array.blit s.clauses 0 a 0 s.n_clauses;
    s.clauses <- a
  end;
  s.clauses.(s.n_clauses) <- lits;
  ipush s.watches.(lits.(0)) s.n_clauses;
  ipush s.watches.(lits.(1)) s.n_clauses;
  s.n_clauses <- s.n_clauses + 1;
  s.n_clauses - 1

let add_clause s lits =
  List.iter (check_lit s) lits;
  if s.ok then begin
    assert (decision_level s = 0);
    (* normalize: dedupe, drop tautologies and false-at-level-0 lits *)
    let ils = List.sort_uniq compare (List.map ilit lits) in
    let taut = List.exists (fun l -> List.mem (l lxor 1) ils) ils in
    let sat_already = List.exists (fun l -> lit_value s l = 1) ils in
    if not (taut || sat_already) then begin
      match List.filter (fun l -> lit_value s l <> 0) ils with
      | [] -> s.ok <- false
      | [ l ] ->
        enqueue s l (-1);
        if propagate s >= 0 then s.ok <- false
      | l0 :: l1 :: rest ->
        ignore (attach s (Array.of_list (l0 :: l1 :: rest)))
    end
  end

(* --------------------------------------------------------------- solve *)

(* Luby restart sequence, 1-based: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do
    incr k
  done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - ((1 lsl (!k - 1)) - 1))

let now_s () = Obs.now_us () /. 1e6

type result = Sat | Unsat

let record_metrics s ~d0 ~c0 ~p0 ~l0 ~t0 =
  s.st_solve_s <- s.st_solve_s +. (now_s () -. t0);
  if Obs.enabled () then begin
    let bump name by =
      if by > 0 then Obs.Metrics.incr ~by (Obs.Metrics.counter name)
    in
    Obs.Metrics.incr (Obs.Metrics.counter "sat.solver.solves");
    bump "sat.solver.decisions" (s.st_decisions - d0);
    bump "sat.solver.conflicts" (s.st_conflicts - c0);
    bump "sat.solver.propagations" (s.st_propagations - p0);
    bump "sat.solver.learned_clauses" (s.st_learned - l0);
    Obs.Metrics.observe
      (Obs.Metrics.histogram "sat.solver.solve_s")
      (now_s () -. t0);
    Obs.Metrics.set_max
      (Obs.Metrics.gauge "sat.solver.vars")
      (float_of_int s.nvars)
  end

let solve ?(assumptions = []) s =
  List.iter (check_lit s) assumptions;
  let t0 = now_s () in
  let d0 = s.st_decisions
  and c0 = s.st_conflicts
  and p0 = s.st_propagations
  and l0 = s.st_learned in
  s.st_solves <- s.st_solves + 1;
  s.have_model <- false;
  let finish r =
    cancel_until s 0;
    record_metrics s ~d0 ~c0 ~p0 ~l0 ~t0;
    r
  in
  if not s.ok then finish Unsat
  else begin
    cancel_until s 0;
    let assumptions = Array.of_list (List.map ilit assumptions) in
    let n_assumptions = Array.length assumptions in
    let result = ref None in
    let conflicts_here = ref 0 in
    let restart_idx = ref 1 in
    let budget = ref (100 * luby 1) in
    while !result = None do
      let confl = propagate s in
      if confl >= 0 then begin
        s.st_conflicts <- s.st_conflicts + 1;
        incr conflicts_here;
        if decision_level s = 0 then begin
          s.ok <- false;
          result := Some Unsat
        end
        else begin
          let learnt, btlevel = analyze s confl in
          cancel_until s btlevel;
          s.st_learned <- s.st_learned + 1;
          s.st_learned_lits <- s.st_learned_lits + Array.length learnt;
          if Array.length learnt = 1 then enqueue s learnt.(0) (-1)
          else begin
            let ci = attach s learnt in
            enqueue s learnt.(0) ci
          end;
          var_decay s;
          if !conflicts_here >= !budget then begin
            (* Luby restart *)
            s.st_restarts <- s.st_restarts + 1;
            incr restart_idx;
            budget := 100 * luby !restart_idx;
            conflicts_here := 0;
            cancel_until s 0
          end
        end
      end
      else if decision_level s < n_assumptions then begin
        (* next assumption becomes the next decision *)
        let p = assumptions.(decision_level s) in
        match lit_value s p with
        | 1 -> ipush s.trail_lim s.trail_n (* already true: dummy level *)
        | 0 -> result := Some Unsat
        | _ ->
          s.st_decisions <- s.st_decisions + 1;
          ipush s.trail_lim s.trail_n;
          enqueue s p (-1)
      end
      else begin
        (* pick a branching variable *)
        let v = ref 0 in
        while !v = 0 && s.heap.n > 0 do
          let cand = heap_pop s in
          if s.value.(cand) < 0 then v := cand
        done;
        if !v = 0 then begin
          (* complete model *)
          let m = Array.make (s.nvars + 1) false in
          for u = 1 to s.nvars do
            m.(u) <- s.value.(u) = 1
          done;
          s.model <- m;
          s.have_model <- true;
          result := Some Sat
        end
        else begin
          s.st_decisions <- s.st_decisions + 1;
          ipush s.trail_lim s.trail_n;
          let l = (2 * !v) lor if s.polarity.(!v) then 0 else 1 in
          enqueue s l (-1)
        end
      end
    done;
    finish (Option.get !result)
  end

let model_value s v =
  if not s.have_model then
    invalid_arg "Sat.Solver.model_value: last solve was not Sat";
  if v <= 0 || v > s.nvars then invalid_arg "Sat.Solver.model_value";
  s.model.(v)

let stats s =
  {
    solves = s.st_solves;
    decisions = s.st_decisions;
    conflicts = s.st_conflicts;
    propagations = s.st_propagations;
    learned = s.st_learned;
    learned_lits = s.st_learned_lits;
    restarts = s.st_restarts;
    max_vars = s.nvars;
    solve_s = s.st_solve_s;
  }
