type t = {
  nvars : int;
  clauses : int list list;
}

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

let parse text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let clauses = ref [] in
  let current = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        if !header <> None then fail lineno "duplicate header";
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; v; c ] ->
          (match (int_of_string_opt v, int_of_string_opt c) with
           | Some v, Some c when v >= 0 && c >= 0 -> header := Some (v, c)
           | _ -> fail lineno "malformed p cnf header")
        | _ -> fail lineno "malformed p cnf header"
      end
      else begin
        if !header = None then fail lineno "clause before p cnf header";
        let nvars = fst (Option.get !header) in
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> fail lineno "bad literal %S" tok
               | Some 0 ->
                 clauses := List.rev !current :: !clauses;
                 current := []
               | Some l ->
                 if abs l > nvars then
                   fail lineno "literal %d exceeds declared %d vars" l nvars;
                 current := l :: !current)
      end)
    lines;
  let nlines = List.length lines in
  if !current <> [] then fail nlines "unterminated clause (missing 0)";
  match !header with
  | None -> fail nlines "missing p cnf header"
  | Some (nvars, c) ->
    let clauses = List.rev !clauses in
    if List.length clauses <> c then
      fail nlines "declared %d clauses, found %d" c (List.length clauses);
    { nvars; clauses }

let print { nvars; clauses } =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let of_file path = parse (In_channel.with_open_text path In_channel.input_all)

let to_file path t =
  Out_channel.with_open_text path (fun oc -> output_string oc (print t))

let load solver t =
  if Solver.nvars solver <> 0 then
    invalid_arg "Sat.Dimacs.load: solver already has variables";
  for _ = 1 to t.nvars do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) t.clauses
