(** Value-change-dump (VCD) waveform output.

    Runs a design on a stimulus and records the watched signals in the
    standard VCD format (IEEE 1364), viewable with GTKWave and friends. One
    clock cycle spans 10 time units, with the implicit [clk] toggling at
    mid-cycle; watched values are sampled before each rising edge. *)

val of_samples :
  name:string ->
  signals:(string * int) list ->
  Bitvec.t list list ->
  string
(** [of_samples ~name ~signals rows] — the low-level emitter: one [(signal
    name, width)] per column, one row of sampled values per cycle. Used
    directly when the run cannot be replayed by {!Eval.run} (e.g. fault
    injection poking register state mid-run).
    @raise Invalid_argument when a row's length differs from [signals]. *)

val signal_width : Design.t -> string -> int option
(** Width of a named input, net, register or output; [None] if unknown. *)

val of_run :
  ?config:(string * Bitvec.t array) list ->
  Design.t ->
  stimulus:(string * Bitvec.t) list list ->
  watch:string list ->
  string
(** [of_run d ~stimulus ~watch] — one stimulus association list per cycle
    (as in {!Eval.run}); [watch] lists the signals to record (inputs, nets,
    registers or outputs). Only value *changes* are emitted, per the
    format. *)

val to_file :
  ?config:(string * Bitvec.t array) list ->
  string ->
  Design.t ->
  stimulus:(string * Bitvec.t) list list ->
  watch:string list ->
  unit
