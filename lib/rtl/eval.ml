module Smap = Map.Make (String)

(* Simulation volume metrics: how many interpreter instances ran and how
   many cycles they stepped (the fault campaigns' dominant cost). *)
let m_instances = Obs.Metrics.counter "rtl.eval.instances"
let m_cycles = Obs.Metrics.counter "rtl.eval.cycles"

type state = {
  d : Design.t;
  ordered_nets : (Signal.t * Expr.t) list;
  tables : (string, Bitvec.t array) Hashtbl.t;
  mutable inputs : Bitvec.t Smap.t;
  mutable regs : Bitvec.t Smap.t;
  mutable rst : bool;
}

let create ?(config = []) d =
  Design.validate d;
  let tables = Hashtbl.create 8 in
  List.iter
    (fun (t : Design.table) ->
      match t.storage with
      | Design.Rom contents -> Hashtbl.replace tables t.tname contents
      | Design.Config ->
        (match List.assoc_opt t.tname config with
         | Some contents ->
           if Array.length contents <> t.depth then
             invalid_arg ("Eval.create: config size mismatch for " ^ t.tname);
           Array.iter
             (fun v ->
               if Bitvec.width v <> t.twidth then
                 invalid_arg ("Eval.create: config width mismatch for " ^ t.tname))
             contents;
           Hashtbl.replace tables t.tname contents
         | None -> ()))
    d.tables;
  let inputs =
    List.fold_left
      (fun m (s : Signal.t) -> Smap.add s.name (Bitvec.zero s.width) m)
      Smap.empty d.inputs
  in
  let regs =
    List.fold_left
      (fun m (r : Design.reg) -> Smap.add r.q.Signal.name r.init m)
      Smap.empty d.regs
  in
  Obs.Metrics.incr m_instances;
  { d; ordered_nets = Design.net_order d; tables; inputs; regs; rst = false }

let design st = st.d

let set_input st name v =
  match List.find_opt (fun (s : Signal.t) -> s.name = name) st.d.inputs with
  | None -> invalid_arg ("Eval.set_input: unknown input " ^ name)
  | Some s ->
    if Bitvec.width v <> s.width then
      invalid_arg ("Eval.set_input: width mismatch on " ^ name);
    st.inputs <- Smap.add name v st.inputs

let peek_reg st name =
  match Smap.find_opt name st.regs with
  | Some v -> v
  | None -> invalid_arg ("Eval.peek_reg: unknown register " ^ name)

let poke_reg st name v =
  match List.find_opt (fun (r : Design.reg) -> r.q.Signal.name = name) st.d.regs with
  | None -> invalid_arg ("Eval.poke_reg: unknown register " ^ name)
  | Some r ->
    if Bitvec.width v <> r.q.Signal.width then
      invalid_arg ("Eval.poke_reg: width mismatch on " ^ name);
    st.regs <- Smap.add name v st.regs

let read_table st name addr =
  match Hashtbl.find_opt st.tables name with
  | None -> invalid_arg ("Eval: reading unbound configuration table " ^ name)
  | Some contents ->
    let t = Design.find_table st.d name in
    let idx = Bitvec.to_int addr in
    if idx < Array.length contents then contents.(idx) else Bitvec.zero t.twidth

(* Environment of all combinational values for the current cycle. *)
let comb_env st =
  let env = ref st.inputs in
  Smap.iter (fun k v -> env := Smap.add k v !env) st.regs;
  let lookup (s : Signal.t) =
    match Smap.find_opt s.name !env with
    | Some v -> v
    | None -> invalid_arg ("Eval: use of undriven signal " ^ s.name)
  in
  List.iter
    (fun ((s : Signal.t), e) ->
      env := Smap.add s.name (Expr.eval lookup (read_table st) e) !env)
    st.ordered_nets;
  !env

let eval_in_env st env e =
  let lookup (s : Signal.t) =
    match Smap.find_opt s.Signal.name env with
    | Some v -> v
    | None -> invalid_arg ("Eval: use of undriven signal " ^ s.Signal.name)
  in
  Expr.eval lookup (read_table st) e

let peek st name =
  let env = comb_env st in
  match Smap.find_opt name env with
  | Some v -> v
  | None ->
    (match List.find_opt (fun ((s : Signal.t), _) -> s.name = name) st.d.outputs with
     | Some (_, e) -> eval_in_env st env e
     | None -> invalid_arg ("Eval.peek: unknown signal " ^ name))

let step st =
  Obs.Metrics.incr m_cycles;
  let env = comb_env st in
  let next (r : Design.reg) =
    let old = Smap.find r.q.Signal.name st.regs in
    if st.rst && r.reset <> Design.No_reset then r.init
    else begin
      let enabled =
        match r.enable with
        | None -> true
        | Some en -> Bitvec.reduce_or (eval_in_env st env en)
      in
      if enabled then eval_in_env st env r.d else old
    end
  in
  let updates = List.map (fun r -> (r.Design.q.Signal.name, next r)) st.d.regs in
  st.regs <-
    List.fold_left (fun m (k, v) -> Smap.add k v m) st.regs updates

let reset st =
  st.rst <- true;
  step st;
  st.rst <- false

let run st ~stimulus ~watch =
  let cycle alist =
    List.iter (fun (name, v) -> set_input st name v) alist;
    let row = List.map (peek st) watch in
    step st;
    row
  in
  List.map cycle stimulus
