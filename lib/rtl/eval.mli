(** Cycle-accurate RTL interpreter.

    Reference semantics for designs: used by tests to check that lowering,
    partial evaluation and every optimization preserve behaviour, and by the
    examples to actually run controllers.

    Out-of-range table reads (possible when the depth is not a power of two)
    return zero; generators in this project avoid them, and the lowering makes
    the same choice so simulator and netlist agree. *)

type state

val create : ?config:(string * Bitvec.t array) list -> Design.t -> state
(** Fresh state: registers hold their [init] values, inputs are zero.
    [config] binds the contents of [Config] tables; reading an unbound
    configuration table raises [Invalid_argument]. *)

val design : state -> Design.t

val set_input : state -> string -> Bitvec.t -> unit
(** @raise Invalid_argument on unknown port or wrong width. *)

val peek_reg : state -> string -> Bitvec.t
(** Current stored value of a register, without combinational evaluation.
    @raise Invalid_argument on unknown register. *)

val poke_reg : state -> string -> Bitvec.t -> unit
(** Overwrite a register's stored value — the fault-injection hook
    ({!Fault} upsets register state between clock edges with it). Takes
    effect for the current cycle's combinational evaluation.
    @raise Invalid_argument on unknown register or wrong width. *)

val peek : state -> string -> Bitvec.t
(** Current value of any input, net, register or output, combinationally
    evaluated from current inputs and register state. *)

val step : state -> unit
(** One clock edge: registers capture their next values. *)

val reset : state -> unit
(** Pulse the global reset for one cycle (registers with a reset style load
    [init]; [No_reset] registers keep their value). *)

val run :
  state ->
  stimulus:(string * Bitvec.t) list list ->
  watch:string list ->
  Bitvec.t list list
(** [run st ~stimulus ~watch] applies one stimulus alist per cycle, samples
    the watched signals (before the clock edge), then steps; returns one
    sample row per cycle. *)
