type row = {
  m : int;
  n : int;
  s : int;
  seed : int;
  direct_area : (float, string) result;
  regular_area : (float, string) result;
  annotated_area : (float, string) result;
}

let quick_grid = [ (2, 2, 2); (2, 8, 3); (2, 16, 17); (8, 8, 8); (8, 2, 17) ]

let run ?(seeds = [ 0; 1; 2 ]) ?(grid = Workload.Rand_fsm.paper_grid) () =
  let points =
    List.concat_map (fun cell -> List.map (fun seed -> (cell, seed)) seeds) grid
  in
  let jobs =
    List.concat_map
      (fun ((m, n, s), seed) ->
        let fsm =
          Workload.Rand_fsm.generate ~seed ~num_inputs:m ~num_outputs:n
            ~num_states:s
        in
        let bind d =
          Synth.Partial_eval.bind_tables d (Core.Fsm_ir.config_bindings fsm)
        in
        [ Engine.job (Core.Fsm_ir.to_direct_rtl fsm);
          Engine.job (bind (Core.Fsm_ir.to_flexible_rtl ~annotate:false fsm));
          Engine.job ~options:Exp_common.annotated_flow
            (bind (Core.Fsm_ir.to_flexible_rtl ~annotate:true fsm)) ])
      points
  in
  let rec pair points areas =
    match (points, areas) with
    | [], [] -> []
    | ((m, n, s), seed) :: ps,
      direct_area :: regular_area :: annotated_area :: rest ->
      { m; n; s; seed; direct_area; regular_area; annotated_area }
      :: pair ps rest
    | _ -> assert false
  in
  pair points (Exp_common.areas_result jobs)

let print rows =
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.m;
          string_of_int r.n;
          string_of_int r.s;
          string_of_int r.seed;
          Exp_common.fmt_area_result r.direct_area;
          Exp_common.fmt_area_result r.regular_area;
          Exp_common.fmt_area_result r.annotated_area;
          Exp_common.fmt_ratio_result r.regular_area r.direct_area;
          Exp_common.fmt_ratio_result r.annotated_area r.direct_area;
        ])
      rows
  in
  Exp_common.printf
    "== Fig. 6: FSMs, flexible tables vs direct case style ==@.%s@."
    (Report.Table.render
       ~header:
         [ "m"; "n"; "s"; "seed"; "direct"; "regular"; "annotated";
           "reg/dir"; "ann/dir" ]
       body);
  (* Degenerate controllers (everything folds to constants) have no
     meaningful ratio; neither do rows with a failed compile. *)
  let rows =
    List.filter (fun r -> match r.direct_area with Ok a -> a > 0.5 | Error _ -> false) rows
  in
  let ratios f = List.filter_map f rows in
  let odd = List.filter (fun r -> r.s = 3 || r.s = 17) rows in
  let even = List.filter (fun r -> not (r.s = 3 || r.s = 17)) rows in
  let gm sel l = Exp_common.geomean (List.filter_map sel l) in
  let reg_dir r = Exp_common.ratio_opt r.regular_area r.direct_area in
  let ann_dir r = Exp_common.ratio_opt r.annotated_area r.direct_area in
  Exp_common.printf
    "geomean regular/direct: %.3f (s in {3,17}: %.3f; others: %.3f)@."
    (Exp_common.geomean (ratios reg_dir))
    (gm reg_dir odd) (gm reg_dir even);
  Exp_common.printf "geomean annotated/direct: %.3f@.@."
    (Exp_common.geomean (ratios ann_dir))
