type row = {
  m : int;
  n : int;
  s : int;
  seed : int;
  direct_area : float;
  regular_area : float;
  annotated_area : float;
}

let quick_grid = [ (2, 2, 2); (2, 8, 3); (2, 16, 17); (8, 8, 8); (8, 2, 17) ]

let run ?(seeds = [ 0; 1; 2 ]) ?(grid = Workload.Rand_fsm.paper_grid) () =
  let points =
    List.concat_map (fun cell -> List.map (fun seed -> (cell, seed)) seeds) grid
  in
  let jobs =
    List.concat_map
      (fun ((m, n, s), seed) ->
        let fsm =
          Workload.Rand_fsm.generate ~seed ~num_inputs:m ~num_outputs:n
            ~num_states:s
        in
        let bind d =
          Synth.Partial_eval.bind_tables d (Core.Fsm_ir.config_bindings fsm)
        in
        [ Engine.job (Core.Fsm_ir.to_direct_rtl fsm);
          Engine.job (bind (Core.Fsm_ir.to_flexible_rtl ~annotate:false fsm));
          Engine.job ~options:Exp_common.annotated_flow
            (bind (Core.Fsm_ir.to_flexible_rtl ~annotate:true fsm)) ])
      points
  in
  let rec pair points areas =
    match (points, areas) with
    | [], [] -> []
    | ((m, n, s), seed) :: ps,
      direct_area :: regular_area :: annotated_area :: rest ->
      { m; n; s; seed; direct_area; regular_area; annotated_area }
      :: pair ps rest
    | _ -> assert false
  in
  pair points (Exp_common.areas jobs)

let print rows =
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.m;
          string_of_int r.n;
          string_of_int r.s;
          string_of_int r.seed;
          Report.Table.fmt_area r.direct_area;
          Report.Table.fmt_area r.regular_area;
          Report.Table.fmt_area r.annotated_area;
          Report.Table.fmt_ratio (r.regular_area /. r.direct_area);
          Report.Table.fmt_ratio (r.annotated_area /. r.direct_area);
        ])
      rows
  in
  Exp_common.printf
    "== Fig. 6: FSMs, flexible tables vs direct case style ==@.%s@."
    (Report.Table.render
       ~header:
         [ "m"; "n"; "s"; "seed"; "direct"; "regular"; "annotated";
           "reg/dir"; "ann/dir" ]
       body);
  (* Degenerate controllers (everything folds to constants) have no
     meaningful ratio. *)
  let rows = List.filter (fun r -> r.direct_area > 0.5) rows in
  let ratios f = List.map f rows in
  let odd = List.filter (fun r -> r.s = 3 || r.s = 17) rows in
  let even = List.filter (fun r -> not (r.s = 3 || r.s = 17)) rows in
  let gm sel l = Exp_common.geomean (List.map sel l) in
  Exp_common.printf
    "geomean regular/direct: %.3f (s in {3,17}: %.3f; others: %.3f)@."
    (Exp_common.geomean (ratios (fun r -> r.regular_area /. r.direct_area)))
    (gm (fun r -> r.regular_area /. r.direct_area) odd)
    (gm (fun r -> r.regular_area /. r.direct_area) even);
  Exp_common.printf "geomean annotated/direct: %.3f@.@."
    (Exp_common.geomean (ratios (fun r -> r.annotated_area /. r.direct_area)))
