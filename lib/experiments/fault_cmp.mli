(** Fault vulnerability of the flexible PCtrl vs its partially evaluated
    fixed build — the robustness counterpart of the Fig. 9 area story.

    The flexible controller keeps its sequencer microcode, dispatch table
    and pipe FSM tables in configuration memories, every bit of which is a
    live upset target for the whole run. Partial evaluation binds those
    tables and synthesis folds them into fixed logic, so the bound build's
    table-SEU population is zero by construction — flexibility is paid for
    in soft-error cross-section, not just area.

    Both implementations run the same Copy_line transaction (the
    [test_pctrl] stimulus) and are scored by {!Fault.Campaign} under the
    control, table-SEU, register-upset and netlist stuck-at models; the
    stuck-at campaign synthesizes each implementation with
    {!Synth.Flow.compile} and classifies sites bit-parallel through the
    {!Aig.Compiled} kernel. *)

type impl = Flexible | Bound

val impl_name : impl -> string

type row = {
  impl : impl;
  model : Fault.Campaign.model;
  report : Fault.Campaign.report;
}

val spec_of :
  ?cycles:int -> ?mode:Pctrl.Controller.mode -> impl -> Fault.Sim.spec
(** The fault-simulation spec for one implementation: design, bound
    config (for [mode], default [Cached]), Copy_line stimulus, watched
    outputs, [resp] as done signal. *)

val run :
  ?seed:int ->
  ?sites:int ->
  ?cycles:int ->
  ?jobs:int ->
  ?timeout_s:float ->
  unit ->
  row list
(** Campaigns for both implementations under each model, deterministic in
    [seed]. [sites] caps each campaign's sample (defaults 48); register
    models sample injection cycles within [cycles] (default 40). The
    stuck-at model compiles the implementation's netlist on demand and
    simulates [cycles] random netlist-stimulus cycles from [seed]. *)

val vulnerability : Fault.Campaign.report -> float option
(** (mismatches + hangs) / injected; [None] for an empty campaign. *)

val print : row list -> unit

val to_json : row list -> Report.Json.t
