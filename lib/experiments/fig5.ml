type row = {
  depth : int;
  width : int;
  seed : int;
  table_area : (float, string) result;
  sop_area : (float, string) result;
}

let quick_grid =
  [ (2, 2); (8, 4); (16, 4); (32, 16); (64, 16); (256, 4); (1024, 2) ]

let run ?(seeds = [ 0; 1; 2 ]) ?(grid = Workload.Rand_table.paper_grid) () =
  let points =
    List.concat_map (fun cell -> List.map (fun seed -> (cell, seed)) seeds) grid
  in
  (* Designs are generated up front; the compiles go to the engine as one
     batch so a parallel engine spreads the whole sweep over its workers. *)
  let jobs =
    List.concat_map
      (fun ((depth, width), seed) ->
        let tt = Workload.Rand_table.generate ~seed ~depth ~width in
        let flexible =
          Synth.Partial_eval.bind_tables
            (Core.Truth_table.to_flexible_rtl tt)
            [ Core.Truth_table.config_binding tt ]
        in
        let direct = Core.Truth_table.to_sop_rtl tt in
        [ Engine.job flexible; Engine.job direct ])
      points
  in
  let rec pair points areas =
    match (points, areas) with
    | [], [] -> []
    | ((depth, width), seed) :: ps, table_area :: sop_area :: rest ->
      { depth; width; seed; table_area; sop_area } :: pair ps rest
    | _ -> assert false
  in
  pair points (Exp_common.areas_result jobs)

let print rows =
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.depth;
          string_of_int r.width;
          string_of_int r.seed;
          Exp_common.fmt_area_result r.table_area;
          Exp_common.fmt_area_result r.sop_area;
          Exp_common.fmt_ratio_result r.table_area r.sop_area;
        ])
      rows
  in
  Exp_common.printf
    "== Fig. 5: combinational tables, partially evaluated vs direct SOP ==@.%s@."
    (Report.Table.render
       ~header:[ "depth"; "width"; "seed"; "table um^2"; "sop um^2"; "ratio" ]
       body);
  let ratios =
    List.filter_map
      (fun r ->
        match (r.table_area, r.sop_area) with
        | Ok t, Ok s when s > 0.5 -> Some (t /. s)
        | _ -> None)
      rows
  in
  let table_wins = List.length (List.filter (fun x -> x < 1.0) ratios) in
  if ratios = [] then
    Exp_common.printf "points: %d  (no classifiable points)@.@."
      (List.length rows)
  else
    Exp_common.printf
      "points: %d  geomean(table/sop): %.3f  min %.2f  max %.2f  table-better: %d@.@."
      (List.length rows)
      (Exp_common.geomean ratios)
      (List.fold_left min infinity ratios)
      (List.fold_left max 0.0 ratios)
      table_wins
