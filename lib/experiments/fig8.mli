(** Figure 8: state propagation and folding across flop boundaries.

    Synthesizes the {!Onehot_design} family over bus width, flop style and
    flow variant, comparing generic vs direct area. Claims to reproduce:
    - purely combinational versions always reach the ideal (the optimizer
      sees the decoder and the consumer in one cone);
    - with flops, the regular flow never reaches the ideal (no state
      propagation across registers);
    - retiming recovers the ideal only for some flop styles (here: only
      reset-free flops are legal to move);
    - the manual annotation recovers the ideal for n ≤ 32 (the flow's
      annotation width cap — the paper's observed cliff). *)

type variant = Regular | Retimed | Annotated

type row = {
  n : int;
  style_name : string;
  variant : variant;
  generic_area : (float, string) result;
  direct_area : (float, string) result;
      (** [Error message] when that compile failed; the sweep keeps going
          and the failure is recorded in {!Exp_common.failures}. *)
}

val run : ?widths:int list -> ?styles:(string * Onehot_design.flop_style) list -> unit -> row list

val print : row list -> unit

val variant_name : variant -> string
