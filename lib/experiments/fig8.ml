type variant = Regular | Retimed | Annotated

type row = {
  n : int;
  style_name : string;
  variant : variant;
  generic_area : (float, string) result;
  direct_area : (float, string) result;
}

let variant_name = function
  | Regular -> "regular"
  | Retimed -> "retimed"
  | Annotated -> "annotated"

let flow_of = function
  | Regular -> Exp_common.default_flow
  | Retimed -> Exp_common.retimed_flow
  | Annotated -> Exp_common.annotated_flow

let run ?(widths = Onehot_design.paper_widths)
    ?(styles = Onehot_design.all_styles) () =
  let points =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun style ->
            List.map
              (fun variant -> (n, style, variant))
              [ Regular; Retimed; Annotated ])
          styles)
      widths
  in
  let jobs =
    List.concat_map
      (fun (n, (_, style), variant) ->
        let options = flow_of variant in
        [ Engine.job ~options (Onehot_design.generic ~n ~style);
          Engine.job ~options (Onehot_design.direct ~n ~style) ])
      points
  in
  let rec pair points areas =
    match (points, areas) with
    | [], [] -> []
    | (n, (style_name, _), variant) :: ps,
      generic_area :: direct_area :: rest ->
      { n; style_name; variant; generic_area; direct_area } :: pair ps rest
    | _ -> assert false
  in
  pair points (Exp_common.areas_result jobs)

let print rows =
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.n;
          r.style_name;
          variant_name r.variant;
          Exp_common.fmt_area_result r.generic_area;
          Exp_common.fmt_area_result r.direct_area;
          Exp_common.fmt_ratio_result r.generic_area r.direct_area;
        ])
      rows
  in
  Exp_common.printf
    "== Fig. 8: one-hot bus behind a flop — generic vs direct ==@.%s@."
    (Report.Table.render
       ~align:
         [ Report.Table.Right; Report.Table.Left; Report.Table.Left;
           Report.Table.Right; Report.Table.Right; Report.Table.Right ]
       ~header:[ "n"; "flop"; "variant"; "generic"; "direct"; "ratio" ]
       body);
  let classifiable r =
    match (r.generic_area, r.direct_area) with
    | Ok _, Ok _ -> true
    | _ -> false
  in
  let ideal r =
    match (r.generic_area, r.direct_area) with
    | Ok g, Ok d -> g <= (d *. 1.02) +. 1.0
    | _ -> false
  in
  let classify pred label =
    (* Failed compiles can't be classified either way; they drop out of the
       counts and surface through Exp_common.failures instead. *)
    let sub = List.filter (fun r -> pred r && classifiable r) rows in
    let good = List.length (List.filter ideal sub) in
    Exp_common.printf "%-32s %d/%d ideal@." label good (List.length sub)
  in
  classify (fun r -> r.style_name = "comb") "combinational (any variant):";
  classify
    (fun r -> r.style_name <> "comb" && r.variant = Regular)
    "flopped, regular:";
  classify
    (fun r -> r.style_name = "noreset" && r.variant = Retimed)
    "flopped no-reset, retimed:";
  classify
    (fun r ->
      (r.style_name = "sync" || r.style_name = "async") && r.variant = Retimed)
    "flopped with reset, retimed:";
  classify
    (fun r -> r.style_name <> "comb" && r.variant = Annotated && r.n <= 32)
    "flopped, annotated, n<=32:";
  classify
    (fun r -> r.style_name <> "comb" && r.variant = Annotated && r.n > 32)
    "flopped, annotated, n>32:";
  Exp_common.printf "@."
