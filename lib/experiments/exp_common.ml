let lib = Cells.Library.vt90

let default_flow = Synth.Flow.default

let annotated_flow = { Synth.Flow.default with honor_generator_annots = true }

let retimed_flow = { Synth.Flow.default with retime = true }

(* All figure synthesis funnels through the process-wide engine: repeated
   (design, options) pairs are served from its cache and batches run on its
   worker pool when the front-end configured -j. The default engine uses
   vt90, matching [lib]. *)
let engine () = Engine.default ()

let compile_report ?options d =
  Engine.report_exn (engine ()) (Engine.job ?options d)

let compile_area ?options d = Synth.Map.total (compile_report ?options d)

let reports jobs =
  let e = engine () in
  List.map2
    (fun (j : Engine.job) outcome ->
      match outcome with
      | Ok (s : Engine.Summary.t) -> s.Engine.Summary.report
      | Error err ->
        failwith
          (Printf.sprintf "synthesis job %s failed: %s" j.Engine.jname
             (Engine.Pool.error_message err)))
    jobs (Engine.run e jobs)

let areas jobs = List.map Synth.Map.total (reports jobs)

let failure_log : string list ref = ref []

let record_failure msg = failure_log := msg :: !failure_log

let failures () = List.rev !failure_log

let areas_result jobs =
  let e = engine () in
  List.map2
    (fun (j : Engine.job) outcome ->
      match outcome with
      | Ok (s : Engine.Summary.t) -> Ok (Synth.Map.total s.Engine.Summary.report)
      | Error err ->
        let msg =
          Printf.sprintf "synthesis job %s failed: %s" j.Engine.jname
            (Engine.Pool.error_message err)
        in
        record_failure msg;
        Error msg)
    jobs (Engine.run e jobs)

let fmt_area_result = function
  | Ok a -> Report.Table.fmt_area a
  | Error _ -> "FAIL"

let fmt_ratio_result a b =
  match (a, b) with
  | Ok a, Ok b -> Report.Table.fmt_ratio (a /. b)
  | _ -> "-"

let ratio_opt a b = match (a, b) with Ok a, Ok b -> Some (a /. b) | _ -> None

let geomean = function
  | [] -> 1.0
  | xs ->
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
         /. float_of_int (List.length xs))

let out = ref Format.std_formatter

let printf fmt = Format.fprintf !out fmt
