let lib = Cells.Library.vt90

let default_flow = Synth.Flow.default

let annotated_flow = { Synth.Flow.default with honor_generator_annots = true }

let retimed_flow = { Synth.Flow.default with retime = true }

(* All figure synthesis funnels through the process-wide engine: repeated
   (design, options) pairs are served from its cache and batches run on its
   worker pool when the front-end configured -j. The default engine uses
   vt90, matching [lib]. *)
let engine () = Engine.default ()

let compile_report ?options d =
  Engine.report_exn (engine ()) (Engine.job ?options d)

let compile_area ?options d = Synth.Map.total (compile_report ?options d)

let reports jobs =
  let e = engine () in
  List.map2
    (fun (j : Engine.job) outcome ->
      match outcome with
      | Ok (s : Engine.Summary.t) -> s.Engine.Summary.report
      | Error err ->
        failwith
          (Printf.sprintf "synthesis job %s failed: %s" j.Engine.jname
             (Engine.Pool.error_message err)))
    jobs (Engine.run e jobs)

let areas jobs = List.map Synth.Map.total (reports jobs)

let geomean = function
  | [] -> 1.0
  | xs ->
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
         /. float_of_int (List.length xs))

let out = ref Format.std_formatter

let printf fmt = Format.fprintf !out fmt
