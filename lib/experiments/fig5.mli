(** Figure 5: table-based vs direct (sum-of-products) combinational logic.

    For every (depth, width) point of the paper's sweep and a few seeds,
    generate a random table, synthesize (a) the flexible table-based design
    after partial evaluation and (b) the direct SOP design, and compare
    mapped areas. The paper's claims to reproduce: points hug the equal-area
    line; occasional points fall below it (table-based slightly better),
    more often for larger functions. *)

type row = {
  depth : int;
  width : int;
  seed : int;
  table_area : (float, string) result;
  sop_area : (float, string) result;
      (** [Error message] when that point's compile failed; the sweep keeps
          going and the failure is recorded in {!Exp_common.failures}. *)
}

val run : ?seeds:int list -> ?grid:(int * int) list -> unit -> row list
(** Defaults: seeds [[0; 1]], the paper grid. *)

val quick_grid : (int * int) list
(** A subsampled grid for smoke runs. *)

val print : row list -> unit
(** Renders the table plus summary statistics (geomean ratio, spread, how
    many points favour the table-based form). *)
