type impl = Flexible | Bound

let impl_name = function Flexible -> "flexible" | Bound -> "bound"

type row = {
  impl : impl;
  model : Fault.Campaign.model;
  report : Fault.Campaign.report;
}

let default_cycles = 40

let stimulus ~cycles =
  let op_val = Pctrl.Protocol.encode_opcode Pctrl.Protocol.Copy_line in
  List.init cycles (fun cycle ->
      [
        ("op", Bitvec.of_int ~width:3 (if cycle < 3 then op_val else 0));
        ("src", Bitvec.of_int ~width:2 1);
        ("dst", Bitvec.of_int ~width:2 3);
        ("rdy", Bitvec.ones 1);
        ("data_in", Bitvec.zero Pctrl.Controller.beat_width);
      ])

let watch = [ "data_out"; "mem_en"; "mem_we"; "busy" ]

let spec_of ?(cycles = default_cycles) ?(mode = Pctrl.Controller.Cached) impl =
  let design, config =
    match impl with
    | Flexible ->
      (Pctrl.Controller.full_design (), Pctrl.Controller.bindings mode)
    | Bound -> (Pctrl.Controller.auto_design mode, [])
  in
  Fault.Sim.spec ~config ~done_signal:"resp" ~stimulus:(stimulus ~cycles)
    ~watch design

let models =
  [ Fault.Campaign.Control; Fault.Campaign.Tables; Fault.Campaign.Regs;
    Fault.Campaign.Stuck ]

let run ?(seed = 0) ?(sites = 48) ?(cycles = default_cycles) ?(jobs = 1)
    ?timeout_s () =
  let campaigns impl =
    let spec = spec_of ~cycles impl in
    (* The stuck-at population lives on the synthesized netlist; the
       compile is deferred so the RTL-only models never pay for it. *)
    let aig =
      lazy
        (let result =
           Synth.Flow.compile Exp_common.lib spec.Fault.Sim.design
         in
         { Fault.Sim.aig = result.Synth.Flow.aig; cycles; seed })
    in
    List.map
      (fun model ->
        let aig =
          match model with
          | Fault.Campaign.Stuck | Fault.Campaign.All -> Some (Lazy.force aig)
          | Fault.Campaign.Control | Fault.Campaign.Tables
          | Fault.Campaign.Regs -> None
        in
        { impl; model;
          report =
            Fault.Campaign.run ~jobs ?timeout_s ?aig ~seed ~sites ~model spec })
      models
  in
  campaigns Flexible @ campaigns Bound

let vulnerability (r : Fault.Campaign.report) =
  if r.injected = 0 then None
  else Some (float_of_int (r.mismatches + r.hangs) /. float_of_int r.injected)

let print rows =
  let body =
    List.map
      (fun { impl; model; report = r } ->
        [
          impl_name impl;
          Fault.Campaign.model_name model;
          Printf.sprintf "%d/%d" r.injected r.population;
          string_of_int r.masked;
          string_of_int r.mismatches;
          string_of_int r.hangs;
          string_of_int r.failed;
          (match vulnerability r with
           | None -> "-"
           | Some v -> Printf.sprintf "%.1f%%" (100.0 *. v));
        ])
      rows
  in
  Exp_common.printf
    "== Fault vulnerability: flexible PCtrl vs partially evaluated ==@.%s@."
    (Report.Table.render
       ~align:
         [ Report.Table.Left; Report.Table.Left; Report.Table.Right;
           Report.Table.Right; Report.Table.Right; Report.Table.Right;
           Report.Table.Right; Report.Table.Right ]
       ~header:
         [ "impl"; "model"; "sites"; "masked"; "mismatch"; "hang"; "failed";
           "vulnerable" ]
       body);
  let table_pop impl =
    List.fold_left
      (fun acc r ->
        if r.impl = impl && r.model = Fault.Campaign.Tables then
          acc + r.report.Fault.Campaign.population
        else acc)
      0 rows
  in
  Exp_common.printf
    "config-table bits at risk: flexible %d, bound %d (partial evaluation \
     folds the tables into logic)@.@."
    (table_pop Flexible) (table_pop Bound)

let to_json rows =
  Report.Json.List
    (List.map
       (fun { impl; model; report } ->
         match Fault.Campaign.to_json report with
         | Report.Json.Obj fields ->
           Report.Json.Obj
             (("impl", Report.Json.String (impl_name impl))
              :: ("model", Report.Json.String (Fault.Campaign.model_name model))
              :: List.filter (fun (k, _) -> k <> "rows" && k <> "model") fields)
         | j -> j)
       rows)
