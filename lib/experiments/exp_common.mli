(** Shared helpers for the paper-figure experiments.

    Synthesis goes through the process-wide {!Engine.default} engine, so
    figure sweeps pick up result caching and [-j] parallelism from whatever
    the front-end configured. *)

val lib : Cells.Library.t

val default_flow : Synth.Flow.options
val annotated_flow : Synth.Flow.options
(** Default plus [honor_generator_annots = true] — the paper's manual
    state-annotation runs. *)

val retimed_flow : Synth.Flow.options

val compile_area : ?options:Synth.Flow.options -> Rtl.Design.t -> float
(** Total mapped area of the optimized design. *)

val compile_report : ?options:Synth.Flow.options -> Rtl.Design.t -> Synth.Map.report

val reports : Engine.job list -> Synth.Map.report list
(** One batch through the engine — cache-deduplicated, parallel when the
    engine has workers. Results in job order.
    @raise Failure naming the first job whose compile failed. *)

val areas : Engine.job list -> float list

val areas_result : Engine.job list -> (float, string) result list
(** Graceful variant of {!areas}: a failed compile yields [Error message]
    for its slot instead of aborting the whole sweep, and the message is
    also appended to the process-wide {!failures} list so front-ends can
    print a summary and exit nonzero. *)

val record_failure : string -> unit

val failures : unit -> string list
(** Every failure recorded by {!areas_result} (or {!record_failure}) so
    far, in occurrence order. *)

val fmt_area_result : (float, string) result -> string
(** As {!Report.Table.fmt_area}, with ["FAIL"] for errors. *)

val fmt_ratio_result :
  (float, string) result -> (float, string) result -> string
(** [a / b] formatted, or ["-"] when either side failed. *)

val ratio_opt :
  (float, string) result -> (float, string) result -> float option

val geomean : float list -> float
(** Geometric mean; 1.0 on the empty list. *)

val out : Format.formatter ref
(** Where experiment printers write (defaults to stdout). *)

val printf : ('a, Format.formatter, unit) format -> 'a
