(** Figure 6: FSM synthesis — table-based vs case-statement direct style.

    Three synthesis points per random controller:
    - direct (case style, tool-detected state vector — the vendor-
      recommended coding style);
    - regular (flexible tables partially evaluated, no annotations — the
      tool cannot recognize the FSM, so unused state codes stay live);
    - annotated (same netlist plus the generator's state-vector annotation,
      honoured by the flow — the paper's [set_fsm_state_vector] run).

    Claims to reproduce: the regular points scatter above the line, worst
    for state counts that don't fill the binary encoding (s ∈ {3, 17});
    annotated points sit nearly on the line. *)

type row = {
  m : int;
  n : int;
  s : int;
  seed : int;
  direct_area : (float, string) result;
  regular_area : (float, string) result;
  annotated_area : (float, string) result;
      (** [Error message] when that compile failed; the sweep keeps going
          and the failure is recorded in {!Exp_common.failures}. *)
}

val run : ?seeds:int list -> ?grid:(int * int * int) list -> unit -> row list

val quick_grid : (int * int * int) list

val print : row list -> unit
