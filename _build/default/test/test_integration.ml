(* End-to-end: generate controllers both ways, synthesize, check behaviour
   preservation and sane area relationships. *)

let lib = Cells.Library.vt90

let check_equiv name a b =
  match Synth.Equiv.aig_vs_aig ~seed:11 a b with
  | None -> ()
  | Some m ->
    Alcotest.failf "%s: mismatch at cycle %d on %s (got %b)" name m.cycle
      m.output m.got

let compile ?options d = Synth.Flow.compile ?options lib d

let test_table_flexible_vs_sop () =
  let tt = Workload.Rand_table.generate ~seed:3 ~depth:16 ~width:4 in
  let flexible = Core.Truth_table.to_flexible_rtl tt in
  let bound =
    Synth.Partial_eval.bind_tables flexible [ Core.Truth_table.config_binding tt ]
  in
  let direct = Core.Truth_table.to_sop_rtl tt in
  let rb = compile bound and rd = compile direct in
  check_equiv "table" rb.Synth.Flow.aig rd.Synth.Flow.aig;
  let ab = Synth.Flow.area rb and ad = Synth.Flow.area rd in
  Alcotest.(check bool) "areas within 2x" true (ab <= 2.0 *. ad +. 1.0 && ad <= 2.0 *. ab +. 1.0);
  (* The flexible-unbound design must be much larger (config memory). *)
  let rf = compile flexible in
  Alcotest.(check bool) "flexible bigger" true (Synth.Flow.area rf > ab)

let test_fsm_three_ways () =
  let fsm =
    Workload.Rand_fsm.generate ~seed:7 ~num_inputs:2 ~num_outputs:8 ~num_states:8
  in
  let direct = Core.Fsm_ir.to_direct_rtl fsm in
  let flex = Core.Fsm_ir.to_flexible_rtl ~annotate:false fsm in
  let flex_annot = Core.Fsm_ir.to_flexible_rtl ~annotate:true fsm in
  let bind d = Synth.Partial_eval.bind_tables d (Core.Fsm_ir.config_bindings fsm) in
  let rd = compile direct in
  let rf = compile (bind flex) in
  let ra =
    compile
      ~options:{ Synth.Flow.default with honor_generator_annots = true }
      (bind flex_annot)
  in
  check_equiv "fsm flex" rd.Synth.Flow.aig rf.Synth.Flow.aig;
  check_equiv "fsm annot" rd.Synth.Flow.aig ra.Synth.Flow.aig;
  let ad = Synth.Flow.area rd
  and af = Synth.Flow.area rf
  and aa = Synth.Flow.area ra in
  Alcotest.(check bool)
    (Printf.sprintf "annotated (%.1f) close to direct (%.1f)" aa ad)
    true
    (aa <= 1.6 *. ad +. 1.0 && ad <= 1.6 *. aa +. 1.0);
  Alcotest.(check bool) "unannotated not absurd" true (af < 20.0 *. ad)

let test_fsm_rtl_vs_ir_semantics () =
  let fsm =
    Workload.Rand_fsm.generate ~seed:21 ~num_inputs:3 ~num_outputs:4 ~num_states:5
  in
  let design = Core.Fsm_ir.to_rom_rtl fsm in
  let st = Rtl.Eval.create design in
  let inputs = [ 0; 1; 7; 3; 2; 5; 6; 4; 1; 0; 2; 7 ] in
  let expected = Core.Fsm_ir.simulate fsm inputs in
  List.iter2
    (fun i exp ->
      Rtl.Eval.set_input st "in" (Bitvec.of_int ~width:3 i);
      let got = Rtl.Eval.peek st "out" in
      Alcotest.(check bool)
        (Printf.sprintf "output for input %d" i)
        true (Bitvec.equal got exp);
      Rtl.Eval.step st)
    inputs expected

let test_self_check_flow () =
  let fsm =
    Workload.Rand_fsm.generate ~seed:9 ~num_inputs:2 ~num_outputs:2 ~num_states:3
  in
  let design =
    Synth.Partial_eval.bind_tables
      (Core.Fsm_ir.to_flexible_rtl ~annotate:true fsm)
      (Core.Fsm_ir.config_bindings fsm)
  in
  let options =
    { Synth.Flow.default with self_check = true; honor_generator_annots = true }
  in
  ignore (compile ~options design)

let test_sequencer_roundtrip () =
  let src = {|
.name demo
.opcode_bits 2
.field go 1
.field sel 4 onehot
.dispatch table idle work idle idle
idle:
  ; dispatch table
work:
  go=1 sel=0b0001 ; next
  go=1 sel=0b0010 ; next
  ; jump idle
|} in
  let p = Core.Microasm.parse src in
  let rom = Core.Microcode.to_rtl ~storage:`Rom p in
  let flex = Core.Microcode.to_rtl ~storage:`Config p in
  let bound = Synth.Partial_eval.bind_tables flex (Core.Microcode.config_bindings p) in
  let rr = compile rom and rb = compile bound in
  check_equiv "sequencer" rr.Synth.Flow.aig rb.Synth.Flow.aig;
  (* ISA-level vs RTL-level agreement. *)
  let st = Rtl.Eval.create rom in
  let ops = [ 1; 0; 0; 0; 2; 1; 0; 0 ] in
  let trace = Core.Microcode.run p ~ops in
  List.iter2
    (fun op fields ->
      Rtl.Eval.set_input st "op" (Bitvec.of_int ~width:2 op);
      List.iter
        (fun (fname, v) ->
          let got = Bitvec.to_int (Rtl.Eval.peek st fname) in
          Alcotest.(check int) ("field " ^ fname) v got)
        fields;
      Rtl.Eval.step st)
    ops trace

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "table: flexible vs SOP" `Quick
            test_table_flexible_vs_sop;
          Alcotest.test_case "fsm: direct vs flexible vs annotated" `Quick
            test_fsm_three_ways;
          Alcotest.test_case "fsm: RTL vs IR semantics" `Quick
            test_fsm_rtl_vs_ir_semantics;
          Alcotest.test_case "flow self-check passes" `Quick
            test_self_check_flow;
          Alcotest.test_case "sequencer: asm -> rtl -> synth" `Quick
            test_sequencer_roundtrip;
        ] );
    ]
