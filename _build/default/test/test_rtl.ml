let bv = Alcotest.testable Bitvec.pp Bitvec.equal

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let e_int w v = Rtl.Expr.of_int ~width:w v

let eval_const e =
  Rtl.Expr.eval
    (fun s -> Alcotest.failf "unexpected signal %s" s.Rtl.Signal.name)
    (fun t _ -> Alcotest.failf "unexpected table %s" t)
    e

let test_expr_widths () =
  let a = e_int 4 3 and b = e_int 4 5 in
  Alcotest.(check int) "and width" 4 (Rtl.Expr.width (Rtl.Expr.and_ a b));
  Alcotest.(check int) "eq width" 1 (Rtl.Expr.width (Rtl.Expr.eq a b));
  Alcotest.(check int) "concat width" 8 (Rtl.Expr.width (Rtl.Expr.concat [ a; b ]));
  Alcotest.(check int) "slice width" 2
    (Rtl.Expr.width (Rtl.Expr.slice a ~hi:2 ~lo:1));
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Expr.and_: width mismatch (4 vs 3)") (fun () ->
      ignore (Rtl.Expr.and_ a (e_int 3 0)));
  Alcotest.check_raises "mux selector"
    (Invalid_argument "Expr.mux: selector must have width 1") (fun () ->
      ignore (Rtl.Expr.mux a a b))

let test_expr_eval () =
  let check name expr expected =
    Alcotest.check bv name expected (eval_const expr)
  in
  check "add wraps" Rtl.Expr.(add (e_int 4 9) (e_int 4 9)) (Bitvec.of_int ~width:4 2);
  check "sub" Rtl.Expr.(sub (e_int 4 3) (e_int 4 5)) (Bitvec.of_int ~width:4 14);
  check "xor" Rtl.Expr.(xor (e_int 4 0b1100) (e_int 4 0b1010)) (Bitvec.of_int ~width:4 0b0110);
  check "eq true" Rtl.Expr.(eq (e_int 4 7) (e_int 4 7)) (Bitvec.ones 1);
  check "ult" Rtl.Expr.(ult (e_int 4 3) (e_int 4 12)) (Bitvec.ones 1);
  check "mux" Rtl.Expr.(mux (e_int 1 1) (e_int 4 10) (e_int 4 5)) (Bitvec.of_int ~width:4 10);
  check "red_and" Rtl.Expr.(red_and (e_int 3 7)) (Bitvec.ones 1);
  check "red_xor" Rtl.Expr.(red_xor (e_int 3 0b110)) (Bitvec.zero 1);
  check "concat order" Rtl.Expr.(concat [ e_int 2 0b10; e_int 3 0b001 ])
    (Bitvec.of_binary_string "10001");
  check "select hit"
    (Rtl.Expr.select (e_int 2 2) [ (1, e_int 4 11); (2, e_int 4 12) ] ~default:(e_int 4 0))
    (Bitvec.of_int ~width:4 12);
  check "select default"
    (Rtl.Expr.select (e_int 2 3) [ (1, e_int 4 11); (2, e_int 4 12) ] ~default:(e_int 4 9))
    (Bitvec.of_int ~width:4 9);
  check "zero_extend" (Rtl.Expr.zero_extend (e_int 3 5) 6) (Bitvec.of_int ~width:6 5)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_builder_validation () =
  expect_invalid "duplicate name" (fun () ->
      let b = Rtl.Builder.create "dup" in
      let x = Rtl.Builder.input b "x" 1 in
      ignore (Rtl.Builder.net b "x" x);
      Rtl.Builder.finish b);
  expect_invalid "combinational cycle" (fun () ->
      let b = Rtl.Builder.create "cyc" in
      let x = Rtl.Builder.input b "x" 1 in
      let a_sig = Rtl.Signal.make "a" 1 in
      let bb = Rtl.Builder.net b "bb" (Rtl.Expr.and_ x (Rtl.Expr.signal a_sig)) in
      ignore (Rtl.Builder.net b "a" bb);
      Rtl.Builder.finish b);
  expect_invalid "dangling register" (fun () ->
      let b = Rtl.Builder.create "dang" in
      ignore (Rtl.Builder.reg_declare b "r" ~width:2);
      Rtl.Builder.finish b);
  expect_invalid "undefined reference" (fun () ->
      let b = Rtl.Builder.create "undef" in
      Rtl.Builder.output b "y" (Rtl.Expr.signal (Rtl.Signal.make "ghost" 2));
      Rtl.Builder.finish b);
  expect_invalid "wrong-width reference" (fun () ->
      let b = Rtl.Builder.create "ww" in
      let _x = Rtl.Builder.input b "x" 3 in
      Rtl.Builder.output b "y" (Rtl.Expr.signal (Rtl.Signal.make "x" 2));
      Rtl.Builder.finish b)

let counter_design ~reset ~with_enable =
  let b = Rtl.Builder.create "counter" in
  let en = if with_enable then Some (Rtl.Builder.input b "en" 1) else None in
  let q = Rtl.Builder.reg_declare b "q" ~width:4 ~reset in
  Rtl.Builder.reg_connect b ?enable:en "q" (Rtl.Expr.add q (e_int 4 1));
  Rtl.Builder.output b "count" q;
  Rtl.Builder.finish b

let test_eval_registers () =
  let d = counter_design ~reset:Rtl.Design.Sync_reset ~with_enable:false in
  let st = Rtl.Eval.create d in
  Alcotest.check bv "initial" (Bitvec.zero 4) (Rtl.Eval.peek st "count");
  Rtl.Eval.step st;
  Rtl.Eval.step st;
  Alcotest.check bv "after 2" (Bitvec.of_int ~width:4 2) (Rtl.Eval.peek st "count");
  Rtl.Eval.reset st;
  Alcotest.check bv "after reset" (Bitvec.zero 4) (Rtl.Eval.peek st "count")

let test_eval_enable () =
  let d = counter_design ~reset:Rtl.Design.Sync_reset ~with_enable:true in
  let st = Rtl.Eval.create d in
  Rtl.Eval.set_input st "en" (Bitvec.zero 1);
  Rtl.Eval.step st;
  Alcotest.check bv "held" (Bitvec.zero 4) (Rtl.Eval.peek st "count");
  Rtl.Eval.set_input st "en" (Bitvec.ones 1);
  Rtl.Eval.step st;
  Alcotest.check bv "stepped" (Bitvec.of_int ~width:4 1) (Rtl.Eval.peek st "count")

let test_table_oob () =
  let b = Rtl.Builder.create "t" in
  let addr = Rtl.Builder.input b "addr" 2 in
  Rtl.Builder.rom b "mem" ~width:4
    (Array.of_list (List.map (Bitvec.of_int ~width:4) [ 1; 2; 3 ]));
  Rtl.Builder.output b "data" (Rtl.Builder.read_table b "mem" addr);
  let d = Rtl.Builder.finish b in
  let st = Rtl.Eval.create d in
  Rtl.Eval.set_input st "addr" (Bitvec.of_int ~width:2 2);
  Alcotest.check bv "in range" (Bitvec.of_int ~width:4 3) (Rtl.Eval.peek st "data");
  Rtl.Eval.set_input st "addr" (Bitvec.of_int ~width:2 3);
  Alcotest.check bv "out of range reads zero" (Bitvec.zero 4)
    (Rtl.Eval.peek st "data")

let test_unbound_config () =
  let b = Rtl.Builder.create "cfg" in
  let addr = Rtl.Builder.input b "addr" 2 in
  Rtl.Builder.config_table b "mem" ~width:4 ~depth:4;
  Rtl.Builder.output b "data" (Rtl.Builder.read_table b "mem" addr);
  let d = Rtl.Builder.finish b in
  let st = Rtl.Eval.create d in
  expect_invalid "unbound config read" (fun () -> Rtl.Eval.peek st "data");
  let st2 =
    Rtl.Eval.create ~config:[ ("mem", Array.init 4 (Bitvec.of_int ~width:4)) ] d
  in
  Rtl.Eval.set_input st2 "addr" (Bitvec.of_int ~width:2 2);
  Alcotest.check bv "bound config" (Bitvec.of_int ~width:4 2)
    (Rtl.Eval.peek st2 "data")

let test_annotation_validation () =
  let b = Rtl.Builder.create "an" in
  let _x = Rtl.Builder.input b "x" 3 in
  Rtl.Builder.output b "y" (e_int 1 0);
  Rtl.Builder.annotate b (Rtl.Annot.one_hot "x" ~width:3);
  ignore (Rtl.Builder.finish b);
  expect_invalid "wrong-width annotation" (fun () ->
      let b = Rtl.Builder.create "an2" in
      let _x = Rtl.Builder.input b "x" 3 in
      Rtl.Builder.output b "y" (e_int 1 0);
      Rtl.Builder.annotate b (Rtl.Annot.one_hot "x" ~width:4);
      Rtl.Builder.finish b)

let test_verilog_smoke () =
  let d = counter_design ~reset:Rtl.Design.Async_reset ~with_enable:true in
  let text = Rtl.Verilog.emit d in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true (contains text fragment))
    [ "module counter"; "always_ff"; "posedge rst"; "endmodule" ]

let test_compose () =
  let sub = counter_design ~reset:Rtl.Design.Sync_reset ~with_enable:true in
  let b = Rtl.Builder.create "parent" in
  let en = Rtl.Builder.input b "en" 1 in
  let u0 = Rtl.Compose.instantiate b ~name:"u0" sub ~inputs:[ ("en", en) ] in
  let u1 =
    Rtl.Compose.instantiate b ~name:"u1" sub
      ~inputs:[ ("en", Rtl.Expr.not_ en) ]
  in
  Rtl.Builder.output b "sum" (Rtl.Expr.add (u0 "count") (u1 "count"));
  let d = Rtl.Builder.finish b in
  let st = Rtl.Eval.create d in
  Rtl.Eval.set_input st "en" (Bitvec.ones 1);
  Rtl.Eval.step st;
  Rtl.Eval.step st;
  Alcotest.check bv "sum" (Bitvec.of_int ~width:4 2) (Rtl.Eval.peek st "sum");
  Alcotest.check bv "u0 register" (Bitvec.of_int ~width:4 2) (Rtl.Eval.peek st "u0_q");
  Alcotest.check bv "u1 register" (Bitvec.zero 4) (Rtl.Eval.peek st "u1_q");
  expect_invalid "missing binding" (fun () ->
      let b = Rtl.Builder.create "p2" in
      let accessor = Rtl.Compose.instantiate b ~name:"u" sub ~inputs:[] in
      ignore (accessor "count");
      Rtl.Builder.finish b)

let test_design_helpers () =
  let d = counter_design ~reset:Rtl.Design.No_reset ~with_enable:false in
  Alcotest.(check int) "config bits" 0 (Rtl.Design.config_bit_count d);
  let r = Rtl.Design.find_reg d "q" in
  Alcotest.(check bool) "reset kind" true (r.Rtl.Design.reset = Rtl.Design.No_reset);
  Alcotest.(check bool) "stats mentions name" true
    (contains (Rtl.Design.stats d) "counter")

let () =
  Alcotest.run "rtl"
    [
      ( "expr",
        [
          Alcotest.test_case "widths" `Quick test_expr_widths;
          Alcotest.test_case "evaluation" `Quick test_expr_eval;
        ] );
      ( "design",
        [
          Alcotest.test_case "builder validation" `Quick test_builder_validation;
          Alcotest.test_case "registers" `Quick test_eval_registers;
          Alcotest.test_case "enables" `Quick test_eval_enable;
          Alcotest.test_case "table out of range" `Quick test_table_oob;
          Alcotest.test_case "config binding" `Quick test_unbound_config;
          Alcotest.test_case "annotations" `Quick test_annotation_validation;
          Alcotest.test_case "verilog smoke" `Quick test_verilog_smoke;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "design helpers" `Quick test_design_helpers;
        ] );
    ]
