let test_rng_determinism () =
  let a = Workload.Rng.make 7 and b = Workload.Rng.make 7 in
  let xs t = List.init 20 (fun _ -> Workload.Rng.int t 1000) in
  Alcotest.(check (list int)) "same seed same stream" (xs a) (xs b);
  let c = Workload.Rng.make 8 in
  Alcotest.(check bool) "different seed different stream" true (xs a <> xs c)

let test_rng_split_independent () =
  let parent = Workload.Rng.make 7 in
  let left = Workload.Rng.split parent "left" in
  let right = Workload.Rng.split parent "right" in
  let xs t = List.init 20 (fun _ -> Workload.Rng.int t 1000) in
  Alcotest.(check bool) "children differ" true (xs left <> xs right);
  (* Splitting again with the same name reproduces the stream. *)
  let left2 = Workload.Rng.split parent "left" in
  let left3 = Workload.Rng.split parent "left" in
  Alcotest.(check (list int)) "split reproducible"
    (List.init 20 (fun _ -> Workload.Rng.int left2 1000))
    (List.init 20 (fun _ -> Workload.Rng.int left3 1000))

let test_rng_helpers () =
  let t = Workload.Rng.make 3 in
  let v = Workload.Rng.bitvec t ~width:65 in
  Alcotest.(check int) "bitvec width" 65 (Bitvec.width v);
  let sub = Workload.Rng.subset t ~size:3 [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "subset size" 3 (List.length sub);
  Alcotest.(check int) "subset distinct" 3
    (List.length (List.sort_uniq compare sub));
  Alcotest.(check bool) "pick member" true
    (List.mem (Workload.Rng.pick t [ 1; 2; 3 ]) [ 1; 2; 3 ])

let test_table_generator () =
  let tt = Workload.Rand_table.generate ~seed:1 ~depth:24 ~width:7 in
  Alcotest.(check int) "depth" 24 (Core.Truth_table.depth tt);
  Alcotest.(check int) "width" 7 (Bitvec.width (Core.Truth_table.eval tt 0));
  let tt2 = Workload.Rand_table.generate ~seed:1 ~depth:24 ~width:7 in
  Alcotest.(check bool) "deterministic" true
    (List.for_all
       (fun a ->
         Bitvec.equal (Core.Truth_table.eval tt a) (Core.Truth_table.eval tt2 a))
       (List.init 24 Fun.id));
  Alcotest.(check int) "paper grid size" 35
    (List.length Workload.Rand_table.paper_grid)

let test_fsm_generator () =
  let fsm =
    Workload.Rand_fsm.generate ~seed:5 ~num_inputs:8 ~num_outputs:4 ~num_states:9
  in
  Alcotest.(check int) "states" 9 (Core.Fsm_ir.num_states fsm);
  (* Realistic controllers: every state branches on at most 2 inputs. *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "state %d support small" s)
        true
        (List.length (Core.Fsm_ir.input_support fsm s) <= 2))
    (List.init 9 Fun.id);
  Alcotest.(check int) "paper grid size" 30
    (List.length Workload.Rand_fsm.paper_grid);
  let fsm2 =
    Workload.Rand_fsm.generate ~seed:5 ~num_inputs:8 ~num_outputs:4 ~num_states:9
  in
  let trace f = Core.Fsm_ir.simulate f [ 0; 255; 17; 3; 99; 1 ] in
  Alcotest.(check bool) "deterministic" true
    (List.for_all2 Bitvec.equal (trace fsm) (trace fsm2))

let () =
  Alcotest.run "workload"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "helpers" `Quick test_rng_helpers;
        ] );
      ( "generators",
        [
          Alcotest.test_case "tables" `Quick test_table_generator;
          Alcotest.test_case "fsms" `Quick test_fsm_generator;
        ] );
    ]
