let bv = Alcotest.testable Bitvec.pp Bitvec.equal

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------ truth table *)

let test_table_eval () =
  let tt =
    Core.Truth_table.of_fun ~name:"t" ~width:3 ~depth:5 (fun a ->
        Bitvec.of_int ~width:3 (a + 1))
  in
  Alcotest.(check int) "addr bits" 3 (Core.Truth_table.addr_bits tt);
  Alcotest.check bv "entry 2" (Bitvec.of_int ~width:3 3) (Core.Truth_table.eval tt 2);
  Alcotest.check bv "out of range" (Bitvec.zero 3) (Core.Truth_table.eval tt 6);
  expect_invalid "empty table" (fun () ->
      Core.Truth_table.make ~name:"x" ~width:2 [||])

let test_table_implementations_agree () =
  let tt = Workload.Rand_table.generate ~seed:11 ~depth:13 ~width:5 in
  let rom = Core.Truth_table.to_rom_rtl tt in
  let sop = Core.Truth_table.to_sop_rtl tt in
  let flexible = Core.Truth_table.to_flexible_rtl tt in
  let name, contents = Core.Truth_table.config_binding tt in
  let st_rom = Rtl.Eval.create rom in
  let st_sop = Rtl.Eval.create sop in
  let st_flex = Rtl.Eval.create ~config:[ (name, contents) ] flexible in
  Seq.iter
    (fun a ->
      let expected = Core.Truth_table.eval tt (Bitvec.to_int a) in
      List.iter
        (fun st ->
          Rtl.Eval.set_input st "addr" a;
          Alcotest.check bv "data" expected (Rtl.Eval.peek st "data"))
        [ st_rom; st_sop; st_flex ])
    (Bitvec.all_values 4)

(* -------------------------------------------------------------------- fsm *)

let sample_fsm =
  Workload.Rand_fsm.generate ~seed:8 ~num_inputs:2 ~num_outputs:5 ~num_states:6

let test_fsm_validation () =
  expect_invalid "bad reset" (fun () ->
      Core.Fsm_ir.make ~name:"f" ~num_inputs:1 ~num_outputs:1
        ~states:[| "a" |] ~reset:1
        ~next:[| [| 0; 0 |] |]
        ~out:[| [| Bitvec.zero 1; Bitvec.zero 1 |] |]);
  expect_invalid "bad target" (fun () ->
      Core.Fsm_ir.make ~name:"f" ~num_inputs:1 ~num_outputs:1
        ~states:[| "a" |] ~reset:0
        ~next:[| [| 0; 3 |] |]
        ~out:[| [| Bitvec.zero 1; Bitvec.zero 1 |] |]);
  expect_invalid "duplicate state names" (fun () ->
      Core.Fsm_ir.make ~name:"f" ~num_inputs:1 ~num_outputs:1
        ~states:[| "a"; "a" |] ~reset:0
        ~next:[| [| 0; 0 |]; [| 1; 1 |] |]
        ~out:
          [| [| Bitvec.zero 1; Bitvec.zero 1 |];
             [| Bitvec.zero 1; Bitvec.zero 1 |] |])

let test_fsm_encoding () =
  Alcotest.(check int) "state bits for 6" 3 (Core.Fsm_ir.state_bits sample_fsm);
  Alcotest.(check int) "codes" 6 (List.length (Core.Fsm_ir.state_codes sample_fsm));
  Alcotest.check bv "encode 5" (Bitvec.of_int ~width:3 5)
    (Core.Fsm_ir.encode sample_fsm 5)

let test_fsm_moore () =
  let moore =
    Core.Fsm_ir.of_moore ~name:"m" ~num_inputs:1 ~num_outputs:2
      ~states:[| "a"; "b" |] ~reset:0
      ~next:[| [| 0; 1 |]; [| 1; 0 |] |]
      ~moore_out:[| Bitvec.of_int ~width:2 1; Bitvec.of_int ~width:2 2 |]
  in
  Alcotest.(check bool) "moore detected" true (Core.Fsm_ir.is_moore moore);
  Alcotest.(check bool) "mealy random likely not moore" true
    (not (Core.Fsm_ir.is_moore sample_fsm)
     || Core.Fsm_ir.is_moore sample_fsm (* tolerated for degenerate seeds *));
  (* The Moore flexible output memory is state-indexed: depth 2^k. *)
  let bindings = Core.Fsm_ir.config_bindings moore in
  let _, out_contents = List.nth bindings 1 in
  Alcotest.(check int) "compact output table" 2 (Array.length out_contents)

let test_fsm_reachability () =
  (* A machine with an unreachable state. *)
  let f =
    Core.Fsm_ir.make ~name:"r" ~num_inputs:1 ~num_outputs:1
      ~states:[| "a"; "b"; "island" |] ~reset:0
      ~next:[| [| 0; 1 |]; [| 1; 0 |]; [| 2; 2 |] |]
      ~out:
        [| [| Bitvec.zero 1; Bitvec.zero 1 |];
           [| Bitvec.ones 1; Bitvec.ones 1 |];
           [| Bitvec.zero 1; Bitvec.zero 1 |] |]
  in
  Alcotest.(check (list int)) "island unreachable" [ 0; 1 ] (Core.Fsm_ir.reachable f);
  Alcotest.(check (list int)) "restricted inputs" [ 0 ]
    (Core.Fsm_ir.reachable_with f ~inputs:[ 0 ])

let test_fsm_input_support () =
  (* State ignores inputs => empty support. *)
  let f =
    Core.Fsm_ir.make ~name:"s" ~num_inputs:2 ~num_outputs:1
      ~states:[| "a"; "b" |] ~reset:0
      ~next:[| [| 1; 1; 1; 1 |]; [| 0; 0; 1; 1 |] |]
      ~out:(Array.make 2 (Array.make 4 (Bitvec.zero 1)))
  in
  Alcotest.(check (list int)) "state a no support" [] (Core.Fsm_ir.input_support f 0);
  Alcotest.(check (list int)) "state b bit 1" [ 1 ] (Core.Fsm_ir.input_support f 1)

let test_fsm_rtl_equivalence () =
  let fsm = sample_fsm in
  let direct = Rtl.Eval.create (Core.Fsm_ir.to_direct_rtl fsm) in
  let rom = Rtl.Eval.create (Core.Fsm_ir.to_rom_rtl fsm) in
  let rng = Random.State.make [| 42 |] in
  let inputs = List.init 50 (fun _ -> Random.State.int rng 4) in
  let expected = Core.Fsm_ir.simulate fsm inputs in
  List.iter2
    (fun i exp ->
      List.iter
        (fun st ->
          Rtl.Eval.set_input st "in" (Bitvec.of_int ~width:2 i);
          Alcotest.check bv "out" exp (Rtl.Eval.peek st "out");
          Rtl.Eval.step st)
        [ direct; rom ])
    inputs expected

(* -------------------------------------------------------------- microcode *)

let demo_program =
  Core.Microcode.make ~name:"demo"
    ~format:
      [ { Core.Microcode.fname = "a"; fwidth = 2; onehot = false };
        { Core.Microcode.fname = "b"; fwidth = 3; onehot = true } ]
    ~dispatch:[ ("t", [| 0; 2; 0; 0 |]) ]
    ~opcode_bits:2
    [|
      { Core.Microcode.ctl = []; seq = Core.Microcode.Dispatch 0 };
      { Core.Microcode.ctl = [ ("a", 1) ]; seq = Core.Microcode.Next };
      { Core.Microcode.ctl = [ ("a", 3); ("b", 4) ]; seq = Core.Microcode.Next };
      { Core.Microcode.ctl = [ ("b", 1) ]; seq = Core.Microcode.Jump 0 };
    |]

let test_microcode_geometry () =
  let p = demo_program in
  Alcotest.(check int) "upc bits" 2 (Core.Microcode.upc_bits p);
  (* 5 ctl bits + 2 mode + 2 target *)
  Alcotest.(check int) "word width" 9 (Core.Microcode.word_width p);
  let w = Core.Microcode.encode_word p 2 in
  (* a=3 (bits 1:0), b=4 (bits 4:2), mode=0 (bits 6:5), target=0 *)
  Alcotest.(check int) "word encoding" (3 lor (4 lsl 2)) (Bitvec.to_int w);
  (* Instruction 3: b=1 (bit 2), mode=jump=1 (bits 6:5), target=0. *)
  let w3 = Core.Microcode.encode_word p 3 in
  Alcotest.(check int) "jump encoding" ((1 lsl 2) lor (1 lsl 5)) (Bitvec.to_int w3)

let test_microcode_step () =
  let p = demo_program in
  (* Dispatch on op=1 goes to address 2. *)
  let fields, next = Core.Microcode.step p ~upc:0 ~op:1 in
  Alcotest.(check int) "dispatch target" 2 next;
  Alcotest.(check int) "fields idle" 0 (List.assoc "a" fields);
  let _, next = Core.Microcode.step p ~upc:2 ~op:0 in
  Alcotest.(check int) "next increments" 3 next;
  let _, next = Core.Microcode.step p ~upc:3 ~op:0 in
  Alcotest.(check int) "jump" 0 next

let test_microcode_analysis () =
  let p = demo_program in
  Alcotest.(check (list int)) "reachable" [ 0; 2; 3 ]
    (Core.Microcode.reachable_addrs p);
  (* address 1 (a=1) unreachable; values from {0 (idle/pad), 3}. *)
  Alcotest.(check (list int)) "a values" [ 0; 3 ]
    (Core.Microcode.field_value_set p "a");
  Alcotest.(check (list int)) "b values" [ 0; 1; 4 ]
    (Core.Microcode.field_value_set p "b")

let test_microcode_rtl_match () =
  let p = demo_program in
  let d = Core.Microcode.to_rtl ~storage:`Rom p in
  let st = Rtl.Eval.create d in
  let ops = [ 1; 0; 0; 3; 1; 0; 0; 0 ] in
  let trace = Core.Microcode.run p ~ops in
  List.iter2
    (fun op fields ->
      Rtl.Eval.set_input st "op" (Bitvec.of_int ~width:2 op);
      List.iter
        (fun (f, v) ->
          Alcotest.(check int) ("field " ^ f) v
            (Bitvec.to_int (Rtl.Eval.peek st f)))
        fields;
      Rtl.Eval.step st)
    ops trace

let test_microcode_registered_outputs () =
  let p = demo_program in
  let d = Core.Microcode.to_rtl ~registered_outputs:true ~storage:`Rom p in
  let st = Rtl.Eval.create d in
  (* Registered fields lag the combinational trace by one cycle. *)
  let ops = [ 1; 0; 0; 0 ] in
  let trace = Core.Microcode.run p ~ops in
  let got = ref [] in
  List.iter
    (fun op ->
      Rtl.Eval.set_input st "op" (Bitvec.of_int ~width:2 op);
      got := Bitvec.to_int (Rtl.Eval.peek st "a") :: !got;
      Rtl.Eval.step st)
    ops;
  let got = List.rev !got in
  let expected_lagged =
    0 :: List.filteri (fun i _ -> i < 3) (List.map (List.assoc "a") trace)
  in
  Alcotest.(check (list int)) "one-cycle lag" expected_lagged got

let test_microcode_validation () =
  expect_invalid "field value too wide" (fun () ->
      Core.Microcode.make ~name:"x"
        ~format:[ { Core.Microcode.fname = "a"; fwidth = 1; onehot = false } ]
        [| { Core.Microcode.ctl = [ ("a", 2) ]; seq = Core.Microcode.Next } |]);
  expect_invalid "jump out of range" (fun () ->
      Core.Microcode.make ~name:"x"
        ~format:[ { Core.Microcode.fname = "a"; fwidth = 1; onehot = false } ]
        [| { Core.Microcode.ctl = []; seq = Core.Microcode.Jump 9 } |]);
  expect_invalid "dispatch table size" (fun () ->
      Core.Microcode.make ~name:"x"
        ~format:[ { Core.Microcode.fname = "a"; fwidth = 1; onehot = false } ]
        ~dispatch:[ ("t", [| 0 |]) ] ~opcode_bits:2
        [| { Core.Microcode.ctl = []; seq = Core.Microcode.Next } |])

(* --------------------------------------------------------------- microasm *)

let asm_source = {|
.name demo
.opcode_bits 2
.field a 2
.field b 3 onehot
.dispatch t idle work
idle:
  ; dispatch t
work:
  a=1 ; next
  a=3 b=0b100 ; next
  b=1 ; jump idle
|}

let test_asm_parse () =
  let p = Core.Microasm.parse asm_source in
  Alcotest.(check string) "name" "demo" p.Core.Microcode.pname;
  Alcotest.(check int) "uops" 4 (Core.Microcode.depth p);
  Alcotest.(check int) "entry" 0 p.Core.Microcode.entry;
  let f = List.nth p.Core.Microcode.format 1 in
  Alcotest.(check bool) "onehot flag" true f.Core.Microcode.onehot;
  (* Dispatch pads missing slots with the last target. *)
  let _, targets = List.nth p.Core.Microcode.dispatch 0 in
  Alcotest.(check (array int)) "dispatch padded" [| 0; 1; 1; 1 |] targets

let test_asm_roundtrip () =
  let p = Core.Microasm.parse asm_source in
  let p2 = Core.Microasm.parse (Core.Microasm.print p) in
  Alcotest.(check int) "depth" (Core.Microcode.depth p) (Core.Microcode.depth p2);
  let ops = [ 1; 0; 0; 0; 1; 0 ] in
  Alcotest.(check bool) "same traces" true
    (Core.Microcode.run p ~ops = Core.Microcode.run p2 ~ops)

let test_asm_errors () =
  let bad source expect_line =
    match Core.Microasm.parse source with
    | _ -> Alcotest.failf "accepted %S" source
    | exception Core.Microasm.Parse_error (line, _) ->
      Alcotest.(check int) ("line of " ^ source) expect_line line
  in
  bad ".field a 1\nx:\n  b=1 ; next\n" 3;
  bad ".field a 1\n  a=1 ; jump nowhere\n" 2;
  bad ".field a 1\nl:\n  a=1\nl:\n  a=0\n" 4

(* -------------------------------------------------------------- generator *)

let test_generator_styles () =
  let fsm = sample_fsm in
  let flex = Core.Generator.fsm_design fsm Core.Generator.Flexible in
  let annotated = Core.Generator.fsm_design fsm Core.Generator.Flexible_annotated in
  let direct = Core.Generator.fsm_design fsm Core.Generator.Direct in
  Alcotest.(check int) "no annots on flexible" 0
    (List.length flex.Rtl.Design.annots);
  Alcotest.(check int) "generator annot" 1
    (List.length annotated.Rtl.Design.annots);
  (match direct.Rtl.Design.annots with
   | [ a ] ->
     Alcotest.(check bool) "tool provenance" true
       (a.Rtl.Annot.provenance = Rtl.Annot.Tool_detected)
   | _ -> Alcotest.fail "direct should carry one annotation");
  let manual = Core.Generator.fsm_manual_annotation fsm in
  Alcotest.(check int) "manual values = reachable"
    (List.length (Core.Fsm_ir.reachable fsm))
    (List.length (Rtl.Annot.values manual))

let () =
  Alcotest.run "core"
    [
      ( "truth_table",
        [
          Alcotest.test_case "eval" `Quick test_table_eval;
          Alcotest.test_case "implementations agree" `Quick
            test_table_implementations_agree;
        ] );
      ( "fsm_ir",
        [
          Alcotest.test_case "validation" `Quick test_fsm_validation;
          Alcotest.test_case "encoding" `Quick test_fsm_encoding;
          Alcotest.test_case "moore" `Quick test_fsm_moore;
          Alcotest.test_case "reachability" `Quick test_fsm_reachability;
          Alcotest.test_case "input support" `Quick test_fsm_input_support;
          Alcotest.test_case "rtl equivalence" `Quick test_fsm_rtl_equivalence;
        ] );
      ( "microcode",
        [
          Alcotest.test_case "geometry" `Quick test_microcode_geometry;
          Alcotest.test_case "step" `Quick test_microcode_step;
          Alcotest.test_case "analysis" `Quick test_microcode_analysis;
          Alcotest.test_case "rtl matches isa" `Quick test_microcode_rtl_match;
          Alcotest.test_case "registered outputs" `Quick
            test_microcode_registered_outputs;
          Alcotest.test_case "validation" `Quick test_microcode_validation;
        ] );
      ( "microasm",
        [
          Alcotest.test_case "parse" `Quick test_asm_parse;
          Alcotest.test_case "roundtrip" `Quick test_asm_roundtrip;
          Alcotest.test_case "errors" `Quick test_asm_errors;
        ] );
      ("generator", [ Alcotest.test_case "styles" `Quick test_generator_styles ]);
    ]
