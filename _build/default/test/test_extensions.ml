(* Extension features: the high-level controller-spec compiler, state
   encodings, the annotation inductive checker and exact sequential
   equivalence. *)

let lib = Cells.Library.vt90

(* ---------------------------------------------------------- ctrl_spec *)

let dma_spec =
  {
    Core.Ctrl_spec.name = "spec_dma";
    fields =
      [
        { Core.Microcode.fname = "rd"; fwidth = 1; onehot = false };
        { Core.Microcode.fname = "wr"; fwidth = 1; onehot = false };
        { Core.Microcode.fname = "beat"; fwidth = 2; onehot = false };
      ];
    opcode_bits = 2;
    handlers =
      [
        ( 1,
          Core.Ctrl_spec.Seq
            [
              Core.Ctrl_spec.Emit [ ("rd", 1) ];
              Core.Ctrl_spec.Repeat
                (3, Core.Ctrl_spec.Emit [ ("rd", 1); ("wr", 1) ]);
              Core.Ctrl_spec.Done;
            ] );
        (2, Core.Ctrl_spec.Emit [ ("wr", 1) ]);
      ];
  }

let test_spec_compiles () =
  let p = Core.Ctrl_spec.compile dma_spec in
  (* dispatch + handler1 (1 + 3 beats, jump folded into the last) +
     handler2 (1 with folded jump) *)
  Alcotest.(check int) "program length" 6 (Core.Microcode.depth p);
  Alcotest.(check int) "entry" 0 p.Core.Microcode.entry;
  (* Handler 1 runs cycles 1-4 (last beat jumps back), the dispatch re-runs
     at cycle 5 and picks up op 2, whose single instruction runs at 6. *)
  let trace = Core.Microcode.run p ~ops:[ 1; 0; 0; 0; 0; 2; 0 ] in
  let rd = List.map (List.assoc "rd") trace in
  let wr = List.map (List.assoc "wr") trace in
  Alcotest.(check (list int)) "rd trace" [ 0; 1; 1; 1; 1; 0; 0 ] rd;
  Alcotest.(check (list int)) "wr trace" [ 0; 0; 1; 1; 1; 0; 1 ] wr

let test_spec_instruction_count () =
  let body = List.assoc 1 dma_spec.Core.Ctrl_spec.handlers in
  Alcotest.(check int) "expansion size" 5
    (Core.Ctrl_spec.instruction_count body)

let test_spec_dedup () =
  (* Two opcodes sharing a body compile to one copy. *)
  let shared = Core.Ctrl_spec.Emit [ ("rd", 1) ] in
  let spec =
    { dma_spec with handlers = [ (1, shared); (2, shared); (3, shared) ] }
  in
  let p = Core.Ctrl_spec.compile spec in
  (* dispatch + body (one uop with the jump folded in) *)
  Alcotest.(check int) "deduplicated" 2 (Core.Microcode.depth p)

let test_spec_errors () =
  let expect spec =
    match Core.Ctrl_spec.compile spec with
    | _ -> Alcotest.fail "expected Compile_error"
    | exception Core.Ctrl_spec.Compile_error _ -> ()
  in
  expect
    { dma_spec with handlers = [ (1, Core.Ctrl_spec.Emit [ ("ghost", 1) ]) ] };
  expect
    { dma_spec with handlers = [ (1, Core.Ctrl_spec.Emit [ ("beat", 9) ]) ] };
  expect { dma_spec with handlers = [ (9, Core.Ctrl_spec.Emit []) ] }

let test_spec_hardware () =
  (* The compiled program's hardware behaves like the ISA semantics. *)
  let p = Core.Ctrl_spec.compile dma_spec in
  let d = Core.Microcode.to_rtl ~storage:`Rom p in
  let st = Rtl.Eval.create d in
  let ops = [ 1; 0; 0; 0; 0; 2; 0; 1; 0 ] in
  List.iter2
    (fun op fields ->
      Rtl.Eval.set_input st "op" (Bitvec.of_int ~width:2 op);
      List.iter
        (fun (f, v) ->
          Alcotest.(check int) f v (Bitvec.to_int (Rtl.Eval.peek st f)))
        fields;
      Rtl.Eval.step st)
    ops (Core.Microcode.run p ~ops)

(* ----------------------------------------------------------- encodings *)

let sample_fsm =
  Workload.Rand_fsm.generate ~seed:31 ~num_inputs:2 ~num_outputs:4 ~num_states:5

let test_encoding_codes () =
  let f = sample_fsm in
  Alcotest.(check int) "binary width" 3
    (Core.Fsm_ir.state_bits_with Core.Fsm_ir.Binary f);
  Alcotest.(check int) "one-hot width" 5
    (Core.Fsm_ir.state_bits_with Core.Fsm_ir.One_hot f);
  (* Gray codes of adjacent indices differ in exactly one bit. *)
  let gray i = Core.Fsm_ir.encode_with Core.Fsm_ir.Gray f i in
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "gray %d->%d" i (i + 1))
        1
        (Bitvec.popcount (Bitvec.logxor (gray i) (gray (i + 1)))))
    [ 0; 1; 2; 3 ];
  (* One-hot codes each have exactly one bit. *)
  List.iter
    (fun c -> Alcotest.(check int) "one bit" 1 (Bitvec.popcount c))
    (Core.Fsm_ir.state_codes_with Core.Fsm_ir.One_hot f)

let test_encodings_equivalent () =
  let f = sample_fsm in
  let rng = Random.State.make [| 9 |] in
  let inputs = List.init 60 (fun _ -> Random.State.int rng 4) in
  let expected = Core.Fsm_ir.simulate f inputs in
  let check_design name d =
    let st = Rtl.Eval.create d in
    List.iter2
      (fun i exp ->
        Rtl.Eval.set_input st "in" (Bitvec.of_int ~width:2 i);
        Alcotest.(check bool)
          (Printf.sprintf "%s input %d" name i)
          true
          (Bitvec.equal exp (Rtl.Eval.peek st "out"));
        Rtl.Eval.step st)
      inputs expected
  in
  check_design "direct gray" (Core.Fsm_ir.to_direct_rtl ~encoding:Core.Fsm_ir.Gray f);
  check_design "direct one-hot"
    (Core.Fsm_ir.to_direct_rtl ~encoding:Core.Fsm_ir.One_hot f);
  check_design "rom gray"
    (Core.Fsm_ir.to_rom_rtl ~encoding:Core.Fsm_ir.Gray f)

let test_onehot_table_rejected () =
  match Core.Fsm_ir.to_flexible_rtl ~encoding:Core.Fsm_ir.One_hot sample_fsm with
  | _ -> Alcotest.fail "one-hot table accepted"
  | exception Invalid_argument _ -> ()

(* --------------------------------------------------------- annot_check *)

let check_result = function
  | Synth.Annot_check.Proved -> "proved"
  | Synth.Annot_check.Refuted _ -> "refuted"
  | Synth.Annot_check.Unproved _ -> "unproved"

let test_annot_check_fsm () =
  let f = sample_fsm in
  let d =
    Synth.Partial_eval.bind_tables
      (Core.Fsm_ir.to_flexible_rtl ~annotate:true f)
      (Core.Fsm_ir.config_bindings f)
  in
  let low = Synth.Lower.run d in
  match Synth.Annots.extract low with
  | [ a ] ->
    Alcotest.(check string) "state vector proved" "proved"
      (check_result (Synth.Annot_check.inductive low.Synth.Lower.aig a))
  | _ -> Alcotest.fail "expected one annotation"

let test_annot_check_onehot () =
  let d =
    Experiments.Onehot_design.generic ~n:12
      ~style:(Experiments.Onehot_design.Flop Rtl.Design.Sync_reset)
  in
  let low = Synth.Lower.run d in
  match Synth.Annots.extract low with
  | [ a ] ->
    Alcotest.(check string) "one-hot register proved" "proved"
      (check_result (Synth.Annot_check.inductive low.Synth.Lower.aig a))
  | _ -> Alcotest.fail "expected one annotation"

let test_annot_check_refutes_lies () =
  (* A two-bit counter claimed to stay in {0,1}: refuted at the base or by
     simulation of the step. *)
  let b = Rtl.Builder.create "liar" in
  let q = Rtl.Builder.reg_declare b "q" ~width:2 ~reset:Rtl.Design.Sync_reset in
  Rtl.Builder.reg_connect b "q" (Rtl.Expr.add q (Rtl.Expr.of_int ~width:2 1));
  Rtl.Builder.output b "o" q;
  Rtl.Builder.annotate b
    (Rtl.Annot.value_set "q" [ Bitvec.zero 2; Bitvec.of_int ~width:2 1 ]);
  let low = Synth.Lower.run (Rtl.Builder.finish b) in
  match Synth.Annots.extract low with
  | [ a ] ->
    (match Synth.Annot_check.inductive low.Synth.Lower.aig a with
     | Synth.Annot_check.Proved -> Alcotest.fail "lie proved"
     | Synth.Annot_check.Refuted _ | Synth.Annot_check.Unproved _ -> ())
  | _ -> Alcotest.fail "expected one annotation"

let test_annot_check_bad_init () =
  let b = Rtl.Builder.create "badinit" in
  let q =
    Rtl.Builder.reg_declare b "q" ~width:2 ~reset:Rtl.Design.Sync_reset
      ~init:(Bitvec.of_int ~width:2 3)
  in
  Rtl.Builder.reg_connect b "q" q;
  Rtl.Builder.output b "o" q;
  Rtl.Builder.annotate b (Rtl.Annot.value_set "q" [ Bitvec.zero 2 ]);
  let low = Synth.Lower.run (Rtl.Builder.finish b) in
  match Synth.Annots.extract low with
  | [ a ] ->
    (match Synth.Annot_check.inductive low.Synth.Lower.aig a with
     | Synth.Annot_check.Refuted _ -> ()
     | r -> Alcotest.failf "expected refutation, got %s" (check_result r))
  | _ -> Alcotest.fail "expected one annotation"

let test_pctrl_manual_annotations_proved () =
  (* Every Manual-mode annotation the PCtrl generator emits is a proved
     invariant. The sequencer field registers depend on the µPC register,
     so their per-annotation induction is only provable given the µPC
     annotation — checked jointly by construction; individually they may
     land on Unproved but never Refuted. *)
  let mode = Pctrl.Controller.Uncached in
  let low = Synth.Lower.run (Pctrl.Controller.manual_design mode) in
  let annots = Synth.Annots.extract low in
  Alcotest.(check bool) "several annotations" true (List.length annots >= 6);
  List.iter
    (fun (a : Synth.Annots.t) ->
      match Synth.Annot_check.inductive low.Synth.Lower.aig a with
      | Synth.Annot_check.Refuted reason ->
        Alcotest.failf "annotation %s refuted: %s" a.Synth.Annots.base reason
      | Synth.Annot_check.Proved | Synth.Annot_check.Unproved _ -> ())
    annots

(* ------------------------------------------------------ vertical ucode *)

let test_vertical_equivalent () =
  let p = Core.Ctrl_spec.compile dma_spec in
  let h = Core.Microcode.to_rtl ~style:`Horizontal ~storage:`Rom p in
  let v = Core.Microcode.to_rtl ~style:`Vertical ~storage:`Rom p in
  let gh = (Synth.Lower.run h).Synth.Lower.aig in
  let gv = (Synth.Lower.run v).Synth.Lower.aig in
  (match Synth.Equiv.aig_vs_aig ~seed:2 gh gv with
   | None -> ()
   | Some m ->
     Alcotest.failf "styles diverge at cycle %d on %s" m.Synth.Equiv.cycle
       m.Synth.Equiv.output);
  match Synth.Seq_check.run gh gv with
  | Synth.Seq_check.Equivalent -> ()
  | Synth.Seq_check.Counterexample o -> Alcotest.failf "differ on %s" o
  | Synth.Seq_check.Gave_up _ -> ()

let test_vertical_saves_config_bits () =
  (* A program with few distinct control words but wide fields. *)
  let wide =
    {
      Core.Ctrl_spec.name = "wide";
      fields = [ { Core.Microcode.fname = "ctl"; fwidth = 16; onehot = false } ];
      opcode_bits = 1;
      handlers =
        [
          ( 1,
            Core.Ctrl_spec.Seq
              [
                Core.Ctrl_spec.Repeat (6, Core.Ctrl_spec.Emit [ ("ctl", 0xBEEF land 0xFFFF) ]);
                Core.Ctrl_spec.Repeat (6, Core.Ctrl_spec.Emit [ ("ctl", 0x1234) ]);
                Core.Ctrl_spec.Done;
              ] );
        ];
    }
  in
  let p = Core.Ctrl_spec.compile wide in
  Alcotest.(check int) "three distinct words" 3
    (Core.Microcode.distinct_control_words p);
  let bits style =
    Rtl.Design.config_bit_count
      (Core.Microcode.to_rtl ~style ~storage:`Config p)
  in
  Alcotest.(check bool)
    (Printf.sprintf "vertical (%d) < horizontal (%d)" (bits `Vertical)
       (bits `Horizontal))
    true
    (bits `Vertical < bits `Horizontal);
  (* And the two flexible structures agree once programmed. *)
  let bind style =
    Synth.Partial_eval.bind_tables
      (Core.Microcode.to_rtl ~style ~storage:`Config p)
      (Core.Microcode.config_bindings ~style p)
  in
  match
    Synth.Equiv.aig_vs_aig ~seed:4
      (Synth.Lower.run (bind `Horizontal)).Synth.Lower.aig
      (Synth.Lower.run (bind `Vertical)).Synth.Lower.aig
  with
  | None -> ()
  | Some m -> Alcotest.failf "bound styles diverge on %s" m.Synth.Equiv.output

(* ----------------------------------------------------------- seq_check *)

let test_seq_check_proves_flow () =
  let fsm =
    Workload.Rand_fsm.generate ~seed:77 ~num_inputs:2 ~num_outputs:3 ~num_states:4
  in
  let d =
    Synth.Partial_eval.bind_tables
      (Core.Fsm_ir.to_flexible_rtl fsm)
      (Core.Fsm_ir.config_bindings fsm)
  in
  let low = Synth.Lower.run d in
  let opt = (Synth.Flow.compile lib d).Synth.Flow.aig in
  match Synth.Seq_check.run low.Synth.Lower.aig opt with
  | Synth.Seq_check.Equivalent -> ()
  | Synth.Seq_check.Counterexample o -> Alcotest.failf "differs on %s" o
  | Synth.Seq_check.Gave_up r -> Alcotest.failf "gave up: %s" r

let test_seq_check_proves_retime () =
  let b = Rtl.Builder.create "rt" in
  let x = Rtl.Builder.input b "x" 3 in
  let r = Rtl.Builder.reg b "r" ~reset:Rtl.Design.No_reset ~d:x in
  Rtl.Builder.output b "o" (Rtl.Expr.red_and r);
  let low = Synth.Lower.run (Rtl.Builder.finish b) in
  let g = low.Synth.Lower.aig in
  match Synth.Seq_check.run g (Synth.Retime.run g) with
  | Synth.Seq_check.Equivalent -> ()
  | Synth.Seq_check.Counterexample o -> Alcotest.failf "differs on %s" o
  | Synth.Seq_check.Gave_up r -> Alcotest.failf "gave up: %s" r

let test_seq_check_finds_bugs () =
  (* An inverted output must be caught. *)
  let build invert =
    let b = Rtl.Builder.create "m" in
    let x = Rtl.Builder.input b "x" 1 in
    let r = Rtl.Builder.reg b "r" ~d:x in
    Rtl.Builder.output b "o" (if invert then Rtl.Expr.not_ r else r);
    (Synth.Lower.run (Rtl.Builder.finish b)).Synth.Lower.aig
  in
  match Synth.Seq_check.run (build false) (build true) with
  | Synth.Seq_check.Counterexample "o[0]" -> ()
  | Synth.Seq_check.Counterexample o -> Alcotest.failf "wrong output %s" o
  | Synth.Seq_check.Equivalent -> Alcotest.fail "missed the bug"
  | Synth.Seq_check.Gave_up r -> Alcotest.failf "gave up: %s" r

let test_seq_check_deep_counter () =
  (* Bug only reachable after 8 steps: a counter that misbehaves at 7.
     Random simulation from reset finds this too, but the point is the
     exact reachability proof. *)
  let build buggy =
    let b = Rtl.Builder.create "c" in
    let q = Rtl.Builder.reg_declare b "q" ~width:3 in
    Rtl.Builder.reg_connect b "q" (Rtl.Expr.add q (Rtl.Expr.of_int ~width:3 1));
    let top = Rtl.Expr.eq_const q 7 in
    Rtl.Builder.output b "o" (if buggy then Rtl.Expr.not_ top else top);
    (Synth.Lower.run (Rtl.Builder.finish b)).Synth.Lower.aig
  in
  match Synth.Seq_check.run (build false) (build true) with
  | Synth.Seq_check.Counterexample _ -> ()
  | Synth.Seq_check.Equivalent -> Alcotest.fail "missed the deep bug"
  | Synth.Seq_check.Gave_up r -> Alcotest.failf "gave up: %s" r

let () =
  Alcotest.run "extensions"
    [
      ( "ctrl_spec",
        [
          Alcotest.test_case "compiles" `Quick test_spec_compiles;
          Alcotest.test_case "instruction count" `Quick test_spec_instruction_count;
          Alcotest.test_case "dedup" `Quick test_spec_dedup;
          Alcotest.test_case "errors" `Quick test_spec_errors;
          Alcotest.test_case "hardware matches" `Quick test_spec_hardware;
        ] );
      ( "encodings",
        [
          Alcotest.test_case "codes" `Quick test_encoding_codes;
          Alcotest.test_case "equivalent behaviour" `Quick test_encodings_equivalent;
          Alcotest.test_case "one-hot table rejected" `Quick
            test_onehot_table_rejected;
        ] );
      ( "vertical microcode",
        [
          Alcotest.test_case "equivalent to horizontal" `Quick
            test_vertical_equivalent;
          Alcotest.test_case "saves configuration bits" `Quick
            test_vertical_saves_config_bits;
        ] );
      ( "annot_check",
        [
          Alcotest.test_case "fsm state vector" `Quick test_annot_check_fsm;
          Alcotest.test_case "one-hot register" `Quick test_annot_check_onehot;
          Alcotest.test_case "refutes lies" `Quick test_annot_check_refutes_lies;
          Alcotest.test_case "refutes bad init" `Quick test_annot_check_bad_init;
          Alcotest.test_case "pctrl annotations never refuted" `Slow
            test_pctrl_manual_annotations_proved;
        ] );
      ( "seq_check",
        [
          Alcotest.test_case "proves the flow" `Quick test_seq_check_proves_flow;
          Alcotest.test_case "proves retiming" `Quick test_seq_check_proves_retime;
          Alcotest.test_case "finds bugs" `Quick test_seq_check_finds_bugs;
          Alcotest.test_case "deep counterexample" `Quick test_seq_check_deep_counter;
        ] );
    ]
