(* Coverage for the smaller subsystems: cells, report tables, power
   estimation and the gate-level netlist writer. *)

let lib = Cells.Library.vt90

let test_cell_truth_tables () =
  let check name inputs expected =
    let c = Cells.Library.find lib name in
    List.iteri
      (fun assignment exp ->
        Alcotest.(check bool)
          (Printf.sprintf "%s(%d)" name assignment)
          exp
          (Cells.Cell.eval_comb c assignment))
      inputs;
    ignore expected
  in
  check "INV" [ true; false ] ();
  check "NAND2" [ true; true; true; false ] ();
  check "NOR2" [ true; false; false; false ] ();
  check "XOR2" [ false; true; true; false ] ();
  check "AND2" [ false; false; false; true ] ();
  (* MUX2: pins (a = s0-branch, b = s1-branch, s). *)
  let mux = Cells.Library.find lib "MUX2" in
  List.iter
    (fun (a, b, s) ->
      let idx = (if a then 1 else 0) lor (if b then 2 else 0) lor (if s then 4 else 0) in
      Alcotest.(check bool)
        (Printf.sprintf "mux a=%b b=%b s=%b" a b s)
        (if s then b else a)
        (Cells.Cell.eval_comb mux idx))
    [ (false, true, false); (false, true, true); (true, false, false);
      (true, false, true) ];
  (* AOI21 = ~((a & b) | c). *)
  let aoi = Cells.Library.find lib "AOI21" in
  for idx = 0 to 7 do
    let a = idx land 1 = 1 and b = idx lsr 1 land 1 = 1 and c = idx lsr 2 land 1 = 1 in
    Alcotest.(check bool)
      (Printf.sprintf "aoi %d" idx)
      (not ((a && b) || c))
      (Cells.Cell.eval_comb aoi idx)
  done;
  (* OAI21 = ~((a | b) & c). *)
  let oai = Cells.Library.find lib "OAI21" in
  for idx = 0 to 7 do
    let a = idx land 1 = 1 and b = idx lsr 1 land 1 = 1 and c = idx lsr 2 land 1 = 1 in
    Alcotest.(check bool)
      (Printf.sprintf "oai %d" idx)
      (not ((a || b) && c))
      (Cells.Cell.eval_comb oai idx)
  done

let test_cell_validation () =
  (match Cells.Cell.make_comb "BAD" ~arity:5 ~table:0 ~area:1.0 ~delay:1.0 with
   | _ -> Alcotest.fail "arity 5 accepted"
   | exception Invalid_argument _ -> ());
  (match Cells.Cell.make_comb "BAD" ~arity:1 ~table:7 ~area:1.0 ~delay:1.0 with
   | _ -> Alcotest.fail "overwide table accepted"
   | exception Invalid_argument _ -> ());
  let dff = Cells.Library.flop lib Rtl.Design.No_reset in
  Alcotest.(check bool) "flop is flop" true (Cells.Cell.is_flop dff);
  (match Cells.Cell.eval_comb dff 0 with
   | _ -> Alcotest.fail "flop eval accepted"
   | exception Invalid_argument _ -> ())

let test_library_order () =
  (* Flops exist for all three reset styles, with distinct costs. *)
  let a r = (Cells.Library.flop lib r).Cells.Cell.area in
  Alcotest.(check bool) "dff < sdff < adff" true
    (a Rtl.Design.No_reset < a Rtl.Design.Sync_reset
     && a Rtl.Design.Sync_reset < a Rtl.Design.Async_reset)

let test_report_table () =
  let text =
    Report.Table.render ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "long-name"; "22" ]; [ "b" ] ]
  in
  let lines = String.split_on_char '\n' text in
  (match lines with
   | header :: sep :: rows ->
     Alcotest.(check bool) "aligned" true
       (String.length header = String.length sep);
     List.iter
       (fun row ->
         if row <> "" then
           Alcotest.(check int) "row width" (String.length header)
             (String.length row))
       rows
   | _ -> Alcotest.fail "too short");
  Alcotest.(check string) "area format" "12.3" (Report.Table.fmt_area 12.345);
  Alcotest.(check string) "ratio format" "0.67" (Report.Table.fmt_ratio (2.0 /. 3.0))

let test_power_sanity () =
  (* A free-running counter toggles; a held constant register does not. *)
  let counter =
    let b = Rtl.Builder.create "c" in
    let q = Rtl.Builder.reg_declare b "q" ~width:4 in
    Rtl.Builder.reg_connect b "q" (Rtl.Expr.add q (Rtl.Expr.of_int ~width:4 1));
    Rtl.Builder.output b "o" q;
    Rtl.Builder.finish b
  in
  let still =
    let b = Rtl.Builder.create "s" in
    let x = Rtl.Builder.input b "x" 1 in
    ignore x;
    let q = Rtl.Builder.reg_declare b "q" ~width:4 in
    Rtl.Builder.reg_connect b "q" q;
    Rtl.Builder.output b "o" q;
    Rtl.Builder.finish b
  in
  let power d =
    let g = (Synth.Lower.run d).Synth.Lower.aig in
    Synth.Power.estimate ~cycles:64 lib g
  in
  let pc = power counter and ps = power still in
  Alcotest.(check bool) "counter toggles" true (pc.Synth.Power.toggles_per_cycle > 1.0);
  Alcotest.(check bool) "held register silent" true
    (ps.Synth.Power.dynamic = 0.0);
  Alcotest.(check bool) "leakage proportional to area" true
    (ps.Synth.Power.leakage > 0.0)

let test_power_config_programs () =
  (* Programming the config memory wakes the flexible design up. *)
  let tt = Workload.Rand_table.generate ~seed:5 ~depth:16 ~width:8 in
  let d = Core.Truth_table.to_flexible_rtl tt in
  let g = (Synth.Lower.run d).Synth.Lower.aig in
  let empty = Synth.Power.estimate ~cycles:64 lib g in
  let programmed =
    Synth.Power.estimate ~cycles:64 ~config:[ Core.Truth_table.config_binding tt ]
      lib g
  in
  Alcotest.(check bool)
    (Printf.sprintf "programmed (%.1f) > empty (%.1f)"
       programmed.Synth.Power.dynamic empty.Synth.Power.dynamic)
    true
    (programmed.Synth.Power.dynamic > empty.Synth.Power.dynamic)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_netlist_structure () =
  let fsm =
    Workload.Rand_fsm.generate ~seed:1 ~num_inputs:2 ~num_outputs:3 ~num_states:4
  in
  let d =
    Synth.Partial_eval.bind_tables
      (Core.Fsm_ir.to_flexible_rtl fsm)
      (Core.Fsm_ir.config_bindings fsm)
  in
  let g = (Synth.Flow.compile lib d).Synth.Flow.aig in
  let text = Synth.Netlist.emit lib ~name:"fsm4" g in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true (contains text fragment))
    [ "module fsm4"; "input clk"; "SDFF"; ".CLK(clk)"; "endmodule" ];
  (* No dangling markers. *)
  Alcotest.(check bool) "name substituted" false (contains text "%NAME%")

let test_flow_report_consistency () =
  (* comb_area equals the summed area of the combinational cells in the
     count list; seq_area likewise. *)
  let d = Workload.Rand_design.generate ~seed:17 in
  let r = (Synth.Flow.compile lib d).Synth.Flow.report in
  let area_of (name, k) =
    float_of_int k *. (Cells.Library.find lib name).Cells.Cell.area
  in
  let comb, seq =
    List.fold_left
      (fun (c, s) ((name, _) as entry) ->
        if Cells.Cell.is_flop (Cells.Library.find lib name) then
          (c, s +. area_of entry)
        else (c +. area_of entry, s))
      (0.0, 0.0) r.Synth.Map.cell_counts
  in
  Alcotest.(check (float 0.01)) "comb area" comb r.Synth.Map.comb_area;
  Alcotest.(check (float 0.01)) "seq area" seq r.Synth.Map.seq_area

(* ---------------------------------------------------------------- liberty *)

let test_liberty_roundtrip () =
  let text = Cells.Liberty.print lib in
  let lib' = Cells.Liberty.parse text in
  Alcotest.(check int) "cell count"
    (List.length lib.Cells.Library.cells)
    (List.length lib'.Cells.Library.cells);
  List.iter
    (fun (c : Cells.Cell.t) ->
      let c' = Cells.Library.find lib' c.cname in
      Alcotest.(check (float 1e-9)) (c.cname ^ " area") c.area c'.Cells.Cell.area;
      match c.func, c'.Cells.Cell.func with
      | Cells.Cell.Comb { arity; table }, Cells.Cell.Comb { arity = a'; table = t' } ->
        Alcotest.(check int) (c.cname ^ " arity") arity a';
        Alcotest.(check int) (c.cname ^ " table") table t'
      | Cells.Cell.Flop r, Cells.Cell.Flop r' ->
        Alcotest.(check bool) (c.cname ^ " reset") true (r = r')
      | _, _ -> Alcotest.failf "%s changed kind" c.cname)
    lib.Cells.Library.cells;
  Alcotest.(check bool) "roundtripped library mappable" true
    (Cells.Liberty.check_mappable lib' = Ok ())

let test_liberty_functions () =
  let l =
    Cells.Liberty.parse
      {|library (t) {
          cell (G1) { function : "!(A*B)+C"; area : 1; delay : 0.1; }
          cell (G2) { function : "A^B^C"; area : 1; delay : 0.1; }
        }|}
  in
  let g1 = Cells.Library.find l "G1" in
  for idx = 0 to 7 do
    let a = idx land 1 = 1 and b = idx lsr 1 land 1 = 1 and c = idx lsr 2 land 1 = 1 in
    Alcotest.(check bool) "g1" ((not (a && b)) || c) (Cells.Cell.eval_comb g1 idx);
    Alcotest.(check bool) "g2"
      ((a <> b) <> c)
      (Cells.Cell.eval_comb (Cells.Library.find l "G2") idx)
  done

let test_liberty_scaled_flow () =
  (* Halving every cell area must halve the reported design area. *)
  let halved =
    {
      Cells.Library.lib_name = "vt45";
      cells =
        List.map
          (fun (c : Cells.Cell.t) -> { c with Cells.Cell.area = c.area /. 2.0 })
          lib.Cells.Library.cells;
    }
  in
  let halved = Cells.Liberty.parse (Cells.Liberty.print halved) in
  let d = Workload.Rand_design.generate ~seed:23 in
  let a90 = Synth.Map.total (Synth.Flow.compile lib d).Synth.Flow.report in
  let a45 = Synth.Map.total (Synth.Flow.compile halved d).Synth.Flow.report in
  Alcotest.(check (float 0.01)) "half the area" (a90 /. 2.0) a45

let test_liberty_errors () =
  let bad text =
    match Cells.Liberty.parse text with
    | _ -> Alcotest.failf "accepted %S" text
    | exception Cells.Liberty.Parse_error _ -> ()
  in
  bad "not a library";
  bad "library (x) { cell (Y) { area : 1; } }";
  bad "library (x) { cell (Y) { function : \"A*\"; area : 1; delay : 1; } }";
  bad "library (x) { cell (Y) { function : \"E\"; area : 1; delay : 1; } }";
  Alcotest.(check bool) "missing cells detected" true
    (match Cells.Liberty.check_mappable { Cells.Library.lib_name = "e"; cells = [] } with
     | Error _ -> true
     | Ok () -> false)

let () =
  Alcotest.run "misc"
    [
      ( "cells",
        [
          Alcotest.test_case "truth tables" `Quick test_cell_truth_tables;
          Alcotest.test_case "validation" `Quick test_cell_validation;
          Alcotest.test_case "library ordering" `Quick test_library_order;
        ] );
      ("report", [ Alcotest.test_case "table rendering" `Quick test_report_table ]);
      ( "power",
        [
          Alcotest.test_case "sanity" `Quick test_power_sanity;
          Alcotest.test_case "config programming" `Quick test_power_config_programs;
        ] );
      ( "netlist",
        [ Alcotest.test_case "structure" `Quick test_netlist_structure ] );
      ( "flow",
        [ Alcotest.test_case "report consistency" `Quick test_flow_report_consistency ] );
      ( "liberty",
        [
          Alcotest.test_case "roundtrip" `Quick test_liberty_roundtrip;
          Alcotest.test_case "functions" `Quick test_liberty_functions;
          Alcotest.test_case "scaled library flow" `Quick test_liberty_scaled_flow;
          Alcotest.test_case "errors" `Quick test_liberty_errors;
        ] );
    ]
