test/test_twolevel.ml: Alcotest List Printf QCheck QCheck_alcotest Random Twolevel
