test/test_ucpu.mli:
