test/test_pctrl.mli:
