test/test_core.ml: Alcotest Array Bitvec Core List Random Rtl Seq Workload
