test/test_synth.ml: Aig Alcotest Bitvec Cells Core Experiments List Option Random Rtl Synth Workload
