test/test_extensions.ml: Alcotest Bitvec Cells Core Experiments List Pctrl Printf Random Rtl Synth Workload
