test/test_aig.ml: Aig Alcotest Array Fmt List Printf QCheck QCheck_alcotest Random Rtl
