test/test_bdd.ml: Alcotest Bdd Bitvec List Printf QCheck QCheck_alcotest Seq
