test/test_fuzz.ml: Aig Alcotest Cells List Printf QCheck QCheck_alcotest Rtl String Synth Workload
