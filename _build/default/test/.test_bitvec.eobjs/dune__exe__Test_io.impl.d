test/test_io.ml: Aig Alcotest Bitvec Core List Printf QCheck QCheck_alcotest Rtl String Synth Workload
