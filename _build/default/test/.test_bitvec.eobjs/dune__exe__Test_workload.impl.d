test/test_workload.ml: Alcotest Bitvec Core Fun List Printf Workload
