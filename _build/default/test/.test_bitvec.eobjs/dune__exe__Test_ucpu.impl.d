test/test_ucpu.ml: Alcotest Array Bitvec Cells Core Fun List Printf QCheck QCheck_alcotest Rtl String Synth Ucpu
