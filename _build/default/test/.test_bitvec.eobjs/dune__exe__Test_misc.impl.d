test/test_misc.ml: Alcotest Cells Core List Printf Report Rtl String Synth Workload
