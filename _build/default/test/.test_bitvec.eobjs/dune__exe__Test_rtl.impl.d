test/test_rtl.ml: Alcotest Array Bitvec List Rtl String
