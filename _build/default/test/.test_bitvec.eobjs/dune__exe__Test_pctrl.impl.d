test/test_pctrl.ml: Alcotest Bitvec Cells Core Fun List Pctrl Rtl Synth
