test/test_integration.ml: Alcotest Bitvec Cells Core List Printf Rtl Synth Workload
