let lib = Cells.Library.vt90

(* --------------------------------------------------------------- datapipe *)

let test_pipe_fsm_shape () =
  let fsm = Pctrl.Datapipe.fsm in
  Alcotest.(check int) "states" 10 (Core.Fsm_ir.num_states fsm);
  Alcotest.(check bool) "moore" true (Core.Fsm_ir.is_moore fsm);
  Alcotest.(check (list int)) "all states reachable"
    (List.init 10 Fun.id) (Core.Fsm_ir.reachable fsm)

let test_pipe_streaming_states_gated () =
  (* Without line commands, the streaming states are unreachable. *)
  let without_line =
    Pctrl.Datapipe.reachable_states_for_cmds
      [ Pctrl.Protocol.cmd_read; Pctrl.Protocol.cmd_write ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " unreachable") false
        (List.mem s without_line))
    Pctrl.Datapipe.streaming_states;
  let with_line =
    Pctrl.Datapipe.reachable_states_for_cmds
      [ Pctrl.Protocol.cmd_line_read; Pctrl.Protocol.cmd_line_write ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " reachable") true (List.mem s with_line))
    Pctrl.Datapipe.streaming_states

let test_pipe_transfer_story () =
  (* IDLE -cmd=read-> RREQ -rdy-> RXFER -> DONE -> IDLE, with the expected
     Moore outputs along the way. *)
  let fsm = Pctrl.Datapipe.fsm in
  let step state cmd rdy =
    Core.Fsm_ir.step fsm ~state
      ~input:(Pctrl.Datapipe.input_assignment ~cmd ~rdy)
  in
  let s1, o1 = step 0 Pctrl.Protocol.cmd_read false in
  Alcotest.(check bool) "idle output quiet" true
    (Bitvec.is_zero (snd (step 0 Pctrl.Protocol.cmd_idle false)));
  Alcotest.(check bool) "request raised" true
    (Bitvec.get o1 Pctrl.Datapipe.out_mem_en = false);
  (* Moore: output of IDLE is 0; mem_en asserts in RREQ. *)
  let s2, o2 = step s1 Pctrl.Protocol.cmd_read true in
  Alcotest.(check bool) "rreq drives mem_en" true
    (Bitvec.get o2 Pctrl.Datapipe.out_mem_en);
  let s3, o3 = step s2 Pctrl.Protocol.cmd_idle true in
  Alcotest.(check bool) "xfer writes buffer" true
    (Bitvec.get o3 Pctrl.Datapipe.out_buf_we);
  let s4, o4 = step s3 Pctrl.Protocol.cmd_idle true in
  Alcotest.(check bool) "done pulses" true (Bitvec.get o4 Pctrl.Datapipe.out_done);
  let s5, _ = step s4 Pctrl.Protocol.cmd_idle true in
  Alcotest.(check int) "back to idle" 0 s5

(* --------------------------------------------------------------- dispatch *)

let test_programs_share_geometry () =
  let c = Pctrl.Dispatch.program Pctrl.Dispatch.Cached in
  let u = Pctrl.Dispatch.program Pctrl.Dispatch.Uncached in
  Alcotest.(check int) "depth" (Core.Microcode.depth c) (Core.Microcode.depth u);
  Alcotest.(check int) "word width" (Core.Microcode.word_width c)
    (Core.Microcode.word_width u);
  Alcotest.(check string) "same table namespace" c.Core.Microcode.pname
    u.Core.Microcode.pname

let test_uncached_smaller () =
  let c = Pctrl.Dispatch.program Pctrl.Dispatch.Cached in
  let u = Pctrl.Dispatch.program Pctrl.Dispatch.Uncached in
  let reach p = List.length (Core.Microcode.reachable_addrs p) in
  Alcotest.(check bool) "uncached reaches far fewer microinstructions" true
    (reach u * 3 < reach c);
  let cmds mode = Pctrl.Dispatch.cmd_values mode in
  Alcotest.(check bool) "uncached never issues line commands" false
    (List.mem Pctrl.Protocol.cmd_line_read (cmds Pctrl.Dispatch.Uncached)
     || List.mem Pctrl.Protocol.cmd_line_write (cmds Pctrl.Dispatch.Uncached));
  Alcotest.(check bool) "cached issues line commands" true
    (List.mem Pctrl.Protocol.cmd_line_read (cmds Pctrl.Dispatch.Cached))

(* ------------------------------------------------------------- controller *)

let run_transaction ~mode ~op ~cycles =
  let design = Pctrl.Controller.full_design () in
  let st = Rtl.Eval.create ~config:(Pctrl.Controller.bindings mode) design in
  Rtl.Eval.reset st;
  let seen_read = ref false and seen_write = ref false and seen_resp = ref false in
  for cycle = 0 to cycles - 1 do
    let opv = if cycle < 3 then Pctrl.Protocol.encode_opcode op else 0 in
    Rtl.Eval.set_input st "op" (Bitvec.of_int ~width:3 opv);
    Rtl.Eval.set_input st "src" (Bitvec.of_int ~width:2 1);
    Rtl.Eval.set_input st "dst" (Bitvec.of_int ~width:2 3);
    Rtl.Eval.set_input st "rdy" (Bitvec.ones 1);
    Rtl.Eval.set_input st "data_in" (Bitvec.zero Pctrl.Controller.beat_width);
    let en = Rtl.Eval.peek st "mem_en" and we = Rtl.Eval.peek st "mem_we" in
    if Bitvec.get en 1 && not (Bitvec.get we 1) then seen_read := true;
    if Bitvec.get en 3 && Bitvec.get we 3 then seen_write := true;
    if Bitvec.reduce_or (Rtl.Eval.peek st "resp") then seen_resp := true;
    Rtl.Eval.step st
  done;
  (!seen_read, !seen_write, !seen_resp)

let test_copy_line_transaction () =
  let seen_read, seen_write, seen_resp =
    run_transaction ~mode:Pctrl.Controller.Cached ~op:Pctrl.Protocol.Copy_line
      ~cycles:40
  in
  Alcotest.(check bool) "read strobes on src pipe" true seen_read;
  Alcotest.(check bool) "write strobes on dst pipe" true seen_write;
  Alcotest.(check bool) "responded" true seen_resp

let test_uncached_read_transaction () =
  let seen_read, _, seen_resp =
    run_transaction ~mode:Pctrl.Controller.Uncached ~op:Pctrl.Protocol.Unc_read
      ~cycles:20
  in
  Alcotest.(check bool) "read strobe" true seen_read;
  Alcotest.(check bool) "responded" true seen_resp

let test_uncached_line_op_degrades () =
  (* In uncached mode a Read_line is served as a single-beat read. *)
  let seen_read, seen_write, seen_resp =
    run_transaction ~mode:Pctrl.Controller.Uncached ~op:Pctrl.Protocol.Read_line
      ~cycles:20
  in
  Alcotest.(check bool) "read strobe" true seen_read;
  Alcotest.(check bool) "no write" false seen_write;
  Alcotest.(check bool) "responded" true seen_resp

let test_bindings_cover_all_tables () =
  let design = Pctrl.Controller.full_design () in
  let bound =
    Synth.Partial_eval.bind_tables design
      (Pctrl.Controller.bindings Pctrl.Controller.Cached)
  in
  Alcotest.(check int) "no config left" 0 (Rtl.Design.config_bit_count bound)

let test_manual_annotations_valid () =
  List.iter
    (fun mode ->
      (* add_annots + validate run inside manual_design. *)
      let d = Pctrl.Controller.manual_design mode in
      Rtl.Design.validate d;
      Alcotest.(check bool) "has annotations" true
        (List.length d.Rtl.Design.annots >= 6))
    [ Pctrl.Controller.Cached; Pctrl.Controller.Uncached ]

let test_manual_equivalent_to_auto () =
  (* The generator's annotations are facts: honouring them cannot change
     behaviour. *)
  let mode = Pctrl.Controller.Uncached in
  let auto = Synth.Flow.compile lib (Pctrl.Controller.auto_design mode) in
  let manual =
    Synth.Flow.compile
      ~options:{ Synth.Flow.default with honor_generator_annots = true }
      lib (Pctrl.Controller.manual_design mode)
  in
  match
    Synth.Equiv.aig_vs_aig ~seed:3 ~cycles:48 ~runs:4 auto.Synth.Flow.aig
      manual.Synth.Flow.aig
  with
  | None -> ()
  | Some m ->
    Alcotest.failf "manual/auto diverge at cycle %d on %s" m.Synth.Equiv.cycle
      m.Synth.Equiv.output

let test_fig9_ordering () =
  let report ?options d = (Synth.Flow.compile ?options lib d).Synth.Flow.report in
  let full = report (Pctrl.Controller.full_design ()) in
  let auto = report (Pctrl.Controller.auto_design Pctrl.Controller.Cached) in
  let manual_opts = { Synth.Flow.default with honor_generator_annots = true } in
  let manual_unc =
    report ~options:manual_opts
      (Pctrl.Controller.manual_design Pctrl.Controller.Uncached)
  in
  let auto_unc = report (Pctrl.Controller.auto_design Pctrl.Controller.Uncached) in
  Alcotest.(check bool) "auto halves comb" true
    (auto.Synth.Map.comb_area < 0.8 *. full.Synth.Map.comb_area);
  Alcotest.(check bool) "auto halves seq" true
    (auto.Synth.Map.seq_area < 0.8 *. full.Synth.Map.seq_area);
  Alcotest.(check bool) "uncached below cached" true
    (Synth.Map.total auto_unc < Synth.Map.total auto);
  Alcotest.(check bool) "manual saves in uncached" true
    (Synth.Map.total manual_unc < Synth.Map.total auto_unc)

let () =
  Alcotest.run "pctrl"
    [
      ( "datapipe",
        [
          Alcotest.test_case "fsm shape" `Quick test_pipe_fsm_shape;
          Alcotest.test_case "streaming states gated" `Quick
            test_pipe_streaming_states_gated;
          Alcotest.test_case "transfer story" `Quick test_pipe_transfer_story;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "programs share geometry" `Quick
            test_programs_share_geometry;
          Alcotest.test_case "uncached smaller" `Quick test_uncached_smaller;
        ] );
      ( "controller",
        [
          Alcotest.test_case "copy_line transaction" `Quick
            test_copy_line_transaction;
          Alcotest.test_case "uncached read" `Quick test_uncached_read_transaction;
          Alcotest.test_case "uncached line op degrades" `Quick
            test_uncached_line_op_degrades;
          Alcotest.test_case "bindings cover tables" `Quick
            test_bindings_cover_all_tables;
          Alcotest.test_case "manual annotations valid" `Quick
            test_manual_annotations_valid;
          Alcotest.test_case "manual equivalent to auto" `Slow
            test_manual_equivalent_to_auto;
          Alcotest.test_case "fig9 ordering" `Slow test_fig9_ordering;
        ] );
    ]
