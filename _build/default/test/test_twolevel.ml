let cube3 mask value = Twolevel.Cube.make ~mask ~value

let test_cube_basics () =
  let c = cube3 0b101 0b001 in
  (* x0=1, x2=0 *)
  Alcotest.(check int) "literals" 2 (Twolevel.Cube.num_literals c);
  Alcotest.(check bool) "covers 001" true (Twolevel.Cube.covers_minterm c 0b001);
  Alcotest.(check bool) "covers 011" true (Twolevel.Cube.covers_minterm c 0b011);
  Alcotest.(check bool) "not 101" false (Twolevel.Cube.covers_minterm c 0b101);
  Alcotest.(check (list int)) "free vars" [ 1 ] (Twolevel.Cube.free_vars ~nvars:3 c);
  Alcotest.(check bool) "top subsumes" true
    (Twolevel.Cube.subsumes Twolevel.Cube.top c);
  Alcotest.(check bool) "self subsumes" true (Twolevel.Cube.subsumes c c);
  Alcotest.(check bool) "specific not subsumes" false
    (Twolevel.Cube.subsumes c Twolevel.Cube.top)

let test_cube_combine () =
  let a = Twolevel.Cube.of_minterm ~nvars:3 0b000 in
  let b = Twolevel.Cube.of_minterm ~nvars:3 0b100 in
  (match Twolevel.Cube.combine a b with
   | Some c ->
     Alcotest.(check int) "merged literals" 2 (Twolevel.Cube.num_literals c);
     Alcotest.(check bool) "covers both" true
       (Twolevel.Cube.covers_minterm c 0 && Twolevel.Cube.covers_minterm c 4)
   | None -> Alcotest.fail "expected merge");
  let c = Twolevel.Cube.of_minterm ~nvars:3 0b011 in
  Alcotest.(check bool) "distance 2 no merge" true
    (Twolevel.Cube.combine a c = None)

let test_cube_minterms () =
  let c = cube3 0b100 0b100 in
  let by_seq = List.of_seq (Twolevel.Cube.minterms ~nvars:3 c) in
  let by_iter = ref [] in
  Twolevel.Cube.iter_minterms ~nvars:3 (fun m -> by_iter := m :: !by_iter) c;
  Alcotest.(check (list int)) "same sets" (List.sort compare by_seq)
    (List.sort compare !by_iter);
  Alcotest.(check int) "count" 4 (List.length by_seq)

let random_tf ~nvars ~seed ~dc =
  let rng = Random.State.make [| seed; nvars |] in
  Twolevel.Truthfn.of_fun ~nvars (fun _ ->
      let r = Random.State.int rng 100 in
      if r < 40 then Twolevel.Truthfn.On
      else if dc && r < 55 then Twolevel.Truthfn.Dc
      else Twolevel.Truthfn.Off)

let test_qm_exact_small () =
  (* f = x0 xor x1: needs exactly 2 cubes of 2 literals. *)
  let tf =
    Twolevel.Truthfn.of_fun ~nvars:2 (fun m ->
        if m land 1 <> (m lsr 1) land 1 then Twolevel.Truthfn.On
        else Twolevel.Truthfn.Off)
  in
  let cover = Twolevel.Qm.minimize ~exact:true tf in
  Alcotest.(check int) "cubes" 2 (Twolevel.Cover.num_cubes cover);
  Alcotest.(check int) "literals" 4 (Twolevel.Cover.literals cover);
  Alcotest.(check bool) "agrees" true (Twolevel.Cover.agrees cover tf)

let test_qm_dc_exploited () =
  (* ON = {0}, DC = {1,2,3}: a single empty cube (constant true) suffices. *)
  let tf = Twolevel.Truthfn.create ~nvars:2 Twolevel.Truthfn.Dc in
  Twolevel.Truthfn.set tf 0 Twolevel.Truthfn.On;
  let cover = Twolevel.Qm.minimize ~exact:true tf in
  Alcotest.(check int) "one cube" 1 (Twolevel.Cover.num_cubes cover);
  Alcotest.(check int) "no literals" 0 (Twolevel.Cover.literals cover)

let test_espresso_phases () =
  let tf = random_tf ~nvars:6 ~seed:5 ~dc:true in
  let initial = (Twolevel.Cover.of_truthfn tf).Twolevel.Cover.cubes in
  let expanded = Twolevel.Espresso.expand tf initial in
  Alcotest.(check bool) "expand valid" true (Twolevel.Truthfn.cover_agrees tf expanded);
  Alcotest.(check bool) "expand no bigger" true
    (List.length expanded <= List.length initial);
  let irr = Twolevel.Espresso.irredundant tf expanded in
  Alcotest.(check bool) "irredundant valid" true (Twolevel.Truthfn.cover_agrees tf irr);
  (* Every remaining cube is needed. *)
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) irr in
      Alcotest.(check bool)
        (Printf.sprintf "cube %d essential" i)
        false
        (Twolevel.Truthfn.cover_agrees tf without))
    irr

let test_cover_subsumed () =
  let nvars = 3 in
  let c1 = Twolevel.Cube.of_minterm ~nvars 0 in
  let c2 = cube3 0b011 0b000 in
  (* c2 subsumes c1 *)
  let cover = Twolevel.Cover.make ~nvars [ c1; c2 ] in
  let cleaned = Twolevel.Cover.remove_subsumed cover in
  Alcotest.(check int) "one left" 1 (Twolevel.Cover.num_cubes cleaned)

let prop_minimizers_agree =
  let arb =
    QCheck.make
      ~print:(fun (n, s) -> Printf.sprintf "nvars=%d seed=%d" n s)
      QCheck.Gen.(pair (2 -- 7) (0 -- 1000))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"qm and espresso both implement the function"
       arb
       (fun (nvars, seed) ->
         let tf = random_tf ~nvars ~seed ~dc:true in
         let qm = Twolevel.Qm.minimize tf in
         let esp = Twolevel.Espresso.minimize tf in
         Twolevel.Cover.agrees qm tf && Twolevel.Cover.agrees esp tf))

let prop_espresso_not_worse_than_minterms =
  let arb =
    QCheck.make
      ~print:(fun (n, s) -> Printf.sprintf "nvars=%d seed=%d" n s)
      QCheck.Gen.(pair (2 -- 8) (0 -- 1000))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"espresso never worse than canonical cover"
       arb
       (fun (nvars, seed) ->
         let tf = random_tf ~nvars ~seed ~dc:false in
         let esp = Twolevel.Espresso.minimize tf in
         Twolevel.Cover.num_cubes esp
         <= Twolevel.Cover.num_cubes (Twolevel.Cover.of_truthfn tf)))

let () =
  Alcotest.run "twolevel"
    [
      ( "cube",
        [
          Alcotest.test_case "basics" `Quick test_cube_basics;
          Alcotest.test_case "combine" `Quick test_cube_combine;
          Alcotest.test_case "minterm iteration" `Quick test_cube_minterms;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "qm exact xor" `Quick test_qm_exact_small;
          Alcotest.test_case "qm exploits dc" `Quick test_qm_dc_exploited;
          Alcotest.test_case "espresso phases" `Quick test_espresso_phases;
          Alcotest.test_case "cover subsumption" `Quick test_cover_subsumed;
        ] );
      ( "properties",
        [ prop_minimizers_agree; prop_espresso_not_worse_than_minterms ] );
    ]
