(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (Figs. 5, 6, 8, 9), the ablations documented in DESIGN.md, and
   Bechamel micro-benchmarks of the synthesis passes.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe fig5       -- one figure
     dune exec bench/main.exe quick      -- subsampled smoke run
     dune exec bench/main.exe perf       -- Bechamel pass benchmarks only *)

let fig5 () = Experiments.Fig5.print (Experiments.Fig5.run ())
let fig6 () = Experiments.Fig6.print (Experiments.Fig6.run ())
let fig8 () = Experiments.Fig8.print (Experiments.Fig8.run ())
let fig9 () = Experiments.Fig9.print (Experiments.Fig9.run ())

let quick () =
  Experiments.Fig5.print
    (Experiments.Fig5.run ~seeds:[ 0 ] ~grid:Experiments.Fig5.quick_grid ());
  Experiments.Fig6.print
    (Experiments.Fig6.run ~seeds:[ 0 ] ~grid:Experiments.Fig6.quick_grid ());
  Experiments.Fig8.print (Experiments.Fig8.run ~widths:[ 2; 8; 32; 64 ] ());
  Experiments.Fig9.print (Experiments.Fig9.run ())

let ablations () =
  Experiments.Ablation.cone_cap ();
  Experiments.Ablation.twolevel ();
  Experiments.Ablation.annot_cap ();
  Experiments.Ablation.encodings ();
  Experiments.Ablation.library_richness ();
  Experiments.Ablation.microcode_style ()

(* One Bechamel test per synthesis stage, all in one executable. *)
let perf () =
  let open Bechamel in
  let tt = Workload.Rand_table.generate ~seed:0 ~depth:256 ~width:8 in
  let bound =
    Synth.Partial_eval.bind_tables
      (Core.Truth_table.to_flexible_rtl tt)
      [ Core.Truth_table.config_binding tt ]
  in
  let fsm =
    Workload.Rand_fsm.generate ~seed:0 ~num_inputs:2 ~num_outputs:8
      ~num_states:16
  in
  let fsm_design =
    Synth.Partial_eval.bind_tables
      (Core.Fsm_ir.to_flexible_rtl ~annotate:true fsm)
      (Core.Fsm_ir.config_bindings fsm)
  in
  let lowered_fsm = (Synth.Lower.run fsm_design).Synth.Lower.aig in
  let tf =
    let rng = Workload.Rng.make 99 in
    Twolevel.Truthfn.of_fun ~nvars:10 (fun _ ->
        if Workload.Rng.int rng 2 = 0 then Twolevel.Truthfn.On
        else Twolevel.Truthfn.Off)
  in
  let lib = Cells.Library.vt90 in
  let pipe_lowered =
    Synth.Lower.run
      (Synth.Partial_eval.bind_tables
         (Core.Fsm_ir.to_flexible_rtl Pctrl.Datapipe.fsm)
         (Core.Fsm_ir.config_bindings Pctrl.Datapipe.fsm))
  in
  let stage name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"passes"
      [
        stage "lower-256x8-table" (fun () -> Synth.Lower.run bound);
        stage "espresso-10var" (fun () -> Twolevel.Espresso.minimize tf);
        stage "collapse-fsm16" (fun () -> Synth.Collapse.run ~annots:[] lowered_fsm);
        stage "sweep-fsm16" (fun () -> Synth.Sweep.run lowered_fsm);
        stage "map-fsm16" (fun () -> Synth.Map.run lib lowered_fsm);
        stage "flow-fsm16" (fun () -> Synth.Flow.compile lib fsm_design);
        stage "bdd-reach-pipe" (fun () ->
            match
              Synth.Reach.latch_group pipe_lowered.Synth.Lower.aig
                ~prefix:"state"
            with
            | Some group ->
              ignore
                (Synth.Reach.reachable_values pipe_lowered.Synth.Lower.aig
                   ~group)
            | None -> ());
      ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "== Bechamel: synthesis pass timings (monotonic clock) ==";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      if ns > 1_000_000.0 then
        Printf.printf "%-32s %10.3f ms/run\n" name (ns /. 1e6)
      else Printf.printf "%-32s %10.1f ns/run\n" name ns)
    (List.sort Stdlib.compare !rows);
  print_newline ()

let all () =
  fig5 ();
  fig6 ();
  fig8 ();
  fig9 ();
  ablations ();
  perf ()

let () =
  match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] -> all ()
  | [ _; "fig5" ] -> fig5 ()
  | [ _; "fig6" ] -> fig6 ()
  | [ _; "fig8" ] -> fig8 ()
  | [ _; "fig9" ] -> fig9 ()
  | [ _; "quick" ] -> quick ()
  | [ _; "perf" ] -> perf ()
  | [ _; "ablate-cone" ] -> Experiments.Ablation.cone_cap ()
  | [ _; "ablate-twolevel" ] -> Experiments.Ablation.twolevel ()
  | [ _; "ablate-cap" ] -> Experiments.Ablation.annot_cap ()
  | [ _; "ablate-encodings" ] -> Experiments.Ablation.encodings ()
  | [ _; "ablate-library" ] -> Experiments.Ablation.library_richness ()
  | [ _; "ablate-ucode" ] -> Experiments.Ablation.microcode_style ()
  | [ _; "ablations" ] -> ablations ()
  | _ ->
    prerr_endline
      "usage: main.exe \
       [all|quick|fig5|fig6|fig8|fig9|ablations|ablate-cone|ablate-twolevel|ablate-cap|perf]";
    exit 2
