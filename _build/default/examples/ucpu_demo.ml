(* The second case study: a microcoded 8-bit CPU, after the machines the
   paper cites as the home turf of microprogrammed control (System/360,
   VAX 8800).

   1. Assemble a Fibonacci program and run it on the golden-model
      interpreter and on the generated RTL — same answer, ~2.5 clocks per
      instruction.
   2. Compare the flexible control unit (microcode in configuration
      memories) against its partial evaluation.
   3. Re-program the *control store* only — SUB becomes AND — and watch the
      same silicon implement a different ISA: the paper's "facilitates
      patches late in the design cycle".

   Run with: dune exec examples/ucpu_demo.exe *)

let () =
  let n = 10 in
  let program = Ucpu.Isa.fib_program n in
  let golden = Ucpu.Isa.run ~program () in
  Printf.printf "golden model:  fib(%d) = %d\n" n golden.Ucpu.Isa.acc;

  let d = Ucpu.Machine.specialized ~program () in
  let st, cycles = Ucpu.Machine.run_rtl d in
  Printf.printf "generated RTL: fib(%d) = %d  (%d clock cycles)\n" n
    (Bitvec.to_int (Rtl.Eval.peek st "acc"))
    cycles;

  let ctl = Ucpu.Control.program in
  Printf.printf
    "\ncontrol store: %d microinstructions, %d-bit words, %d live addresses\n"
    (Core.Microcode.depth ctl)
    (Core.Microcode.word_width ctl)
    (List.length (Core.Microcode.reachable_addrs ctl));

  let lib = Cells.Library.vt90 in
  let report dd = (Synth.Flow.compile lib dd).Synth.Flow.report in
  let full = report (Ucpu.Machine.full ~program) in
  let spec = report d in
  Printf.printf "area, flexible control:    %8.1f um^2 (%d config bits)\n"
    (Synth.Map.total full) full.Synth.Map.config_bits;
  Printf.printf "area, specialized control: %8.1f um^2\n" (Synth.Map.total spec);

  (* The late patch: identical hardware, new microcode, new ISA. *)
  let probe =
    Ucpu.Isa.assemble
      [ Ucpu.Isa.Ldi 12; Ucpu.Isa.Sta 1; Ucpu.Isa.Ldi 10; Ucpu.Isa.Sub 1;
        Ucpu.Isa.Hlt ]
  in
  let run ?patched () =
    let st, _ =
      Ucpu.Machine.run_rtl (Ucpu.Machine.specialized ?patched ~program:probe ())
    in
    Bitvec.to_int (Rtl.Eval.peek st "acc")
  in
  Printf.printf "\nmicrocode patch demo on `LDI 10; SUB 12`:\n";
  Printf.printf "  original control store:  acc = %d   (10 - 12 mod 256)\n"
    (run ());
  Printf.printf "  patched control store:   acc = %d     (10 AND 12)\n"
    (run ~patched:true ())
