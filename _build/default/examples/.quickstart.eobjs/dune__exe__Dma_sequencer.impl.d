examples/dma_sequencer.ml: Bitvec Cells Core List Printf Rtl String Synth
