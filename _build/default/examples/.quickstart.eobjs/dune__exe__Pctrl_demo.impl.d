examples/pctrl_demo.ml: Bitvec Cells List Pctrl Printf Rtl Synth
