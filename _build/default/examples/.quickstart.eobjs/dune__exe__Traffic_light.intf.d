examples/traffic_light.mli:
