examples/pctrl_demo.mli:
