examples/ucpu_demo.mli:
