examples/quickstart.ml: Bitvec Cells Core Printf Rtl Synth
