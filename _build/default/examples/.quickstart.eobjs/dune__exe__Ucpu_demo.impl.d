examples/ucpu_demo.ml: Bitvec Cells Core List Printf Rtl Synth Ucpu
