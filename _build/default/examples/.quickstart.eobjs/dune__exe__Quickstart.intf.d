examples/quickstart.mli:
