examples/spec_to_silicon.ml: Cells Core List Printf Synth
