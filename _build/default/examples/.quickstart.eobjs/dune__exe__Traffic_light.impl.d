examples/traffic_light.ml: Array Bitvec Cells Core List Printf Rtl String Synth
