examples/spec_to_silicon.mli:
