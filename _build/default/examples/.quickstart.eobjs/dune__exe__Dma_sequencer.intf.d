examples/dma_sequencer.mli:
