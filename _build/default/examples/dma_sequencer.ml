(* A microcoded DMA engine written in the textual micro-assembly, taken
   through: parse -> analyze -> simulate -> generate hardware -> partially
   evaluate -> compare areas.

   Run with: dune exec examples/dma_sequencer.exe *)

let source = {|
# Two-channel DMA sequencer.
# Opcodes: 0 = idle, 1 = copy burst, 2 = fill burst, 3 = drain.
.name dma
.opcode_bits 2
.field rd_en 1
.field wr_en 1
.field chan 2 onehot
.field last 1
.dispatch ops idle copy fill drain

idle:
  ; dispatch ops
copy:
  rd_en=1 chan=0b01 ; next
  rd_en=1 wr_en=1 chan=0b01 ; next
  rd_en=1 wr_en=1 chan=0b01 ; next
  wr_en=1 chan=0b01 last=1 ; jump idle
fill:
  wr_en=1 chan=0b10 ; next
  wr_en=1 chan=0b10 ; next
  wr_en=1 chan=0b10 last=1 ; jump idle
drain:
  rd_en=1 chan=0b01 ; next
  rd_en=1 chan=0b10 last=1 ; jump idle
|}

let () =
  let p = Core.Microasm.parse source in
  Printf.printf "assembled %s: %d uops, %d-bit microcode words\n"
    p.Core.Microcode.pname
    (Core.Microcode.depth p)
    (Core.Microcode.word_width p);
  Printf.printf "reachable addresses: %s\n"
    (String.concat ", "
       (List.map string_of_int (Core.Microcode.reachable_addrs p)));
  List.iter
    (fun (f : Core.Microcode.field) ->
      Printf.printf "field %-6s takes values {%s}\n" f.fname
        (String.concat ", "
           (List.map string_of_int (Core.Microcode.field_value_set p f.fname))))
    p.Core.Microcode.format;

  (* Reference (ISA-level) execution of one copy then one fill. *)
  print_endline "\ntrace of [copy; fill]:";
  let ops = [ 1; 0; 0; 0; 2; 0; 0; 0 ] in
  List.iter
    (fun fields ->
      let v name = List.assoc name fields in
      Printf.printf "  rd=%d wr=%d chan=%02d last=%d\n" (v "rd_en") (v "wr_en")
        (v "chan") (v "last"))
    (Core.Microcode.run p ~ops);

  (* Hardware: flexible sequencer vs its partial evaluation. *)
  let lib = Cells.Library.vt90 in
  let area d = Synth.Map.total (Synth.Flow.compile lib d).Synth.Flow.report in
  let flexible = Core.Microcode.to_rtl ~storage:`Config p in
  let bound =
    Synth.Partial_eval.bind_tables flexible (Core.Microcode.config_bindings p)
  in
  Printf.printf "\narea flexible (config memory): %7.1f um^2\n" (area flexible);
  Printf.printf "area partially evaluated:      %7.1f um^2\n" (area bound);

  (* The RTL and the ISA semantics agree cycle by cycle. *)
  let design = Core.Microcode.to_rtl ~storage:`Rom p in
  let st = Rtl.Eval.create design in
  let agree =
    List.for_all2
      (fun op fields ->
        Rtl.Eval.set_input st "op" (Bitvec.of_int ~width:2 op);
        let ok =
          List.for_all
            (fun (name, v) ->
              Bitvec.to_int (Rtl.Eval.peek st name) = v)
            fields
        in
        Rtl.Eval.step st;
        ok)
      ops (Core.Microcode.run p ~ops)
  in
  Printf.printf "RTL matches ISA semantics: %b\n" agree
