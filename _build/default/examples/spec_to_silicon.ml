(* The whole generator stack in one run, answering the paper's closing
   question ("what should the input to the generator be?"):

     high-level controller spec
       -> compiled microprogram         (Core.Ctrl_spec)
       -> micro-assembly listing        (Core.Microasm.print)
       -> sequencer hardware, horizontal and vertical stores
       -> partial evaluation + synthesis
       -> gate-level netlist            (Synth.Netlist)

   Run with: dune exec examples/spec_to_silicon.exe *)

let spec =
  {
    Core.Ctrl_spec.name = "burst";
    fields =
      [
        { Core.Microcode.fname = "req"; fwidth = 1; onehot = false };
        { Core.Microcode.fname = "we"; fwidth = 1; onehot = false };
        { Core.Microcode.fname = "lane"; fwidth = 4; onehot = true };
        { Core.Microcode.fname = "last"; fwidth = 1; onehot = false };
      ];
    opcode_bits = 2;
    handlers =
      [
        (* opcode 1: a 4-beat read burst on lane 1, then a writeback. *)
        ( 1,
          Core.Ctrl_spec.Seq
            [
              Core.Ctrl_spec.Emit [ ("req", 1); ("lane", 0b0001) ];
              Core.Ctrl_spec.Repeat
                (4, Core.Ctrl_spec.Emit [ ("req", 1); ("lane", 0b0001) ]);
              Core.Ctrl_spec.Emit
                [ ("req", 1); ("we", 1); ("lane", 0b0010); ("last", 1) ];
              Core.Ctrl_spec.Done;
            ] );
        (* opcode 2: a short probe. *)
        ( 2,
          Core.Ctrl_spec.Seq
            [
              Core.Ctrl_spec.Emit [ ("req", 1); ("lane", 0b1000); ("last", 1) ];
              Core.Ctrl_spec.Done;
            ] );
      ];
  }

let () =
  let p = Core.Ctrl_spec.compile spec in
  Printf.printf "compiled %d handlers into %d microinstructions (%d distinct words)\n\n"
    (List.length spec.Core.Ctrl_spec.handlers)
    (Core.Microcode.depth p)
    (Core.Microcode.distinct_control_words p);
  print_endline "--- micro-assembly ---";
  print_string (Core.Microasm.print p);

  let lib = Cells.Library.vt90 in
  let area style ~bound =
    let d = Core.Microcode.to_rtl ~style ~storage:`Config p in
    let d =
      if bound then
        Synth.Partial_eval.bind_tables d (Core.Microcode.config_bindings ~style p)
      else d
    in
    Synth.Map.total (Synth.Flow.compile lib d).Synth.Flow.report
  in
  Printf.printf "\n%-36s %10s\n" "implementation" "area um^2";
  List.iter
    (fun (name, style, bound) ->
      Printf.printf "%-36s %10.1f\n" name (area style ~bound))
    [
      ("horizontal, flexible (unbound)", `Horizontal, false);
      ("vertical, flexible (unbound)", `Vertical, false);
      ("horizontal, partially evaluated", `Horizontal, true);
      ("vertical, partially evaluated", `Vertical, true);
    ];

  (* Gate-level netlist of the specialized horizontal version. *)
  let d =
    Synth.Partial_eval.bind_tables
      (Core.Microcode.to_rtl ~storage:`Config p)
      (Core.Microcode.config_bindings p)
  in
  let result = Synth.Flow.compile lib d in
  print_endline "\n--- gate-level netlist (specialized) ---";
  print_string (Synth.Netlist.emit lib ~name:"burst_ctrl" result.Synth.Flow.aig)
