(* Quickstart: the paper's core loop in ~40 lines.

   1. Describe a controller's combinational behaviour as a table.
   2. Generate the *flexible* implementation (a configuration memory) and
      the *direct* implementation (sum-of-products RTL).
   3. Partially evaluate the flexible one by binding the table contents.
   4. Synthesize both and compare: the areas come out (nearly) the same,
      which is the paper's headline result.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A 5-input, 4-output decode function with some structure. *)
  let tt =
    Core.Truth_table.of_fun ~name:"decode" ~width:4 ~depth:32 (fun a ->
        Bitvec.of_int ~width:4 ((a * 7 / 3) land 15))
  in
  Printf.printf "table: depth %d, width 4, %d address bits\n"
    (Core.Truth_table.depth tt)
    (Core.Truth_table.addr_bits tt);

  (* The flexible design still has its configuration memory... *)
  let flexible = Core.Truth_table.to_flexible_rtl tt in
  Printf.printf "flexible: %s\n" (Rtl.Design.stats flexible);

  (* ...which partial evaluation folds away. *)
  let bound =
    Synth.Partial_eval.bind_tables flexible
      [ Core.Truth_table.config_binding tt ]
  in
  let direct = Core.Truth_table.to_sop_rtl tt in

  let lib = Cells.Library.vt90 in
  let area d = Synth.Map.total (Synth.Flow.compile lib d).Synth.Flow.report in
  let a_flexible = area flexible in
  let a_bound = area bound in
  let a_direct = area direct in
  Printf.printf "area, flexible (with config memory): %8.1f um^2\n" a_flexible;
  Printf.printf "area, partially evaluated:           %8.1f um^2\n" a_bound;
  Printf.printf "area, direct sum-of-products:        %8.1f um^2\n" a_direct;
  Printf.printf "partial evaluation recovered %.1f%% of the flexibility cost\n"
    (100.0 *. (a_flexible -. a_bound) /. (a_flexible -. a_direct +. 1e-9));

  (* Both specialized designs behave identically, cycle for cycle. *)
  match
    Synth.Equiv.aig_vs_aig ~seed:1
      (Synth.Flow.compile lib bound).Synth.Flow.aig
      (Synth.Flow.compile lib direct).Synth.Flow.aig
  with
  | None -> print_endline "equivalence check: specialized == direct"
  | Some m ->
    Printf.printf "MISMATCH at cycle %d on %s\n" m.Synth.Equiv.cycle
      m.Synth.Equiv.output;
    exit 1
