(* The protocol-controller case study, driven end to end:

   1. Build the flexible PCtrl and simulate a cached line-copy transaction
      (read a line from the source tile, write it to the destination tile)
      at RTL level, watching the memory-port strobes.
   2. Synthesize the Fig. 9 matrix: Full / Auto / Manual for the cached and
      uncached configurations.

   Run with: dune exec examples/pctrl_demo.exe *)

(* Keep opcode literals readable. *)
module Protocol_op = struct
  let copy_line = Pctrl.Protocol.encode_opcode Pctrl.Protocol.Copy_line
end

let () =
  let design = Pctrl.Controller.full_design () in
  Printf.printf "%s\n\n" (Rtl.Design.stats design);

  (* Simulate the *flexible* hardware with the cached microcode loaded into
     its configuration memories — the pre-silicon "program it first" view. *)
  let st =
    Rtl.Eval.create
      ~config:(Pctrl.Controller.bindings Pctrl.Controller.Cached)
      design
  in
  Rtl.Eval.reset st;
  let copy_op = Protocol_op.copy_line in
  Printf.printf "issuing copy_line from tile 1 to tile 3 (cached mode):\n";
  Printf.printf "%-5s %-6s %-6s %-4s %s\n" "cycle" "mem_en" "mem_we" "resp" "busy";
  let cycles = 40 in
  let responded = ref false in
  for cycle = 0 to cycles - 1 do
    (* Hold the opcode until the dispatch slot consumes it, then idle. *)
    let op = if cycle < 3 then copy_op else 0 in
    Rtl.Eval.set_input st "op" (Bitvec.of_int ~width:3 op);
    Rtl.Eval.set_input st "src" (Bitvec.of_int ~width:2 1);
    Rtl.Eval.set_input st "dst" (Bitvec.of_int ~width:2 3);
    Rtl.Eval.set_input st "rdy" (Bitvec.of_int ~width:1 1);
    Rtl.Eval.set_input st "data_in"
      (Bitvec.of_int ~width:62 (0x1000 + cycle) |> fun v ->
       Bitvec.concat [ Bitvec.zero (Pctrl.Controller.beat_width - 62); v ]);
    let v name = Rtl.Eval.peek st name in
    let resp = Bitvec.to_int (v "resp") in
    if resp = 1 then responded := true;
    if Bitvec.reduce_or (v "mem_en") || resp = 1 then
      Printf.printf "%5d  %s   %s   %d    %d\n" cycle
        (Bitvec.to_binary_string (v "mem_en"))
        (Bitvec.to_binary_string (v "mem_we"))
        resp
        (Bitvec.to_int (v "busy"));
    Rtl.Eval.step st
  done;
  Printf.printf "transaction completed: %b\n\n" !responded;

  (* Fig. 9 synthesis matrix. *)
  let lib = Cells.Library.vt90 in
  let report ?options d =
    (Synth.Flow.compile ?options lib d).Synth.Flow.report
  in
  let show name (r : Synth.Map.report) =
    Printf.printf "%-18s comb %9.1f  seq %9.1f  total %9.1f um^2\n" name
      r.Synth.Map.comb_area r.Synth.Map.seq_area (Synth.Map.total r)
  in
  show "full (flexible)" (report design);
  List.iter
    (fun (name, mode) ->
      show (name ^ " auto") (report (Pctrl.Controller.auto_design mode));
      show (name ^ " manual")
        (report
           ~options:{ Synth.Flow.default with honor_generator_annots = true }
           (Pctrl.Controller.manual_design mode)))
    [ ("cached", Pctrl.Controller.Cached);
      ("uncached", Pctrl.Controller.Uncached) ]
