(* A hand-specified FSM through the whole flow: a traffic-light controller
   with a pedestrian-request input.

   States cycle GREEN -> YELLOW -> RED -> GREEN; a pedestrian request (input
   bit 0) while GREEN forces the transition; a "hold" (input bit 1) freezes
   the light. Outputs drive one-hot lamps {green, yellow, red} plus a walk
   indicator.

   Run with: dune exec examples/traffic_light.exe *)

let fsm =
  let states = [| "GREEN"; "YELLOW"; "RED"; "WALK" |] in
  let green, yellow, red, walk = (0, 1, 2, 3) in
  (* Inputs: bit 0 = pedestrian request, bit 1 = hold. *)
  let next s i =
    let request = i land 1 = 1 and hold = i lsr 1 land 1 = 1 in
    if hold then s
    else
      match s with
      | 0 -> if request then yellow else green
      | 1 -> red
      | 2 -> if request then walk else green
      | 3 -> green
      | _ -> assert false
  in
  (* Outputs: {walk, red, yellow, green}. *)
  let lamp s =
    let bits =
      match s with
      | 0 -> 0b0001
      | 1 -> 0b0010
      | 2 -> 0b0100
      | 3 -> 0b1100 (* red + walk *)
      | _ -> assert false
    in
    Bitvec.of_int ~width:4 bits
  in
  Core.Fsm_ir.make ~name:"traffic" ~num_inputs:2 ~num_outputs:4 ~states
    ~reset:green
    ~next:(Array.init 4 (fun s -> Array.init 4 (next s)))
    ~out:(Array.init 4 (fun s -> Array.make 4 (lamp s)))

let () =
  (* IR-level simulation. *)
  let inputs = [ 0; 0; 1; 0; 0; 0; 1; 0; 0 ] in
  Printf.printf "IR simulation (inputs %s):\n"
    (String.concat "" (List.map string_of_int inputs));
  List.iter
    (fun o -> Printf.printf "  lamps=%s\n" (Bitvec.to_binary_string o))
    (Core.Fsm_ir.simulate fsm inputs);

  (* The generator's three implementations. *)
  let direct = Core.Fsm_ir.to_direct_rtl fsm in
  let flexible = Core.Fsm_ir.to_flexible_rtl ~annotate:true fsm in
  let bound =
    Synth.Partial_eval.bind_tables flexible (Core.Fsm_ir.config_bindings fsm)
  in
  let lib = Cells.Library.vt90 in
  let area ?options d =
    Synth.Map.total (Synth.Flow.compile ?options lib d).Synth.Flow.report
  in
  Printf.printf "\narea direct:               %7.1f um^2\n" (area direct);
  Printf.printf "area flexible (unbound):   %7.1f um^2\n" (area flexible);
  Printf.printf "area partially evaluated:  %7.1f um^2\n" (area bound);
  Printf.printf "area + state annotation:   %7.1f um^2\n"
    (area
       ~options:{ Synth.Flow.default with honor_generator_annots = true }
       bound);

  (* What the generator hands to an RTL flow. *)
  print_endline "\n--- direct implementation, as Verilog ---";
  print_string (Rtl.Verilog.emit direct)
