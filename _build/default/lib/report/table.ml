type align = Left | Right

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a -> a
    | None -> Left :: List.init (max 0 (ncols - 1)) (fun _ -> Right)
  in
  let aligns = Array.of_list aligns in
  let pad_row row =
    row @ List.init (max 0 (ncols - List.length row)) (fun _ -> "")
  in
  let all = List.map pad_row (header :: rows) in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell ->
         if i < ncols then widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let pad = widths.(i) - String.length cell in
           let a = if i < Array.length aligns then aligns.(i) else Right in
           match a with
           | Left -> cell ^ String.make pad ' '
           | Right -> String.make pad ' ' ^ cell)
         row)
  in
  let sep = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  String.concat "\n"
    ((render_row (pad_row header) :: sep
      :: List.map (fun r -> render_row (pad_row r)) rows)
    @ [ "" ])

let fmt_area a = Printf.sprintf "%.1f" a
let fmt_ratio r = Printf.sprintf "%.2f" r
