(** Fixed-width text tables for the benchmark harness output. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** Pads every column to its widest cell; numeric-looking columns are best
    passed with [Right] alignment (default: first column [Left], rest
    [Right]). Rows shorter than the header are padded with empty cells. *)

val fmt_area : float -> string
(** µm² with one decimal. *)

val fmt_ratio : float -> string
(** Dimensionless with two decimals. *)
