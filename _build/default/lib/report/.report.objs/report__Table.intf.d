lib/report/table.mli:
