(** Random combinational tables — the Fig. 5 workload.

    The paper sweeps tables of depth d ∈ {2, 8, 16, 32, 64, 256, 1024} and
    width w ∈ {2, 4, 16, 32, 64} with random contents. *)

val generate : seed:int -> depth:int -> width:int -> Core.Truth_table.t

val paper_depths : int list
val paper_widths : int list

val paper_grid : (int * int) list
(** All (depth, width) pairs of the paper's sweep. *)
