(** Random well-formed RTL designs, for fuzzing the synthesis flow.

    Generates small sequential designs exercising every IR construct:
    word-level operators, slices/concats, muxes, registers with all three
    reset styles (with and without enables), and ROM tables. The generator
    only produces valid designs ({!Rtl.Design.validate} passes by
    construction), so any downstream failure is a tool bug, not a workload
    bug.

    Used by the property tests: lowering must match the interpreter, and
    every optimization pass must preserve sequential behaviour on every
    generated design. *)

val generate : seed:int -> Rtl.Design.t
(** Deterministic in [seed]. *)

val stats : Rtl.Design.t -> string
