(** Random FSMs — the Fig. 6 workload.

    The paper sweeps random controllers with m ∈ {2, 8} inputs,
    n ∈ {2, 8, 16} outputs and s ∈ {2, 3, 8, 16, 17} states. Like realistic
    controllers (and unlike uniformly random boolean functions), each state
    branches on a small subset of the inputs: every state draws 0–2 "active"
    input bits and its next-state/output entries depend only on those. *)

val generate :
  seed:int -> num_inputs:int -> num_outputs:int -> num_states:int -> Core.Fsm_ir.t

val paper_inputs : int list
val paper_outputs : int list
val paper_states : int list

val paper_grid : (int * int * int) list
(** All (m, n, s) combinations of the paper's sweep. *)
