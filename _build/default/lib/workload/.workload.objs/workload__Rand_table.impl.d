lib/workload/rand_table.ml: Core Hashtbl List Printf Rng
