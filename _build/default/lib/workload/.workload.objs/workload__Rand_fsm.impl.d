lib/workload/rand_fsm.ml: Array Core Fun Hashtbl List Printf Rng
