lib/workload/rand_table.mli: Core
