lib/workload/rand_design.mli: Rtl
