lib/workload/rand_fsm.mli: Core
