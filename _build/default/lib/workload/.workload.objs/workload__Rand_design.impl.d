lib/workload/rand_design.ml: Array Hashtbl List Printf Rng Rtl
