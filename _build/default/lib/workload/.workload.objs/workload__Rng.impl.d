lib/workload/rng.ml: Bitvec Hashtbl List Random
