lib/workload/rng.mli: Bitvec
