let generate ~seed ~num_inputs ~num_outputs ~num_states =
  let rng = Rng.make (Hashtbl.hash ("fsm", seed, num_inputs, num_outputs, num_states)) in
  let states = Array.init num_states (Printf.sprintf "s%d") in
  let cols = 1 lsl num_inputs in
  let per_state s =
    let srng = Rng.split rng (Printf.sprintf "state%d" s) in
    let active =
      Rng.subset srng ~size:(Rng.int srng 3) (List.init num_inputs Fun.id)
    in
    let key_of i =
      List.fold_left
        (fun (acc, bit) b ->
          ((if i lsr b land 1 = 1 then acc lor (1 lsl bit) else acc), bit + 1))
        (0, 0) active
      |> fst
    in
    let nkeys = 1 lsl List.length active in
    let next_by_key = Array.init nkeys (fun _ -> Rng.int srng num_states) in
    let out_by_key =
      Array.init nkeys (fun _ -> Rng.bitvec srng ~width:num_outputs)
    in
    ( Array.init cols (fun i -> next_by_key.(key_of i)),
      Array.init cols (fun i -> out_by_key.(key_of i)) )
  in
  let rows = Array.init num_states per_state in
  Core.Fsm_ir.make
    ~name:(Printf.sprintf "fsm_m%d_n%d_s%d_%d" num_inputs num_outputs num_states seed)
    ~num_inputs ~num_outputs ~states ~reset:0
    ~next:(Array.map fst rows)
    ~out:(Array.map snd rows)

let paper_inputs = [ 2; 8 ]
let paper_outputs = [ 2; 8; 16 ]
let paper_states = [ 2; 3; 8; 16; 17 ]

let paper_grid =
  List.concat_map
    (fun m ->
      List.concat_map
        (fun n -> List.map (fun s -> (m, n, s)) paper_states)
        paper_outputs)
    paper_inputs
