(** Deterministic, splittable random source for workload generation.

    Replaces the paper's Python scripts: every random design is a pure
    function of an integer seed, so sweeps are reproducible and
    paper-figure regeneration is stable across runs. *)

type t

val make : int -> t

val split : t -> string -> t
(** An independent stream derived from a name — children with different
    names (or parents) never share state. *)

val int : t -> int -> int
(** [int t bound] — uniform in [0, bound). *)

val bool : t -> bool

val bitvec : t -> width:int -> Bitvec.t

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val subset : t -> size:int -> 'a list -> 'a list
(** A random subset of at most [size] distinct elements. *)
