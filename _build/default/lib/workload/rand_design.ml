(* A pool-based generator: every generated expression draws leaves from the
   pool of already-declared signals and is then added back (as a net) with
   some probability, so designs grow realistic shared structure. *)

let widths = [ 1; 2; 3; 4; 5; 8 ]

let adapt rng e target =
  (* Coerce an expression to [target] bits. *)
  let w = Rtl.Expr.width e in
  if w = target then e
  else if w > target then
    let lo = Rng.int rng (w - target + 1) in
    Rtl.Expr.slice e ~hi:(lo + target - 1) ~lo
  else Rtl.Expr.zero_extend e target

let generate ~seed =
  let rng = Rng.make (Hashtbl.hash ("design", seed)) in
  let b = Rtl.Builder.create (Printf.sprintf "fuzz%d" seed) in
  let pool = ref [] in
  let add e = pool := e :: !pool in
  (* Inputs. *)
  let num_inputs = 1 + Rng.int rng 3 in
  for i = 0 to num_inputs - 1 do
    add (Rtl.Builder.input b (Printf.sprintf "i%d" i) (Rng.pick rng widths))
  done;
  (* Registers are declared first so expressions can use their outputs
     (feedback included). *)
  let num_regs = Rng.int rng 4 in
  let reg_names =
    List.init num_regs (fun i ->
        let name = Printf.sprintf "r%d" i in
        let width = Rng.pick rng widths in
        let reset =
          Rng.pick rng
            [ Rtl.Design.No_reset; Rtl.Design.Sync_reset; Rtl.Design.Async_reset ]
        in
        let init = Rng.bitvec rng ~width in
        add (Rtl.Builder.reg_declare b name ~width ~reset ~init);
        (name, width))
  in
  (* An occasional ROM. *)
  let rom_width =
    if Rng.int rng 100 < 40 then begin
      let depth = 2 + Rng.int rng 7 in
      let width = Rng.pick rng widths in
      Rtl.Builder.rom b "mem" ~width
        (Array.init depth (fun _ -> Rng.bitvec rng ~width));
      Some (depth, width)
    end
    else None
  in
  let leaf target =
    adapt rng (Rng.pick rng !pool) target
  in
  let rec expr depth target =
    if depth = 0 then leaf target
    else begin
      let sub () = expr (depth - 1) target in
      match Rng.int rng 12 with
      | 0 -> Rtl.Expr.and_ (sub ()) (sub ())
      | 1 -> Rtl.Expr.or_ (sub ()) (sub ())
      | 2 -> Rtl.Expr.xor (sub ()) (sub ())
      | 3 -> Rtl.Expr.add (sub ()) (sub ())
      | 4 -> Rtl.Expr.sub (sub ()) (sub ())
      | 5 -> Rtl.Expr.not_ (sub ())
      | 6 ->
        let w = Rng.pick rng widths in
        let a = expr (depth - 1) w and c = expr (depth - 1) w in
        adapt rng
          (Rtl.Expr.mux (expr (depth - 1) 1) a c)
          target
      | 7 ->
        let w = Rng.pick rng widths in
        adapt rng
          (Rtl.Expr.eq (expr (depth - 1) w) (expr (depth - 1) w))
          target
      | 8 ->
        let w = Rng.pick rng widths in
        adapt rng
          (Rtl.Expr.ult (expr (depth - 1) w) (expr (depth - 1) w))
          target
      | 9 ->
        adapt rng
          (Rtl.Expr.concat [ sub (); expr (depth - 1) (Rng.pick rng widths) ])
          target
      | 10 ->
        adapt rng
          (Rtl.Expr.concat
             [ Rtl.Expr.red_and (sub ()); Rtl.Expr.red_or (sub ());
               Rtl.Expr.red_xor (sub ()) ])
          target
      | _ ->
        (match rom_width with
         | Some (depth_, width) ->
           let t = { Rtl.Design.tname = "mem"; twidth = width; depth = depth_;
                     storage = Rtl.Design.Config (* unused: addr_bits only *) }
           in
           let abits = Rtl.Design.addr_bits t in
           adapt rng
             (Rtl.Expr.table_read ~table:"mem" ~width
                ~addr:(expr (depth - 1) abits))
             target
         | None -> leaf target)
    end
  in
  (* Some shared nets. *)
  let num_nets = 1 + Rng.int rng 4 in
  for i = 0 to num_nets - 1 do
    let target = Rng.pick rng widths in
    add (Rtl.Builder.net b (Printf.sprintf "n%d" i) (expr (1 + Rng.int rng 2) target))
  done;
  (* Connect registers. *)
  List.iter
    (fun (name, width) ->
      let enable =
        if Rng.int rng 100 < 30 then Some (expr 1 1) else None
      in
      Rtl.Builder.reg_connect b ?enable name (expr (1 + Rng.int rng 2) width))
    reg_names;
  (* Outputs. *)
  let num_outputs = 1 + Rng.int rng 3 in
  for i = 0 to num_outputs - 1 do
    Rtl.Builder.output b (Printf.sprintf "o%d" i)
      (expr (1 + Rng.int rng 2) (Rng.pick rng widths))
  done;
  Rtl.Builder.finish b

let stats = Rtl.Design.stats
