let generate ~seed ~depth ~width =
  let rng = Rng.make (Hashtbl.hash ("table", seed, depth, width)) in
  Core.Truth_table.of_fun
    ~name:(Printf.sprintf "t%dx%d_s%d" depth width seed)
    ~width ~depth
    (fun _ -> Rng.bitvec rng ~width)

let paper_depths = [ 2; 8; 16; 32; 64; 256; 1024 ]
let paper_widths = [ 2; 4; 16; 32; 64 ]

let paper_grid =
  List.concat_map (fun d -> List.map (fun w -> (d, w)) paper_widths) paper_depths
