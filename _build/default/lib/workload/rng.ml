type t = { seed : int; state : Random.State.t }

let make seed = { seed; state = Random.State.make [| 0x5eed; seed |] }

let split t name =
  let child = Hashtbl.hash (t.seed, name) in
  { seed = child; state = Random.State.make [| 0x5eed; child |] }

let int t bound = Random.State.int t.state bound
let bool t = Random.State.bool t.state

let bitvec t ~width = Bitvec.of_bits (List.init width (fun _ -> bool t))

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let subset t ~size l =
  let rec go acc pool k =
    if k = 0 || pool = [] then List.rev acc
    else begin
      let x = pick t pool in
      go (x :: acc) (List.filter (fun y -> y <> x) pool) (k - 1)
    end
  in
  go [] l (min size (List.length l))
