(** Reduced ordered binary decision diagrams.

    Nodes are hash-consed inside a manager, so two BDDs built in the same
    manager represent the same boolean function if and only if they are
    physically equal ({!equal} is O(1)). Variables are non-negative integers;
    the variable order is the integer order (variable 0 is the topmost).

    The package is deliberately simple — no dynamic reordering, no complement
    edges — and is sized for the cone widths this project needs (couple of
    dozen variables). *)

type man
(** A BDD manager: unique table plus operation caches. *)

type t
(** A BDD rooted in some manager. Mixing BDDs from different managers in one
    operation raises [Invalid_argument]. *)

val make_man : unit -> man

val node_count : man -> int
(** Number of live hash-consed nodes (excluding the terminals). *)

(** {1 Constants and variables} *)

val zero : man -> t
val one : man -> t

val var : man -> int -> t
(** [var m i] is the function of variable [i]. @raise Invalid_argument if
    [i < 0]. *)

val nvar : man -> int -> t
(** Negation of {!var}. *)

(** {1 Boolean operations} *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
val imp : t -> t -> t
val iff : t -> t -> t
val ite : t -> t -> t -> t

(** {1 Structure} *)

val equal : t -> t -> bool

val uid : t -> int
(** Stable identifier of the root node within its manager: [uid a = uid b]
    iff [equal a b]. Usable as a hash-table key. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_const : t -> bool

val top_var : t -> int
(** @raise Invalid_argument on a constant. *)

val cofactor : t -> int -> bool -> t
(** [cofactor f v b] is f with variable [v] fixed to [b]. *)

val constrain : t -> t -> t
(** [constrain f c] is the generalized cofactor f ⇓ c: a function that agrees
    with [f] wherever [c] holds (and is typically smaller).
    @raise Invalid_argument if [c] is the zero function. *)

val exists : int list -> t -> t
(** Existential quantification over the listed variables. *)

val forall : int list -> t -> t

val support : t -> int list
(** Variables the function actually depends on, ascending. *)

val rename : t -> (int -> int) -> t
(** [rename f map] substitutes variable [map v] for every variable [v]. The
    mapping must be strictly monotonic on the support of [f] (so the order is
    preserved); raises [Invalid_argument] otherwise. *)

(** {1 Satisfiability and evaluation} *)

val eval : t -> (int -> bool) -> bool
(** Evaluate under an assignment. *)

val any_sat : t -> (int * bool) list
(** A satisfying partial assignment (variables not listed are irrelevant).
    @raise Not_found if the function is zero. *)

val sat_count : t -> nvars:int -> float
(** Number of satisfying assignments over variables [0 .. nvars-1]. All
    support variables must be below [nvars]. *)

val sat_seq : t -> nvars:int -> Bitvec.t Seq.t
(** All satisfying assignments as bit vectors of width [nvars] (bit [i] is
    variable [i]). Intended for small [nvars]. *)

(** {1 Building from semantics} *)

val of_minterms : man -> nvars:int -> Bitvec.t list -> t
(** Characteristic function of a set of assignments: [of_minterms m ~nvars vs]
    is true exactly on the listed vectors (bit [i] of a vector gives the value
    of variable [i]). All vectors must have width [nvars]. *)

val of_fun : man -> nvars:int -> (Bitvec.t -> bool) -> t
(** Build by full enumeration of [2^nvars] assignments (small [nvars] only;
    @raise Invalid_argument if [nvars > 20]). *)

val size : t -> int
(** Number of distinct internal nodes of this BDD. *)
