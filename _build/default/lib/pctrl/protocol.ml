type opcode =
  | Nop
  | Read_line
  | Write_line
  | Copy_line
  | Evict
  | Unc_read
  | Unc_write
  | Sync

let opcode_bits = 3

let all_opcodes =
  [ Nop; Read_line; Write_line; Copy_line; Evict; Unc_read; Unc_write; Sync ]

let encode_opcode = function
  | Nop -> 0
  | Read_line -> 1
  | Write_line -> 2
  | Copy_line -> 3
  | Evict -> 4
  | Unc_read -> 5
  | Unc_write -> 6
  | Sync -> 7

let decode_opcode v =
  match v land 7 with
  | 0 -> Nop
  | 1 -> Read_line
  | 2 -> Write_line
  | 3 -> Copy_line
  | 4 -> Evict
  | 5 -> Unc_read
  | 6 -> Unc_write
  | _ -> Sync

let cmd_bits = 3
let cmd_idle = 0
let cmd_read = 1
let cmd_write = 2
let cmd_line_read = 3
let cmd_line_write = 4

let pp_opcode fmt op =
  let s =
    match op with
    | Nop -> "nop"
    | Read_line -> "read_line"
    | Write_line -> "write_line"
    | Copy_line -> "copy_line"
    | Evict -> "evict"
    | Unc_read -> "unc_read"
    | Unc_write -> "unc_write"
    | Sync -> "sync"
  in
  Format.pp_print_string fmt s
