lib/pctrl/dispatch.ml: Array Core Hashtbl List Protocol
