lib/pctrl/protocol.mli: Format
