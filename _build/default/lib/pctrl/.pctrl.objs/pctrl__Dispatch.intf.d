lib/pctrl/dispatch.mli: Core
