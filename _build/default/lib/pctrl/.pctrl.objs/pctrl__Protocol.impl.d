lib/pctrl/protocol.ml: Format
