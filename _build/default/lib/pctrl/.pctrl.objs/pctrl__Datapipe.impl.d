lib/pctrl/datapipe.ml: Array Bitvec Core List Protocol Stdlib
