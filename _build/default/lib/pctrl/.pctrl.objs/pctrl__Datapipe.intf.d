lib/pctrl/datapipe.mli: Core
