lib/pctrl/controller.ml: Bitvec Core Datapipe Dispatch Fun List Printf Protocol Rtl Synth
