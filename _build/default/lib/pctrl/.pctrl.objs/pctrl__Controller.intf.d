lib/pctrl/controller.mli: Bitvec Dispatch Rtl
