type mode = Cached | Uncached

let depth = 96
let line_beats = 8

let sel_none = 0
let sel_src = 1
let sel_dst = 2

let format =
  [
    { Core.Microcode.fname = "sel_mode"; fwidth = 2; onehot = false };
    { Core.Microcode.fname = "cmd"; fwidth = Protocol.cmd_bits; onehot = false };
    { Core.Microcode.fname = "buf_word"; fwidth = 3; onehot = false };
    { Core.Microcode.fname = "resp"; fwidth = 1; onehot = false };
  ]

(* Symbolic instructions: labels are resolved once the whole program is
   laid out. *)
type sseq = Snext | Sjump of string | Sdispatch

type suop = {
  sel : int;
  cmd : int;
  word : int;
  resp : bool;
  sseq : sseq;
}

let uop ?(sel = sel_none) ?(cmd = Protocol.cmd_idle) ?(word = 0) ?(resp = false)
    sseq =
  { sel; cmd; word; resp; sseq }

(* Streaming line transfer: issue, wait for the request to be accepted, one
   microinstruction per beat (the paper's "commands, along with appropriate
   timing, stored as microcode"), then deassert-and-respond. *)
let line_body ~sel ~cmd ~resp ~next =
  [ uop ~sel ~cmd Snext; uop ~sel ~cmd Snext ]
  @ List.init line_beats (fun k -> uop ~sel ~cmd ~word:(k mod 8) Snext)
  @ [ uop ~sel ~resp next ]

let single_body ~sel ~cmd ~resp ~next =
  [
    uop ~sel ~cmd Snext;
    uop ~sel ~cmd Snext;
    uop ~sel ~cmd ~word:0 Snext;
    uop ~sel ~resp next;
  ]

let cached_chunks =
  [
    ("idle", [ uop Sdispatch ]);
    ("rdline",
     line_body ~sel:sel_src ~cmd:Protocol.cmd_line_read ~resp:true
       ~next:(Sjump "idle"));
    ("wrline",
     line_body ~sel:sel_dst ~cmd:Protocol.cmd_line_write ~resp:true
       ~next:(Sjump "idle"));
    ("copy",
     line_body ~sel:sel_src ~cmd:Protocol.cmd_line_read ~resp:false
       ~next:Snext
     @ line_body ~sel:sel_dst ~cmd:Protocol.cmd_line_write ~resp:true
         ~next:(Sjump "idle"));
    ("evict",
     line_body ~sel:sel_src ~cmd:Protocol.cmd_line_write ~resp:true
       ~next:(Sjump "idle"));
    ("urd",
     single_body ~sel:sel_src ~cmd:Protocol.cmd_read ~resp:true
       ~next:(Sjump "idle"));
    ("uwr",
     single_body ~sel:sel_dst ~cmd:Protocol.cmd_write ~resp:true
       ~next:(Sjump "idle"));
    ("sync", [ uop ~resp:true (Sjump "idle") ]);
  ]

let uncached_chunks =
  [
    ("idle", [ uop Sdispatch ]);
    ("urd",
     single_body ~sel:sel_src ~cmd:Protocol.cmd_read ~resp:true
       ~next:(Sjump "idle"));
    ("uwr",
     single_body ~sel:sel_dst ~cmd:Protocol.cmd_write ~resp:true
       ~next:(Sjump "idle"));
    ("sync", [ uop ~resp:true (Sjump "idle") ]);
  ]

(* Opcode → entry label. *)
let optable_of mode op =
  match mode, (op : Protocol.opcode) with
  | _, Protocol.Nop -> "idle"
  | Cached, Protocol.Read_line -> "rdline"
  | Cached, Protocol.Write_line -> "wrline"
  | Cached, Protocol.Copy_line -> "copy"
  | Cached, Protocol.Evict -> "evict"
  | _, Protocol.Unc_read -> "urd"
  | _, Protocol.Unc_write -> "uwr"
  | _, Protocol.Sync -> "sync"
  (* Uncached mode serves line traffic word-at-a-time and acknowledges
     evictions immediately — there is nothing cached to write back. *)
  | Uncached, Protocol.Read_line -> "urd"
  | Uncached, Protocol.Write_line -> "uwr"
  | Uncached, (Protocol.Copy_line | Protocol.Evict) -> "sync"

let build chunks mode =
  let addr_of = Hashtbl.create 16 in
  let total =
    List.fold_left
      (fun a (label, uops) ->
        Hashtbl.replace addr_of label a;
        a + List.length uops)
      0 chunks
  in
  assert (total <= depth);
  let resolve l =
    match Hashtbl.find_opt addr_of l with
    | Some a -> a
    | None -> invalid_arg ("Dispatch: unknown label " ^ l)
  in
  let concretize (u : suop) =
    {
      Core.Microcode.ctl =
        [ ("sel_mode", u.sel); ("cmd", u.cmd); ("buf_word", u.word);
          ("resp", if u.resp then 1 else 0) ];
      seq =
        (match u.sseq with
         | Snext -> Core.Microcode.Next
         | Sjump l -> Core.Microcode.Jump (resolve l)
         | Sdispatch -> Core.Microcode.Dispatch 0);
    }
  in
  let body = List.concat_map (fun (_, uops) -> List.map concretize uops) chunks in
  let pad =
    List.init (depth - total) (fun _ ->
        { Core.Microcode.ctl = []; seq = Core.Microcode.Jump (resolve "idle") })
  in
  let code = Array.of_list (body @ pad) in
  let targets =
    Array.init (1 lsl Protocol.opcode_bits) (fun v ->
        resolve (optable_of mode (Protocol.decode_opcode v)))
  in
  Core.Microcode.make ~name:"useq" ~format
    ~dispatch:[ ("optable", targets) ]
    ~opcode_bits:Protocol.opcode_bits ~entry:(resolve "idle") code

let program = function
  | Cached -> build cached_chunks Cached
  | Uncached -> build uncached_chunks Uncached

let cmd_values mode =
  let p = program mode in
  Core.Microcode.field_value_set p "cmd"
