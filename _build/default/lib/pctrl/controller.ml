type mode = Dispatch.mode = Cached | Uncached

let pipe_count = 4
let beat_width = 128
let bufs_per_pipe = 8

(* The flexible sequencer's geometry is mode-independent (both programs
   share the format, depth and dispatch-table shape); the cached program is
   used as the geometry donor. *)
let sequencer_geometry () = Dispatch.program Cached

let onehot4 e =
  Rtl.Expr.concat (List.rev (List.init 4 (fun j -> Rtl.Expr.eq_const e j)))

let full_design () =
  let b = Rtl.Builder.create "pctrl" in
  let op = Rtl.Builder.input b "op" Protocol.opcode_bits in
  let src = Rtl.Builder.input b "src" 2 in
  let dst = Rtl.Builder.input b "dst" 2 in
  let rdy = Rtl.Builder.input b "rdy" 1 in
  let data_in = Rtl.Builder.input b "data_in" beat_width in
  (* Dispatch unit: microcode sequencer with registered (pipelined) control
     fields. *)
  let seq_design =
    Core.Microcode.to_rtl ~registered_outputs:true ~storage:`Config
      (sequencer_geometry ())
  in
  let seq = Rtl.Compose.instantiate b ~name:"seq" seq_design ~inputs:[ ("op", op) ] in
  let sel_mode = seq "sel_mode" in
  let cmd = seq "cmd" in
  let buf_word = seq "buf_word" in
  let resp_field = seq "resp" in
  (* Registered one-hot pipe select (the Fig. 7 situation: a one-hot encoded
     signal behind a flop boundary). *)
  let src1h = Rtl.Builder.net b "src1h" (onehot4 src) in
  let dst1h = Rtl.Builder.net b "dst1h" (onehot4 dst) in
  let chosen =
    Rtl.Expr.select sel_mode
      [ (Dispatch.sel_src, src1h); (Dispatch.sel_dst, dst1h) ]
      ~default:(Rtl.Expr.of_int ~width:4 0)
  in
  let ysel = Rtl.Builder.reg b "ysel" ~reset:Rtl.Design.Sync_reset ~d:chosen in
  (* Data pipes with table-driven control, plus line buffers. *)
  let pipe_design = Core.Fsm_ir.to_flexible_rtl Datapipe.fsm in
  let pipe i =
    let name = Printf.sprintf "pipe%d" i in
    let yi = Rtl.Expr.bit ysel i in
    let cmd_gated =
      Rtl.Expr.mux yi cmd (Rtl.Expr.of_int ~width:Protocol.cmd_bits 0)
    in
    let pin = Rtl.Expr.concat [ rdy; cmd_gated ] in
    let pout = Rtl.Compose.instantiate b ~name pipe_design ~inputs:[ ("in", pin) ] in
    let out6 = pout "out" in
    let obit k = Rtl.Expr.bit out6 k in
    let cnt_name = Printf.sprintf "%s_cnt" name in
    let cnt = Rtl.Builder.reg_declare b cnt_name ~width:3 ~reset:Rtl.Design.Sync_reset in
    Rtl.Builder.reg_connect b cnt_name
      ~enable:(obit Datapipe.out_cnt_en)
      (Rtl.Expr.add cnt (Rtl.Expr.of_int ~width:3 1));
    let buf j =
      let bname = Printf.sprintf "%s_buf%d" name j in
      let enable =
        Rtl.Expr.and_ (obit Datapipe.out_buf_we) (Rtl.Expr.eq_const cnt j)
      in
      Rtl.Builder.reg b bname ~reset:Rtl.Design.No_reset ~enable ~d:data_in
    in
    let bufs = List.init bufs_per_pipe buf in
    let word_read =
      Rtl.Expr.select buf_word
        (List.mapi (fun j e -> (j, e)) bufs)
        ~default:(List.nth bufs 0)
    in
    (yi, obit Datapipe.out_mem_en, obit Datapipe.out_mem_we,
     obit Datapipe.out_done, obit Datapipe.out_busy, word_read)
  in
  let pipes = List.init pipe_count pipe in
  let concat_rev bits = Rtl.Expr.concat (List.rev bits) in
  Rtl.Builder.output b "mem_en"
    (concat_rev (List.map (fun (_, en, _, _, _, _) -> en) pipes));
  Rtl.Builder.output b "mem_we"
    (concat_rev (List.map (fun (_, _, we, _, _, _) -> we) pipes));
  let or_reduce es =
    match es with
    | [] -> Rtl.Expr.of_int ~width:1 0
    | e :: rest -> List.fold_left Rtl.Expr.or_ e rest
  in
  Rtl.Builder.output b "done_any"
    (or_reduce (List.map (fun (_, _, _, d, _, _) -> d) pipes));
  Rtl.Builder.output b "busy"
    (or_reduce (List.map (fun (_, _, _, _, bz, _) -> bz) pipes));
  (* One-hot AND-OR read mux: redundant muxing if the tool knows ysel is
     one-hot (or zero) — the Fig. 7 consumer. *)
  let zero_beat = Rtl.Expr.of_int ~width:beat_width 0 in
  let data_out =
    List.fold_left
      (fun acc (yi, _, _, _, _, word) -> Rtl.Expr.or_ acc (Rtl.Expr.mux yi word zero_beat))
      zero_beat pipes
  in
  Rtl.Builder.output b "data_out" data_out;
  Rtl.Builder.output b "resp" resp_field;
  Rtl.Builder.finish b

let bindings mode =
  let prefix p l = List.map (fun (n, c) -> (p ^ "_" ^ n, c)) l in
  let seq = prefix "seq" (Core.Microcode.config_bindings (Dispatch.program mode)) in
  let pipes =
    List.concat_map
      (fun i ->
        prefix
          (Printf.sprintf "pipe%d" i)
          (Core.Fsm_ir.config_bindings Datapipe.fsm))
      (List.init pipe_count Fun.id)
  in
  seq @ pipes

let auto_design mode =
  Synth.Partial_eval.bind_tables (full_design ()) (bindings mode)

let manual_annotations mode =
  let p = Dispatch.program mode in
  let seq_annots =
    List.map
      (fun (a : Rtl.Annot.t) -> { a with target = "seq_" ^ a.target })
      (Core.Generator.program_manual_annotations p)
  in
  let ysel =
    Rtl.Annot.value_set "ysel"
      (Bitvec.zero 4 :: List.init 4 (fun i -> Bitvec.one_hot ~width:4 i))
  in
  let pipe_states =
    let reachable =
      Core.Fsm_ir.reachable_with Datapipe.fsm
        ~inputs:
          (List.concat_map
             (fun cmd ->
               [ Datapipe.input_assignment ~cmd ~rdy:false;
                 Datapipe.input_assignment ~cmd ~rdy:true ])
             (Dispatch.cmd_values mode))
    in
    let codes = List.map (Core.Fsm_ir.encode Datapipe.fsm) reachable in
    List.init pipe_count (fun i ->
        Rtl.Annot.fsm_state_vector (Printf.sprintf "pipe%d_state" i) codes)
  in
  (ysel :: seq_annots) @ pipe_states

let manual_design mode =
  Rtl.Design.add_annots (auto_design mode) (manual_annotations mode)
