let out_mem_en = 0
let out_mem_we = 1
let out_cnt_en = 2
let out_buf_we = 3
let out_done = 4
let out_busy = 5
let num_outputs = 6

let num_inputs = 4 (* cmd[2:0], rdy *)

let input_assignment ~cmd ~rdy = (cmd land 7) lor (if rdy then 8 else 0)

let states =
  [| "IDLE"; "RREQ"; "RXFER"; "RSTREAM"; "RLAST"; "WREQ"; "WXFER"; "WSTREAM";
     "WLAST"; "DONE" |]

let index name =
  let rec find i = if states.(i) = name then i else find (i + 1) in
  find 0

let streaming_states = [ "RSTREAM"; "RLAST"; "WSTREAM"; "WLAST" ]

let fsm =
  let s = index in
  let next_of state cmd rdy =
    match state with
    | "IDLE" ->
      if cmd = Protocol.cmd_read || cmd = Protocol.cmd_line_read then s "RREQ"
      else if cmd = Protocol.cmd_write || cmd = Protocol.cmd_line_write then
        s "WREQ"
      else s "IDLE"
    | "RREQ" ->
      if not rdy then s "RREQ"
      else if cmd = Protocol.cmd_line_read then s "RSTREAM"
      else s "RXFER"
    | "RXFER" -> s "DONE"
    | "RSTREAM" -> if cmd = Protocol.cmd_line_read then s "RSTREAM" else s "RLAST"
    | "RLAST" -> s "DONE"
    | "WREQ" ->
      if not rdy then s "WREQ"
      else if cmd = Protocol.cmd_line_write then s "WSTREAM"
      else s "WXFER"
    | "WXFER" -> s "DONE"
    | "WSTREAM" ->
      if cmd = Protocol.cmd_line_write then s "WSTREAM" else s "WLAST"
    | "WLAST" -> s "DONE"
    | "DONE" -> s "IDLE"
    | _ -> assert false
  in
  let out_bits name =
    let bits = function
      | "IDLE" -> []
      | "RREQ" -> [ out_mem_en; out_busy ]
      | "RXFER" -> [ out_mem_en; out_buf_we; out_busy ]
      | "RSTREAM" -> [ out_mem_en; out_buf_we; out_cnt_en; out_busy ]
      | "RLAST" -> [ out_buf_we; out_busy ]
      | "WREQ" -> [ out_mem_en; out_mem_we; out_busy ]
      | "WXFER" -> [ out_mem_en; out_mem_we; out_busy ]
      | "WSTREAM" -> [ out_mem_en; out_mem_we; out_cnt_en; out_busy ]
      | "WLAST" -> [ out_mem_we; out_busy ]
      | "DONE" -> [ out_done ]
      | _ -> assert false
    in
    List.fold_left
      (fun acc b -> Bitvec.set acc b true)
      (Bitvec.zero num_outputs) (bits name)
  in
  let cols = 1 lsl num_inputs in
  let next =
    Array.map
      (fun name ->
        Array.init cols (fun i ->
            next_of name (i land 7) (i lsr 3 land 1 = 1)))
      states
  in
  let moore_out = Array.map out_bits states in
  let out = Array.map (fun v -> Array.make cols v) moore_out in
  Core.Fsm_ir.make ~name:"dpipe" ~num_inputs ~num_outputs ~states ~reset:0
    ~next ~out

let reachable_states_for_cmds cmds =
  let cmds = List.sort_uniq Stdlib.compare (Protocol.cmd_idle :: cmds) in
  let inputs =
    List.concat_map
      (fun cmd ->
        [ input_assignment ~cmd ~rdy:false; input_assignment ~cmd ~rdy:true ])
      cmds
  in
  List.map
    (fun i -> states.(i))
    (Core.Fsm_ir.reachable_with fsm ~inputs)
