(** Data pipe controller (one per two-processor tile).

    A small FSM driving a tile's memory port: request, transfer (single beat
    or streaming line), final beat, done. Streaming states are only entered
    by line commands, so an uncached configuration — which never issues line
    commands — provably cannot reach them. That is the state headroom the
    paper's *Manual* optimization reclaims.

    Input word (4 bits): bits 2..0 = pipe command ({!Protocol.cmd_read} …),
    bit 3 = memory-ready. Moore outputs (6 bits): see the [out_*] indices. *)

val fsm : Core.Fsm_ir.t

val input_assignment : cmd:int -> rdy:bool -> int

val out_mem_en : int
val out_mem_we : int
val out_cnt_en : int
val out_buf_we : int
val out_done : int
val out_busy : int

val num_outputs : int

val streaming_states : string list
(** Names of the states only line commands reach. *)

val reachable_states_for_cmds : int list -> string list
(** State names reachable when the microcode only ever issues the given
    command values (ready may do anything). *)
