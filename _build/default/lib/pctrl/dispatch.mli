(** Dispatch-unit microprograms.

    The Dispatch block of the PCtrl (paper Fig. 4) issues line read / line
    write commands with appropriate timing to the data pipes; the commands
    and timing live in a configuration memory as microcode. Both memory
    configurations share one hardware geometry (same fields, depth and
    dispatch table), so the same flexible design accepts either program.

    Microcode fields:
    - [sel_mode] (2): which pipe-select decode drives this cycle
      (0 = none, 1 = source tile, 2 = destination tile);
    - [cmd] (3): pipe command ({!Protocol.cmd_read} …);
    - [buf_word] (2): line-buffer word steered to/from the datapath;
    - [resp] (1): complete the transaction. *)

type mode = Cached | Uncached

val depth : int
(** Fixed microcode memory depth (64 — sized for the cached program). *)

val line_beats : int
(** Beats per line transfer (cache line size / access width; 4 here). *)

val sel_none : int
val sel_src : int
val sel_dst : int

val format : Core.Microcode.field list

val program : mode -> Core.Microcode.program
(** The microprogram for a memory configuration; padded to {!depth}. Both
    modes share [pname = "useq"], so their configuration bindings target the
    same hardware tables. *)

val cmd_values : mode -> int list
(** Pipe-command values the mode's microcode can issue (including idle) —
    feeds the Manual-mode pipe-state reachability argument. *)
