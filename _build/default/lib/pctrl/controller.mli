(** The protocol controller (PCtrl) top level — the paper's Fig. 9 case
    study, scaled to this repository's substrate.

    Structure (cf. paper Fig. 4): a microcoded Dispatch unit (sequencer with
    configuration memory and a dispatch table), a registered one-hot
    pipe-select (decoded from the source/destination tile index — the
    post-flop one-hot signal of Fig. 7), four data-pipe FSMs with
    table-driven (configuration-memory) logic, and per-pipe line buffers
    with word steering — the functional datapath state that survives partial
    evaluation.

    Ports: inputs [op] (3), [src] (2), [dst] (2), [rdy] (1), [data_in] (64);
    outputs [data_out] (64), [mem_en] (4), [mem_we] (4), [resp] (1),
    [busy] (1), [done_any] (1).

    The four experimental build points of Fig. 9:
    - [full_design] — flexible; all tables are configuration memories.
    - [auto_design mode] — partial evaluation only: tables bound to the
      mode's microcode, default flow.
    - [manual_design mode] — additionally carries the generator's
      reachability knowledge (µPC reachable set, field value sets, one-hot
      pipe select, per-mode reachable pipe states) as annotations; compile
      with [honor_generator_annots = true]. *)

type mode = Dispatch.mode = Cached | Uncached

val full_design : unit -> Rtl.Design.t

val bindings : mode -> (string * Bitvec.t array) list
(** Configuration contents (sequencer microcode, dispatch table, pipe FSM
    tables) with composed table names. *)

val auto_design : mode -> Rtl.Design.t

val manual_annotations : mode -> Rtl.Annot.t list

val manual_design : mode -> Rtl.Design.t

val pipe_count : int
val beat_width : int
