(** Protocol vocabulary of the Smart-Memories-like controller.

    Opcodes arrive from the processors; pipe commands go from the Dispatch
    unit's microcode to the four data pipes. *)

type opcode =
  | Nop
  | Read_line   (** fetch a cache line from the source tile *)
  | Write_line  (** write the line buffer to the destination tile *)
  | Copy_line   (** cache-to-cache transfer: read from src, write to dst *)
  | Evict       (** write back and acknowledge *)
  | Unc_read    (** uncached single-beat read *)
  | Unc_write   (** uncached single-beat write *)
  | Sync        (** fence: respond immediately *)

val opcode_bits : int
val encode_opcode : opcode -> int
val decode_opcode : int -> opcode
val all_opcodes : opcode list

(** Pipe commands (3 bits). *)

val cmd_bits : int

val cmd_idle : int

val cmd_read : int
(** Single-beat read. *)

val cmd_write : int
(** Single-beat write. *)

val cmd_line_read : int
(** Streaming line read. *)

val cmd_line_write : int
(** Streaming line write. *)

val pp_opcode : Format.formatter -> opcode -> unit
