(** Activity-based power estimation.

    The paper's Fig. 9 discussion reports "area and power savings"; this
    module supplies the power half. The model is the standard first-order
    one:

    - dynamic power ∝ Σ over gates of (toggle rate × capacitance), with a
      cell's input capacitance approximated by its area and toggle rates
      measured by random-vector simulation of the mapped netlist
      (registers toggle with their data, configuration bits never toggle);
    - leakage ∝ total cell area.

    Absolute units are arbitrary (the library is synthetic); like the area
    numbers, only ratios between designs mapped with the same library are
    meaningful. *)

type estimate = {
  dynamic : float;   (** activity-weighted, arbitrary units *)
  leakage : float;   (** area-proportional, arbitrary units *)
  toggles_per_cycle : float;  (** average net toggles per clock *)
}

val total : estimate -> float

val estimate :
  ?cycles:int ->
  ?seed:int ->
  ?config:(string * Bitvec.t array) list ->
  Cells.Library.t ->
  Aig.t ->
  estimate
(** Simulates [cycles] (default 256) random-input clock cycles from the
    initial state. [config] loads configuration latches (named
    ["table[entry][bit]"]) with real contents before simulating — without
    it, a flexible design idles on all-zero microcode and its dynamic power
    is meaninglessly low. *)

val pp : Format.formatter -> estimate -> unit
