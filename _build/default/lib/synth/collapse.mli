(** Cone collapse and two-level resynthesis.

    For every combinational root (primary output or latch next-state
    function) whose transitive fan-in cone has at most [cap] leaves, the pass
    extracts the root's truth function by exhaustive window simulation,
    applies value-set don't-cares from the honoured annotations (assignments
    where an annotated leaf vector takes a value outside its set become
    DC), minimizes with {!Twolevel.Espresso}, and rebuilds the root as
    two-level logic — but only when the estimated gate count beats the
    existing structure (local-minimum behaviour: logically equivalent inputs
    in different styles can keep different structures, which is the scatter
    the paper observes around the equal-area line).

    Roots with wider cones are copied structurally (this is the flop-boundary
    limitation: the pass never looks through a latch, so an unannotated
    registered one-hot bus is *not* optimized — Fig. 8's "Regular" series). *)

val run :
  ?cap:int ->
  ?espresso_iters:int ->
  annots:Annots.t list ->
  Aig.t ->
  Aig.t
(** [cap] defaults to 14 (the dense truth-table window limit). *)
