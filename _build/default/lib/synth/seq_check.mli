(** Exact sequential equivalence by product-machine reachability.

    Builds one BDD transition relation over the union of both netlists'
    latches (inputs shared by name), computes the reachable state set from
    the joint initial state, and checks that no reachable state/input
    combination distinguishes any primary output. Unlike
    {!Equiv.aig_vs_aig} this is a proof, not a falsifier — but only for
    designs small enough for the BDD caps, which is exactly the size of the
    unit-test designs it guards. *)

type result =
  | Equivalent
  | Counterexample of string  (** name of a distinguishing output *)
  | Gave_up of string

val run : ?max_vars:int -> ?max_bdd:int -> ?max_iters:int -> Aig.t -> Aig.t -> result
(** Both graphs must have the same PI and PO names.
    @raise Invalid_argument if the interfaces differ. *)
