(** State propagation and folding (the paper's Section III-B optimization).

    Given an annotation "vector y only takes values in S" on latch (or input)
    bits, this pass looks at the logic downstream of y and
    - replaces any node that is constant for every value in S (for all
      values of the other inputs) by that constant, and
    - merges nodes that are equal (or antivalent) for every value in S.

    The check is exact: each candidate node gets a BDD over the annotated
    bits and the other cone leaves, and is compared under the constraint
    [χ_S] using generalized cofactors — two functions equal on S have equal
    [constrain f χ_S], so the cofactor is a canonical class representative.

    Unlike {!Collapse}, this pass handles wide vectors (one-hot buses of
    hundreds of bits) because it never enumerates assignments; resource caps
    ([max_vars], per-node BDD size) make it give up gracefully instead of
    blowing up, mirroring a real tool's effort limits. *)

val run :
  ?max_vars:int ->
  ?max_bdd:int ->
  annots:Annots.t list ->
  Aig.t ->
  Aig.t
(** [max_vars] (default 64) bounds the total BDD variables; [max_bdd]
    (default 50_000) bounds any single node's BDD size. *)
