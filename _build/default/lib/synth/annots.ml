type t = {
  base : string;
  nodes : int array;
  values : Bitvec.t list;
  provenance : Rtl.Annot.provenance;
  on_state : bool;
}

let width t = Array.length t.nodes

let extract (low : Lower.t) =
  let of_annot (a : Rtl.Annot.t) =
    match Hashtbl.find_opt low.signals a.target with
    | None -> None
    | Some lits ->
      let plain =
        Array.for_all
          (fun l ->
            (not (Aig.is_complemented l))
            &&
            match Aig.kind low.aig (Aig.node_of_lit l) with
            | Aig.Pi | Aig.Latch -> true
            | Aig.Const | Aig.And -> false)
          lits
      in
      if not plain then None
      else begin
        let nodes = Array.map Aig.node_of_lit lits in
        let on_state =
          Array.for_all (fun n -> Aig.kind low.aig n = Aig.Latch) nodes
        in
        Some
          { base = a.target; nodes; values = Rtl.Annot.values a;
            provenance = a.provenance; on_state }
      end
  in
  List.filter_map of_annot low.design.annots

let honored ~tool ~generator ~width_cap annots =
  let keep a =
    let prov_ok =
      match a.provenance with
      | Rtl.Annot.Tool_detected -> tool
      | Rtl.Annot.Generator -> generator
    in
    prov_ok && width a <= width_cap
  in
  List.filter keep annots

let relocate g t =
  let find i =
    let name = Printf.sprintf "%s[%d]" t.base i in
    match Aig.find_latch g name with
    | Some n -> Some n
    | None -> Aig.find_pi g name
  in
  let nodes = Array.init (Array.length t.nodes) find in
  if Array.for_all Option.is_some nodes then
    Some { t with nodes = Array.map Option.get nodes }
  else None

let member_table t =
  if width t > 30 then invalid_arg "Annots.member_table: too wide";
  let tbl = Hashtbl.create (List.length t.values) in
  List.iter (fun v -> Hashtbl.replace tbl (Bitvec.to_int v) ()) t.values;
  tbl
