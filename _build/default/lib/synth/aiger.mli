(** AIGER (ASCII, "aag") interchange for AIGs.

    The de-facto exchange format of the logic-synthesis and model-checking
    world (ABC, aiger tools, HWMCC): writing it makes every netlist in this
    repository consumable by external tools, and reading it lets external
    AIGs run through this flow.

    Caveats inherent to the format: reset styles are not representable
    (latches read back as [No_reset]; initial values are preserved via the
    optional init field), and structural hashing may merge AND nodes on
    read, so a write/read roundtrip preserves *behaviour* (checked in the
    tests by sequential equivalence), not node counts. *)

val write : Aig.t -> string
(** The graph in [aag] format with a full symbol table. *)

val to_file : string -> Aig.t -> unit

exception Parse_error of int * string
(** Line number and message. *)

val read : string -> Aig.t
(** @raise Parse_error on malformed input. *)

val of_file : string -> Aig.t
