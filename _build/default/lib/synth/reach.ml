let latch_group g ~prefix =
  let rec collect i acc =
    match Aig.find_latch g (Printf.sprintf "%s[%d]" prefix i) with
    | Some n -> collect (i + 1) (n :: acc)
    | None -> List.rev acc
  in
  match collect 0 [] with
  | [] -> None
  | nodes -> Some (Array.of_list nodes)

exception Overflow

let reachable_values ?(max_vars = 64) ?(max_bdd = 200_000) ?(max_states = 4096)
    ?(max_iters = 10_000) g ~group =
  let k = Array.length group in
  if k = 0 || k > 24 then None
  else begin
    let man = Bdd.make_man () in
    let var_of_node = Hashtbl.create 64 in
    Array.iteri (fun i n -> Hashtbl.replace var_of_node n i) group;
    let next_free = ref (2 * k) in
    let bdd_cache = Hashtbl.create 256 in
    let rec lit_bdd l =
      let n = Aig.node_of_lit l in
      let b = node_bdd n in
      if Aig.is_complemented l then Bdd.not_ b else b
    and node_bdd n =
      match Hashtbl.find_opt bdd_cache n with
      | Some b -> b
      | None ->
        let b =
          match Aig.kind g n with
          | Aig.Const -> Bdd.zero man
          | Aig.Pi | Aig.Latch ->
            (match Hashtbl.find_opt var_of_node n with
             | Some v -> Bdd.var man v
             | None ->
               if !next_free >= max_vars then raise Overflow;
               let v = !next_free in
               incr next_free;
               Hashtbl.replace var_of_node n v;
               Bdd.var man v)
          | Aig.And ->
            let f0, f1 = Aig.fanins g n in
            let b = Bdd.and_ (lit_bdd f0) (lit_bdd f1) in
            if Bdd.size b > max_bdd then raise Overflow;
            b
        in
        Hashtbl.replace bdd_cache n b;
        b
    in
    match
      let transition =
        Array.to_list group
        |> List.mapi (fun i n ->
               let f = lit_bdd (Aig.latch_next g n) in
               Bdd.iff (Bdd.var man (k + i)) f)
        |> List.fold_left Bdd.and_ (Bdd.one man)
      in
      if Bdd.size transition > max_bdd then raise Overflow;
      let init =
        Array.to_list group
        |> List.mapi (fun i n ->
               let _, init, _, _ = Aig.latch_info g n in
               if init then Bdd.var man i else Bdd.nvar man i)
        |> List.fold_left Bdd.and_ (Bdd.one man)
      in
      let quantified_vars =
        List.init k Fun.id @ List.init (!next_free - 2 * k) (fun j -> 2 * k + j)
      in
      let image r =
        let conj = Bdd.and_ transition r in
        let next_only = Bdd.exists quantified_vars conj in
        Bdd.rename next_only (fun v -> v - k)
      in
      let rec fixpoint i r =
        if i > max_iters then raise Overflow;
        let r' = Bdd.or_ r (image r) in
        if Bdd.equal r r' then r else fixpoint (i + 1) r'
      in
      let reached = fixpoint 0 init in
      let values = List.of_seq (Bdd.sat_seq reached ~nvars:k) in
      if List.length values > max_states then raise Overflow;
      values
    with
    | values -> Some values
    | exception Overflow -> None
  end
