(** Sequential cleanup.

    - Latches whose next-state is the constant equal to their init value (or
      that hold themselves) are replaced by constants — this is how
      partially-evaluated control registers disappear.
    - Latches with identical (next, init, reset) merge.
    - Logic and latches unreachable from the primary outputs are dropped.

    Configuration latches ([is_config]) are exempt from constant folding and
    merging: their contents are runtime-programmable (the write port is
    outside the modelled scope), so the "hold" next-state function does not
    mean they are constant. *)

val run : Aig.t -> Aig.t
