(** BDD-based sequential reachability of a register group.

    Computes the set of values a named register vector can take, treating
    all other sequential elements and the primary inputs as unconstrained —
    a sound over-approximation, so any value reported unreachable really is
    unreachable and may become a don't-care.

    This is the "tool-side" way to find the unreachable states the paper's
    *Manual* optimization removes; the generator-side way (walking the
    microprogram/FSM IR) lives in {!Core} and the tests cross-check the
    two. *)

val latch_group : Aig.t -> prefix:string -> int array option
(** Latch nodes named ["prefix[0]"], ["prefix[1]"], … (LSB first); [None]
    if no such latches exist or indices are not contiguous from 0. *)

val reachable_values :
  ?max_vars:int ->
  ?max_bdd:int ->
  ?max_states:int ->
  ?max_iters:int ->
  Aig.t ->
  group:int array ->
  Bitvec.t list option
(** Fixpoint image computation. [None] when an effort cap is exceeded
    ([max_vars] BDD variables (default 64), [max_bdd] nodes per function
    (default 200_000), [max_states] results (default 4096), [max_iters]
    image steps (default 10_000)). *)
