let bind_tables d bindings =
  List.fold_left
    (fun d (name, contents) -> Rtl.Design.with_rom_contents d name contents)
    d bindings

let bind_input (d : Rtl.Design.t) name value =
  let port =
    match List.find_opt (fun (s : Rtl.Signal.t) -> s.name = name) d.inputs with
    | Some s -> s
    | None -> raise Not_found
  in
  if Bitvec.width value <> port.width then
    invalid_arg "Partial_eval.bind_input: width mismatch";
  let subst e =
    Rtl.Expr.map_leaves
      ~signal:(fun s ->
        if s.Rtl.Signal.name = name then Rtl.Expr.const value
        else Rtl.Expr.signal s)
      ~table:(fun t addr width -> Rtl.Expr.table_read ~table:t ~width ~addr)
      e
  in
  {
    d with
    inputs = List.filter (fun (s : Rtl.Signal.t) -> s.name <> name) d.inputs;
    nets = List.map (fun (s, e) -> (s, subst e)) d.nets;
    outputs = List.map (fun (s, e) -> (s, subst e)) d.outputs;
    regs =
      List.map
        (fun (r : Rtl.Design.reg) ->
          { r with d = subst r.d; enable = Option.map subst r.enable })
        d.regs;
    annots = List.filter (fun (a : Rtl.Annot.t) -> a.target <> name) d.annots;
  }

let specialize ?(inputs = []) ?(tables = []) d =
  let d = bind_tables d tables in
  let d = List.fold_left (fun d (n, v) -> bind_input d n v) d inputs in
  Rtl.Design.validate d;
  d
