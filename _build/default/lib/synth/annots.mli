(** Bit-level view of design annotations.

    After lowering, an RTL value-set annotation on signal [s] becomes a
    vector of AIG leaf nodes (latch or PI bits) plus the list of allowed
    values. The optimization passes consume this form. *)

type t = {
  base : string;  (** annotated signal name *)
  nodes : int array;  (** AIG node per bit, LSB first *)
  values : Bitvec.t list;
  provenance : Rtl.Annot.provenance;
  on_state : bool;  (** true when every bit is a latch output *)
}

val extract : Lower.t -> t list
(** All annotations whose target lowered to plain PI/latch bits (annotations
    on intermediate nets carry no extra information for the optimizer — the
    logic implies them — and are skipped). *)

val honored :
  tool:bool -> generator:bool -> width_cap:int -> t list -> t list
(** Filter by provenance and by the tool's annotation width limit (the
    paper's n ≤ 32 cliff). *)

val width : t -> int

val member_table : t -> (int, unit) Hashtbl.t
(** Allowed values as an int set (widths ≤ 30 only; raises otherwise).
    Used by the dense-window collapse. *)

val relocate : Aig.t -> t -> t option
(** Re-resolve the annotation's bit nodes by name (["base[i]"]) in another
    AIG — passes rebuild graphs but preserve latch/PI names. [None] when a
    bit no longer exists (e.g. swept away), in which case the annotation is
    simply dropped. *)
