(** Conservative forward retiming.

    Moves registers forward across AND nodes: when both fanins of an AND are
    (possibly complemented) outputs of reset-free, non-configuration latches,
    the AND output becomes a fresh latch whose next-state function is the
    AND of the source latches' next-state functions and whose initial value
    is the AND of their (complement-adjusted) initial values.

    Latches with a synchronous or asynchronous reset are never moved —
    merging them would change reset behaviour — which reproduces the paper's
    observation that retiming helps only for some flop styles. Original
    latches left without fanout are removed by {!Sweep}. *)

val run : ?max_rounds:int -> Aig.t -> Aig.t
(** Iterates to a fixpoint or [max_rounds] (default 512). *)
