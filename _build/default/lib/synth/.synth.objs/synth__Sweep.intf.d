lib/synth/sweep.mli: Aig
