lib/synth/retime.mli: Aig
