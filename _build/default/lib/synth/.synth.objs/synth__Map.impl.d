lib/synth/map.ml: Aig Array Cells Float Format Hashtbl List Option Printf Random Stdlib
