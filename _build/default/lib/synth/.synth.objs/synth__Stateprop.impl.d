lib/synth/stateprop.ml: Aig Annots Array Bdd Bitvec Hashtbl List
