lib/synth/power.mli: Aig Bitvec Cells Format
