lib/synth/power.ml: Aig Array Bitvec Cells Format Hashtbl List Map Printf Random
