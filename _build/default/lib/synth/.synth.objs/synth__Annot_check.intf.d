lib/synth/annot_check.mli: Aig Annots
