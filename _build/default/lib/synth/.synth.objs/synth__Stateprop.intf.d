lib/synth/stateprop.mli: Aig Annots
