lib/synth/annots.ml: Aig Array Bitvec Hashtbl List Lower Option Printf Rtl
