lib/synth/partial_eval.ml: Bitvec List Option Rtl
