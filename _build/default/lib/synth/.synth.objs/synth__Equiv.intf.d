lib/synth/equiv.mli: Aig Bitvec Rtl
