lib/synth/sweep.ml: Aig Hashtbl List
