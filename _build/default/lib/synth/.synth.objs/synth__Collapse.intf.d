lib/synth/collapse.mli: Aig Annots
