lib/synth/seq_check.mli: Aig
