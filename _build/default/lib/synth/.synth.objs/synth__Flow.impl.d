lib/synth/flow.ml: Aig Annots Collapse Equiv List Lower Map Retime Stateprop Sweep
