lib/synth/aiger.mli: Aig
