lib/synth/collapse.ml: Aig Annots Array Bytes Fun Hashtbl List Option Printf Stdlib Twolevel
