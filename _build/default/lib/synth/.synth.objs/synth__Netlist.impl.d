lib/synth/netlist.ml: Aig Array Buffer Cells Hashtbl List Map Option Printf Rtl Stdlib String
