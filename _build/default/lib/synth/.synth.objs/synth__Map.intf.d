lib/synth/map.mli: Aig Cells Format Hashtbl Stdlib
