lib/synth/seq_check.ml: Aig Bdd Fun Hashtbl List
