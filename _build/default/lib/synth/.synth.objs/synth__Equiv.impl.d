lib/synth/equiv.ml: Aig Array Bitvec Hashtbl List Printf Random Rtl Stdlib String
