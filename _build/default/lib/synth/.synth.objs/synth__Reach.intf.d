lib/synth/reach.mli: Aig Bitvec
