lib/synth/aiger.ml: Aig Array Buffer Format Hashtbl In_channel List Option Out_channel Printf Rtl String
