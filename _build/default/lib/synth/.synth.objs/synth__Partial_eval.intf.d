lib/synth/partial_eval.mli: Bitvec Rtl
