lib/synth/retime.ml: Aig Hashtbl List Printf Rtl Sweep
