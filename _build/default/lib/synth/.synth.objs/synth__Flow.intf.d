lib/synth/flow.mli: Aig Cells Equiv Lower Map Rtl
