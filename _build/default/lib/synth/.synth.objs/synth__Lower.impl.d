lib/synth/lower.ml: Aig Array Bitvec Hashtbl List Printf Rtl
