lib/synth/annot_check.ml: Aig Annots Array Bdd Bitvec Format Hashtbl List
