lib/synth/netlist.mli: Aig Cells
