lib/synth/annots.mli: Aig Bitvec Hashtbl Lower Rtl
