lib/synth/lower.mli: Aig Hashtbl Rtl
