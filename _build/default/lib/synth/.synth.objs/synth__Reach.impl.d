lib/synth/reach.ml: Aig Array Bdd Fun Hashtbl List Printf
