type mismatch = {
  cycle : int;
  output : string;
  got : bool;
  expected : bool;
}

(* One sequential run of an AIG: feed per-cycle input bits by PI name, return
   per-cycle PO values by name. *)
let aig_run g ~cycles ~input =
  let state = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let _, init, _, _ = Aig.latch_info g n in
      Hashtbl.replace state n init)
    (Aig.latches g);
  let rows = ref [] in
  for cycle = 0 to cycles - 1 do
    let read =
      Aig.eval_all g
        ~pi:(fun n -> input cycle (Aig.pi_name g n))
        ~latch:(fun n -> Hashtbl.find state n)
    in
    let row =
      List.map (fun (name, l) -> (name, read l)) (Aig.pos g)
    in
    rows := row :: !rows;
    List.iter
      (fun n -> Hashtbl.replace state n (read (Aig.latch_next g n)))
      (Aig.latches g)
  done;
  List.rev !rows

let interface_names g =
  ( List.sort Stdlib.compare (List.map (Aig.pi_name g) (Aig.pis g)),
    List.sort Stdlib.compare (List.map fst (Aig.pos g)) )

let find_mismatch rows_a rows_b =
  let rec scan cycle = function
    | [], [] -> None
    | row_a :: rest_a, row_b :: rest_b ->
      let bad =
        List.find_opt
          (fun (name, v) -> List.assoc name row_b <> v)
          row_a
      in
      (match bad with
       | Some (name, v) ->
         Some { cycle; output = name; got = v; expected = not v }
       | None -> scan (cycle + 1) (rest_a, rest_b))
    | _, _ -> assert false
  in
  scan 0 (rows_a, rows_b)

let aig_vs_aig ?(cycles = 64) ?(runs = 8) ~seed a b =
  let pi_a, po_a = interface_names a and pi_b, po_b = interface_names b in
  if pi_a <> pi_b then invalid_arg "Equiv.aig_vs_aig: input interfaces differ";
  if po_a <> po_b then invalid_arg "Equiv.aig_vs_aig: output interfaces differ";
  let rec run_i i =
    if i >= runs then None
    else begin
      let rng = Random.State.make [| seed; i |] in
      let tape : (int * string, bool) Hashtbl.t = Hashtbl.create 256 in
      let input cycle name =
        match Hashtbl.find_opt tape (cycle, name) with
        | Some v -> v
        | None ->
          let v = Random.State.bool rng in
          Hashtbl.replace tape (cycle, name) v;
          v
      in
      let rows_a = aig_run a ~cycles ~input in
      let rows_b = aig_run b ~cycles ~input in
      match find_mismatch rows_a rows_b with
      | Some m -> Some m
      | None -> run_i (i + 1)
    end
  in
  run_i 0

let rtl_vs_aig ?(cycles = 64) ?(runs = 8) ?(config = []) ~seed
    (d : Rtl.Design.t) g =
  let rec run_i i =
    if i >= runs then None
    else begin
      let rng = Random.State.make [| seed; i; 77 |] in
      let st = Rtl.Eval.create ~config d in
      (* Pre-draw the whole input tape so both sides see the same bits. *)
      let tape =
        Array.init cycles (fun _ ->
            List.map
              (fun (s : Rtl.Signal.t) ->
                ( s.name,
                  Bitvec.of_bits
                    (List.init s.width (fun _ -> Random.State.bool rng)) ))
              d.inputs)
      in
      let input cycle name =
        (* name is "sig[i]" *)
        let base, idx =
          match String.index_opt name '[' with
          | Some k ->
            ( String.sub name 0 k,
              int_of_string (String.sub name (k + 1) (String.length name - k - 2)) )
          | None -> (name, 0)
        in
        Bitvec.get (List.assoc base tape.(cycle)) idx
      in
      let aig_rows = aig_run g ~cycles ~input in
      let rec cycle_loop cycle aig_rows =
        match aig_rows with
        | [] -> None
        | row :: rest ->
          List.iter
            (fun (name, v) -> Rtl.Eval.set_input st name v)
            tape.(cycle);
          let bad =
            List.fold_left
              (fun acc ((s : Rtl.Signal.t), _) ->
                match acc with
                | Some _ -> acc
                | None ->
                  let v = Rtl.Eval.peek st s.name in
                  let rec check i =
                    if i >= s.width then None
                    else begin
                      let expected = Bitvec.get v i in
                      let got = List.assoc (Printf.sprintf "%s[%d]" s.name i) row in
                      if got <> expected then
                        Some { cycle; output = Printf.sprintf "%s[%d]" s.name i;
                               got; expected }
                      else check (i + 1)
                    end
                  in
                  check 0)
              None d.outputs
          in
          (match bad with
           | Some m -> Some m
           | None ->
             Rtl.Eval.step st;
             cycle_loop (cycle + 1) rest)
      in
      match cycle_loop 0 aig_rows with
      | Some m -> Some m
      | None -> run_i (i + 1)
    end
  in
  run_i 0
