type options = {
  collapse_cap : int;
  espresso_iters : int;
  honor_tool_annots : bool;
  honor_generator_annots : bool;
  annot_width_cap : int;
  retime : bool;
  stateprop : bool;
  self_check : bool;
}

let default =
  {
    collapse_cap = 14;
    espresso_iters = 3;
    honor_tool_annots = true;
    honor_generator_annots = false;
    annot_width_cap = 32;
    retime = false;
    stateprop = true;
    self_check = false;
  }

type result = {
  lowered : Lower.t;
  aig : Aig.t;
  report : Map.report;
}

exception Self_check_failed of Equiv.mismatch

let area r = Map.total r.report

let compile ?(options = default) lib design =
  let lowered = Lower.run design in
  let honored =
    Annots.honored
      ~tool:options.honor_tool_annots
      ~generator:options.honor_generator_annots
      ~width_cap:options.annot_width_cap
      (Annots.extract lowered)
  in
  let relocate g = List.filter_map (Annots.relocate g) honored in
  let g = Sweep.run lowered.Lower.aig in
  let g = if options.retime then Retime.run g else g in
  let g =
    if options.stateprop && honored <> [] then
      Stateprop.run ~annots:(relocate g) g
    else g
  in
  let collapse g =
    Collapse.run ~cap:options.collapse_cap
      ~espresso_iters:options.espresso_iters ~annots:(relocate g) g
  in
  let g = Sweep.run (collapse g) in
  let g = Sweep.run (collapse g) in
  if options.self_check then begin
    match Equiv.aig_vs_aig ~seed:4242 lowered.Lower.aig g with
    | Some m -> raise (Self_check_failed m)
    | None -> ()
  end;
  let report = Map.run lib g in
  { lowered; aig = g; report }
