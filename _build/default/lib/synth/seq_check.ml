type result =
  | Equivalent
  | Counterexample of string
  | Gave_up of string

exception Overflow

let run ?(max_vars = 64) ?(max_bdd = 200_000) ?(max_iters = 10_000) ga gb =
  let pi_names g = List.sort compare (List.map (Aig.pi_name g) (Aig.pis g)) in
  let po_names g = List.sort compare (List.map fst (Aig.pos g)) in
  if pi_names ga <> pi_names gb then
    invalid_arg "Seq_check.run: input interfaces differ";
  if po_names ga <> po_names gb then
    invalid_arg "Seq_check.run: output interfaces differ";
  let latches_a = Aig.latches ga and latches_b = Aig.latches gb in
  let k = List.length latches_a + List.length latches_b in
  if 2 * k >= max_vars then Gave_up "too many latches"
  else begin
    let man = Bdd.make_man () in
    (* Vars: current state 0..k-1, next state k..2k-1, inputs 2k+. *)
    let input_var = Hashtbl.create 16 in
    let next_input = ref (2 * k) in
    let var_of_input name =
      match Hashtbl.find_opt input_var name with
      | Some v -> v
      | None ->
        if !next_input >= max_vars then raise Overflow;
        let v = !next_input in
        incr next_input;
        Hashtbl.replace input_var name v;
        v
    in
    (* Per-graph node BDDs over (state vars, input vars). *)
    let graph_env g latches offset =
      let state_var = Hashtbl.create 16 in
      List.iteri
        (fun i n -> Hashtbl.replace state_var n (offset + i))
        latches;
      let cache = Hashtbl.create 256 in
      let rec lit_bdd l =
        let b = node_bdd (Aig.node_of_lit l) in
        if Aig.is_complemented l then Bdd.not_ b else b
      and node_bdd n =
        match Hashtbl.find_opt cache n with
        | Some b -> b
        | None ->
          let b =
            match Aig.kind g n with
            | Aig.Const -> Bdd.zero man
            | Aig.Pi -> Bdd.var man (var_of_input (Aig.pi_name g n))
            | Aig.Latch -> Bdd.var man (Hashtbl.find state_var n)
            | Aig.And ->
              let f0, f1 = Aig.fanins g n in
              let b = Bdd.and_ (lit_bdd f0) (lit_bdd f1) in
              if Bdd.size b > max_bdd then raise Overflow;
              b
          in
          Hashtbl.replace cache n b;
          b
      in
      lit_bdd
    in
    match
      let lit_a = graph_env ga latches_a 0 in
      let lit_b = graph_env gb latches_b (List.length latches_a) in
      let all_latches =
        List.map (fun n -> (ga, lit_a, n)) latches_a
        @ List.map (fun n -> (gb, lit_b, n)) latches_b
      in
      let transition =
        List.fold_left
          (fun (i, acc) (g, lit, n) ->
            let f = lit (Aig.latch_next g n) in
            (i + 1, Bdd.and_ acc (Bdd.iff (Bdd.var man (k + i)) f)))
          (0, Bdd.one man) all_latches
        |> snd
      in
      if Bdd.size transition > max_bdd then raise Overflow;
      let init =
        List.fold_left
          (fun (i, acc) (g, _, n) ->
            let _, iv, _, _ = Aig.latch_info g n in
            ( i + 1,
              Bdd.and_ acc (if iv then Bdd.var man i else Bdd.nvar man i) ))
          (0, Bdd.one man) all_latches
        |> snd
      in
      let miters =
        List.map
          (fun (name, la) ->
            let lb = List.assoc name (Aig.pos gb) in
            (name, Bdd.xor (lit_a la) (lit_b lb)))
          (Aig.pos ga)
      in
      let quantified =
        List.init k Fun.id
        @ List.init (!next_input - 2 * k) (fun j -> (2 * k) + j)
      in
      let image r =
        let conj = Bdd.and_ transition r in
        Bdd.rename (Bdd.exists quantified conj) (fun v -> v - k)
      in
      let rec fixpoint i r =
        if i > max_iters then raise Overflow;
        match
          List.find_opt (fun (_, m) -> not (Bdd.is_zero (Bdd.and_ r m))) miters
        with
        | Some (name, _) -> Counterexample name
        | None ->
          let r' = Bdd.or_ r (image r) in
          if Bdd.equal r r' then Equivalent else fixpoint (i + 1) r'
      in
      fixpoint 0 init
    with
    | r -> r
    | exception Overflow -> Gave_up "BDD effort cap exceeded"
  end
