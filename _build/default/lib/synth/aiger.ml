exception Parse_error of int * string

(* Writing: AIGER requires variables numbered inputs first, then latches,
   then ANDs with defined-before-use ordering; we renumber. *)
let write g =
  let var_of = Hashtbl.create 256 in
  let next = ref 1 in
  let assign n =
    Hashtbl.replace var_of n !next;
    incr next
  in
  let inputs = Aig.pis g and latches = Aig.latches g in
  List.iter assign inputs;
  List.iter assign latches;
  let ands = ref [] in
  for n = 1 to Aig.num_nodes g - 1 do
    if Aig.kind g n = Aig.And then begin
      assign n;
      ands := n :: !ands
    end
  done;
  let ands = List.rev !ands in
  let lit l =
    let n = Aig.node_of_lit l in
    let v = if n = 0 then 0 else Hashtbl.find var_of n in
    (2 * v) + if Aig.is_complemented l then 1 else 0
  in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let outputs = Aig.pos g in
  out "aag %d %d %d %d %d\n" (!next - 1) (List.length inputs)
    (List.length latches) (List.length outputs) (List.length ands);
  List.iter (fun n -> out "%d\n" (2 * Hashtbl.find var_of n)) inputs;
  List.iter
    (fun n ->
      let _, init, _, _ = Aig.latch_info g n in
      out "%d %d %d\n"
        (2 * Hashtbl.find var_of n)
        (lit (Aig.latch_next g n))
        (if init then 1 else 0))
    latches;
  List.iter (fun (_, l) -> out "%d\n" (lit l)) outputs;
  List.iter
    (fun n ->
      let f0, f1 = Aig.fanins g n in
      let a = lit f0 and b = lit f1 in
      out "%d %d %d\n" (2 * Hashtbl.find var_of n) (max a b) (min a b))
    ands;
  List.iteri (fun i n -> out "i%d %s\n" i (Aig.pi_name g n)) inputs;
  List.iteri
    (fun i n ->
      let name, _, _, _ = Aig.latch_info g n in
      out "l%d %s\n" i name)
    latches;
  List.iteri (fun i (name, _) -> out "o%d %s\n" i name) outputs;
  Buffer.contents buf

let to_file path g =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (write g))

(* Reading: the section sizes are known from the header, so the symbol
   table can be scanned up front and real names used during construction. *)
let read text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let fail line fmt =
    Format.kasprintf (fun m -> raise (Parse_error (line, m))) fmt
  in
  let ints lineno s =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun x -> x <> "")
    |> List.map (fun x ->
           match int_of_string_opt x with
           | Some v -> v
           | None -> fail lineno "bad integer %s" x)
  in
  if Array.length lines = 0 then fail 1 "empty file";
  let ni, nl, no, m, na =
    match
      String.split_on_char ' ' (String.trim lines.(0))
      |> List.filter (fun x -> x <> "")
    with
    | [ "aag"; m; i; l; o; a ] ->
      (match
         (int_of_string_opt i, int_of_string_opt l, int_of_string_opt o,
          int_of_string_opt m, int_of_string_opt a)
       with
       | Some i, Some l, Some o, Some m, Some a -> (i, l, o, m, a)
       | _ -> fail 1 "expected 'aag M I L O A' header")
    | _ -> fail 1 "expected 'aag M I L O A' header"
  in
  let need = 1 + ni + nl + no + na in
  if Array.length lines < need then fail (Array.length lines) "truncated file";
  let line_at k =
    if k >= Array.length lines then fail k "unexpected end of file"
    else lines.(k)
  in
  (* Symbol table. *)
  let names = Hashtbl.create 16 in
  let rec scan k =
    if k < Array.length lines then begin
      let l = String.trim lines.(k) in
      if l = "c" then ()
      else begin
        (match String.index_opt l ' ' with
         | Some sp when String.length l > 1 ->
           let key = String.sub l 0 sp in
           let name = String.sub l (sp + 1) (String.length l - sp - 1) in
           (match key.[0] with
            | 'i' | 'l' | 'o' -> Hashtbl.replace names key name
            | _ -> ())
         | _ -> ());
        scan (k + 1)
      end
    end
  in
  scan need;
  let name_of prefix i default =
    Option.value ~default
      (Hashtbl.find_opt names (Printf.sprintf "%c%d" prefix i))
  in
  let g = Aig.create () in
  let lits = Array.make (m + 1) None in
  lits.(0) <- Some Aig.false_;
  let define lineno v l =
    if v mod 2 = 1 || v / 2 > m then fail lineno "bad defined literal %d" v;
    if lits.(v / 2) <> None then fail lineno "variable %d redefined" (v / 2);
    lits.(v / 2) <- Some l
  in
  (* Inputs. *)
  for i = 0 to ni - 1 do
    let k = 1 + i in
    match ints (k + 1) (line_at k) with
    | [ v ] -> define (k + 1) v (Aig.pi g (name_of 'i' i (Printf.sprintf "i%d" i)))
    | _ -> fail (k + 1) "bad input line"
  done;
  (* Latches (connected after the ANDs are defined). *)
  let latch_defs =
    List.init nl (fun i ->
        let k = 1 + ni + i in
        match ints (k + 1) (line_at k) with
        | [ v; nxt ] | [ v; nxt; 0 ] ->
          let q =
            Aig.latch g (name_of 'l' i (Printf.sprintf "l%d" i)) ~init:false
              ~reset:Rtl.Design.No_reset ~is_config:false
          in
          define (k + 1) v q;
          (q, nxt, k + 1)
        | [ v; nxt; 1 ] ->
          let q =
            Aig.latch g (name_of 'l' i (Printf.sprintf "l%d" i)) ~init:true
              ~reset:Rtl.Design.No_reset ~is_config:false
          in
          define (k + 1) v q;
          (q, nxt, k + 1)
        | _ -> fail (k + 1) "bad latch line")
  in
  let output_defs =
    List.init no (fun i ->
        let k = 1 + ni + nl + i in
        match ints (k + 1) (line_at k) with
        | [ v ] -> (i, v, k + 1)
        | _ -> fail (k + 1) "bad output line")
  in
  let resolve lineno v =
    let var = v / 2 in
    if var > m then fail lineno "literal %d out of range" v;
    match lits.(var) with
    | Some l -> if v mod 2 = 1 then Aig.not_ l else l
    | None -> fail lineno "use of undefined variable %d" var
  in
  for i = 0 to na - 1 do
    let k = 1 + ni + nl + no + i in
    match ints (k + 1) (line_at k) with
    | [ v; a; b ] ->
      define (k + 1) v (Aig.and_ g (resolve (k + 1) a) (resolve (k + 1) b))
    | _ -> fail (k + 1) "bad and line"
  done;
  List.iter (fun (q, nxt, lineno) -> Aig.set_next g q (resolve lineno nxt)) latch_defs;
  List.iter
    (fun (i, v, lineno) ->
      Aig.po g (name_of 'o' i (Printf.sprintf "o%d" i)) (resolve lineno v))
    output_defs;
  g

let of_file path = read (In_channel.with_open_text path In_channel.input_all)
