type t = {
  aig : Aig.t;
  signals : (string, Aig.lit array) Hashtbl.t;
  design : Rtl.Design.t;
}

let signal_lits t name =
  match Hashtbl.find_opt t.signals name with
  | Some lits -> lits
  | None -> raise Not_found

let bit_name base i = Printf.sprintf "%s[%d]" base i

let const_lits v =
  Array.init (Bitvec.width v) (fun i ->
      if Bitvec.get v i then Aig.true_ else Aig.false_)

(* Balanced mux tree over [addr] selecting [leaf index]; [pos] address bits
   cover indices [base .. base + 2^pos - 1]. *)
let rec mux_tree g (addr : Aig.lit array) leaf pos base =
  if pos = 0 then leaf base
  else begin
    let half = 1 lsl (pos - 1) in
    let hi = mux_tree g addr leaf (pos - 1) (base + half) in
    let lo = mux_tree g addr leaf (pos - 1) base in
    Aig.mux_ g addr.(pos - 1) hi lo
  end

let run (d : Rtl.Design.t) =
  Rtl.Design.validate d;
  let g = Aig.create () in
  let signals = Hashtbl.create 64 in
  (* Inputs. *)
  List.iter
    (fun (s : Rtl.Signal.t) ->
      let lits = Array.init s.width (fun i -> Aig.pi g (bit_name s.name i)) in
      Hashtbl.replace signals s.name lits)
    d.inputs;
  (* Registers: declare latches up front so feedback just works. *)
  List.iter
    (fun (r : Rtl.Design.reg) ->
      let s = r.q in
      let lits =
        Array.init s.Rtl.Signal.width (fun i ->
            Aig.latch g (bit_name s.Rtl.Signal.name i)
              ~init:(Bitvec.get r.init i) ~reset:r.reset ~is_config:r.is_config)
      in
      Hashtbl.replace signals s.Rtl.Signal.name lits)
    d.regs;
  (* Configuration tables: hold latches per bit. *)
  let config_bits = Hashtbl.create 8 in
  List.iter
    (fun (t : Rtl.Design.table) ->
      match t.storage with
      | Rtl.Design.Rom _ -> ()
      | Rtl.Design.Config ->
        let entry e =
          Array.init t.twidth (fun b ->
              let q =
                Aig.latch g
                  (Printf.sprintf "%s[%d][%d]" t.tname e b)
                  ~init:false ~reset:Rtl.Design.No_reset ~is_config:true
              in
              Aig.set_next g q q;
              q)
        in
        Hashtbl.replace config_bits t.tname (Array.init t.depth entry))
    d.tables;
  let read_table name (addr : Aig.lit array) =
    let t = Rtl.Design.find_table d name in
    let k = Rtl.Design.addr_bits t in
    assert (Array.length addr = k);
    let leaf_bit =
      match t.storage with
      | Rtl.Design.Rom contents ->
        fun idx b ->
          if idx < t.depth && Bitvec.get contents.(idx) b then Aig.true_
          else Aig.false_
      | Rtl.Design.Config ->
        let entries = Hashtbl.find config_bits name in
        fun idx b -> if idx < t.depth then entries.(idx).(b) else Aig.false_
    in
    Array.init t.twidth (fun b -> mux_tree g addr (fun idx -> leaf_bit idx b) k 0)
  in
  let rec lower (e : Rtl.Expr.t) : Aig.lit array =
    match e with
    | Rtl.Expr.Const v -> const_lits v
    | Rtl.Expr.Signal s -> Hashtbl.find signals s.Rtl.Signal.name
    | Rtl.Expr.Unop (Rtl.Expr.Not, a) -> Array.map Aig.not_ (lower a)
    | Rtl.Expr.Unop (Rtl.Expr.Red_and, a) ->
      [| Aig.and_list g (Array.to_list (lower a)) |]
    | Rtl.Expr.Unop (Rtl.Expr.Red_or, a) ->
      [| Aig.or_list g (Array.to_list (lower a)) |]
    | Rtl.Expr.Unop (Rtl.Expr.Red_xor, a) ->
      [| Array.fold_left (Aig.xor_ g) Aig.false_ (lower a) |]
    | Rtl.Expr.Binop (op, a, b) -> lower_binop op a b
    | Rtl.Expr.Mux (sel, a, b) ->
      let s = (lower sel).(0) in
      let av = lower a and bv = lower b in
      Array.init (Array.length av) (fun i -> Aig.mux_ g s av.(i) bv.(i))
    | Rtl.Expr.Concat es ->
      (* Head is most significant: low parts (tail) come first in the array. *)
      Array.concat (List.rev_map lower es)
    | Rtl.Expr.Slice { e; hi; lo } -> Array.sub (lower e) lo (hi - lo + 1)
    | Rtl.Expr.Table_read { table; addr; _ } -> read_table table (lower addr)
  and lower_binop op a b =
    let av = lower a and bv = lower b in
    let n = Array.length av in
    let bitwise f = Array.init n (fun i -> f av.(i) bv.(i)) in
    match op with
    | Rtl.Expr.And -> bitwise (Aig.and_ g)
    | Rtl.Expr.Or -> bitwise (Aig.or_ g)
    | Rtl.Expr.Xor -> bitwise (Aig.xor_ g)
    | Rtl.Expr.Add -> adder av bv Aig.false_
    | Rtl.Expr.Sub -> adder av (Array.map Aig.not_ bv) Aig.true_
    | Rtl.Expr.Eq ->
      let same = Array.to_list (Array.mapi (fun i x -> Aig.not_ (Aig.xor_ g x bv.(i))) av) in
      [| Aig.and_list g same |]
    | Rtl.Expr.Ne ->
      let same = Array.to_list (Array.mapi (fun i x -> Aig.not_ (Aig.xor_ g x bv.(i))) av) in
      [| Aig.not_ (Aig.and_list g same) |]
    | Rtl.Expr.Ult ->
      (* LSB-to-MSB scan: lt' = (a_i = b_i) ? lt : ~a_i & b_i. *)
      let lt = ref Aig.false_ in
      Array.iteri
        (fun i x ->
          let differ = Aig.xor_ g x bv.(i) in
          let this = Aig.and_ g (Aig.not_ x) bv.(i) in
          lt := Aig.mux_ g differ this !lt)
        av;
      [| !lt |]
  and adder av bv carry0 =
    let n = Array.length av in
    let out = Array.make n Aig.false_ in
    let carry = ref carry0 in
    for i = 0 to n - 1 do
      let a = av.(i) and b = bv.(i) and c = !carry in
      let axb = Aig.xor_ g a b in
      out.(i) <- Aig.xor_ g axb c;
      carry := Aig.or_ g (Aig.and_ g a b) (Aig.and_ g c axb)
    done;
    out
  in
  (* Nets in dependency order. *)
  List.iter
    (fun ((s : Rtl.Signal.t), e) -> Hashtbl.replace signals s.name (lower e))
    (Rtl.Design.net_order d);
  (* Register next-state functions. *)
  List.iter
    (fun (r : Rtl.Design.reg) ->
      let q = Hashtbl.find signals r.q.Rtl.Signal.name in
      let dv = lower r.d in
      let dv =
        match r.enable with
        | None -> dv
        | Some en ->
          let e = (lower en).(0) in
          Array.mapi (fun i dbit -> Aig.mux_ g e dbit q.(i)) dv
      in
      Array.iteri (fun i qbit -> Aig.set_next g qbit dv.(i)) q)
    d.regs;
  (* Outputs. *)
  List.iter
    (fun ((s : Rtl.Signal.t), e) ->
      let lits = lower e in
      Array.iteri (fun i l -> Aig.po g (bit_name s.name i) l) lits)
    d.outputs;
  { aig = g; signals; design = d }
