type result =
  | Proved
  | Refuted of string
  | Unproved of string

exception Overflow

let inductive ?(max_vars = 96) ?(max_bdd = 200_000) g (a : Annots.t) =
  let k = Array.length a.Annots.nodes in
  let all_latches =
    Array.for_all (fun n -> Aig.kind g n = Aig.Latch) a.Annots.nodes
  in
  if not all_latches then
    Unproved "annotation targets input ports (environment assumption)"
  else begin
    (* Base case. *)
    let init_value =
      Bitvec.of_bits
        (Array.to_list
           (Array.map
              (fun n ->
                let _, init, _, _ = Aig.latch_info g n in
                init)
              a.Annots.nodes))
    in
    if not (List.exists (Bitvec.equal init_value) a.Annots.values) then
      Refuted
        (Format.asprintf "initial value %a is outside the set" Bitvec.pp
           init_value)
    else begin
      (* Step case: vars 0..k-1 are the annotated bits; everything else in
         the next-state cones gets a fresh free variable. *)
      let man = Bdd.make_man () in
      let var_of_node = Hashtbl.create 64 in
      Array.iteri (fun i n -> Hashtbl.replace var_of_node n i) a.Annots.nodes;
      let next_var = ref k in
      let cache = Hashtbl.create 256 in
      let rec lit_bdd l =
        let b = node_bdd (Aig.node_of_lit l) in
        if Aig.is_complemented l then Bdd.not_ b else b
      and node_bdd n =
        match Hashtbl.find_opt cache n with
        | Some b -> b
        | None ->
          let b =
            match Aig.kind g n with
            | Aig.Const -> Bdd.zero man
            | Aig.Pi | Aig.Latch ->
              (match Hashtbl.find_opt var_of_node n with
               | Some v -> Bdd.var man v
               | None ->
                 if !next_var >= max_vars then raise Overflow;
                 let v = !next_var in
                 incr next_var;
                 Hashtbl.replace var_of_node n v;
                 Bdd.var man v)
            | Aig.And ->
              let f0, f1 = Aig.fanins g n in
              let b = Bdd.and_ (lit_bdd f0) (lit_bdd f1) in
              if Bdd.size b > max_bdd then raise Overflow;
              b
          in
          Hashtbl.replace cache n b;
          b
      in
      match
        let chi =
          List.fold_left
            (fun acc v ->
              Bdd.or_ acc
                (Bitvec.fold_bits
                   (fun i bit acc ->
                     Bdd.and_ acc
                       (if bit then Bdd.var man i else Bdd.nvar man i))
                   v (Bdd.one man)))
            (Bdd.zero man) a.Annots.values
        in
        let nexts =
          Array.map (fun n -> lit_bdd (Aig.latch_next g n)) a.Annots.nodes
        in
        (* Characteristic of "the next value is in the set". *)
        let chi_next =
          List.fold_left
            (fun acc v ->
              Bdd.or_ acc
                (Bitvec.fold_bits
                   (fun i bit acc ->
                     Bdd.and_ acc
                       (if bit then nexts.(i) else Bdd.not_ nexts.(i)))
                   v (Bdd.one man)))
            (Bdd.zero man) a.Annots.values
        in
        Bdd.is_one (Bdd.imp chi chi_next)
      with
      | true -> Proved
      | false ->
        Unproved
          "induction step fails with other registers unconstrained"
      | exception Overflow -> Unproved "BDD effort cap exceeded"
    end
  end
