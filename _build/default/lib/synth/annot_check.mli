(** Verifying generator annotations.

    A value-set annotation is only a safe source of don't-cares if it is an
    invariant. This checker proves it by 1-induction with BDDs:

    - base: the annotated latch bits initialize inside the set;
    - step: if the vector is in the set now, it is in the set after any
      clock edge, for any values of the inputs and the *other* latches
      (which are left unconstrained — a sound over-approximation).

    [Unproved] therefore means "not provable by this argument", not
    "wrong": an annotation whose invariance depends on another register's
    behaviour lands there. The generators in this repository emit
    annotations that pass ([Proved]) — the tests check exactly that. *)

type result =
  | Proved
  | Refuted of string  (** genuinely violated, with a reason *)
  | Unproved of string (** out of reach for the method or effort caps *)

val inductive :
  ?max_vars:int -> ?max_bdd:int -> Aig.t -> Annots.t -> result
(** Only annotations whose bits are all latch outputs can be proved;
    input-port annotations are environment assumptions and return
    [Unproved]. *)
