(* One forward round: rebuild the graph; every AND whose fanins are both
   movable latch outputs becomes a fresh latch. The new latch's next-state
   is built from the *copied* next-state functions of its sources. *)

let movable g l =
  let n = Aig.node_of_lit l in
  match Aig.kind g n with
  | Aig.Latch ->
    let _, _, reset, is_config = Aig.latch_info g n in
    reset = Rtl.Design.No_reset && not is_config
  | Aig.Const | Aig.Pi | Aig.And -> false

let round serial g =
  let moved = ref 0 in
  let ng = Aig.create () in
  let node_map : (int, Aig.lit) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.replace node_map 0 Aig.false_;
  List.iter
    (fun n -> Hashtbl.replace node_map n (Aig.pi ng (Aig.pi_name g n)))
    (Aig.pis g);
  List.iter
    (fun n ->
      let name, init, reset, is_config = Aig.latch_info g n in
      Hashtbl.replace node_map n (Aig.latch ng name ~init ~reset ~is_config))
    (Aig.latches g);
  (* New latches created by the move, with their (old-graph) next literal to
     connect at the end. *)
  let pending : (Aig.lit * Aig.lit * Aig.lit) list ref = ref [] in
  (* (new latch q, old d0, old d1) where d0/d1 are complement-adjusted
     next-state literals of the source latches. *)
  let rec copy_node n =
    match Hashtbl.find_opt node_map n with
    | Some l -> l
    | None ->
      let f0, f1 = Aig.fanins g n in
      let l =
        if movable g f0 && movable g f1 then begin
          let source f =
            let ln = Aig.node_of_lit f in
            let _, init, _, _ = Aig.latch_info g ln in
            let d = Aig.latch_next g ln in
            let init = if Aig.is_complemented f then not init else init in
            let d = if Aig.is_complemented f then Aig.not_ d else d in
            (init, d)
          in
          let i0, d0 = source f0 and i1, d1 = source f1 in
          incr moved;
          let q =
            Aig.latch ng
              (Printf.sprintf "rt%d_%d" serial n)
              ~init:(i0 && i1) ~reset:Rtl.Design.No_reset ~is_config:false
          in
          pending := (q, d0, d1) :: !pending;
          q
        end
        else Aig.and_ ng (copy_lit f0) (copy_lit f1)
      in
      Hashtbl.replace node_map n l;
      l
  and copy_lit l =
    let nl = copy_node (Aig.node_of_lit l) in
    if Aig.is_complemented l then Aig.not_ nl else nl
  in
  List.iter (fun (name, l) -> Aig.po ng name (copy_lit l)) (Aig.pos g);
  List.iter
    (fun n ->
      let q' = Hashtbl.find node_map n in
      Aig.set_next ng q' (copy_lit (Aig.latch_next g n)))
    (Aig.latches g);
  List.iter (fun (q, d0, d1) -> Aig.set_next ng q (Aig.and_ ng (copy_lit d0) (copy_lit d1)))
    !pending;
  (!moved, ng)

let run ?(max_rounds = 512) g =
  let rec go i g =
    if i >= max_rounds then g
    else begin
      let moved, g' = round i g in
      let g' = Sweep.run g' in
      if moved = 0 then g' else go (i + 1) g'
    end
  in
  go 0 g
