type replacement =
  | Repl_const of bool
  | Repl_node of int * bool  (* representative node, complement *)

let run ?(max_vars = 64) ?(max_bdd = 50_000) ~annots g =
  if annots = [] then g
  else begin
    let man = Bdd.make_man () in
    let var_of_node : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let next_var = ref 0 in
    let assign n =
      if not (Hashtbl.mem var_of_node n) then begin
        Hashtbl.replace var_of_node n !next_var;
        incr next_var
      end
    in
    List.iter (fun (a : Annots.t) -> Array.iter assign a.nodes) annots;
    let annot_var_count = !next_var in
    (* Characteristic function of the allowed value combinations. *)
    let chi =
      let annot_chi (a : Annots.t) =
        let minterm v =
          Bitvec.fold_bits
            (fun i b acc ->
              let var = Hashtbl.find var_of_node a.nodes.(i) in
              Bdd.and_ acc (if b then Bdd.var man var else Bdd.nvar man var))
            v (Bdd.one man)
        in
        List.fold_left
          (fun acc v -> Bdd.or_ acc (minterm v))
          (Bdd.zero man) a.values
      in
      List.fold_left
        (fun acc a -> Bdd.and_ acc (annot_chi a))
        (Bdd.one man) annots
    in
    (* Bottom-up BDDs with effort caps. *)
    let bdds : (int, Bdd.t option) Hashtbl.t = Hashtbl.create 1024 in
    let leaf_bdd n =
      match Hashtbl.find_opt var_of_node n with
      | Some v -> Some (Bdd.var man v)
      | None ->
        if !next_var >= max_vars then None
        else begin
          assign n;
          Some (Bdd.var man (Hashtbl.find var_of_node n))
        end
    in
    let lit_bdd l =
      let n = Aig.node_of_lit l in
      let b = if n = 0 then Some (Bdd.zero man) else Hashtbl.find bdds n in
      match b with
      | Some b -> Some (if Aig.is_complemented l then Bdd.not_ b else b)
      | None -> None
    in
    for n = 1 to Aig.num_nodes g - 1 do
      let b =
        match Aig.kind g n with
        | Aig.Const -> Some (Bdd.zero man)
        | Aig.Pi | Aig.Latch -> leaf_bdd n
        | Aig.And ->
          let f0, f1 = Aig.fanins g n in
          (match lit_bdd f0, lit_bdd f1 with
           | Some a, Some b ->
             let r = Bdd.and_ a b in
             if Bdd.size r > max_bdd then None else Some r
           | None, _ | _, None -> None)
      in
      Hashtbl.replace bdds n b
    done;
    (* Classify nodes under the constraint. *)
    let replacements : (int, replacement) Hashtbl.t = Hashtbl.create 64 in
    let class_reps : (int, int * bool) Hashtbl.t = Hashtbl.create 64 in
    for n = 1 to Aig.num_nodes g - 1 do
      if Aig.kind g n = Aig.And then
        match Hashtbl.find bdds n with
        | None -> ()
        | Some b ->
          let touches_annot =
            List.exists (fun v -> v < annot_var_count) (Bdd.support b)
          in
          if touches_annot then begin
            let c = Bdd.constrain b chi in
            if Bdd.is_zero c then
              Hashtbl.replace replacements n (Repl_const false)
            else if Bdd.is_one c then
              Hashtbl.replace replacements n (Repl_const true)
            else begin
              let cn = Bdd.not_ c in
              let key, phase =
                if Bdd.uid c <= Bdd.uid cn then (Bdd.uid c, false)
                else (Bdd.uid cn, true)
              in
              match Hashtbl.find_opt class_reps key with
              | None -> Hashtbl.replace class_reps key (n, phase)
              | Some (rep, rep_phase) ->
                Hashtbl.replace replacements n
                  (Repl_node (rep, phase <> rep_phase))
            end
          end
    done;
    (* Rebuild with substitutions. *)
    let ng = Aig.create () in
    let node_map : (int, Aig.lit) Hashtbl.t = Hashtbl.create 1024 in
    Hashtbl.replace node_map 0 Aig.false_;
    List.iter
      (fun n -> Hashtbl.replace node_map n (Aig.pi ng (Aig.pi_name g n)))
      (Aig.pis g);
    List.iter
      (fun n ->
        let name, init, reset, is_config = Aig.latch_info g n in
        Hashtbl.replace node_map n (Aig.latch ng name ~init ~reset ~is_config))
      (Aig.latches g);
    let rec copy_node n =
      match Hashtbl.find_opt node_map n with
      | Some l -> l
      | None ->
        let l =
          match Hashtbl.find_opt replacements n with
          | Some (Repl_const v) -> if v then Aig.true_ else Aig.false_
          | Some (Repl_node (rep, compl)) ->
            let rl = copy_node rep in
            if compl then Aig.not_ rl else rl
          | None ->
            let f0, f1 = Aig.fanins g n in
            Aig.and_ ng (copy_lit f0) (copy_lit f1)
        in
        Hashtbl.replace node_map n l;
        l
    and copy_lit l =
      let nl = copy_node (Aig.node_of_lit l) in
      if Aig.is_complemented l then Aig.not_ nl else nl
    in
    List.iter (fun (name, l) -> Aig.po ng name (copy_lit l)) (Aig.pos g);
    List.iter
      (fun n ->
        let q' = Hashtbl.find node_map n in
        Aig.set_next ng q' (copy_lit (Aig.latch_next g n)))
      (Aig.latches g);
    ng
  end
