type estimate = {
  dynamic : float;
  leakage : float;
  toggles_per_cycle : float;
}

let total e = e.dynamic +. e.leakage

(* Leakage per µm² — an arbitrary constant; only ratios matter. *)
let leakage_per_area = 0.01

let estimate ?(cycles = 256) ?(seed = 1) ?(config = []) lib g =
  let report, instances = Map.run_full lib g in
  let rng = Random.State.make [| 0x70777; seed |] in
  let state = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let _, init, _, _ = Aig.latch_info g n in
      Hashtbl.replace state n init)
    (Aig.latches g);
  (* Program the configuration latches. *)
  List.iter
    (fun (tname, contents) ->
      Array.iteri
        (fun e word ->
          Bitvec.fold_bits
            (fun b v () ->
              match Aig.find_latch g (Printf.sprintf "%s[%d][%d]" tname e b) with
              | Some n -> Hashtbl.replace state n v
              | None -> ())
            word ())
        contents)
    config;
  let prev = Hashtbl.create 256 in
  let weighted = ref 0.0 in
  let toggles = ref 0 in
  let observe n v weight =
    (match Hashtbl.find_opt prev n with
     | Some old when old <> v ->
       incr toggles;
       weighted := !weighted +. weight
     | Some _ -> ()
     | None -> ());
    Hashtbl.replace prev n v
  in
  for _cycle = 1 to cycles do
    let inputs = Hashtbl.create 16 in
    List.iter
      (fun n -> Hashtbl.replace inputs n (Random.State.bool rng))
      (Aig.pis g);
    let read =
      Aig.eval_all g ~pi:(Hashtbl.find inputs) ~latch:(Hashtbl.find state)
    in
    Hashtbl.iter
      (fun n (inst : Map.instance) ->
        observe n
          (read (Aig.lit_of_node n false))
          inst.Map.inst_cell.Cells.Cell.area)
      instances;
    List.iter
      (fun n ->
        let _, _, reset, is_config = Aig.latch_info g n in
        let weight =
          if is_config then 0.0 (* configuration bits never toggle *)
          else (Cells.Library.flop lib reset).Cells.Cell.area
        in
        observe n (Hashtbl.find state n) weight)
      (Aig.latches g);
    List.iter
      (fun n -> Hashtbl.replace state n (read (Aig.latch_next g n)))
      (Aig.latches g)
  done;
  {
    dynamic = !weighted /. float_of_int cycles;
    leakage = leakage_per_area *. Map.total report;
    toggles_per_cycle = float_of_int !toggles /. float_of_int cycles;
  }

let pp fmt e =
  Format.fprintf fmt "power: dynamic %.1f + leakage %.1f = %.1f (%.1f toggles/cycle)"
    e.dynamic e.leakage (total e) e.toggles_per_cycle
