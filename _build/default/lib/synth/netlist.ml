(* Wire naming: the positive value of AIG node [n] lives on wire [n<id>]
   when produced positively, or the produced (negative) value lives there
   and an INV generates [n<id>x] on demand. The INV-on-demand rule mirrors
   Map's accounting (one inverter per node phase needed but not produced),
   so instance counts line up with the report. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let pin_names = [| "A"; "B"; "C"; "D" |]

let build ?complex_cells lib g =
  let _report, instances = Map.run_full ?complex_cells lib g in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let counts = Hashtbl.create 16 in
  let count name =
    Hashtbl.replace counts name
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
  in
  let inst_id = ref 0 in
  let fresh_inst () = incr inst_id; Printf.sprintf "g%d" !inst_id in
  (* Base wire of each node (carrying its produced phase) and whether that
     phase is positive. *)
  let base_wire = Hashtbl.create 256 in
  let produced_pos = Hashtbl.create 256 in
  List.iter
    (fun n ->
      Hashtbl.replace base_wire n (sanitize (Aig.pi_name g n));
      Hashtbl.replace produced_pos n true)
    (Aig.pis g);
  List.iter
    (fun n ->
      let name, _, _, _ = Aig.latch_info g n in
      Hashtbl.replace base_wire n (sanitize name);
      Hashtbl.replace produced_pos n true)
    (Aig.latches g);
  let body = Buffer.create 4096 in
  let outb fmt = Printf.ksprintf (Buffer.add_string body) fmt in
  (* Lazily materialized inverters, one per node. *)
  let inv_wire = Hashtbl.create 64 in
  let wire_of_node n want_pos =
    if n = 0 then (if want_pos then "zero" else "one")
    else begin
      let base = Hashtbl.find base_wire n in
      if Hashtbl.find produced_pos n = want_pos then base
      else
        match Hashtbl.find_opt inv_wire n with
        | Some w -> w
        | None ->
          let w = base ^ "x" in
          count "INV";
          outb "  INV %s (.A(%s), .Y(%s));\n" (fresh_inst ()) base w;
          Hashtbl.replace inv_wire n w;
          w
    end
  in
  let wire_of_lit l =
    wire_of_node (Aig.node_of_lit l) (not (Aig.is_complemented l))
  in
  (* Gates in topological order (ids ascending). *)
  for n = 1 to Aig.num_nodes g - 1 do
    match Hashtbl.find_opt instances n with
    | None -> ()
    | Some (inst : Map.instance) ->
      let w = Printf.sprintf "n%d" n in
      Hashtbl.replace base_wire n w;
      Hashtbl.replace produced_pos n inst.Map.out_positive;
      let pins =
        List.mapi
          (fun i (src, want_pos) ->
            Printf.sprintf ".%s(%s)" pin_names.(i) (wire_of_node src want_pos))
          inst.Map.pins
      in
      count inst.Map.inst_cell.Cells.Cell.cname;
      outb "  %s %s (%s, .Y(%s));\n" inst.Map.inst_cell.Cells.Cell.cname
        (fresh_inst ()) (String.concat ", " pins) w
  done;
  (* Flops. *)
  List.iter
    (fun n ->
      let name, _, reset, _ = Aig.latch_info g n in
      let cell = Cells.Library.flop lib reset in
      count cell.Cells.Cell.cname;
      let d = wire_of_lit (Aig.latch_next g n) in
      let rst_pin =
        match reset with
        | Rtl.Design.No_reset -> ""
        | Rtl.Design.Sync_reset | Rtl.Design.Async_reset -> ", .RST(rst)"
      in
      outb "  %s %s (.D(%s), .CLK(clk)%s, .Q(%s));\n" cell.Cells.Cell.cname
        (fresh_inst ()) d rst_pin (sanitize name))
    (Aig.latches g);
  (* Outputs. *)
  List.iter
    (fun (name, l) ->
      let rhs =
        let n = Aig.node_of_lit l in
        if n = 0 then if Aig.is_complemented l then "1'b1" else "1'b0"
        else wire_of_lit l
      in
      outb "  assign %s = %s;\n" (sanitize name) rhs)
    (Aig.pos g);
  (* Header. *)
  let ports =
    [ "input clk"; "input rst" ]
    @ List.map (fun n -> "input " ^ sanitize (Aig.pi_name g n)) (Aig.pis g)
    @ List.map (fun (name, _) -> "output " ^ sanitize name) (Aig.pos g)
  in
  out "// mapped with library %s\n" lib.Cells.Library.lib_name;
  out "module %%NAME%% (\n  %s\n);\n" (String.concat ",\n  " ports);
  out "  wire zero = 1'b0;\n  wire one = 1'b1;\n";
  List.iter
    (fun n ->
      let name, _, _, _ = Aig.latch_info g n in
      out "  wire %s;\n" (sanitize name))
    (Aig.latches g);
  for n = 1 to Aig.num_nodes g - 1 do
    if Hashtbl.mem instances n then out "  wire n%d;\n" n
  done;
  Hashtbl.iter (fun _ w -> out "  wire %s;\n" w) inv_wire;
  Buffer.add_buffer buf body;
  out "endmodule\n";
  (Buffer.contents buf, counts)

let replace_marker text value =
  let marker = "%NAME%" in
  match String.index_opt text '%' with
  | None -> text
  | Some _ ->
    let buf = Buffer.create (String.length text) in
    let ml = String.length marker in
    let rec go i =
      if i >= String.length text then ()
      else if
        i + ml <= String.length text && String.sub text i ml = marker
      then begin
        Buffer.add_string buf value;
        go (i + ml)
      end
      else begin
        Buffer.add_char buf text.[i];
        go (i + 1)
      end
    in
    go 0;
    Buffer.contents buf

let emit ?complex_cells lib ~name g =
  let text, _ = build ?complex_cells lib g in
  replace_marker text (sanitize name)

let instance_counts ?complex_cells lib g =
  let _, counts = build ?complex_cells lib g in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort Stdlib.compare
