(** Structural (gate-level) Verilog emission of a mapped netlist.

    Renders the {!Map} covering as a flat netlist of library-cell instances
    — what a synthesis tool hands to place and route. Inverters are
    materialized exactly where the mapper accounted for them, so the
    instance counts in the output match {!Map.report} cell for cell (a
    property the tests check). *)

val emit : ?complex_cells:bool -> Cells.Library.t -> name:string -> Aig.t -> string

val instance_counts :
  ?complex_cells:bool -> Cells.Library.t -> Aig.t -> (string * int) list
(** Cells instantiated by {!emit}, sorted by name — for cross-checking
    against {!Map.run}. *)
