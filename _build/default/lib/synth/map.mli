(** Technology mapping and area/timing reporting.

    Covers the AIG with cells from a {!Cells.Library}: XOR/XNOR and MUX
    patterns are detected structurally (when their internal nodes have no
    other fanout), then two-node shapes map onto the 3-input cells
    (NAND3/NOR3/AOI21/OAI21 — disable with [complex_cells:false] for the
    library-richness ablation), remaining AND nodes choose among
    AND2/NAND2/NOR2/OR2 according to input complementation and the output
    phases their consumers need, and inverters are shared per node. Latches
    map to the flop cell matching their reset style — this is where Fig. 8's
    reset-style area differences and Fig. 9's configuration-bit cost come
    from.

    The mapper is intentionally greedy; its granularity (the "discrete
    standard cell library") is one source of the small area differences
    between logically equivalent implementations. *)

type report = {
  comb_area : float;
  seq_area : float;
  cell_counts : (string * int) list;  (** sorted by cell name *)
  critical_delay : float;
  num_flops : int;
  config_bits : int;
}

val total : report -> float

type instance = {
  inst_cell : Cells.Cell.t;
  out_positive : bool;
      (** does the cell output carry the positive phase of the AIG node? *)
  pins : (int * bool) list;
      (** (source node, wants-positive), in the cell's input-pin order *)
}

val run : ?complex_cells:bool -> Cells.Library.t -> Aig.t -> report
(** [complex_cells] defaults to [true]. *)

val run_full :
  ?complex_cells:bool ->
  Cells.Library.t ->
  Aig.t ->
  report * (int, instance) Hashtbl.t
(** The report plus the mapped gate per AND node (pattern-internal nodes
    have no entry) — consumed by {!Netlist} and {!selfcheck}. *)

val selfcheck :
  ?samples:int ->
  ?complex_cells:bool ->
  Cells.Library.t ->
  Aig.t ->
  (unit, string) Stdlib.result
(** Simulate the mapped gate netlist against the AIG on random input/state
    assignments — a functional check of the pattern covering and phase
    assignment, gate by gate. *)

val pp_report : Format.formatter -> report -> unit
