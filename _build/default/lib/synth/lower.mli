(** RTL → AIG elaboration (bit blasting).

    Every named RTL signal maps to a vector of AIG literals (bit 0 first),
    retrievable from the result — annotations and debugging hang off this
    map. Naming convention for the bit-level objects: input/register bit [i]
    of signal [s] is ["s[i]"]; bit [b] of entry [e] of configuration table
    [t] is ["t[e][b]"].

    Elaboration choices that matter to the experiments:
    - ROM reads become mux trees over the address bits with constant leaves;
      structural hashing folds them, which is exactly the paper's *constant
      propagation and folding* of table logic.
    - Configuration tables become one hold-latch per bit (marked
      [is_config]) plus the same mux tree reading latch outputs: the area
      cost of runtime flexibility.
    - Register enables fold into a data-side mux; reset style stays a latch
      attribute (it selects the flop cell at mapping time, as in Fig. 8).
    - Out-of-range table reads (non-power-of-two depth) produce zero,
      matching {!Rtl.Eval}. *)

type t = {
  aig : Aig.t;
  signals : (string, Aig.lit array) Hashtbl.t;
  design : Rtl.Design.t;
}

val run : Rtl.Design.t -> t

val signal_lits : t -> string -> Aig.lit array
(** @raise Not_found on an unknown signal name. *)
