type report = {
  comb_area : float;
  seq_area : float;
  cell_counts : (string * int) list;
  critical_delay : float;
  num_flops : int;
  config_bits : int;
}

let total r = r.comb_area +. r.seq_area

type pattern =
  | Pxor of Aig.lit * Aig.lit            (* n = XOR(a, b) as literals *)
  | Pmux of Aig.lit * Aig.lit * Aig.lit  (* n = ~mux(s, a, b) *)
  | Pand3 of Aig.lit * Aig.lit * Aig.lit (* n = a & b & c *)
  | Pnor3 of Aig.lit * Aig.lit * Aig.lit (* n = ~a & ~b & ~c, literals given
                                            in positive form *)
  | Paoi of Aig.lit * Aig.lit * Aig.lit  (* n = ~((a & b) | c) *)
  | Poai of Aig.lit * Aig.lit * Aig.lit  (* ~n = ~((a | b) & c) *)

let detect_patterns ~complex_cells g =
  let fanout = Aig.fanout_counts g in
  let patterns : (int, pattern) Hashtbl.t = Hashtbl.create 64 in
  let covered : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let claimable c =
    Aig.kind g c = Aig.And && fanout.(c) = 1 && not (Hashtbl.mem covered c)
    && not (Hashtbl.mem patterns c)
  in
  (* First scan: 3-node XOR / MUX shapes (the biggest win). Top-down so a
     parent claims its children before they claim others. *)
  for n = Aig.num_nodes g - 1 downto 1 do
    if Aig.kind g n = Aig.And && not (Hashtbl.mem covered n) then begin
      let f0, f1 = Aig.fanins g n in
      let x = Aig.node_of_lit f0 and y = Aig.node_of_lit f1 in
      if
        Aig.is_complemented f0 && Aig.is_complemented f1
        && x <> y && claimable x && claimable y
      then begin
        let a0, a1 = Aig.fanins g x and b0, b1 = Aig.fanins g y in
        let pat =
          if (a0 = Aig.not_ b0 && a1 = Aig.not_ b1)
             || (a0 = Aig.not_ b1 && a1 = Aig.not_ b0)
          then Some (Pxor (a0, a1))
          else if a0 = Aig.not_ b0 then Some (Pmux (a0, a1, b1))
          else if a0 = Aig.not_ b1 then Some (Pmux (a0, a1, b0))
          else if a1 = Aig.not_ b0 then Some (Pmux (a1, a0, b1))
          else if a1 = Aig.not_ b1 then Some (Pmux (a1, a0, b0))
          else None
        in
        match pat with
        | Some p ->
          Hashtbl.replace patterns n p;
          Hashtbl.replace covered x ();
          Hashtbl.replace covered y ()
        | None -> ()
      end
    end
  done;
  (* Second scan: 2-node shapes onto the 3-input cells. For n = AND(f, g)
     with a single-fanout AND child x behind f:
       f = x,  x = a & b            -> n = a & b & g          (AND3/NAND3)
       f = ~x, x = a & b            -> n = ~(a & b) & g
                                        = ~((a & b) | ~g)     (AOI21)
       f = ~x, x = ~a & ~b          -> n = (a | b) & g,
                                       ~n = ~((a | b) & g)    (OAI21)
     and when both fanins are complemented non-claimable-pair shapes, the
     NOR3 form n = ~a & ~b & ~c via a nested AND of complemented inputs. *)
  if complex_cells then
    for n = Aig.num_nodes g - 1 downto 1 do
      if
        Aig.kind g n = Aig.And
        && (not (Hashtbl.mem covered n))
        && not (Hashtbl.mem patterns n)
      then begin
        let f0, f1 = Aig.fanins g n in
        let try_child f g_other =
          let x = Aig.node_of_lit f in
          if claimable x then begin
            let a, bb = Aig.fanins g x in
            if not (Aig.is_complemented f) then begin
              (* n = (a & b) & g. NOR3 when everything is complemented
                 (n = ~a' & ~b' & ~g'), else AND3. *)
              if
                Aig.is_complemented a && Aig.is_complemented bb
                && Aig.is_complemented g_other
              then
                Some (x, Pnor3 (Aig.not_ a, Aig.not_ bb, Aig.not_ g_other))
              else Some (x, Pand3 (a, bb, g_other))
            end
            else if Aig.is_complemented a && Aig.is_complemented bb then
              (* x = ~a' & ~b'; n = (a' | b') & g *)
              Some (x, Poai (Aig.not_ a, Aig.not_ bb, g_other))
            else
              (* n = ~(a & b) & g = ~((a & b) | ~g) *)
              Some (x, Paoi (a, bb, Aig.not_ g_other))
          end
          else None
        in
        let chosen =
          match try_child f0 f1 with
          | Some _ as r -> r
          | None -> try_child f1 f0
        in
        match chosen with
        | Some (x, p) ->
          Hashtbl.replace patterns n p;
          Hashtbl.replace covered x ()
        | None -> ()
      end
    done;
  (patterns, covered)

(* One mapped gate: the cell, whether its output is the positive phase of
   the AIG node, and its pins as (source node, wants-positive) in the
   cell's input order. *)
type instance = {
  inst_cell : Cells.Cell.t;
  out_positive : bool;
  pins : (int * bool) list;
}

let run_full ?(complex_cells = true) lib g =
  let patterns, covered = detect_patterns ~complex_cells g in
  let instances : (int, instance) Hashtbl.t = Hashtbl.create 256 in
  (* Pin-level phase needs per node: (pos, neg) pair of bools. *)
  let need_pos = Hashtbl.create 256 and need_neg = Hashtbl.create 256 in
  let need l =
    let n = Aig.node_of_lit l in
    if n <> 0 then
      Hashtbl.replace (if Aig.is_complemented l then need_neg else need_pos) n ()
  in
  let pin_needs n =
    match Hashtbl.find_opt patterns n with
    | Some (Pxor (a, b)) ->
      (* Parity is absorbed by the XOR2/XNOR2 variant: pins take the
         positive value of each input node. *)
      need (Aig.lit_of_node (Aig.node_of_lit a) false);
      need (Aig.lit_of_node (Aig.node_of_lit b) false)
    | Some (Pmux (s, a, b))
    | Some (Pand3 (s, a, b))
    | Some (Pnor3 (s, a, b))
    | Some (Paoi (s, a, b))
    | Some (Poai (s, a, b)) -> need s; need a; need b
    | None ->
      let f0, f1 = Aig.fanins g n in
      if Aig.is_complemented f0 = Aig.is_complemented f1 then begin
        (* NOR2/OR2 (both complemented) and AND2/NAND2 (both plain) take
           positive pins. *)
        need (Aig.lit_of_node (Aig.node_of_lit f0) false);
        need (Aig.lit_of_node (Aig.node_of_lit f1) false)
      end
      else begin
        need f0; need f1
      end
  in
  for n = 1 to Aig.num_nodes g - 1 do
    if Aig.kind g n = Aig.And && not (Hashtbl.mem covered n) then pin_needs n
  done;
  List.iter (fun (_, l) -> need l) (Aig.pos g);
  List.iter (fun n -> need (Aig.latch_next g n)) (Aig.latches g);
  (* Emission. *)
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let comb_area = ref 0.0 in
  let emit name =
    let c = Cells.Library.find lib name in
    comb_area := !comb_area +. c.Cells.Cell.area;
    Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name));
    c
  in
  (* produced.(n) = Some true when the emitted cell outputs the positive
     phase, Some false for negative. PIs and latches produce positive. *)
  let produced : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  let arrival : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let inv = Cells.Library.find lib "INV" in
  let flop_arrival n =
    let _, _, reset, _ = Aig.latch_info g n in
    (Cells.Library.flop lib reset).Cells.Cell.delay
  in
  let pin_arrival source_node want_pos =
    let base = Option.value ~default:0.0 (Hashtbl.find_opt arrival source_node) in
    let prod = Option.value ~default:true (Hashtbl.find_opt produced source_node) in
    if prod = want_pos then base else base +. inv.Cells.Cell.delay
  in
  let wants n = (Hashtbl.mem need_pos n, Hashtbl.mem need_neg n) in
  for n = 1 to Aig.num_nodes g - 1 do
    match Aig.kind g n with
    | Aig.Const -> ()
    | Aig.Pi ->
      Hashtbl.replace produced n true;
      Hashtbl.replace arrival n 0.0
    | Aig.Latch ->
      Hashtbl.replace produced n true;
      Hashtbl.replace arrival n (flop_arrival n)
    | Aig.And ->
      if not (Hashtbl.mem covered n) then begin
        let p, ng_ = wants n in
        let prefer_pos = p || not ng_ in
        let cell, out_pos, pins =
          match Hashtbl.find_opt patterns n with
          | Some (Pxor (a, b)) ->
            let parity = Aig.is_complemented a <> Aig.is_complemented b in
            (* positive n = XOR(pos a, pos b) xor parity *)
            let variant =
              if prefer_pos = parity then "XNOR2" else "XOR2"
            in
            ( emit variant, prefer_pos,
              [ (Aig.node_of_lit a, true); (Aig.node_of_lit b, true) ] )
          | Some (Pmux (s, a, b)) ->
            (* n = ~(s ? a : b); MUX2 pin order is (s=0 branch, s=1 branch,
               select), so [b] rides the first pin. Output = negative
               phase of n. *)
            ( emit "MUX2", false,
              [ (Aig.node_of_lit b, not (Aig.is_complemented b));
                (Aig.node_of_lit a, not (Aig.is_complemented a));
                (Aig.node_of_lit s, not (Aig.is_complemented s)) ] )
          | Some (Pand3 (a, b, c)) ->
            (* NAND3 output = ~(a & b & c) = negative phase. *)
            ( emit "NAND3", false,
              [ (Aig.node_of_lit a, not (Aig.is_complemented a));
                (Aig.node_of_lit b, not (Aig.is_complemented b));
                (Aig.node_of_lit c, not (Aig.is_complemented c)) ] )
          | Some (Pnor3 (a, b, c)) ->
            (* NOR3 output = ~a & ~b & ~c = positive phase. *)
            ( emit "NOR3", true,
              [ (Aig.node_of_lit a, not (Aig.is_complemented a));
                (Aig.node_of_lit b, not (Aig.is_complemented b));
                (Aig.node_of_lit c, not (Aig.is_complemented c)) ] )
          | Some (Paoi (a, b, c)) ->
            (* AOI21 output = ~((a & b) | c) = positive phase of n. *)
            ( emit "AOI21", true,
              [ (Aig.node_of_lit a, not (Aig.is_complemented a));
                (Aig.node_of_lit b, not (Aig.is_complemented b));
                (Aig.node_of_lit c, not (Aig.is_complemented c)) ] )
          | Some (Poai (a, b, c)) ->
            (* OAI21 output = ~((a | b) & c) = negative phase of n. *)
            ( emit "OAI21", false,
              [ (Aig.node_of_lit a, not (Aig.is_complemented a));
                (Aig.node_of_lit b, not (Aig.is_complemented b));
                (Aig.node_of_lit c, not (Aig.is_complemented c)) ] )
          | None ->
            let f0, f1 = Aig.fanins g n in
            let c0 = Aig.is_complemented f0 and c1 = Aig.is_complemented f1 in
            if c0 && c1 then
              (* n = ~a & ~b: NOR2 gives +n, OR2 gives -n, positive pins. *)
              ( emit (if prefer_pos then "NOR2" else "OR2"), prefer_pos,
                [ (Aig.node_of_lit f0, true); (Aig.node_of_lit f1, true) ] )
            else begin
              (* AND-family; complemented pins handled by shared INVs. When
                 both phases are needed, NAND2 + INV beats AND2 + INV. *)
              let prefer_pos = if p && ng_ then false else prefer_pos in
              ( emit (if prefer_pos then "AND2" else "NAND2"), prefer_pos,
                [ (Aig.node_of_lit f0, not c0); (Aig.node_of_lit f1, not c1) ] )
            end
        in
        let arr =
          List.fold_left
            (fun acc (src, want_pos) -> Float.max acc (pin_arrival src want_pos))
            0.0 pins
        in
        Hashtbl.replace produced n out_pos;
        Hashtbl.replace instances n
          { inst_cell = cell; out_positive = out_pos; pins };
        Hashtbl.replace arrival n (arr +. cell.Cells.Cell.delay);
        (* Record which phases the pins actually consume (for INV count). *)
        List.iter
          (fun (src, want_pos) ->
            if src <> 0 then
              Hashtbl.replace (if want_pos then need_pos else need_neg) src ())
          pins
      end
  done;
  (* Shared inverters: one per node phase that is needed but not produced. *)
  for n = 1 to Aig.num_nodes g - 1 do
    if Hashtbl.mem produced n then begin
      let prod = Hashtbl.find produced n in
      let needs_other =
        if prod then Hashtbl.mem need_neg n else Hashtbl.mem need_pos n
      in
      if needs_other then ignore (emit "INV")
    end
  done;
  (* Sequential area. *)
  let seq_area = ref 0.0 in
  let num_flops = ref 0 and config_bits = ref 0 in
  List.iter
    (fun n ->
      let _, _, reset, is_config = Aig.latch_info g n in
      let c = Cells.Library.flop lib reset in
      seq_area := !seq_area +. c.Cells.Cell.area;
      incr num_flops;
      if is_config then incr config_bits;
      Hashtbl.replace counts c.Cells.Cell.cname
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts c.Cells.Cell.cname)))
    (Aig.latches g);
  (* Critical path: PO pins and latch D pins. *)
  let root_arrival l =
    let n = Aig.node_of_lit l in
    if n = 0 then 0.0 else pin_arrival n (not (Aig.is_complemented l))
  in
  let crit = ref 0.0 in
  List.iter (fun (_, l) -> crit := Float.max !crit (root_arrival l)) (Aig.pos g);
  List.iter
    (fun n -> crit := Float.max !crit (root_arrival (Aig.latch_next g n)))
    (Aig.latches g);
  let cell_counts =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
    |> List.sort Stdlib.compare
  in
  ( {
      comb_area = !comb_area;
      seq_area = !seq_area;
      cell_counts;
      critical_delay = !crit;
      num_flops = !num_flops;
      config_bits = !config_bits;
    },
    instances )

let run ?complex_cells lib g = fst (run_full ?complex_cells lib g)

(* The mapped netlist must compute the same functions as the AIG: simulate
   the instances gate by gate against the AIG's own evaluation on random
   input/state assignments. *)
let selfcheck ?(samples = 64) ?complex_cells lib g =
  let _, instances = run_full ?complex_cells lib g in
  let rng = Random.State.make [| 0x6d61; Aig.num_nodes g |] in
  let check_sample () =
    let pi_vals = Hashtbl.create 16 and latch_vals = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace pi_vals n (Random.State.bool rng)) (Aig.pis g);
    List.iter
      (fun n -> Hashtbl.replace latch_vals n (Random.State.bool rng))
      (Aig.latches g);
    let reference =
      Aig.eval_all g
        ~pi:(Hashtbl.find pi_vals)
        ~latch:(Hashtbl.find latch_vals)
    in
    (* Gate-level values, topologically (instance inputs precede outputs). *)
    let node_value = Hashtbl.create 256 in
    List.iter (fun n -> Hashtbl.replace node_value n (Hashtbl.find pi_vals n)) (Aig.pis g);
    List.iter
      (fun n -> Hashtbl.replace node_value n (Hashtbl.find latch_vals n))
      (Aig.latches g);
    let rec failure_at n =
      if n >= Aig.num_nodes g then None
      else
        match Hashtbl.find_opt instances n with
        | None -> failure_at (n + 1)
        | Some inst ->
          let assignment =
            List.fold_left
              (fun (i, acc) (src, want_pos) ->
                let v = Hashtbl.find node_value src in
                let v = if want_pos then v else not v in
                (i + 1, if v then acc lor (1 lsl i) else acc))
              (0, 0) inst.pins
            |> snd
          in
          let out = Cells.Cell.eval_comb inst.inst_cell assignment in
          let v = if inst.out_positive then out else not out in
          Hashtbl.replace node_value n v;
          if v <> reference (Aig.lit_of_node n false) then Some n
          else failure_at (n + 1)
    in
    failure_at 1
  in
  let rec go i =
    if i >= samples then Ok ()
    else
      match check_sample () with
      | None -> go (i + 1)
      | Some n -> Error (Printf.sprintf "mapped gate for node %d diverges" n)
  in
  go 0

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>area: comb %.1f + seq %.1f = %.1f um^2 (%d flops, %d config bits)@,\
     critical path: %.3f ns@,cells:"
    r.comb_area r.seq_area (total r) r.num_flops r.config_bits r.critical_delay;
  List.iter (fun (c, k) -> Format.fprintf fmt " %s:%d" c k) r.cell_counts;
  Format.fprintf fmt "@]"
