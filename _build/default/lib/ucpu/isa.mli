(** The µCPU instruction set and its golden-model interpreter.

    A minimal 8-bit accumulator machine in the lineage the paper cites for
    microprogrammed control (System/360, VAX): 3-bit opcode, 5-bit operand
    address, 32 bytes of program store and 32 bytes of data memory.

    {v
      LDI k  (acc <- k)   ADD a   (acc += mem[a])    JMP a
      LDA a               SUB a   (acc -= mem[a])    JNZ a  (if acc != 0)
      STA a               HLT
    v}

    [LDI 0] doubles as a no-op at reset (the instruction register clears to
    zero). *)

type instruction =
  | Ldi of int
  | Lda of int
  | Sta of int
  | Add of int
  | Sub of int
  | Jmp of int
  | Jnz of int
  | Hlt

val opcode : instruction -> int
val operand : instruction -> int

val encode : instruction -> Bitvec.t
(** 8 bits: opcode in [7:5], operand in [4:0]. *)

val decode : Bitvec.t -> instruction

val assemble : instruction list -> Bitvec.t array
(** Padded with [Ldi 0] to the full 32-entry program store.
    @raise Invalid_argument if longer than 32 or an operand is out of
    range. *)

(** {1 Golden model} *)

type state = {
  pc : int;
  acc : int;
  mem : int array;  (** 32 bytes *)
  halted : bool;
}

val initial : state

val interp_step : program:Bitvec.t array -> state -> state
(** One *instruction* (not one clock). A halted state is a fixpoint. *)

val run : ?max_steps:int -> program:Bitvec.t array -> unit -> state
(** Interpret until [Hlt] or [max_steps] (default 10_000) instructions. *)

val fib_program : int -> Bitvec.t array
(** Compute fib(n) (n ≥ 1, modulo 256) into the accumulator — the standard
    demo workload. *)
