let mem_size = 32

let build ~storage ~program () =
  if Array.length program <> mem_size then
    invalid_arg "Machine.build: program must have 32 entries";
  let b = Rtl.Builder.create "ucpu" in
  (* Architectural registers first: the sequencer dispatches on IR. *)
  let ir = Rtl.Builder.reg_declare b "ir" ~width:8 ~reset:Rtl.Design.Sync_reset in
  let pc = Rtl.Builder.reg_declare b "pc" ~width:5 ~reset:Rtl.Design.Sync_reset in
  let acc = Rtl.Builder.reg_declare b "acc" ~width:8 ~reset:Rtl.Design.Sync_reset in
  let opcode = Rtl.Expr.slice ir ~hi:7 ~lo:5 in
  let ir_addr = Rtl.Expr.slice ir ~hi:4 ~lo:0 in
  (* Control unit. *)
  let seq_design = Core.Microcode.to_rtl ~storage Control.program in
  let seq =
    Rtl.Compose.instantiate b ~name:"seq" seq_design ~inputs:[ ("op", opcode) ]
  in
  let bit name = seq name in
  let ir_ld = bit Control.f_ir_ld in
  let pc_inc = bit Control.f_pc_inc in
  let pc_load = bit Control.f_pc_load in
  let pc_cond = bit Control.f_pc_cond in
  let acc_ld = bit Control.f_acc_ld in
  let acc_op = seq Control.f_acc_op in
  let mem_we = bit Control.f_mem_we in
  (* Program store. *)
  Rtl.Builder.rom b "prog" ~width:8 program;
  let fetched = Rtl.Builder.read_table b "prog" pc in
  (* Data memory: a register file observable as m0..m31. *)
  let mem_cells =
    List.init mem_size (fun i ->
        let enable =
          Rtl.Expr.and_ mem_we (Rtl.Expr.eq_const ir_addr i)
        in
        Rtl.Builder.reg b
          (Printf.sprintf "m%d" i)
          ~reset:Rtl.Design.Sync_reset ~enable ~d:acc)
  in
  let mem_read =
    Rtl.Expr.select ir_addr
      (List.mapi (fun i cell -> (i, cell)) mem_cells)
      ~default:(Rtl.Expr.of_int ~width:8 0)
  in
  (* Datapath. *)
  let acc_nonzero = Rtl.Expr.red_or acc in
  let pc_load_eff =
    Rtl.Expr.and_ pc_load
      (Rtl.Expr.or_ (Rtl.Expr.not_ pc_cond) acc_nonzero)
  in
  let pc_next =
    Rtl.Expr.mux pc_load_eff ir_addr
      (Rtl.Expr.add pc (Rtl.Expr.of_int ~width:5 1))
  in
  Rtl.Builder.reg_connect b "pc"
    ~enable:(Rtl.Expr.or_ pc_inc pc_load_eff)
    pc_next;
  Rtl.Builder.reg_connect b "ir" ~enable:ir_ld fetched;
  let alu =
    Rtl.Expr.select acc_op
      [
        (Control.alu_load, mem_read);
        (Control.alu_add, Rtl.Expr.add acc mem_read);
        (Control.alu_sub, Rtl.Expr.sub acc mem_read);
        (Control.alu_and, Rtl.Expr.and_ acc mem_read);
        (Control.alu_imm, Rtl.Expr.zero_extend ir_addr 8);
      ]
      ~default:mem_read
  in
  Rtl.Builder.reg_connect b "acc" ~enable:acc_ld alu;
  Rtl.Builder.output b "acc" acc;
  Rtl.Builder.output b "pc" pc;
  Rtl.Builder.output b "halted"
    (Rtl.Expr.eq_const opcode (Isa.opcode Isa.Hlt));
  Rtl.Builder.finish b

let full ~program = build ~storage:`Config ~program ()

let control_bindings ?(patched = false) () =
  let p = if patched then Control.patched_program else Control.program in
  List.map
    (fun (name, contents) -> ("seq_" ^ name, contents))
    (Core.Microcode.config_bindings p)

let specialized ?(patched = false) ~program () =
  Synth.Partial_eval.bind_tables (full ~program) (control_bindings ~patched ())

let run_rtl ?(max_cycles = 2000) ?config design =
  let st = Rtl.Eval.create ?config design in
  let rec go cycle =
    if cycle >= max_cycles then (st, cycle)
    else if Bitvec.reduce_or (Rtl.Eval.peek st "halted") then (st, cycle)
    else begin
      Rtl.Eval.step st;
      go (cycle + 1)
    end
  in
  go 0
