(** The µCPU top level: microcoded control unit + accumulator datapath.

    Structure: the {!Control} sequencer (flexible configuration memories or
    bound ROMs), an 8-bit accumulator with a 4-function ALU, a 5-bit program
    counter, a 32-byte register-file data memory, and a 32-byte program
    store baked in as a ROM. Ports: no inputs (the machine free-runs its
    program); outputs [acc] (8), [pc] (5), [halted] (1).

    Data-memory registers are named ["m0" … "m31"], so tests can observe
    memory with {!Rtl.Eval.peek}. *)

val full : program:Bitvec.t array -> Rtl.Design.t
(** Control store and dispatch table as configuration memories. *)

val control_bindings :
  ?patched:bool -> unit -> (string * Bitvec.t array) list
(** Microcode contents (composed names) for partial evaluation of {!full};
    [patched] selects {!Control.patched_program}. *)

val specialized : ?patched:bool -> program:Bitvec.t array -> unit -> Rtl.Design.t
(** {!full} with the control store bound — what the generator tapes out
    when the ISA is frozen. *)

val run_rtl :
  ?max_cycles:int ->
  ?config:(string * Bitvec.t array) list ->
  Rtl.Design.t ->
  Rtl.Eval.state * int
(** Simulate until [halted] (or [max_cycles], default 2000); returns the
    evaluator (for peeking at [acc]/[pc]/["m<i>"]) and the cycle count.
    Pass {!control_bindings} as [config] when running the flexible
    design. *)
