let f_ir_ld = "ir_ld"
let f_pc_inc = "pc_inc"
let f_pc_load = "pc_load"
let f_pc_cond = "pc_cond"
let f_acc_ld = "acc_ld"
let f_acc_op = "acc_op"
let f_mem_we = "mem_we"

let alu_load = 0
let alu_add = 1
let alu_sub = 2
let alu_and = 3
let alu_imm = 4

let field fname fwidth = { Core.Microcode.fname; fwidth; onehot = false }

let fields =
  [
    field f_ir_ld 1; field f_pc_inc 1; field f_pc_load 1; field f_pc_cond 1;
    field f_acc_ld 1; field f_acc_op 3; field f_mem_we 1;
  ]

open Core.Ctrl_spec

let fetch = Emit [ (f_ir_ld, 1); (f_pc_inc, 1) ]

let handler_with work = Seq [ work; fetch; Done ]

let spec ~name ~sub_op =
  {
    name;
    fields;
    opcode_bits = 3;
    handlers =
      [
        (Isa.opcode (Isa.Ldi 0),
         handler_with (Emit [ (f_acc_ld, 1); (f_acc_op, alu_imm) ]));
        (Isa.opcode (Isa.Lda 0),
         handler_with (Emit [ (f_acc_ld, 1); (f_acc_op, alu_load) ]));
        (Isa.opcode (Isa.Sta 0), handler_with (Emit [ (f_mem_we, 1) ]));
        (Isa.opcode (Isa.Add 0),
         handler_with (Emit [ (f_acc_ld, 1); (f_acc_op, alu_add) ]));
        (Isa.opcode (Isa.Sub 0),
         handler_with (Emit [ (f_acc_ld, 1); (f_acc_op, sub_op) ]));
        (Isa.opcode (Isa.Jmp 0), handler_with (Emit [ (f_pc_load, 1) ]));
        (Isa.opcode (Isa.Jnz 0),
         handler_with (Emit [ (f_pc_load, 1); (f_pc_cond, 1) ]));
        (* HLT: spin on the dispatch point with nothing asserted. *)
        (Isa.opcode Isa.Hlt, Done);
      ];
  }

let program = compile (spec ~name:"uctl" ~sub_op:alu_sub)

let patched_program = compile (spec ~name:"uctl" ~sub_op:alu_and)
