(** The µCPU control store: a microprogram compiled from a high-level spec.

    Control flow per instruction: the dispatch microinstruction indexes the
    dispatch table with the opcode bits of the instruction register; each
    handler asserts its datapath fields for one cycle, then executes the
    fetch microinstruction (load IR, bump PC) and jumps back to dispatch.
    Instructions therefore take two or three clocks.

    The paper's "facilitates patches late in the design cycle" claim is
    demonstrated by {!patched_program}: the same hardware, with SUB's
    handler re-pointed at the ALU's AND function — a pure change of bits. *)

val fields : Core.Microcode.field list

(** Field names (1 bit unless noted). *)

val f_ir_ld : string

val f_pc_inc : string

val f_pc_load : string

val f_pc_cond : string
(** Make [pc_load] conditional on acc ≠ 0. *)

val f_acc_ld : string

val f_acc_op : string
(** 3 bits: 0 load, 1 add, 2 sub, 3 and, 4 load-immediate. *)

val f_mem_we : string

val alu_load : int
val alu_add : int
val alu_sub : int
val alu_and : int
val alu_imm : int

val program : Core.Microcode.program
(** The standard control store. *)

val patched_program : Core.Microcode.program
(** Identical except SUB executes an AND — the late-patch demonstration. *)
