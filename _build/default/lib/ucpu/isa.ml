type instruction =
  | Ldi of int
  | Lda of int
  | Sta of int
  | Add of int
  | Sub of int
  | Jmp of int
  | Jnz of int
  | Hlt

let opcode = function
  | Ldi _ -> 0
  | Lda _ -> 1
  | Sta _ -> 2
  | Add _ -> 3
  | Sub _ -> 4
  | Jmp _ -> 5
  | Jnz _ -> 6
  | Hlt -> 7

let operand = function
  | Hlt -> 0
  | Ldi a | Lda a | Sta a | Add a | Sub a | Jmp a | Jnz a -> a

let encode i =
  let a = operand i in
  if a < 0 || a > 31 then invalid_arg "Isa.encode: operand out of range";
  Bitvec.of_int ~width:8 ((opcode i lsl 5) lor a)

let decode v =
  let w = Bitvec.to_int v in
  let a = w land 31 in
  match w lsr 5 with
  | 0 -> Ldi a
  | 1 -> Lda a
  | 2 -> Sta a
  | 3 -> Add a
  | 4 -> Sub a
  | 5 -> Jmp a
  | 6 -> Jnz a
  | _ -> Hlt

let assemble instrs =
  if List.length instrs > 32 then invalid_arg "Isa.assemble: program too long";
  Array.init 32 (fun i ->
      match List.nth_opt instrs i with
      | Some instr -> encode instr
      | None -> encode (Ldi 0))

type state = {
  pc : int;
  acc : int;
  mem : int array;
  halted : bool;
}

let initial = { pc = 0; acc = 0; mem = Array.make 32 0; halted = false }

let interp_step ~program st =
  if st.halted then st
  else begin
    let instr = decode program.(st.pc) in
    let next_pc = (st.pc + 1) land 31 in
    match instr with
    | Ldi a -> { st with pc = next_pc; acc = a }
    | Lda a -> { st with pc = next_pc; acc = st.mem.(a) }
    | Sta a ->
      let mem = Array.copy st.mem in
      mem.(a) <- st.acc;
      { st with pc = next_pc; mem }
    | Add a -> { st with pc = next_pc; acc = (st.acc + st.mem.(a)) land 255 }
    | Sub a -> { st with pc = next_pc; acc = (st.acc - st.mem.(a)) land 255 }
    | Jmp a -> { st with pc = a }
    | Jnz a -> { st with pc = (if st.acc <> 0 then a else next_pc) }
    | Hlt -> { st with halted = true }
  end

let run ?(max_steps = 10_000) ~program () =
  let rec go st steps =
    if st.halted || steps >= max_steps then st
    else go (interp_step ~program st) (steps + 1)
  in
  go initial 0

(* The constant 1 lives in m4; patch the bootstrap to write it. *)
let fib_program n =
  if n < 1 || n > 31 then invalid_arg "Isa.fib_program";
  assemble
    [
      Ldi 0; Sta 0;        (* 0,1: a = 0 *)
      Ldi 1; Sta 1;        (* 2,3: b = 1 *)
      Sta 4;               (* 4:   one = 1 *)
      Ldi n; Sta 2;        (* 5,6: n *)
      (* loop head = 7 *)
      Lda 0; Add 1; Sta 3; (* 7-9: t = a + b *)
      Lda 1; Sta 0;        (* 10,11: a = b *)
      Lda 3; Sta 1;        (* 12,13: b = t *)
      Lda 2; Sub 4; Sta 2; (* 14-16: n -= 1 *)
      Jnz 7;               (* 17 *)
      Lda 0; Hlt;          (* 18,19 *)
    ]
