lib/ucpu/machine.ml: Array Bitvec Control Core Isa List Printf Rtl Synth
