lib/ucpu/control.ml: Core Isa
