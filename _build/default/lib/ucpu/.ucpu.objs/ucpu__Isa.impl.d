lib/ucpu/isa.ml: Array Bitvec List
