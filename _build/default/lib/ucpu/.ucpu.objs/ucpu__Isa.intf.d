lib/ucpu/isa.mli: Bitvec
