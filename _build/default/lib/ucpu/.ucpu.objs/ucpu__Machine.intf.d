lib/ucpu/machine.mli: Bitvec Rtl
