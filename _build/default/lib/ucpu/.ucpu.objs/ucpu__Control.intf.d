lib/ucpu/control.mli: Core
