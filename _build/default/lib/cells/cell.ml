type func =
  | Comb of { arity : int; table : int }
  | Flop of Rtl.Design.reset_kind

type t = {
  cname : string;
  func : func;
  area : float;
  delay : float;
}

let make_comb cname ~arity ~table ~area ~delay =
  if arity < 1 || arity > 4 then invalid_arg "Cell.make_comb: arity out of range";
  let entries = 1 lsl arity in
  if table lsr entries <> 0 then invalid_arg "Cell.make_comb: table too wide";
  { cname; func = Comb { arity; table }; area; delay }

let make_flop cname ~reset ~area ~delay =
  { cname; func = Flop reset; area; delay }

let arity c =
  match c.func with
  | Comb { arity; _ } -> arity
  | Flop _ -> 1

let eval_comb c assignment =
  match c.func with
  | Comb { arity; table } ->
    if assignment < 0 || assignment >= 1 lsl arity then
      invalid_arg "Cell.eval_comb: assignment out of range";
    table lsr assignment land 1 = 1
  | Flop _ -> invalid_arg "Cell.eval_comb: sequential cell"

let is_flop c = match c.func with Flop _ -> true | Comb _ -> false

let pp fmt c =
  Format.fprintf fmt "%s (area %.2f, delay %.3f)" c.cname c.area c.delay
