lib/cells/liberty.ml: Buffer Cell Char Format Fun In_channel Library List Printf Rtl String
