lib/cells/cell.ml: Format Rtl
