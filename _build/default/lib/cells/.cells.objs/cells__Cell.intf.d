lib/cells/cell.mli: Format Rtl
