lib/cells/library.ml: Cell Format List Rtl
