lib/cells/liberty.mli: Library
