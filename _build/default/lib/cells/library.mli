(** Cell libraries and the built-in synthetic 90nm library. *)

type t = { lib_name : string; cells : Cell.t list }

val vt90 : t
(** The library every experiment uses: inverter, 2/3-input NAND/NOR, AND/OR,
    XOR/XNOR, MUX, AOI21/OAI21, and D flops for the three reset styles.
    Areas/delays are synthetic but sized like a TSMC-90 standard-cell
    library, so absolute numbers land in the same decade as the paper's. *)

val find : t -> string -> Cell.t
(** @raise Not_found *)

val flop : t -> Rtl.Design.reset_kind -> Cell.t
(** The flip-flop cell for a reset style. *)

val comb_cells : t -> Cell.t list

val pp : Format.formatter -> t -> unit
