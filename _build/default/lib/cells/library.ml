type t = { lib_name : string; cells : Cell.t list }

let vt90 =
  let c = Cell.make_comb and f = Cell.make_flop in
  {
    lib_name = "vt90";
    cells =
      [
        c "INV" ~arity:1 ~table:0b01 ~area:2.82 ~delay:0.020;
        c "NAND2" ~arity:2 ~table:0b0111 ~area:3.76 ~delay:0.030;
        c "NOR2" ~arity:2 ~table:0b0001 ~area:3.76 ~delay:0.035;
        c "AND2" ~arity:2 ~table:0b1000 ~area:4.70 ~delay:0.045;
        c "OR2" ~arity:2 ~table:0b1110 ~area:4.70 ~delay:0.050;
        c "XOR2" ~arity:2 ~table:0b0110 ~area:7.52 ~delay:0.060;
        c "XNOR2" ~arity:2 ~table:0b1001 ~area:7.52 ~delay:0.060;
        (* inputs: a (sel=0 branch), b (sel=1 branch), s *)
        c "MUX2" ~arity:3 ~table:0b11001010 ~area:8.46 ~delay:0.055;
        c "AOI21" ~arity:3 ~table:0b00000111 ~area:5.64 ~delay:0.040;
        c "OAI21" ~arity:3 ~table:0b00011111 ~area:5.64 ~delay:0.040;
        c "NAND3" ~arity:3 ~table:0b01111111 ~area:4.70 ~delay:0.040;
        c "NOR3" ~arity:3 ~table:0b00000001 ~area:4.70 ~delay:0.050;
        f "DFF" ~reset:Rtl.Design.No_reset ~area:20.68 ~delay:0.150;
        f "SDFF" ~reset:Rtl.Design.Sync_reset ~area:23.50 ~delay:0.160;
        f "ADFF" ~reset:Rtl.Design.Async_reset ~area:26.32 ~delay:0.170;
      ];
  }

let find t name = List.find (fun (c : Cell.t) -> c.cname = name) t.cells

let flop t reset =
  List.find
    (fun (c : Cell.t) ->
      match c.func with
      | Cell.Flop r -> r = reset
      | Cell.Comb _ -> false)
    t.cells

let comb_cells t = List.filter (fun c -> not (Cell.is_flop c)) t.cells

let pp fmt t =
  Format.fprintf fmt "@[<v>library %s@," t.lib_name;
  List.iter (fun c -> Format.fprintf fmt "  %a@," Cell.pp c) t.cells;
  Format.fprintf fmt "@]"
