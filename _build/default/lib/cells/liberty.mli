(** A miniature Liberty-style cell-library reader.

    Real flows take the cell library as data (a [.lib] file), not code;
    this reader accepts a small declarative dialect so users can swap the
    synthesis library without recompiling:

    {v
    library (my90) {
      cell (NAND2) { function : "!(A*B)"; area : 3.76; delay : 0.030; }
      cell (DFF)   { flop : none;  area : 20.68; delay : 0.150; }
      cell (SDFF)  { flop : sync;  area : 23.50; delay : 0.160; }
      cell (ADFF)  { flop : async; area : 26.32; delay : 0.170; }
    }
    v}

    Combinational functions use [!], [*], [+], [^] and parentheses over
    input pins named [A], [B], [C], [D] (pin order = alphabetical); the
    truth table is derived by evaluation. The mapper requires at least INV,
    NAND2/AND2, NOR2/OR2, XOR2/XNOR2, MUX2 and the three flop kinds; use
    {!check_mappable} before handing a parsed library to the flow. *)

exception Parse_error of int * string

val parse : string -> Library.t
(** @raise Parse_error with a line number on malformed input. *)

val of_file : string -> Library.t

val print : Library.t -> string
(** Render a library back to the dialect ([parse (print l)] gives an
    equivalent library). *)

val check_mappable : Library.t -> (unit, string) result
(** Does the library contain every cell name the technology mapper can
    emit? *)
