exception Parse_error of int * string

let fail line fmt = Format.kasprintf (fun m -> raise (Parse_error (line, m))) fmt

(* ------------------------------------------------------------ tokenizer *)

type token =
  | Ident of string
  | Str of string
  | Num of float
  | Punct of char

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let line = ref 1 in
  let rec go i =
    if i >= n then ()
    else
      match text.[i] with
      | '\n' -> incr line; go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '(' | ')' | '{' | '}' | ':' | ';' ->
        tokens := (!line, Punct text.[i]) :: !tokens;
        go (i + 1)
      | '"' ->
        let rec close j =
          if j >= n then fail !line "unterminated string"
          else if text.[j] = '"' then j
          else close (j + 1)
        in
        let j = close (i + 1) in
        tokens := (!line, Str (String.sub text (i + 1) (j - i - 1))) :: !tokens;
        go (j + 1)
      | c when (c >= '0' && c <= '9') || c = '.' || c = '-' ->
        let rec num_end j =
          if j < n
             && ((text.[j] >= '0' && text.[j] <= '9') || text.[j] = '.'
                || text.[j] = '-')
          then num_end (j + 1)
          else j
        in
        let j = num_end i in
        let s = String.sub text i (j - i) in
        (match float_of_string_opt s with
         | Some v -> tokens := (!line, Num v) :: !tokens
         | None -> fail !line "bad number %s" s);
        go j
      | c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' ->
        let rec ident_end j =
          if j < n
             && ((text.[j] >= 'a' && text.[j] <= 'z')
                || (text.[j] >= 'A' && text.[j] <= 'Z')
                || (text.[j] >= '0' && text.[j] <= '9')
                || text.[j] = '_')
          then ident_end (j + 1)
          else j
        in
        let j = ident_end i in
        tokens := (!line, Ident (String.sub text i (j - i))) :: !tokens;
        go j
      | c -> fail !line "unexpected character %c" c
  in
  go 0;
  List.rev !tokens

(* ----------------------------------------------- boolean function parser *)

(* Pins are A..D; precedence (tightest first): ! , ^ , * , + . *)
let parse_function line text =
  let n = String.length text in
  let pins = ref 0 in
  let pin_index c =
    let i = Char.code c - Char.code 'A' in
    if i < 0 || i > 3 then fail line "bad pin %c in function %s" c text;
    if i + 1 > !pins then pins := i + 1;
    i
  in
  let rec skip i = if i < n && text.[i] = ' ' then skip (i + 1) else i in
  (* Each parser returns (evaluator, next index). *)
  let rec p_or i =
    let a, i = p_and i in
    let i = skip i in
    if i < n && text.[i] = '+' then begin
      let b, j = p_or (i + 1) in
      ((fun env -> a env || b env), j)
    end
    else (a, i)
  and p_and i =
    let a, i = p_xor i in
    let i = skip i in
    if i < n && text.[i] = '*' then begin
      let b, j = p_and (i + 1) in
      ((fun env -> a env && b env), j)
    end
    else (a, i)
  and p_xor i =
    let a, i = p_unary i in
    let i = skip i in
    if i < n && text.[i] = '^' then begin
      let b, j = p_xor (i + 1) in
      ((fun env -> a env <> b env), j)
    end
    else (a, i)
  and p_unary i =
    let i = skip i in
    if i >= n then fail line "truncated function %s" text
    else if text.[i] = '!' then begin
      let a, j = p_unary (i + 1) in
      ((fun env -> not (a env)), j)
    end
    else if text.[i] = '(' then begin
      let a, j = p_or (i + 1) in
      let j = skip j in
      if j < n && text.[j] = ')' then (a, j + 1)
      else fail line "missing ')' in function %s" text
    end
    else begin
      let idx = pin_index text.[i] in
      ((fun env -> env idx), i + 1)
    end
  in
  let f, i = p_or 0 in
  if skip i <> n then fail line "trailing characters in function %s" text;
  let arity = max 1 !pins in
  let table = ref 0 in
  for assignment = 0 to (1 lsl arity) - 1 do
    if f (fun pin -> assignment lsr pin land 1 = 1) then
      table := !table lor (1 lsl assignment)
  done;
  (arity, !table)

(* --------------------------------------------------------------- parser *)

let parse text =
  let tokens = ref (tokenize text) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let next err =
    match !tokens with
    | [] -> fail 0 "unexpected end of file: expected %s" err
    | t :: rest ->
      tokens := rest;
      t
  in
  let expect_punct c =
    match next (Printf.sprintf "'%c'" c) with
    | _, Punct p when p = c -> ()
    | line, _ -> fail line "expected '%c'" c
  in
  let expect_ident name =
    match next name with
    | _, Ident i when i = name -> ()
    | line, _ -> fail line "expected %s" name
  in
  let ident err =
    match next err with
    | _, Ident i -> i
    | line, _ -> fail line "expected identifier (%s)" err
  in
  expect_ident "library";
  expect_punct '(';
  let lib_name = ident "library name" in
  expect_punct ')';
  expect_punct '{';
  let cells = ref [] in
  let rec parse_cells () =
    match peek () with
    | Some (_, Punct '}') ->
      tokens := List.tl !tokens
    | Some (_, Ident "cell") ->
      tokens := List.tl !tokens;
      expect_punct '(';
      let cname = ident "cell name" in
      expect_punct ')';
      expect_punct '{';
      let func = ref None and flop = ref None in
      let area = ref None and delay = ref None in
      let rec attrs () =
        match next "attribute or '}'" with
        | _, Punct '}' -> ()
        | _line, Ident key ->
          expect_punct ':';
          (match key, next "attribute value" with
           | "function", (l, Str s) -> func := Some (parse_function l s)
           | "flop", (_, Ident "none") -> flop := Some Rtl.Design.No_reset
           | "flop", (_, Ident "sync") -> flop := Some Rtl.Design.Sync_reset
           | "flop", (_, Ident "async") -> flop := Some Rtl.Design.Async_reset
           | "area", (_, Num v) -> area := Some v
           | "delay", (_, Num v) -> delay := Some v
           | _, (l, _) -> fail l "bad attribute %s" key);
          expect_punct ';';
          attrs ()
        | line, _ -> fail line "expected attribute"
      in
      attrs ();
      let line = 0 in
      let area = match !area with Some v -> v | None -> fail line "cell %s: missing area" cname in
      let delay = match !delay with Some v -> v | None -> fail line "cell %s: missing delay" cname in
      let cell =
        match !func, !flop with
        | Some (arity, table), None ->
          Cell.make_comb cname ~arity ~table ~area ~delay
        | None, Some reset -> Cell.make_flop cname ~reset ~area ~delay
        | Some _, Some _ -> fail line "cell %s: both function and flop" cname
        | None, None -> fail line "cell %s: needs function or flop" cname
      in
      cells := cell :: !cells;
      parse_cells ()
    | Some (line, _) -> fail line "expected cell or '}'"
    | None -> fail 0 "unexpected end of file in library body"
  in
  parse_cells ();
  { Library.lib_name; cells = List.rev !cells }

let of_file path = parse (In_channel.with_open_text path In_channel.input_all)

(* -------------------------------------------------------------- printing *)

let function_of_table arity table =
  (* Canonical SOP over pins A..; empty ON-set prints as a contradiction. *)
  let pin i = String.make 1 (Char.chr (Char.code 'A' + i)) in
  let minterm m =
    String.concat "*"
      (List.init arity (fun i ->
           if m lsr i land 1 = 1 then pin i else "!" ^ pin i))
  in
  let ons =
    List.filter (fun m -> table lsr m land 1 = 1)
      (List.init (1 lsl arity) Fun.id)
  in
  match ons with
  | [] -> Printf.sprintf "%s*!%s" (pin 0) (pin 0)
  | _ -> String.concat "+" (List.map minterm ons)

let print (lib : Library.t) =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "library (%s) {\n" lib.Library.lib_name;
  List.iter
    (fun (c : Cell.t) ->
      match c.func with
      | Cell.Comb { arity; table } ->
        out "  cell (%s) { function : \"%s\"; area : %g; delay : %g; }\n"
          c.cname (function_of_table arity table) c.area c.delay
      | Cell.Flop reset ->
        let r =
          match reset with
          | Rtl.Design.No_reset -> "none"
          | Rtl.Design.Sync_reset -> "sync"
          | Rtl.Design.Async_reset -> "async"
        in
        out "  cell (%s) { flop : %s; area : %g; delay : %g; }\n" c.cname r
          c.area c.delay)
    lib.Library.cells;
  out "}\n";
  Buffer.contents buf

let check_mappable lib =
  let missing = ref [] in
  List.iter
    (fun name ->
      match Library.find lib name with
      | _ -> ()
      | exception Not_found -> missing := name :: !missing)
    [ "INV"; "NAND2"; "NOR2"; "AND2"; "OR2"; "XOR2"; "XNOR2"; "MUX2";
      "NAND3"; "NOR3"; "AOI21"; "OAI21" ];
  List.iter
    (fun reset ->
      match Library.flop lib reset with
      | _ -> ()
      | exception Not_found -> missing := "a flop cell" :: !missing)
    [ Rtl.Design.No_reset; Rtl.Design.Sync_reset; Rtl.Design.Async_reset ];
  match !missing with
  | [] -> Ok ()
  | m -> Error ("missing cells: " ^ String.concat ", " (List.rev m))
