(** Standard cells.

    A combinational cell computes a boolean function of up to 4 inputs,
    described by a truth-table word (bit [i] of [table] is the output for
    input assignment [i], input 0 being the least significant address bit).
    Sequential cells are D flip-flops distinguished by reset style.

    Areas are in µm², delays in ns — synthetic values in the ballpark of a
    90nm standard-cell library, so reports read like the paper's. *)

type func =
  | Comb of { arity : int; table : int }
  | Flop of Rtl.Design.reset_kind

type t = {
  cname : string;
  func : func;
  area : float;
  delay : float;  (** pin-to-pin for comb cells; clk-to-q for flops *)
}

val make_comb : string -> arity:int -> table:int -> area:float -> delay:float -> t
(** @raise Invalid_argument if arity is outside 1..4 or the table has bits
    beyond [2^2^arity]. *)

val make_flop : string -> reset:Rtl.Design.reset_kind -> area:float -> delay:float -> t

val arity : t -> int
(** Number of data inputs (flops: 1). *)

val eval_comb : t -> int -> bool
(** [eval_comb c assignment] — output for the given input assignment.
    @raise Invalid_argument on a flop. *)

val is_flop : t -> bool

val pp : Format.formatter -> t -> unit
