type t = { name : string; width : int }

let make name width =
  if width <= 0 then invalid_arg "Signal.make: width must be positive";
  if name = "" then invalid_arg "Signal.make: empty name";
  { name; width }

let equal a b = a.name = b.name && a.width = b.width
let compare = Stdlib.compare
let pp fmt s = Format.fprintf fmt "%s[%d]" s.name s.width
