type pending_reg = {
  mutable preg : Design.reg;
  mutable connected : bool;
}

type t = {
  name : string;
  mutable inputs : Signal.t list;
  mutable outputs : (Signal.t * Expr.t) list;
  mutable nets : (Signal.t * Expr.t) list;
  regs : (string, pending_reg) Hashtbl.t;
  mutable reg_order : string list;
  mutable tables : Design.table list;
  mutable annots : Annot.t list;
}

let create name =
  { name; inputs = []; outputs = []; nets = []; regs = Hashtbl.create 16;
    reg_order = []; tables = []; annots = [] }

let input b name width =
  let s = Signal.make name width in
  b.inputs <- b.inputs @ [ s ];
  Expr.signal s

let net b name e =
  let s = Signal.make name (Expr.width e) in
  b.nets <- b.nets @ [ (s, e) ];
  Expr.signal s

let output b name e =
  let s = Signal.make name (Expr.width e) in
  b.outputs <- b.outputs @ [ (s, e) ]

let reg_declare b ?(reset = Design.Sync_reset) ?init ?(is_config = false) name
    ~width =
  if Hashtbl.mem b.regs name then
    invalid_arg ("Builder.reg_declare: duplicate register " ^ name);
  let q = Signal.make name width in
  let init = Option.value init ~default:(Bitvec.zero width) in
  let preg =
    { Design.q; d = Expr.signal q (* placeholder: hold *) ; reset; init;
      enable = None; is_config = false }
  in
  let preg = { preg with is_config } in
  Hashtbl.add b.regs name { preg; connected = false };
  b.reg_order <- b.reg_order @ [ name ];
  Expr.signal q

let reg_connect b ?enable name d =
  match Hashtbl.find_opt b.regs name with
  | None -> invalid_arg ("Builder.reg_connect: unknown register " ^ name)
  | Some p ->
    if p.connected then
      invalid_arg ("Builder.reg_connect: register already connected: " ^ name);
    p.preg <- { p.preg with d; enable };
    p.connected <- true

let reg b ?reset ?init ?enable name ~d =
  let q = reg_declare b ?reset ?init name ~width:(Expr.width d) in
  reg_connect b ?enable name d;
  q

let add_table b table =
  if List.exists (fun (t : Design.table) -> t.tname = table.Design.tname) b.tables
  then invalid_arg ("Builder: duplicate table " ^ table.Design.tname);
  b.tables <- b.tables @ [ table ]

let rom b name ~width contents =
  add_table b
    { Design.tname = name; twidth = width; depth = Array.length contents;
      storage = Design.Rom contents }

let config_table b name ~width ~depth =
  add_table b { Design.tname = name; twidth = width; depth; storage = Design.Config }

let read_table b name addr =
  match List.find_opt (fun (t : Design.table) -> t.tname = name) b.tables with
  | None -> invalid_arg ("Builder.read_table: unknown table " ^ name)
  | Some t -> Expr.table_read ~table:name ~width:t.twidth ~addr

let annotate b a = b.annots <- b.annots @ [ a ]

let finish b =
  let regs =
    List.map
      (fun name ->
        let p = Hashtbl.find b.regs name in
        if not p.connected then
          invalid_arg ("Builder.finish: register never connected: " ^ name);
        p.preg)
      b.reg_order
  in
  let d =
    { Design.name = b.name; inputs = b.inputs; outputs = b.outputs;
      nets = b.nets; regs; tables = b.tables; annots = b.annots }
  in
  Design.validate d;
  d
