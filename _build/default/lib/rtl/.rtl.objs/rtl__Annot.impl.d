lib/rtl/annot.ml: Bitvec Format List
