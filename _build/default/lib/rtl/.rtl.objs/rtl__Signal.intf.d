lib/rtl/signal.mli: Format
