lib/rtl/compose.ml: Annot Builder Design Expr List Option Printf Signal
