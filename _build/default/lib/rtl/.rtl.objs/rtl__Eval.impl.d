lib/rtl/eval.ml: Array Bitvec Design Expr Hashtbl List Map Signal String
