lib/rtl/design.mli: Annot Bitvec Expr Signal
