lib/rtl/design.ml: Annot Array Bitvec Expr Format Hashtbl List Option Printf Signal Stdlib String
