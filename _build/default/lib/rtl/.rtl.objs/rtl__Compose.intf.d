lib/rtl/compose.mli: Builder Design Expr
