lib/rtl/builder.mli: Annot Bitvec Design Expr
