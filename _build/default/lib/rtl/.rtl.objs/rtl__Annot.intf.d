lib/rtl/annot.mli: Bitvec Format
