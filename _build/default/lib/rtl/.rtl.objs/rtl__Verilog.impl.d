lib/rtl/verilog.ml: Annot Array Bitvec Design Expr Format List Printf Signal String
