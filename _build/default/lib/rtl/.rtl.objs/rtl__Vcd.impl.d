lib/rtl/vcd.ml: Bitvec Buffer Char Design Eval Hashtbl List Out_channel Printf Signal String
