lib/rtl/serialize.mli: Design
