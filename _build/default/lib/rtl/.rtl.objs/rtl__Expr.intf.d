lib/rtl/expr.mli: Bitvec Format Signal
