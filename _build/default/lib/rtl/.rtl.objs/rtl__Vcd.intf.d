lib/rtl/vcd.mli: Bitvec Design
