lib/rtl/builder.ml: Annot Array Bitvec Design Expr Hashtbl List Option Signal
