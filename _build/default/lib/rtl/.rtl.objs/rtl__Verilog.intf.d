lib/rtl/verilog.mli: Design Format
