lib/rtl/eval.mli: Bitvec Design
