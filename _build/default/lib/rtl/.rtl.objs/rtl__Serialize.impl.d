lib/rtl/serialize.ml: Annot Array Bitvec Design Expr Format In_channel List Out_channel Signal String
