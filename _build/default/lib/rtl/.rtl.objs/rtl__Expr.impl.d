lib/rtl/expr.ml: Bitvec Format List Printf Signal
