lib/rtl/signal.ml: Format Stdlib
