(** Designs as data: S-expression serialization of {!Design.t}.

    A chip generator's intermediate artifacts should be inspectable and
    diffable; this module gives every design a stable textual form that
    reads back exactly ([read (write d)] reproduces the design up to
    expression structure — checked by roundtrip property tests).

    The concrete syntax, loosely:
    {v
    (design (name counter)
      (inputs (en 1))
      (regs (q 3 (reset sync) (init 3'b000) (enable (sig en 1))
               (add (sig q 3) (const 3'b001))))
      (outputs (count 3 (sig q 3))))
    v} *)

val write : Design.t -> string

val to_file : string -> Design.t -> unit

exception Parse_error of string

val read : string -> Design.t
(** Parses and {!Design.validate}s.
    @raise Parse_error on syntax errors, [Invalid_argument] on designs that
    do not validate. *)

val of_file : string -> Design.t
