(** Imperative design builder (a tiny Chisel-like construction API).

    Typical use:
    {[
      let b = Builder.create "blinker" in
      let tick = Builder.input b "tick" 1 in
      let q = Builder.reg_declare b "led" 1 ~reset:Sync_reset in
      Builder.reg_connect b "led" Expr.(mux tick (not_ q) q);
      Builder.output b "out" q;
      let design = Builder.finish b
    ]} *)

type t

val create : string -> t

val input : t -> string -> int -> Expr.t
(** Declare an input port; returns the signal expression. *)

val net : t -> string -> Expr.t -> Expr.t
(** Declare a named internal wire with the given driver; returns the signal
    expression (useful as an annotation anchor or a fanout point). *)

val output : t -> string -> Expr.t -> unit

val reg_declare :
  t ->
  ?reset:Design.reset_kind ->
  ?init:Bitvec.t ->
  ?is_config:bool ->
  string ->
  width:int ->
  Expr.t
(** Declare a register and get its [q] before the [d] is known (for feedback
    paths). [reset] defaults to [Sync_reset]; [init] defaults to zero. *)

val reg_connect : t -> ?enable:Expr.t -> string -> Expr.t -> unit
(** Connect the data input of a declared register.
    @raise Invalid_argument if unknown or already connected. *)

val reg :
  t ->
  ?reset:Design.reset_kind ->
  ?init:Bitvec.t ->
  ?enable:Expr.t ->
  string ->
  d:Expr.t ->
  Expr.t
(** Declare-and-connect convenience for feedforward registers. *)

val rom : t -> string -> width:int -> Bitvec.t array -> unit
val config_table : t -> string -> width:int -> depth:int -> unit

val read_table : t -> string -> Expr.t -> Expr.t
(** Asynchronous read expression; address width must match the declared
    depth. *)

val annotate : t -> Annot.t -> unit

val finish : t -> Design.t
(** Assembles and {!Design.validate}s the design.
    @raise Invalid_argument on dangling registers or validation failure. *)
