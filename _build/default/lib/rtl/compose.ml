let instantiate b ~name (sub : Design.t) ~inputs =
  let rename s = name ^ "_" ^ s in
  (* Check the input bindings. *)
  List.iter
    (fun (port, e) ->
      match List.find_opt (fun (s : Signal.t) -> s.name = port) sub.inputs with
      | None ->
        invalid_arg
          (Printf.sprintf "Compose.instantiate %s: no input port %s" name port)
      | Some s ->
        if Expr.width e <> s.width then
          invalid_arg
            (Printf.sprintf "Compose.instantiate %s: width mismatch on %s" name
               port))
    inputs;
  List.iter
    (fun (s : Signal.t) ->
      if not (List.mem_assoc s.name inputs) then
        invalid_arg
          (Printf.sprintf "Compose.instantiate %s: input %s not bound" name
             s.name))
    sub.inputs;
  let rename_expr e =
    Expr.map_leaves
      ~signal:(fun s -> Expr.signal (Signal.make (rename s.Signal.name) s.width))
      ~table:(fun t addr width -> Expr.table_read ~table:(rename t) ~width ~addr)
      e
  in
  (* Input ports become nets driven by the parent expressions. *)
  List.iter
    (fun ((s : Signal.t), e) -> ignore (Builder.net b (rename s.name) e))
    (List.map
       (fun (s : Signal.t) -> (s, List.assoc s.name inputs))
       sub.inputs);
  (* Tables. *)
  List.iter
    (fun (t : Design.table) ->
      match t.storage with
      | Design.Rom contents ->
        Builder.rom b (rename t.tname) ~width:t.twidth contents
      | Design.Config ->
        Builder.config_table b (rename t.tname) ~width:t.twidth ~depth:t.depth)
    sub.tables;
  (* Registers: declare first (feedback), connect after the nets exist. *)
  List.iter
    (fun (r : Design.reg) ->
      ignore
        (Builder.reg_declare b (rename r.q.Signal.name)
           ~width:r.q.Signal.width ~reset:r.reset ~init:r.init
           ~is_config:r.is_config))
    sub.regs;
  List.iter
    (fun ((s : Signal.t), e) -> ignore (Builder.net b (rename s.name) (rename_expr e)))
    (Design.net_order sub);
  List.iter
    (fun (r : Design.reg) ->
      Builder.reg_connect b
        ?enable:(Option.map rename_expr r.enable)
        (rename r.q.Signal.name) (rename_expr r.d))
    sub.regs;
  (* Outputs become accessible nets. *)
  let out_net ((s : Signal.t), e) =
    (s.name, Builder.net b (rename ("out_" ^ s.name)) (rename_expr e))
  in
  let outs = List.map out_net sub.outputs in
  (* Annotations follow their renamed targets. *)
  List.iter
    (fun (a : Annot.t) ->
      Builder.annotate b { a with target = rename a.target })
    sub.annots;
  fun port ->
    match List.assoc_opt port outs with
    | Some e -> e
    | None ->
      invalid_arg
        (Printf.sprintf "Compose.instantiate %s: no output port %s" name port)
