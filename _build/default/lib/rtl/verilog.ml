let range w = if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1)

let rec expr_str e =
  match e with
  | Expr.Const v ->
    Printf.sprintf "%d'b%s" (Bitvec.width v) (Bitvec.to_binary_string v)
  | Expr.Signal s -> s.Signal.name
  | Expr.Unop (op, a) ->
    let sym =
      match op with
      | Expr.Not -> "~" | Expr.Red_and -> "&" | Expr.Red_or -> "|"
      | Expr.Red_xor -> "^"
    in
    sym ^ atom a
  | Expr.Binop (op, a, b) ->
    let sym =
      match op with
      | Expr.And -> "&" | Expr.Or -> "|" | Expr.Xor -> "^"
      | Expr.Add -> "+" | Expr.Sub -> "-" | Expr.Eq -> "=="
      | Expr.Ne -> "!=" | Expr.Ult -> "<"
    in
    Printf.sprintf "%s %s %s" (atom a) sym (atom b)
  | Expr.Mux (s, a, b) ->
    Printf.sprintf "%s ? %s : %s" (atom s) (atom a) (atom b)
  | Expr.Concat es -> "{" ^ String.concat ", " (List.map expr_str es) ^ "}"
  | Expr.Slice { e; hi; lo } ->
    if hi = lo then Printf.sprintf "%s[%d]" (atom e) lo
    else Printf.sprintf "%s[%d:%d]" (atom e) hi lo
  | Expr.Table_read { table; addr; _ } ->
    Printf.sprintf "%s[%s]" table (expr_str addr)

and atom e =
  match e with
  | Expr.Const _ | Expr.Signal _ | Expr.Concat _ | Expr.Slice _
  | Expr.Table_read _ -> expr_str e
  | Expr.Unop _ | Expr.Binop _ | Expr.Mux _ -> "(" ^ expr_str e ^ ")"

let pp fmt (d : Design.t) =
  let out fmtstr = Format.fprintf fmt fmtstr in
  let ports =
    [ "input logic clk"; "input logic rst" ]
    @ List.map
        (fun (s : Signal.t) -> Printf.sprintf "input logic %s%s" (range s.width) s.name)
        d.inputs
    @ List.map
        (fun ((s : Signal.t), _) ->
          Printf.sprintf "output logic %s%s" (range s.width) s.name)
        d.outputs
  in
  out "module %s (@.  %s@.);@." d.name (String.concat ",\n  " ports);
  List.iter
    (fun (t : Design.table) ->
      match t.storage with
      | Design.Rom contents ->
        out "  // ROM %s: %d x %d bits@." t.tname t.depth t.twidth;
        out "  logic %s%s [0:%d];@." (range t.twidth) t.tname (t.depth - 1);
        out "  initial begin@.";
        Array.iteri
          (fun i v ->
            out "    %s[%d] = %d'b%s;@." t.tname i t.twidth
              (Bitvec.to_binary_string v))
          contents;
        out "  end@."
      | Design.Config ->
        out "  // CONFIGURATION MEMORY %s: %d x %d bits (programmable; write port elided)@."
          t.tname t.depth t.twidth;
        out "  logic %s%s [0:%d];@." (range t.twidth) t.tname (t.depth - 1))
    d.tables;
  List.iter
    (fun ((s : Signal.t), e) ->
      out "  logic %s%s;@." (range s.width) s.name;
      out "  assign %s = %s;@." s.name (expr_str e))
    (Design.net_order d);
  List.iter
    (fun (r : Design.reg) ->
      let q = r.q.Signal.name in
      out "  logic %s%s;%s@." (range r.q.Signal.width) q
        (if r.is_config then "  // configuration register" else "");
      let edge =
        match r.reset with
        | Design.Async_reset -> "posedge clk or posedge rst"
        | Design.Sync_reset | Design.No_reset -> "posedge clk"
      in
      out "  always_ff @@(%s)@." edge;
      (match r.reset with
       | Design.No_reset ->
         (match r.enable with
          | None -> out "    %s <= %s;@." q (expr_str r.d)
          | Some en ->
            out "    if (%s) %s <= %s;@." (expr_str en) q (expr_str r.d))
       | Design.Sync_reset | Design.Async_reset ->
         out "    if (rst) %s <= %d'b%s;@." q r.q.Signal.width
           (Bitvec.to_binary_string r.init);
         (match r.enable with
          | None -> out "    else %s <= %s;@." q (expr_str r.d)
          | Some en ->
            out "    else if (%s) %s <= %s;@." (expr_str en) q (expr_str r.d))))
    d.regs;
  List.iter
    (fun ((s : Signal.t), e) -> out "  assign %s = %s;@." s.name (expr_str e))
    d.outputs;
  List.iter (fun a -> out "  // annotation: %s@." (Format.asprintf "%a" Annot.pp a)) d.annots;
  out "endmodule@."

let emit d = Format.asprintf "%a" pp d
