(** SystemVerilog-flavoured pretty printer.

    Emits a readable single-module rendering of a design, documenting the
    correspondence between this IR and the RTL the paper synthesized. ROM
    tables become constant case functions; configuration tables become
    flip-flop arrays with a comment marking them as programmable (their write
    port is outside the modelled scope, as in the paper's PCtrl figures). *)

val emit : Design.t -> string

val pp : Format.formatter -> Design.t -> unit
