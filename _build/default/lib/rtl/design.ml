type reset_kind = No_reset | Sync_reset | Async_reset

type reg = {
  q : Signal.t;
  d : Expr.t;
  reset : reset_kind;
  init : Bitvec.t;
  enable : Expr.t option;
  is_config : bool;
}

type storage =
  | Rom of Bitvec.t array
  | Config

type table = {
  tname : string;
  twidth : int;
  depth : int;
  storage : storage;
}

let addr_bits t =
  let rec bits n acc = if n <= 1 then max acc 1 else bits ((n + 1) / 2) (acc + 1) in
  bits t.depth 0

type t = {
  name : string;
  inputs : Signal.t list;
  outputs : (Signal.t * Expr.t) list;
  nets : (Signal.t * Expr.t) list;
  regs : reg list;
  tables : table list;
  annots : Annot.t list;
}

let fail fmt = Format.kasprintf invalid_arg fmt

let find_table d name =
  List.find (fun t -> t.tname = name) d.tables

let find_reg d name =
  List.find (fun r -> r.q.Signal.name = name) d.regs

let defined_signals d =
  d.inputs
  @ List.map fst d.nets
  @ List.map (fun r -> r.q) d.regs

let net_order d =
  (* Kahn-style topological sort over net -> net combinational dependencies.
     Register outputs and inputs are sources and never block. *)
  let net_names =
    List.fold_left
      (fun acc (s, _) -> (s.Signal.name :: acc))
      [] d.nets
  in
  let is_net n = List.mem n net_names in
  let deps e =
    Expr.fold_signals
      (fun s acc -> if is_net s.Signal.name then s.Signal.name :: acc else acc)
      e []
  in
  let remaining = Hashtbl.create 16 in
  List.iter (fun (s, e) -> Hashtbl.replace remaining s.Signal.name (s, e, deps e)) d.nets;
  let placed = Hashtbl.create 16 in
  let rec rounds acc =
    if Hashtbl.length remaining = 0 then List.rev acc
    else begin
      let ready =
        Hashtbl.fold
          (fun name (s, e, ds) acc ->
            if List.for_all (Hashtbl.mem placed) ds then (name, s, e) :: acc
            else acc)
          remaining []
      in
      if ready = [] then
        fail "Design %s: combinational cycle through nets {%s}" d.name
          (String.concat ", " (Hashtbl.fold (fun n _ acc -> n :: acc) remaining []));
      let ready = List.sort Stdlib.compare ready in
      List.iter
        (fun (name, _, _) ->
          Hashtbl.remove remaining name;
          Hashtbl.replace placed name ())
        ready;
      rounds (List.rev_append (List.map (fun (_, s, e) -> (s, e)) ready) acc)
    end
  in
  rounds []

let validate d =
  (* Unique names. *)
  let all = defined_signals d in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (s : Signal.t) ->
      if Hashtbl.mem seen s.name then fail "Design %s: duplicate signal %s" d.name s.name;
      Hashtbl.add seen s.name s.width)
    all;
  List.iter
    (fun t ->
      if Hashtbl.mem seen t.tname then
        fail "Design %s: table name %s collides with a signal" d.name t.tname;
      match t.storage with
      | Rom contents ->
        if Array.length contents <> t.depth then
          fail "Design %s: table %s has %d entries, declared depth %d" d.name
            t.tname (Array.length contents) t.depth;
        Array.iter
          (fun v ->
            if Bitvec.width v <> t.twidth then
              fail "Design %s: table %s entry width mismatch" d.name t.tname)
          contents
      | Config -> ())
    d.tables;
  (* References and widths. *)
  let check_expr ctx e =
    Expr.fold_signals
      (fun s () ->
        match Hashtbl.find_opt seen s.Signal.name with
        | None -> fail "Design %s: %s references undefined signal %s" d.name ctx s.Signal.name
        | Some w ->
          if w <> s.Signal.width then
            fail "Design %s: %s references %s with width %d (declared %d)"
              d.name ctx s.Signal.name s.Signal.width w)
      e ();
    Expr.fold_tables
      (fun name () ->
        match List.find_opt (fun t -> t.tname = name) d.tables with
        | None -> fail "Design %s: %s reads undeclared table %s" d.name ctx name
        | Some _ -> ())
      e ();
    (* Table read geometry. *)
    let rec geom e =
      match e with
      | Expr.Table_read { table; addr; width } ->
        let t = find_table d table in
        if width <> t.twidth then
          fail "Design %s: %s reads table %s at width %d (declared %d)" d.name
            ctx table width t.twidth;
        if Expr.width addr <> addr_bits t then
          fail "Design %s: %s addresses table %s with %d bits (needs %d)"
            d.name ctx table (Expr.width addr) (addr_bits t);
        geom addr
      | Expr.Const _ | Expr.Signal _ -> ()
      | Expr.Unop (_, a) -> geom a
      | Expr.Binop (_, a, b) -> geom a; geom b
      | Expr.Mux (s, a, b) -> geom s; geom a; geom b
      | Expr.Concat es -> List.iter geom es
      | Expr.Slice { e; _ } -> geom e
    in
    geom e
  in
  List.iter
    (fun ((s : Signal.t), e) ->
      check_expr ("net " ^ s.name) e;
      if Expr.width e <> s.width then
        fail "Design %s: net %s width %d driven at width %d" d.name s.name
          s.width (Expr.width e))
    d.nets;
  List.iter
    (fun ((s : Signal.t), e) ->
      check_expr ("output " ^ s.name) e;
      if Expr.width e <> s.width then
        fail "Design %s: output %s width %d driven at width %d" d.name s.name
          s.width (Expr.width e))
    d.outputs;
  List.iter
    (fun r ->
      check_expr ("register " ^ r.q.Signal.name) r.d;
      if Expr.width r.d <> r.q.Signal.width then
        fail "Design %s: register %s width mismatch" d.name r.q.Signal.name;
      if Bitvec.width r.init <> r.q.Signal.width then
        fail "Design %s: register %s init width mismatch" d.name r.q.Signal.name;
      Option.iter
        (fun en ->
          check_expr ("enable of " ^ r.q.Signal.name) en;
          if Expr.width en <> 1 then
            fail "Design %s: register %s enable must be 1 bit" d.name r.q.Signal.name)
        r.enable)
    d.regs;
  (* Annotations. *)
  List.iter
    (fun (a : Annot.t) ->
      match Hashtbl.find_opt seen a.target with
      | None -> fail "Design %s: annotation targets unknown signal %s" d.name a.target
      | Some w ->
        if Annot.signal_width a <> w then
          fail "Design %s: annotation on %s has width %d (signal is %d)" d.name
            a.target (Annot.signal_width a) w)
    d.annots;
  (* Cycle check. *)
  ignore (net_order d)

let with_rom_contents d name contents =
  let t = find_table d name in
  if Array.length contents <> t.depth then
    fail "with_rom_contents: %s expects %d entries, got %d" name t.depth
      (Array.length contents);
  Array.iter
    (fun v ->
      if Bitvec.width v <> t.twidth then
        fail "with_rom_contents: %s entry width mismatch" name)
    contents;
  let tables =
    List.map
      (fun u -> if u.tname = name then { u with storage = Rom contents } else u)
      d.tables
  in
  { d with tables }

let config_tables d =
  List.filter (fun t -> t.storage = Config) d.tables

let config_bit_count d =
  let table_bits =
    List.fold_left (fun acc t -> acc + (t.twidth * t.depth)) 0 (config_tables d)
  in
  let reg_bits =
    List.fold_left
      (fun acc r -> if r.is_config then acc + r.q.Signal.width else acc)
      0 d.regs
  in
  table_bits + reg_bits

let add_annots d annots = { d with annots = d.annots @ annots }

let stats d =
  Printf.sprintf
    "%s: %d inputs, %d outputs, %d nets, %d regs (%d state bits), %d tables (%d config bits)"
    d.name (List.length d.inputs) (List.length d.outputs) (List.length d.nets)
    (List.length d.regs)
    (List.fold_left (fun acc r -> acc + r.q.Signal.width) 0 d.regs)
    (List.length d.tables) (config_bit_count d)
