(** RTL expressions.

    Word-level combinational expressions. Every expression has a width
    computable by {!width}; the smart constructors check operand widths and
    raise [Invalid_argument] on mismatch, so a constructed expression is
    always well-formed. *)

type unop = Not | Red_and | Red_or | Red_xor

type binop = And | Or | Xor | Add | Sub | Eq | Ne | Ult

type t =
  | Const of Bitvec.t
  | Signal of Signal.t
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t  (** selector (width 1), then-value, else-value *)
  | Concat of t list  (** head is most significant, as in Verilog [{...}] *)
  | Slice of { e : t; hi : int; lo : int }
  | Table_read of { table : string; addr : t; width : int }

val width : t -> int

(** {1 Smart constructors} *)

val const : Bitvec.t -> t
val of_int : width:int -> int -> t
val signal : Signal.t -> t
val not_ : t -> t
val red_and : t -> t
val red_or : t -> t
val red_xor : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val eq : t -> t -> t
val ne : t -> t -> t
val ult : t -> t -> t
val mux : t -> t -> t -> t
val concat : t list -> t
val slice : t -> hi:int -> lo:int -> t
val bit : t -> int -> t
(** [bit e i] is the 1-bit slice at index [i]. *)

val eq_const : t -> int -> t
(** [eq_const e v] compares against a constant of matching width. *)

val zero_extend : t -> int -> t
(** [zero_extend e w] pads with zero bits up to width [w] (identity if equal).
    @raise Invalid_argument if [w] is smaller than the width of [e]. *)

val bits : t -> t list
(** All 1-bit slices, least significant first. *)

val table_read : table:string -> width:int -> addr:t -> t

val select : t -> (int * t) list -> default:t -> t
(** [select sel cases ~default] builds a right-leaning mux chain comparing
    [sel] against each constant case value — the RTL image of a case
    statement. *)

(** {1 Traversal} *)

val fold_signals : (Signal.t -> 'a -> 'a) -> t -> 'a -> 'a
val fold_tables : (string -> 'a -> 'a) -> t -> 'a -> 'a

val map_leaves :
  signal:(Signal.t -> t) -> table:(string -> t -> int -> t) -> t -> t
(** [map_leaves ~signal ~table e] rebuilds [e], replacing every signal leaf
    via [signal] and every table read via [table name addr width]. Width
    correctness of the substitution is the caller's burden (checked by the
    smart constructors). *)

val eval : (Signal.t -> Bitvec.t) -> (string -> Bitvec.t -> Bitvec.t) -> t -> Bitvec.t
(** [eval lookup read_table e] — direct interpreter. *)

val pp : Format.formatter -> t -> unit
