exception Parse_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Parse_error m)) fmt

(* ------------------------------------------------------- tiny sexp core *)

type sexp = Atom of string | List of sexp list

let rec pp_sexp fmt = function
  | Atom a -> Format.pp_print_string fmt a
  | List items ->
    Format.fprintf fmt "@[<hov 1>(%a)@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_sexp)
      items

let parse_sexp text =
  let n = String.length text in
  let rec skip_ws i =
    if i < n && (text.[i] = ' ' || text.[i] = '\n' || text.[i] = '\t' || text.[i] = '\r')
    then skip_ws (i + 1)
    else if i < n && text.[i] = ';' then begin
      let rec eol j = if j < n && text.[j] <> '\n' then eol (j + 1) else j in
      skip_ws (eol i)
    end
    else i
  in
  let rec parse i =
    let i = skip_ws i in
    if i >= n then fail "unexpected end of input"
    else if text.[i] = '(' then parse_list (i + 1) []
    else if text.[i] = ')' then fail "unexpected ')'"
    else begin
      let rec atom_end j =
        if j < n
           && not
                (text.[j] = ' ' || text.[j] = '\n' || text.[j] = '\t'
                || text.[j] = '\r' || text.[j] = '(' || text.[j] = ')')
        then atom_end (j + 1)
        else j
      in
      let j = atom_end i in
      (Atom (String.sub text i (j - i)), j)
    end
  and parse_list i acc =
    let i = skip_ws i in
    if i >= n then fail "unterminated list"
    else if text.[i] = ')' then (List (List.rev acc), i + 1)
    else begin
      let item, j = parse i in
      parse_list j (item :: acc)
    end
  in
  let s, j = parse 0 in
  let j = skip_ws j in
  if j <> n then fail "trailing garbage after design";
  s

(* --------------------------------------------------------------- writing *)

let bv_atom v = Atom (Bitvec.to_string v)

let rec expr_sexp (e : Expr.t) =
  match e with
  | Expr.Const v -> List [ Atom "const"; bv_atom v ]
  | Expr.Signal s -> List [ Atom "sig"; Atom s.Signal.name; Atom (string_of_int s.width) ]
  | Expr.Unop (op, a) ->
    let name =
      match op with
      | Expr.Not -> "not" | Expr.Red_and -> "redand" | Expr.Red_or -> "redor"
      | Expr.Red_xor -> "redxor"
    in
    List [ Atom name; expr_sexp a ]
  | Expr.Binop (op, a, b) ->
    let name =
      match op with
      | Expr.And -> "and" | Expr.Or -> "or" | Expr.Xor -> "xor"
      | Expr.Add -> "add" | Expr.Sub -> "sub" | Expr.Eq -> "eq"
      | Expr.Ne -> "ne" | Expr.Ult -> "ult"
    in
    List [ Atom name; expr_sexp a; expr_sexp b ]
  | Expr.Mux (s, a, b) -> List [ Atom "mux"; expr_sexp s; expr_sexp a; expr_sexp b ]
  | Expr.Concat es -> List (Atom "concat" :: List.map expr_sexp es)
  | Expr.Slice { e; hi; lo } ->
    List [ Atom "slice"; expr_sexp e; Atom (string_of_int hi); Atom (string_of_int lo) ]
  | Expr.Table_read { table; addr; width } ->
    List [ Atom "read"; Atom table; Atom (string_of_int width); expr_sexp addr ]

let reset_atom = function
  | Design.No_reset -> Atom "none"
  | Design.Sync_reset -> Atom "sync"
  | Design.Async_reset -> Atom "async"

let design_sexp (d : Design.t) =
  let inputs =
    List
      (Atom "inputs"
       :: List.map
            (fun (s : Signal.t) ->
              List [ Atom s.name; Atom (string_of_int s.width) ])
            d.inputs)
  in
  let nets =
    List
      (Atom "nets"
       :: List.map
            (fun ((s : Signal.t), e) ->
              List [ Atom s.name; Atom (string_of_int s.width); expr_sexp e ])
            d.nets)
  in
  let regs =
    List
      (Atom "regs"
       :: List.map
            (fun (r : Design.reg) ->
              List
                ([ Atom r.q.Signal.name;
                   Atom (string_of_int r.q.Signal.width);
                   List [ Atom "reset"; reset_atom r.reset ];
                   List [ Atom "init"; bv_atom r.init ];
                   List [ Atom "config"; Atom (string_of_bool r.is_config) ] ]
                @ (match r.enable with
                   | None -> []
                   | Some en -> [ List [ Atom "enable"; expr_sexp en ] ])
                @ [ expr_sexp r.d ]))
            d.regs)
  in
  let tables =
    List
      (Atom "tables"
       :: List.map
            (fun (t : Design.table) ->
              List
                [ Atom t.tname;
                  Atom (string_of_int t.twidth);
                  Atom (string_of_int t.depth);
                  (match t.storage with
                   | Design.Config -> List [ Atom "config" ]
                   | Design.Rom contents ->
                     List (Atom "rom" :: Array.to_list (Array.map bv_atom contents))) ])
            d.tables)
  in
  let outputs =
    List
      (Atom "outputs"
       :: List.map
            (fun ((s : Signal.t), e) ->
              List [ Atom s.name; Atom (string_of_int s.width); expr_sexp e ])
            d.outputs)
  in
  let annots =
    List
      (Atom "annots"
       :: List.map
            (fun (a : Annot.t) ->
              let kind =
                match a.kind with
                | Annot.Value_set _ -> "value_set"
                | Annot.Fsm_state_vector _ -> "fsm_state_vector"
              in
              let prov =
                match a.provenance with
                | Annot.Tool_detected -> "tool"
                | Annot.Generator -> "generator"
              in
              List
                (Atom kind :: Atom a.target :: Atom prov
                 :: List.map bv_atom (Annot.values a)))
            d.annots)
  in
  List
    [ Atom "design"; List [ Atom "name"; Atom d.name ]; inputs; nets; regs;
      tables; outputs; annots ]

let write d = Format.asprintf "%a@." pp_sexp (design_sexp d)

let to_file path d =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (write d))

(* --------------------------------------------------------------- reading *)

let parse_bv = function
  | Atom a ->
    (match String.index_opt a '\'' with
     | Some i when i + 1 < String.length a && a.[i + 1] = 'b' ->
       let bits = String.sub a (i + 2) (String.length a - i - 2) in
       let v = Bitvec.of_binary_string bits in
       let w = int_of_string (String.sub a 0 i) in
       if Bitvec.width v <> w then fail "bit vector width mismatch in %s" a;
       v
     | _ -> fail "expected bit vector, got %s" a)
  | List _ -> fail "expected bit vector atom"

let parse_int_atom = function
  | Atom a ->
    (match int_of_string_opt a with
     | Some v -> v
     | None -> fail "expected integer, got %s" a)
  | List _ -> fail "expected integer atom"

let rec parse_expr s : Expr.t =
  match s with
  | List [ Atom "const"; v ] -> Expr.const (parse_bv v)
  | List [ Atom "sig"; Atom name; w ] ->
    Expr.signal (Signal.make name (parse_int_atom w))
  | List [ Atom "not"; a ] -> Expr.not_ (parse_expr a)
  | List [ Atom "redand"; a ] -> Expr.red_and (parse_expr a)
  | List [ Atom "redor"; a ] -> Expr.red_or (parse_expr a)
  | List [ Atom "redxor"; a ] -> Expr.red_xor (parse_expr a)
  | List [ Atom "and"; a; b ] -> Expr.and_ (parse_expr a) (parse_expr b)
  | List [ Atom "or"; a; b ] -> Expr.or_ (parse_expr a) (parse_expr b)
  | List [ Atom "xor"; a; b ] -> Expr.xor (parse_expr a) (parse_expr b)
  | List [ Atom "add"; a; b ] -> Expr.add (parse_expr a) (parse_expr b)
  | List [ Atom "sub"; a; b ] -> Expr.sub (parse_expr a) (parse_expr b)
  | List [ Atom "eq"; a; b ] -> Expr.eq (parse_expr a) (parse_expr b)
  | List [ Atom "ne"; a; b ] -> Expr.ne (parse_expr a) (parse_expr b)
  | List [ Atom "ult"; a; b ] -> Expr.ult (parse_expr a) (parse_expr b)
  | List [ Atom "mux"; c; a; b ] ->
    Expr.mux (parse_expr c) (parse_expr a) (parse_expr b)
  | List (Atom "concat" :: es) -> Expr.concat (List.map parse_expr es)
  | List [ Atom "slice"; e; hi; lo ] ->
    Expr.slice (parse_expr e) ~hi:(parse_int_atom hi) ~lo:(parse_int_atom lo)
  | List [ Atom "read"; Atom table; w; addr ] ->
    Expr.table_read ~table ~width:(parse_int_atom w) ~addr:(parse_expr addr)
  | List (Atom op :: _) -> fail "unknown expression form %s" op
  | _ -> fail "malformed expression"

let parse_reset = function
  | Atom "none" -> Design.No_reset
  | Atom "sync" -> Design.Sync_reset
  | Atom "async" -> Design.Async_reset
  | s -> fail "unknown reset kind %a" pp_sexp s

let section name = function
  | List (Atom n :: rest) when n = name -> rest
  | s -> fail "expected (%s ...), got %a" name pp_sexp s

let read text =
  let d =
    match parse_sexp text with
    | List (Atom "design" :: sections) -> sections
    | _ -> fail "expected (design ...)"
  in
  match d with
  | [ name_s; inputs_s; nets_s; regs_s; tables_s; outputs_s; annots_s ] ->
    let name =
      match section "name" name_s with
      | [ Atom n ] -> n
      | _ -> fail "bad name section"
    in
    let inputs =
      List.map
        (function
          | List [ Atom n; w ] -> Signal.make n (parse_int_atom w)
          | s -> fail "bad input %a" pp_sexp s)
        (section "inputs" inputs_s)
    in
    let parse_driven = function
      | List [ Atom n; w; e ] -> (Signal.make n (parse_int_atom w), parse_expr e)
      | s -> fail "bad net/output %a" pp_sexp s
    in
    let nets = List.map parse_driven (section "nets" nets_s) in
    let outputs = List.map parse_driven (section "outputs" outputs_s) in
    let regs =
      List.map
        (function
          | List (Atom n :: w :: List [ Atom "reset"; r ]
                  :: List [ Atom "init"; iv ]
                  :: List [ Atom "config"; Atom cfg ] :: rest) ->
            let enable, d =
              match rest with
              | [ List [ Atom "enable"; en ]; d ] -> (Some (parse_expr en), d)
              | [ d ] -> (None, d)
              | _ -> fail "bad register body"
            in
            {
              Design.q = Signal.make n (parse_int_atom w);
              d = parse_expr d;
              reset = parse_reset r;
              init = parse_bv iv;
              enable;
              is_config = bool_of_string cfg;
            }
          | s -> fail "bad register %a" pp_sexp s)
        (section "regs" regs_s)
    in
    let tables =
      List.map
        (function
          | List [ Atom n; w; depth; storage ] ->
            let storage =
              match storage with
              | List [ Atom "config" ] -> Design.Config
              | List (Atom "rom" :: words) ->
                Design.Rom (Array.of_list (List.map parse_bv words))
              | s -> fail "bad table storage %a" pp_sexp s
            in
            { Design.tname = n; twidth = parse_int_atom w;
              depth = parse_int_atom depth; storage }
          | s -> fail "bad table %a" pp_sexp s)
        (section "tables" tables_s)
    in
    let annots =
      List.map
        (function
          | List (Atom kind :: Atom target :: Atom prov :: values) ->
            let provenance =
              match prov with
              | "tool" -> Annot.Tool_detected
              | "generator" -> Annot.Generator
              | _ -> fail "unknown provenance %s" prov
            in
            let vs = List.map parse_bv values in
            (match kind with
             | "value_set" -> Annot.value_set ~provenance target vs
             | "fsm_state_vector" -> Annot.fsm_state_vector ~provenance target vs
             | _ -> fail "unknown annotation kind %s" kind)
          | s -> fail "bad annotation %a" pp_sexp s)
        (section "annots" annots_s)
    in
    let design =
      { Design.name; inputs; outputs; nets; regs; tables; annots }
    in
    Design.validate design;
    design
  | _ -> fail "design must have name/inputs/nets/regs/tables/outputs/annots"

let of_file path = read (In_channel.with_open_text path In_channel.input_all)
