type provenance = Tool_detected | Generator

type kind =
  | Value_set of Bitvec.t list
  | Fsm_state_vector of Bitvec.t list

type t = { target : string; kind : kind; provenance : provenance }

let check_values name vs =
  match vs with
  | [] -> invalid_arg (name ^ ": empty value set")
  | v :: rest ->
    let w = Bitvec.width v in
    if List.exists (fun u -> Bitvec.width u <> w) rest then
      invalid_arg (name ^ ": mixed widths in value set");
    List.sort_uniq Bitvec.compare vs

let value_set ?(provenance = Generator) target vs =
  { target; kind = Value_set (check_values "Annot.value_set" vs); provenance }

let one_hot ?(provenance = Generator) target ~width =
  let vs = List.init width (fun i -> Bitvec.one_hot ~width i) in
  { target; kind = Value_set vs; provenance }

let fsm_state_vector ?(provenance = Generator) target vs =
  { target;
    kind = Fsm_state_vector (check_values "Annot.fsm_state_vector" vs);
    provenance }

let values t =
  match t.kind with Value_set vs | Fsm_state_vector vs -> vs

let signal_width t =
  match values t with
  | v :: _ -> Bitvec.width v
  | [] -> assert false

let pp fmt t =
  let kind_name =
    match t.kind with
    | Value_set _ -> "value_set"
    | Fsm_state_vector _ -> "fsm_state_vector"
  in
  let prov =
    match t.provenance with Tool_detected -> "tool" | Generator -> "gen"
  in
  Format.fprintf fmt "@[%s %s (%s) {%a}@]" kind_name t.target prov
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") Bitvec.pp)
    (values t)
