type unop = Not | Red_and | Red_or | Red_xor

type binop = And | Or | Xor | Add | Sub | Eq | Ne | Ult

type t =
  | Const of Bitvec.t
  | Signal of Signal.t
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t
  | Concat of t list
  | Slice of { e : t; hi : int; lo : int }
  | Table_read of { table : string; addr : t; width : int }

let rec width = function
  | Const v -> Bitvec.width v
  | Signal s -> s.Signal.width
  | Unop (Not, e) -> width e
  | Unop ((Red_and | Red_or | Red_xor), _) -> 1
  | Binop ((And | Or | Xor | Add | Sub), a, _) -> width a
  | Binop ((Eq | Ne | Ult), _, _) -> 1
  | Mux (_, a, _) -> width a
  | Concat es -> List.fold_left (fun acc e -> acc + width e) 0 es
  | Slice { hi; lo; _ } -> hi - lo + 1
  | Table_read { width; _ } -> width

let const v = Const v
let of_int ~width v = Const (Bitvec.of_int ~width v)
let signal s = Signal s

let same_width name a b =
  if width a <> width b then
    invalid_arg (Printf.sprintf "Expr.%s: width mismatch (%d vs %d)" name (width a) (width b))

let not_ e = Unop (Not, e)
let red_and e = Unop (Red_and, e)
let red_or e = Unop (Red_or, e)
let red_xor e = Unop (Red_xor, e)
let and_ a b = same_width "and_" a b; Binop (And, a, b)
let or_ a b = same_width "or_" a b; Binop (Or, a, b)
let xor a b = same_width "xor" a b; Binop (Xor, a, b)
let add a b = same_width "add" a b; Binop (Add, a, b)
let sub a b = same_width "sub" a b; Binop (Sub, a, b)
let eq a b = same_width "eq" a b; Binop (Eq, a, b)
let ne a b = same_width "ne" a b; Binop (Ne, a, b)
let ult a b = same_width "ult" a b; Binop (Ult, a, b)

let mux sel a b =
  if width sel <> 1 then invalid_arg "Expr.mux: selector must have width 1";
  same_width "mux" a b;
  Mux (sel, a, b)

let concat es =
  if es = [] then invalid_arg "Expr.concat: empty";
  Concat es

let slice e ~hi ~lo =
  if lo < 0 || hi < lo || hi >= width e then invalid_arg "Expr.slice: bad range";
  Slice { e; hi; lo }

let bit e i = slice e ~hi:i ~lo:i

let eq_const e v = eq e (of_int ~width:(width e) v)

let zero_extend e w =
  let we = width e in
  if w < we then invalid_arg "Expr.zero_extend: narrowing";
  if w = we then e else concat [ of_int ~width:(w - we) 0; e ]

let bits e = List.init (width e) (fun i -> bit e i)

let table_read ~table ~width ~addr =
  if width <= 0 then invalid_arg "Expr.table_read: width must be positive";
  Table_read { table; addr; width }

let select sel cases ~default =
  List.fold_right
    (fun (v, e) rest -> mux (eq_const sel v) e rest)
    cases default

let rec fold_signals f e acc =
  match e with
  | Const _ -> acc
  | Signal s -> f s acc
  | Unop (_, a) -> fold_signals f a acc
  | Binop (_, a, b) -> fold_signals f a (fold_signals f b acc)
  | Mux (s, a, b) -> fold_signals f s (fold_signals f a (fold_signals f b acc))
  | Concat es -> List.fold_left (fun acc e -> fold_signals f e acc) acc es
  | Slice { e; _ } -> fold_signals f e acc
  | Table_read { addr; _ } -> fold_signals f addr acc

let rec fold_tables f e acc =
  match e with
  | Const _ | Signal _ -> acc
  | Unop (_, a) -> fold_tables f a acc
  | Binop (_, a, b) -> fold_tables f a (fold_tables f b acc)
  | Mux (s, a, b) -> fold_tables f s (fold_tables f a (fold_tables f b acc))
  | Concat es -> List.fold_left (fun acc e -> fold_tables f e acc) acc es
  | Slice { e; _ } -> fold_tables f e acc
  | Table_read { table; addr; _ } -> f table (fold_tables f addr acc)

let rec map_leaves ~signal ~table e =
  let recur = map_leaves ~signal ~table in
  match e with
  | Const _ -> e
  | Signal s -> signal s
  | Unop (op, a) -> Unop (op, recur a)
  | Binop (op, a, b) -> Binop (op, recur a, recur b)
  | Mux (s, a, b) -> Mux (recur s, recur a, recur b)
  | Concat es -> Concat (List.map recur es)
  | Slice { e; hi; lo } -> Slice { e = recur e; hi; lo }
  | Table_read { table = name; addr; width } ->
    table name (recur addr) width

let bool_bv b = if b then Bitvec.ones 1 else Bitvec.zero 1

let rec eval lookup read_table e =
  let recur = eval lookup read_table in
  match e with
  | Const v -> v
  | Signal s -> lookup s
  | Unop (Not, a) -> Bitvec.lognot (recur a)
  | Unop (Red_and, a) -> bool_bv (Bitvec.reduce_and (recur a))
  | Unop (Red_or, a) -> bool_bv (Bitvec.reduce_or (recur a))
  | Unop (Red_xor, a) -> bool_bv (Bitvec.reduce_xor (recur a))
  | Binop (And, a, b) -> Bitvec.logand (recur a) (recur b)
  | Binop (Or, a, b) -> Bitvec.logor (recur a) (recur b)
  | Binop (Xor, a, b) -> Bitvec.logxor (recur a) (recur b)
  | Binop (Add, a, b) -> Bitvec.add (recur a) (recur b)
  | Binop (Sub, a, b) -> Bitvec.sub (recur a) (recur b)
  | Binop (Eq, a, b) -> bool_bv (Bitvec.equal (recur a) (recur b))
  | Binop (Ne, a, b) -> bool_bv (not (Bitvec.equal (recur a) (recur b)))
  | Binop (Ult, a, b) -> bool_bv (Bitvec.ult (recur a) (recur b))
  | Mux (s, a, b) -> if Bitvec.reduce_or (recur s) then recur a else recur b
  | Concat es -> Bitvec.concat (List.map recur es)
  | Slice { e; hi; lo } -> Bitvec.slice (recur e) ~hi ~lo
  | Table_read { table; addr; _ } -> read_table table (recur addr)

let rec pp fmt e =
  match e with
  | Const v -> Bitvec.pp fmt v
  | Signal s -> Format.pp_print_string fmt s.Signal.name
  | Unop (Not, a) -> Format.fprintf fmt "~%a" pp_atom a
  | Unop (Red_and, a) -> Format.fprintf fmt "&%a" pp_atom a
  | Unop (Red_or, a) -> Format.fprintf fmt "|%a" pp_atom a
  | Unop (Red_xor, a) -> Format.fprintf fmt "^%a" pp_atom a
  | Binop (op, a, b) ->
    let sym =
      match op with
      | And -> "&" | Or -> "|" | Xor -> "^" | Add -> "+" | Sub -> "-"
      | Eq -> "==" | Ne -> "!=" | Ult -> "<"
    in
    Format.fprintf fmt "%a %s %a" pp_atom a sym pp_atom b
  | Mux (s, a, b) -> Format.fprintf fmt "%a ? %a : %a" pp_atom s pp_atom a pp_atom b
  | Concat es ->
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp)
      es
  | Slice { e; hi; lo } ->
    if hi = lo then Format.fprintf fmt "%a[%d]" pp_atom e lo
    else Format.fprintf fmt "%a[%d:%d]" pp_atom e hi lo
  | Table_read { table; addr; _ } -> Format.fprintf fmt "%s[%a]" table pp addr

and pp_atom fmt e =
  match e with
  | Const _ | Signal _ | Slice _ | Table_read _ | Concat _ | Unop _ -> pp fmt e
  | Binop _ | Mux _ -> Format.fprintf fmt "(%a)" pp e
