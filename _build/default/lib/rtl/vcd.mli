(** Value-change-dump (VCD) waveform output.

    Runs a design on a stimulus and records the watched signals in the
    standard VCD format (IEEE 1364), viewable with GTKWave and friends. One
    clock cycle spans 10 time units, with the implicit [clk] toggling at
    mid-cycle; watched values are sampled before each rising edge. *)

val of_run :
  ?config:(string * Bitvec.t array) list ->
  Design.t ->
  stimulus:(string * Bitvec.t) list list ->
  watch:string list ->
  string
(** [of_run d ~stimulus ~watch] — one stimulus association list per cycle
    (as in {!Eval.run}); [watch] lists the signals to record (inputs, nets,
    registers or outputs). Only value *changes* are emitted, per the
    format. *)

val to_file :
  ?config:(string * Bitvec.t array) list ->
  string ->
  Design.t ->
  stimulus:(string * Bitvec.t) list list ->
  watch:string list ->
  unit
