(** Signal-encoding annotations.

    These carry the "extra knowledge beyond RTL" the paper argues a chip
    generator should emit alongside the design: restrictions of the possible
    values of a signal (state sets), and FSM state-vector markers.

    [provenance] distinguishes annotations the synthesis tool could infer on
    its own (a case-statement-coded FSM, which Design Compiler auto-detects)
    from those a generator must supply (table-based designs, microcode
    subfields). The flow options choose which provenances to honour. *)

type provenance =
  | Tool_detected  (** inferable from coding style, always honoured *)
  | Generator     (** supplied by the generator — the paper's manual
                      [set_fsm_state_vector] / state annotation analogue *)

type kind =
  | Value_set of Bitvec.t list
      (** The signal only ever takes these values. *)
  | Fsm_state_vector of Bitvec.t list
      (** The signal is an FSM state register with these reachable
          encodings. *)

type t = { target : string; kind : kind; provenance : provenance }

val value_set : ?provenance:provenance -> string -> Bitvec.t list -> t
(** @raise Invalid_argument if the list is empty or mixes widths. *)

val one_hot : ?provenance:provenance -> string -> width:int -> t
(** Sugar: value set of all [width] one-hot codes. *)

val fsm_state_vector : ?provenance:provenance -> string -> Bitvec.t list -> t

val values : t -> Bitvec.t list
(** The allowed values, whatever the kind. *)

val signal_width : t -> int

val pp : Format.formatter -> t -> unit
