(** Named, width-carrying signals. Names are unique within a design and act
    as the signal identity everywhere (annotations, evaluation, lowering). *)

type t = { name : string; width : int }

val make : string -> int -> t
(** @raise Invalid_argument if the width is not positive or the name empty. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
