(** Designs: the RTL container.

    A design is a set of input ports, named internal nets with combinational
    drivers, registers, tables and output ports. A global implicit [clk] and
    [rst] exist (registers with a reset style use [rst]).

    Tables come in two kinds:
    - {!Rom}: contents fixed at elaboration time; synthesis folds them into
      logic.
    - {!Config}: a *configuration memory* — contents are programmable after
      fabrication. In the flexible implementation every bit costs a
      configuration flip-flop, and reads cost a mux tree. Partial evaluation
      ({!Synth.Partial_eval} downstream) replaces a [Config] table by a [Rom]
      once the microcode/table bits are known. *)

type reset_kind = No_reset | Sync_reset | Async_reset

type reg = {
  q : Signal.t;
  d : Expr.t;
  reset : reset_kind;
  init : Bitvec.t;  (** reset / power-on value; also the simulator's start value *)
  enable : Expr.t option;
  is_config : bool;  (** configuration storage, not functional state *)
}

type storage =
  | Rom of Bitvec.t array
  | Config

type table = {
  tname : string;
  twidth : int;
  depth : int;  (** number of entries; the address width is [addr_bits] *)
  storage : storage;
}

val addr_bits : table -> int
(** ceil(log2 depth), minimum 1. *)

type t = {
  name : string;
  inputs : Signal.t list;
  outputs : (Signal.t * Expr.t) list;
  nets : (Signal.t * Expr.t) list;
  regs : reg list;
  tables : table list;
  annots : Annot.t list;
}

val validate : t -> unit
(** Checks: unique names across inputs/nets/registers; all referenced signals
    defined; net/output/register driver widths match; table reads reference
    declared tables with the right address width; ROM contents match the
    declared geometry; no combinational cycles through nets; annotation
    targets exist with matching width.
    @raise Invalid_argument with a descriptive message on violation. *)

val find_table : t -> string -> table
(** @raise Not_found *)

val find_reg : t -> string -> reg
(** @raise Not_found *)

val net_order : t -> (Signal.t * Expr.t) list
(** Nets in topological (driver-before-use) order.
    @raise Invalid_argument on a combinational cycle. *)

val with_rom_contents : t -> string -> Bitvec.t array -> t
(** Replace the storage of the named table (typically [Config] → [Rom]).
    @raise Invalid_argument if geometry does not match, [Not_found] if there
    is no such table. *)

val config_tables : t -> table list
val config_bit_count : t -> int
(** Total configuration storage bits ([Config] tables plus [is_config]
    registers). *)

val add_annots : t -> Annot.t list -> t

val stats : t -> string
(** One-line human-readable summary. *)
