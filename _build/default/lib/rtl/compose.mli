(** Hierarchical composition by inlining.

    The IR keeps designs flat; this module instantiates a sub-design inside
    a {!Builder} by renaming every internal object with an instance prefix
    and splicing the logic in. Annotations travel with their signals, so a
    generator-annotated sub-block keeps its knowledge inside the parent. *)

val instantiate :
  Builder.t ->
  name:string ->
  Design.t ->
  inputs:(string * Expr.t) list ->
  string ->
  Expr.t
(** [instantiate b ~name sub ~inputs] splices [sub] into [b] with every
    signal/table renamed to ["<name>_<original>"]. [inputs] must bind every
    input port of [sub] (width-checked). The returned function maps an
    output port name of [sub] to its expression in the parent.

    @raise Invalid_argument on missing/extra input bindings or width
    mismatch. *)
