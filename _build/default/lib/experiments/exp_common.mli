(** Shared helpers for the paper-figure experiments. *)

val lib : Cells.Library.t

val default_flow : Synth.Flow.options
val annotated_flow : Synth.Flow.options
(** Default plus [honor_generator_annots = true] — the paper's manual
    state-annotation runs. *)

val retimed_flow : Synth.Flow.options

val compile_area : ?options:Synth.Flow.options -> Rtl.Design.t -> float
(** Total mapped area of the optimized design. *)

val compile_report : ?options:Synth.Flow.options -> Rtl.Design.t -> Synth.Map.report

val geomean : float list -> float
(** Geometric mean; 1.0 on the empty list. *)

val out : Format.formatter ref
(** Where experiment printers write (defaults to stdout). *)

val printf : ('a, Format.formatter, unit) format -> 'a
