(** The Fig. 7 example design: a one-hot decoded bus feeding redundant
    downstream logic.

    Generic form: [y = one-hot-decode(sel)], optionally registered with a
    choice of reset style; downstream, [multi = |(y & (y - 1))] (a
    more-than-one-bit-set detector — identically false when [y] is one-hot)
    selects between two data inputs: [out = multi ? alt : main]. [y] is
    also an output, so the decoder and flops are live in every variant.

    Direct form: the hand-optimized equivalent — same decoder/flops, but
    [out = main] with the detector and mux gone.

    The generic registered design carries a generator value-set annotation
    on [y] ({0} ∪ one-hot codes is not claimed — the decode is always
    one-hot here, and the register initializes to a one-hot value, so the
    annotation is exactly the one-hot set). *)

type flop_style = Comb | Flop of Rtl.Design.reset_kind

val data_width : int

val generic : n:int -> style:flop_style -> Rtl.Design.t
val direct : n:int -> style:flop_style -> Rtl.Design.t

val paper_widths : int list
(** n ∈ {2, 4, 8, 16, 32, 64, 128}. *)

val all_styles : (string * flop_style) list
