(** Ablation studies of the synthesis flow's design choices (beyond the
    paper, indexed in DESIGN.md).

    - {!cone_cap}: how large must the collapse window be before table-based
      and direct implementations converge (sweeps the window cap)?
    - {!twolevel}: exact Quine–McCluskey vs the Espresso-lite heuristic on
      random functions — cover cost and runtime.
    - {!annot_cap}: the annotation width cap swept across the Fig. 8 design
      at a fixed bus width, reproducing the n ≤ 32 cliff as a flow
      parameter.
    - {!encodings}: state-encoding sweep (binary / gray / one-hot) on the
      Fig. 6 workload — the generator-side answer to "s ∈ {3, 17} aren't
      efficiently coded in binary". *)

val cone_cap : ?caps:int list -> unit -> unit
val twolevel : ?nvars_list:int list -> ?seeds:int list -> unit -> unit
val annot_cap : ?n:int -> ?caps:int list -> unit -> unit
val encodings : ?cases:(int * int * int) list -> unit -> unit

val library_richness : ?cases:(int * int) list -> unit -> unit
(** A5: the same optimized netlists mapped with and without the 3-input
    cells (NAND3/NOR3/AOI21/OAI21) — quantifying the "discrete standard
    cell library" effect the paper blames for residual scatter. *)

val microcode_style : unit -> unit
(** A6: horizontal vs vertical microcode stores on the PCtrl dispatch
    programs — config bits, flexible area, and the (converging) partially
    evaluated areas. *)
