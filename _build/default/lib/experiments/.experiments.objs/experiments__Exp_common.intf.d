lib/experiments/exp_common.mli: Cells Format Rtl Synth
