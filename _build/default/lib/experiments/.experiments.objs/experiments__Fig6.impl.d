lib/experiments/fig6.ml: Core Exp_common List Report Synth Workload
