lib/experiments/fig8.ml: Exp_common List Onehot_design Report
