lib/experiments/fig5.ml: Core Exp_common List Report Synth Workload
