lib/experiments/exp_common.ml: Cells Format List Synth
