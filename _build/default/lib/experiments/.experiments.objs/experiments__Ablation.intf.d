lib/experiments/ablation.mli:
