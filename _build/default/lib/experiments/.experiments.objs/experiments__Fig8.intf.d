lib/experiments/fig8.mli: Onehot_design
