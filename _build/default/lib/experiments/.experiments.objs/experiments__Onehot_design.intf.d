lib/experiments/onehot_design.mli: Rtl
