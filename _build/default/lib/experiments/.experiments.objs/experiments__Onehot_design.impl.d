lib/experiments/onehot_design.ml: Bitvec List Printf Rtl
