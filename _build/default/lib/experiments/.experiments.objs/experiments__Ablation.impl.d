lib/experiments/ablation.ml: Core Exp_common Hashtbl List Onehot_design Pctrl Printf Report Rtl Synth Sys Twolevel Workload
