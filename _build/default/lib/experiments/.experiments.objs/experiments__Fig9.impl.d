lib/experiments/fig9.ml: Exp_common List Pctrl Report Synth
