lib/experiments/fig9.mli: Pctrl
