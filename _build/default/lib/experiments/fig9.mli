(** Figure 9: the protocol controller case study.

    Synthesizes the PCtrl at the paper's three optimization levels for two
    memory configurations, reporting combinational and sequential area
    separately:
    - Full: the flexible design (configuration memories intact);
    - Auto: partial evaluation only (tables bound, default flow);
    - Manual: plus the generator's reachability annotations (honoured).

    Claims to reproduce: Auto cuts both area classes roughly in half by
    removing configuration storage and folding access logic; Manual gains
    little in cached mode (nearly every state is needed) but noticeably
    more in uncached mode (streaming states and most microcode become
    unreachable). *)

type level = Full | Auto | Manual

type row = {
  mode : Pctrl.Controller.mode;
  level : level;
  comb : float;
  seq : float;
  power : float;  (** activity-based estimate, arbitrary units *)
}

val run : unit -> row list

val print : row list -> unit
