type level = Full | Auto | Manual

type row = {
  mode : Pctrl.Controller.mode;
  level : level;
  comb : float;
  seq : float;
  power : float;
}

let level_name = function Full -> "full" | Auto -> "auto" | Manual -> "manual"

let mode_name = function
  | Pctrl.Controller.Cached -> "cached"
  | Pctrl.Controller.Uncached -> "uncached"

let run () =
  let compile ?options d = Synth.Flow.compile ?options Exp_common.lib d in
  let full = compile (Pctrl.Controller.full_design ()) in
  let point mode level =
    let result =
      match level with
      | Full -> full
      | Auto -> compile (Pctrl.Controller.auto_design mode)
      | Manual ->
        compile ~options:Exp_common.annotated_flow
          (Pctrl.Controller.manual_design mode)
    in
    let report = result.Synth.Flow.report in
    (* The flexible design must be *programmed* before its activity means
       anything: load the mode's microcode into the configuration bits. *)
    let config =
      match level with
      | Full -> Pctrl.Controller.bindings mode
      | Auto | Manual -> []
    in
    let power =
      Synth.Power.total
        (Synth.Power.estimate ~cycles:128 ~config Exp_common.lib
           result.Synth.Flow.aig)
    in
    { mode; level; comb = report.Synth.Map.comb_area;
      seq = report.Synth.Map.seq_area; power }
  in
  List.concat_map
    (fun mode -> List.map (point mode) [ Full; Auto; Manual ])
    [ Pctrl.Controller.Cached; Pctrl.Controller.Uncached ]

let print rows =
  let body =
    List.map
      (fun r ->
        [
          mode_name r.mode;
          level_name r.level;
          Report.Table.fmt_area r.comb;
          Report.Table.fmt_area r.seq;
          Report.Table.fmt_area (r.comb +. r.seq);
          Report.Table.fmt_area r.power;
        ])
      rows
  in
  Exp_common.printf "== Fig. 9: PCtrl area by optimization level ==@.%s@."
    (Report.Table.render
       ~align:
         [ Report.Table.Left; Report.Table.Left; Report.Table.Right;
           Report.Table.Right; Report.Table.Right; Report.Table.Right ]
       ~header:[ "config"; "level"; "comb um^2"; "seq um^2"; "total"; "power" ]
       body);
  let find mode level =
    List.find (fun r -> r.mode = mode && r.level = level) rows
  in
  let summarize mode =
    let f = find mode Full and a = find mode Auto and m = find mode Manual in
    Exp_common.printf
      "%s: auto/full comb %.2f, seq %.2f, power %.2f; manual saves %.1f%% area, %.1f%% power over auto@."
      (mode_name mode) (a.comb /. f.comb) (a.seq /. f.seq) (a.power /. f.power)
      (100.0 *. (1.0 -. ((m.comb +. m.seq) /. (a.comb +. a.seq))))
      (100.0 *. (1.0 -. (m.power /. a.power)))
  in
  summarize Pctrl.Controller.Cached;
  summarize Pctrl.Controller.Uncached;
  Exp_common.printf "@."
