type flop_style = Comb | Flop of Rtl.Design.reset_kind

let data_width = 8

let paper_widths = [ 2; 4; 8; 16; 32; 64; 128 ]

let all_styles =
  [
    ("comb", Comb);
    ("noreset", Flop Rtl.Design.No_reset);
    ("sync", Flop Rtl.Design.Sync_reset);
    ("async", Flop Rtl.Design.Async_reset);
  ]

let sel_bits n =
  let rec bits k acc = if k <= 1 then max acc 1 else bits ((k + 1) / 2) (acc + 1) in
  bits n 0

(* Total one-hot decode: bit 0 also catches out-of-range selectors (possible
   when n is not a power of two), so the one-hot claim is a true invariant —
   Annot_check.inductive verifies exactly this. *)
let decode b sel n =
  let upper = List.init (n - 1) (fun j -> Rtl.Expr.eq_const sel (j + 1)) in
  let bit0 =
    match upper with
    | [] -> Rtl.Expr.of_int ~width:1 1
    | e :: rest ->
      Rtl.Expr.not_ (List.fold_left Rtl.Expr.or_ e rest)
  in
  Rtl.Builder.net b "y0" (Rtl.Expr.concat (List.rev (bit0 :: upper)))

(* Shared front end: sel input, decoder, optional register; returns y. *)
let front b ~n ~style =
  let sel = Rtl.Builder.input b "sel" (sel_bits n) in
  let y0 = decode b sel n in
  match style with
  | Comb -> Rtl.Builder.net b "y" y0
  | Flop reset ->
    let y =
      Rtl.Builder.reg b "y" ~reset ~init:(Bitvec.one_hot ~width:n 0) ~d:y0
    in
    let onehots = List.init n (fun i -> Bitvec.one_hot ~width:n i) in
    Rtl.Builder.annotate b (Rtl.Annot.value_set "y" onehots);
    y

let generic ~n ~style =
  let b = Rtl.Builder.create (Printf.sprintf "onehot_generic_%d" n) in
  let main = Rtl.Builder.input b "main" data_width in
  let alt = Rtl.Builder.input b "alt" data_width in
  let y = front b ~n ~style in
  (* multi = more than one bit of y set; identically 0 for one-hot y. *)
  let multi =
    Rtl.Builder.net b "multi"
      (Rtl.Expr.red_or
         (Rtl.Expr.and_ y (Rtl.Expr.sub y (Rtl.Expr.of_int ~width:n 1))))
  in
  Rtl.Builder.output b "out" (Rtl.Expr.mux multi alt main);
  Rtl.Builder.output b "y" y;
  Rtl.Builder.finish b

let direct ~n ~style =
  let b = Rtl.Builder.create (Printf.sprintf "onehot_direct_%d" n) in
  let main = Rtl.Builder.input b "main" data_width in
  let _alt = Rtl.Builder.input b "alt" data_width in
  let y = front b ~n ~style in
  Rtl.Builder.output b "out" main;
  Rtl.Builder.output b "y" y;
  Rtl.Builder.finish b
