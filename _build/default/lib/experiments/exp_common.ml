let lib = Cells.Library.vt90

let default_flow = Synth.Flow.default

let annotated_flow = { Synth.Flow.default with honor_generator_annots = true }

let retimed_flow = { Synth.Flow.default with retime = true }

let compile_report ?options d =
  (Synth.Flow.compile ?options lib d).Synth.Flow.report

let compile_area ?options d = Synth.Map.total (compile_report ?options d)

let geomean = function
  | [] -> 1.0
  | xs ->
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
         /. float_of_int (List.length xs))

let out = ref Format.std_formatter

let printf fmt = Format.fprintf !out fmt
