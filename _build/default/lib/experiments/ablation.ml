let cone_cap ?(caps = [ 4; 6; 8; 10; 12; 14 ]) () =
  let cells = [ (16, 4); (64, 8); (256, 4) ] in
  let row cap =
    let ratios =
      List.map
        (fun (depth, width) ->
          let tt = Workload.Rand_table.generate ~seed:0 ~depth ~width in
          let flexible =
            Synth.Partial_eval.bind_tables
              (Core.Truth_table.to_flexible_rtl tt)
              [ Core.Truth_table.config_binding tt ]
          in
          let direct = Core.Truth_table.to_sop_rtl tt in
          let options = { Synth.Flow.default with collapse_cap = cap } in
          Exp_common.compile_area ~options flexible
          /. Exp_common.compile_area ~options direct)
        cells
    in
    string_of_int cap
    :: List.map Report.Table.fmt_ratio ratios
    @ [ Report.Table.fmt_ratio (Exp_common.geomean ratios) ]
  in
  Exp_common.printf
    "== Ablation A1: collapse window cap vs table/direct area ratio ==@.%s@.@."
    (Report.Table.render
       ~header:
         ("cap"
          :: List.map (fun (d, w) -> Printf.sprintf "%dx%d" d w) cells
          @ [ "geomean" ])
       (List.map row caps))

let twolevel ?(nvars_list = [ 4; 6; 8 ]) ?(seeds = [ 0; 1; 2 ]) () =
  let random_fn nvars seed =
    let rng = Workload.Rng.make (Hashtbl.hash ("ablate2", nvars, seed)) in
    Twolevel.Truthfn.of_fun ~nvars (fun _ ->
        if Workload.Rng.int rng 100 < 35 then Twolevel.Truthfn.On
        else if Workload.Rng.int rng 100 < 8 then Twolevel.Truthfn.Dc
        else Twolevel.Truthfn.Off)
  in
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let rows =
    List.concat_map
      (fun nvars ->
        List.map
          (fun seed ->
            let tf = random_fn nvars seed in
            let qm, tq = time (fun () -> Twolevel.Qm.minimize ~exact:true tf) in
            let esp, te = time (fun () -> Twolevel.Espresso.minimize tf) in
            [
              string_of_int nvars;
              string_of_int seed;
              string_of_int (Twolevel.Cover.num_cubes qm);
              string_of_int (Twolevel.Cover.literals qm);
              Printf.sprintf "%.4f" tq;
              string_of_int (Twolevel.Cover.num_cubes esp);
              string_of_int (Twolevel.Cover.literals esp);
              Printf.sprintf "%.4f" te;
            ])
          seeds)
      nvars_list
  in
  Exp_common.printf
    "== Ablation A2: exact QM vs Espresso-lite ==@.%s@.@."
    (Report.Table.render
       ~header:
         [ "nvars"; "seed"; "qm cubes"; "qm lits"; "qm s"; "esp cubes";
           "esp lits"; "esp s" ]
       rows)

let encodings ?(cases = [ (2, 8, 3); (2, 16, 17); (8, 8, 8); (8, 8, 17) ]) () =
  let row (m, n, s) =
    let fsm =
      Workload.Rand_fsm.generate ~seed:0 ~num_inputs:m ~num_outputs:n
        ~num_states:s
    in
    let area ?options d = Exp_common.compile_area ?options d in
    let direct enc = area (Core.Fsm_ir.to_direct_rtl ~encoding:enc fsm) in
    let direct_annotated enc =
      area ~options:Exp_common.annotated_flow
        (Core.Fsm_ir.to_direct_rtl ~encoding:enc fsm)
    in
    [
      Printf.sprintf "%d/%d/%d" m n s;
      Report.Table.fmt_area (direct Core.Fsm_ir.Binary);
      Report.Table.fmt_area (direct Core.Fsm_ir.Gray);
      Report.Table.fmt_area (direct Core.Fsm_ir.One_hot);
      Report.Table.fmt_area (direct_annotated Core.Fsm_ir.One_hot);
    ]
  in
  Exp_common.printf
    "== Ablation A4: state encodings on direct FSMs ==@.%s@.@."
    (Report.Table.render
       ~align:
         [ Report.Table.Left; Report.Table.Right; Report.Table.Right;
           Report.Table.Right; Report.Table.Right ]
       ~header:[ "m/n/s"; "binary"; "gray"; "one-hot"; "one-hot+annot" ]
       (List.map row cases))

let library_richness ?(cases = [ (64, 8); (256, 16) ]) () =
  (* The "discrete nature of the standard cell library": the same netlist
     mapped with and without the 3-input cells. *)
  let row (depth, width) =
    let tt = Workload.Rand_table.generate ~seed:0 ~depth ~width in
    let d =
      Synth.Partial_eval.bind_tables
        (Core.Truth_table.to_flexible_rtl tt)
        [ Core.Truth_table.config_binding tt ]
    in
    let aig = (Synth.Flow.compile Exp_common.lib d).Synth.Flow.aig in
    let full = Synth.Map.run Exp_common.lib aig in
    let simple = Synth.Map.run ~complex_cells:false Exp_common.lib aig in
    [
      Printf.sprintf "%dx%d" depth width;
      Report.Table.fmt_area (Synth.Map.total full);
      Printf.sprintf "%.3f" full.Synth.Map.critical_delay;
      Report.Table.fmt_area (Synth.Map.total simple);
      Printf.sprintf "%.3f" simple.Synth.Map.critical_delay;
      Report.Table.fmt_ratio (Synth.Map.total full /. Synth.Map.total simple);
    ]
  in
  Exp_common.printf
    "== Ablation A5: cell-library richness (with vs without 3-input cells) ==@.%s@.@."
    (Report.Table.render
       ~header:
         [ "design"; "full um^2"; "full ns"; "2-in um^2"; "2-in ns"; "ratio" ]
       (List.map row cases))

let microcode_style () =
  (* Horizontal vs vertical microcode stores (paper Section II-B) on the
     PCtrl dispatch programs. *)
  let row (name, p) =
    let bits style =
      Rtl.Design.config_bit_count
        (Core.Microcode.to_rtl ~style ~storage:`Config p)
    in
    let area style =
      Exp_common.compile_area (Core.Microcode.to_rtl ~style ~storage:`Config p)
    in
    let bound_area style =
      Exp_common.compile_area
        (Synth.Partial_eval.bind_tables
           (Core.Microcode.to_rtl ~style ~storage:`Config p)
           (Core.Microcode.config_bindings ~style p))
    in
    [
      name;
      string_of_int (Core.Microcode.depth p);
      string_of_int (Core.Microcode.distinct_control_words p);
      string_of_int (bits `Horizontal);
      string_of_int (bits `Vertical);
      Report.Table.fmt_area (area `Horizontal);
      Report.Table.fmt_area (area `Vertical);
      Report.Table.fmt_area (bound_area `Horizontal);
      Report.Table.fmt_area (bound_area `Vertical);
    ]
  in
  Exp_common.printf
    "== Ablation A6: horizontal vs vertical microcode ==@.%s\
     (partial evaluation erases the difference: both bound areas converge)@.@."
    (Report.Table.render
       ~align:
         (Report.Table.Left :: List.init 8 (fun _ -> Report.Table.Right))
       ~header:
         [ "program"; "uops"; "words"; "h bits"; "v bits"; "h flex";
           "v flex"; "h bound"; "v bound" ]
       (List.map row
          [
            ("pctrl-cached", Pctrl.Dispatch.program Pctrl.Dispatch.Cached);
            ("pctrl-uncached", Pctrl.Dispatch.program Pctrl.Dispatch.Uncached);
          ]))

let annot_cap ?(n = 64) ?(caps = [ 8; 16; 32; 64; 128 ]) () =
  let generic =
    Onehot_design.generic ~n ~style:(Onehot_design.Flop Rtl.Design.Sync_reset)
  in
  let direct =
    Onehot_design.direct ~n ~style:(Onehot_design.Flop Rtl.Design.Sync_reset)
  in
  let rows =
    List.map
      (fun cap ->
        let options =
          { Synth.Flow.default with
            honor_generator_annots = true;
            annot_width_cap = cap }
        in
        let g = Exp_common.compile_area ~options generic in
        let d = Exp_common.compile_area ~options direct in
        [
          string_of_int cap;
          Report.Table.fmt_area g;
          Report.Table.fmt_area d;
          Report.Table.fmt_ratio (g /. d);
          (if cap >= n then "honoured" else "ignored");
        ])
      caps
  in
  Exp_common.printf
    "== Ablation A3: annotation width cap at bus width n=%d ==@.%s@.@." n
    (Report.Table.render
       ~header:[ "cap"; "generic"; "direct"; "ratio"; "annotation" ]
       rows)
