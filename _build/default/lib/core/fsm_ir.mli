(** FSM IR: symbolic finite state machines (Mealy form).

    The controller abstraction of Section II-A. A machine has [m] input
    bits, [n] output bits and a list of named states; transition and output
    functions are total over (state, input assignment).

    Two generated implementations, matching the paper's Fig. 6 comparison:
    - {!to_flexible_rtl}: next-state and output logic stored in two
      configuration memories addressed by {state, inputs} (Fig. 2), with
      optional generator-supplied state-vector annotation;
    - {!to_direct_rtl}: the vendor-recommended case-statement style — a
      selector over state codes with per-state input logic (Shannon trees
      over each state's actually-used inputs), carrying a tool-detectable
      state-vector annotation. *)

type t = private {
  name : string;
  num_inputs : int;
  num_outputs : int;
  states : string array;
  reset : int;
  next : int array array;      (** [next.(s).(i)] = successor state index *)
  out : Bitvec.t array array;  (** [out.(s).(i)] = output word *)
}

val make :
  name:string ->
  num_inputs:int ->
  num_outputs:int ->
  states:string array ->
  reset:int ->
  next:int array array ->
  out:Bitvec.t array array ->
  t
(** @raise Invalid_argument on inconsistent geometry, bad state indices or
    duplicate state names. *)

val of_moore :
  name:string ->
  num_inputs:int ->
  num_outputs:int ->
  states:string array ->
  reset:int ->
  next:int array array ->
  moore_out:Bitvec.t array ->
  t
(** Convenience: outputs depend on the state only. *)

val num_states : t -> int

val is_moore : t -> bool
(** Outputs independent of the inputs. A Moore machine's flexible
    implementation uses a compact state-indexed output memory. *)

(** State encodings. The paper's Fig. 6 observes that state counts that do
    not fill a binary code space (s ∈ {3, 17}) synthesize poorly without
    annotations; encoding choice is the generator-side counterpart. *)
type encoding =
  | Binary
  | Gray     (** same width as binary; adjacent indices differ in one bit *)
  | One_hot  (** |S| bits; only usable with the direct (case) style *)

val state_bits_with : encoding -> t -> int
val encode_with : encoding -> t -> int -> Bitvec.t

val state_bits : t -> int
(** Bits of the binary state encoding, ceil(log2 |S|), minimum 1. *)

val encode : t -> int -> Bitvec.t
(** Binary code of a state index. *)

val state_codes_with : encoding -> t -> Bitvec.t list

val state_codes : t -> Bitvec.t list
(** Codes of all defined states — the state-vector annotation contents. *)

val reachable : t -> int list
(** State indices reachable from reset (graph reachability), ascending. *)

val reachable_codes : t -> Bitvec.t list
(** Codes of reachable states only (the *Manual*-level annotation). *)

val reachable_with : t -> inputs:int list -> int list
(** Reachable states when the environment only ever drives the listed input
    assignments — how a generator proves that a mode (e.g. uncached) cannot
    reach some states. *)

val step : t -> state:int -> input:int -> int * Bitvec.t

val simulate : t -> int list -> Bitvec.t list
(** Outputs along an input trace starting from reset. *)

val input_support : t -> int -> int list
(** Input bits that influence the next state or output in a given state. *)

val to_flexible_rtl : ?encoding:encoding -> ?annotate:bool -> t -> Rtl.Design.t
(** Ports: input [in] (m bits), output [out] (n bits). [annotate] (default
    false) adds the generator state-vector annotation. [encoding] defaults
    to [Binary]; @raise Invalid_argument on [One_hot] (a one-hot-addressed
    table would be exponentially deep — re-encode at the direct level
    instead). *)

val config_bindings : ?encoding:encoding -> t -> (string * Bitvec.t array) list
(** Contents for the two configuration memories of the flexible design. *)

val to_rom_rtl : ?encoding:encoding -> ?annotate:bool -> t -> Rtl.Design.t
(** Flexible structure with tables bound (the partially-evaluated Auto
    design's input). *)

val to_direct_rtl : ?encoding:encoding -> t -> Rtl.Design.t
