exception Parse_error of int * string

let fail line fmt = Format.kasprintf (fun m -> raise (Parse_error (line, m))) fmt

let tokenize line_text =
  String.split_on_char ' ' line_text
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_int lineno s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> v
  | Some _ -> fail lineno "negative value %s" s
  | None -> fail lineno "bad number %s" s

(* Pre-resolution instruction. *)
type raw_seq = Rnext | Rjump of string | Rdispatch of string

type raw_uop = { rctl : (string * int) list; rseq : raw_seq; rline : int }

let parse source =
  let lines = String.split_on_char '\n' source in
  let name = ref "prog" in
  let opcode_bits = ref 1 in
  let entry_label = ref None in
  let fields = ref [] in
  let raw_dispatch = ref [] in
  let labels : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let uops = ref [] in
  let strip_comment s =
    match String.index_opt s '#' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let add_label lineno l =
    if Hashtbl.mem labels l then fail lineno "duplicate label %s" l;
    Hashtbl.replace labels l (List.length !uops)
  in
  let parse_instruction lineno tokens =
    let rec split_at_semi acc = function
      | [] -> (List.rev acc, [])
      | ";" :: rest -> (List.rev acc, rest)
      | tok :: rest -> split_at_semi (tok :: acc) rest
    in
    let ctl_toks, seq_toks = split_at_semi [] tokens in
    let parse_assign tok =
      match String.index_opt tok '=' with
      | None -> fail lineno "expected FIELD=VALUE, got %s" tok
      | Some i ->
        let f = String.sub tok 0 i in
        let v = String.sub tok (i + 1) (String.length tok - i - 1) in
        if not (List.exists (fun (fd : Microcode.field) -> fd.fname = f) !fields)
        then fail lineno "unknown field %s" f;
        (f, parse_int lineno v)
    in
    let rctl = List.map parse_assign ctl_toks in
    let rseq =
      match seq_toks with
      | [] | [ "next" ] -> Rnext
      | [ "jump"; l ] -> Rjump l
      | [ "dispatch"; t ] -> Rdispatch t
      | toks -> fail lineno "bad sequencing: %s" (String.concat " " toks)
    in
    uops := { rctl; rseq; rline = lineno } :: !uops
  in
  List.iteri
    (fun i raw_line ->
      let lineno = i + 1 in
      let text = String.trim (strip_comment raw_line) in
      if text <> "" then begin
        match tokenize text with
        | [] -> ()
        | ".name" :: rest ->
          (match rest with
           | [ n ] -> name := n
           | _ -> fail lineno ".name expects one argument")
        | ".opcode_bits" :: rest ->
          (match rest with
           | [ v ] -> opcode_bits := parse_int lineno v
           | _ -> fail lineno ".opcode_bits expects one argument")
        | ".entry" :: rest ->
          (match rest with
           | [ l ] -> entry_label := Some l
           | _ -> fail lineno ".entry expects one label")
        | ".field" :: rest ->
          (match rest with
           | [ fname; w ] ->
             fields := !fields
                       @ [ { Microcode.fname; fwidth = parse_int lineno w;
                             onehot = false } ]
           | [ fname; w; "onehot" ] ->
             fields := !fields
                       @ [ { Microcode.fname; fwidth = parse_int lineno w;
                             onehot = true } ]
           | _ -> fail lineno ".field expects NAME WIDTH [onehot]")
        | ".dispatch" :: tname :: targets ->
          if targets = [] then fail lineno ".dispatch needs at least one target";
          raw_dispatch := !raw_dispatch @ [ (tname, targets, lineno) ]
        | first :: rest when String.length first > 1
                             && first.[String.length first - 1] = ':' ->
          add_label lineno (String.sub first 0 (String.length first - 1));
          if rest <> [] then parse_instruction lineno rest
        | tokens -> parse_instruction lineno tokens
      end)
    lines;
  let uops = Array.of_list (List.rev !uops) in
  if Array.length uops = 0 then fail 0 "no instructions";
  let resolve lineno l =
    match Hashtbl.find_opt labels l with
    | Some a -> a
    | None -> fail lineno "undefined label %s" l
  in
  let dispatch_names = List.map (fun (t, _, _) -> t) !raw_dispatch in
  let code =
    Array.map
      (fun r ->
        let seq =
          match r.rseq with
          | Rnext -> Microcode.Next
          | Rjump l -> Microcode.Jump (resolve r.rline l)
          | Rdispatch t ->
            (match List.find_index (String.equal t) dispatch_names with
             | Some i -> Microcode.Dispatch i
             | None -> fail r.rline "undefined dispatch table %s" t)
        in
        { Microcode.ctl = r.rctl; seq })
      uops
  in
  let dispatch =
    List.map
      (fun (tname, targets, lineno) ->
        let slots = 1 lsl !opcode_bits in
        if List.length targets > slots then
          fail lineno "dispatch table %s has more than %d targets" tname slots;
        let resolved = List.map (resolve lineno) targets in
        let last = List.nth resolved (List.length resolved - 1) in
        let arr =
          Array.init slots (fun i ->
              match List.nth_opt resolved i with
              | Some a -> a
              | None -> last)
        in
        (tname, arr))
      !raw_dispatch
  in
  let entry =
    match !entry_label with
    | None -> 0
    | Some l -> resolve 0 l
  in
  Microcode.make ~name:!name ~format:!fields ~dispatch
    ~opcode_bits:!opcode_bits ~entry code

let print (p : Microcode.program) =
  let buf = Buffer.create 256 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out ".name %s\n.opcode_bits %d\n" p.pname p.opcode_bits;
  if p.entry <> 0 then out ".entry l%d\n" p.entry;
  List.iter
    (fun (f : Microcode.field) ->
      out ".field %s %d%s\n" f.fname f.fwidth (if f.onehot then " onehot" else ""))
    p.format;
  List.iter
    (fun (tname, targets) ->
      out ".dispatch %s" tname;
      Array.iter (fun a -> out " l%d" a) targets;
      out "\n")
    p.dispatch;
  Array.iteri
    (fun a (u : Microcode.uop) ->
      out "l%d:\n " a;
      List.iter (fun (f, v) -> out " %s=%d" f v) u.ctl;
      (match u.seq with
       | Microcode.Next -> out " ; next"
       | Microcode.Jump t -> out " ; jump l%d" t
       | Microcode.Dispatch i ->
         let tname, _ = List.nth p.dispatch i in
         out " ; dispatch %s" tname);
      out "\n")
    p.code;
  Buffer.contents buf
