(** A higher-level controller specification language, compiled to microcode.

    The paper closes by asking what the *input* to the generator should be:
    "it may be possible to build a compiler that uses higher-level
    specifications to produce microcode for a given controller". This module
    is that compiler: a small structured control language — actions,
    sequencing, bounded repetition, opcode dispatch and field-condition
    branches — lowered to a {!Microcode.program} for the standard sequencer.

    Semantics:
    - {!const-Emit} issues one microinstruction with the given field values;
    - {!const-Seq} runs blocks back to back;
    - {!const-Repeat} unrolls its body a constant number of times (the
      microcode idiom for line-size-dependent timing: the repetition count
      typically comes from a generator parameter such as beats-per-line);
    - {!const-If_op} branches on the external opcode through the dispatch
      table (so it may only appear as the program's outermost form);
    - {!const-Loop} jumps back to the top-level dispatch point.

    The compiler performs label layout, emits one dispatch table, and
    reuses duplicate opcode bodies. *)

type action = (string * int) list
(** Field assignments; unassigned fields are zero. *)

type t =
  | Emit of action
  | Seq of t list
  | Repeat of int * t
  | Done
      (** return to the dispatch point (compiled as a jump to the entry) *)

type spec = {
  name : string;
  fields : Microcode.field list;
  opcode_bits : int;
  handlers : (int * t) list;
      (** opcode value → behaviour; unlisted opcodes idle *)
}

exception Compile_error of string

val compile : spec -> Microcode.program
(** @raise Compile_error on unknown fields, out-of-range values or
    out-of-range opcodes. *)

val instruction_count : t -> int
(** Microinstructions the behaviour expands to (after unrolling). *)
