type t = {
  name : string;
  width : int;
  entries : Bitvec.t array;
}

let make ~name ~width entries =
  if Array.length entries = 0 then invalid_arg "Truth_table.make: empty";
  Array.iter
    (fun v ->
      if Bitvec.width v <> width then
        invalid_arg "Truth_table.make: entry width mismatch")
    entries;
  { name; width; entries }

let of_fun ~name ~width ~depth f =
  make ~name ~width (Array.init depth f)

let depth t = Array.length t.entries

let addr_bits t =
  let rec bits n acc = if n <= 1 then max acc 1 else bits ((n + 1) / 2) (acc + 1) in
  bits (depth t) 0

let eval t a =
  if a < 0 then invalid_arg "Truth_table.eval: negative address";
  if a < depth t then t.entries.(a) else Bitvec.zero t.width

let table_name t = t.name ^ "_mem"

let config_binding t = (table_name t, t.entries)

let base_design t ~storage =
  let b = Rtl.Builder.create t.name in
  let addr = Rtl.Builder.input b "addr" (addr_bits t) in
  (match storage with
   | `Config ->
     Rtl.Builder.config_table b (table_name t) ~width:t.width ~depth:(depth t)
   | `Rom -> Rtl.Builder.rom b (table_name t) ~width:t.width t.entries);
  Rtl.Builder.output b "data" (Rtl.Builder.read_table b (table_name t) addr);
  Rtl.Builder.finish b

let to_flexible_rtl t = base_design t ~storage:`Config
let to_rom_rtl t = base_design t ~storage:`Rom

let to_sop_rtl t =
  let b = Rtl.Builder.create (t.name ^ "_sop") in
  let k = addr_bits t in
  let addr = Rtl.Builder.input b "addr" k in
  (* Canonical SOP per output bit: OR of full minterms of the ON-set. *)
  let minterm a =
    let literal i =
      let bit = Rtl.Expr.bit addr i in
      if a lsr i land 1 = 1 then bit else Rtl.Expr.not_ bit
    in
    List.fold_left
      (fun acc i -> Rtl.Expr.and_ acc (literal i))
      (literal 0)
      (List.init (k - 1) (fun i -> i + 1))
  in
  let out_bit j =
    let ons =
      List.filter
        (fun a -> a < depth t && Bitvec.get t.entries.(a) j)
        (List.init (1 lsl k) Fun.id)
    in
    match ons with
    | [] -> Rtl.Expr.of_int ~width:1 0
    | first :: rest ->
      List.fold_left
        (fun acc a -> Rtl.Expr.or_ acc (minterm a))
        (minterm first) rest
  in
  let bits = List.init t.width out_bit in
  Rtl.Builder.output b "data" (Rtl.Expr.concat (List.rev bits));
  Rtl.Builder.finish b
