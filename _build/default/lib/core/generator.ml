type style =
  | Flexible
  | Flexible_annotated
  | Direct

let table_design tt = function
  | Flexible | Flexible_annotated -> Truth_table.to_flexible_rtl tt
  | Direct -> Truth_table.to_sop_rtl tt

let fsm_design fsm = function
  | Flexible -> Fsm_ir.to_flexible_rtl ~annotate:false fsm
  | Flexible_annotated -> Fsm_ir.to_flexible_rtl ~annotate:true fsm
  | Direct -> Fsm_ir.to_direct_rtl fsm

let sequencer_design ?(registered_outputs = false) p = function
  | Flexible -> Microcode.to_rtl ~registered_outputs ~storage:`Config p
  | Flexible_annotated ->
    Microcode.to_rtl ~registered_outputs ~annotate:true ~storage:`Config p
  | Direct -> Microcode.to_rtl ~registered_outputs ~storage:`Rom p

let specialize = Synth.Partial_eval.bind_tables

let fsm_manual_annotation fsm =
  Rtl.Annot.fsm_state_vector "state" (Fsm_ir.reachable_codes fsm)

let program_manual_annotations (p : Microcode.program) =
  let upc =
    Rtl.Annot.value_set "upc"
      (List.map
         (Bitvec.of_int ~width:(Microcode.upc_bits p))
         (Microcode.reachable_addrs p))
  in
  let field (f : Microcode.field) =
    Rtl.Annot.value_set (f.fname ^ "_r")
      (List.map
         (Bitvec.of_int ~width:f.fwidth)
         (Microcode.field_value_set p f.fname))
  in
  upc :: List.map field p.format
