(** A tiny textual micro-assembler.

    The paper's conclusion is that a generator "only needs to produce the
    table of bits", letting design flows keep their existing
    microprogramming tools — this module is that tool. Example source:

    {v
    # DMA line-copy engine
    .name dma
    .opcode_bits 2
    .field cmd 3
    .field pipe_sel 4 onehot
    .dispatch optable idle copy fill idle

    idle:
      ; dispatch optable
    copy:
      cmd=1 pipe_sel=0b0001 ; next
      cmd=2 pipe_sel=0b0010 ; jump idle
    fill:
      cmd=3 ; jump idle
    v}

    Grammar, line by line (['#'] starts a comment):
    - [.name IDENT], [.opcode_bits INT], [.entry LABEL] — header directives;
    - [.field NAME WIDTH [onehot]] — a control field;
    - [.dispatch NAME LABEL...] — a dispatch table; missing opcode slots
      repeat the last label;
    - [LABEL:] — attaches to the next instruction;
    - [FIELD=VALUE ... ; SEQ] — one microinstruction, where [SEQ] is
      [next], [jump LABEL] or [dispatch TABLE]; the [; SEQ] part defaults
      to [next]; values accept decimal, [0x...] and [0b...]. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : string -> Microcode.program
(** @raise Parse_error on malformed source. *)

val print : Microcode.program -> string
(** Render a program back to assembler source (labels are synthesized as
    [l<addr>]); [parse (print p)] is equivalent to [p] up to label names. *)
