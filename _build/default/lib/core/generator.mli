(** The chip-generator façade.

    Ties the controller IRs to the synthesis flow the way the paper
    envisions a generator working:

    + pick a controller IR (truth table / FSM / microprogram);
    + emit either the *flexible* table-based RTL (configuration memories,
      optionally with the generator's knowledge attached as annotations) or
      the *direct* RTL;
    + when the configuration is known, {!specialize} the flexible design
      (partial evaluation — tables become ROMs) and let the synthesis flow
      fold it;
    + for *Manual*-grade results, add {!val-fsm_manual_annotation} /
      {!val-program_manual_annotations} — the reachability facts a tool
      cannot currently derive across flop boundaries. *)

type style =
  | Flexible            (** configuration memories, no annotations *)
  | Flexible_annotated  (** + generator-emitted state/value-set annotations *)
  | Direct              (** hand-written style (SOP / case statements) *)

val table_design : Truth_table.t -> style -> Rtl.Design.t
val fsm_design : Fsm_ir.t -> style -> Rtl.Design.t

val sequencer_design :
  ?registered_outputs:bool -> Microcode.program -> style -> Rtl.Design.t
(** [Direct] for a microprogram means the ROM-bound structure (the paper
    treats the specialized sequencer as the direct form). *)

val specialize : Rtl.Design.t -> (string * Bitvec.t array) list -> Rtl.Design.t
(** Partial evaluation entry point: bind configuration memories. *)

val fsm_manual_annotation : Fsm_ir.t -> Rtl.Annot.t
(** State vector restricted to *reachable* states — what the paper's manual
    optimization exploited. *)

val program_manual_annotations : Microcode.program -> Rtl.Annot.t list
(** Reachable-microaddress set for the µPC plus value sets for every control
    field register (requires the registered-outputs sequencer). *)
