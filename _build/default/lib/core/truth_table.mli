(** Truth-table IR: arbitrary combinational functions as tables.

    The simplest controller building block (Section II of the paper): a
    function with [addr_bits] inputs and [width] outputs stored as a table
    of [depth] entries. Three hardware realizations:

    - {!to_flexible_rtl}: the table lives in a *configuration memory*
      (programmable bits + read mux tree) — the reconfigurable design.
    - {!to_rom_rtl}: the same structure with the contents known — what the
      flexible design becomes after partial evaluation.
    - {!to_sop_rtl}: the "direct" implementation the paper compares against:
      one sum-of-products assignment per output bit.

    Addresses beyond [depth] (when the depth is not a power of two) read
    zero. *)

type t = private {
  name : string;
  width : int;
  entries : Bitvec.t array;
}

val make : name:string -> width:int -> Bitvec.t array -> t
(** @raise Invalid_argument on empty contents or width mismatch. *)

val of_fun : name:string -> width:int -> depth:int -> (int -> Bitvec.t) -> t

val depth : t -> int
val addr_bits : t -> int

val eval : t -> int -> Bitvec.t
(** [eval t a] — entry [a], or zero beyond the depth. *)

val to_flexible_rtl : t -> Rtl.Design.t
(** Ports: input [addr], output [data]. The table is a [Config] memory named
    after the truth table; bind it with {!config_binding} at partial
    evaluation time. *)

val config_binding : t -> string * Bitvec.t array
(** The (table name, contents) pair for {!Synth.Partial_eval.bind_tables}. *)

val to_rom_rtl : t -> Rtl.Design.t
(** The flexible design with contents already bound. *)

val to_sop_rtl : t -> Rtl.Design.t
(** Direct style: canonical sum-of-products per output bit (the synthesis
    tool is expected to minimize it, as in the paper). *)
