type field = { fname : string; fwidth : int; onehot : bool }

type seqctl =
  | Next
  | Jump of int
  | Dispatch of int

type uop = { ctl : (string * int) list; seq : seqctl }

type program = {
  pname : string;
  format : field list;
  code : uop array;
  dispatch : (string * int array) list;
  opcode_bits : int;
  entry : int;
}

let make ~name ~format ?(dispatch = []) ?(opcode_bits = 1) ?(entry = 0) code =
  if Array.length code = 0 then invalid_arg "Microcode.make: empty program";
  if opcode_bits < 1 || opcode_bits > 12 then
    invalid_arg "Microcode.make: bad opcode width";
  if entry < 0 || entry >= Array.length code then
    invalid_arg "Microcode.make: bad entry";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if f.fwidth < 1 || f.fwidth > 30 then
        invalid_arg ("Microcode.make: bad width for field " ^ f.fname);
      if Hashtbl.mem seen f.fname then
        invalid_arg ("Microcode.make: duplicate field " ^ f.fname);
      Hashtbl.add seen f.fname ())
    format;
  let check_uop (u : uop) =
    List.iter
      (fun (fname, v) ->
        match List.find_opt (fun f -> f.fname = fname) format with
        | None -> invalid_arg ("Microcode.make: unknown field " ^ fname)
        | Some f ->
          if v < 0 || v lsr f.fwidth <> 0 then
            invalid_arg ("Microcode.make: value out of range for " ^ fname))
      u.ctl;
    match u.seq with
    | Next -> ()
    | Jump a ->
      if a < 0 || a >= Array.length code then
        invalid_arg "Microcode.make: jump target out of range"
    | Dispatch i ->
      if i < 0 || i >= max 1 (List.length dispatch) then
        invalid_arg "Microcode.make: dispatch table index out of range"
  in
  Array.iter check_uop code;
  List.iter
    (fun (tname, targets) ->
      if Array.length targets <> 1 lsl opcode_bits then
        invalid_arg ("Microcode.make: dispatch table size mismatch: " ^ tname);
      Array.iter
        (fun a ->
          if a < 0 || a >= Array.length code then
            invalid_arg ("Microcode.make: dispatch target out of range: " ^ tname))
        targets)
    dispatch;
  { pname = name; format; code; dispatch; opcode_bits; entry }

let depth p = Array.length p.code

let upc_bits p =
  let rec bits n acc = if n <= 1 then max acc 1 else bits ((n + 1) / 2) (acc + 1) in
  bits (depth p) 0

let ctl_width p = List.fold_left (fun acc f -> acc + f.fwidth) 0 p.format

let word_width p = ctl_width p + 2 + upc_bits p

let field_value _p (u : uop) fname =
  Option.value ~default:0 (List.assoc_opt fname u.ctl)

let seq_mode = function Next -> 0 | Jump _ -> 1 | Dispatch _ -> 2
let seq_target = function Next -> 0 | Jump a -> a | Dispatch i -> i

let encode_word p a =
  let w = word_width p in
  if a >= depth p then Bitvec.zero w
  else begin
    let u = p.code.(a) in
    let ctl_parts =
      List.map
        (fun f -> Bitvec.of_int ~width:f.fwidth (field_value p u f.fname))
        p.format
    in
    let mode = Bitvec.of_int ~width:2 (seq_mode u.seq) in
    let target = Bitvec.of_int ~width:(upc_bits p) (seq_target u.seq) in
    (* Concat is MSB-first; field order is LSB-first. *)
    Bitvec.concat (target :: mode :: List.rev ctl_parts)
  end

(* Addresses beyond the code read the all-zero word (mode = next), exactly
   like the generated hardware's out-of-range table read. The counter wraps
   modulo 2^upc_bits, matching the adder. *)
let uop_at p a = if a < depth p then p.code.(a) else { ctl = []; seq = Next }

(* Control-fields-only word (no sequencing), LSB-first field order. *)
let encode_ctl p u =
  Bitvec.concat
    (List.rev_map
       (fun f -> Bitvec.of_int ~width:f.fwidth (field_value p u f.fname))
       p.format)

type style = [ `Horizontal | `Vertical ]

(* The vertical decode memory's entry 0 must be the all-zero control word so
   that out-of-range microcode reads (index 0) behave like the horizontal
   zero word. *)
let decode_entries p =
  let zero = encode_ctl p { ctl = []; seq = Next } in
  let seen = Hashtbl.create 16 in
  Hashtbl.replace seen zero ();
  let words = ref [ zero ] in
  Array.iter
    (fun u ->
      let w = encode_ctl p u in
      if not (Hashtbl.mem seen w) then begin
        Hashtbl.replace seen w ();
        words := w :: !words
      end)
    p.code;
  Array.of_list (List.rev !words)

let distinct_control_words p = Array.length (decode_entries p)

let index_bits p =
  let rec bits n acc = if n <= 1 then max acc 1 else bits ((n + 1) / 2) (acc + 1) in
  bits (distinct_control_words p) 0

let step p ~upc ~op =
  let u = uop_at p upc in
  let fields = List.map (fun f -> (f.fname, field_value p u f.fname)) p.format in
  let next =
    match u.seq with
    | Next -> (upc + 1) mod (1 lsl upc_bits p)
    | Jump a -> a
    | Dispatch i ->
      let _, targets = List.nth p.dispatch i in
      targets.(op land ((1 lsl p.opcode_bits) - 1))
  in
  (fields, next)

let run p ~ops =
  let rec go upc = function
    | [] -> []
    | op :: rest ->
      let fields, upc' = step p ~upc ~op in
      fields :: go upc' rest
  in
  go p.entry ops

let reachable_addrs p =
  let space = 1 lsl upc_bits p in
  let seen = Array.make space false in
  let rec visit a =
    if not seen.(a) then begin
      seen.(a) <- true;
      match (uop_at p a).seq with
      | Next -> visit ((a + 1) mod space)
      | Jump target -> visit target
      | Dispatch i ->
        let _, targets = List.nth p.dispatch i in
        Array.iter visit targets
    end
  in
  visit p.entry;
  List.filter (fun a -> seen.(a)) (List.init space Fun.id)

let field_value_set p fname =
  if not (List.exists (fun f -> f.fname = fname) p.format) then
    invalid_arg ("Microcode.field_value_set: unknown field " ^ fname);
  let values =
    List.map (fun a -> field_value p (uop_at p a) fname) (reachable_addrs p)
  in
  List.sort_uniq Stdlib.compare (0 :: values)

let umem_name p = p.pname ^ "_umem"
let udec_name p = p.pname ^ "_udec"
let dt_name p tname = Printf.sprintf "%s_dt_%s" p.pname tname

(* Vertical microcode word: [decode index][mode][target], LSB-first. *)
let encode_word_vertical p =
  let entries = decode_entries p in
  let index_of = Hashtbl.create 16 in
  Array.iteri (fun i w -> Hashtbl.replace index_of w i) entries;
  fun a ->
    let ib = index_bits p in
    let w = ib + 2 + upc_bits p in
    if a >= depth p then Bitvec.zero w
    else begin
      let u = p.code.(a) in
      let idx = Hashtbl.find index_of (encode_ctl p u) in
      Bitvec.concat
        [
          Bitvec.of_int ~width:(upc_bits p) (seq_target u.seq);
          Bitvec.of_int ~width:2 (seq_mode u.seq);
          Bitvec.of_int ~width:ib idx;
        ]
    end

let config_bindings ?(style = `Horizontal) p =
  let umem =
    match style with
    | `Horizontal -> [ (umem_name p, Array.init (depth p) (encode_word p)) ]
    | `Vertical ->
      [
        (umem_name p, Array.init (depth p) (encode_word_vertical p));
        (udec_name p, decode_entries p);
      ]
  in
  let dts =
    List.map
      (fun (tname, targets) ->
        ( dt_name p tname,
          Array.map (Bitvec.of_int ~width:(upc_bits p)) targets ))
      p.dispatch
  in
  umem @ dts

let to_rtl ?(style = `Horizontal) ?(registered_outputs = false)
    ?(annotate = false) ~storage p =
  if style = `Vertical && p.format = [] then
    invalid_arg "Microcode.to_rtl: vertical style needs control fields";
  let b = Rtl.Builder.create p.pname in
  let a = upc_bits p in
  let op = Rtl.Builder.input b "op" p.opcode_bits in
  let upc =
    Rtl.Builder.reg_declare b "upc" ~width:a ~reset:Rtl.Design.Sync_reset
      ~init:(Bitvec.of_int ~width:a p.entry)
  in
  let declare_table (name, contents) =
    match storage with
    | `Config ->
      Rtl.Builder.config_table b name ~width:(Bitvec.width contents.(0))
        ~depth:(Array.length contents)
    | `Rom -> Rtl.Builder.rom b name ~width:(Bitvec.width contents.(0)) contents
  in
  List.iter declare_table (config_bindings ~style p);
  let word = Rtl.Builder.net b "uword" (Rtl.Builder.read_table b (umem_name p) upc) in
  (* Position of the sequencing fields within the memory word, and the
     control word the field slices read from. *)
  let seq_lo, ctl_word =
    match style with
    | `Horizontal -> (ctl_width p, word)
    | `Vertical ->
      let ib = index_bits p in
      let idx = Rtl.Expr.slice word ~hi:(ib - 1) ~lo:0 in
      ( ib,
        Rtl.Builder.net b "udec_word" (Rtl.Builder.read_table b (udec_name p) idx) )
  in
  let mode = Rtl.Expr.slice word ~hi:(seq_lo + 1) ~lo:seq_lo in
  let target = Rtl.Expr.slice word ~hi:(seq_lo + 2 + a - 1) ~lo:(seq_lo + 2) in
  let incremented = Rtl.Expr.add upc (Rtl.Expr.of_int ~width:a 1) in
  let dispatch_value =
    match p.dispatch with
    | [] -> incremented
    | [ (tname, _) ] -> Rtl.Builder.read_table b (dt_name p tname) op
    | tables ->
      (* The target field selects the dispatch table. *)
      List.fold_right
        (fun (idx, (tname, _)) rest ->
          Rtl.Expr.mux
            (Rtl.Expr.eq_const target idx)
            (Rtl.Builder.read_table b (dt_name p tname) op)
            rest)
        (List.mapi (fun i t -> (i, t)) tables)
        incremented
  in
  let upc_next =
    Rtl.Expr.select mode
      [ (0, incremented); (1, target); (2, dispatch_value) ]
      ~default:incremented
  in
  Rtl.Builder.reg_connect b "upc" upc_next;
  (* Control field outputs, optionally through pipeline registers. *)
  let _ =
    List.fold_left
      (fun lo f ->
        let raw = Rtl.Expr.slice ctl_word ~hi:(lo + f.fwidth - 1) ~lo in
        let driver =
          if registered_outputs then
            Rtl.Builder.reg b (f.fname ^ "_r") ~reset:Rtl.Design.Sync_reset ~d:raw
          else raw
        in
        Rtl.Builder.output b f.fname driver;
        if annotate && registered_outputs then begin
          let values =
            List.map
              (Bitvec.of_int ~width:f.fwidth)
              (field_value_set p f.fname)
          in
          Rtl.Builder.annotate b
            (Rtl.Annot.value_set (f.fname ^ "_r") values)
        end;
        lo + f.fwidth)
      0 p.format
  in
  if annotate then begin
    let upc_values = List.map (Bitvec.of_int ~width:a) (reachable_addrs p) in
    Rtl.Builder.annotate b (Rtl.Annot.value_set "upc" upc_values)
  end;
  Rtl.Builder.finish b
