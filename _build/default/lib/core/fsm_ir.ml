type t = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  states : string array;
  reset : int;
  next : int array array;
  out : Bitvec.t array array;
}

let make ~name ~num_inputs ~num_outputs ~states ~reset ~next ~out =
  let s = Array.length states in
  if s = 0 then invalid_arg "Fsm_ir.make: no states";
  if num_inputs < 1 || num_inputs > 16 then
    invalid_arg "Fsm_ir.make: unsupported input count";
  if num_outputs < 1 then invalid_arg "Fsm_ir.make: no outputs";
  if reset < 0 || reset >= s then invalid_arg "Fsm_ir.make: bad reset state";
  let names = Hashtbl.create s in
  Array.iter
    (fun n ->
      if Hashtbl.mem names n then invalid_arg "Fsm_ir.make: duplicate state name";
      Hashtbl.add names n ())
    states;
  let cols = 1 lsl num_inputs in
  if Array.length next <> s || Array.length out <> s then
    invalid_arg "Fsm_ir.make: table row count mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg "Fsm_ir.make: next-state column count mismatch";
      Array.iter
        (fun target ->
          if target < 0 || target >= s then
            invalid_arg "Fsm_ir.make: bad transition target")
        row)
    next;
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg "Fsm_ir.make: output column count mismatch";
      Array.iter
        (fun v ->
          if Bitvec.width v <> num_outputs then
            invalid_arg "Fsm_ir.make: output width mismatch")
        row)
    out;
  { name; num_inputs; num_outputs; states; reset; next; out }

let of_moore ~name ~num_inputs ~num_outputs ~states ~reset ~next ~moore_out =
  let cols = 1 lsl num_inputs in
  let out = Array.map (fun v -> Array.make cols v) moore_out in
  make ~name ~num_inputs ~num_outputs ~states ~reset ~next ~out

let num_states t = Array.length t.states

type encoding =
  | Binary
  | Gray
  | One_hot

let state_bits t =
  let rec bits n acc = if n <= 1 then max acc 1 else bits ((n + 1) / 2) (acc + 1) in
  bits (num_states t) 0

let state_bits_with enc t =
  match enc with
  | Binary | Gray -> state_bits t
  | One_hot -> num_states t

let encode_with enc t s =
  match enc with
  | Binary -> Bitvec.of_int ~width:(state_bits t) s
  | Gray -> Bitvec.of_int ~width:(state_bits t) (s lxor (s lsr 1))
  | One_hot -> Bitvec.one_hot ~width:(num_states t) s

let encode t s = encode_with Binary t s

let state_codes_with enc t = List.init (num_states t) (encode_with enc t)

let state_codes t = state_codes_with Binary t

let reachable t =
  let seen = Array.make (num_states t) false in
  let rec visit s =
    if not seen.(s) then begin
      seen.(s) <- true;
      Array.iter visit t.next.(s)
    end
  in
  visit t.reset;
  List.filter (fun s -> seen.(s)) (List.init (num_states t) Fun.id)

let reachable_codes t = List.map (encode t) (reachable t)

let reachable_with t ~inputs =
  let seen = Array.make (num_states t) false in
  let rec visit s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter (fun i -> visit t.next.(s).(i)) inputs
    end
  in
  visit t.reset;
  List.filter (fun s -> seen.(s)) (List.init (num_states t) Fun.id)

let step t ~state ~input = (t.next.(state).(input), t.out.(state).(input))

let simulate t inputs =
  let rec go state = function
    | [] -> []
    | i :: rest ->
      let state', o = step t ~state ~input:i in
      o :: go state' rest
  in
  go t.reset inputs

let input_support t s =
  let cols = 1 lsl t.num_inputs in
  let matters b =
    let rec scan i =
      if i >= cols then false
      else begin
        let j = i lxor (1 lsl b) in
        if t.next.(s).(i) <> t.next.(s).(j)
           || not (Bitvec.equal t.out.(s).(i) t.out.(s).(j))
        then true
        else scan (i + 1)
      end
    in
    scan 0
  in
  List.filter matters (List.init t.num_inputs Fun.id)

(* Table layout of the flexible implementation: address = {state, inputs}
   (inputs are the low bits), entry = next code / output word. Entries whose
   state field is not a defined state read zero. Moore machines (outputs
   independent of the inputs) store a compact state-indexed output table —
   the generator knows the machine is Moore and spends config bits
   accordingly. *)

let is_moore t =
  Array.for_all
    (fun row -> Array.for_all (fun v -> Bitvec.equal v row.(0)) row)
    t.out

let check_table_encoding = function
  | Binary | Gray -> ()
  | One_hot ->
    invalid_arg
      "Fsm_ir: one-hot encoding addresses an exponentially deep table; use \
       the direct style for one-hot machines"

let table_depth t = 1 lsl (state_bits t + t.num_inputs)

let ns_table_name t = t.name ^ "_ns_mem"
let out_table_name t = t.name ^ "_out_mem"

let config_bindings ?(encoding = Binary) t =
  check_table_encoding encoding;
  let k = state_bits t in
  let cols = 1 lsl t.num_inputs in
  (* Tables are addressed by the state *code*; invert the encoding. *)
  let index_of_code = Hashtbl.create (num_states t) in
  List.iteri
    (fun s code -> Hashtbl.replace index_of_code (Bitvec.to_int code) s)
    (state_codes_with encoding t);
  let entry_of a =
    let code = a lsr t.num_inputs and i = a land (cols - 1) in
    match Hashtbl.find_opt index_of_code code with
    | Some s -> Some (s, i)
    | None -> None
  in
  let ns =
    Array.init (table_depth t) (fun a ->
        match entry_of a with
        | Some (s, i) -> encode_with encoding t t.next.(s).(i)
        | None -> Bitvec.zero k)
  in
  let out =
    if is_moore t then
      Array.init (1 lsl k) (fun code ->
          match Hashtbl.find_opt index_of_code code with
          | Some s -> t.out.(s).(0)
          | None -> Bitvec.zero t.num_outputs)
    else
      Array.init (table_depth t) (fun a ->
          match entry_of a with
          | Some (s, i) -> t.out.(s).(i)
          | None -> Bitvec.zero t.num_outputs)
  in
  [ (ns_table_name t, ns); (out_table_name t, out) ]

let annotation ?(provenance = Rtl.Annot.Generator) ~encoding t =
  Rtl.Annot.fsm_state_vector ~provenance "state" (state_codes_with encoding t)

let flexible_rtl ~encoding ~storage ~annotate t =
  check_table_encoding encoding;
  let b = Rtl.Builder.create t.name in
  let k = state_bits_with encoding t in
  let inp = Rtl.Builder.input b "in" t.num_inputs in
  let state =
    Rtl.Builder.reg_declare b "state" ~width:k ~reset:Rtl.Design.Sync_reset
      ~init:(encode_with encoding t t.reset)
  in
  let bindings = config_bindings ~encoding t in
  List.iter
    (fun (name, contents) ->
      match storage with
      | `Config ->
        Rtl.Builder.config_table b name ~width:(Bitvec.width contents.(0))
          ~depth:(Array.length contents)
      | `Rom ->
        Rtl.Builder.rom b name ~width:(Bitvec.width contents.(0)) contents)
    bindings;
  let addr = Rtl.Expr.concat [ state; inp ] in
  Rtl.Builder.reg_connect b "state"
    (Rtl.Builder.read_table b (ns_table_name t) addr);
  let out_addr = if is_moore t then state else addr in
  Rtl.Builder.output b "out" (Rtl.Builder.read_table b (out_table_name t) out_addr);
  if annotate then Rtl.Builder.annotate b (annotation ~encoding t);
  Rtl.Builder.finish b

let to_flexible_rtl ?(encoding = Binary) ?(annotate = false) t =
  flexible_rtl ~encoding ~storage:`Config ~annotate t

let to_rom_rtl ?(encoding = Binary) ?(annotate = false) t =
  flexible_rtl ~encoding ~storage:`Rom ~annotate t

(* Shannon tree over the inputs a state actually uses — what a designer's
   nested if/case would look like. *)
let shannon_tree inp support value =
  let rec go assigned = function
    | [] -> value assigned
    | b :: rest ->
      Rtl.Expr.mux (Rtl.Expr.bit inp b)
        (go (assigned lor (1 lsl b)) rest)
        (go assigned rest)
  in
  go 0 support

let to_direct_rtl ?(encoding = Binary) t =
  let b = Rtl.Builder.create (t.name ^ "_direct") in
  let k = state_bits_with encoding t in
  let inp = Rtl.Builder.input b "in" t.num_inputs in
  let state =
    Rtl.Builder.reg_declare b "state" ~width:k ~reset:Rtl.Design.Sync_reset
      ~init:(encode_with encoding t t.reset)
  in
  let state_hit s =
    (* One-hot case items test a single bit, as a designer would write. *)
    match encoding with
    | One_hot -> Rtl.Expr.bit state s
    | Binary | Gray ->
      Rtl.Expr.eq state (Rtl.Expr.const (encode_with encoding t s))
  in
  let per_state f default =
    List.fold_right
      (fun s rest ->
        let support = input_support t s in
        Rtl.Expr.mux (state_hit s) (shannon_tree inp support (f s)) rest)
      (List.init (num_states t) Fun.id)
      default
  in
  let next_expr =
    per_state
      (fun s i -> Rtl.Expr.const (encode_with encoding t t.next.(s).(i)))
      (Rtl.Expr.const (encode_with encoding t t.reset))
  in
  let out_expr =
    per_state
      (fun s i -> Rtl.Expr.const t.out.(s).(i))
      (Rtl.Expr.of_int ~width:t.num_outputs 0)
  in
  Rtl.Builder.reg_connect b "state" next_expr;
  Rtl.Builder.output b "out" out_expr;
  Rtl.Builder.annotate b
    (annotation ~provenance:Rtl.Annot.Tool_detected ~encoding t);
  Rtl.Builder.finish b
