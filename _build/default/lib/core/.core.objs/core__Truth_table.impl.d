lib/core/truth_table.ml: Array Bitvec Fun List Rtl
