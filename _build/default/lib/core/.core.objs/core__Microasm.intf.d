lib/core/microasm.mli: Microcode
