lib/core/generator.mli: Bitvec Fsm_ir Microcode Rtl Truth_table
