lib/core/microcode.mli: Bitvec Rtl
