lib/core/ctrl_spec.ml: Array Format Hashtbl List Microcode Option
