lib/core/generator.ml: Bitvec Fsm_ir List Microcode Rtl Synth Truth_table
