lib/core/microcode.ml: Array Bitvec Fun Hashtbl List Option Printf Rtl Stdlib
