lib/core/microasm.ml: Array Buffer Format Hashtbl List Microcode Printf String
