lib/core/fsm_ir.mli: Bitvec Rtl
