lib/core/truth_table.mli: Bitvec Rtl
