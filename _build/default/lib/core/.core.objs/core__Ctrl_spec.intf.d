lib/core/ctrl_spec.mli: Microcode
