lib/core/fsm_ir.ml: Array Bitvec Fun Hashtbl List Rtl
