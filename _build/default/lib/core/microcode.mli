(** Microcode IR: horizontal microinstruction formats, microprograms and
    their sequencer hardware (Section II-B, Fig. 3).

    A format is a list of named control fields (horizontal microcode:
    independent subfields driving different units, possibly one-hot).
    Sequencing is the paper's: the expected transition is the increment of
    the microprogram counter; jumps are flagged in the word, and dispatches
    go through dedicated (small) dispatch tables indexed by an external
    opcode.

    Microcode word layout (LSB first): control fields in format order, then
    a 2-bit sequencing mode (0 = next, 1 = jump, 2 = dispatch), then the
    target field (jump address, or dispatch-table index).

    The generated hardware reads the word from a configuration memory
    ([`Config]) or a ROM ([`Rom]); with [registered_outputs] every control
    field goes through a pipeline register before its output port — which is
    where the paper's post-flop state-propagation problem (and the value of
    generator annotations) shows up. *)

type field = { fname : string; fwidth : int; onehot : bool }

type seqctl =
  | Next
  | Jump of int          (** absolute microprogram address *)
  | Dispatch of int      (** dispatch-table index *)

type uop = { ctl : (string * int) list; seq : seqctl }
(** Control fields not listed default to zero. *)

type program = {
  pname : string;
  format : field list;
  code : uop array;
  dispatch : (string * int array) list;
      (** table name → target address per opcode value (length
          [2^opcode_bits]) *)
  opcode_bits : int;
  entry : int;
}

val make :
  name:string ->
  format:field list ->
  ?dispatch:(string * int array) list ->
  ?opcode_bits:int ->
  ?entry:int ->
  uop array ->
  program
(** Validates: unique field names, field values in range, jump/dispatch
    targets in range, dispatch tables sized [2^opcode_bits]. [opcode_bits]
    defaults to 1; [entry] to 0. *)

val word_width : program -> int
val upc_bits : program -> int
val depth : program -> int

val field_value : program -> uop -> string -> int
(** Value of a field in a microinstruction (0 when unlisted). *)

val encode_word : program -> int -> Bitvec.t
(** The memory word at an address (zero beyond the code). *)

(** {1 Reference semantics} *)

val step : program -> upc:int -> op:int -> (string * int) list * int
(** Control field values issued at [upc], and the next microprogram counter.
    Addresses beyond the code read the all-zero word and increment wraps
    modulo [2^upc_bits] — exactly the generated hardware's behaviour. *)

val run : program -> ops:int list -> (string * int) list list
(** Field-value trace from [entry] under an opcode stream. *)

(** {1 Generator knowledge} *)

val reachable_addrs : program -> int list
(** Microprogram addresses reachable from [entry], ascending. *)

val field_value_set : program -> string -> int list
(** Distinct values the field takes across reachable microinstructions
    (always includes 0, the pipeline registers' reset value). *)

(** {1 Hardware generation}

    Two microcode store organizations, matching the paper's Section II-B
    horizontal/vertical discussion:
    - [`Horizontal] (default): every microinstruction stores its control
      fields directly — wide words, no decode logic;
    - [`Vertical]: the microcode memory stores a compact index into a
      separate decode memory holding the program's distinct control words —
      "efficiently encoded but difficult to read", and the decode adds a
      level of table lookup. Sequencing (mode/target) stays horizontal in
      both.

    The two organizations are behaviourally identical; the geometry of the
    vertical one (index width, decode depth) is derived from the program
    that acts as geometry donor. *)

type style = [ `Horizontal | `Vertical ]

val distinct_control_words : program -> int
(** Distinct control-field combinations across the whole memory (including
    the all-zero padding word). *)

val to_rtl :
  ?style:style ->
  ?registered_outputs:bool ->
  ?annotate:bool ->
  storage:[ `Config | `Rom ] ->
  program ->
  Rtl.Design.t
(** Ports: input [op] ([opcode_bits] wide); one output per control field,
    named after it. [annotate] emits generator value-set annotations on the
    microprogram counter and (when [registered_outputs]) on each field
    register. *)

val config_bindings : ?style:style -> program -> (string * Bitvec.t array) list
(** Contents of the microcode memory, decode memory (vertical only) and
    dispatch tables, for partial evaluation of the [`Config] variant. Must
    use the same [style] as {!to_rtl}. *)
