type action = (string * int) list

type t =
  | Emit of action
  | Seq of t list
  | Repeat of int * t
  | Done

type spec = {
  name : string;
  fields : Microcode.field list;
  opcode_bits : int;
  handlers : (int * t) list;
}

exception Compile_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Compile_error m)) fmt

let rec instruction_count = function
  | Emit _ -> 1
  | Seq ts -> List.fold_left (fun acc t -> acc + instruction_count t) 0 ts
  | Repeat (n, body) -> n * instruction_count body
  | Done -> 1

let check_action spec action =
  List.iter
    (fun (fname, v) ->
      match List.find_opt (fun (f : Microcode.field) -> f.fname = fname) spec.fields with
      | None -> fail "unknown field %s" fname
      | Some f ->
        if v < 0 || v lsr f.fwidth <> 0 then
          fail "value %d out of range for field %s" v fname)
    action

(* The program shape: address 0 is the dispatch point; each distinct handler
   body follows. Handlers ending without [Done] fall back to the dispatch
   point with an explicit jump. *)
let compile spec =
  if spec.opcode_bits < 1 then fail "opcode_bits must be positive";
  List.iter
    (fun (op, _) ->
      if op < 0 || op lsr spec.opcode_bits <> 0 then
        fail "opcode %d out of range" op)
    spec.handlers;
  let code = ref [] in
  let next_addr = ref 1 in
  let emit u =
    code := u :: !code;
    incr next_addr
  in
  let rec lower t =
    match t with
    | Emit action ->
      check_action spec action;
      [ { Microcode.ctl = action; seq = Microcode.Next } ]
    | Seq ts -> List.concat_map lower ts
    | Repeat (n, body) ->
      if n < 0 then fail "negative repetition";
      List.concat (List.init n (fun _ -> lower body))
    | Done -> [ { Microcode.ctl = []; seq = Microcode.Jump 0 } ]
  in
  (* A trailing bare jump folds into the preceding microinstruction. *)
  let peephole uops =
    match List.rev uops with
    | { Microcode.ctl = []; seq = Microcode.Jump 0 }
      :: ({ Microcode.seq = Microcode.Next; _ } as prev) :: rest ->
      List.rev ({ prev with Microcode.seq = Microcode.Jump 0 } :: rest)
    | _ -> uops
  in
  let rec ends_with_done = function
    | Done -> true
    | Emit _ -> false
    | Repeat (n, body) -> n > 0 && ends_with_done body
    | Seq ts ->
      (match List.rev ts with
       | [] -> false
       | last :: _ -> ends_with_done last)
  in
  (* Deduplicate structurally identical handler bodies. *)
  let body_addr : (t, int) Hashtbl.t = Hashtbl.create 8 in
  let handler_entries =
    List.map
      (fun (op, body) ->
        match Hashtbl.find_opt body_addr body with
        | Some a -> (op, a)
        | None ->
          let a = !next_addr in
          Hashtbl.replace body_addr body a;
          let uops = lower body in
          let uops =
            if ends_with_done body then uops
            else uops @ [ { Microcode.ctl = []; seq = Microcode.Jump 0 } ]
          in
          let uops = peephole uops in
          if uops = [] then fail "empty handler body";
          List.iter emit uops;
          (op, a))
      spec.handlers
  in
  let dispatch_targets =
    Array.init (1 lsl spec.opcode_bits) (fun op ->
        Option.value ~default:0 (List.assoc_opt op handler_entries))
  in
  let program_code =
    Array.of_list
      ({ Microcode.ctl = []; seq = Microcode.Dispatch 0 } :: List.rev !code)
  in
  Microcode.make ~name:spec.name ~format:spec.fields
    ~dispatch:[ ("ops", dispatch_targets) ]
    ~opcode_bits:spec.opcode_bits ~entry:0 program_code
