(** Arbitrary-width immutable bit vectors.

    A value of type {!t} is a vector of [width] bits. Bit 0 is the least
    significant bit. All operations are purely functional; results are kept
    in canonical form (bits above [width - 1] are zero). Widths may be any
    non-negative integer; the zero-width vector is a valid (unique) value,
    convenient as a concatenation identity. *)

type t

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w].
    @raise Invalid_argument if [w < 0]. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val of_int : width:int -> int -> t
(** [of_int ~width v] takes the low [width] bits of [v].
    @raise Invalid_argument if [v < 0] or [width < 0]. *)

val of_bits : bool list -> t
(** [of_bits bits] builds a vector from a list of bits, least significant
    first; the width is [List.length bits]. *)

val of_binary_string : string -> t
(** [of_binary_string s] parses a string of ['0']/['1'] characters written
    most-significant-bit first (e.g. ["1010"] is 10 over 4 bits). Underscores
    are ignored. @raise Invalid_argument on other characters or if no bit
    character is present. *)

val one_hot : width:int -> int -> t
(** [one_hot ~width i] has exactly bit [i] set.
    @raise Invalid_argument unless [0 <= i < width]. *)

(** {1 Observation} *)

val width : t -> int

val get : t -> int -> bool
(** [get v i] is bit [i]. @raise Invalid_argument unless [0 <= i < width v]. *)

val to_int : t -> int
(** The value as a non-negative OCaml int.
    @raise Invalid_argument if [width v > 62]. *)

val to_binary_string : t -> string
(** Most-significant-bit-first string of ['0']/['1']; [""] for width 0. *)

val to_bits : t -> bool list
(** Bits, least significant first. *)

val popcount : t -> int

val is_zero : t -> bool

val reduce_and : t -> bool
(** True iff every bit is set. For width 0 this is [true] (empty product). *)

val reduce_or : t -> bool

val reduce_xor : t -> bool

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Width and contents must both match. *)

val compare : t -> t -> int
(** Total order: first by width, then by unsigned value. *)

val compare_value : t -> t -> int
(** Unsigned value order of two vectors of equal width.
    @raise Invalid_argument on width mismatch. *)

val hash : t -> int

(** {1 Bitwise operations}

    Binary bitwise operations require equal widths and raise
    [Invalid_argument] otherwise. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val set : t -> int -> bool -> t
(** [set v i b] is [v] with bit [i] replaced by [b]. *)

(** {1 Arithmetic (unsigned, modulo [2^width])} *)

val add : t -> t -> t
val sub : t -> t -> t
val succ : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val ult : t -> t -> bool
(** Unsigned less-than of equal-width vectors. *)

(** {1 Structure} *)

val concat : t list -> t
(** [concat vs] concatenates with the head of the list as the most
    significant part (matching Verilog [{a, b, c}]). *)

val slice : t -> hi:int -> lo:int -> t
(** [slice v ~hi ~lo] is bits [hi..lo] inclusive, width [hi - lo + 1].
    @raise Invalid_argument unless [0 <= lo <= hi < width v]. *)

val resize : t -> int -> t
(** [resize v w] zero-extends or truncates to width [w]. *)

(** {1 Enumeration} *)

val all_values : int -> t Seq.t
(** [all_values w] enumerates all [2^w] vectors of width [w] in increasing
    value order. @raise Invalid_argument if [w < 0] or [w > 24] (guards
    against accidental explosion). *)

val fold_bits : (int -> bool -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_bits f v init] folds [f] over bits from index 0 upwards. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Prints as [width'bbits], e.g. [4'b1010]. *)

val to_string : t -> string
