(* Bit vectors stored as little-endian arrays of 32-bit limbs inside OCaml
   ints. The top limb is kept masked so that structural equality of the limb
   array coincides with value equality. *)

let limb_bits = 32
let limb_mask = 0xFFFFFFFF

type t = { width : int; limbs : int array }

let limb_count width = (width + limb_bits - 1) / limb_bits

(* Mask the top limb in place; [limbs] must already have the right length. *)
let canonicalize width limbs =
  let n = Array.length limbs in
  if n > 0 then begin
    let used = width - (n - 1) * limb_bits in
    let mask = if used >= limb_bits then limb_mask else (1 lsl used) - 1 in
    limbs.(n - 1) <- limbs.(n - 1) land mask
  end;
  { width; limbs }

let zero w =
  if w < 0 then invalid_arg "Bitvec.zero: negative width";
  { width = w; limbs = Array.make (limb_count w) 0 }

let ones w =
  if w < 0 then invalid_arg "Bitvec.ones: negative width";
  canonicalize w (Array.make (limb_count w) limb_mask)

let of_int ~width v =
  if width < 0 then invalid_arg "Bitvec.of_int: negative width";
  if v < 0 then invalid_arg "Bitvec.of_int: negative value";
  let limbs = Array.make (limb_count width) 0 in
  let rec fill i v =
    if i < Array.length limbs && v <> 0 then begin
      limbs.(i) <- v land limb_mask;
      fill (i + 1) (v lsr limb_bits)
    end
  in
  fill 0 v;
  canonicalize width limbs

let width v = v.width

let get v i =
  if i < 0 || i >= v.width then invalid_arg "Bitvec.get: index out of range";
  v.limbs.(i / limb_bits) lsr (i mod limb_bits) land 1 = 1

let set v i b =
  if i < 0 || i >= v.width then invalid_arg "Bitvec.set: index out of range";
  let limbs = Array.copy v.limbs in
  let j = i / limb_bits and k = i mod limb_bits in
  limbs.(j) <- (if b then limbs.(j) lor (1 lsl k)
                else limbs.(j) land lnot (1 lsl k));
  { width = v.width; limbs }

let of_bits bits =
  let v = zero (List.length bits) in
  let _, v =
    List.fold_left (fun (i, v) b -> (i + 1, if b then set v i true else v))
      (0, v) bits
  in
  v

let of_binary_string s =
  let bits =
    String.fold_left
      (fun acc c ->
        match c with
        | '0' -> false :: acc
        | '1' -> true :: acc
        | '_' -> acc
        | _ -> invalid_arg "Bitvec.of_binary_string: bad character")
      [] s
  in
  if bits = [] then invalid_arg "Bitvec.of_binary_string: empty";
  of_bits bits

let one_hot ~width i =
  if i < 0 || i >= width then invalid_arg "Bitvec.one_hot: index out of range";
  set (zero width) i true

let to_int v =
  if v.width > 62 then invalid_arg "Bitvec.to_int: width exceeds 62";
  Array.to_list v.limbs
  |> List.rev
  |> List.fold_left (fun acc limb -> (acc lsl limb_bits) lor limb) 0

let to_bits v = List.init v.width (get v)

let to_binary_string v =
  String.init v.width (fun i -> if get v (v.width - 1 - i) then '1' else '0')

let popcount v =
  let pop_limb x =
    let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
    go x 0
  in
  Array.fold_left (fun acc limb -> acc + pop_limb limb) 0 v.limbs

let is_zero v = Array.for_all (fun limb -> limb = 0) v.limbs
let reduce_or v = not (is_zero v)
let reduce_and v = popcount v = v.width
let reduce_xor v = popcount v land 1 = 1

let equal a b = a.width = b.width && a.limbs = b.limbs

let compare_value a b =
  if a.width <> b.width then invalid_arg "Bitvec.compare_value: width mismatch";
  let rec go i =
    if i < 0 then 0
    else
      let c = Stdlib.compare a.limbs.(i) b.limbs.(i) in
      if c <> 0 then c else go (i - 1)
  in
  go (Array.length a.limbs - 1)

let compare a b =
  let c = Stdlib.compare a.width b.width in
  if c <> 0 then c else compare_value a b

let hash v = Hashtbl.hash (v.width, v.limbs)

let map2 name f a b =
  if a.width <> b.width then invalid_arg (name ^ ": width mismatch");
  canonicalize a.width (Array.init (Array.length a.limbs)
                          (fun i -> f a.limbs.(i) b.limbs.(i)))

let logand a b = map2 "Bitvec.logand" ( land ) a b
let logor a b = map2 "Bitvec.logor" ( lor ) a b
let logxor a b = map2 "Bitvec.logxor" ( lxor ) a b

let lognot a =
  canonicalize a.width (Array.map (fun limb -> lnot limb land limb_mask) a.limbs)

let add a b =
  if a.width <> b.width then invalid_arg "Bitvec.add: width mismatch";
  let n = Array.length a.limbs in
  let limbs = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    limbs.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  canonicalize a.width limbs

let sub a b =
  if a.width <> b.width then invalid_arg "Bitvec.sub: width mismatch";
  add a (add (lognot b) (of_int ~width:a.width (if a.width = 0 then 0 else 1)))

let succ a =
  if a.width = 0 then a else add a (of_int ~width:a.width 1)

let shift_left v k =
  if k < 0 then invalid_arg "Bitvec.shift_left: negative shift";
  let out = ref (zero v.width) in
  for i = 0 to v.width - 1 - k do
    if get v i then out := set !out (i + k) true
  done;
  !out

let shift_right v k =
  if k < 0 then invalid_arg "Bitvec.shift_right: negative shift";
  let out = ref (zero v.width) in
  for i = k to v.width - 1 do
    if get v i then out := set !out (i - k) true
  done;
  !out

let ult a b = compare_value a b < 0

let slice v ~hi ~lo =
  if lo < 0 || hi < lo || hi >= v.width then
    invalid_arg "Bitvec.slice: bad range";
  let out = ref (zero (hi - lo + 1)) in
  for i = lo to hi do
    if get v i then out := set !out (i - lo) true
  done;
  !out

let resize v w =
  if w < 0 then invalid_arg "Bitvec.resize: negative width";
  if w = v.width then v
  else if w < v.width then (if w = 0 then zero 0 else slice v ~hi:(w - 1) ~lo:0)
  else begin
    let out = ref (zero w) in
    for i = 0 to v.width - 1 do
      if get v i then out := set !out i true
    done;
    !out
  end

let concat vs =
  let total = List.fold_left (fun acc v -> acc + v.width) 0 vs in
  (* Head of the list is the most significant part. *)
  let out = ref (zero total) in
  let pos = ref total in
  let place v =
    pos := !pos - v.width;
    for i = 0 to v.width - 1 do
      if get v i then out := set !out (!pos + i) true
    done
  in
  List.iter place vs;
  !out

let all_values w =
  if w < 0 || w > 24 then invalid_arg "Bitvec.all_values: width out of range";
  Seq.init (1 lsl w) (fun i -> of_int ~width:w i)

let fold_bits f v init =
  let acc = ref init in
  for i = 0 to v.width - 1 do
    acc := f i (get v i) !acc
  done;
  !acc

let pp fmt v = Format.fprintf fmt "%d'b%s" v.width (to_binary_string v)
let to_string v = Format.asprintf "%a" pp v
