type value = Off | On | Dc

type t = { nvars : int; cells : Bytes.t }

let code = function Off -> '\000' | On -> '\001' | Dc -> '\002'

let value_of_code = function
  | '\000' -> Off
  | '\001' -> On
  | '\002' -> Dc
  | _ -> assert false

let create ~nvars v =
  if nvars < 0 || nvars > 16 then invalid_arg "Truthfn.create: nvars out of range";
  { nvars; cells = Bytes.make (1 lsl nvars) (code v) }

let nvars t = t.nvars
let size t = Bytes.length t.cells

let get t m = value_of_code (Bytes.get t.cells m)
let set t m v = Bytes.set t.cells m (code v)

let of_fun ~nvars f =
  let t = create ~nvars Off in
  for m = 0 to size t - 1 do
    set t m (f m)
  done;
  t

let copy t = { nvars = t.nvars; cells = Bytes.copy t.cells }

let filter_set t v =
  List.filter (fun m -> get t m = v) (List.init (size t) Fun.id)

let on_set t = filter_set t On
let dc_set t = filter_set t Dc
let off_set t = filter_set t Off

let count t v = List.length (filter_set t v)

let cube_within t c =
  not
    (Cube.exists_minterm ~nvars:t.nvars
       (fun m -> Bytes.get t.cells m = '\000')
       c)

let cover_agrees t cubes =
  let covered m = List.exists (fun c -> Cube.covers_minterm c m) cubes in
  let ok m =
    match get t m with
    | On -> covered m
    | Off -> not (covered m)
    | Dc -> true
  in
  List.for_all ok (List.init (size t) Fun.id)

let equal a b = a.nvars = b.nvars && Bytes.equal a.cells b.cells

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  for m = 0 to size t - 1 do
    let ch = match get t m with Off -> '0' | On -> '1' | Dc -> '-' in
    Format.fprintf fmt "%*d: %c@," t.nvars m ch
  done;
  Format.fprintf fmt "@]"
