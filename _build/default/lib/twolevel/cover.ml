type t = { nvars : int; cubes : Cube.t list }

let make ~nvars cubes = { nvars; cubes }

let eval t m = List.exists (fun c -> Cube.covers_minterm c m) t.cubes

let num_cubes t = List.length t.cubes

let literals t =
  List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 t.cubes

let remove_subsumed t =
  (* Keep a cube only if no *other* kept-or-later cube subsumes it; process
     big cubes first so minterms collapse into their largest implicant. *)
  let sorted =
    List.sort
      (fun a b -> Stdlib.compare (Cube.num_literals a) (Cube.num_literals b))
      t.cubes
  in
  let keep kept c =
    if List.exists (fun k -> Cube.subsumes k c) kept then kept else c :: kept
  in
  { t with cubes = List.rev (List.fold_left keep [] sorted) }

let of_truthfn tf =
  let nvars = Truthfn.nvars tf in
  { nvars; cubes = List.map (Cube.of_minterm ~nvars) (Truthfn.on_set tf) }

let agrees t tf = Truthfn.cover_agrees tf t.cubes

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun c -> Format.fprintf fmt "%a@," (Cube.pp ~nvars:t.nvars) c) t.cubes;
  Format.fprintf fmt "@]"
