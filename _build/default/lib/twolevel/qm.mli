(** Quine–McCluskey exact two-level minimization.

    Exponential in the worst case; intended for functions of at most ~10
    variables (ablation A2 compares it against {!Espresso}). *)

val primes : Truthfn.t -> Cube.t list
(** All prime implicants of the ON ∪ DC set. *)

val select_greedy : Truthfn.t -> Cube.t list -> Cube.t list
(** Essential primes first, then greedy set cover of the remaining ON-set. *)

val select_exact : ?node_limit:int -> Truthfn.t -> Cube.t list -> Cube.t list option
(** Branch-and-bound minimum-cube cover. Returns [None] if the search
    exceeds [node_limit] (default 200_000) branch nodes. *)

val minimize : ?exact:bool -> Truthfn.t -> Cover.t
(** Prime generation followed by covering; [exact] defaults to [false]
    (greedy). Falls back to greedy if exact search exceeds its limit. *)
