(** Sum-of-products covers. *)

type t = { nvars : int; cubes : Cube.t list }

val make : nvars:int -> Cube.t list -> t

val eval : t -> int -> bool
(** Value of the disjunction on an input assignment. *)

val num_cubes : t -> int

val literals : t -> int
(** Total literal count (the classic two-level cost). *)

val remove_subsumed : t -> t
(** Drop cubes subsumed by another cube of the cover. *)

val of_truthfn : Truthfn.t -> t
(** The minterm-by-minterm canonical cover of the ON-set. *)

val agrees : t -> Truthfn.t -> bool
(** Does this cover implement the incompletely-specified function? *)

val pp : Format.formatter -> t -> unit
