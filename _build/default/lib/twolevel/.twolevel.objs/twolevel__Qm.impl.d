lib/twolevel/qm.ml: Array Cover Cube Fun Hashtbl List Option Set Truthfn
