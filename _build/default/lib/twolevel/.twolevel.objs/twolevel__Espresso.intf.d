lib/twolevel/espresso.mli: Cover Cube Truthfn
