lib/twolevel/cube.mli: Format Seq
