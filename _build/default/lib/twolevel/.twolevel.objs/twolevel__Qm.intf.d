lib/twolevel/qm.mli: Cover Cube Truthfn
