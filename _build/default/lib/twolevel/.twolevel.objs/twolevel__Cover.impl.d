lib/twolevel/cover.ml: Cube Format List Stdlib Truthfn
