lib/twolevel/cube.ml: Array Format Fun List Seq Stdlib
