lib/twolevel/cover.mli: Cube Format Truthfn
