lib/twolevel/truthfn.ml: Bytes Cube Format Fun List
