lib/twolevel/espresso.ml: Array Cover Cube Fun List Stdlib Truthfn
