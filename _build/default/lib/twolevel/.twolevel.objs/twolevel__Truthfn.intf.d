lib/twolevel/truthfn.mli: Cube Format
