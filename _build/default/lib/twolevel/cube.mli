(** Cubes (product terms) over up to 30 boolean variables.

    A cube is a conjunction of literals. It is stored as a pair of integer
    bit masks: [mask] has bit [i] set when variable [i] appears as a literal,
    and [value] gives the polarity of each cared literal ([value] is kept
    zero outside [mask], so cubes compare structurally). *)

type t = private { mask : int; value : int }

val make : mask:int -> value:int -> t
(** Canonicalizes [value] onto [mask]. @raise Invalid_argument if a mask bit
    index 30 or above is set. *)

val top : t
(** The universal cube (no literals, covers everything). *)

val of_minterm : nvars:int -> int -> t
(** Full cube for one input assignment. *)

val num_literals : t -> int

val free_vars : nvars:int -> t -> int list
(** Variables not constrained by the cube, ascending. *)

val covers_minterm : t -> int -> bool
(** [covers_minterm c m] — does assignment [m] (bit [i] = variable [i])
    satisfy the cube? *)

val subsumes : t -> t -> bool
(** [subsumes c d] — is every minterm of [d] covered by [c]? *)

val combine : t -> t -> t option
(** Quine–McCluskey merge: if the cubes care about the same variables and
    differ in exactly one of them, the merged cube (with that variable freed);
    otherwise [None]. *)

val drop_var : t -> int -> t
(** Remove variable [i] from the cube's literals (no-op if absent). *)

val with_literal : t -> int -> bool -> t
(** Add/overwrite literal [i] with the given polarity. *)

val has_literal : t -> int -> bool
val literal_value : t -> int -> bool
(** @raise Invalid_argument if the literal is absent. *)

val minterms : nvars:int -> t -> int Seq.t
(** All assignments covered by the cube over [nvars] variables. *)

val iter_minterms : nvars:int -> (int -> unit) -> t -> unit
(** Allocation-free enumeration of the covered assignments (hot path of the
    minimizers). *)

val exists_minterm : nvars:int -> (int -> bool) -> t -> bool
(** Early-exit search over the covered assignments. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : nvars:int -> Format.formatter -> t -> unit
(** Prints positional-cube notation, e.g. [1-0] (variable 0 is leftmost). *)
