(** Dense incompletely-specified single-output boolean functions.

    A function over [nvars] inputs stores one of {!value} for each of the
    [2^nvars] input assignments. Assignments are integers whose bit [i] is
    the value of variable [i]. Mutable by design: these are scratch objects
    inside minimization. *)

type value = Off | On | Dc

type t

val create : nvars:int -> value -> t
(** Constant function. @raise Invalid_argument if [nvars < 0 || nvars > 16]. *)

val nvars : t -> int
val size : t -> int
(** [2^nvars]. *)

val get : t -> int -> value
val set : t -> int -> value -> unit

val of_fun : nvars:int -> (int -> value) -> t
val copy : t -> t

val on_set : t -> int list
val dc_set : t -> int list
val off_set : t -> int list

val count : t -> value -> int

val cube_within : t -> Cube.t -> bool
(** Is every minterm of the cube ON or DC (i.e. does the cube avoid the
    OFF-set)? *)

val cover_agrees : t -> Cube.t list -> bool
(** Does the cover evaluate to true on every ON minterm and false on every
    OFF minterm (DC minterms unconstrained)? *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
