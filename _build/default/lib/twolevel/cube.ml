type t = { mask : int; value : int }

let max_vars = 30

let make ~mask ~value =
  if mask lsr max_vars <> 0 then invalid_arg "Cube.make: too many variables";
  { mask; value = value land mask }

let top = { mask = 0; value = 0 }

let of_minterm ~nvars m =
  if nvars > max_vars then invalid_arg "Cube.of_minterm: too many variables";
  let mask = (1 lsl nvars) - 1 in
  { mask; value = m land mask }

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let num_literals c = popcount c.mask

let free_vars ~nvars c =
  List.filter (fun i -> c.mask lsr i land 1 = 0) (List.init nvars Fun.id)

let covers_minterm c m = m land c.mask = c.value

let subsumes c d = c.mask land d.mask = c.mask && d.value land c.mask = c.value

let combine a b =
  if a.mask <> b.mask then None
  else
    let diff = a.value lxor b.value in
    if diff <> 0 && diff land (diff - 1) = 0 then
      Some { mask = a.mask lxor diff; value = a.value land lnot diff }
    else None

let drop_var c i = { mask = c.mask land lnot (1 lsl i); value = c.value land lnot (1 lsl i) }

let with_literal c i b =
  let bit = 1 lsl i in
  { mask = c.mask lor bit; value = (c.value land lnot bit) lor (if b then bit else 0) }

let has_literal c i = c.mask lsr i land 1 = 1

let literal_value c i =
  if not (has_literal c i) then invalid_arg "Cube.literal_value: absent literal";
  c.value lsr i land 1 = 1

let minterms ~nvars c =
  let free = free_vars ~nvars c in
  let k = List.length free in
  let expand j =
    (* Scatter the bits of j onto the free variable positions. *)
    let _, m =
      List.fold_left
        (fun (bit, m) v ->
          (bit + 1, if j lsr bit land 1 = 1 then m lor (1 lsl v) else m))
        (0, c.value) free
    in
    m
  in
  Seq.init (1 lsl k) expand

(* Enumerate covered minterms by counting j over the free variables and
   scattering its bits onto the free positions — no allocation per minterm. *)
let iter_minterms ~nvars f c =
  let free = Array.of_list (free_vars ~nvars c) in
  let k = Array.length free in
  for j = 0 to (1 lsl k) - 1 do
    let m = ref c.value in
    for bit = 0 to k - 1 do
      if j lsr bit land 1 = 1 then m := !m lor (1 lsl free.(bit))
    done;
    f !m
  done

exception Found

let exists_minterm ~nvars p c =
  match iter_minterms ~nvars (fun m -> if p m then raise Found) c with
  | () -> false
  | exception Found -> true

let equal a b = a.mask = b.mask && a.value = b.value
let compare = Stdlib.compare

let pp ~nvars fmt c =
  for i = 0 to nvars - 1 do
    let ch =
      if not (has_literal c i) then '-'
      else if literal_value c i then '1'
      else '0'
    in
    Format.pp_print_char fmt ch
  done
