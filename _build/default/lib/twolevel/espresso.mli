(** Espresso-style heuristic two-level minimization.

    Runs the classic EXPAND → IRREDUNDANT → REDUCE loop over a dense
    incompletely-specified function. Unlike {!Qm} this is polynomial per
    iteration and is the default minimizer of the synthesis flow.

    The result depends on the *initial cover* (cube and literal ordering):
    this is deliberate and models the "bumpy optimization surface" the paper
    observes — logically equivalent RTL written in different styles seeds the
    minimizer differently and lands in different local minima. *)

val expand : Truthfn.t -> Cube.t list -> Cube.t list
(** One EXPAND pass: grow each cube to a (locally) prime implicant without
    intersecting the OFF-set; drops cubes subsumed by earlier expansions. *)

val irredundant : Truthfn.t -> Cube.t list -> Cube.t list
(** Remove cubes whose ON-minterms are covered by the remaining cubes. *)

val reduce : Truthfn.t -> Cube.t list -> Cube.t list
(** Shrink each cube to the supercube of the ON-minterms only it covers
    (dropping cubes that cover nothing uniquely). *)

val minimize : ?max_iters:int -> ?initial:Cube.t list -> Truthfn.t -> Cover.t
(** Full loop. [initial] defaults to the canonical minterm cover of the
    ON-set; [max_iters] (default 3) bounds the improvement iterations. The
    returned cover always implements the function (checked by assertion in
    debug builds). *)
