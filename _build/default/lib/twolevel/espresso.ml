(* EXPAND / IRREDUNDANT / REDUCE over a dense function. The hot structure is
   a per-minterm coverage count of the ON-set, kept incrementally, so
   redundancy and unique-coverage queries are O(cube minterms). *)

let expand tf cubes =
  let nvars = Truthfn.nvars tf in
  let grow c =
    let try_drop c v =
      if Cube.has_literal c v then begin
        let c' = Cube.drop_var c v in
        if Truthfn.cube_within tf c' then c' else c
      end
      else c
    in
    List.fold_left try_drop c (List.init nvars Fun.id)
  in
  let step kept c =
    if List.exists (fun k -> Cube.subsumes k c) kept then kept
    else grow c :: kept
  in
  List.rev (List.fold_left step [] cubes)

(* Coverage counts of ON minterms for a cube list. *)
let coverage tf cubes =
  let nvars = Truthfn.nvars tf in
  let counts = Array.make (Truthfn.size tf) 0 in
  let add c =
    Cube.iter_minterms ~nvars
      (fun m -> if Truthfn.get tf m = Truthfn.On then counts.(m) <- counts.(m) + 1)
      c
  in
  List.iter add cubes;
  counts

let irredundant tf cubes =
  let nvars = Truthfn.nvars tf in
  let counts = coverage tf cubes in
  (* Most specific cubes are dropped first. *)
  let by_specificity =
    List.sort
      (fun a b -> Stdlib.compare (Cube.num_literals b) (Cube.num_literals a))
      cubes
  in
  let redundant c =
    not
      (Cube.exists_minterm ~nvars
         (fun m -> Truthfn.get tf m = Truthfn.On && counts.(m) <= 1)
         c)
  in
  let remove c =
    Cube.iter_minterms ~nvars
      (fun m -> if Truthfn.get tf m = Truthfn.On then counts.(m) <- counts.(m) - 1)
      c
  in
  let keep kept c =
    if redundant c then begin
      remove c;
      kept
    end
    else c :: kept
  in
  (* Restore the original cube order for determinism downstream. *)
  let kept = List.fold_left keep [] by_specificity in
  List.filter (fun c -> List.exists (Cube.equal c) kept) cubes

let reduce tf cubes =
  let nvars = Truthfn.nvars tf in
  let counts = coverage tf cubes in
  let shrink c =
    (* Supercube of the ON minterms only this cube covers; [] drops it. *)
    let first = ref (-1) in
    let agree = ref 0 in
    let visit m =
      if Truthfn.get tf m = Truthfn.On && counts.(m) = 1 then begin
        if !first < 0 then begin
          first := m;
          agree := (1 lsl nvars) - 1
        end
        else agree := !agree land lnot (m lxor !first)
      end
    in
    Cube.iter_minterms ~nvars visit c;
    if !first < 0 then None
    else Some (Cube.make ~mask:!agree ~value:(!first land !agree))
  in
  List.filter_map shrink cubes

let cost cubes =
  ( List.length cubes,
    List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 cubes )

let minimize ?(max_iters = 3) ?initial tf =
  let nvars = Truthfn.nvars tf in
  let initial =
    match initial with
    | Some cs -> cs
    | None -> List.map (Cube.of_minterm ~nvars) (Truthfn.on_set tf)
  in
  let first = irredundant tf (expand tf initial) in
  let rec loop i best =
    if i >= max_iters then best
    else begin
      let candidate = irredundant tf (expand tf (reduce tf best)) in
      if cost candidate < cost best then loop (i + 1) candidate else best
    end
  in
  let cubes = loop 1 first in
  Cover.make ~nvars cubes
