(* Classic tabular method. Implicants are grouped by care-mask; within a mask
   group, cubes whose values differ in exactly one set bit merge into an
   implicant with that bit freed. Uncombined implicants are prime. *)

module Cube_set = Set.Make (Cube)

let primes tf =
  let nvars = Truthfn.nvars tf in
  let initial =
    List.map (Cube.of_minterm ~nvars)
      (Truthfn.on_set tf @ Truthfn.dc_set tf)
  in
  let rec rounds current primes_acc =
    if current = [] then primes_acc
    else begin
      let arr = Array.of_list current in
      let n = Array.length arr in
      let combined = Array.make n false in
      let next = ref Cube_set.empty in
      (* Index by mask so only comparable cubes pair up. *)
      let by_mask = Hashtbl.create 64 in
      Array.iteri
        (fun i (c : Cube.t) ->
          let l = Option.value ~default:[] (Hashtbl.find_opt by_mask c.mask) in
          Hashtbl.replace by_mask c.mask (i :: l))
        arr;
      let pair_group idxs =
        let idxs = Array.of_list idxs in
        let k = Array.length idxs in
        for a = 0 to k - 1 do
          for b = a + 1 to k - 1 do
            match Cube.combine arr.(idxs.(a)) arr.(idxs.(b)) with
            | Some c ->
              combined.(idxs.(a)) <- true;
              combined.(idxs.(b)) <- true;
              next := Cube_set.add c !next
            | None -> ()
          done
        done
      in
      Hashtbl.iter (fun _ idxs -> pair_group idxs) by_mask;
      let new_primes = ref primes_acc in
      for i = 0 to n - 1 do
        if not combined.(i) then new_primes := arr.(i) :: !new_primes
      done;
      rounds (Cube_set.elements !next) !new_primes
    end
  in
  rounds initial []

let select_greedy tf primes_list =
  let on = Truthfn.on_set tf in
  let covers c m = Cube.covers_minterm c m in
  (* Essential primes: sole cover of some ON minterm. *)
  let essential =
    List.filter_map
      (fun m ->
        match List.filter (fun c -> covers c m) primes_list with
        | [ c ] -> Some c
        | _ -> None)
      on
    |> List.sort_uniq Cube.compare
  in
  let remaining =
    List.filter (fun m -> not (List.exists (fun c -> covers c m) essential)) on
  in
  let rec greedy chosen remaining =
    if remaining = [] then List.rev chosen
    else begin
      let gain c = List.length (List.filter (covers c) remaining) in
      let best =
        List.fold_left
          (fun acc c ->
            let g = gain c in
            match acc with
            | Some (_, gb) when gb >= g -> acc
            | _ when g = 0 -> acc
            | _ -> Some (c, g))
          None primes_list
      in
      match best with
      | None -> List.rev chosen (* unreachable when primes are complete *)
      | Some (c, _) ->
        greedy (c :: chosen) (List.filter (fun m -> not (covers c m)) remaining)
    end
  in
  essential @ greedy [] remaining

exception Out_of_budget

let select_exact ?(node_limit = 200_000) tf primes_list =
  let primes_arr = Array.of_list primes_list in
  let n = Array.length primes_arr in
  let candidates m =
    List.filter
      (fun i -> Cube.covers_minterm primes_arr.(i) m)
      (List.init n Fun.id)
  in
  let rows = List.map (fun m -> (m, candidates m)) (Truthfn.on_set tf) in
  let nodes = ref 0 in
  let best = ref None in
  let best_size = ref max_int in
  let rec search chosen rows =
    incr nodes;
    if !nodes > node_limit then raise Out_of_budget;
    if List.length chosen >= !best_size then ()
    else
      match rows with
      | [] ->
        best := Some (List.rev chosen);
        best_size := List.length chosen
      | _ :: _ ->
        (* Branch on the most constrained remaining row. *)
        let most_constrained =
          List.fold_left
            (fun acc (m, cs) ->
              match acc with
              | Some (_, acs) when List.length acs <= List.length cs -> acc
              | _ -> Some (m, cs))
            None rows
        in
        (match most_constrained with
         | None -> ()
         | Some (_, cands) ->
           let try_prime i =
             let still_uncovered (m, _) =
               not (Cube.covers_minterm primes_arr.(i) m)
             in
             search (i :: chosen) (List.filter still_uncovered rows)
           in
           List.iter try_prime cands)
  in
  match search [] rows with
  | () -> Option.map (List.map (fun i -> primes_arr.(i))) !best
  | exception Out_of_budget -> None

let minimize ?(exact = false) tf =
  let ps = primes tf in
  let cubes =
    if exact then
      match select_exact tf ps with
      | Some sel -> sel
      | None -> select_greedy tf ps
    else select_greedy tf ps
  in
  Cover.make ~nvars:(Truthfn.nvars tf) cubes
